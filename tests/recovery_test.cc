// Crash recovery (§2.2/§5.2): the dataset is destroyed while the Env (disk
// pages), the WAL, and a catalog checkpoint survive; Dataset::Recover must
// rebuild an equivalent dataset by replaying committed work.
#include <gtest/gtest.h>

#include "core/dataset.h"

namespace auxlsm {
namespace {

EnvOptions TestEnv() {
  EnvOptions o;
  o.page_size = 1024;
  o.cache_pages = 1 << 16;
  o.disk_profile = DiskProfile::Null();
  return o;
}

DatasetOptions Opts(MaintenanceStrategy s) {
  DatasetOptions o;
  o.strategy = s;
  o.mem_budget_bytes = 1 << 30;
  return o;
}

TweetRecord MakeTweet(uint64_t id, uint64_t user, uint64_t time) {
  TweetRecord r;
  r.id = id;
  r.user_id = user;
  r.location = "MA";
  r.creation_time = time;
  r.message = std::string(30, 'r');
  return r;
}

class RecoveryStrategyTest
    : public ::testing::TestWithParam<MaintenanceStrategy> {};

TEST_P(RecoveryStrategyTest, ReplaysUnflushedCommittedWrites) {
  Env env(TestEnv());
  Wal shared_wal;  // stands in for the durable log disk
  DatasetCatalog catalog;
  {
    Dataset ds(&env, Opts(GetParam()));
    for (uint64_t i = 1; i <= 50; i++) {
      ASSERT_TRUE(ds.Upsert(MakeTweet(i, 1, i)).ok());
    }
    ASSERT_TRUE(ds.FlushAll().ok());
    catalog = ds.Checkpoint();
    // Post-checkpoint writes that only live in the memtable + WAL.
    for (uint64_t i = 51; i <= 70; i++) {
      ASSERT_TRUE(ds.Upsert(MakeTweet(i, 2, i)).ok());
    }
    ASSERT_TRUE(ds.Delete(1).ok());
    // Copy the WAL out before the "crash" destroys the dataset.
    for (const auto& r : ds.wal()->ReadFrom(kInvalidLsn)) {
      shared_wal.Append(r);
    }
  }  // crash: dataset (memtables!) gone; env + wal + catalog survive

  RecoveryStats stats;
  auto recovered =
      Dataset::Recover(&env, &shared_wal, catalog, Opts(GetParam()), &stats);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  Dataset* ds = recovered->get();
  EXPECT_GT(stats.ops_replayed, 0u);
  EXPECT_EQ(ds->num_records(), 69u);  // 70 written, 1 deleted
  TweetRecord r;
  EXPECT_TRUE(ds->GetById(1, &r).IsNotFound());
  ASSERT_TRUE(ds->GetById(60, &r).ok());
  EXPECT_EQ(r.user_id, 2u);
  // Secondary queries see replayed data too.
  SecondaryQueryOptions q;
  QueryResult res;
  ASSERT_TRUE(ds->QueryUserRange(2, 2, q, &res).ok());
  EXPECT_EQ(res.records.size(), 20u);
}

TEST_P(RecoveryStrategyTest, UncommittedTxnNotReplayed) {
  Env env(TestEnv());
  Wal shared_wal;
  DatasetCatalog catalog;
  {
    Dataset ds(&env, Opts(GetParam()));
    ASSERT_TRUE(ds.Upsert(MakeTweet(1, 1, 1)).ok());
    ASSERT_TRUE(ds.FlushAll().ok());
    catalog = ds.Checkpoint();
    // An explicit transaction writes but never commits before the crash.
    auto txn = ds.Begin();
    ASSERT_TRUE(ds.UpsertTxn(MakeTweet(2, 2, 2), txn.get()).ok());
    for (const auto& r : ds.wal()->ReadFrom(kInvalidLsn)) {
      shared_wal.Append(r);
    }
    // txn destructor aborts, but the crash already copied the log without a
    // commit record — recovery must skip it either way.
  }
  RecoveryStats stats;
  auto recovered =
      Dataset::Recover(&env, &shared_wal, catalog, Opts(GetParam()), &stats);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ((*recovered)->num_records(), 1u);
  TweetRecord r;
  EXPECT_TRUE((*recovered)->GetById(2, &r).IsNotFound());
}

INSTANTIATE_TEST_SUITE_P(
    Strategies, RecoveryStrategyTest,
    ::testing::Values(MaintenanceStrategy::kEager,
                      MaintenanceStrategy::kValidation,
                      MaintenanceStrategy::kMutableBitmap),
    [](const ::testing::TestParamInfo<MaintenanceStrategy>& info) {
      std::string name = StrategyName(info.param);
      for (auto& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(RecoveryBitmapTest, BitmapChangesAfterCheckpointAreRedone) {
  Env env(TestEnv());
  Wal shared_wal;
  DatasetCatalog catalog;
  uint64_t expected_records = 0;
  {
    Dataset ds(&env, Opts(MaintenanceStrategy::kMutableBitmap));
    for (uint64_t i = 1; i <= 40; i++) {
      ASSERT_TRUE(ds.Upsert(MakeTweet(i, 1, i)).ok());
    }
    ASSERT_TRUE(ds.FlushAll().ok());
    catalog = ds.Checkpoint();
    // Post-checkpoint deletes flip bitmap bits of flushed components; the
    // bits themselves are volatile (no-force) but the WAL records carry the
    // update bit.
    for (uint64_t i = 1; i <= 10; i++) {
      ASSERT_TRUE(ds.Delete(i).ok());
    }
    expected_records = ds.num_records();
    for (const auto& r : ds.wal()->ReadFrom(kInvalidLsn)) {
      shared_wal.Append(r);
    }
  }
  // The catalog's checkpointed bitmaps do NOT include the deletes (they were
  // taken before). Recovery must redo them from the log.
  RecoveryStats stats;
  auto recovered = Dataset::Recover(&env, &shared_wal, catalog,
                                    Opts(MaintenanceStrategy::kMutableBitmap),
                                    &stats);
  ASSERT_TRUE(recovered.ok());
  Dataset* ds = recovered->get();
  EXPECT_EQ(ds->num_records(), expected_records);
  EXPECT_EQ(expected_records, 30u);
  TweetRecord r;
  EXPECT_TRUE(ds->GetById(5, &r).IsNotFound());
  // The recovered component's bitmap reflects the redone deletes.
  const auto comps = ds->primary()->Components();
  ASSERT_FALSE(comps.empty());
  EXPECT_EQ(comps.back()->bitmap()->CountSet(), 10u);
}

// A logged update bit whose target component cannot record it (no bitmap)
// must fail recovery loudly: returning OK would silently resurrect the old
// version the log says was superseded.
TEST(RecoveryBitmapTest, MissingBitmapOnRedoIsCorruption) {
  Env env(TestEnv());
  Wal shared_wal;
  DatasetCatalog catalog;
  {
    Dataset ds(&env, Opts(MaintenanceStrategy::kMutableBitmap));
    for (uint64_t i = 1; i <= 20; i++) {
      ASSERT_TRUE(ds.Upsert(MakeTweet(i, 1, i)).ok());
    }
    ASSERT_TRUE(ds.FlushAll().ok());
    catalog = ds.Checkpoint();
    ASSERT_TRUE(ds.Delete(3).ok());  // flips a bit; logged with update_bit
    for (const auto& r : ds.wal()->ReadFrom(kInvalidLsn)) {
      shared_wal.Append(r);
    }
  }
  // Corrupt the checkpoint: the catalog loses its bitmaps, as if the
  // per-component metadata were damaged in the crash.
  for (auto& e : catalog.primary) e.has_bitmap = false;
  for (auto& e : catalog.primary_key) {
    e.has_bitmap = false;
    e.shares_primary_bitmap = false;
  }
  RecoveryStats stats;
  auto recovered = Dataset::Recover(&env, &shared_wal, catalog,
                                    Opts(MaintenanceStrategy::kMutableBitmap),
                                    &stats);
  ASSERT_FALSE(recovered.ok());
  EXPECT_TRUE(recovered.status().IsCorruption())
      << recovered.status().ToString();
}

TEST(RecoveryCatalogTest, CheckpointCapturesFiltersAndRepairedTs) {
  Env env(TestEnv());
  DatasetOptions o = Opts(MaintenanceStrategy::kValidation);
  Dataset ds(&env, o);
  for (uint64_t i = 1; i <= 30; i++) {
    ASSERT_TRUE(ds.Upsert(MakeTweet(i, 1, 2000 + i)).ok());
  }
  ASSERT_TRUE(ds.FlushAll().ok());
  ASSERT_TRUE(ds.RepairAllSecondaries().ok());
  const DatasetCatalog catalog = ds.Checkpoint();
  ASSERT_EQ(catalog.primary.size(), 1u);
  EXPECT_TRUE(catalog.primary[0].has_range_filter);
  EXPECT_EQ(catalog.primary[0].filter_min, 2001u);
  EXPECT_EQ(catalog.primary[0].filter_max, 2030u);
  ASSERT_EQ(catalog.secondaries.size(), 1u);
  ASSERT_EQ(catalog.secondaries[0].size(), 1u);
  EXPECT_GT(catalog.secondaries[0][0].repaired_ts, 0u);
  EXPECT_GT(catalog.max_component_lsn, kInvalidLsn);
}

TEST(RecoveryCatalogTest, RecoveredFiltersStillPruneScans) {
  Env env(TestEnv());
  Wal shared_wal;
  DatasetCatalog catalog;
  {
    Dataset ds(&env, Opts(MaintenanceStrategy::kEager));
    for (uint64_t i = 1; i <= 60; i++) {
      ASSERT_TRUE(ds.Upsert(MakeTweet(i, 1, i)).ok());
      if (i % 20 == 0) ASSERT_TRUE(ds.FlushAll().ok());
    }
    catalog = ds.Checkpoint();
    for (const auto& r : ds.wal()->ReadFrom(kInvalidLsn)) {
      shared_wal.Append(r);
    }
  }
  auto recovered = Dataset::Recover(&env, &shared_wal, catalog,
                                    Opts(MaintenanceStrategy::kEager), nullptr);
  ASSERT_TRUE(recovered.ok());
  ScanResult res;
  ASSERT_TRUE((*recovered)->ScanTimeRange(1, 20, &res).ok());
  EXPECT_EQ(res.records_matched, 20u);
  EXPECT_GT(res.components_pruned, 0u);  // filters survived the crash
}

// --- WAL torn-tail tolerance (PR 6) ----------------------------------------
// A crash tears the log mid-append, so a bad FINAL frame is the normal
// residue of a crash and must truncate cleanly; a bad frame with decodable
// records after it is damage to already-durable history and must fail
// recovery loudly.

namespace {

LogRecord MakeLogRecord(Lsn lsn, uint64_t txn, uint64_t id) {
  LogRecord r;
  r.lsn = lsn;
  r.txn_id = txn;
  r.type = LogRecordType::kUpsert;
  r.key = "key" + std::to_string(id);
  r.value = std::string(24, char('a' + id % 26));
  r.ts = 10 + id;
  return r;
}

std::string EncodeStream(int n) {
  std::string stream;
  for (int i = 0; i < n; i++) {
    stream += MakeLogRecord(i + 1, 1, i).Encode();
  }
  return stream;
}

}  // namespace

TEST(WalTornTailTest, IncompleteFinalFrameTruncatesCleanly) {
  std::string stream = EncodeStream(3);
  const std::string last = MakeLogRecord(3, 1, 2).Encode();
  // Tear the final frame: drop its trailing 5 bytes.
  stream.resize(stream.size() - 5);

  std::vector<LogRecord> out;
  RecoveryStats stats;
  const Status st = DecodeWalStream(Slice(stream), &out, &stats);
  ASSERT_TRUE(st.ok()) << st.ToString();
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].lsn, 1u);
  EXPECT_EQ(out[1].lsn, 2u);
  EXPECT_EQ(stats.torn_tail_bytes, last.size() - 5);
}

TEST(WalTornTailTest, ChecksumFailingFinalFrameTruncatesCleanly) {
  std::string stream = EncodeStream(3);
  const std::string last = MakeLogRecord(3, 1, 2).Encode();
  // Flip a payload byte of the final (complete) frame: its checksum fails
  // but nothing decodable follows, so it is tail residue, not damage.
  stream[stream.size() - last.size() + 12] ^= 0x40;

  std::vector<LogRecord> out;
  RecoveryStats stats;
  const Status st = DecodeWalStream(Slice(stream), &out, &stats);
  ASSERT_TRUE(st.ok()) << st.ToString();
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(stats.torn_tail_bytes, last.size());
}

TEST(WalTornTailTest, SubHeaderTailResidueTruncatesCleanly) {
  std::string stream = EncodeStream(2);
  // A crash can leave fewer bytes than even the frame header.
  stream += std::string(3, '\x7f');

  std::vector<LogRecord> out;
  RecoveryStats stats;
  ASSERT_TRUE(DecodeWalStream(Slice(stream), &out, &stats).ok());
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(stats.torn_tail_bytes, 3u);
}

TEST(WalTornTailTest, MidLogCorruptionFailsLoudly) {
  std::string stream = EncodeStream(3);
  const std::string first = MakeLogRecord(1, 1, 0).Encode();
  // Flip a payload byte of the FIRST frame: records decode after it, so
  // this is damaged durable history — recovery must refuse, with the
  // corrupt byte offset in the message.
  stream[12] ^= 0x40;
  ASSERT_LT(size_t{12}, first.size());

  std::vector<LogRecord> out;
  RecoveryStats stats;
  const Status st = DecodeWalStream(Slice(stream), &out, &stats);
  ASSERT_TRUE(st.IsCorruption()) << st.ToString();
  EXPECT_NE(st.ToString().find("mid-log corruption at byte 0"),
            std::string::npos)
      << st.ToString();
  EXPECT_EQ(stats.torn_tail_bytes, 0u);
}

}  // namespace
}  // namespace auxlsm
