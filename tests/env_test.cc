#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "core/dataset.h"
#include "env/env.h"
#include "workload/tweet_gen.h"

namespace auxlsm {
namespace {

std::string Page(Env& env, char fill) {
  return std::string(env.page_size(), fill);
}

EnvOptions SmallEnv(size_t cache_pages = 8) {
  EnvOptions o;
  o.page_size = 256;
  o.cache_pages = cache_pages;
  o.cache_shards = 1;  // single global LRU: tests assert exact evictions
  o.disk_profile = DiskProfile::Hdd();
  return o;
}

TEST(PageStoreTest, CreateAppendRead) {
  PageStore store(128);
  const uint32_t f = store.CreateFile();
  uint32_t p0, p1;
  ASSERT_TRUE(store.AppendPage(f, std::string(128, 'a'), &p0).ok());
  ASSERT_TRUE(store.AppendPage(f, std::string(128, 'b'), &p1).ok());
  EXPECT_EQ(p0, 0u);
  EXPECT_EQ(p1, 1u);
  EXPECT_EQ(store.NumPages(f), 2u);
  PageData d;
  ASSERT_TRUE(store.ReadPage(f, 1, &d).ok());
  EXPECT_EQ((*d)[0], 'b');
}

TEST(PageStoreTest, RejectsWrongPageSize) {
  PageStore store(128);
  const uint32_t f = store.CreateFile();
  EXPECT_TRUE(store.AppendPage(f, "tiny", nullptr).IsInvalidArgument());
}

TEST(PageStoreTest, MissingFileAndRange) {
  PageStore store(128);
  PageData d;
  EXPECT_TRUE(store.ReadPage(999, 0, &d).IsNotFound());
  const uint32_t f = store.CreateFile();
  EXPECT_TRUE(store.ReadPage(f, 0, &d).IsInvalidArgument());
}

TEST(PageStoreTest, DeleteKeepsInFlightReaders) {
  PageStore store(128);
  const uint32_t f = store.CreateFile();
  ASSERT_TRUE(store.AppendPage(f, std::string(128, 'x'), nullptr).ok());
  PageData d;
  ASSERT_TRUE(store.ReadPage(f, 0, &d).ok());
  ASSERT_TRUE(store.DeleteFile(f).ok());
  EXPECT_FALSE(store.FileExists(f));
  EXPECT_EQ((*d)[0], 'x');  // still valid through the shared_ptr
}

TEST(DiskModelTest, SequentialVsRandomClassification) {
  DiskModel disk(DiskProfile::Hdd());
  disk.ChargeRead(1, 0);    // first read: random (seek)
  disk.ChargeRead(1, 1);    // next page: sequential
  disk.ChargeRead(1, 2);
  disk.ChargeRead(2, 0);    // file switch: random
  disk.ChargeRead(1, 100);  // back to file 1: random
  const IoStats s = disk.stats();
  EXPECT_EQ(s.pages_read, 5u);
  EXPECT_EQ(s.random_reads, 3u);
  EXPECT_EQ(s.sequential_reads, 2u);
}

TEST(DiskModelTest, ShortForwardSkipCostsRotationNotSeek) {
  DiskProfile p = DiskProfile::Hdd();
  DiskModel disk(p);
  disk.ChargeRead(1, 0);
  const double before = disk.stats().simulated_us;
  disk.ChargeRead(1, 5);  // forward gap of 5 pages, same file
  const double skip_cost = disk.stats().simulated_us - before;
  EXPECT_DOUBLE_EQ(skip_cost, 5 * p.read_transfer_us + p.read_transfer_us);
  EXPECT_LT(skip_cost, p.seek_us);
  // A backward jump pays the full seek.
  const double before2 = disk.stats().simulated_us;
  disk.ChargeRead(1, 1);
  EXPECT_DOUBLE_EQ(disk.stats().simulated_us - before2,
                   p.seek_us + p.read_transfer_us);
}

TEST(DiskModelTest, RereadSamePageIsSequential) {
  DiskModel disk(DiskProfile::Ssd());
  disk.ChargeRead(3, 7);
  disk.ChargeRead(3, 7);
  EXPECT_EQ(disk.stats().sequential_reads, 1u);
}

TEST(DiskModelTest, CostModelCharges) {
  DiskProfile p = DiskProfile::Hdd();
  DiskModel disk(p);
  disk.ChargeRead(1, 0);  // random: seek + transfer
  disk.ChargeRead(1, 1);  // sequential: transfer
  disk.ChargeWrite(10);
  const IoStats s = disk.stats();
  EXPECT_DOUBLE_EQ(s.simulated_us, p.seek_us + 2 * p.read_transfer_us +
                                       10 * p.write_transfer_us);
}

TEST(DiskModelTest, HddRandomReadsDominateSsd) {
  DiskModel hdd(DiskProfile::Hdd()), ssd(DiskProfile::Ssd());
  for (uint32_t i = 0; i < 100; i++) {
    // Alternating files forces full seeks on every read.
    hdd.ChargeRead(1 + (i % 2), i * 10);
    ssd.ChargeRead(1 + (i % 2), i * 10);
  }
  EXPECT_GT(hdd.stats().simulated_us, 10 * ssd.stats().simulated_us);
}

TEST(BufferCacheTest, HitAvoidsSecondCharge) {
  Env env(SmallEnv());
  const uint32_t f = env.CreateFile();
  ASSERT_TRUE(env.AppendPage(f, Page(env, 'a'), nullptr).ok());
  PageData d;
  ASSERT_TRUE(env.ReadPage(f, 0, &d).ok());
  const IoStats after_first = env.stats();
  ASSERT_TRUE(env.ReadPage(f, 0, &d).ok());
  const IoStats after_second = env.stats();
  EXPECT_EQ(after_second.pages_read, after_first.pages_read);
  EXPECT_EQ(after_second.cache_hits, after_first.cache_hits + 1);
}

TEST(BufferCacheTest, LruEvictsOldest) {
  Env env(SmallEnv(/*cache_pages=*/2));
  const uint32_t f = env.CreateFile();
  for (int i = 0; i < 3; i++) {
    ASSERT_TRUE(env.AppendPage(f, Page(env, char('a' + i)), nullptr).ok());
  }
  PageData d;
  ASSERT_TRUE(env.ReadPage(f, 0, &d).ok());
  ASSERT_TRUE(env.ReadPage(f, 1, &d).ok());
  ASSERT_TRUE(env.ReadPage(f, 2, &d).ok());  // evicts page 0
  const uint64_t misses_before = env.stats().cache_misses;
  ASSERT_TRUE(env.ReadPage(f, 0, &d).ok());  // miss again
  EXPECT_EQ(env.stats().cache_misses, misses_before + 1);
}

TEST(BufferCacheTest, ReadAheadFaultsFollowingPagesSequentially) {
  Env env(SmallEnv(/*cache_pages=*/16));
  const uint32_t f = env.CreateFile();
  for (int i = 0; i < 8; i++) {
    ASSERT_TRUE(env.AppendPage(f, Page(env, 'x'), nullptr).ok());
  }
  PageData d;
  ASSERT_TRUE(env.ReadPage(f, 0, &d, /*readahead_pages=*/4).ok());
  const IoStats s = env.stats();
  EXPECT_EQ(s.pages_read, 5u);  // 1 demand + 4 read-ahead
  EXPECT_EQ(s.sequential_reads, 4u);
  // Following reads are cache hits.
  const uint64_t reads_before = s.pages_read;
  ASSERT_TRUE(env.ReadPage(f, 1, &d).ok());
  ASSERT_TRUE(env.ReadPage(f, 4, &d).ok());
  EXPECT_EQ(env.stats().pages_read, reads_before);
}

TEST(BufferCacheTest, ZeroCapacityDisablesCaching) {
  Env env(SmallEnv(/*cache_pages=*/0));
  const uint32_t f = env.CreateFile();
  ASSERT_TRUE(env.AppendPage(f, Page(env, 'a'), nullptr).ok());
  PageData d;
  ASSERT_TRUE(env.ReadPage(f, 0, &d).ok());
  ASSERT_TRUE(env.ReadPage(f, 0, &d).ok());
  EXPECT_EQ(env.stats().pages_read, 2u);
}

TEST(BufferCacheTest, EvictDropsFilePages) {
  Env env(SmallEnv());
  const uint32_t f = env.CreateFile();
  ASSERT_TRUE(env.AppendPage(f, Page(env, 'a'), nullptr).ok());
  PageData d;
  ASSERT_TRUE(env.ReadPage(f, 0, &d).ok());
  EXPECT_EQ(env.cache()->size(), 1u);
  env.cache()->Evict(f);
  EXPECT_EQ(env.cache()->size(), 0u);
}

TEST(BufferCacheTest, SetCapacityShrinks) {
  Env env(SmallEnv(/*cache_pages=*/8));
  const uint32_t f = env.CreateFile();
  PageData d;
  for (int i = 0; i < 6; i++) {
    ASSERT_TRUE(env.AppendPage(f, Page(env, 'x'), nullptr).ok());
    ASSERT_TRUE(env.ReadPage(f, i, &d).ok());
  }
  EXPECT_EQ(env.cache()->size(), 6u);
  env.cache()->set_capacity(2);
  EXPECT_LE(env.cache()->size(), 2u);
}

TEST(ShardedBufferCacheTest, ShardsSplitCapacityExactly) {
  EnvOptions o = SmallEnv(/*cache_pages=*/10);
  o.cache_shards = 4;
  Env env(o);
  EXPECT_EQ(env.cache()->shards(), 4u);
  EXPECT_EQ(env.cache()->capacity(), 10u);
}

TEST(ShardedBufferCacheTest, HitMissEvictionStats) {
  EnvOptions o = SmallEnv(/*cache_pages=*/4);
  o.cache_shards = 2;
  Env env(o);
  const uint32_t f = env.CreateFile();
  for (int i = 0; i < 8; i++) {
    ASSERT_TRUE(env.AppendPage(f, Page(env, char('a' + i)), nullptr).ok());
  }
  PageData d;
  for (int i = 0; i < 8; i++) {
    ASSERT_TRUE(env.ReadPage(f, i, &d).ok());
  }
  ASSERT_TRUE(env.ReadPage(f, 7, &d).ok());  // recent page: hit
  const BufferCacheStats s = env.cache()->stats();
  EXPECT_EQ(s.misses, 8u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.evictions, 8u - env.cache()->size());
  EXPECT_LE(env.cache()->size(), 4u);
}

TEST(ShardedBufferCacheTest, EvictFileDropsOnlyThatFile) {
  EnvOptions o = SmallEnv(/*cache_pages=*/32);
  o.cache_shards = 4;
  Env env(o);
  const uint32_t f1 = env.CreateFile();
  const uint32_t f2 = env.CreateFile();
  PageData d;
  for (int i = 0; i < 6; i++) {
    ASSERT_TRUE(env.AppendPage(f1, Page(env, 'a'), nullptr).ok());
    ASSERT_TRUE(env.AppendPage(f2, Page(env, 'b'), nullptr).ok());
    ASSERT_TRUE(env.ReadPage(f1, i, &d).ok());
    ASSERT_TRUE(env.ReadPage(f2, i, &d).ok());
  }
  EXPECT_EQ(env.cache()->size(), 12u);
  env.cache()->Evict(f1);
  EXPECT_EQ(env.cache()->size(), 6u);
  // f2's pages are all still hits.
  const uint64_t hits_before = env.cache()->stats().hits;
  for (int i = 0; i < 6; i++) {
    ASSERT_TRUE(env.ReadPage(f2, i, &d).ok());
  }
  EXPECT_EQ(env.cache()->stats().hits, hits_before + 6);
}

TEST(ShardedBufferCacheTest, ConcurrentReadersAndEvictors) {
  EnvOptions o = SmallEnv(/*cache_pages=*/16);
  o.cache_shards = 8;
  o.disk_profile = DiskProfile::Null();
  Env env(o);
  const uint32_t f = env.CreateFile();
  constexpr int kPages = 64;
  for (int i = 0; i < kPages; i++) {
    ASSERT_TRUE(env.AppendPage(f, Page(env, char('a' + i % 26)), nullptr).ok());
  }
  std::atomic<bool> failed{false};
  auto reader = [&](int seed) {
    uint64_t s = seed;
    for (int i = 0; i < 2000; i++) {
      s = s * 6364136223846793005ULL + 1;
      const uint32_t page = (s >> 33) % kPages;
      PageData d;
      if (!env.ReadPage(f, page, &d, /*readahead_pages=*/2).ok() ||
          (*d)[0] != char('a' + page % 26)) {
        failed.store(true);
      }
    }
  };
  std::thread t1(reader, 1), t2(reader, 2), t3([&]() {
    for (int i = 0; i < 200; i++) {
      env.cache()->Evict(f + 1);  // no-op file: exercises the lock paths
      env.cache()->Clear();
    }
  });
  t1.join();
  t2.join();
  t3.join();
  EXPECT_FALSE(failed.load());
  const BufferCacheStats s = env.cache()->stats();
  EXPECT_GT(s.misses, 0u);
}

TEST(EnvTest, DeleteFileEvictsAndForgets) {
  Env env(SmallEnv());
  const uint32_t f = env.CreateFile();
  ASSERT_TRUE(env.AppendPage(f, Page(env, 'a'), nullptr).ok());
  PageData d;
  ASSERT_TRUE(env.ReadPage(f, 0, &d).ok());
  ASSERT_TRUE(env.DeleteFile(f).ok());
  EXPECT_TRUE(env.ReadPage(f, 0, &d).IsNotFound());
  EXPECT_TRUE(env.io()->HeadFiles().empty());
}

TEST(EnvTest, DeleteFileSweepsHeadsOnEveryQueue) {
  // Heads parked on the same file from several device queues must all be
  // forgotten when the file is deleted, not just the caller's queue.
  EnvOptions o = SmallEnv();
  o.io_queues = 3;
  Env env(o);
  const uint32_t f = env.CreateFile();
  const uint32_t g = env.CreateFile();
  for (int i = 0; i < 4; i++) {
    ASSERT_TRUE(env.AppendPage(f, Page(env, 'a'), nullptr).ok());
    ASSERT_TRUE(env.AppendPage(g, Page(env, 'b'), nullptr).ok());
  }
  PageData d;
  for (uint32_t q = 0; q < 3; q++) {
    IoQueueScope scope(env.io(), q);
    ASSERT_TRUE(env.ReadPage(f, q, &d).ok());
  }
  {
    IoQueueScope scope(env.io(), 1);
    ASSERT_TRUE(env.ReadPage(g, 0, &d).ok());
  }
  ASSERT_TRUE(env.DeleteFile(f).ok());
  const auto heads = env.io()->HeadFiles();
  ASSERT_EQ(heads.size(), 1u);
  EXPECT_EQ(heads[0], g);
}

// Retiring components through the real maintenance paths (merges and
// standalone secondary repair) deletes their files; no device queue may be
// left with a head resting on a deleted file.
TEST(EnvTest, RetiredComponentsLeakNoHeadPositions) {
  EnvOptions eo;
  eo.page_size = 4096;
  eo.cache_pages = 64;  // tiny cache: merges and repairs re-read from disk
  eo.cache_shards = 1;
  eo.io_queues = 4;
  Env env(eo);
  DatasetOptions o;
  o.strategy = MaintenanceStrategy::kValidation;
  o.merge_repair = true;  // exercises the repair retirement path too
  o.mem_budget_bytes = 64u << 10;
  o.max_mergeable_bytes = 8u << 20;
  o.maintenance_threads = 4;  // maintenance I/O spread over the 4 queues
  {
    Dataset ds(&env, o);
    TweetGenerator gen;
    Random rng(5);
    for (int i = 0; i < 4000; i++) {
      if (i > 100 && rng.Bernoulli(0.2)) {
        ASSERT_TRUE(ds.Upsert(gen.Update(rng.Uniform(gen.generated()))).ok());
      } else {
        ASSERT_TRUE(ds.Upsert(gen.Next()).ok());
      }
    }
    ASSERT_TRUE(ds.FlushAll().ok());
    ASSERT_TRUE(ds.RepairAllSecondaries().ok());
    ASSERT_GT(ds.ingest_stats().merges.load(), 0u);
    for (const uint32_t f : env.io()->HeadFiles()) {
      EXPECT_TRUE(env.store()->FileExists(f)) << "stale head on file " << f;
    }
  }
}

TEST(EnvTest, WriteChargesSequentialCost) {
  Env env(SmallEnv());
  const uint32_t f = env.CreateFile();
  ASSERT_TRUE(env.AppendPage(f, Page(env, 'a'), nullptr).ok());
  EXPECT_EQ(env.stats().pages_written, 1u);
  EXPECT_GT(env.stats().simulated_us, 0.0);
}

}  // namespace
}  // namespace auxlsm
