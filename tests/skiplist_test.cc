#include <gtest/gtest.h>

#include <map>
#include <string>

#include "common/random.h"
#include "mem/skiplist.h"

namespace auxlsm {
namespace {

using IntList = SkipList<int>;

TEST(SkipListTest, EmptyList) {
  IntList list;
  EXPECT_TRUE(list.empty());
  EXPECT_EQ(list.size(), 0u);
  EXPECT_EQ(list.First(), nullptr);
  EXPECT_EQ(list.Find("x"), nullptr);
  EXPECT_EQ(list.LowerBound(""), nullptr);
  EXPECT_FALSE(list.Erase("x"));
}

TEST(SkipListTest, InsertFindAssign) {
  IntList list;
  bool created = false;
  list.InsertOrAssign("b", 2, &created);
  EXPECT_TRUE(created);
  list.InsertOrAssign("a", 1, &created);
  EXPECT_TRUE(created);
  list.InsertOrAssign("b", 22, &created);
  EXPECT_FALSE(created);  // assignment, not insert
  EXPECT_EQ(list.size(), 2u);
  ASSERT_NE(list.Find("b"), nullptr);
  EXPECT_EQ(list.Find("b")->value, 22);
  EXPECT_EQ(list.Find("c"), nullptr);
}

TEST(SkipListTest, OrderedIteration) {
  IntList list;
  bool created;
  for (const char* k : {"delta", "alpha", "echo", "charlie", "bravo"}) {
    list.InsertOrAssign(k, 0, &created);
  }
  std::string prev;
  size_t n = 0;
  for (auto* node = list.First(); node != nullptr; node = IntList::Next(node)) {
    if (n > 0) EXPECT_LT(prev, node->key);
    prev = node->key;
    n++;
  }
  EXPECT_EQ(n, 5u);
}

TEST(SkipListTest, LowerBoundSemantics) {
  IntList list;
  bool created;
  for (const char* k : {"b", "d", "f"}) list.InsertOrAssign(k, 0, &created);
  EXPECT_EQ(list.LowerBound("a")->key, "b");
  EXPECT_EQ(list.LowerBound("b")->key, "b");
  EXPECT_EQ(list.LowerBound("c")->key, "d");
  EXPECT_EQ(list.LowerBound("f")->key, "f");
  EXPECT_EQ(list.LowerBound("g"), nullptr);
}

TEST(SkipListTest, EraseRelinksAllLevels) {
  IntList list;
  bool created;
  for (int i = 0; i < 100; i++) {
    list.InsertOrAssign("k" + std::to_string(i), i, &created);
  }
  for (int i = 0; i < 100; i += 2) {
    EXPECT_TRUE(list.Erase("k" + std::to_string(i)));
  }
  EXPECT_EQ(list.size(), 50u);
  // Remaining entries are intact and ordered.
  size_t n = 0;
  for (auto* node = list.First(); node != nullptr; node = IntList::Next(node)) {
    EXPECT_EQ(node->value % 2, 1);
    n++;
  }
  EXPECT_EQ(n, 50u);
}

TEST(SkipListTest, ClearThenReuse) {
  IntList list;
  bool created;
  for (int i = 0; i < 50; i++) {
    list.InsertOrAssign(std::to_string(i), i, &created);
  }
  list.Clear();
  EXPECT_TRUE(list.empty());
  EXPECT_EQ(list.First(), nullptr);
  list.InsertOrAssign("fresh", 1, &created);
  EXPECT_TRUE(created);
  EXPECT_EQ(list.size(), 1u);
}

TEST(SkipListTest, RandomOpsMatchStdMap) {
  IntList list;
  std::map<std::string, int> model;
  Random rng(31337);
  for (int i = 0; i < 20000; i++) {
    const std::string key = std::to_string(rng.Uniform(2000));
    const int op = static_cast<int>(rng.Uniform(3));
    if (op == 0 || op == 1) {
      bool created;
      list.InsertOrAssign(key, i, &created);
      EXPECT_EQ(created, model.find(key) == model.end());
      model[key] = i;
    } else {
      EXPECT_EQ(list.Erase(key), model.erase(key) > 0);
    }
  }
  EXPECT_EQ(list.size(), model.size());
  auto* node = list.First();
  for (const auto& [k, v] : model) {
    ASSERT_NE(node, nullptr);
    EXPECT_EQ(node->key, k);
    EXPECT_EQ(node->value, v);
    node = IntList::Next(node);
  }
  EXPECT_EQ(node, nullptr);
}

}  // namespace
}  // namespace auxlsm
