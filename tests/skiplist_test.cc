#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "mem/skiplist.h"

namespace auxlsm {
namespace {

using IntList = SkipList<int>;

TEST(SkipListTest, EmptyList) {
  IntList list;
  EXPECT_TRUE(list.empty());
  EXPECT_EQ(list.size(), 0u);
  EXPECT_EQ(list.First(), nullptr);
  EXPECT_EQ(list.Find("x"), nullptr);
  EXPECT_EQ(list.LowerBound(""), nullptr);
  EXPECT_FALSE(list.Erase("x"));
}

TEST(SkipListTest, InsertFindAssign) {
  IntList list;
  bool created = false;
  list.InsertOrAssign("b", 2, &created);
  EXPECT_TRUE(created);
  list.InsertOrAssign("a", 1, &created);
  EXPECT_TRUE(created);
  list.InsertOrAssign("b", 22, &created);
  EXPECT_FALSE(created);  // assignment, not insert
  EXPECT_EQ(list.size(), 2u);
  ASSERT_NE(list.Find("b"), nullptr);
  EXPECT_EQ(list.Find("b")->value, 22);
  EXPECT_EQ(list.Find("c"), nullptr);
}

TEST(SkipListTest, OrderedIteration) {
  IntList list;
  bool created;
  for (const char* k : {"delta", "alpha", "echo", "charlie", "bravo"}) {
    list.InsertOrAssign(k, 0, &created);
  }
  std::string prev;
  size_t n = 0;
  for (auto* node = list.First(); node != nullptr; node = IntList::Next(node)) {
    if (n > 0) EXPECT_LT(prev, node->key);
    prev = node->key;
    n++;
  }
  EXPECT_EQ(n, 5u);
}

TEST(SkipListTest, LowerBoundSemantics) {
  IntList list;
  bool created;
  for (const char* k : {"b", "d", "f"}) list.InsertOrAssign(k, 0, &created);
  EXPECT_EQ(list.LowerBound("a")->key, "b");
  EXPECT_EQ(list.LowerBound("b")->key, "b");
  EXPECT_EQ(list.LowerBound("c")->key, "d");
  EXPECT_EQ(list.LowerBound("f")->key, "f");
  EXPECT_EQ(list.LowerBound("g"), nullptr);
}

TEST(SkipListTest, EraseRelinksAllLevels) {
  IntList list;
  bool created;
  for (int i = 0; i < 100; i++) {
    list.InsertOrAssign("k" + std::to_string(i), i, &created);
  }
  for (int i = 0; i < 100; i += 2) {
    EXPECT_TRUE(list.Erase("k" + std::to_string(i)));
  }
  EXPECT_EQ(list.size(), 50u);
  // Remaining entries are intact and ordered.
  size_t n = 0;
  for (auto* node = list.First(); node != nullptr; node = IntList::Next(node)) {
    EXPECT_EQ(node->value % 2, 1);
    n++;
  }
  EXPECT_EQ(n, 50u);
}

TEST(SkipListTest, ClearThenReuse) {
  IntList list;
  bool created;
  for (int i = 0; i < 50; i++) {
    list.InsertOrAssign(std::to_string(i), i, &created);
  }
  list.Clear();
  EXPECT_TRUE(list.empty());
  EXPECT_EQ(list.First(), nullptr);
  list.InsertOrAssign("fresh", 1, &created);
  EXPECT_TRUE(created);
  EXPECT_EQ(list.size(), 1u);
}

TEST(SkipListTest, RandomOpsMatchStdMap) {
  IntList list;
  std::map<std::string, int> model;
  Random rng(31337);
  for (int i = 0; i < 20000; i++) {
    const std::string key = std::to_string(rng.Uniform(2000));
    const int op = static_cast<int>(rng.Uniform(3));
    if (op == 0 || op == 1) {
      bool created;
      list.InsertOrAssign(key, i, &created);
      EXPECT_EQ(created, model.find(key) == model.end());
      model[key] = i;
    } else {
      EXPECT_EQ(list.Erase(key), model.erase(key) > 0);
    }
  }
  EXPECT_EQ(list.size(), model.size());
  auto* node = list.First();
  for (const auto& [k, v] : model) {
    ASSERT_NE(node, nullptr);
    EXPECT_EQ(node->key, k);
    EXPECT_EQ(node->value, v);
    node = IntList::Next(node);
  }
  EXPECT_EQ(node, nullptr);
}

TEST(SkipListTest, ConcurrentInsertDisjointKeys) {
  IntList list;
  const int kThreads = 8, kPerThread = 4000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&list, t]() {
      for (int i = 0; i < kPerThread; i++) {
        char key[16];
        std::snprintf(key, sizeof(key), "%03d-%05d", i % 997, t * kPerThread + i);
        bool created = false;
        list.InsertOrAssign(key, t, &created);
        EXPECT_TRUE(created);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(list.size(), size_t(kThreads * kPerThread));
  // Fully ordered and all present.
  size_t count = 0;
  std::string prev;
  for (auto* n = list.First(); n != nullptr; n = IntList::Next(n)) {
    if (count > 0) EXPECT_LT(prev, n->key);
    prev = n->key;
    count++;
  }
  EXPECT_EQ(count, size_t(kThreads * kPerThread));
}

TEST(SkipListTest, ConcurrentReadersDuringInserts) {
  IntList list;
  std::atomic<bool> stop{false};
  std::thread reader([&]() {
    while (!stop.load(std::memory_order_relaxed)) {
      size_t count = 0;
      std::string prev;
      for (auto* n = list.First(); n != nullptr; n = IntList::Next(n)) {
        if (count > 0) ASSERT_LT(prev, n->key);  // always sorted mid-insert
        prev = n->key;
        count++;
      }
      (void)list.Find("00500");
      (void)list.LowerBound("00250");
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; t++) {
    writers.emplace_back([&list, t]() {
      for (int i = t; i < 8000; i += 4) {
        char key[8];
        std::snprintf(key, sizeof(key), "%05d", i);
        bool created = false;
        list.InsertOrAssign(key, i, &created);
      }
    });
  }
  for (auto& th : writers) th.join();
  stop.store(true);
  reader.join();
  EXPECT_EQ(list.size(), 8000u);
  for (int i = 0; i < 8000; i += 61) {
    char key[8];
    std::snprintf(key, sizeof(key), "%05d", i);
    auto* n = list.Find(key);
    ASSERT_NE(n, nullptr);
    EXPECT_EQ(n->value, i);
  }
}

}  // namespace
}  // namespace auxlsm
