// Observability layer (PR 8): histogram bucketing and percentile readout,
// concurrent recording, registry get-or-create and gauge semantics,
// snapshot-JSON round-trip, tracer span nesting / ring-overflow semantics,
// Chrome export validity, the stats-struct operator- ergonomics, and the
// armed-but-quiet parity contract — a metrics registry plus tracer wired to
// an otherwise identical workload must not move one modeled microsecond,
// across all four maintenance strategies.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "core/dataset.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace auxlsm {
namespace {

using obs::Histogram;
using obs::HistogramSnapshot;
using obs::MetricsRegistry;
using obs::MetricsSnapshot;
using obs::TraceEvent;
using obs::Tracer;
using obs::TraceSpan;

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

TEST(HistogramTest, ExactBucketsBelowLimit) {
  for (uint64_t v = 0; v < Histogram::kExactLimit; v++) {
    EXPECT_EQ(Histogram::BucketOf(v), size_t(v));
    EXPECT_EQ(Histogram::BucketUpper(size_t(v)), v);
  }
}

TEST(HistogramTest, BucketBoundsContainValueWithinQuarterRelativeError) {
  std::vector<uint64_t> probes;
  for (uint64_t v = Histogram::kExactLimit; v < 4096; v++) probes.push_back(v);
  for (int shift = 12; shift < 63; shift++) {
    probes.push_back((uint64_t(1) << shift) - 1);
    probes.push_back(uint64_t(1) << shift);
    probes.push_back((uint64_t(1) << shift) + (uint64_t(1) << (shift - 1)));
  }
  for (uint64_t v : probes) {
    const size_t idx = Histogram::BucketOf(v);
    const uint64_t upper = Histogram::BucketUpper(idx);
    ASSERT_GE(upper, v) << v;
    // <= 25% relative overestimate: the bucket's upper bound is within a
    // quarter of the value (sub-bucket width is lower/4 or less).
    ASSERT_LE(double(upper - v), 0.25 * double(v) + 1) << v;
  }
}

TEST(HistogramTest, BucketUpperIsStrictlyMonotone) {
  for (size_t i = 1; i < Histogram::kNumBuckets; i++) {
    ASSERT_LT(Histogram::BucketUpper(i - 1), Histogram::BucketUpper(i)) << i;
  }
}

TEST(HistogramTest, PercentilesExactInUnitBuckets) {
  Histogram h;
  // 50 x 4, 40 x 5, 10 x 7: nearest-rank p50 = 4, p90 = 5, p99 = 7.
  for (int i = 0; i < 50; i++) h.Record(4);
  for (int i = 0; i < 40; i++) h.Record(5);
  for (int i = 0; i < 10; i++) h.Record(7);
  const HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, 100u);
  EXPECT_EQ(s.sum, 50u * 4 + 40u * 5 + 10u * 7);
  EXPECT_EQ(s.max, 7u);
  EXPECT_EQ(s.p50, 4u);
  EXPECT_EQ(s.p90, 5u);
  EXPECT_EQ(s.p99, 7u);
  EXPECT_DOUBLE_EQ(s.mean(), double(s.sum) / 100.0);
}

TEST(HistogramTest, PercentilesClampToExactMax) {
  Histogram h;
  h.Record(1000000);  // one sample: every percentile is the exact max
  const HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, 1u);
  EXPECT_EQ(s.max, 1000000u);
  EXPECT_EQ(s.p50, 1000000u);
  EXPECT_EQ(s.p99, 1000000u);
}

TEST(HistogramTest, EmptySnapshotIsZero) {
  Histogram h;
  const HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.max, 0u);
  EXPECT_EQ(s.p50, 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(HistogramTest, ConcurrentRecordingLosesNothing) {
  Histogram h;
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&h, t]() {
      for (uint64_t i = 0; i < kPerThread; i++) {
        h.Record(uint64_t(t) * 1000 + (i % 97));
      }
    });
  }
  for (auto& t : threads) t.join();
  const HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, uint64_t(kThreads) * kPerThread);
  uint64_t expect_sum = 0;
  for (int t = 0; t < kThreads; t++) {
    for (uint64_t i = 0; i < kPerThread; i++) {
      expect_sum += uint64_t(t) * 1000 + (i % 97);
    }
  }
  EXPECT_EQ(s.sum, expect_sum);
  EXPECT_EQ(s.max, 7u * 1000 + 96);
}

// ---------------------------------------------------------------------------
// Registry + snapshot JSON
// ---------------------------------------------------------------------------

TEST(MetricsRegistryTest, GetOrCreateReturnsStablePointers) {
  MetricsRegistry reg;
  obs::Counter* c1 = reg.counter("ingest.ops");
  obs::Counter* c2 = reg.counter("ingest.ops");
  EXPECT_EQ(c1, c2);
  ++*c1;
  *c1 += 4;
  Histogram* h1 = reg.histogram("lat_ns");
  Histogram* h2 = reg.histogram("lat_ns");
  EXPECT_EQ(h1, h2);
  h1->Record(3);
  reg.SetGauge("depth", [] { return 12.5; });

  const MetricsSnapshot s = reg.Snapshot();
  ASSERT_EQ(s.values.count("ingest.ops"), 1u);
  EXPECT_DOUBLE_EQ(s.values.at("ingest.ops"), 5.0);
  ASSERT_EQ(s.values.count("depth"), 1u);
  EXPECT_DOUBLE_EQ(s.values.at("depth"), 12.5);
  ASSERT_EQ(s.histograms.count("lat_ns"), 1u);
  EXPECT_EQ(s.histograms.at("lat_ns").count, 1u);
}

TEST(MetricsSnapshotTest, JsonRoundTrip) {
  MetricsSnapshot s;
  s.Set("a.count", 42);
  s.Set("b.ratio", 0.125);
  s.Set("c \"quoted\"\\path\n", 3);  // name needing escapes
  HistogramSnapshot h;
  h.count = 7;
  h.sum = 700;
  h.max = 250;
  h.p50 = 90;
  h.p90 = 200;
  h.p99 = 250;
  s.histograms["lat_ns"] = h;

  const std::string json = s.ToJson();
  MetricsSnapshot back;
  ASSERT_TRUE(MetricsSnapshot::FromJson(json, &back)) << json;
  EXPECT_EQ(back.values.size(), s.values.size());
  for (const auto& [k, v] : s.values) {
    ASSERT_EQ(back.values.count(k), 1u) << k;
    EXPECT_DOUBLE_EQ(back.values.at(k), v) << k;
  }
  ASSERT_EQ(back.histograms.count("lat_ns"), 1u);
  const HistogramSnapshot& bh = back.histograms.at("lat_ns");
  EXPECT_EQ(bh.count, h.count);
  EXPECT_EQ(bh.sum, h.sum);
  EXPECT_EQ(bh.max, h.max);
  EXPECT_EQ(bh.p50, h.p50);
  EXPECT_EQ(bh.p90, h.p90);
  EXPECT_EQ(bh.p99, h.p99);
  // Stability: serializing the parse reproduces the exact bytes.
  EXPECT_EQ(back.ToJson(), json);
}

TEST(MetricsSnapshotTest, FromJsonRejectsMalformed) {
  MetricsSnapshot out;
  EXPECT_FALSE(MetricsSnapshot::FromJson("", &out));
  EXPECT_FALSE(MetricsSnapshot::FromJson("{\"values\":", &out));
  EXPECT_FALSE(MetricsSnapshot::FromJson("not json", &out));
}

TEST(MetricsSnapshotTest, MergePrefersOther) {
  MetricsSnapshot a, b;
  a.Set("x", 1);
  a.Set("y", 2);
  b.Set("y", 20);
  b.histograms["h"].count = 3;
  a.Merge(b);
  EXPECT_DOUBLE_EQ(a.values.at("x"), 1);
  EXPECT_DOUBLE_EQ(a.values.at("y"), 20);
  EXPECT_EQ(a.histograms.at("h").count, 3u);
}

// ---------------------------------------------------------------------------
// Tracer
// ---------------------------------------------------------------------------

TEST(TracerTest, SpanNestingRecordsBothWithContainment) {
  Tracer tracer(1 << 16);
  double modeled = 100.0;
  tracer.set_modeled_clock([&modeled] { return modeled; });
  {
    TraceSpan outer(&tracer, "outer", "test");
    modeled += 40;
    {
      TraceSpan inner(&tracer, "inner", "test", /*queue=*/2);
      modeled += 10;
    }
    modeled += 5;
  }
  std::vector<TraceEvent> events = tracer.Drain();
  ASSERT_EQ(events.size(), 2u);
  // Destruction order: inner records first.
  const TraceEvent& inner = events[0];
  const TraceEvent& outer = events[1];
  EXPECT_STREQ(inner.name, "inner");
  EXPECT_STREQ(outer.name, "outer");
  EXPECT_EQ(inner.queue, 2);
  EXPECT_EQ(inner.tid, outer.tid);
  // Wall containment: inner starts at/after outer and ends at/before it.
  EXPECT_GE(inner.wall_ts_us, outer.wall_ts_us);
  EXPECT_LE(inner.wall_ts_us + inner.wall_dur_us,
            outer.wall_ts_us + outer.wall_dur_us + 1e-6);
  // Modeled stamps follow the virtual clock: outer spans 55 us, inner 10.
  EXPECT_DOUBLE_EQ(outer.modeled_ts_us, 100.0);
  EXPECT_DOUBLE_EQ(outer.modeled_dur_us, 55.0);
  EXPECT_DOUBLE_EQ(inner.modeled_ts_us, 140.0);
  EXPECT_DOUBLE_EQ(inner.modeled_dur_us, 10.0);
}

TEST(TracerTest, RingOverflowKeepsNewestAndCountsDropped) {
  Tracer tracer(16 * sizeof(TraceEvent));  // tiny ring (min 16 events)
  const size_t cap = tracer.events_per_thread();
  const size_t extra = 5;
  for (size_t i = 0; i < cap + extra; i++) {
    tracer.Instant(("e" + std::to_string(i)).c_str(), "test");
  }
  EXPECT_EQ(tracer.dropped(), extra);
  std::vector<TraceEvent> events = tracer.Drain();
  ASSERT_EQ(events.size(), cap);
  // Oldest-first drain of the newest `cap` events.
  EXPECT_STREQ(events.front().name, ("e" + std::to_string(extra)).c_str());
  EXPECT_STREQ(events.back().name,
               ("e" + std::to_string(cap + extra - 1)).c_str());
  // Drain cleared the rings.
  EXPECT_TRUE(tracer.Drain().empty());
}

TEST(TracerTest, ThreadsGetDistinctTids) {
  Tracer tracer(1 << 16);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; t++) {
    threads.emplace_back([&tracer] { tracer.Instant("hi", "test"); });
  }
  for (auto& t : threads) t.join();
  std::vector<TraceEvent> events = tracer.Drain();
  ASSERT_EQ(events.size(), 4u);
  std::vector<uint32_t> tids;
  for (const auto& e : events) tids.push_back(e.tid);
  std::sort(tids.begin(), tids.end());
  EXPECT_EQ(std::unique(tids.begin(), tids.end()), tids.end());
}

TEST(TracerTest, ChromeExportShapesEvents) {
  Tracer tracer(1 << 16);
  double modeled = 0;
  tracer.set_modeled_clock([&modeled] { return modeled; });
  {
    TraceSpan span(&tracer, "flush_build(user_id)", "maintenance", 1);
    modeled += 123.5;
  }
  tracer.Instant("dataset.degraded", "health");
  const std::string json = Tracer::ToChromeJson(tracer.Drain());
  // Chrome trace-event envelope and both timelines.
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos) << json;
  EXPECT_NE(json.find("\"name\":\"flush_build(user_id)\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"maintenance\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);  // complete event
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);  // instant event
  EXPECT_NE(json.find("\"modeled_ts_us\""), std::string::npos);
  EXPECT_NE(json.find("\"modeled_dur_us\":123.5"), std::string::npos);
  EXPECT_NE(json.find("\"queue\":1"), std::string::npos);
  // Balanced braces/brackets (cheap well-formedness check).
  int depth = 0;
  bool in_str = false;
  for (size_t i = 0; i < json.size(); i++) {
    const char c = json[i];
    if (in_str) {
      if (c == '\\') i++;
      else if (c == '"') in_str = false;
    } else if (c == '"') {
      in_str = true;
    } else if (c == '{' || c == '[') {
      depth++;
    } else if (c == '}' || c == ']') {
      depth--;
    }
  }
  EXPECT_EQ(depth, 0);
}

// ---------------------------------------------------------------------------
// Stats-struct operator- ergonomics (satellite)
// ---------------------------------------------------------------------------

TEST(StatsDeltaTest, WalStatsSubtracts) {
  WalStats a, b;
  a.records = 100;
  a.commits = 50;
  a.syncs = 9;
  a.batched_commits = 41;
  a.commit_latency_us_total = 900.0;
  a.commit_latency_us_max = 80.0;
  b.records = 40;
  b.commits = 20;
  b.syncs = 4;
  b.batched_commits = 16;
  b.commit_latency_us_total = 300.0;
  b.commit_latency_us_max = 80.0;
  const WalStats d = a - b;
  EXPECT_EQ(d.records, 60u);
  EXPECT_EQ(d.commits, 30u);
  EXPECT_EQ(d.syncs, 5u);
  EXPECT_EQ(d.batched_commits, 25u);
  EXPECT_DOUBLE_EQ(d.commit_latency_us_total, 600.0);
  EXPECT_DOUBLE_EQ(d.commit_latency_us_max, 80.0);  // high-water kept
}

TEST(StatsDeltaTest, MaintenanceStatsSubtracts) {
  MaintenanceStats a;
  a.transient_failures = 7;
  a.retries_attempted = 6;
  a.retries_succeeded = 5;
  a.rounds_abandoned = 2;
  a.degraded_transitions = 1;
  MaintenanceStats b;
  b.transient_failures = 3;
  b.retries_attempted = 2;
  b.retries_succeeded = 2;
  b.rounds_abandoned = 1;
  b.degraded_transitions = 0;
  const MaintenanceStats d = a - b;
  EXPECT_EQ(d.transient_failures.load(), 4u);
  EXPECT_EQ(d.retries_attempted.load(), 4u);
  EXPECT_EQ(d.retries_succeeded.load(), 3u);
  EXPECT_EQ(d.rounds_abandoned.load(), 1u);
  EXPECT_EQ(d.degraded_transitions.load(), 1u);
}

TEST(StatsDeltaTest, TupleCacheStatsSubtracts) {
  TupleCacheStats a;
  a.hits = 10;
  a.chain_served = 30;
  a.misses = 5;
  a.invalidations = 4;
  a.evictions = 3;
  a.inserts = 12;
  a.stale_drops = 2;
  a.resident_bytes = 4096;
  TupleCacheStats b;
  b.hits = 4;
  b.chain_served = 10;
  b.misses = 2;
  b.invalidations = 1;
  b.evictions = 1;
  b.inserts = 5;
  b.stale_drops = 0;
  b.resident_bytes = 9999;  // ignored: level gauge
  const TupleCacheStats d = a - b;
  EXPECT_EQ(d.hits, 6u);
  EXPECT_EQ(d.chain_served, 20u);
  EXPECT_EQ(d.misses, 3u);
  EXPECT_EQ(d.invalidations, 3u);
  EXPECT_EQ(d.evictions, 2u);
  EXPECT_EQ(d.inserts, 7u);
  EXPECT_EQ(d.stale_drops, 2u);
  EXPECT_EQ(d.resident_bytes, 4096u);  // minuend's current value kept
}

// ---------------------------------------------------------------------------
// Dataset integration: snapshot contents, DebugString, armed-parity
// ---------------------------------------------------------------------------

TweetRecord MakeTweet(uint64_t id) {
  TweetRecord r;
  r.id = id;
  r.user_id = id % 100;
  r.location = id % 2 ? "CA" : "NY";
  r.creation_time = 1000 + id;
  r.message = "observability #" + std::to_string(id);
  return r;
}

/// Small deterministic workload: enough upserts to trigger flushes and
/// merges, one delete, then a point read and a secondary query.
void RunWorkload(Env* env, Dataset* ds) {
  for (uint64_t i = 1; i <= 3000; i++) {
    ASSERT_TRUE(ds->Upsert(MakeTweet(i)).ok());
  }
  ASSERT_TRUE(ds->Delete(7).ok());
  ASSERT_TRUE(ds->FlushAll().ok());
  TweetRecord got;
  ASSERT_TRUE(ds->GetById(42, &got).ok());
  QueryResult res;
  SecondaryQueryOptions q;
  ASSERT_TRUE(ds->QueryUserRange(10, 20, q, &res).ok());
  (void)env;
}

DatasetOptions SmallOptions(MaintenanceStrategy strategy) {
  DatasetOptions o;
  o.strategy = strategy;
  o.maintenance_threads = 1;
  o.mem_budget_bytes = 256 << 10;
  o.max_mergeable_bytes = 2 << 20;
  return o;
}

TEST(DatasetObsTest, MetricsSnapshotFoldsEverySubsystem) {
  MetricsRegistry reg;
  EnvOptions eo;
  eo.metrics = &reg;
  Env env(eo);
  DatasetOptions o = SmallOptions(MaintenanceStrategy::kValidation);
  o.metrics = &reg;
  o.trace_buffer_bytes = 1 << 16;
  Dataset ds(&env, o);
  RunWorkload(&env, &ds);

  const MetricsSnapshot s = ds.MetricsSnapshot();
  // Folded stats-struct counters.
  EXPECT_DOUBLE_EQ(s.values.at("ingest.upserts"), 3000.0);
  EXPECT_DOUBLE_EQ(s.values.at("ingest.deletes"), 1.0);
  EXPECT_GT(s.values.at("maintenance.flushes"), 0.0);
  EXPECT_GT(s.values.at("wal.records"), 0.0);
  EXPECT_GT(s.values.at("io.storage.pages_written"), 0.0);
  EXPECT_GT(s.values.at("io.storage.simulated_us"), 0.0);
  EXPECT_GE(s.values.at("io.log.simulated_us"), 0.0);
  EXPECT_DOUBLE_EQ(s.values.at("dataset.degraded"), 0.0);
  EXPECT_DOUBLE_EQ(s.values.at("dataset.records"), 2999.0);
  // Live backlog gauges (satellite): per-tree + WAL + exec.
  EXPECT_EQ(s.values.count("wal.commit_waiters"), 1u);
  EXPECT_EQ(s.values.count("wal.unsynced_records"), 1u);
  EXPECT_EQ(s.values.count("exec.pool_queue_depth"), 1u);
  size_t tree_gauges = 0;
  for (const auto& [k, v] : s.values) {
    if (k.rfind("lsm.", 0) == 0 &&
        k.find(".merge_pending_jobs") != std::string::npos) {
      tree_gauges++;
      EXPECT_DOUBLE_EQ(v, 0.0) << k;  // quiescent after FlushAll
    }
  }
  EXPECT_GE(tree_gauges, 2u);  // at least primary + one secondary tree
  // Registry metrics merged on top: the ingest-op latency histograms.
  ASSERT_EQ(s.histograms.count("ingest.op_modeled_ns"), 1u);
  EXPECT_EQ(s.histograms.at("ingest.op_modeled_ns").count, 3001u);
  EXPECT_GT(s.histograms.at("ingest.op_modeled_ns").max, 0u);
  ASSERT_EQ(s.histograms.count("ingest.op_wall_ns"), 1u);
  // io.* request counters from both engines.
  EXPECT_GT(s.values.at("io.storage.requests"), 0.0);
  // Tracing armed: drop gauge present.
  EXPECT_EQ(s.values.count("trace.dropped_events"), 1u);

  // DebugString: one-call dump, mentions strategy + some metric names.
  const std::string dump = ds.DebugString();
  EXPECT_NE(dump.find("validation"), std::string::npos);
  EXPECT_NE(dump.find("ingest.upserts"), std::string::npos);
  EXPECT_NE(dump.find("ingest.op_modeled_ns"), std::string::npos);

  // The traced workload recorded maintenance-cycle spans.
  std::vector<TraceEvent> events = ds.tracer()->Drain();
  bool saw_seal = false, saw_build = false, saw_install = false;
  bool saw_op = false;
  for (const auto& e : events) {
    if (std::string(e.name) == "seal") saw_seal = true;
    if (std::string(e.name).rfind("flush_build", 0) == 0) saw_build = true;
    if (std::string(e.name) == "install") saw_install = true;
    if (std::string(e.name) == "ingest.op") saw_op = true;
  }
  EXPECT_TRUE(saw_seal);
  EXPECT_TRUE(saw_build);
  EXPECT_TRUE(saw_install);
  EXPECT_TRUE(saw_op);
}

TEST(DatasetObsTest, SnapshotJsonRoundTripsThroughFile) {
  MetricsRegistry reg;
  EnvOptions eo;
  eo.metrics = &reg;
  Env env(eo);
  DatasetOptions o = SmallOptions(MaintenanceStrategy::kEager);
  o.metrics = &reg;
  Dataset ds(&env, o);
  for (uint64_t i = 1; i <= 500; i++) {
    ASSERT_TRUE(ds.Upsert(MakeTweet(i)).ok());
  }
  const MetricsSnapshot s = ds.MetricsSnapshot();
  MetricsSnapshot back;
  ASSERT_TRUE(MetricsSnapshot::FromJson(s.ToJson(), &back));
  EXPECT_EQ(back.ToJson(), s.ToJson());
  EXPECT_EQ(back.values.size(), s.values.size());
}

struct ParityResult {
  double sim_us = 0;
  double wal_sim_us = 0;
  uint64_t pages_read = 0;
  uint64_t pages_written = 0;
  uint64_t records = 0;
};

ParityResult RunParityWorkload(MaintenanceStrategy strategy, bool armed) {
  MetricsRegistry reg;
  Tracer* tracer = nullptr;
  EnvOptions eo;
  if (armed) eo.metrics = &reg;
  Env env(eo);
  DatasetOptions o = SmallOptions(strategy);
  if (armed) {
    o.metrics = &reg;
    o.trace_buffer_bytes = 1 << 18;
  }
  Dataset ds(&env, o);
  RunWorkload(&env, &ds);
  ParityResult r;
  r.sim_us = env.stats().simulated_us;
  r.wal_sim_us = ds.wal()->stats().simulated_us;
  r.pages_read = env.stats().pages_read;
  r.pages_written = env.stats().pages_written;
  r.records = ds.num_records();
  if (armed) {
    // The armed run must actually have recorded something — otherwise this
    // parity check would pass vacuously.
    EXPECT_GT(reg.Snapshot().histograms.at("ingest.op_modeled_ns").count, 0u);
    tracer = ds.tracer();
    EXPECT_FALSE(tracer->Drain().empty());
  }
  return r;
}

/// The armed-but-quiet contract: metrics + tracing wired in must not change
/// one modeled microsecond or page count, for every maintenance strategy.
TEST(DatasetObsTest, ArmedButQuietParityAcrossStrategies) {
  for (MaintenanceStrategy s :
       {MaintenanceStrategy::kEager, MaintenanceStrategy::kValidation,
        MaintenanceStrategy::kMutableBitmap,
        MaintenanceStrategy::kDeletedKeyBtree}) {
    const ParityResult off = RunParityWorkload(s, /*armed=*/false);
    const ParityResult on = RunParityWorkload(s, /*armed=*/true);
    EXPECT_DOUBLE_EQ(on.sim_us, off.sim_us) << StrategyName(s);
    EXPECT_DOUBLE_EQ(on.wal_sim_us, off.wal_sim_us) << StrategyName(s);
    EXPECT_EQ(on.pages_read, off.pages_read) << StrategyName(s);
    EXPECT_EQ(on.pages_written, off.pages_written) << StrategyName(s);
    EXPECT_EQ(on.records, off.records) << StrategyName(s);
  }
}

}  // namespace
}  // namespace auxlsm
