// Unified read API tests: cursor/legacy parity (rows *and* order, counters)
// across all four maintenance strategies, pagination-resume stability while
// concurrent writers ingest, early termination of Limit(k) queries
// (strictly fewer candidates and strictly less simulated I/O), and the
// secondary-index name catalog.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <set>
#include <thread>

#include "core/dataset.h"
#include "format/key_codec.h"

namespace auxlsm {
namespace {

EnvOptions TestEnv() {
  EnvOptions o;
  o.page_size = 1024;
  o.cache_pages = 1 << 16;
  o.disk_profile = DiskProfile::Null();
  return o;
}

TweetRecord MakeTweet(uint64_t id, uint64_t user, uint64_t time) {
  TweetRecord r;
  r.id = id;
  r.user_id = user;
  r.location = "NY";
  r.creation_time = time;
  r.message = std::string(50, 'x');
  return r;
}

// Loads several components' worth of data with updates and deletes; returns
// the expected live ids per user.
std::map<uint64_t, std::set<uint64_t>> Load(Dataset* ds) {
  std::map<uint64_t, uint64_t> current_user;
  uint64_t time = 0;
  for (uint64_t i = 1; i <= 400; i++) {
    const uint64_t user = i % 16;
    EXPECT_TRUE(ds->Upsert(MakeTweet(i, user, ++time)).ok());
    current_user[i] = user;
    if (i % 100 == 0) EXPECT_TRUE(ds->FlushAll().ok());
  }
  for (uint64_t i = 1; i <= 400; i += 5) {
    const uint64_t user = (i % 16) + 16;  // move to a high-user bucket
    EXPECT_TRUE(ds->Upsert(MakeTweet(i, user, ++time)).ok());
    current_user[i] = user;
  }
  for (uint64_t i = 3; i <= 400; i += 50) {
    EXPECT_TRUE(ds->Delete(i).ok());
    current_user.erase(i);
  }
  EXPECT_TRUE(ds->FlushAll().ok());
  std::map<uint64_t, std::set<uint64_t>> expected;
  for (const auto& [id, user] : current_user) expected[user].insert(id);
  return expected;
}

std::set<uint64_t> ExpectedInRange(
    const std::map<uint64_t, std::set<uint64_t>>& expected, uint64_t lo,
    uint64_t hi) {
  std::set<uint64_t> out;
  for (const auto& [user, ids] : expected) {
    if (user < lo || user > hi) continue;
    out.insert(ids.begin(), ids.end());
  }
  return out;
}

class StrategyTest : public ::testing::TestWithParam<MaintenanceStrategy> {};

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, StrategyTest,
    ::testing::Values(MaintenanceStrategy::kEager,
                      MaintenanceStrategy::kValidation,
                      MaintenanceStrategy::kMutableBitmap,
                      MaintenanceStrategy::kDeletedKeyBtree),
    [](const auto& info) {
      std::string name = StrategyName(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// The paginated cursor must deliver exactly the legacy wrapper's rows, in
// the legacy order, with the legacy counters — for records, index-only
// keys, and both scan shapes — under every maintenance strategy.
TEST_P(StrategyTest, CursorMatchesLegacyRowsOrderAndCounters) {
  Env env(TestEnv());
  DatasetOptions o;
  o.strategy = GetParam();
  o.mem_budget_bytes = 1 << 30;  // manual flushes only
  Dataset ds(&env, o);
  const auto expected = Load(&ds);

  for (const auto& [lo, hi] :
       std::vector<std::pair<uint64_t, uint64_t>>{{0, 15}, {16, 31},
                                                  {5, 20}, {40, 50}}) {
    SecondaryQueryOptions qopts;
    QueryResult legacy;
    ASSERT_TRUE(ds.QueryUserRange(lo, hi, qopts, &legacy).ok());

    // Paginated cursor over the same range (unlimited): page slicing must
    // not change rows, order, or counters.
    ReadOptions ro;
    ro.secondary = qopts;
    auto cursor_or = ds.NewCursor(
        Query().Secondary().Range(lo, hi).PageSize(7).Options(ro));
    ASSERT_TRUE(cursor_or.ok());
    auto cursor = std::move(cursor_or).value();
    std::vector<uint64_t> cursor_ids;
    QueryPage page;
    while (!cursor->done()) {
      ASSERT_TRUE(cursor->Next(&page).ok());
      EXPECT_LE(page.rows(), 7u);
      for (const auto& r : page.records) cursor_ids.push_back(r.id);
    }
    std::vector<uint64_t> legacy_ids;
    for (const auto& r : legacy.records) legacy_ids.push_back(r.id);
    EXPECT_EQ(cursor_ids, legacy_ids) << "users [" << lo << "," << hi << "]";
    EXPECT_EQ(cursor->stats().candidates, legacy.candidates);
    EXPECT_EQ(cursor->stats().validated_out, legacy.validated_out);

    // Ground truth: the reconciled live set.
    EXPECT_EQ(std::set<uint64_t>(cursor_ids.begin(), cursor_ids.end()),
              ExpectedInRange(expected, lo, hi));

    // Index-only projection parity (via the builder flag, which must fold
    // into the legacy option).
    SecondaryQueryOptions iopts;
    iopts.index_only = true;
    QueryResult ilegacy;
    ASSERT_TRUE(ds.QueryUserRange(lo, hi, iopts, &ilegacy).ok());
    auto icur_or = ds.NewCursor(
        Query().Secondary().Range(lo, hi).PageSize(3).IndexOnly());
    ASSERT_TRUE(icur_or.ok());
    auto icur = std::move(icur_or).value();
    std::vector<std::string> ikeys;
    while (!icur->done()) {
      ASSERT_TRUE(icur->Next(&page).ok());
      for (auto& k : page.keys) ikeys.push_back(k);
    }
    EXPECT_EQ(ikeys, ilegacy.keys);
  }

  // Scan parity: legacy counters vs a row-producing paginated scan cursor.
  ScanResult time_scan;
  ASSERT_TRUE(ds.ScanTimeRange(100, 500, &time_scan).ok());
  auto scan_or = ds.NewCursor(Query().TimeRange(100, 500).PageSize(11));
  ASSERT_TRUE(scan_or.ok());
  auto scan = std::move(scan_or).value();
  uint64_t rows = 0;
  QueryPage page;
  while (!scan->done()) {
    ASSERT_TRUE(scan->Next(&page).ok());
    for (const auto& r : page.records) {
      EXPECT_GE(r.creation_time, 100u);
      EXPECT_LE(r.creation_time, 500u);
      rows++;
    }
  }
  EXPECT_EQ(rows, time_scan.records_matched);
  EXPECT_EQ(scan->stats().records_scanned, time_scan.records_scanned);
  EXPECT_EQ(scan->stats().components_pruned, time_scan.components_pruned);
  EXPECT_EQ(scan->stats().components_scanned, time_scan.components_scanned);

  ScanResult full;
  ASSERT_TRUE(ds.FullScanUserRange(0, 15, &full).ok());
  auto full_or = ds.NewCursor(Query().Range(0, 15).PageSize(11));
  ASSERT_TRUE(full_or.ok());
  auto fcur = std::move(full_or).value();
  std::set<uint64_t> fids;
  while (!fcur->done()) {
    ASSERT_TRUE(fcur->Next(&page).ok());
    for (const auto& r : page.records) fids.insert(r.id);
  }
  EXPECT_EQ(fids.size(), full.records_matched);
  EXPECT_EQ(fids, ExpectedInRange(expected, 0, 15));
}

// A Limit(k) cursor stops early under every strategy and never duplicates
// a primary key even when obsolete secondary entries for the same record
// sit in different candidate chunks.
TEST_P(StrategyTest, LimitedCursorPaginatesWithoutDuplicates) {
  Env env(TestEnv());
  DatasetOptions o;
  o.strategy = GetParam();
  o.mem_budget_bytes = 1 << 30;
  Dataset ds(&env, o);
  const auto expected = Load(&ds);
  const auto want = ExpectedInRange(expected, 0, 31);  // old + new buckets

  for (uint64_t limit : {1u, 7u, 50u, 1000u}) {
    auto cur_or =
        ds.NewCursor(Query().Secondary().Range(0, 31).Limit(limit).PageSize(4));
    ASSERT_TRUE(cur_or.ok());
    auto cur = std::move(cur_or).value();
    std::set<uint64_t> seen;
    QueryPage page;
    while (!cur->done()) {
      ASSERT_TRUE(cur->Next(&page).ok());
      for (const auto& r : page.records) {
        EXPECT_TRUE(seen.insert(r.id).second) << "duplicate id " << r.id;
        EXPECT_TRUE(want.count(r.id)) << "unexpected id " << r.id;
      }
    }
    EXPECT_EQ(seen.size(), std::min<uint64_t>(limit, want.size()));
  }

  // Direct validation keeps working across chunks (it relies on the
  // cross-chunk emitted-pk dedup).
  SecondaryQueryOptions direct;
  direct.validation = SecondaryQueryOptions::Validation::kDirect;
  ReadOptions ro;
  ro.secondary = direct;
  auto cur_or = ds.NewCursor(
      Query().Secondary().Range(0, 31).Limit(1000).PageSize(4).Options(ro));
  ASSERT_TRUE(cur_or.ok());
  auto cur = std::move(cur_or).value();
  std::set<uint64_t> seen;
  QueryPage page;
  while (!cur->done()) {
    ASSERT_TRUE(cur->Next(&page).ok());
    for (const auto& r : page.records) {
      EXPECT_TRUE(seen.insert(r.id).second) << "duplicate id " << r.id;
    }
  }
  EXPECT_EQ(seen, want);
}

// Acceptance: a Limit(k) secondary query does strictly less work than the
// unlimited query — fewer candidates pulled and fewer simulated-I/O
// microseconds — on identically rebuilt datasets (cold caches both times).
TEST(LimitWorkTest, LimitDoesStrictlyLessWork) {
  EnvOptions eo;
  eo.page_size = 1024;
  eo.cache_pages = 64;  // tiny cache: fetches pay modeled I/O
  eo.disk_profile = DiskProfile::Hdd();

  struct Run {
    uint64_t rows = 0;
    uint64_t candidates = 0;
    double sim_us = 0;
  };
  auto run = [&](uint64_t limit) {
    Env env(eo);
    DatasetOptions o;
    o.strategy = MaintenanceStrategy::kEager;
    o.mem_budget_bytes = 1 << 30;
    Dataset ds(&env, o);
    uint64_t time = 0;
    for (uint64_t i = 1; i <= 3000; i++) {
      EXPECT_TRUE(ds.Upsert(MakeTweet(i, i % 100, ++time)).ok());
      if (i % 600 == 0) EXPECT_TRUE(ds.FlushAll().ok());
    }
    EXPECT_TRUE(ds.FlushAll().ok());
    auto cur_or =
        ds.NewCursor(Query().Secondary().Range(0, 49).Limit(limit).PageSize(16));
    EXPECT_TRUE(cur_or.ok());
    auto cur = std::move(cur_or).value();
    QueryPage page;
    Run r;
    while (!cur->done()) {
      EXPECT_TRUE(cur->Next(&page).ok());
      r.rows += page.rows();
    }
    r.candidates = cur->stats().candidates;
    r.sim_us = cur->stats().io_simulated_us;
    return r;
  };

  const Run unlimited = run(0);
  const Run limited = run(10);
  EXPECT_EQ(limited.rows, 10u);
  EXPECT_GT(unlimited.rows, 100u);
  EXPECT_LT(limited.candidates, unlimited.candidates);  // strictly fewer
  EXPECT_GT(limited.sim_us, 0.0);
  EXPECT_LT(limited.sim_us, unlimited.sim_us);  // strictly less modeled I/O
}

// Pagination-resume stability: a cursor opened before concurrent writers
// start must deliver exactly the pre-open rows — new inserts, background
// flushes, and merges happening between pulls neither add, drop, nor
// duplicate rows (the snapshot pins memtable entries and components).
TEST(ConcurrentReadTest, PaginationStableUnderConcurrentWriters) {
  Env env(TestEnv());
  DatasetOptions o;
  o.strategy = MaintenanceStrategy::kEager;
  o.writer_threads = 4;
  o.maintenance_threads = 2;
  o.mem_budget_bytes = 64 << 10;  // frequent background cycles
  Dataset ds(&env, o);

  std::set<uint64_t> want;
  uint64_t time = 0;
  for (uint64_t i = 1; i <= 600; i++) {
    ASSERT_TRUE(ds.Upsert(MakeTweet(i, i % 8, ++time)).ok());
    want.insert(i);
  }

  auto cur_or = ds.NewCursor(Query().Secondary().Range(0, 7).PageSize(16));
  ASSERT_TRUE(cur_or.ok());
  auto cur = std::move(cur_or).value();

  // Writers insert fresh ids into users outside the query range while the
  // cursor paginates.
  std::atomic<uint64_t> next_id{100000};
  std::atomic<uint64_t> next_ts{100000};
  std::vector<std::thread> writers;
  for (int w = 0; w < 4; w++) {
    writers.emplace_back([&]() {
      for (int i = 0; i < 500; i++) {
        const uint64_t id = next_id.fetch_add(1);
        const uint64_t ts = next_ts.fetch_add(1);
        ASSERT_TRUE(ds.Upsert(MakeTweet(id, 100 + id % 8, ts)).ok());
      }
    });
  }

  std::set<uint64_t> got;
  QueryPage page;
  while (!cur->done()) {
    ASSERT_TRUE(cur->Next(&page).ok());
    for (const auto& r : page.records) {
      EXPECT_TRUE(got.insert(r.id).second) << "duplicate id " << r.id;
    }
    std::this_thread::yield();
  }
  for (auto& t : writers) t.join();
  EXPECT_TRUE(ds.WaitForMaintenance().ok());
  EXPECT_EQ(got, want);

  // And the writers' rows are queryable afterwards.
  QueryResult after;
  ASSERT_TRUE(ds.QueryUserRange(100, 107, SecondaryQueryOptions(), &after).ok());
  EXPECT_EQ(after.records.size(), 2000u);
}

// The secondary-index catalog: selection by name, proper errors on unknown
// names, and bounds-checked positional access.
TEST(CatalogTest, SecondaryByNameAndCheckedIndexing) {
  Env env(TestEnv());
  DatasetOptions o;
  o.strategy = MaintenanceStrategy::kEager;
  o.mem_budget_bytes = 1 << 30;
  o.secondary_indexes = {SecondaryIndexDef::UserId(),
                         SecondaryIndexDef::SyntheticAttribute(1),
                         SecondaryIndexDef::SyntheticAttribute(2)};
  Dataset ds(&env, o);
  for (uint64_t i = 1; i <= 200; i++) {
    ASSERT_TRUE(ds.Upsert(MakeTweet(i, i % 10, i)).ok());
  }
  ASSERT_TRUE(ds.FlushAll().ok());

  auto by_name = ds.secondary_by_name("attr1");
  ASSERT_TRUE(by_name.ok());
  EXPECT_EQ(by_name.value()->def.name, "attr1");
  EXPECT_EQ(by_name.value(), ds.secondary(1));

  auto missing = ds.secondary_by_name("no_such_index");
  EXPECT_FALSE(missing.ok());
  EXPECT_TRUE(missing.status().IsInvalidArgument());
  EXPECT_EQ(ds.secondary(99), nullptr);

  // Planning resolves names through the catalog: a full-domain query on a
  // synthetic attribute sees every record; an unknown name fails cleanly.
  auto cur_or = ds.NewCursor(Query().Secondary("attr2").Range(0, UINT64_MAX));
  ASSERT_TRUE(cur_or.ok());
  auto cur = std::move(cur_or).value();
  QueryResult res;
  ASSERT_TRUE(cur->Drain(&res).ok());
  EXPECT_EQ(res.records.size(), 200u);

  EXPECT_FALSE(ds.NewCursor(Query().Secondary("typo").Range(0, 1)).ok());
}

// TimeRange composes with a secondary query: the record fetch applies the
// creation_time predicate, and the counter reports the filtered rows.
TEST(ComposeTest, SecondaryQueryWithTimeRange) {
  Env env(TestEnv());
  DatasetOptions o;
  o.strategy = MaintenanceStrategy::kValidation;
  o.mem_budget_bytes = 1 << 30;
  Dataset ds(&env, o);
  const auto expected = Load(&ds);

  auto cur_or =
      ds.NewCursor(Query().Secondary().Range(0, 15).TimeRange(1, 200));
  ASSERT_TRUE(cur_or.ok());
  auto cur = std::move(cur_or).value();
  QueryResult res;
  ASSERT_TRUE(cur->Drain(&res).ok());
  std::set<uint64_t> got;
  for (const auto& r : res.records) {
    EXPECT_GE(r.creation_time, 1u);
    EXPECT_LE(r.creation_time, 200u);
    got.insert(r.id);
  }
  EXPECT_GT(got.size(), 0u);
  EXPECT_GT(cur->stats().time_filtered, 0u);
  for (uint64_t id : ExpectedInRange(expected, 0, 15)) {
    TweetRecord rec;
    ASSERT_TRUE(ds.GetById(id, &rec).ok());
    EXPECT_EQ(got.count(id) > 0,
              rec.creation_time >= 1 && rec.creation_time <= 200)
        << "id " << id;
  }
}

// CountOnly on a secondary query reports the match count through
// records_matched and stops the candidate stream exactly at the Limit.
TEST(CountOnlyTest, SecondaryCountOnlyReportsAndHonorsLimit) {
  Env env(TestEnv());
  DatasetOptions o;
  o.strategy = MaintenanceStrategy::kEager;
  o.mem_budget_bytes = 1 << 30;
  Dataset ds(&env, o);
  const auto expected = Load(&ds);
  const uint64_t want = ExpectedInRange(expected, 0, 15).size();

  auto all_or = ds.NewCursor(Query().Secondary().Range(0, 15).CountOnly());
  ASSERT_TRUE(all_or.ok());
  auto all = std::move(all_or).value();
  QueryPage page;
  while (!all->done()) {
    ASSERT_TRUE(all->Next(&page).ok());
    EXPECT_TRUE(page.empty());
  }
  EXPECT_EQ(all->stats().records_matched, want);
  EXPECT_EQ(all->stats().rows, 0u);

  auto lim_or =
      ds.NewCursor(Query().Secondary().Range(0, 15).CountOnly().Limit(5));
  ASSERT_TRUE(lim_or.ok());
  auto lim = std::move(lim_or).value();
  while (!lim->done()) {
    ASSERT_TRUE(lim->Next(&page).ok());
  }
  EXPECT_EQ(lim->stats().records_matched, 5u);
  EXPECT_LT(lim->stats().candidates, all->stats().candidates);
}

// Point reads through the builder, and plan validation errors.
TEST(PlanTest, PointReadsAndInvalidPlans) {
  Env env(TestEnv());
  DatasetOptions o;
  o.mem_budget_bytes = 1 << 30;
  Dataset ds(&env, o);
  ASSERT_TRUE(ds.Upsert(MakeTweet(42, 7, 1)).ok());
  ASSERT_TRUE(ds.FlushAll().ok());

  auto cur_or = ds.NewCursor(Query().Primary(42));
  ASSERT_TRUE(cur_or.ok());
  QueryResult res;
  ASSERT_TRUE(std::move(cur_or).value()->Drain(&res).ok());
  ASSERT_EQ(res.records.size(), 1u);
  EXPECT_EQ(res.records[0].user_id, 7u);

  auto miss_or = ds.NewCursor(Query().Primary(43));
  ASSERT_TRUE(miss_or.ok());
  QueryResult miss;
  ASSERT_TRUE(std::move(miss_or).value()->Drain(&miss).ok());
  EXPECT_TRUE(miss.records.empty());

  TweetRecord rec;
  EXPECT_TRUE(ds.GetById(43, &rec).IsNotFound());

  EXPECT_FALSE(ds.NewCursor(Query().Primary(1).Range(0, 9)).ok());
  EXPECT_FALSE(ds.NewCursor(Query().Range(0, 9).IndexOnly()).ok());
  EXPECT_FALSE(ds.NewCursor(Query().Primary(1).IndexOnly()).ok());
}

}  // namespace
}  // namespace auxlsm
