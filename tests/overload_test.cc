// Sustained-overload stress for decoupled merge scheduling (PR 5): a small
// memory budget drives continuous flush cycles while merge work piles up on
// the scheduler's per-tree merge queues. The decoupled pipeline must
//   - keep sealing/flushing while merge jobs are backlogged (a stuck merge
//     on one queue never blocks the next install),
//   - keep the merge-round backlog bounded by merge_queue_depth (+1 for the
//     round the in-flight cycle enqueues),
//   - yield exactly the query-visible state the legacy serial path produces,
//     across all four maintenance strategies,
//   - surface merge-queue errors from ingest / Flush / WaitForMaintenance
//     and recover once TakeBackgroundError() clears them.
// This suite runs in the ThreadSanitizer CI job.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <thread>
#include <vector>

#include "core/dataset.h"
#include "exec/maintenance.h"

namespace auxlsm {
namespace {

EnvOptions TestEnv() {
  EnvOptions o;
  o.page_size = 1024;
  o.cache_pages = 1 << 16;
  o.cache_shards = 4;
  o.disk_profile = DiskProfile::Null();
  return o;
}

TweetRecord MakeTweet(uint64_t id, uint64_t user, uint64_t time) {
  TweetRecord r;
  r.id = id;
  r.user_id = user;
  r.location = "NV";
  r.creation_time = time;
  r.message = std::string(60, 'o');
  return r;
}

struct OverloadConfig {
  MaintenanceStrategy strategy;
  bool merge_repair;
  BuildCcMethod cc;
  const char* name;
};

class OverloadStrategyTest : public ::testing::TestWithParam<OverloadConfig> {
};

// Heavy ingest under a tiny budget with decoupled queues: parity with the
// serial path, bounded round backlog, clean drain. The sampler thread
// watches the backlog while writers run; its bound (depth + 1: `depth`
// admitted rounds plus the one the in-flight cycle enqueues) is the
// backpressure contract.
TEST_P(OverloadStrategyTest, DecoupledOverloadMatchesSerialAndBoundsBacklog) {
  const OverloadConfig cfg = GetParam();
  const uint64_t n = 3000;
  const uint64_t writers = 4;
  const size_t depth = 2;

  Env menv(TestEnv());
  DatasetOptions mo;
  mo.strategy = cfg.strategy;
  mo.merge_repair = cfg.merge_repair;
  mo.build_cc = cfg.cc;
  mo.writer_threads = writers;
  mo.maintenance_threads = 2;
  mo.merge_queue_depth = depth;
  mo.mem_budget_bytes = 32 << 10;  // sustained overload: flush every ~200 ops
  Dataset multi(&menv, mo);

  std::atomic<bool> done{false};
  std::atomic<int> failures{0};
  std::atomic<size_t> max_rounds_seen{0};
  std::thread sampler([&]() {
    while (!done.load(std::memory_order_acquire)) {
      const size_t rounds = multi.maintenance()->PendingMergeRounds();
      size_t prev = max_rounds_seen.load();
      while (rounds > prev &&
             !max_rounds_seen.compare_exchange_weak(prev, rounds)) {
      }
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> threads;
  for (uint64_t t = 0; t < writers; t++) {
    threads.emplace_back([&, t]() {
      for (uint64_t id = 1 + t; id <= n; id += writers) {
        if (!multi.Upsert(MakeTweet(id, id % 50, id)).ok()) {
          failures.fetch_add(1);
        }
        if (id % 5 == 0 && !multi.Delete(id).ok()) failures.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  done.store(true, std::memory_order_release);
  sampler.join();
  EXPECT_EQ(failures.load(), 0);
  ASSERT_TRUE(multi.WaitForMaintenance().ok());
  EXPECT_TRUE(multi.TakeBackgroundError().ok());
  EXPECT_EQ(multi.maintenance()->PendingMergeJobs(), 0u);
  // Per-tree merge-pending accounting balances once the queues drain.
  EXPECT_EQ(multi.primary()->merge_pending_jobs(), 0u);
  EXPECT_GT(multi.ingest_stats().flushes, 1u);

  // Bounded backlog: writers wait at `depth` before launching a cycle, and
  // each of the <= `writers` threads parked between that wait and the
  // launch CAS can add one stale round.
  EXPECT_LE(max_rounds_seen.load(), depth + writers);

  // Serial reference over the same logical op stream.
  Env senv(TestEnv());
  DatasetOptions so = mo;
  so.writer_threads = 1;
  so.maintenance_threads = 1;
  so.merge_queue_depth = 0;
  Dataset single(&senv, so);
  for (uint64_t id = 1; id <= n; id++) {
    ASSERT_TRUE(single.Upsert(MakeTweet(id, id % 50, id)).ok());
    if (id % 5 == 0) ASSERT_TRUE(single.Delete(id).ok());
  }

  EXPECT_EQ(multi.num_records(), single.num_records());
  for (uint64_t id = 1; id <= n; id += 97) {
    TweetRecord a, b;
    const Status sa = multi.GetById(id, &a);
    const Status sb = single.GetById(id, &b);
    ASSERT_EQ(sa.ok(), sb.ok()) << "id " << id;
    if (sa.ok()) EXPECT_EQ(a.user_id, b.user_id) << "id " << id;
  }
  SecondaryQueryOptions q;
  QueryResult ra, rb;
  ASSERT_TRUE(multi.QueryUserRange(0, 49, q, &ra).ok());
  ASSERT_TRUE(single.QueryUserRange(0, 49, q, &rb).ok());
  EXPECT_EQ(ra.records.size(), rb.records.size());
}

INSTANTIATE_TEST_SUITE_P(
    Strategies, OverloadStrategyTest,
    ::testing::Values(
        OverloadConfig{MaintenanceStrategy::kEager, false, BuildCcMethod::kNone,
                       "eager"},
        OverloadConfig{MaintenanceStrategy::kValidation, true,
                       BuildCcMethod::kNone, "validation_repair"},
        OverloadConfig{MaintenanceStrategy::kMutableBitmap, false,
                       BuildCcMethod::kSideFile, "bitmap_sidefile"},
        OverloadConfig{MaintenanceStrategy::kMutableBitmap, false,
                       BuildCcMethod::kLock, "bitmap_lock"},
        OverloadConfig{MaintenanceStrategy::kDeletedKeyBtree, false,
                       BuildCcMethod::kNone, "deleted_key"}),
    [](const auto& info) { return std::string(info.param.name); });

// The decoupling property, deterministically: a merge job stuck on one queue
// must not prevent flush cycles (seal -> build -> install) from completing.
TEST(DecoupledMergeTest, StuckMergeJobDoesNotBlockFlushCycles) {
  Env env(TestEnv());
  DatasetOptions o;
  o.strategy = MaintenanceStrategy::kEager;
  o.writer_threads = 2;
  o.maintenance_threads = 2;  // one drain worker may park on the gate
  o.merge_queue_depth = 8;
  o.mem_budget_bytes = 16 << 10;
  Dataset ds(&env, o);

  // Occupy one merge queue with a job that blocks until released.
  std::promise<void> gate;
  std::shared_future<void> released = gate.get_future().share();
  int gate_key = 0;
  ds.maintenance()->EnqueueMergeRound(
      {MaintenanceScheduler::MergeJob{&gate_key, [released]() {
         released.wait();
         return Status::OK();
       }}});

  const uint64_t flushes_before = ds.ingest_stats().flushes;
  uint64_t id = 1;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (ds.ingest_stats().flushes < flushes_before + 3 &&
         std::chrono::steady_clock::now() < deadline) {
    ASSERT_TRUE(ds.Upsert(MakeTweet(id, id % 10, id)).ok());
    id++;
  }
  const bool progressed = ds.ingest_stats().flushes >= flushes_before + 3;
  const bool merge_still_stuck = ds.maintenance()->PendingMergeJobs() > 0;
  gate.set_value();
  ASSERT_TRUE(ds.WaitForMaintenance().ok());
  EXPECT_TRUE(progressed)
      << "flush cycles stalled behind a backlogged merge queue";
  EXPECT_TRUE(merge_still_stuck);
}

// Merge-queue failures are sticky and must surface everywhere the pipeline
// reports errors — the next ingest, Flush, WaitForMaintenance — and
// TakeBackgroundError() must clear them so the dataset recovers.
TEST(DecoupledMergeTest, MergeErrorsSurfaceAndClear) {
  Env env(TestEnv());
  DatasetOptions o;
  o.strategy = MaintenanceStrategy::kEager;
  o.writer_threads = 2;
  o.maintenance_threads = 2;
  o.merge_queue_depth = 4;
  o.mem_budget_bytes = 1 << 20;
  Dataset ds(&env, o);
  ASSERT_TRUE(ds.Upsert(MakeTweet(1, 1, 1)).ok());

  int key = 0;
  ds.maintenance()->EnqueueMergeRound(
      {MaintenanceScheduler::MergeJob{&key, []() {
         return Status::InvalidArgument("injected merge failure");
       }}});
  ASSERT_TRUE(ds.maintenance()->DrainMerges().IsInvalidArgument());

  // Sticky: every pipeline surface reports it, repeatedly.
  EXPECT_TRUE(ds.Upsert(MakeTweet(2, 2, 2)).IsInvalidArgument());
  EXPECT_TRUE(ds.FlushAll().IsInvalidArgument());
  EXPECT_TRUE(ds.WaitForMaintenance().IsInvalidArgument());
  EXPECT_TRUE(ds.Upsert(MakeTweet(3, 3, 3)).IsInvalidArgument());

  // Taking the error re-arms the pipeline.
  EXPECT_TRUE(ds.TakeBackgroundError().IsInvalidArgument());
  EXPECT_TRUE(ds.TakeBackgroundError().ok());  // cleared
  EXPECT_TRUE(ds.Upsert(MakeTweet(4, 4, 4)).ok());
  EXPECT_TRUE(ds.FlushAll().ok());
  TweetRecord r;
  EXPECT_TRUE(ds.GetById(4, &r).ok());
}

// Regression (PR 6): a decoupled merge-queue job that fails AFTER capturing
// its range pick — here a concurrent bitmap build failing right after
// publishing its build links — must release the links, keep the per-tree
// merge accounting balanced, and leave the queue drainable. Before the fix,
// the failed job left the build links published and the round accounting
// wedged, so every later merge pick stalled behind a round that could never
// finish. Driven deterministically through the maintenance.concurrent_build
// failpoint with a permanent (non-retryable) error.
TEST(DecoupledMergeTest, FailedConcurrentBuildReleasesPicksAndQueue) {
  FaultInjector fault(17);
  EnvOptions eo = TestEnv();
  eo.fault_injector = &fault;
  Env env(eo);
  DatasetOptions o;
  o.strategy = MaintenanceStrategy::kMutableBitmap;
  o.build_cc = BuildCcMethod::kLock;
  o.writer_threads = 2;
  o.maintenance_threads = 2;
  o.merge_queue_depth = 2;
  o.mem_budget_bytes = 24 << 10;
  o.fault_injector = &fault;
  o.maintenance_retry_limit = 3;  // permanent errors must not consume it
  Dataset ds(&env, o);

  fault.Arm(failpoints::kConcurrentBuild,
            FaultSpec::ErrorNth(Status::Corruption("injected build wreck"), 1));
  // Sustained ingest until merge rounds run; once the armed build fails the
  // dataset degrades and later ops fail fast — tolerated here.
  uint64_t committed = 0;
  for (uint64_t id = 1; id <= 4000; id++) {
    if (ds.Upsert(MakeTweet(id, id % 30, id)).ok()) committed++;
    if (fault.site_stats(failpoints::kConcurrentBuild).fires > 0 &&
        id % 200 == 0) {
      break;
    }
  }
  ASSERT_GT(fault.site_stats(failpoints::kConcurrentBuild).fires, 0u)
      << "workload never reached a concurrent merge build";

  // The failure surfaces through the pipeline's error plumbing...
  EXPECT_FALSE(ds.WaitForMaintenance().ok());
  // ...and permanent errors never burn retry budget.
  EXPECT_EQ(ds.maintenance_stats().retries_attempted.load(), 0u);

  // Take the sticky error(s); the queue must be fully drained — a wedged
  // round would leave PendingMergeRounds stuck above zero.
  for (int i = 0; i < 4 && !ds.TakeBackgroundError().ok(); i++) {
  }
  EXPECT_EQ(ds.health(), DatasetHealth::kHealthy);
  EXPECT_EQ(ds.maintenance()->PendingMergeRounds(), 0u);
  EXPECT_EQ(ds.maintenance()->PendingMergeJobs(), 0u);
  EXPECT_EQ(ds.primary()->merge_pending_jobs(), 0u);

  // The failed build's links must be gone from every surviving component:
  // a leaked link would redirect later bitmap deletes into a build that
  // will never install.
  for (const auto& c : ds.primary()->Components()) {
    EXPECT_EQ(c->build_link(), nullptr);
  }
  for (const auto& c : ds.primary_key_index()->Components()) {
    EXPECT_EQ(c->build_link(), nullptr);
  }

  // The pipeline re-arms end to end: ingest, maintenance, merges, reads.
  fault.DisarmAll();
  for (uint64_t id = 10000; id < 10400; id++) {
    ASSERT_TRUE(ds.Upsert(MakeTweet(id, id % 30, id)).ok());
  }
  ASSERT_TRUE(ds.WaitForMaintenance().ok());
  ASSERT_TRUE(ds.FlushAll().ok());
  ASSERT_TRUE(ds.MergeAllIndexes().ok());
  TweetRecord r;
  EXPECT_TRUE(ds.GetById(10001, &r).ok());
  EXPECT_GT(ds.num_records(), 0u);
}

// Explicit transactions under decoupled kLock overload: a writer holding
// record locks must never park on merge backpressure — the §5.3 Lock-method
// builder may be blocked on one of its locks, and waiting on the merge from
// inside the transaction would deadlock (no timeout breaks it). This test
// hangs (and trips the CI per-test timeout) if that wait is ever
// reintroduced for explicit-txn threads.
TEST(DecoupledMergeTest, ExplicitTxnsNeverParkOnMergeBackpressure) {
  Env env(TestEnv());
  DatasetOptions o;
  o.strategy = MaintenanceStrategy::kMutableBitmap;
  o.build_cc = BuildCcMethod::kLock;
  o.writer_threads = 3;
  o.maintenance_threads = 2;
  o.merge_queue_depth = 1;  // saturates quickly under this load
  o.mem_budget_bytes = 24 << 10;
  Dataset ds(&env, o);

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (uint64_t t = 0; t < 3; t++) {
    threads.emplace_back([&, t]() {
      for (uint64_t batch = 0; batch < 40; batch++) {
        auto txn = ds.Begin();
        for (uint64_t i = 0; i < 25; i++) {
          const uint64_t id = 1 + t + 3 * (batch * 25 + i);
          if (!ds.UpsertTxn(MakeTweet(id, id % 30, id), txn.get()).ok()) {
            failures.fetch_add(1);
          }
        }
        if (batch % 4 == 3) {
          if (!txn->Abort().ok()) failures.fetch_add(1);
        } else if (!txn->Commit().ok()) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  ASSERT_TRUE(ds.WaitForMaintenance().ok());
  EXPECT_TRUE(ds.TakeBackgroundError().ok());
  EXPECT_GT(ds.num_records(), 0u);
}

// Coupled configurations must not be affected by the new plumbing: with
// merge_queue_depth = 0 the queues stay unused and WaitForMaintenance /
// TakeBackgroundError are no-ops on a healthy dataset.
TEST(DecoupledMergeTest, CoupledPathKeepsQueuesIdle) {
  Env env(TestEnv());
  DatasetOptions o;
  o.strategy = MaintenanceStrategy::kEager;
  o.writer_threads = 4;
  o.maintenance_threads = 2;
  o.mem_budget_bytes = 32 << 10;
  Dataset ds(&env, o);
  for (uint64_t id = 1; id <= 800; id++) {
    ASSERT_TRUE(ds.Upsert(MakeTweet(id, id % 10, id)).ok());
  }
  ASSERT_TRUE(ds.WaitForMaintenance().ok());
  ASSERT_NE(ds.maintenance(), nullptr);
  EXPECT_EQ(ds.maintenance()->PendingMergeJobs(), 0u);
  EXPECT_EQ(ds.maintenance()->PendingMergeRounds(), 0u);
  EXPECT_TRUE(ds.TakeBackgroundError().ok());
}

}  // namespace
}  // namespace auxlsm
