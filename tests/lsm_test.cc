#include <gtest/gtest.h>

#include <map>
#include <thread>

#include "common/random.h"
#include "format/key_codec.h"
#include "lsm/lsm_tree.h"

namespace auxlsm {
namespace {

EnvOptions TestEnv() {
  EnvOptions o;
  o.page_size = 512;
  o.cache_pages = 1 << 16;
  o.disk_profile = DiskProfile::Null();
  return o;
}

LsmTreeOptions TreeOpts() {
  LsmTreeOptions o;
  o.build_bloom = true;
  o.build_blocked_bloom = true;
  return o;
}

TEST(BitmapTest, SetTestUnsetCount) {
  Bitmap b(200);
  EXPECT_FALSE(b.Test(100));
  EXPECT_FALSE(b.Set(100));  // previous value
  EXPECT_TRUE(b.Test(100));
  EXPECT_TRUE(b.Set(100));  // already set
  EXPECT_EQ(b.CountSet(), 1u);
  EXPECT_TRUE(b.Unset(100));
  EXPECT_FALSE(b.Test(100));
  EXPECT_EQ(b.CountSet(), 0u);
}

TEST(BitmapTest, SnapshotIsIndependent) {
  Bitmap b(64);
  b.Set(5);
  Bitmap snap = Bitmap::SnapshotOf(b);
  b.Set(6);
  EXPECT_TRUE(snap.Test(5));
  EXPECT_FALSE(snap.Test(6));
}

TEST(BitmapTest, WordsRoundTripAndUnion) {
  Bitmap a(128);
  a.Set(0);
  a.Set(127);
  Bitmap b = Bitmap::FromWords(128, a.Words());
  EXPECT_TRUE(b.Test(0));
  EXPECT_TRUE(b.Test(127));
  Bitmap c(128);
  c.Set(64);
  c.UnionWith(a);
  EXPECT_EQ(c.CountSet(), 3u);
}

TEST(BitmapTest, ConcurrentSetsDoNotLoseUpdates) {
  Bitmap b(100000);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; t++) {
    threads.emplace_back([&b, t]() {
      for (uint64_t i = t; i < 100000; i += 4) b.Set(i);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(b.CountSet(), 100000u);
}

TEST(RangeFilterTest, ExpandOverlapsMerge) {
  RangeFilter f;
  EXPECT_FALSE(f.has_value());
  EXPECT_FALSE(f.Overlaps(0, ~0ull));  // empty filter never overlaps
  f.Expand(10);
  f.Expand(20);
  EXPECT_TRUE(f.Overlaps(15, 16));
  EXPECT_TRUE(f.Overlaps(20, 30));
  EXPECT_FALSE(f.Overlaps(21, 30));
  EXPECT_FALSE(f.Overlaps(0, 9));
  RangeFilter g;
  g.Expand(100);
  g.Merge(f);
  EXPECT_TRUE(g.Overlaps(10, 10));
  EXPECT_TRUE(g.Overlaps(100, 100));
}

TEST(ComponentIdTest, OrderingAndOverlap) {
  ComponentId a{1, 10}, b{11, 20}, c{5, 15};
  EXPECT_TRUE(a.OlderThan(b));
  EXPECT_FALSE(b.OlderThan(a));
  EXPECT_TRUE(a.Overlaps(c));
  EXPECT_TRUE(c.Overlaps(b));
  EXPECT_FALSE(a.Overlaps(b));
  EXPECT_EQ(a.ToString(), "1-10");
}

TEST(MergePolicyTest, TieringTriggersAtSizeRatio) {
  TieringMergePolicy p(1.2, 1u << 30);
  // Newest-first sizes: young components too small to outweigh the oldest.
  EXPECT_TRUE(p.PickMerge({{10}, {100}}).empty());
  // 130 >= 1.2 * 100: merge everything.
  const MergeRange r = p.PickMerge({{60}, {70}, {100}});
  EXPECT_EQ(r.begin, 0u);
  EXPECT_EQ(r.end, 3u);
}

TEST(MergePolicyTest, TieringRespectsMaxMergeableSize) {
  TieringMergePolicy p(1.2, /*max=*/50);
  // Oldest component exceeds the cap: it is frozen; the two young ones merge
  // only if they satisfy the ratio among themselves.
  const MergeRange r = p.PickMerge({{40}, {30}, {1000}});
  EXPECT_EQ(r.begin, 0u);
  EXPECT_EQ(r.end, 2u);
  EXPECT_TRUE(p.PickMerge({{10}, {30}, {1000}}).empty());
}

TEST(MergePolicyTest, TieringPrefersLongestSequence) {
  TieringMergePolicy p(1.0, 1u << 30);
  const MergeRange r = p.PickMerge({{50}, {50}, {50}, {100}});
  EXPECT_EQ(r.count(), 4u);  // 150 >= 100 merges all four
}

TEST(MergePolicyTest, LevelingMergesOverflowingLevel) {
  LevelingMergePolicy p(10.0, 100);
  EXPECT_TRUE(p.PickMerge({{50}, {500}}).empty());
  const MergeRange r = p.PickMerge({{150}, {500}});
  EXPECT_EQ(r.begin, 0u);
  EXPECT_EQ(r.end, 2u);
}

TEST(MergePolicyTest, NoMergePolicyNeverMerges) {
  NoMergePolicy p;
  EXPECT_TRUE(p.PickMerge({{100}, {100}, {100}}).empty());
}

TEST(LsmTreeTest, PutGetThroughMemtable) {
  Env env(TestEnv());
  LsmTree tree(&env, TreeOpts());
  tree.Put(EncodeU64(1), "one", 1);
  OwnedEntry e;
  ASSERT_TRUE(tree.Get(EncodeU64(1), &e).ok());
  EXPECT_EQ(e.value, "one");
  EXPECT_TRUE(tree.Get(EncodeU64(2), &e).IsNotFound());
}

TEST(LsmTreeTest, FlushCreatesComponentWithId) {
  Env env(TestEnv());
  LsmTree tree(&env, TreeOpts());
  tree.Put(EncodeU64(1), "a", 5);
  tree.Put(EncodeU64(2), "b", 9);
  ASSERT_TRUE(tree.Flush().ok());
  ASSERT_EQ(tree.NumDiskComponents(), 1u);
  const auto comps = tree.Components();
  EXPECT_EQ(comps[0]->id().min_ts, 5u);
  EXPECT_EQ(comps[0]->id().max_ts, 9u);
  EXPECT_TRUE(tree.memtable()->empty());
  OwnedEntry e;
  ASSERT_TRUE(tree.Get(EncodeU64(1), &e).ok());
  EXPECT_EQ(e.value, "a");
}

TEST(LsmTreeTest, NewerComponentOverridesOlder) {
  Env env(TestEnv());
  LsmTree tree(&env, TreeOpts());
  tree.Put(EncodeU64(1), "old", 1);
  ASSERT_TRUE(tree.Flush().ok());
  tree.Put(EncodeU64(1), "new", 2);
  ASSERT_TRUE(tree.Flush().ok());
  OwnedEntry e;
  ASSERT_TRUE(tree.Get(EncodeU64(1), &e).ok());
  EXPECT_EQ(e.value, "new");
}

TEST(LsmTreeTest, AntimatterHidesOlderEntry) {
  Env env(TestEnv());
  LsmTree tree(&env, TreeOpts());
  tree.Put(EncodeU64(1), "v", 1);
  ASSERT_TRUE(tree.Flush().ok());
  tree.PutAntimatter(EncodeU64(1), 2);
  OwnedEntry e;
  EXPECT_TRUE(tree.Get(EncodeU64(1), &e).IsNotFound());
  LookupResult raw;
  ASSERT_TRUE(tree.GetRaw(EncodeU64(1), &raw).ok());
  EXPECT_TRUE(raw.found);
  EXPECT_TRUE(raw.entry.antimatter);
}

TEST(LsmTreeTest, MergeAllReconcilesAndDropsAntimatter) {
  Env env(TestEnv());
  LsmTree tree(&env, TreeOpts());
  for (uint64_t i = 0; i < 100; i++) tree.Put(EncodeU64(i), "v0", i + 1);
  ASSERT_TRUE(tree.Flush().ok());
  for (uint64_t i = 0; i < 50; i++) tree.Put(EncodeU64(i), "v1", 200 + i);
  for (uint64_t i = 50; i < 60; i++) tree.PutAntimatter(EncodeU64(i), 300 + i);
  ASSERT_TRUE(tree.Flush().ok());
  ASSERT_EQ(tree.NumDiskComponents(), 2u);
  ASSERT_TRUE(tree.MergeAll().ok());
  ASSERT_EQ(tree.NumDiskComponents(), 1u);
  // 100 - 10 deleted records remain; anti-matter physically dropped.
  EXPECT_EQ(tree.Components()[0]->num_entries(), 90u);
  OwnedEntry e;
  ASSERT_TRUE(tree.Get(EncodeU64(0), &e).ok());
  EXPECT_EQ(e.value, "v1");
  EXPECT_TRUE(tree.Get(EncodeU64(55), &e).IsNotFound());
  ASSERT_TRUE(tree.Get(EncodeU64(80), &e).ok());
  EXPECT_EQ(e.value, "v0");
}

TEST(LsmTreeTest, PartialMergeKeepsAntimatter) {
  Env env(TestEnv());
  LsmTree tree(&env, TreeOpts());
  tree.Put(EncodeU64(1), "v", 1);
  ASSERT_TRUE(tree.Flush().ok());
  tree.PutAntimatter(EncodeU64(1), 2);
  ASSERT_TRUE(tree.Flush().ok());
  tree.Put(EncodeU64(2), "x", 3);
  ASSERT_TRUE(tree.Flush().ok());
  // Merge only the two newest components: anti-matter must survive to keep
  // shadowing the oldest component's entry.
  ASSERT_TRUE(tree.MergeComponentRange(MergeRange{0, 2}).ok());
  OwnedEntry e;
  EXPECT_TRUE(tree.Get(EncodeU64(1), &e).IsNotFound());
}

TEST(LsmTreeTest, MergedComponentIdSpansInputs) {
  Env env(TestEnv());
  LsmTree tree(&env, TreeOpts());
  tree.Put(EncodeU64(1), "a", 1);
  ASSERT_TRUE(tree.Flush().ok());
  tree.Put(EncodeU64(2), "b", 7);
  ASSERT_TRUE(tree.Flush().ok());
  ASSERT_TRUE(tree.MergeAll().ok());
  EXPECT_EQ(tree.Components()[0]->id().min_ts, 1u);
  EXPECT_EQ(tree.Components()[0]->id().max_ts, 7u);
}

TEST(LsmTreeTest, BitmapInvalidEntriesDroppedInMerge) {
  Env env(TestEnv());
  LsmTreeOptions opts = TreeOpts();
  opts.attach_bitmap = true;
  LsmTree tree(&env, opts);
  for (uint64_t i = 0; i < 10; i++) tree.Put(EncodeU64(i), "v", i + 1);
  ASSERT_TRUE(tree.Flush().ok());
  tree.Put(EncodeU64(100), "w", 50);
  ASSERT_TRUE(tree.Flush().ok());
  // Mark entries 3 and 4 of the older component invalid.
  auto comps = tree.Components();
  comps[1]->bitmap()->Set(3);
  comps[1]->bitmap()->Set(4);
  ASSERT_TRUE(tree.MergeAll().ok());
  EXPECT_EQ(tree.Components()[0]->num_entries(), 9u);  // 11 - 2
  OwnedEntry e;
  EXPECT_TRUE(tree.Get(EncodeU64(3), &e).IsNotFound());
  ASSERT_TRUE(tree.Get(EncodeU64(5), &e).ok());
}

TEST(LsmTreeTest, GetRawReportsOrdinalForBitmaps) {
  Env env(TestEnv());
  LsmTreeOptions opts = TreeOpts();
  opts.attach_bitmap = true;
  LsmTree tree(&env, opts);
  for (uint64_t i = 0; i < 10; i++) tree.Put(EncodeU64(i), "v", i + 1);
  ASSERT_TRUE(tree.Flush().ok());
  LookupResult res;
  ASSERT_TRUE(tree.GetRaw(EncodeU64(7), &res).ok());
  ASSERT_TRUE(res.found);
  EXPECT_EQ(res.ordinal, 7u);
  // Marking it invalid makes a bitmap-respecting lookup miss.
  res.component->bitmap()->Set(res.ordinal);
  OwnedEntry e;
  EXPECT_TRUE(tree.Get(EncodeU64(7), &e).IsNotFound());
  GetOptions ignore_bitmaps;
  ignore_bitmaps.respect_bitmaps = false;
  ASSERT_TRUE(tree.Get(EncodeU64(7), &e, ignore_bitmaps).ok());
}

TEST(LsmTreeTest, ComponentIdPruningSkipsOldComponents) {
  Env env(TestEnv());
  LsmTree tree(&env, TreeOpts());
  tree.Put(EncodeU64(1), "old", 1);
  ASSERT_TRUE(tree.Flush().ok());
  GetOptions opts;
  opts.min_component_ts = 100;  // both flushed components are older
  LookupResult res;
  ASSERT_TRUE(tree.GetRaw(EncodeU64(1), &res, opts).ok());
  EXPECT_FALSE(res.found);
}

TEST(LsmTreeTest, TryMergeFollowsPolicy) {
  Env env(TestEnv());
  LsmTreeOptions opts = TreeOpts();
  opts.merge_policy = std::make_shared<TieringMergePolicy>(1.0, 1u << 30);
  LsmTree tree(&env, opts);
  for (int c = 0; c < 2; c++) {
    for (uint64_t i = 0; i < 50; i++) {
      tree.Put(EncodeU64(c * 1000 + i), "v", c * 100 + i + 1);
    }
    ASSERT_TRUE(tree.Flush().ok());
  }
  bool merged = false;
  ASSERT_TRUE(tree.TryMerge(&merged).ok());
  EXPECT_TRUE(merged);
  EXPECT_EQ(tree.NumDiskComponents(), 1u);
}

TEST(LsmTreeTest, RetiredComponentFilesDeleted) {
  Env env(TestEnv());
  LsmTree tree(&env, TreeOpts());
  tree.Put(EncodeU64(1), "a", 1);
  ASSERT_TRUE(tree.Flush().ok());
  tree.Put(EncodeU64(2), "b", 2);
  ASSERT_TRUE(tree.Flush().ok());
  const uint32_t old_file = tree.Components()[1]->meta().file_id;
  ASSERT_TRUE(env.store()->FileExists(old_file));
  ASSERT_TRUE(tree.MergeAll().ok());
  EXPECT_FALSE(env.store()->FileExists(old_file));
}

TEST(LsmTreeTest, RangeFilterFromMemFilterOnFlush) {
  Env env(TestEnv());
  LsmTreeOptions opts = TreeOpts();
  opts.maintain_range_filter = true;
  LsmTree tree(&env, opts);
  tree.Put(EncodeU64(1), "a", 1);
  tree.mem_range_filter()->Expand(2015);
  tree.mem_range_filter()->Expand(2018);
  ASSERT_TRUE(tree.Flush().ok());
  const auto& f = tree.Components()[0]->range_filter();
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->min(), 2015u);
  EXPECT_EQ(f->max(), 2018u);
  // The memory filter resets after flush.
  EXPECT_FALSE(tree.mem_range_filter()->has_value());
}

TEST(MergeCursorTest, BoundsAndReconciliation) {
  Env env(TestEnv());
  LsmTree tree(&env, TreeOpts());
  for (uint64_t i = 0; i < 20; i++) tree.Put(EncodeU64(i), "v0", i + 1);
  ASSERT_TRUE(tree.Flush().ok());
  for (uint64_t i = 5; i < 10; i++) tree.Put(EncodeU64(i), "v1", 100 + i);
  ASSERT_TRUE(tree.Flush().ok());

  MergeCursor::Options mo;
  mo.lower_bound = EncodeU64(3);
  mo.upper_bound = EncodeU64(12);
  MergeCursor cursor(tree.Components(), mo);
  ASSERT_TRUE(cursor.Init().ok());
  uint64_t count = 0;
  uint64_t v1_count = 0;
  while (cursor.Valid()) {
    const uint64_t k = DecodeU64(cursor.key());
    EXPECT_GE(k, 3u);
    EXPECT_LE(k, 12u);
    if (cursor.value() == Slice("v1")) v1_count++;
    count++;
    ASSERT_TRUE(cursor.Next().ok());
  }
  EXPECT_EQ(count, 10u);     // keys 3..12, one version each
  EXPECT_EQ(v1_count, 5u);   // keys 5..9 updated
}

TEST(LsmTreeStressTest, RandomOpsMatchReferenceModel) {
  Env env(TestEnv());
  LsmTreeOptions opts = TreeOpts();
  opts.merge_policy = std::make_shared<TieringMergePolicy>(1.2, 1u << 30);
  LsmTree tree(&env, opts);
  std::map<uint64_t, std::string> model;
  Random rng(42);
  Timestamp ts = 0;
  for (int i = 0; i < 5000; i++) {
    const uint64_t k = rng.Uniform(500);
    ts++;
    if (rng.Bernoulli(0.2)) {
      tree.PutAntimatter(EncodeU64(k), ts);
      model.erase(k);
    } else {
      const std::string v = "v" + std::to_string(i);
      tree.Put(EncodeU64(k), v, ts);
      model[k] = v;
    }
    if (i % 500 == 499) {
      ASSERT_TRUE(tree.Flush().ok());
      bool merged = true;
      while (merged) ASSERT_TRUE(tree.TryMerge(&merged).ok());
    }
  }
  for (uint64_t k = 0; k < 500; k++) {
    OwnedEntry e;
    const Status st = tree.Get(EncodeU64(k), &e);
    if (model.count(k)) {
      ASSERT_TRUE(st.ok()) << "key " << k;
      EXPECT_EQ(e.value, model[k]);
    } else {
      EXPECT_TRUE(st.IsNotFound()) << "key " << k;
    }
  }
}

}  // namespace
}  // namespace auxlsm
