#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/clock.h"
#include "common/coding.h"
#include "common/crc32.h"
#include "common/hash.h"
#include "common/random.h"
#include "common/result.h"
#include "common/slice.h"
#include "common/status.h"
#include "format/key_codec.h"
#include "format/record.h"

namespace auxlsm {
namespace {

TEST(StatusTest, OkByDefault) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCodesAndMessages) {
  Status nf = Status::NotFound("missing key");
  EXPECT_TRUE(nf.IsNotFound());
  EXPECT_FALSE(nf.ok());
  EXPECT_EQ(nf.ToString(), "NotFound: missing key");

  EXPECT_TRUE(Status::Corruption().IsCorruption());
  EXPECT_TRUE(Status::InvalidArgument().IsInvalidArgument());
  EXPECT_TRUE(Status::IOError().IsIOError());
  EXPECT_TRUE(Status::Busy().IsBusy());
  EXPECT_TRUE(Status::Aborted().IsAborted());
  EXPECT_TRUE(Status::NotSupported().IsNotSupported());
}

TEST(StatusTest, CopyIsCheapAndPreservesMessage) {
  Status a = Status::IOError("disk gone");
  Status b = a;
  EXPECT_TRUE(b.IsIOError());
  EXPECT_EQ(b.message(), "disk gone");
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  auto fails = []() -> Status { return Status::Corruption("bad"); };
  auto wrapper = [&]() -> Status {
    AUXLSM_RETURN_NOT_OK(fails());
    return Status::OK();
  };
  EXPECT_TRUE(wrapper().IsCorruption());
}

TEST(ResultTest, HoldsValueOrStatus) {
  Result<int> ok(42);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 42);

  Result<int> err(Status::NotFound("nope"));
  ASSERT_FALSE(err.ok());
  EXPECT_TRUE(err.status().IsNotFound());
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string(1000, 'x'));
  std::string s = std::move(r).value();
  EXPECT_EQ(s.size(), 1000u);
}

TEST(SliceTest, CompareIsMemcmpOrder) {
  EXPECT_LT(Slice("abc").compare(Slice("abd")), 0);
  EXPECT_GT(Slice("abcd").compare(Slice("abc")), 0);
  EXPECT_EQ(Slice("abc").compare(Slice("abc")), 0);
  EXPECT_TRUE(Slice("abc") == Slice("abc"));
  EXPECT_TRUE(Slice("ab") < Slice("b"));
}

TEST(SliceTest, PrefixOps) {
  Slice s("hello world");
  EXPECT_TRUE(s.starts_with("hello"));
  EXPECT_FALSE(s.starts_with("world"));
  s.remove_prefix(6);
  EXPECT_EQ(s.ToString(), "world");
}

TEST(CodingTest, FixedRoundTrip) {
  std::string buf;
  PutFixed16(&buf, 0xBEEF);
  PutFixed32(&buf, 0xDEADBEEF);
  PutFixed64(&buf, 0x0123456789ABCDEFULL);
  EXPECT_EQ(DecodeFixed16(buf.data()), 0xBEEF);
  EXPECT_EQ(DecodeFixed32(buf.data() + 2), 0xDEADBEEFu);
  EXPECT_EQ(DecodeFixed64(buf.data() + 6), 0x0123456789ABCDEFULL);
}

TEST(CodingTest, VarintRoundTrip) {
  std::string buf;
  const uint64_t values[] = {0,       1,          127,        128,
                             16383,   16384,      (1u << 28), uint64_t{1} << 40,
                             ~0ull};
  for (uint64_t v : values) PutVarint64(&buf, v);
  Slice in(buf);
  for (uint64_t v : values) {
    uint64_t got = 0;
    ASSERT_TRUE(GetVarint64(&in, &got));
    EXPECT_EQ(got, v);
  }
  EXPECT_TRUE(in.empty());
}

TEST(CodingTest, Varint32Boundaries) {
  for (uint32_t v : {0u, 1u, 0x7fu, 0x80u, 0x3fffu, 0x4000u, ~0u}) {
    std::string buf;
    PutVarint32(&buf, v);
    EXPECT_EQ(static_cast<int>(buf.size()), VarintLength(v));
    Slice in(buf);
    uint32_t got = 0;
    ASSERT_TRUE(GetVarint32(&in, &got));
    EXPECT_EQ(got, v);
  }
}

TEST(CodingTest, TruncatedVarintFails) {
  std::string buf;
  PutVarint64(&buf, uint64_t{1} << 40);
  Slice in(buf.data(), 2);  // cut mid-varint
  uint64_t got;
  EXPECT_FALSE(GetVarint64(&in, &got));
}

TEST(CodingTest, LengthPrefixedSlice) {
  std::string buf;
  PutLengthPrefixedSlice(&buf, "hello");
  PutLengthPrefixedSlice(&buf, "");
  PutLengthPrefixedSlice(&buf, std::string(300, 'z'));
  Slice in(buf), got;
  ASSERT_TRUE(GetLengthPrefixedSlice(&in, &got));
  EXPECT_EQ(got.ToString(), "hello");
  ASSERT_TRUE(GetLengthPrefixedSlice(&in, &got));
  EXPECT_TRUE(got.empty());
  ASSERT_TRUE(GetLengthPrefixedSlice(&in, &got));
  EXPECT_EQ(got.size(), 300u);
}

TEST(Crc32Test, KnownVectorsAndProperties) {
  // CRC-32C of "123456789" is 0xE3069283.
  EXPECT_EQ(Crc32c("123456789", 9), 0xE3069283u);
  EXPECT_NE(Crc32c("a", 1), Crc32c("b", 1));
  const uint32_t crc = Crc32c("data", 4);
  EXPECT_EQ(UnmaskCrc(MaskCrc(crc)), crc);
}

TEST(HashTest, DeterministicAndSpread) {
  EXPECT_EQ(Hash64("key", 3), Hash64("key", 3));
  EXPECT_NE(Hash64("key1", 4), Hash64("key2", 4));
  // Mix64 avalanche: single-bit input change flips many output bits.
  const uint64_t a = Mix64(1), b = Mix64(2);
  int diff = __builtin_popcountll(a ^ b);
  EXPECT_GT(diff, 16);
}

TEST(RandomTest, DeterministicSequences) {
  Random a(123), b(123), c(124);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_NE(a.Next(), c.Next());
}

TEST(RandomTest, UniformBounds) {
  Random r(5);
  for (int i = 0; i < 1000; i++) {
    EXPECT_LT(r.Uniform(10), 10u);
    const uint64_t v = r.Range(5, 7);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 7u);
    const double d = r.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(ZipfTest, SkewTowardLowRanks) {
  ZipfGenerator z(10000, 0.99, 1);
  uint64_t low = 0;
  const int n = 20000;
  for (int i = 0; i < n; i++) {
    if (z.Next() < 100) low++;  // top 1% of ranks
  }
  // With theta=0.99, the top 1% of items should draw far more than 1%.
  EXPECT_GT(low, static_cast<uint64_t>(n) / 20);
}

TEST(ZipfTest, GrowKeepsDomainValid) {
  ZipfGenerator z(10, 0.99, 2);
  z.Grow(1000);
  for (int i = 0; i < 1000; i++) EXPECT_LT(z.Next(), 1000u);
  EXPECT_EQ(z.n(), 1000u);
}

TEST(ClockTest, MonotoneAndAdvance) {
  LogicalClock c;
  const Timestamp a = c.Tick();
  const Timestamp b = c.Tick();
  EXPECT_LT(a, b);
  c.AdvanceTo(100);
  EXPECT_GT(c.Tick(), 100u);
}

TEST(KeyCodecTest, U64BigEndianPreservesOrder) {
  std::set<std::string> encoded;
  std::vector<uint64_t> values = {0, 1, 255, 256, 1u << 16, uint64_t{1} << 40,
                                  ~0ull};
  for (uint64_t v : values) encoded.insert(EncodeU64(v));
  uint64_t prev = 0;
  bool first = true;
  for (const auto& e : encoded) {
    const uint64_t v = DecodeU64(e);
    if (!first) EXPECT_GT(v, prev);
    prev = v;
    first = false;
  }
}

TEST(KeyCodecTest, I64OrderPreserving) {
  EXPECT_LT(EncodeI64(-5), EncodeI64(3));
  EXPECT_LT(EncodeI64(-100), EncodeI64(-5));
  EXPECT_EQ(DecodeI64(EncodeI64(-42)), -42);
}

TEST(KeyCodecTest, ComposeSplitRoundTrip) {
  const std::string sk = EncodeU64(77);
  const std::string pk = EncodeU64(123456);
  const std::string composed = ComposeSecondaryKey(sk, pk);
  Slice got_sk, got_pk;
  SplitSecondaryKey(composed, 8, &got_sk, &got_pk);
  EXPECT_EQ(got_sk.ToString(), sk);
  EXPECT_EQ(got_pk.ToString(), pk);
}

TEST(KeyCodecTest, ComposedOrderSortsBySkThenPk) {
  const std::string a = ComposeSecondaryKey(EncodeU64(1), EncodeU64(999));
  const std::string b = ComposeSecondaryKey(EncodeU64(2), EncodeU64(0));
  const std::string c = ComposeSecondaryKey(EncodeU64(2), EncodeU64(5));
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
}

TEST(RecordTest, SerializeRoundTrip) {
  TweetRecord r;
  r.id = 42;
  r.user_id = 777;
  r.location = "CA";
  r.creation_time = 2018;
  r.message = std::string(500, 'm');
  TweetRecord got;
  ASSERT_TRUE(TweetRecord::Deserialize(r.Serialize(), &got).ok());
  EXPECT_EQ(got, r);
}

TEST(RecordTest, FieldExtractors) {
  TweetRecord r;
  r.id = 1;
  r.user_id = 555;
  r.creation_time = 2020;
  const std::string data = r.Serialize();
  uint64_t t = 0, u = 0;
  ASSERT_TRUE(ExtractCreationTime(data, &t).ok());
  ASSERT_TRUE(ExtractUserId(data, &u).ok());
  EXPECT_EQ(t, 2020u);
  EXPECT_EQ(u, 555u);
}

TEST(RecordTest, DeserializeRejectsGarbage) {
  TweetRecord r;
  EXPECT_TRUE(TweetRecord::Deserialize(Slice("short"), &r).IsCorruption());
  EXPECT_TRUE(
      TweetRecord::Deserialize(Slice(std::string(24, 'x')), &r).IsCorruption());
}

}  // namespace
}  // namespace auxlsm
