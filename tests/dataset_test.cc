// End-to-end correctness of the Dataset under every maintenance strategy:
// whatever the strategy, queries must return exactly the records a reference
// model (std::map) holds.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/random.h"
#include "core/dataset.h"
#include "workload/tweet_gen.h"

namespace auxlsm {
namespace {

EnvOptions TestEnv() {
  EnvOptions o;
  o.page_size = 1024;
  o.cache_pages = 1 << 16;
  o.disk_profile = DiskProfile::Null();
  return o;
}

DatasetOptions BaseOptions(MaintenanceStrategy s) {
  DatasetOptions o;
  o.strategy = s;
  o.mem_budget_bytes = 64 << 10;  // small budget: force flushes and merges
  o.max_mergeable_bytes = 1 << 30;
  if (s == MaintenanceStrategy::kValidation) o.merge_repair = true;
  return o;
}

TweetRecord MakeTweet(uint64_t id, uint64_t user, uint64_t time) {
  TweetRecord r;
  r.id = id;
  r.user_id = user;
  r.location = "CA";
  r.creation_time = time;
  r.message = std::string(60, 'm');
  return r;
}

class StrategyTest : public ::testing::TestWithParam<MaintenanceStrategy> {};

TEST_P(StrategyTest, InsertThenGetById) {
  Env env(TestEnv());
  Dataset ds(&env, BaseOptions(GetParam()));
  for (uint64_t i = 1; i <= 300; i++) {
    bool inserted = false;
    ASSERT_TRUE(ds.Insert(MakeTweet(i, i % 10, i), &inserted).ok());
    EXPECT_TRUE(inserted);
  }
  TweetRecord r;
  ASSERT_TRUE(ds.GetById(123, &r).ok());
  EXPECT_EQ(r.user_id, 123 % 10);
  EXPECT_TRUE(ds.GetById(999, &r).IsNotFound());
  EXPECT_EQ(ds.num_records(), 300u);
}

TEST_P(StrategyTest, DuplicateInsertIgnored) {
  Env env(TestEnv());
  Dataset ds(&env, BaseOptions(GetParam()));
  bool inserted = false;
  ASSERT_TRUE(ds.Insert(MakeTweet(1, 5, 1), &inserted).ok());
  EXPECT_TRUE(inserted);
  ASSERT_TRUE(ds.Insert(MakeTweet(1, 7, 2), &inserted).ok());
  EXPECT_FALSE(inserted);
  TweetRecord r;
  ASSERT_TRUE(ds.GetById(1, &r).ok());
  EXPECT_EQ(r.user_id, 5u);  // the original record survives
  EXPECT_EQ(ds.ingest_stats().duplicates_ignored, 1u);
}

TEST_P(StrategyTest, UpsertReplacesRecord) {
  Env env(TestEnv());
  Dataset ds(&env, BaseOptions(GetParam()));
  ASSERT_TRUE(ds.Upsert(MakeTweet(1, 5, 2015)).ok());
  ASSERT_TRUE(ds.FlushAll().ok());  // old version lands on disk
  ASSERT_TRUE(ds.Upsert(MakeTweet(1, 7, 2018)).ok());
  TweetRecord r;
  ASSERT_TRUE(ds.GetById(1, &r).ok());
  EXPECT_EQ(r.user_id, 7u);
  EXPECT_EQ(ds.num_records(), 1u);
}

TEST_P(StrategyTest, DeleteRemovesRecordAcrossFlush) {
  Env env(TestEnv());
  Dataset ds(&env, BaseOptions(GetParam()));
  ASSERT_TRUE(ds.Upsert(MakeTweet(1, 5, 1)).ok());
  ASSERT_TRUE(ds.Upsert(MakeTweet(2, 6, 2)).ok());
  ASSERT_TRUE(ds.FlushAll().ok());
  ASSERT_TRUE(ds.Delete(1).ok());
  TweetRecord r;
  EXPECT_TRUE(ds.GetById(1, &r).IsNotFound());
  ASSERT_TRUE(ds.GetById(2, &r).ok());
  EXPECT_EQ(ds.num_records(), 1u);
  // Deleting a missing key is a no-op.
  ASSERT_TRUE(ds.Delete(12345).ok());
}

TEST_P(StrategyTest, SecondaryQueryAfterUpdatesReturnsCurrentRecords) {
  Env env(TestEnv());
  Dataset ds(&env, BaseOptions(GetParam()));
  // Insert 200 records with user ids 0..19, then move half to user 50.
  for (uint64_t i = 1; i <= 200; i++) {
    ASSERT_TRUE(ds.Upsert(MakeTweet(i, i % 20, i)).ok());
  }
  ASSERT_TRUE(ds.FlushAll().ok());
  for (uint64_t i = 1; i <= 200; i += 2) {
    ASSERT_TRUE(ds.Upsert(MakeTweet(i, 50, 1000 + i)).ok());
  }
  ASSERT_TRUE(ds.FlushAll().ok());

  SecondaryQueryOptions q;
  QueryResult res;
  ASSERT_TRUE(ds.QueryUserRange(50, 50, q, &res).ok());
  EXPECT_EQ(res.records.size(), 100u);
  for (const auto& r : res.records) EXPECT_EQ(r.user_id, 50u);

  // Old user ids of moved records must not resurface.
  QueryResult res2;
  ASSERT_TRUE(ds.QueryUserRange(0, 19, q, &res2).ok());
  EXPECT_EQ(res2.records.size(), 100u);
  for (const auto& r : res2.records) EXPECT_EQ(r.id % 2, 0u);
}

TEST_P(StrategyTest, IndexOnlyQueryMatchesFullQuery) {
  Env env(TestEnv());
  Dataset ds(&env, BaseOptions(GetParam()));
  for (uint64_t i = 1; i <= 150; i++) {
    ASSERT_TRUE(ds.Upsert(MakeTweet(i, i % 7, i)).ok());
  }
  for (uint64_t i = 1; i <= 150; i += 3) {
    ASSERT_TRUE(ds.Upsert(MakeTweet(i, (i % 7) + 100, 500 + i)).ok());
  }
  ASSERT_TRUE(ds.FlushAll().ok());

  SecondaryQueryOptions q;
  QueryResult full;
  ASSERT_TRUE(ds.QueryUserRange(3, 3, q, &full).ok());
  q.index_only = true;
  QueryResult idx;
  ASSERT_TRUE(ds.QueryUserRange(3, 3, q, &idx).ok());
  EXPECT_EQ(idx.keys.size(), full.records.size());
}

TEST_P(StrategyTest, RandomizedWorkloadMatchesReferenceModel) {
  Env env(TestEnv());
  Dataset ds(&env, BaseOptions(GetParam()));
  std::map<uint64_t, TweetRecord> model;  // id -> current record
  Random rng(99);
  uint64_t time = 0;
  for (int i = 0; i < 3000; i++) {
    const uint64_t id = 1 + rng.Uniform(400);
    const double dice = rng.NextDouble();
    if (dice < 0.15) {
      ASSERT_TRUE(ds.Delete(id).ok());
      model.erase(id);
    } else {
      const TweetRecord r = MakeTweet(id, rng.Uniform(30), ++time);
      ASSERT_TRUE(ds.Upsert(r).ok());
      model[id] = r;
    }
  }
  EXPECT_EQ(ds.num_records(), model.size());

  // Point queries agree.
  for (uint64_t id = 1; id <= 400; id += 13) {
    TweetRecord got;
    const Status st = ds.GetById(id, &got);
    if (model.count(id)) {
      ASSERT_TRUE(st.ok()) << "id " << id;
      EXPECT_EQ(got.user_id, model[id].user_id);
    } else {
      EXPECT_TRUE(st.IsNotFound()) << "id " << id;
    }
  }

  // Secondary queries agree for every user id bucket.
  SecondaryQueryOptions q;
  for (uint64_t user = 0; user < 30; user += 5) {
    std::set<uint64_t> expected;
    for (const auto& [id, r] : model) {
      if (r.user_id == user) expected.insert(id);
    }
    QueryResult res;
    ASSERT_TRUE(ds.QueryUserRange(user, user, q, &res).ok());
    std::set<uint64_t> got;
    for (const auto& r : res.records) got.insert(r.id);
    EXPECT_EQ(got, expected) << "user " << user;
  }
}

TEST_P(StrategyTest, TimeRangeScanCountsMatchModel) {
  Env env(TestEnv());
  Dataset ds(&env, BaseOptions(GetParam()));
  std::map<uint64_t, TweetRecord> model;
  // Three "eras" of data with flushes in between, then update some old
  // records (the filter-correctness trap from §3.1's running example).
  uint64_t time = 0;
  for (uint64_t i = 1; i <= 90; i++) {
    const TweetRecord r = MakeTweet(i, i % 5, ++time);
    ASSERT_TRUE(ds.Upsert(r).ok());
    model[i] = r;
    if (i % 30 == 0) ASSERT_TRUE(ds.FlushAll().ok());
  }
  for (uint64_t i = 1; i <= 30; i += 2) {
    const TweetRecord r = MakeTweet(i, i % 5, ++time);
    ASSERT_TRUE(ds.Upsert(r).ok());
    model[i] = r;
  }
  auto count_model = [&](uint64_t lo, uint64_t hi) {
    uint64_t n = 0;
    for (const auto& [id, r] : model) {
      if (r.creation_time >= lo && r.creation_time <= hi) n++;
    }
    return n;
  };
  for (auto [lo, hi] : std::vector<std::pair<uint64_t, uint64_t>>{
           {1, 30}, {31, 60}, {61, 90}, {91, 200}, {1, 200}}) {
    ScanResult res;
    ASSERT_TRUE(ds.ScanTimeRange(lo, hi, &res).ok());
    EXPECT_EQ(res.records_matched, count_model(lo, hi))
        << "range " << lo << "-" << hi;
  }
}

TEST_P(StrategyTest, MultipleSecondaryIndexesStayConsistent) {
  Env env(TestEnv());
  DatasetOptions o = BaseOptions(GetParam());
  o.secondary_indexes = {SecondaryIndexDef::UserId(),
                         SecondaryIndexDef::SyntheticAttribute(1),
                         SecondaryIndexDef::SyntheticAttribute(2)};
  Dataset ds(&env, o);
  for (uint64_t i = 1; i <= 120; i++) {
    ASSERT_TRUE(ds.Upsert(MakeTweet(i, i % 8, i)).ok());
  }
  for (uint64_t i = 1; i <= 120; i += 4) {
    ASSERT_TRUE(ds.Upsert(MakeTweet(i, (i % 8) + 200, 500 + i)).ok());
  }
  ASSERT_TRUE(ds.FlushAll().ok());
  SecondaryQueryOptions q;
  QueryResult res;
  ASSERT_TRUE(ds.QueryUserRange(200, 208, q, &res).ok());
  EXPECT_EQ(res.records.size(), 30u);
  EXPECT_EQ(ds.secondaries().size(), 3u);
}

TEST_P(StrategyTest, FullScanMatchesSecondaryQuery) {
  Env env(TestEnv());
  Dataset ds(&env, BaseOptions(GetParam()));
  for (uint64_t i = 1; i <= 250; i++) {
    ASSERT_TRUE(ds.Upsert(MakeTweet(i, i % 25, i)).ok());
  }
  ASSERT_TRUE(ds.FlushAll().ok());
  SecondaryQueryOptions q;
  QueryResult res;
  ASSERT_TRUE(ds.QueryUserRange(0, 4, q, &res).ok());
  ScanResult scan;
  ASSERT_TRUE(ds.FullScanUserRange(0, 4, &scan).ok());
  EXPECT_EQ(scan.records_matched, res.records.size());
  EXPECT_EQ(scan.records_scanned, 250u);
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, StrategyTest,
    ::testing::Values(MaintenanceStrategy::kEager,
                      MaintenanceStrategy::kValidation,
                      MaintenanceStrategy::kMutableBitmap,
                      MaintenanceStrategy::kDeletedKeyBtree),
    [](const ::testing::TestParamInfo<MaintenanceStrategy>& info) {
      std::string name = StrategyName(info.param);
      for (auto& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(DatasetTest, EagerDoesIngestPointLookupsValidationDoesNot) {
  Env env(TestEnv());
  Dataset eager(&env, BaseOptions(MaintenanceStrategy::kEager));
  Dataset val(&env, BaseOptions(MaintenanceStrategy::kValidation));
  for (uint64_t i = 1; i <= 100; i++) {
    ASSERT_TRUE(eager.Upsert(MakeTweet(i, 1, i)).ok());
    ASSERT_TRUE(val.Upsert(MakeTweet(i, 1, i)).ok());
  }
  // Eager: one point lookup per upsert. Validation: none for upserts.
  EXPECT_EQ(eager.ingest_stats().ingest_point_lookups, 100u);
  EXPECT_EQ(val.ingest_stats().ingest_point_lookups, 0u);
}

TEST(DatasetTest, MutableBitmapMarksOldDiskEntries) {
  Env env(TestEnv());
  Dataset ds(&env, BaseOptions(MaintenanceStrategy::kMutableBitmap));
  for (uint64_t i = 1; i <= 50; i++) {
    ASSERT_TRUE(ds.Upsert(MakeTweet(i, 1, i)).ok());
  }
  ASSERT_TRUE(ds.FlushAll().ok());
  ASSERT_TRUE(ds.Upsert(MakeTweet(7, 2, 100)).ok());
  const auto comps = ds.primary()->Components();
  ASSERT_FALSE(comps.empty());
  ASSERT_NE(comps.back()->bitmap(), nullptr);
  EXPECT_EQ(comps.back()->bitmap()->CountSet(), 1u);
  // Primary and primary key index share the bitmap (§5.1).
  const auto kcomps = ds.primary_key_index()->Components();
  EXPECT_EQ(kcomps.back()->bitmap().get(), comps.back()->bitmap().get());
}

TEST(DatasetTest, MemBudgetTriggersSharedFlush) {
  Env env(TestEnv());
  DatasetOptions o = BaseOptions(MaintenanceStrategy::kEager);
  o.mem_budget_bytes = 16 << 10;
  Dataset ds(&env, o);
  for (uint64_t i = 1; i <= 500; i++) {
    ASSERT_TRUE(ds.Upsert(MakeTweet(i, 1, i)).ok());
  }
  EXPECT_GT(ds.ingest_stats().flushes, 0u);
  EXPECT_GT(ds.primary()->NumDiskComponents(), 0u);
  // All indexes flush together: component counts match.
  EXPECT_EQ(ds.primary()->NumDiskComponents(),
            ds.primary_key_index()->NumDiskComponents());
}

TEST(DatasetTest, NoPkIndexFallsBackToPrimaryForUniqueness) {
  Env env(TestEnv());
  DatasetOptions o = BaseOptions(MaintenanceStrategy::kEager);
  o.enable_primary_key_index = false;
  Dataset ds(&env, o);
  bool inserted = false;
  ASSERT_TRUE(ds.Insert(MakeTweet(1, 1, 1), &inserted).ok());
  EXPECT_TRUE(inserted);
  ASSERT_TRUE(ds.Insert(MakeTweet(1, 2, 2), &inserted).ok());
  EXPECT_FALSE(inserted);
  EXPECT_EQ(ds.primary_key_index(), nullptr);
}

TEST(DatasetTest, CorrelatedMergesKeepComponentsAligned) {
  Env env(TestEnv());
  DatasetOptions o = BaseOptions(MaintenanceStrategy::kValidation);
  o.correlated_merges = true;
  o.merge_repair = true;
  o.repair_bloom_opt = true;
  o.mem_budget_bytes = 16 << 10;
  Dataset ds(&env, o);
  for (uint64_t i = 1; i <= 800; i++) {
    ASSERT_TRUE(ds.Upsert(MakeTweet(i % 300 + 1, i % 10, i)).ok());
  }
  ASSERT_TRUE(ds.FlushAll().ok());
  EXPECT_EQ(ds.primary()->NumDiskComponents(),
            ds.primary_key_index()->NumDiskComponents());
  EXPECT_EQ(ds.primary()->NumDiskComponents(),
            ds.secondary(0)->tree->NumDiskComponents());
  // Queries remain correct.
  SecondaryQueryOptions q;
  QueryResult res;
  ASSERT_TRUE(ds.QueryUserRange(0, 9, q, &res).ok());
  EXPECT_EQ(res.records.size(), ds.num_records());
}

TEST(DatasetTest, TxnAbortRollsBackIngest) {
  Env env(TestEnv());
  Dataset ds(&env, BaseOptions(MaintenanceStrategy::kEager));
  ASSERT_TRUE(ds.Upsert(MakeTweet(1, 5, 1)).ok());
  auto txn = ds.Begin();
  ASSERT_TRUE(ds.UpsertTxn(MakeTweet(1, 9, 2), txn.get()).ok());
  ASSERT_TRUE(ds.UpsertTxn(MakeTweet(2, 9, 3), txn.get()).ok());
  ASSERT_TRUE(txn->Abort().ok());
  TweetRecord r;
  ASSERT_TRUE(ds.GetById(1, &r).ok());
  EXPECT_EQ(r.user_id, 5u);  // original value restored
  EXPECT_TRUE(ds.GetById(2, &r).IsNotFound());
}

TEST(DatasetTest, TxnAbortUnsetsMutableBitmapBit) {
  Env env(TestEnv());
  Dataset ds(&env, BaseOptions(MaintenanceStrategy::kMutableBitmap));
  ASSERT_TRUE(ds.Upsert(MakeTweet(1, 5, 1)).ok());
  ASSERT_TRUE(ds.FlushAll().ok());
  auto comps = ds.primary()->Components();
  ASSERT_EQ(comps.front()->bitmap()->CountSet(), 0u);
  auto txn = ds.Begin();
  ASSERT_TRUE(ds.DeleteTxn(1, txn.get()).ok());
  EXPECT_EQ(comps.front()->bitmap()->CountSet(), 1u);
  ASSERT_TRUE(txn->Abort().ok());
  EXPECT_EQ(comps.front()->bitmap()->CountSet(), 0u);
  TweetRecord r;
  ASSERT_TRUE(ds.GetById(1, &r).ok());
}

}  // namespace
}  // namespace auxlsm
