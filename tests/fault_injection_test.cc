// Fault-injection matrix (PR 6): every registered failpoint site is armed —
// with an injected error and with a crash — under every maintenance
// strategy, while a chaos-style workload runs against an in-memory
// reference model. The invariant under test is "error <=> op excluded from
// the model": an operation that returned a Status error must have no
// surviving effect (rolled back / dropped from the WAL), and an operation
// that returned OK must survive checkpoint + crash + recovery bit-for-bit.
// Around the matrix sit the robustness state-machine tests: transient
// faults self-heal inside the retry budget, retry exhaustion degrades the
// dataset to read-only until TakeBackgroundError() clears it, delays charge
// the modeled clock, and an armed injector that never fires changes nothing.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>

#include "common/random.h"
#include "core/dataset.h"

namespace auxlsm {
namespace {

constexpr uint64_t kKeySpace = 600;
constexpr uint64_t kUserSpace = 40;

EnvOptions TestEnv(FaultInjector* fault) {
  EnvOptions o;
  o.page_size = 1024;
  o.cache_pages = 1 << 14;
  o.disk_profile = DiskProfile::Null();
  o.fault_injector = fault;
  return o;
}

DatasetOptions Opts(MaintenanceStrategy s, FaultInjector* fault) {
  DatasetOptions o;
  o.strategy = s;
  o.mem_budget_bytes = 48 << 10;  // frequent flushes and merges
  o.max_mergeable_bytes = 1 << 20;
  if (s == MaintenanceStrategy::kValidation) o.merge_repair = true;
  o.fault_injector = fault;
  o.maintenance_retry_limit = 2;
  o.retry_backoff_us = 10;
  // The matrix runs with the tuple cache on so the cache.tuple_* sites are
  // genuinely consulted; a faulted cache must degrade to misses, never
  // change any query outcome.
  o.tuple_cache_bytes = 256 << 10;
  return o;
}

TweetRecord MakeTweet(uint64_t id, uint64_t user, uint64_t time) {
  TweetRecord r;
  r.id = id;
  r.user_id = user;
  r.location = "GA";
  r.creation_time = time;
  r.message = std::string(40 + id % 30, 'z');
  return r;
}

// Post-recovery validation: record count, sampled point queries, and one
// secondary range query against the committed-ops model.
void ValidateRecovered(Dataset* ds,
                       const std::map<uint64_t, TweetRecord>& model,
                       const std::string& trace) {
  ASSERT_EQ(ds->num_records(), model.size()) << trace;
  for (uint64_t id = 1; id <= kKeySpace; id += 7) {
    TweetRecord got;
    const Status st = ds->GetById(id, &got);
    auto it = model.find(id);
    if (it != model.end()) {
      ASSERT_TRUE(st.ok()) << trace << " id " << id << ": " << st.ToString();
      EXPECT_EQ(got.user_id, it->second.user_id) << trace << " id " << id;
      EXPECT_EQ(got.creation_time, it->second.creation_time)
          << trace << " id " << id;
    } else {
      EXPECT_TRUE(st.IsNotFound()) << trace << " id " << id;
    }
  }
  std::set<uint64_t> expected;
  for (const auto& [id, r] : model) {
    if (r.user_id <= 4) expected.insert(id);
  }
  SecondaryQueryOptions q;
  QueryResult res;
  ASSERT_TRUE(ds->QueryUserRange(0, 4, q, &res).ok()) << trace;
  std::set<uint64_t> got;
  for (const auto& r : res.records) got.insert(r.id);
  EXPECT_EQ(got, expected) << trace;
}

class FaultMatrixTest : public ::testing::TestWithParam<MaintenanceStrategy> {
 protected:
  // One matrix cell: warm up un-faulted, arm `site` with `spec`, run a
  // chaos workload tolerating injected errors (every errored op is excluded
  // from the model), then crash-recover and validate the committed state.
  void RunCase(const char* site, const FaultSpec& spec) {
    const std::string trace =
        std::string("site=") + site + " strategy=" +
        StrategyName(GetParam());
    SCOPED_TRACE(trace);
    const uint64_t salt = std::hash<std::string>{}(site) % 1000;
    FaultInjector fault(7 + salt);
    Env env(TestEnv(&fault));
    Wal durable_wal;
    std::map<uint64_t, TweetRecord> model;
    Random rng(1234 + salt);
    uint64_t time = 0;
    DatasetCatalog catalog;
    {
      Dataset ds(&env, Opts(GetParam(), &fault));
      // Warm up with the injector quiet so disk components (and bitmaps /
      // deleted-key trees) exist before the site arms.
      for (int step = 0; step < 250; step++) {
        const uint64_t id = 1 + rng.Uniform(kKeySpace);
        const TweetRecord r = MakeTweet(id, rng.Uniform(kUserSpace), ++time);
        ASSERT_TRUE(ds.Upsert(r).ok());
        model[id] = r;
      }
      ASSERT_TRUE(ds.FlushAll().ok());

      fault.Arm(site, spec);
      for (int step = 0; step < 450 && !fault.crashed(); step++) {
        const uint64_t id = 1 + rng.Uniform(kKeySpace);
        const double dice = rng.NextDouble();
        Status st;
        if (dice < 0.60) {
          const TweetRecord r = MakeTweet(id, rng.Uniform(kUserSpace), ++time);
          st = ds.Upsert(r);
          if (st.ok()) model[id] = r;
        } else if (dice < 0.80) {
          st = ds.Delete(id);
          if (st.ok()) model.erase(id);
        } else if (dice < 0.88) {
          bool inserted = false;
          const TweetRecord r = MakeTweet(id, rng.Uniform(kUserSpace), ++time);
          st = ds.Insert(r, &inserted);
          if (st.ok() && inserted) model[id] = r;
        } else if (dice < 0.94) {
          // Reads interleaved with the faulted writes: a fired cache site
          // must degrade to a miss — never to a stale or ghost row.
          TweetRecord got;
          const Status rst = ds.GetById(id, &got);
          auto it = model.find(id);
          if (rst.ok() && it != model.end()) {
            EXPECT_EQ(got.user_id, it->second.user_id) << trace;
            EXPECT_EQ(got.creation_time, it->second.creation_time) << trace;
          } else if (rst.ok()) {
            ADD_FAILURE() << trace << ": ghost row for id " << id;
          } else if (rst.IsNotFound()) {
            EXPECT_TRUE(it == model.end()) << trace << " id " << id;
          }  // injected read errors are tolerated like any faulted op
        } else if (dice < 0.97) {
          // Maintenance calls may fail under injection; a failed flush or
          // merge never changes query-visible state.
          st = ds.FlushAll();
        } else {
          st = ds.MergeAllIndexes();
        }
        if (!st.ok()) {
          // Re-arm the pipeline: both sticky error classes (flush-cycle and
          // merge-queue) may be set after a degraded transition.
          ds.TakeBackgroundError();
          ds.TakeBackgroundError();
        }
      }

      // Crash point. The injector stops injecting (recovery begins); the
      // catalog models per-component metadata a real system keeps durable
      // as flushes/merges happen, and the WAL content as of the crash is
      // copied to the stand-in durable log device.
      fault.ResetCrash();
      fault.DisarmAll();
      catalog = ds.Checkpoint();
      for (const auto& r : ds.wal()->ReadFrom(kInvalidLsn)) {
        durable_wal.Append(r);
      }
    }

    RecoveryStats stats;
    auto recovered = Dataset::Recover(&env, &durable_wal, catalog,
                                      Opts(GetParam(), &fault), &stats);
    ASSERT_TRUE(recovered.ok()) << trace << ": "
                                << recovered.status().ToString();
    Dataset* ds = recovered->get();
    ValidateRecovered(ds, model, trace);

    // The recovered dataset must be fully usable: ingest, flush, read.
    EXPECT_EQ(ds->health(), DatasetHealth::kHealthy) << trace;
    for (int i = 0; i < 40; i++) {
      const uint64_t id = 1 + rng.Uniform(kKeySpace);
      const TweetRecord r = MakeTweet(id, rng.Uniform(kUserSpace), ++time);
      ASSERT_TRUE(ds->Upsert(r).ok()) << trace;
      model[id] = r;
    }
    ASSERT_TRUE(ds->FlushAll().ok()) << trace;
    ASSERT_EQ(ds->num_records(), model.size()) << trace;
  }
};

// An injected transient error at every site: op-level sites surface the
// error to the caller (op excluded from the model), maintenance sites are
// absorbed by the retry policy. Either way, recovery restores exactly the
// committed state.
TEST_P(FaultMatrixTest, InjectedErrorAtEverySiteRecoversCommittedState) {
  for (const char* site : failpoints::AllSites()) {
    RunCase(site, FaultSpec::ErrorNth(Status::IOError("injected io error"), 3));
    if (HasFatalFailure()) return;
  }
}

// A crash at every site: from the crash point on, appends drop and every
// storage touch fails; recovery from the surviving WAL + catalog must
// restore exactly the committed state.
TEST_P(FaultMatrixTest, CrashAtEverySiteRecoversCommittedState) {
  for (const char* site : failpoints::AllSites()) {
    RunCase(site, FaultSpec::CrashNth(5));
    if (HasFatalFailure()) return;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, FaultMatrixTest,
    ::testing::Values(MaintenanceStrategy::kEager,
                      MaintenanceStrategy::kValidation,
                      MaintenanceStrategy::kMutableBitmap,
                      MaintenanceStrategy::kDeletedKeyBtree),
    [](const ::testing::TestParamInfo<MaintenanceStrategy>& info) {
      std::string name = StrategyName(info.param);
      for (auto& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// A low-rate transient write fault on the page-append seam: every failure
// lands inside a retry-wrapped maintenance step, so with an adequate retry
// budget NO error ever surfaces to the workload and the dataset stays
// healthy. The MaintenanceStats counters must show the absorbed failures.
TEST(FaultSelfHealingTest, TransientWriteFaultsAbsorbedByRetries) {
  FaultInjector fault(99);
  Env env(TestEnv(&fault));
  DatasetOptions o = Opts(MaintenanceStrategy::kEager, &fault);
  o.maintenance_retry_limit = 6;
  Dataset ds(&env, o);
  std::map<uint64_t, TweetRecord> model;
  Random rng(4040);
  uint64_t time = 0;

  fault.Arm(failpoints::kEnvAppendPage,
            FaultSpec::Error(Status::IOError("transient write fault"), 0.01));
  for (int step = 0; step < 1500; step++) {
    const uint64_t id = 1 + rng.Uniform(kKeySpace);
    if (rng.Bernoulli(0.8)) {
      const TweetRecord r = MakeTweet(id, rng.Uniform(kUserSpace), ++time);
      ASSERT_TRUE(ds.Upsert(r).ok()) << "step " << step;
      model[id] = r;
    } else {
      ASSERT_TRUE(ds.Delete(id).ok()) << "step " << step;
      model.erase(id);
    }
  }
  fault.DisarmAll();
  ASSERT_TRUE(ds.FlushAll().ok());
  EXPECT_EQ(ds.health(), DatasetHealth::kHealthy);

  const FaultSiteStats ss = fault.site_stats(failpoints::kEnvAppendPage);
  EXPECT_GT(ss.hits, 0u);
  EXPECT_GT(ss.fires, 0u) << "fault rate too low to exercise the retry path";
  const MaintenanceStats& ms = ds.maintenance_stats();
  EXPECT_GE(ms.transient_failures.load(), ss.fires ? 1u : 0u);
  EXPECT_GE(ms.retries_succeeded.load(), 1u);
  EXPECT_EQ(ms.rounds_abandoned.load(), 0u);
  EXPECT_EQ(ms.degraded_transitions.load(), 0u);

  ValidateRecovered(&ds, model, "self-healing");
}

// Retry-budget exhaustion: a persistent transient fault on flush builds
// degrades the dataset to read-only. Ingest fails fast with the sticky
// error, reads keep serving, and clearing the error via
// TakeBackgroundError() re-arms the pipeline — including re-flushing the
// sealed memtables the failed builds left behind.
TEST(DegradedModeTest, RetryExhaustionDegradesThenClears) {
  FaultInjector fault(3);
  Env env(TestEnv(&fault));
  DatasetOptions o = Opts(MaintenanceStrategy::kEager, &fault);
  o.mem_budget_bytes = 8 << 10;
  o.maintenance_retry_limit = 2;
  Dataset ds(&env, o);
  uint64_t time = 0;
  for (uint64_t id = 1; id <= 60; id++) {
    ASSERT_TRUE(ds.Upsert(MakeTweet(id, id % 5, ++time)).ok());
  }
  ASSERT_TRUE(ds.FlushAll().ok());

  fault.Arm(failpoints::kFlushBuild,
            FaultSpec::Error(Status::IOError("disk down"), 1.0));
  // Ingest until the budget-triggered inline flush exhausts its retries:
  // the triggering op has already committed (it returns OK; the flush
  // failure marks the dataset degraded), the NEXT op fails fast before any
  // effect.
  Status failed;
  uint64_t last_committed = 0;
  for (uint64_t id = 100; id < 600; id++) {
    const Status st = ds.Upsert(MakeTweet(id, 1, ++time));
    if (!st.ok()) {
      failed = st;
      break;
    }
    last_committed = id;
  }
  ASSERT_FALSE(failed.ok()) << "flush faults never surfaced";
  EXPECT_EQ(ds.health(), DatasetHealth::kDegraded);

  // Read-only degraded mode: reads serve, writes fail fast with the cause.
  TweetRecord got;
  EXPECT_TRUE(ds.GetById(1, &got).ok());
  EXPECT_TRUE(ds.GetById(last_committed, &got).ok());
  EXPECT_FALSE(ds.Upsert(MakeTweet(700, 1, ++time)).ok());

  const MaintenanceStats& ms = ds.maintenance_stats();
  EXPECT_GE(ms.transient_failures.load(), 1u);
  EXPECT_GE(ms.retries_attempted.load(), 1u);
  EXPECT_GE(ms.rounds_abandoned.load(), 1u);
  EXPECT_GE(ms.degraded_transitions.load(), 1u);

  // Operator intervention: fix the "disk", take the sticky error(s).
  fault.DisarmAll();
  EXPECT_FALSE(ds.TakeBackgroundError().ok());
  ds.TakeBackgroundError();  // second class (merge queue), if any
  EXPECT_EQ(ds.health(), DatasetHealth::kHealthy);

  // The pipeline re-arms, and the sealed memtables stranded by the failed
  // builds are re-collected by the next flush — no committed data lost.
  ASSERT_TRUE(ds.Upsert(MakeTweet(701, 2, ++time)).ok());
  ASSERT_TRUE(ds.FlushAll().ok());
  EXPECT_TRUE(ds.GetById(701, &got).ok());
  EXPECT_TRUE(ds.GetById(last_committed, &got).ok());
  EXPECT_TRUE(ds.GetById(100, &got).ok());
}

// Permanent errors never retry: a Corruption from a flush build is returned
// immediately with the step's context attached, and the retry counters stay
// untouched. Disarming and re-flushing recovers the stranded data.
TEST(DegradedModeTest, PermanentErrorsAbandonWithoutRetry) {
  FaultInjector fault(5);
  Env env(TestEnv(&fault));
  Dataset ds(&env, Opts(MaintenanceStrategy::kEager, &fault));
  uint64_t time = 0;
  for (uint64_t id = 1; id <= 80; id++) {
    ASSERT_TRUE(ds.Upsert(MakeTweet(id, id % 5, ++time)).ok());
  }

  fault.Arm(failpoints::kFlushBuild,
            FaultSpec::Error(Status::Corruption("torn build page"), 1.0));
  const Status st = ds.FlushAll();
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.IsCorruption()) << st.ToString();
  // WithContext names the failed step.
  EXPECT_NE(st.ToString().find("flush("), std::string::npos) << st.ToString();
  const MaintenanceStats& ms = ds.maintenance_stats();
  EXPECT_EQ(ms.retries_attempted.load(), 0u);
  EXPECT_GE(ms.rounds_abandoned.load(), 1u);

  fault.DisarmAll();
  ds.TakeBackgroundError();
  ds.TakeBackgroundError();
  ASSERT_TRUE(ds.FlushAll().ok());
  TweetRecord got;
  EXPECT_TRUE(ds.GetById(1, &got).ok());
  EXPECT_EQ(ds.num_records(), 80u);
}

// kDelay faults charge the site's modeled device clock instead of failing:
// the simulated critical path must grow by at least the injected delay while
// the workload itself sees no errors.
TEST(FaultActionsTest, DelayFaultChargesModeledClock) {
  FaultInjector fault(7);
  Env env(TestEnv(&fault));
  Dataset ds(&env, Opts(MaintenanceStrategy::kEager, &fault));
  uint64_t time = 0;
  for (uint64_t id = 1; id <= 40; id++) {
    ASSERT_TRUE(ds.Upsert(MakeTweet(id, id % 5, ++time)).ok());
  }
  const double before = env.io()->critical_path_us();
  fault.Arm(failpoints::kFlushBuild, FaultSpec::Delay(2500.0));
  ASSERT_TRUE(ds.FlushAll().ok());
  EXPECT_GE(env.io()->critical_path_us() - before, 2500.0);
  EXPECT_GT(fault.site_stats(failpoints::kFlushBuild).fires, 0u);
}

// Parity contract: an armed injector whose sites never fire (probability 0)
// must change nothing — same record count, same flush/merge counts, same
// WAL tail, and the same simulated I/O critical path as a run with no
// injector at all. The CI bench DIGEST check pins the disabled case; this
// pins the armed-but-quiet case.
struct RunFingerprint {
  uint64_t records = 0;
  uint64_t flushes = 0;
  uint64_t merges = 0;
  uint64_t read_rows = 0;
  Lsn wal_tail = kInvalidLsn;
  double io_us = 0;
};

RunFingerprint RunParityWorkload(FaultInjector* fault) {
  Env env(TestEnv(fault));
  Dataset ds(&env, Opts(MaintenanceStrategy::kMutableBitmap, fault));
  Random rng(555);
  uint64_t time = 0;
  for (int step = 0; step < 1200; step++) {
    const uint64_t id = 1 + rng.Uniform(kKeySpace);
    if (rng.Bernoulli(0.75)) {
      EXPECT_TRUE(
          ds.Upsert(MakeTweet(id, rng.Uniform(kUserSpace), ++time)).ok());
    } else {
      EXPECT_TRUE(ds.Delete(id).ok());
    }
  }
  EXPECT_TRUE(ds.FlushAll().ok());
  RunFingerprint fp;
  // Read phase: consults (and populates) the tuple cache, so the armed run
  // exercises the cache.tuple_* sites on both the insert and lookup sides.
  {
    SecondaryQueryOptions sq;
    sq.sort_results_by_pk = true;
    QueryResult res;
    EXPECT_TRUE(ds.QueryUserRange(0, 5, sq, &res).ok());
    EXPECT_TRUE(ds.QueryUserRange(0, 5, sq, &res).ok());
    fp.read_rows = res.records.size();
    TweetRecord got;
    for (uint64_t id = 1; id <= 40; id++) {
      if (ds.GetById(id, &got).ok()) fp.read_rows++;
    }
  }
  fp.records = ds.num_records();
  fp.flushes = ds.ingest_stats().flushes;
  fp.merges = ds.ingest_stats().merges;
  fp.wal_tail = ds.wal()->tail_lsn();
  fp.io_us = env.io()->critical_path_us();
  return fp;
}

TEST(FaultParityTest, ArmedInjectorThatNeverFiresChangesNothing) {
  const RunFingerprint base = RunParityWorkload(nullptr);

  FaultInjector fault(1);
  for (const char* site : failpoints::AllSites()) {
    fault.Arm(site, FaultSpec::Error(Status::IOError("never fires"), 0.0));
  }
  const RunFingerprint armed = RunParityWorkload(&fault);

  EXPECT_EQ(armed.records, base.records);
  EXPECT_EQ(armed.flushes, base.flushes);
  EXPECT_EQ(armed.merges, base.merges);
  EXPECT_EQ(armed.read_rows, base.read_rows);
  EXPECT_EQ(armed.wal_tail, base.wal_tail);
  EXPECT_EQ(armed.io_us, base.io_us);
  EXPECT_EQ(fault.TotalFires(), 0u);
  // The sites were genuinely consulted, not bypassed.
  EXPECT_GT(fault.site_stats(failpoints::kEnvAppendPage).hits, 0u);
  EXPECT_GT(fault.site_stats(failpoints::kWalAppend).hits, 0u);
  EXPECT_GT(fault.site_stats(failpoints::kCacheTupleInsert).hits, 0u);
  EXPECT_GT(fault.site_stats(failpoints::kCacheTupleInvalidate).hits, 0u);
}

}  // namespace
}  // namespace auxlsm
