#include <gtest/gtest.h>

#include "core/advisor.h"

namespace auxlsm {
namespace {

TEST(AdvisorTest, QueryDominatedPicksEager) {
  WorkloadProfile p;
  p.writes_per_query = 0.5;
  p.update_ratio = 0.5;
  const auto rec = AdviseStrategy(p);
  EXPECT_EQ(rec.strategy, MaintenanceStrategy::kEager);
  EXPECT_FALSE(rec.rationale.empty());
}

TEST(AdvisorTest, AppendOnlyIngestionPicksValidationNoRepair) {
  WorkloadProfile p;
  p.writes_per_query = 1000;
  p.update_ratio = 0.0;
  const auto rec = AdviseStrategy(p);
  EXPECT_EQ(rec.strategy, MaintenanceStrategy::kValidation);
  EXPECT_FALSE(rec.merge_repair);
}

TEST(AdvisorTest, UpdateHeavyIngestionPicksValidationWithBloomOpt) {
  WorkloadProfile p;
  p.writes_per_query = 1000;
  p.update_ratio = 0.5;
  const auto rec = AdviseStrategy(p);
  EXPECT_EQ(rec.strategy, MaintenanceStrategy::kValidation);
  EXPECT_TRUE(rec.merge_repair);
  EXPECT_TRUE(rec.correlated_merges);
  EXPECT_TRUE(rec.repair_bloom_opt);
}

TEST(AdvisorTest, ModerateUpdatesPicksMergeRepairOnly) {
  WorkloadProfile p;
  p.writes_per_query = 100;
  p.update_ratio = 0.1;
  const auto rec = AdviseStrategy(p);
  EXPECT_EQ(rec.strategy, MaintenanceStrategy::kValidation);
  EXPECT_TRUE(rec.merge_repair);
  EXPECT_FALSE(rec.repair_bloom_opt);
}

TEST(AdvisorTest, OldRangeScansUnderUpdatesPickMutableBitmap) {
  WorkloadProfile p;
  p.writes_per_query = 100;
  p.update_ratio = 0.3;
  p.old_range_scan_fraction = 0.5;
  const auto rec = AdviseStrategy(p);
  EXPECT_EQ(rec.strategy, MaintenanceStrategy::kMutableBitmap);
}

TEST(AdvisorTest, IndexOnlyHeavyQueriesKeepEager) {
  WorkloadProfile p;
  p.writes_per_query = 10;
  p.update_ratio = 0.2;
  p.index_only_fraction = 0.9;
  const auto rec = AdviseStrategy(p);
  EXPECT_EQ(rec.strategy, MaintenanceStrategy::kEager);
}

TEST(AdvisorTest, ApplyToSetsOptions) {
  WorkloadProfile p;
  p.writes_per_query = 1000;
  p.update_ratio = 0.5;
  const auto rec = AdviseStrategy(p);
  DatasetOptions o;
  rec.ApplyTo(&o);
  EXPECT_EQ(o.strategy, MaintenanceStrategy::kValidation);
  EXPECT_TRUE(o.merge_repair);
  EXPECT_TRUE(o.correlated_merges);
  EXPECT_TRUE(o.repair_bloom_opt);
}

TEST(WorkloadTrackerTest, ProfileFromCounters) {
  WorkloadTracker t;
  for (int i = 0; i < 80; i++) t.RecordWrite(/*is_update=*/false);
  for (int i = 0; i < 20; i++) t.RecordWrite(/*is_update=*/true);
  for (int i = 0; i < 10; i++) {
    t.RecordQuery(/*index_only=*/i < 3, /*old_range_scan=*/i < 5);
  }
  const WorkloadProfile p = t.Profile();
  EXPECT_DOUBLE_EQ(p.update_ratio, 0.2);
  EXPECT_DOUBLE_EQ(p.writes_per_query, 10.0);
  EXPECT_DOUBLE_EQ(p.index_only_fraction, 0.3);
  EXPECT_DOUBLE_EQ(p.old_range_scan_fraction, 0.5);
}

TEST(WorkloadTrackerTest, NoQueriesMeansWriteDominated) {
  WorkloadTracker t;
  for (int i = 0; i < 50; i++) t.RecordWrite(false);
  const WorkloadProfile p = t.Profile();
  EXPECT_GE(p.writes_per_query, 50.0);
  const auto rec = AdviseStrategy(p);
  EXPECT_EQ(rec.strategy, MaintenanceStrategy::kValidation);
}

TEST(AdvisorEndToEndTest, RecommendedOptionsProduceWorkingDataset) {
  WorkloadProfile p;
  p.writes_per_query = 500;
  p.update_ratio = 0.4;
  const auto rec = AdviseStrategy(p);

  EnvOptions eo;
  eo.page_size = 1024;
  eo.disk_profile = DiskProfile::Null();
  Env env(eo);
  DatasetOptions o;
  o.mem_budget_bytes = 64 << 10;
  rec.ApplyTo(&o);
  Dataset ds(&env, o);
  for (uint64_t i = 1; i <= 300; i++) {
    TweetRecord r;
    r.id = i % 120 + 1;
    r.user_id = i % 9;
    r.location = "CA";
    r.creation_time = i;
    r.message = "m";
    ASSERT_TRUE(ds.Upsert(r).ok());
  }
  SecondaryQueryOptions q;
  QueryResult res;
  ASSERT_TRUE(ds.QueryUserRange(0, 8, q, &res).ok());
  EXPECT_EQ(res.records.size(), 120u);
}

}  // namespace
}  // namespace auxlsm
