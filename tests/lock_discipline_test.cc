// Lock-discipline enforcement tests (PR 10): the runtime lock-rank checker
// (common/lock_rank.h) and the annotated mutex/latch guards built on it.
//
// The checker's core (OnAcquire/OnRelease/Holds/AssertHolds) is always
// compiled, so the unit and death tests below run in every build type. The
// *hooks* inside Mutex/SharedMutex/RwLatch exist only under
// AUXLSM_LOCK_RANK_CHECKS (Debug default, TSan CI); the integration tests
// for guard-driven tracking are gated accordingly.
#include <gtest/gtest.h>

#include <thread>

#include "common/lock_rank.h"
#include "common/mutex.h"
#include "common/rwlatch.h"

namespace auxlsm {
namespace {

using lockrank::AssertHolds;
using lockrank::HeldCount;
using lockrank::Holds;
using lockrank::OnAcquire;
using lockrank::OnRelease;

TEST(LockRankTest, OrderedAcquisitionPasses) {
  int a = 0, b = 0, c = 0;
  const uint32_t before = HeldCount();
  OnAcquire(&a, lockrank::kIngestLatch, "a", /*shared=*/false);
  OnAcquire(&b, lockrank::kTreeMem, "b", /*shared=*/false);
  OnAcquire(&c, lockrank::kLeaf, "c", /*shared=*/false);
  EXPECT_EQ(HeldCount(), before + 3);
  EXPECT_TRUE(Holds(&b, /*exclusive_only=*/true));
  OnRelease(&c);
  OnRelease(&b);
  OnRelease(&a);
  EXPECT_EQ(HeldCount(), before);
  EXPECT_FALSE(Holds(&a, /*exclusive_only=*/false));
}

TEST(LockRankTest, OutOfOrderReleaseIsLegal) {
  // RAII guards with interleaved lifetimes release non-LIFO; the stack must
  // compact correctly and keep the remaining holds queryable.
  int a = 0, b = 0;
  OnAcquire(&a, lockrank::kTreeMem, "a", false);
  OnAcquire(&b, lockrank::kLeaf, "b", false);
  OnRelease(&a);
  EXPECT_TRUE(Holds(&b, true));
  EXPECT_FALSE(Holds(&a, false));
  OnRelease(&b);
}

TEST(LockRankTest, UnrankedExemptFromOrdering) {
  // An unranked capability may be taken under any ranked hold, and ranked
  // acquisitions skip over unranked holds when checking order.
  int ranked = 0, unranked = 0, deeper = 0;
  OnAcquire(&ranked, lockrank::kLeaf, "ranked", false);
  OnAcquire(&unranked, lockrank::kUnranked, "unranked", false);
  OnAcquire(&deeper, lockrank::kDiskModel, "deeper", false);
  EXPECT_TRUE(Holds(&unranked, true));
  OnRelease(&deeper);
  OnRelease(&unranked);
  OnRelease(&ranked);
}

TEST(LockRankTest, SharedHoldsAreNotExclusive) {
  int cap = 0;
  OnAcquire(&cap, lockrank::kIngestLatch, "latch", /*shared=*/true);
  EXPECT_TRUE(Holds(&cap, /*exclusive_only=*/false));
  EXPECT_FALSE(Holds(&cap, /*exclusive_only=*/true));
  OnRelease(&cap);
}

TEST(LockRankTest, HoldsIsPerThread) {
  int cap = 0;
  OnAcquire(&cap, lockrank::kLeaf, "cap", false);
  bool other_thread_holds = true;
  std::thread([&]() { other_thread_holds = Holds(&cap, false); }).join();
  EXPECT_FALSE(other_thread_holds);
  OnRelease(&cap);
}

TEST(LockRankDeathTest, InvertedOrderAborts) {
  EXPECT_DEATH(
      {
        int deep = 0;
        int shallow = 0;
        OnAcquire(&deep, lockrank::kLeaf, "deep", false);
        OnAcquire(&shallow, lockrank::kIngestLatch, "shallow", false);
      },
      "acquisition order inverted");
}

TEST(LockRankDeathTest, SameRankNestingAborts) {
  // Two rank-300 leaves must never nest — each rank level is a single
  // object or a non-nesting sharded family.
  EXPECT_DEATH(
      {
        int l1 = 0;
        int l2 = 0;
        OnAcquire(&l1, lockrank::kLeaf, "leaf1", false);
        OnAcquire(&l2, lockrank::kLeaf, "leaf2", false);
      },
      "acquisition order inverted");
}

TEST(LockRankDeathTest, RecursiveRankedAcquisitionAborts) {
  EXPECT_DEATH(
      {
        int cap = 0;
        OnAcquire(&cap, lockrank::kTreeMem, "cap", false);
        OnAcquire(&cap, lockrank::kTreeMem, "cap", false);
      },
      "recursive acquisition");
}

TEST(LockRankDeathTest, AssertHoldsAbortsWhenNotHeld) {
  EXPECT_DEATH(
      {
        int cap = 0;
        AssertHolds(&cap, /*excl=*/true);
      },
      "not held by this thread");
}

TEST(LockRankDeathTest, AssertExclusiveAbortsOnSharedHold) {
  EXPECT_DEATH(
      {
        int cap = 0;
        OnAcquire(&cap, lockrank::kIngestLatch, "latch", /*shared=*/true);
        AssertHolds(&cap, /*excl=*/true);
      },
      "not held by this thread");
}

#if defined(AUXLSM_LOCK_RANK_CHECKS)

// Integration: the annotated primitives drive the checker through their
// compiled-in hooks, so guards register/unregister holds automatically.

TEST(LockRankGuardTest, MutexLockRegistersHold) {
  Mutex mu(lockrank::kLeaf, "test.mu");
  {
    MutexLock l(mu);
    mu.AssertHeld();  // would abort if the hook had not registered the hold
    EXPECT_TRUE(Holds(&mu, /*exclusive_only=*/true));
  }
  EXPECT_FALSE(Holds(&mu, false));
}

TEST(LockRankGuardTest, SharedMutexTracksBothModes) {
  SharedMutex mu(lockrank::kLeaf, "test.shared");
  {
    SharedMutexReadLock l(mu);
    mu.AssertHeldShared();
    EXPECT_FALSE(Holds(&mu, /*exclusive_only=*/true));
  }
  {
    SharedMutexWriteLock l(mu);
    mu.AssertHeld();
  }
  EXPECT_FALSE(Holds(&mu, false));
}

TEST(LockRankGuardTest, LatchGuardsTrackModesAndEarlyRelease) {
  RwLatch latch(lockrank::kIngestLatch, "test.latch");
  {
    ReadLatchGuard l(latch);
    latch.AssertHeldShared();
  }
  {
    WriteLatchGuard l(latch);
    latch.AssertHeld();
    l.Release();  // latch-crabbing: the hold must end at Release, not scope
    EXPECT_FALSE(Holds(&latch, false));
  }
}

TEST(LockRankGuardTest, EngineOrderIsAcceptedEndToEnd) {
  // The documented order, shallow to deep, as real primitives.
  RwLatch ingest(lockrank::kIngestLatch, "ingest");
  Mutex mem(lockrank::kTreeMem, "mem");
  Mutex comp(lockrank::kTreeComponents, "components");
  Mutex wal(lockrank::kLeaf, "wal");
  Mutex disk(lockrank::kDiskModel, "disk");
  ReadLatchGuard l0(ingest);
  MutexLock l1(mem);
  MutexLock l2(comp);
  MutexLock l3(wal);
  MutexLock l4(disk);
  wal.AssertHeld();
  disk.AssertHeld();
}

TEST(LockRankGuardDeathTest, InvertedEngineOrderAborts) {
  EXPECT_DEATH(
      {
        Mutex wal(lockrank::kLeaf, "wal");
        RwLatch ingest(lockrank::kIngestLatch, "ingest");
        MutexLock l1(wal);
        WriteLatchGuard l0(ingest);  // taking the latch under a leaf: inverted
      },
      "acquisition order inverted");
}

TEST(LockRankGuardDeathTest, AssertHeldAbortsWithoutLock) {
  EXPECT_DEATH(
      {
        Mutex mu(lockrank::kLeaf, "test.mu");
        mu.AssertHeld();
      },
      "not held by this thread");
}

#endif  // AUXLSM_LOCK_RANK_CHECKS

}  // namespace
}  // namespace auxlsm
