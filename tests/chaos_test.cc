// End-to-end chaos tests: long random interleavings of upserts, deletes,
// point queries, secondary queries, filter scans, explicit-transaction
// aborts, manual flushes/merges, repairs, and checkpoint+crash+recover —
// all validated against an in-memory reference model, under every
// maintenance strategy. This is the "whole system under one roof" safety
// net behind the per-module suites.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/random.h"
#include "core/dataset.h"

namespace auxlsm {
namespace {

EnvOptions TestEnv() {
  EnvOptions o;
  o.page_size = 1024;
  o.cache_pages = 1 << 14;
  o.disk_profile = DiskProfile::Null();
  return o;
}

DatasetOptions Opts(MaintenanceStrategy s) {
  DatasetOptions o;
  o.strategy = s;
  o.mem_budget_bytes = 48 << 10;  // frequent flushes and merges
  o.max_mergeable_bytes = 1 << 20;
  if (s == MaintenanceStrategy::kValidation) o.merge_repair = true;
  return o;
}

TweetRecord MakeTweet(uint64_t id, uint64_t user, uint64_t time) {
  TweetRecord r;
  r.id = id;
  r.user_id = user;
  r.location = "GA";
  r.creation_time = time;
  r.message = std::string(40 + id % 30, 'z');
  return r;
}

class ChaosTest : public ::testing::TestWithParam<MaintenanceStrategy> {
 protected:
  void VerifyAgainstModel(Dataset* ds,
                          const std::map<uint64_t, TweetRecord>& model,
                          Random* rng) {
    ASSERT_EQ(ds->num_records(), model.size());
    // Sampled point queries.
    for (int i = 0; i < 30; i++) {
      const uint64_t id = 1 + rng->Uniform(kKeySpace);
      TweetRecord got;
      const Status st = ds->GetById(id, &got);
      auto it = model.find(id);
      if (it != model.end()) {
        ASSERT_TRUE(st.ok()) << "id " << id;
        EXPECT_EQ(got.user_id, it->second.user_id) << "id " << id;
        EXPECT_EQ(got.creation_time, it->second.creation_time);
      } else {
        EXPECT_TRUE(st.IsNotFound()) << "id " << id;
      }
    }
    // Sampled secondary queries.
    SecondaryQueryOptions q;
    for (uint64_t user = 0; user < kUserSpace; user += 7) {
      std::set<uint64_t> expected;
      for (const auto& [id, r] : model) {
        if (r.user_id >= user && r.user_id <= user + 2) expected.insert(id);
      }
      QueryResult res;
      ASSERT_TRUE(ds->QueryUserRange(user, user + 2, q, &res).ok());
      std::set<uint64_t> got;
      for (const auto& r : res.records) got.insert(r.id);
      EXPECT_EQ(got, expected) << "users " << user << "-" << user + 2;
    }
    // Sampled time scans.
    for (int i = 0; i < 5; i++) {
      const uint64_t lo = rng->Uniform(1000) + 1;
      const uint64_t hi = lo + rng->Uniform(3000);
      uint64_t expected = 0;
      for (const auto& [id, r] : model) {
        if (r.creation_time >= lo && r.creation_time <= hi) expected++;
      }
      ScanResult res;
      ASSERT_TRUE(ds->ScanTimeRange(lo, hi, &res).ok());
      EXPECT_EQ(res.records_matched, expected) << lo << "-" << hi;
    }
  }

  static constexpr uint64_t kKeySpace = 600;
  static constexpr uint64_t kUserSpace = 40;
};

TEST_P(ChaosTest, LongRandomInterleaving) {
  Env env(TestEnv());
  Dataset ds(&env, Opts(GetParam()));
  std::map<uint64_t, TweetRecord> model;
  Random rng(2024);
  uint64_t time = 0;

  for (int step = 0; step < 6000; step++) {
    const uint64_t id = 1 + rng.Uniform(kKeySpace);
    const double dice = rng.NextDouble();
    if (dice < 0.55) {
      const TweetRecord r = MakeTweet(id, rng.Uniform(kUserSpace), ++time);
      ASSERT_TRUE(ds.Upsert(r).ok());
      model[id] = r;
    } else if (dice < 0.70) {
      ASSERT_TRUE(ds.Delete(id).ok());
      model.erase(id);
    } else if (dice < 0.78) {
      bool inserted = false;
      const TweetRecord r = MakeTweet(id, rng.Uniform(kUserSpace), ++time);
      ASSERT_TRUE(ds.Insert(r, &inserted).ok());
      if (inserted) {
        EXPECT_EQ(model.count(id), 0u);
        model[id] = r;
      } else {
        EXPECT_EQ(model.count(id), 1u);
      }
    } else if (dice < 0.86) {
      // An explicit transaction that aborts: no model change.
      auto txn = ds.Begin();
      ASSERT_TRUE(
          ds.UpsertTxn(MakeTweet(id, 999, ++time), txn.get()).ok());
      if (rng.Bernoulli(0.5)) {
        ASSERT_TRUE(
            ds.DeleteTxn(1 + rng.Uniform(kKeySpace), txn.get()).ok());
      }
      ASSERT_TRUE(txn->Abort().ok());
    } else if (dice < 0.92) {
      ASSERT_TRUE(ds.FlushAll().ok());
    } else if (dice < 0.96) {
      ASSERT_TRUE(ds.MergeAllIndexes().ok());
    } else {
      ASSERT_TRUE(ds.RepairAllSecondaries().ok());
    }

    if (step % 1500 == 1499) VerifyAgainstModel(&ds, model, &rng);
  }
  VerifyAgainstModel(&ds, model, &rng);
}

TEST_P(ChaosTest, CrashRecoverMidChaosPreservesCommittedState) {
  Env env(TestEnv());
  Wal durable_wal;
  std::map<uint64_t, TweetRecord> model;
  Random rng(777);
  uint64_t time = 0;
  DatasetCatalog catalog;
  {
    Dataset ds(&env, Opts(GetParam()));
    for (int step = 0; step < 1500; step++) {
      const uint64_t id = 1 + rng.Uniform(kKeySpace);
      if (rng.Bernoulli(0.8)) {
        const TweetRecord r = MakeTweet(id, rng.Uniform(kUserSpace), ++time);
        ASSERT_TRUE(ds.Upsert(r).ok());
        model[id] = r;
      } else {
        ASSERT_TRUE(ds.Delete(id).ok());
        model.erase(id);
      }
    }
    // In-flight uncommitted txn at crash time.
    auto txn = ds.Begin();
    ASSERT_TRUE(ds.UpsertTxn(MakeTweet(9999, 1, ++time), txn.get()).ok());
    // The catalog models per-component metadata, which a real system keeps
    // current as flushes/merges happen — so recovery sees the component set
    // as of the crash (§2.2: "examines all valid disk components").
    catalog = ds.Checkpoint();
    for (const auto& r : ds.wal()->ReadFrom(kInvalidLsn)) {
      durable_wal.Append(r);
    }
  }
  RecoveryStats stats;
  auto recovered =
      Dataset::Recover(&env, &durable_wal, catalog, Opts(GetParam()), &stats);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  Dataset* ds = recovered->get();
  ASSERT_EQ(ds->num_records(), model.size());
  TweetRecord got;
  EXPECT_TRUE(ds->GetById(9999, &got).IsNotFound());
  for (uint64_t id = 1; id <= kKeySpace; id += 11) {
    const Status st = ds->GetById(id, &got);
    if (model.count(id)) {
      ASSERT_TRUE(st.ok()) << id;
      EXPECT_EQ(got.user_id, model[id].user_id);
    } else {
      EXPECT_TRUE(st.IsNotFound()) << id;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, ChaosTest,
    ::testing::Values(MaintenanceStrategy::kEager,
                      MaintenanceStrategy::kValidation,
                      MaintenanceStrategy::kMutableBitmap,
                      MaintenanceStrategy::kDeletedKeyBtree),
    [](const ::testing::TestParamInfo<MaintenanceStrategy>& info) {
      std::string name = StrategyName(info.param);
      for (auto& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace auxlsm
