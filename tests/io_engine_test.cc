// Multi-queue simulated I/O engine (src/io/): legacy parity, determinism,
// overlap accounting, queue affinity, and the end-to-end property that
// device concurrency shortens *simulated* maintenance time.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "core/dataset.h"
#include "env/env.h"
#include "io/io_engine.h"
#include "workload/tweet_gen.h"

namespace auxlsm {
namespace {

// A recorded device access: the op stream both the legacy DiskModel and the
// IoEngine replay in the parity tests.
struct TraceOp {
  enum Kind { kRead, kWrite, kHit, kMiss, kForget } kind;
  uint32_t file = 0;
  uint32_t page = 0;
  uint64_t n = 1;
  uint32_t queue = 0;  // affinity used by the multi-queue tests
};

std::vector<TraceOp> RecordedTrace() {
  // Deterministic pseudo-random mix of sequential runs, file switches,
  // forward skips, writes, cache events, and file retirement.
  std::vector<TraceOp> trace;
  uint64_t s = 42;
  auto next = [&s]() {
    s = s * 6364136223846793005ULL + 1442695040888963407ULL;
    return uint32_t(s >> 33);
  };
  uint32_t page_cursor[4] = {0, 0, 0, 0};
  for (int i = 0; i < 400; i++) {
    const uint32_t file = next() % 4;
    const uint32_t kind = next() % 10;
    TraceOp op;
    op.file = file + 1;
    op.queue = file % 2;
    if (kind < 6) {
      op.kind = TraceOp::kRead;
      // Mostly advance sequentially, sometimes skip or restart.
      const uint32_t jump = next() % 8;
      if (jump == 0) {
        page_cursor[file] = next() % 100;
      } else if (jump == 1) {
        page_cursor[file] += next() % 20;
      } else {
        page_cursor[file]++;
      }
      op.page = page_cursor[file];
    } else if (kind < 8) {
      op.kind = TraceOp::kWrite;
      op.n = 1 + next() % 16;
    } else if (kind == 8) {
      op.kind = next() % 2 == 0 ? TraceOp::kHit : TraceOp::kMiss;
    } else {
      op.kind = TraceOp::kForget;
    }
    trace.push_back(op);
  }
  return trace;
}

void ApplyToModel(DiskModel& m, const TraceOp& op) {
  switch (op.kind) {
    case TraceOp::kRead: m.ChargeRead(op.file, op.page); break;
    case TraceOp::kWrite: m.ChargeWrite(op.n); break;
    case TraceOp::kHit: m.OnCacheHit(); break;
    case TraceOp::kMiss: m.OnCacheMiss(); break;
    case TraceOp::kForget: m.ForgetFile(op.file); break;
  }
}

void ApplyToEngine(IoEngine& e, const TraceOp& op, bool use_affinity) {
  IoRequest req;
  req.queue = use_affinity ? int32_t(op.queue) : IoRequest::kAnyQueue;
  switch (op.kind) {
    case TraceOp::kRead:
      req.op = IoRequest::Op::kRead;
      req.file_id = op.file;
      req.page_no = op.page;
      e.Submit(req);
      break;
    case TraceOp::kWrite:
      req.op = IoRequest::Op::kWrite;
      req.n_pages = op.n;
      e.Submit(req);
      break;
    case TraceOp::kHit: e.OnCacheHit(); break;
    case TraceOp::kMiss: e.OnCacheMiss(); break;
    case TraceOp::kForget: e.ForgetFile(op.file); break;
  }
}

void ExpectStatsEq(const IoStats& a, const IoStats& b) {
  EXPECT_EQ(a.pages_read, b.pages_read);
  EXPECT_EQ(a.random_reads, b.random_reads);
  EXPECT_EQ(a.sequential_reads, b.sequential_reads);
  EXPECT_EQ(a.pages_written, b.pages_written);
  EXPECT_EQ(a.cache_hits, b.cache_hits);
  EXPECT_EQ(a.cache_misses, b.cache_misses);
  EXPECT_DOUBLE_EQ(a.simulated_us, b.simulated_us);
}

TEST(IoEngineTest, SingleQueueBitForBitParityWithLegacyDiskModel) {
  // The same recorded trace through the legacy DiskModel and through a
  // 1-queue engine must produce identical accounting, double for double —
  // this is what keeps every existing figure's simulated numbers unchanged.
  DiskModel legacy(DiskProfile::Hdd());
  IoEngine engine(DeviceProfile::FromDisk(DiskProfile::Hdd(), 1));
  ASSERT_EQ(engine.num_queues(), 1u);
  for (const TraceOp& op : RecordedTrace()) {
    ApplyToModel(legacy, op);
    ApplyToEngine(engine, op, /*use_affinity=*/false);
  }
  const IoStats a = legacy.stats();
  const IoStats b = engine.stats();
  ExpectStatsEq(a, b);
  // On one queue the critical path IS the total device work.
  EXPECT_DOUBLE_EQ(b.critical_path_us, b.simulated_us);
  EXPECT_DOUBLE_EQ(a.critical_path_us, b.critical_path_us);
}

TEST(IoEngineTest, MultiQueueDeterministicUnderSameAffinity) {
  // Same trace + same queue affinity => same per-queue clocks and the same
  // aggregate simulated time, run after run.
  const auto trace = RecordedTrace();
  IoEngine a(DeviceProfile::FromDisk(DiskProfile::Hdd(), 2));
  IoEngine b(DeviceProfile::FromDisk(DiskProfile::Hdd(), 2));
  for (const TraceOp& op : trace) ApplyToEngine(a, op, true);
  for (const TraceOp& op : trace) ApplyToEngine(b, op, true);
  ExpectStatsEq(a.stats(), b.stats());
  EXPECT_DOUBLE_EQ(a.stats().critical_path_us, b.stats().critical_path_us);
  for (uint32_t q = 0; q < 2; q++) {
    ExpectStatsEq(a.queue_stats(q), b.queue_stats(q));
  }
}

TEST(IoEngineTest, MultiQueueDeterministicAcrossThreadInterleavings) {
  // Queues are independent: driving each queue's subtrace from its own
  // thread (arbitrary cross-queue interleaving) gives the same per-queue
  // accounting as a serial replay.
  const auto trace = RecordedTrace();
  IoEngine serial(DeviceProfile::FromDisk(DiskProfile::Ssd(), 2));
  for (const TraceOp& op : trace) ApplyToEngine(serial, op, true);

  IoEngine threaded(DeviceProfile::FromDisk(DiskProfile::Ssd(), 2));
  std::vector<std::thread> workers;
  for (uint32_t q = 0; q < 2; q++) {
    workers.emplace_back([&threaded, &trace, q]() {
      for (const TraceOp& op : trace) {
        // The trace routes every access of a file (reads and forgets alike)
        // to one fixed queue, so although ForgetFile sweeps all queues, only
        // the owning queue can ever hold a head on that file — cross-queue
        // sweeps are no-ops and per-queue sequences stay deterministic.
        if (op.queue != q) continue;
        ApplyToEngine(threaded, op, true);
      }
    });
  }
  for (auto& w : workers) w.join();
  for (uint32_t q = 0; q < 2; q++) {
    ExpectStatsEq(serial.queue_stats(q), threaded.queue_stats(q));
  }
}

TEST(IoEngineTest, DisjointFileStreamsOverlapAcrossQueues) {
  // Two sequential streams over disjoint files: interleaved on one queue
  // they destroy each other's head locality and serialize; on two queues
  // they are both sequential and overlap, so the completed simulated time
  // (critical path) drops strictly below the single-queue total.
  const int kPages = 200;
  IoEngine one(DeviceProfile::FromDisk(DiskProfile::Hdd(), 1));
  IoEngine two(DeviceProfile::FromDisk(DiskProfile::Hdd(), 2));
  for (int p = 0; p < kPages; p++) {
    for (uint32_t f = 1; f <= 2; f++) {
      one.ChargeRead(f, uint32_t(p));
      IoRequest r = IoRequest::Read(f, uint32_t(p));
      r.queue = int32_t(f - 1);
      two.Submit(r);
    }
  }
  const IoStats s1 = one.stats();
  const IoStats s2 = two.stats();
  EXPECT_EQ(s1.pages_read, s2.pages_read);
  EXPECT_LT(s2.critical_path_us, s1.simulated_us);
  // Each per-queue stream is fully sequential after its first seek.
  EXPECT_EQ(s2.random_reads, 2u);
  EXPECT_EQ(s2.sequential_reads, uint64_t(2 * kPages - 2));
}

TEST(IoEngineTest, TicketsCarryPerQueueCompletionTimes) {
  IoEngine e(DeviceProfile::FromDisk(DiskProfile::Hdd(), 2));
  IoRequest r0 = IoRequest::Write(4);
  r0.queue = 0;
  IoRequest r1 = IoRequest::Write(2);
  r1.queue = 1;
  const IoTicket t0 = e.Submit(r0);
  const IoTicket t1 = e.Submit(r1);
  EXPECT_EQ(t0.queue, 0u);
  EXPECT_EQ(t1.queue, 1u);
  const double w = DiskProfile::Hdd().write_transfer_us;
  EXPECT_DOUBLE_EQ(e.Wait(t0), 4 * w);
  EXPECT_DOUBLE_EQ(e.Wait(t1), 2 * w);  // queue 1's own clock, not queue 0's
  // A second submission on queue 0 completes after the first.
  const IoTicket t2 = e.Submit(r0);
  EXPECT_GT(e.Wait(t2), e.Wait(t0));
  EXPECT_DOUBLE_EQ(e.stats().critical_path_us, e.Wait(t2));
}

TEST(IoEngineTest, QueueScopeBindsAndNests) {
  IoEngine e(DeviceProfile::FromDisk(DiskProfile::Null(), 4));
  EXPECT_EQ(e.BoundQueue(), 0u);
  {
    IoQueueScope outer(&e, 2);
    EXPECT_EQ(e.BoundQueue(), 2u);
    {
      IoQueueScope inner(&e, 3);
      EXPECT_EQ(e.BoundQueue(), 3u);
      e.ChargeWrite(1);  // lands on queue 3
    }
    EXPECT_EQ(e.BoundQueue(), 2u);
    e.ChargeWrite(1);  // lands on queue 2
    // Queue ids wrap modulo the queue count; a null engine is a no-op.
    IoQueueScope wrapped(&e, 6);
    EXPECT_EQ(e.BoundQueue(), 2u);
    IoQueueScope nothing(nullptr, 1);
  }
  EXPECT_EQ(e.BoundQueue(), 0u);
  EXPECT_EQ(e.queue_stats(3).pages_written, 1u);
  EXPECT_EQ(e.queue_stats(2).pages_written, 1u);
  EXPECT_EQ(e.queue_stats(0).pages_written, 0u);
}

TEST(IoEngineTest, ForgetFileSweepsEveryQueueHead) {
  IoEngine e(DeviceProfile::FromDisk(DiskProfile::Hdd(), 3));
  for (uint32_t q = 0; q < 3; q++) {
    IoRequest r = IoRequest::Read(7, q);
    r.queue = int32_t(q);
    e.Submit(r);
  }
  IoRequest other = IoRequest::Read(9, 0);
  other.queue = 1;
  e.Submit(other);
  auto heads = e.HeadFiles();
  EXPECT_EQ(heads.size(), 2u);  // file 7 (queues 0, 2) and file 9 (queue 1)
  e.ForgetFile(7);
  heads = e.HeadFiles();
  ASSERT_EQ(heads.size(), 1u);
  EXPECT_EQ(heads[0], 9u);
  e.ForgetFile(9);
  EXPECT_TRUE(e.HeadFiles().empty());
}

TEST(WalGroupCommitTest, PerCommitLatencyIsReportedInModeledTime) {
  auto commit_record = []() {
    LogRecord r;
    r.type = LogRecordType::kCommit;
    return r;
  };
  // Group commit off: AppendCommit is plain Append — no syncs, no latency.
  Wal serial;
  serial.AppendCommit(commit_record());
  EXPECT_EQ(serial.wal_stats().syncs, 0u);
  EXPECT_DOUBLE_EQ(serial.wal_stats().commit_latency_us_total, 0.0);

  // Group commit on: every commit's modeled latency spans its append to its
  // batch's sync completion on the log device's clock.
  Wal grouped;
  grouped.set_group_commit(true);
  for (int i = 0; i < 5; i++) grouped.AppendCommit(commit_record());
  const WalStats ws = grouped.wal_stats();
  EXPECT_EQ(ws.commits, 5u);
  EXPECT_EQ(ws.syncs, 5u);  // single-threaded: every commit leads its sync
  EXPECT_GT(ws.commit_latency_us_total, 0.0);
  EXPECT_GE(ws.commit_latency_us_max,
            ws.commit_latency_us_total / double(ws.commits));
}

TEST(IoEngineDatasetTest, NvmeQueuesShortenSimulatedMaintenanceTime) {
  // End-to-end acceptance property (the fig15-mq section): the same upsert
  // workload on the same NVMe cost parameters, once with 1 queue and once
  // with 4 queues + 4 maintenance threads (partitioned merges). The 4-queue
  // run's completed simulated time — the device's critical path — must land
  // strictly below the single-queue simulated total.
  auto run = [](uint32_t queues) {
    EnvOptions eo;
    eo.page_size = 4096;
    eo.cache_pages = (2u << 20) / eo.page_size;  // 2 MiB: merges re-read
    eo.cache_shards = queues > 1 ? 8 : 1;
    eo.device_profile = DeviceProfile::Nvme(queues);
    Env env(eo);
    DatasetOptions o;
    o.strategy = MaintenanceStrategy::kValidation;
    o.mem_budget_bytes = 512u << 10;
    o.max_mergeable_bytes = 8u << 20;
    o.maintenance_threads = 4;
    o.merge_partition_min_bytes = 512u << 10;
    Dataset ds(&env, o);
    TweetGenerator gen;
    Random rng(11);
    for (int i = 0; i < 12000; i++) {
      if (rng.Bernoulli(0.1) && i > 100) {
        EXPECT_TRUE(ds.Upsert(gen.Update(rng.Uniform(gen.generated()))).ok());
      } else {
        EXPECT_TRUE(ds.Upsert(gen.Next()).ok());
      }
    }
    return env.stats();
  };
  const IoStats q1 = run(1);
  const IoStats q4 = run(4);
  EXPECT_DOUBLE_EQ(q1.critical_path_us, q1.simulated_us);
  EXPECT_LT(q4.critical_path_us, q1.simulated_us);
}

}  // namespace
}  // namespace auxlsm
