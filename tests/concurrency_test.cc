// Mutable-bitmap concurrency control (§5.3): the Lock and Side-file methods
// must preserve correctness while writers delete/upsert keys during a merge;
// the None baseline must at least keep the structure intact when writers are
// quiescent.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "core/dataset.h"
#include "core/mutable_bitmap_build.h"

namespace auxlsm {
namespace {

EnvOptions TestEnv() {
  EnvOptions o;
  o.page_size = 1024;
  o.cache_pages = 1 << 16;
  o.disk_profile = DiskProfile::Null();
  return o;
}

DatasetOptions MbOptions() {
  DatasetOptions o;
  o.strategy = MaintenanceStrategy::kMutableBitmap;
  o.mem_budget_bytes = 1 << 30;  // no automatic flushes during merges
  return o;
}

TweetRecord MakeTweet(uint64_t id, uint64_t user, uint64_t time) {
  TweetRecord r;
  r.id = id;
  r.user_id = user;
  r.location = "WA";
  r.creation_time = time;
  r.message = std::string(30, 'c');
  return r;
}

// Builds `components` disk components of `per_component` records each.
void LoadComponents(Dataset* ds, int components, uint64_t per_component) {
  uint64_t id = 1;
  for (int c = 0; c < components; c++) {
    for (uint64_t i = 0; i < per_component; i++, id++) {
      ASSERT_TRUE(ds->Upsert(MakeTweet(id, 1, id)).ok());
    }
    ASSERT_TRUE(ds->FlushAll().ok());
  }
}

class CcMethodTest : public ::testing::TestWithParam<BuildCcMethod> {};

TEST_P(CcMethodTest, QuiescentMergeKeepsAllRecords) {
  Env env(TestEnv());
  Dataset ds(&env, MbOptions());
  LoadComponents(&ds, 4, 100);
  ASSERT_EQ(ds.primary()->NumDiskComponents(), 4u);

  ConcurrentMergeStats stats;
  ASSERT_TRUE(ConcurrentMerge(&ds, 0, 4, GetParam(), &stats).ok());
  EXPECT_EQ(ds.primary()->NumDiskComponents(), 1u);
  EXPECT_EQ(ds.primary_key_index()->NumDiskComponents(), 1u);
  EXPECT_EQ(stats.output_entries, 400u);
  EXPECT_EQ(ds.num_records(), 400u);
  // Primary and pk index share the new component's bitmap.
  EXPECT_EQ(ds.primary()->Components()[0]->bitmap().get(),
            ds.primary_key_index()->Components()[0]->bitmap().get());
}

TEST_P(CcMethodTest, PreMergeDeletionsExcluded) {
  Env env(TestEnv());
  Dataset ds(&env, MbOptions());
  LoadComponents(&ds, 2, 100);
  // Delete 20 records before the merge: their bitmap bits are set.
  for (uint64_t id = 1; id <= 20; id++) {
    ASSERT_TRUE(ds.Delete(id).ok());
  }
  ConcurrentMergeStats stats;
  ASSERT_TRUE(ConcurrentMerge(&ds, 0, 2, GetParam(), &stats).ok());
  // Anti-matter from the memtable is still there, but the merged component
  // must not contain the 20 deleted records.
  EXPECT_EQ(stats.output_entries, 180u);
  EXPECT_EQ(ds.num_records(), 180u);
}

INSTANTIATE_TEST_SUITE_P(Methods, CcMethodTest,
                         ::testing::Values(BuildCcMethod::kNone,
                                           BuildCcMethod::kLock,
                                           BuildCcMethod::kSideFile),
                         [](const auto& info) {
                           switch (info.param) {
                             case BuildCcMethod::kNone: return "none";
                             case BuildCcMethod::kLock: return "lock";
                             case BuildCcMethod::kSideFile: return "sidefile";
                           }
                           return "?";
                         });

class ConcurrentWriterTest : public ::testing::TestWithParam<BuildCcMethod> {};

TEST_P(ConcurrentWriterTest, DeletesDuringMergeAreNotLost) {
  Env env(TestEnv());
  Dataset ds(&env, MbOptions());
  const uint64_t per_component = 400;
  LoadComponents(&ds, 4, per_component);
  const uint64_t total = 4 * per_component;

  std::atomic<bool> start{false}, stop{false};
  std::atomic<uint64_t> deleted{0};
  std::thread writer([&]() {
    while (!start.load()) std::this_thread::yield();
    // Delete every 8th record while the merge runs.
    for (uint64_t id = 1; id <= total; id += 8) {
      if (ds.Delete(id).ok()) deleted.fetch_add(1);
      if (stop.load()) { /* keep deleting; merge may already be done */ }
    }
  });

  ConcurrentMergeStats stats;
  start.store(true);
  ASSERT_TRUE(ConcurrentMerge(&ds, 0, 4, GetParam(), &stats).ok());
  stop.store(true);
  writer.join();

  EXPECT_EQ(deleted.load(), total / 8);
  // Every delete must be effective: records are gone regardless of whether
  // the delete raced the merge (this is the §5.3 correctness property; the
  // anti-matter entries in the memtable cover whatever the bitmaps miss only
  // for kLock/kSideFile — and for the in-memory path in all methods).
  for (uint64_t id = 1; id <= total; id += 64) {
    TweetRecord r;
    EXPECT_TRUE(ds.GetById(id, &r).IsNotFound()) << "id " << id;
  }
  EXPECT_EQ(ds.num_records(), total - deleted.load());
}

INSTANTIATE_TEST_SUITE_P(Methods, ConcurrentWriterTest,
                         ::testing::Values(BuildCcMethod::kLock,
                                           BuildCcMethod::kSideFile),
                         [](const auto& info) {
                           return info.param == BuildCcMethod::kLock
                                      ? "lock"
                                      : "sidefile";
                         });

TEST(SideFileTest, RollbackWhileSideFileOpenAppendsAntimatter) {
  Env env(TestEnv());
  Dataset ds(&env, MbOptions());
  LoadComponents(&ds, 2, 50);

  // Start a transaction that deletes, then aborts, while a side-file build
  // link is attached manually.
  auto comps = ds.primary()->Components();
  auto kcomps = ds.primary_key_index()->Components();
  uint64_t capacity = 0;
  for (const auto& c : comps) capacity += c->num_entries();
  auto link = std::make_shared<BuildLink>(BuildCcMethod::kSideFile, capacity);
  for (const auto& c : comps) c->set_build_link(link);
  for (const auto& c : kcomps) c->set_build_link(link);

  auto txn = ds.Begin();
  ASSERT_TRUE(ds.DeleteTxn(5, txn.get()).ok());
  {
    MutexLock l(link->mu);
    ASSERT_EQ(link->side_file.size(), 1u);
    EXPECT_FALSE(link->side_file[0].second);  // a delete entry
  }
  ASSERT_TRUE(txn->Abort().ok());
  {
    MutexLock l(link->mu);
    ASSERT_EQ(link->side_file.size(), 2u);
    EXPECT_TRUE(link->side_file[1].second);  // the rollback anti-matter
  }
  for (const auto& c : comps) c->set_build_link(nullptr);
  for (const auto& c : kcomps) c->set_build_link(nullptr);
  TweetRecord r;
  EXPECT_TRUE(ds.GetById(5, &r).ok());  // delete rolled back
}

TEST(LockMethodTest, WriterMarksEmittedKeyInOverlay) {
  BuildLink link(BuildCcMethod::kLock, 10);
  link.emitted_keys.push_back("a");
  link.emitted_keys.push_back("c");
  link.emitted_count.store(2);
  ApplyDeleteToBuild(&link, "c", nullptr);
  EXPECT_TRUE(link.overlay.Test(1));
  ApplyDeleteToBuild(&link, "b", nullptr);  // not emitted: no-op
  EXPECT_EQ(link.overlay.CountSet(), 1u);
  ApplyDeleteToBuild(&link, "z", nullptr);  // beyond ScannedKey: no-op
  EXPECT_EQ(link.overlay.CountSet(), 1u);
}

TEST(ConcurrencyStressTest, ParallelAutoCommitUpserts) {
  Env env(TestEnv());
  DatasetOptions o = MbOptions();
  o.mem_budget_bytes = 256 << 10;
  Dataset ds(&env, o);
  // Seed records, then hammer upserts from multiple threads on disjoint and
  // overlapping key ranges.
  for (uint64_t i = 1; i <= 200; i++) {
    ASSERT_TRUE(ds.Upsert(MakeTweet(i, 1, i)).ok());
  }
  ASSERT_TRUE(ds.FlushAll().ok());
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < 4; t++) {
    threads.emplace_back([&ds, t, &failures]() {
      for (uint64_t i = 1; i <= 200; i++) {
        if (!ds.Upsert(MakeTweet(i, 10 + t, 1000 + i)).ok()) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(ds.num_records(), 200u);
  // Each record's user_id ends up as one of the four writers' values.
  TweetRecord r;
  ASSERT_TRUE(ds.GetById(100, &r).ok());
  EXPECT_GE(r.user_id, 10u);
  EXPECT_LE(r.user_id, 13u);
}

}  // namespace
}  // namespace auxlsm
