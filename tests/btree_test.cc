#include <gtest/gtest.h>

#include <map>

#include "btree/btree.h"
#include "btree/btree_builder.h"
#include "btree/btree_cursor.h"
#include "common/random.h"
#include "format/key_codec.h"

namespace auxlsm {
namespace {

EnvOptions TestEnv() {
  EnvOptions o;
  o.page_size = 512;
  o.cache_pages = 1 << 16;
  o.disk_profile = DiskProfile::Null();
  return o;
}

// Builds a tree of n entries with keys EncodeU64(i * stride) and values
// "v<i>".
BtreeMeta BuildTree(Env* env, uint64_t n, uint64_t stride = 1,
                    uint64_t ts_base = 100) {
  BtreeBuilder b(env);
  for (uint64_t i = 0; i < n; i++) {
    EXPECT_TRUE(b.Add(EncodeU64(i * stride), "v" + std::to_string(i),
                      ts_base + i, false)
                    .ok());
  }
  BtreeMeta meta;
  EXPECT_TRUE(b.Finish(&meta).ok());
  return meta;
}

TEST(BtreeBuilderTest, EmptyTree) {
  Env env(TestEnv());
  BtreeBuilder b(&env);
  BtreeMeta meta;
  ASSERT_TRUE(b.Finish(&meta).ok());
  EXPECT_EQ(meta.num_entries, 0u);
  Btree tree(&env, meta);
  LeafEntry e;
  std::string back;
  EXPECT_TRUE(tree.Get(EncodeU64(1), &e, &back).IsNotFound());
  auto it = tree.NewIterator();
  ASSERT_TRUE(it.SeekToFirst().ok());
  EXPECT_FALSE(it.Valid());
}

TEST(BtreeBuilderTest, RejectsOutOfOrderKeys) {
  Env env(TestEnv());
  BtreeBuilder b(&env);
  ASSERT_TRUE(b.Add(EncodeU64(5), "a", 1, false).ok());
  EXPECT_TRUE(b.Add(EncodeU64(3), "b", 2, false).IsInvalidArgument());
}

TEST(BtreeBuilderTest, MetaBounds) {
  Env env(TestEnv());
  const BtreeMeta meta = BuildTree(&env, 1000);
  EXPECT_EQ(meta.num_entries, 1000u);
  EXPECT_EQ(meta.min_key, EncodeU64(0));
  EXPECT_EQ(meta.max_key, EncodeU64(999));
  EXPECT_GT(meta.height, 1);
  EXPECT_GT(meta.num_leaf_pages, 1u);
  EXPECT_EQ(meta.first_leaf_page, 0u);
}

TEST(BtreeTest, GetEveryKey) {
  Env env(TestEnv());
  const BtreeMeta meta = BuildTree(&env, 5000, /*stride=*/3);
  Btree tree(&env, meta);
  for (uint64_t i = 0; i < 5000; i += 97) {
    LeafEntry e;
    std::string back;
    ASSERT_TRUE(tree.Get(EncodeU64(i * 3), &e, &back).ok()) << i;
    EXPECT_EQ(e.value.ToString(), "v" + std::to_string(i));
    EXPECT_EQ(e.ts, 100 + i);
  }
}

TEST(BtreeTest, GetMissesBetweenKeys) {
  Env env(TestEnv());
  const BtreeMeta meta = BuildTree(&env, 1000, /*stride=*/2);
  Btree tree(&env, meta);
  LeafEntry e;
  std::string back;
  EXPECT_TRUE(tree.Get(EncodeU64(1), &e, &back).IsNotFound());
  EXPECT_TRUE(tree.Get(EncodeU64(999), &e, &back).IsNotFound());
  EXPECT_TRUE(tree.Get(EncodeU64(5000), &e, &back).IsNotFound());
}

TEST(BtreeTest, OrdinalsAreDense) {
  Env env(TestEnv());
  const BtreeMeta meta = BuildTree(&env, 2000);
  Btree tree(&env, meta);
  for (uint64_t i : {0u, 1u, 777u, 1999u}) {
    LeafEntry e;
    std::string back;
    uint64_t ordinal = 0;
    ASSERT_TRUE(
        tree.GetWithOrdinal(EncodeU64(i), &e, &back, &ordinal).ok());
    EXPECT_EQ(ordinal, i);
  }
}

TEST(BtreeTest, AntimatterFlagRoundTrip) {
  Env env(TestEnv());
  BtreeBuilder b(&env);
  ASSERT_TRUE(b.Add(EncodeU64(1), "", 5, true).ok());
  ASSERT_TRUE(b.Add(EncodeU64(2), "alive", 6, false).ok());
  BtreeMeta meta;
  ASSERT_TRUE(b.Finish(&meta).ok());
  Btree tree(&env, meta);
  LeafEntry e;
  std::string back;
  ASSERT_TRUE(tree.Get(EncodeU64(1), &e, &back).ok());
  EXPECT_TRUE(e.antimatter);
  ASSERT_TRUE(tree.Get(EncodeU64(2), &e, &back).ok());
  EXPECT_FALSE(e.antimatter);
}

TEST(BtreeIteratorTest, FullScanInOrder) {
  Env env(TestEnv());
  const BtreeMeta meta = BuildTree(&env, 3000);
  Btree tree(&env, meta);
  auto it = tree.NewIterator(/*readahead=*/8);
  ASSERT_TRUE(it.SeekToFirst().ok());
  uint64_t count = 0;
  std::string prev;
  while (it.Valid()) {
    if (count > 0) EXPECT_LT(prev, it.key().ToString());
    prev = it.key().ToString();
    EXPECT_EQ(it.ordinal(), count);
    count++;
    ASSERT_TRUE(it.Next().ok());
  }
  EXPECT_EQ(count, 3000u);
}

TEST(BtreeIteratorTest, SeekLandsOnLowerBound) {
  Env env(TestEnv());
  const BtreeMeta meta = BuildTree(&env, 1000, /*stride=*/10);
  Btree tree(&env, meta);
  auto it = tree.NewIterator();
  ASSERT_TRUE(it.Seek(EncodeU64(95)).ok());  // between 90 and 100
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(DecodeU64(it.key()), 100u);
  ASSERT_TRUE(it.Seek(EncodeU64(0)).ok());
  EXPECT_EQ(DecodeU64(it.key()), 0u);
  ASSERT_TRUE(it.Seek(EncodeU64(99999)).ok());
  EXPECT_FALSE(it.Valid());
}

TEST(BtreeIteratorTest, SeekExactBoundaryOfLeaf) {
  Env env(TestEnv());
  const BtreeMeta meta = BuildTree(&env, 5000);
  Btree tree(&env, meta);
  auto it = tree.NewIterator();
  // Scan to find a leaf boundary, then Seek to it.
  ASSERT_TRUE(it.Seek(EncodeU64(4999)).ok());
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(DecodeU64(it.key()), 4999u);
  ASSERT_TRUE(it.Next().ok());
  EXPECT_FALSE(it.Valid());
}

class StatefulCursorTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StatefulCursorTest, AscendingProbesMatchPlainGet) {
  Env env(TestEnv());
  const uint64_t n = GetParam();
  const BtreeMeta meta = BuildTree(&env, n, /*stride=*/2);
  Btree tree(&env, meta);
  StatefulBtreeCursor cursor(&tree);
  // Probe both present and absent keys in ascending order.
  for (uint64_t k = 0; k < 2 * n; k += 3) {
    LeafEntry e;
    std::string back;
    bool found = false;
    ASSERT_TRUE(cursor.SeekExact(EncodeU64(k), &e, &back, &found).ok());
    const bool expected = (k % 2 == 0) && (k / 2 < n);
    EXPECT_EQ(found, expected) << "key " << k;
    if (found) {
      EXPECT_EQ(e.value.ToString(), "v" + std::to_string(k / 2));
    }
  }
}

TEST_P(StatefulCursorTest, RandomProbesRemainCorrect) {
  Env env(TestEnv());
  const uint64_t n = GetParam();
  const BtreeMeta meta = BuildTree(&env, n, /*stride=*/2);
  Btree tree(&env, meta);
  StatefulBtreeCursor cursor(&tree);
  Random rng(11);
  for (int i = 0; i < 500; i++) {
    const uint64_t k = rng.Uniform(2 * n + 10);
    LeafEntry e;
    std::string back;
    bool found = false;
    ASSERT_TRUE(cursor.SeekExact(EncodeU64(k), &e, &back, &found).ok());
    const bool expected = (k % 2 == 0) && (k / 2 < n);
    EXPECT_EQ(found, expected) << "key " << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, StatefulCursorTest,
                         ::testing::Values(10, 500, 5000, 20000));

TEST(StatefulCursorTest, OrdinalMatchesGet) {
  Env env(TestEnv());
  const BtreeMeta meta = BuildTree(&env, 1000);
  Btree tree(&env, meta);
  StatefulBtreeCursor cursor(&tree);
  for (uint64_t k : {0u, 500u, 999u}) {
    LeafEntry e;
    std::string back;
    bool found = false;
    uint64_t ordinal = 0;
    ASSERT_TRUE(cursor
                    .SeekExactWithOrdinal(EncodeU64(k), &e, &back, &found,
                                          &ordinal)
                    .ok());
    ASSERT_TRUE(found);
    EXPECT_EQ(ordinal, k);
  }
}

TEST(BtreeIoTest, ScanReadsLeavesSequentially) {
  EnvOptions o = TestEnv();
  o.cache_pages = 0;  // observe raw I/O
  o.disk_profile = DiskProfile::Hdd();
  Env env(o);
  const BtreeMeta meta = BuildTree(&env, 5000);
  Btree tree(&env, meta);
  const IoStats before = env.stats();
  auto it = tree.NewIterator();
  ASSERT_TRUE(it.SeekToFirst().ok());
  while (it.Valid()) ASSERT_TRUE(it.Next().ok());
  const IoStats delta = env.stats() - before;
  // Leaves are contiguous from page 0: all but the first read sequential.
  EXPECT_EQ(delta.random_reads, 1u);
  EXPECT_EQ(delta.sequential_reads, delta.pages_read - 1);
}

TEST(BtreeTest, LargeValuesSpanPages) {
  Env env(TestEnv());
  BtreeBuilder b(&env);
  // Values close to page size force one entry per leaf.
  for (uint64_t i = 0; i < 50; i++) {
    ASSERT_TRUE(b.Add(EncodeU64(i), std::string(300, 'x'), i, false).ok());
  }
  BtreeMeta meta;
  ASSERT_TRUE(b.Finish(&meta).ok());
  Btree tree(&env, meta);
  LeafEntry e;
  std::string back;
  ASSERT_TRUE(tree.Get(EncodeU64(25), &e, &back).ok());
  EXPECT_EQ(e.value.size(), 300u);
}

TEST(BtreeTest, EntryLargerThanPageFails) {
  Env env(TestEnv());
  BtreeBuilder b(&env);
  EXPECT_TRUE(
      b.Add(EncodeU64(1), std::string(4096, 'x'), 1, false).IsInvalidArgument());
}

}  // namespace
}  // namespace auxlsm
