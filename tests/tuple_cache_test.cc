// Interval tuple cache (PR 7): chain-link unit tests on the TupleCache
// itself, cache-on vs cache-off parity across every maintenance strategy
// (including precise invalidation under writes, deletes, and component
// turnover), failpoint degradation (a fired cache fault produces misses,
// never stale reads), and a multi-writer stress that checks per-key version
// monotonicity while flushes and merges turn components over underneath.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <set>
#include <thread>
#include <vector>

#include "cache/tuple_cache.h"
#include "common/random.h"
#include "core/dataset.h"
#include "fault/fault_injector.h"
#include "format/key_codec.h"

namespace auxlsm {
namespace {

// ---------------------------------------------------------------------------
// TupleCache unit tests
// ---------------------------------------------------------------------------

CachedTuple Tuple(uint64_t pk) {
  return CachedTuple{EncodeU64(pk), "v" + std::to_string(pk)};
}

TEST(TupleCacheUnitTest, PointHitsProvenAbsenceAndEpochGuard) {
  TupleCache cache(1 << 20, 1);
  bool found = true;
  std::string value;
  EXPECT_FALSE(cache.LookupPoint(7, &found, &value));

  uint64_t epoch = cache.SpaceEpoch(TupleCache::kPointSpace);
  cache.InsertPoint(7, true, EncodeU64(7), "rec7", epoch);
  cache.InsertPoint(8, false, EncodeU64(8), Slice(), epoch);

  ASSERT_TRUE(cache.LookupPoint(7, &found, &value));
  EXPECT_TRUE(found);
  EXPECT_EQ(value, "rec7");
  ASSERT_TRUE(cache.LookupPoint(8, &found, &value));
  EXPECT_FALSE(found);  // proven absent, no tree descent needed

  // A write between epoch capture and insert rejects the insert.
  epoch = cache.SpaceEpoch(TupleCache::kPointSpace);
  cache.InvalidatePk(EncodeU64(9));
  cache.InsertPoint(9, true, EncodeU64(9), "stale", epoch);
  EXPECT_FALSE(cache.LookupPoint(9, &found, &value));
  EXPECT_EQ(cache.stats().stale_drops, 1u);
}

TEST(TupleCacheUnitTest, RangeChainServesGapsAndSubranges) {
  TupleCache cache(1 << 20, 2);
  const uint32_t space = 1;
  const uint64_t epoch = cache.SpaceEpoch(space);
  std::vector<TupleCache::KeyGroup> groups;
  groups.push_back({12, {Tuple(100), Tuple(101)}});
  groups.push_back({15, {Tuple(102)}});
  cache.InsertRange(space, 10, 20, std::move(groups), epoch);

  TupleCache::RangeServe serve;
  cache.LookupRange(space, 10, 20, &serve);  // the exact original interval
  EXPECT_TRUE(serve.complete);
  ASSERT_EQ(serve.tuples.size(), 3u);
  EXPECT_EQ(serve.tuples[0].pk, EncodeU64(100));

  cache.LookupRange(space, 13, 14, &serve);  // an interior proven-empty gap
  EXPECT_TRUE(serve.complete);
  EXPECT_TRUE(serve.tuples.empty());

  cache.LookupRange(space, 12, 18, &serve);  // overlapping subrange
  EXPECT_TRUE(serve.complete);
  EXPECT_EQ(serve.tuples.size(), 3u);

  cache.LookupRange(space, 16, 20, &serve);  // tail proven empty by 15's claim
  EXPECT_TRUE(serve.complete);
  EXPECT_TRUE(serve.tuples.empty());

  cache.LookupRange(space, 5, 20, &serve);  // [5, 10) was never proven
  EXPECT_FALSE(serve.complete);
  EXPECT_EQ(serve.next, 5u);
  EXPECT_TRUE(serve.tuples.empty());

  cache.LookupRange(space, 10, 25, &serve);  // chain serves a prefix
  EXPECT_FALSE(serve.complete);
  EXPECT_EQ(serve.tuples.size(), 3u);
  EXPECT_EQ(serve.next, 21u);
}

TEST(TupleCacheUnitTest, EmptyResultAnchorsProvenEmptiness) {
  TupleCache cache(1 << 20, 2);
  cache.InsertRange(1, 30, 40, {}, cache.SpaceEpoch(1));
  TupleCache::RangeServe serve;
  cache.LookupRange(1, 30, 40, &serve);
  EXPECT_TRUE(serve.complete);
  EXPECT_TRUE(serve.tuples.empty());
  cache.LookupRange(1, 33, 39, &serve);
  EXPECT_TRUE(serve.complete);
  cache.LookupRange(1, 33, 41, &serve);  // past the proven interval
  EXPECT_FALSE(serve.complete);
}

TEST(TupleCacheUnitTest, InvalidateKeyCutsTheChain) {
  TupleCache cache(1 << 20, 2);
  std::vector<TupleCache::KeyGroup> groups;
  groups.push_back({12, {Tuple(100)}});
  groups.push_back({15, {Tuple(102)}});
  cache.InsertRange(1, 10, 20, std::move(groups), cache.SpaceEpoch(1));

  cache.InvalidateKey(1, 13);  // a write created a possible result at 13

  TupleCache::RangeServe serve;
  cache.LookupRange(1, 10, 20, &serve);
  EXPECT_FALSE(serve.complete);
  EXPECT_EQ(serve.tuples.size(), 1u);  // key 12 still serves
  EXPECT_EQ(serve.next, 13u);          // the executors own [13, 20]
  // The claims on either side of the cut stayed true.
  cache.LookupRange(1, 10, 12, &serve);
  EXPECT_TRUE(serve.complete);
  cache.LookupRange(1, 14, 20, &serve);
  EXPECT_TRUE(serve.complete);
  EXPECT_EQ(serve.tuples.size(), 1u);
}

TEST(TupleCacheUnitTest, InvalidatePkDropsEveryHoldingEntry) {
  TupleCache cache(1 << 20, 3);
  const uint64_t e0 = cache.SpaceEpoch(0), e1 = cache.SpaceEpoch(1),
                 e2 = cache.SpaceEpoch(2);
  cache.InsertPoint(100, true, EncodeU64(100), "rec", e0);
  cache.InsertRange(1, 10, 20, {{12, {Tuple(100), Tuple(101)}}}, e1);
  cache.InsertRange(2, 50, 60, {{55, {Tuple(100)}}}, e2);

  cache.InvalidatePk(EncodeU64(100));

  bool found = false;
  std::string value;
  EXPECT_FALSE(cache.LookupPoint(100, &found, &value));
  TupleCache::RangeServe serve;
  cache.LookupRange(1, 10, 20, &serve);
  EXPECT_FALSE(serve.complete);  // the entry holding pk 100 is gone
  cache.LookupRange(2, 50, 60, &serve);
  EXPECT_FALSE(serve.complete);
  // Every space's epoch moved: the writer cannot know the old keys.
  EXPECT_NE(cache.SpaceEpoch(0), e0);
  EXPECT_NE(cache.SpaceEpoch(1), e1);
  EXPECT_NE(cache.SpaceEpoch(2), e2);
}

TEST(TupleCacheUnitTest, EvictionBoundsBytesAndOnlyBreaksChains) {
  TupleCache cache(600, 2);  // a handful of entries at most
  for (uint64_t k = 0; k < 40; k++) {
    cache.InsertRange(1, k * 10, k * 10 + 9, {{k * 10 + 5, {Tuple(k)}}},
                      cache.SpaceEpoch(1));
  }
  const TupleCacheStats s = cache.stats();
  EXPECT_GT(s.evictions, 0u);
  EXPECT_LE(s.resident_bytes, 600u);
  // Whatever survived still serves correct (possibly incomplete) results.
  uint64_t complete = 0;
  for (uint64_t k = 0; k < 40; k++) {
    TupleCache::RangeServe serve;
    cache.LookupRange(1, k * 10, k * 10 + 9, &serve);
    if (!serve.complete) continue;
    complete++;
    ASSERT_EQ(serve.tuples.size(), 1u);
    EXPECT_EQ(serve.tuples[0].pk, EncodeU64(k));
  }
  EXPECT_GT(complete, 0u);
  EXPECT_LT(complete, 40u);
  // Evicted tuples left no dangling reverse-map entries behind.
  for (uint64_t k = 0; k < 40; k++) cache.InvalidatePk(EncodeU64(k));
}

TEST(TupleCacheUnitTest, OverlappingEmptyClaimsNeverGoStale) {
  TupleCache cache(1 << 20, 2);
  // Entry 10 claims (10, 40] empty.
  cache.InsertRange(1, 10, 40, {{10, {Tuple(1)}}}, cache.SpaceEpoch(1));
  // An empty result over [20, 60] anchors at 20. Its claim overlaps entry
  // 10's; insertion must clamp entry 10 so no two claims span a later
  // written key non-adjacently.
  cache.InsertRange(1, 20, 60, {}, cache.SpaceEpoch(1));
  // A write lands at 30 — inside both former claims. Cutting only the
  // anchor would leave entry 10 falsely proving (10, 40] empty.
  cache.InvalidateKey(1, 30);

  TupleCache::RangeServe serve;
  cache.LookupRange(1, 15, 35, &serve);
  EXPECT_FALSE(serve.complete);  // 30 may now hold a result
  EXPECT_LE(serve.next, 30u);    // the executors must own the written key
  cache.LookupRange(1, 25, 35, &serve);
  EXPECT_FALSE(serve.complete);
  EXPECT_LE(serve.next, 30u);
}

TEST(TupleCacheUnitTest, EmptyAnchorClampsTheRightNeighborClaim) {
  TupleCache cache(1 << 20, 2);
  // Entry 50 claims [15, 50) empty from the left.
  cache.InsertRange(1, 15, 90, {{50, {Tuple(1)}}}, cache.SpaceEpoch(1));
  // An empty anchor at 20 lands inside that claim; insertion must clamp
  // entry 50's gap_lo past the anchor key, or a later cut below the anchor
  // could stop at the anchor and leave entry 50 claiming the written key.
  cache.InsertRange(1, 20, 22, {}, cache.SpaceEpoch(1));
  cache.InvalidateKey(1, 17);

  TupleCache::RangeServe serve;
  cache.LookupRange(1, 16, 18, &serve);
  EXPECT_FALSE(serve.complete);
  // The surviving claims stayed true: [20, 22] is still proven empty.
  cache.LookupRange(1, 20, 22, &serve);
  EXPECT_TRUE(serve.complete);
  EXPECT_TRUE(serve.tuples.empty());
}

TEST(TupleCacheUnitTest, InvertedIntervalInsertIsRejected) {
  TupleCache cache(1 << 20, 2);
  cache.InsertRange(1, 20, 10, {}, cache.SpaceEpoch(1));
  EXPECT_EQ(cache.stats().inserts, 0u);
  TupleCache::RangeServe serve;
  cache.LookupRange(1, 10, 10, &serve);
  EXPECT_FALSE(serve.complete);
}

// ---------------------------------------------------------------------------
// Dataset integration: cache-on vs cache-off parity
// ---------------------------------------------------------------------------

EnvOptions TestEnv(FaultInjector* fault = nullptr) {
  EnvOptions o;
  o.page_size = 1024;
  o.cache_pages = 1 << 14;
  o.disk_profile = DiskProfile::Null();
  o.fault_injector = fault;
  return o;
}

DatasetOptions Opts(MaintenanceStrategy s, size_t tuple_cache_bytes,
                    FaultInjector* fault = nullptr) {
  DatasetOptions o;
  o.strategy = s;
  o.mem_budget_bytes = 48 << 10;
  o.max_mergeable_bytes = 1 << 20;
  if (s == MaintenanceStrategy::kValidation) o.merge_repair = true;
  o.tuple_cache_bytes = tuple_cache_bytes;
  o.fault_injector = fault;
  return o;
}

TweetRecord MakeTweet(uint64_t id, uint64_t user, uint64_t time) {
  TweetRecord r;
  r.id = id;
  r.user_id = user;
  r.location = "CA";
  r.creation_time = time;
  r.message = std::string(30 + id % 20, 'm');
  return r;
}

/// Flattened result rows of one drained cursor, order included.
struct Rows {
  std::vector<uint64_t> ids, users, times;
  bool operator==(const Rows&) const = default;
};

Rows DrainQuery(Dataset* ds, const ReadQuery& q, CursorStats* stats = nullptr) {
  Rows rows;
  auto cursor_or = ds->NewCursor(q);
  EXPECT_TRUE(cursor_or.ok()) << cursor_or.status().ToString();
  if (!cursor_or.ok()) return rows;
  auto cursor = std::move(cursor_or).value();
  QueryPage page;
  while (!cursor->done()) {
    EXPECT_TRUE(cursor->Next(&page).ok());
    for (const auto& r : page.records) {
      rows.ids.push_back(r.id);
      rows.users.push_back(r.user_id);
      rows.times.push_back(r.creation_time);
    }
  }
  if (stats != nullptr) *stats = cursor->stats();
  return rows;
}

class TupleCacheParityTest
    : public ::testing::TestWithParam<MaintenanceStrategy> {
 protected:
  static constexpr uint64_t kKeys = 400;
  static constexpr uint64_t kUsers = 50;

  void SetUp() override {
    env_off_ = std::make_unique<Env>(TestEnv());
    env_on_ = std::make_unique<Env>(TestEnv());
    off_ = std::make_unique<Dataset>(env_off_.get(),
                                     Opts(GetParam(), 0));
    on_ = std::make_unique<Dataset>(env_on_.get(),
                                    Opts(GetParam(), 4u << 20));
  }

  void UpsertBoth(const TweetRecord& r) {
    ASSERT_TRUE(off_->Upsert(r).ok());
    ASSERT_TRUE(on_->Upsert(r).ok());
  }
  void DeleteBoth(uint64_t id) {
    ASSERT_TRUE(off_->Delete(id).ok());
    ASSERT_TRUE(on_->Delete(id).ok());
  }
  void FlushBoth() {
    ASSERT_TRUE(off_->FlushAll().ok());
    ASSERT_TRUE(on_->FlushAll().ok());
  }

  void Load() {
    Random rng(42);
    for (uint64_t id = 1; id <= kKeys; id++) {
      UpsertBoth(MakeTweet(id, rng.Uniform(kUsers), ++time_));
    }
    for (int i = 0; i < 120; i++) {  // obsolete versions for validation
      const uint64_t id = 1 + rng.Uniform(kKeys);
      UpsertBoth(MakeTweet(id, rng.Uniform(kUsers), ++time_));
    }
    FlushBoth();
  }

  /// Runs the full query battery on both datasets and compares every result
  /// (rows and order).
  void CompareAll(const std::string& phase) {
    SCOPED_TRACE(phase + " strategy=" + StrategyName(GetParam()));
    SecondaryQueryOptions naive;
    naive.lookup = SecondaryQueryOptions::LookupAlgo::kNaive;
    ReadOptions naive_ro;
    naive_ro.secondary = naive;
    SecondaryQueryOptions sorted;
    sorted.sort_results_by_pk = true;
    ReadOptions sorted_ro;
    sorted_ro.secondary = sorted;

    for (const auto& [lo, hi] : std::vector<std::pair<uint64_t, uint64_t>>{
             {0, 9}, {5, 24}, {10, 10}, {40, 49}, {60, 80} /* empty */}) {
      const auto q_naive =
          Query().Secondary("user_id").Range(lo, hi).Options(naive_ro);
      const auto q_sorted =
          Query().Secondary("user_id").Range(lo, hi).Options(sorted_ro);
      const auto q_scan = Query().Range(lo, hi).PageSize(64);
      EXPECT_EQ(DrainQuery(off_.get(), q_naive), DrainQuery(on_.get(), q_naive));
      EXPECT_EQ(DrainQuery(off_.get(), q_sorted),
                DrainQuery(on_.get(), q_sorted));
      EXPECT_EQ(DrainQuery(off_.get(), q_scan), DrainQuery(on_.get(), q_scan));
    }
    for (uint64_t id = 0; id <= kKeys + 10; id += 13) {
      const auto q = Query().Primary(id);
      EXPECT_EQ(DrainQuery(off_.get(), q), DrainQuery(on_.get(), q))
          << "id " << id;
    }
  }

  uint64_t time_ = 0;
  std::unique_ptr<Env> env_off_, env_on_;
  std::unique_ptr<Dataset> off_, on_;
};

TEST_P(TupleCacheParityTest, RepeatedAndOverlappingQueriesMatchLegacy) {
  Load();
  CompareAll("cold");
  CompareAll("warm");  // second pass serves from the cache on `on_`
  const TupleCacheStats s = on_->tuple_cache_stats();
  EXPECT_GT(s.hits, 0u) << "warm pass never hit the cache";
  EXPECT_GT(s.chain_served, 0u);

  // Writes invalidate precisely: move records across ranges, delete some,
  // insert a fresh one, then re-compare cold and warm again.
  Random rng(99);
  for (int i = 0; i < 60; i++) {
    UpsertBoth(MakeTweet(1 + rng.Uniform(kKeys), rng.Uniform(kUsers), ++time_));
  }
  for (uint64_t id = 3; id <= 100; id += 17) DeleteBoth(id);
  {
    bool a = false, b = false;
    const TweetRecord fresh = MakeTweet(kKeys + 5, 7, ++time_);
    ASSERT_TRUE(off_->Insert(fresh, &a).ok());
    ASSERT_TRUE(on_->Insert(fresh, &b).ok());
    ASSERT_EQ(a, b);
  }
  CompareAll("after-writes");
  FlushBoth();  // component turnover fires the install hook
  CompareAll("after-flush");
  CompareAll("after-flush-warm");
}

TEST_P(TupleCacheParityTest, IneligibleShapesBypassTheCache) {
  Load();
  CompareAll("warmup");  // populate what is populatable
  ReadOptions sorted_ro;
  sorted_ro.secondary.sort_results_by_pk = true;
  const ReadQuery shapes[] = {
      Query().Secondary("user_id").Range(0, 20).Limit(5).Options(sorted_ro),
      Query().Secondary("user_id").Range(0, 20).CountOnly().Options(sorted_ro),
      Query().Secondary("user_id").Range(0, 20).IndexOnly().Options(sorted_ro),
      Query()
          .Secondary("user_id")
          .Range(0, 20)
          .TimeRange(0, 50)
          .Options(sorted_ro),
      Query().Range(0, 20).Limit(5),
      Query().Range(0, 20).TimeRange(0, 50),
  };
  for (const auto& q : shapes) {
    CursorStats s;
    DrainQuery(on_.get(), q, &s);
    EXPECT_EQ(s.tuple_cache_hits + s.tuple_cache_misses, 0u)
        << "an ineligible shape consulted the cache";
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, TupleCacheParityTest,
    ::testing::Values(MaintenanceStrategy::kEager,
                      MaintenanceStrategy::kValidation,
                      MaintenanceStrategy::kMutableBitmap,
                      MaintenanceStrategy::kDeletedKeyBtree),
    [](const ::testing::TestParamInfo<MaintenanceStrategy>& info) {
      std::string name = StrategyName(info.param);
      for (auto& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// ---------------------------------------------------------------------------
// Failpoint degradation
// ---------------------------------------------------------------------------

TEST(TupleCacheFaultTest, FiredInsertFaultDegradesToPlainMisses) {
  FaultInjector fault(11);
  Env env(TestEnv(&fault));
  Dataset ds(&env, Opts(MaintenanceStrategy::kValidation, 4u << 20, &fault));
  uint64_t time = 0;
  for (uint64_t id = 1; id <= 100; id++) {
    ASSERT_TRUE(ds.Upsert(MakeTweet(id, id % 10, ++time)).ok());
  }
  ASSERT_TRUE(ds.FlushAll().ok());

  fault.Arm(failpoints::kCacheTupleInsert,
            FaultSpec::Error(Status::IOError("cache insert dropped"), 1.0));
  ReadOptions ro;
  ro.secondary.sort_results_by_pk = true;
  const auto q = Query().Secondary("user_id").Range(2, 4).Options(ro);
  const Rows first = DrainQuery(&ds, q);
  EXPECT_FALSE(first.ids.empty());
  CursorStats s;
  const Rows second = DrainQuery(&ds, q, &s);
  EXPECT_EQ(first, second);  // correct, just never admitted
  EXPECT_EQ(s.tuple_cache_hits, 0u);
  EXPECT_EQ(s.tuple_cache_misses, 1u);
  EXPECT_EQ(ds.tuple_cache_stats().inserts, 0u);
  EXPECT_GT(fault.site_stats(failpoints::kCacheTupleInsert).fires, 0u);
}

TEST(TupleCacheFaultTest, FiredInvalidateFaultNeverServesStale) {
  FaultInjector fault(12);
  Env env(TestEnv(&fault));
  Dataset ds(&env, Opts(MaintenanceStrategy::kEager, 4u << 20, &fault));
  uint64_t time = 0;
  for (uint64_t id = 1; id <= 100; id++) {
    ASSERT_TRUE(ds.Upsert(MakeTweet(id, id % 10, ++time)).ok());
  }
  ASSERT_TRUE(ds.FlushAll().ok());

  ReadOptions ro;
  ro.secondary.sort_results_by_pk = true;
  const auto q = Query().Secondary("user_id").Range(3, 3).Options(ro);
  const Rows warm = DrainQuery(&ds, q);  // twice: resident afterwards
  ASSERT_EQ(warm, DrainQuery(&ds, q));
  ASSERT_FALSE(warm.ids.empty());

  // A degraded (fired) precise invalidation must fall back to dropping
  // everything — the moved record may never appear in its old range.
  fault.Arm(failpoints::kCacheTupleInvalidate,
            FaultSpec::Error(Status::IOError("cut lost"), 1.0));
  const uint64_t moved = warm.ids.front();
  ASSERT_TRUE(ds.Upsert(MakeTweet(moved, 9, ++time)).ok());
  fault.DisarmAll();

  const Rows after = DrainQuery(&ds, q);
  for (uint64_t id : after.ids) EXPECT_NE(id, moved);
  Rows point = DrainQuery(&ds, Query().Primary(moved));
  ASSERT_EQ(point.users.size(), 1u);
  EXPECT_EQ(point.users[0], 9u);
}

// ---------------------------------------------------------------------------
// Transaction aborts
// ---------------------------------------------------------------------------

// An abort restores the old record, whose *old* secondary position a
// concurrent reader may have cached as proven-empty between the forward
// write and the rollback (it truly was empty at that moment). No pk-precise
// cut can find that claim — it holds no tuple for the pk — so rollback must
// drop the cache wholesale, inside the write fence.
TEST(TupleCacheAbortTest, AbortNeverLeavesOldPositionProvenEmpty) {
  for (MaintenanceStrategy strategy :
       {MaintenanceStrategy::kEager, MaintenanceStrategy::kValidation,
        MaintenanceStrategy::kMutableBitmap,
        MaintenanceStrategy::kDeletedKeyBtree}) {
    SCOPED_TRACE(StrategyName(strategy));
    Env env(TestEnv());
    Dataset ds(&env, Opts(strategy, 4u << 20));
    uint64_t time = 0;
    ASSERT_TRUE(ds.Upsert(MakeTweet(1, /*user=*/5, ++time)).ok());

    ReadOptions ro;
    ro.secondary.sort_results_by_pk = true;
    const auto q5 = Query().Secondary("user_id").Range(5, 5).Options(ro);

    auto txn = ds.Begin();
    // The forward write moves pk 1 from user 5 to user 9.
    ASSERT_TRUE(ds.UpsertTxn(MakeTweet(1, /*user=*/9, ++time), txn.get()).ok());
    // A reader caches "user 5 is empty" while the transaction is open.
    const Rows mid = DrainQuery(&ds, q5);
    EXPECT_TRUE(mid.ids.empty());
    ASSERT_TRUE(txn->Abort().ok());

    // The undo restored pk 1 at user 5; the cached emptiness must be gone.
    const Rows after = DrainQuery(&ds, q5);
    ASSERT_EQ(after.ids.size(), 1u);
    EXPECT_EQ(after.ids[0], 1u);
    EXPECT_EQ(after.users[0], 5u);
  }
}

// ---------------------------------------------------------------------------
// Concurrency stress (TSan target)
// ---------------------------------------------------------------------------

// Writers own disjoint key strides and publish strictly increasing
// creation_times; point readers assert per-key monotonicity (a stale cache
// serve would step a key's observed version backwards), range readers assert
// well-formed pk-sorted pages — all while small memory budgets force flush
// and merge turnover (install-hook epoch fences) underneath.
TEST(TupleCacheStressTest, HotReadsStayFreshUnderConcurrentWrites) {
  for (MaintenanceStrategy strategy :
       {MaintenanceStrategy::kEager, MaintenanceStrategy::kValidation,
        MaintenanceStrategy::kMutableBitmap,
        MaintenanceStrategy::kDeletedKeyBtree}) {
    SCOPED_TRACE(StrategyName(strategy));
    constexpr uint64_t kStressKeys = 256;
    constexpr int kWriters = 3;
    Env env(TestEnv());
    DatasetOptions o = Opts(strategy, 2u << 20);
    o.mem_budget_bytes = 32 << 10;  // frequent turnover
    o.writer_threads = kWriters;
    Dataset ds(&env, o);

    std::atomic<uint64_t> clock{0};
    for (uint64_t id = 1; id <= kStressKeys; id++) {
      ASSERT_TRUE(ds.Upsert(MakeTweet(id, id % 16, ++clock)).ok());
    }

    std::atomic<bool> stop{false};
    std::atomic<bool> failed{false};
    std::vector<std::thread> threads;
    for (int w = 0; w < kWriters; w++) {
      threads.emplace_back([&, w]() {
        Random rng(100 + w);
        for (int i = 0; i < 1500 && !failed.load(); i++) {
          // Stride-disjoint ownership keeps per-key times monotonic.
          const uint64_t id = 1 + w + kWriters * rng.Uniform(kStressKeys / kWriters);
          if (!ds.Upsert(MakeTweet(id, rng.Uniform(16), ++clock)).ok()) {
            failed.store(true);
          }
        }
      });
    }
    for (int r = 0; r < 2; r++) {
      threads.emplace_back([&, r]() {
        Random rng(200 + r);
        std::map<uint64_t, uint64_t> last_seen;
        TweetRecord got;
        while (!stop.load() && !failed.load()) {
          const uint64_t id = 1 + rng.Uniform(kStressKeys);
          if (!ds.GetById(id, &got).ok()) continue;
          auto [it, fresh] = last_seen.try_emplace(id, got.creation_time);
          if (!fresh) {
            if (got.creation_time < it->second) {
              ADD_FAILURE() << "stale read: key " << id << " went from "
                            << it->second << " back to " << got.creation_time;
              failed.store(true);
            }
            it->second = std::max(it->second, got.creation_time);
          }
        }
      });
    }
    threads.emplace_back([&]() {
      Random rng(300);
      ReadOptions ro;
      ro.secondary.sort_results_by_pk = true;
      while (!stop.load() && !failed.load()) {
        const uint64_t lo = rng.Uniform(12);
        auto cursor_or = ds.NewCursor(
            Query().Secondary("user_id").Range(lo, lo + 3).Options(ro));
        if (!cursor_or.ok()) continue;
        auto cursor = std::move(cursor_or).value();
        QueryPage page;
        uint64_t prev = 0;
        while (!cursor->done()) {
          if (!cursor->Next(&page).ok()) break;
          for (const auto& rec : page.records) {
            if (prev != 0 && rec.id <= prev) {
              ADD_FAILURE() << "range rows out of order or duplicated";
              failed.store(true);
            }
            prev = rec.id;
          }
        }
      }
    });
    for (int w = 0; w < kWriters; w++) threads[w].join();
    stop.store(true);
    for (size_t t = kWriters; t < threads.size(); t++) threads[t].join();
    ASSERT_FALSE(failed.load());
    ASSERT_TRUE(ds.FlushAll().ok());

    // The cache genuinely participated.
    const TupleCacheStats s = ds.tuple_cache_stats();
    EXPECT_GT(s.hits + s.misses, 0u);
    EXPECT_GT(s.invalidations + s.stale_drops, 0u);
  }
}

}  // namespace
}  // namespace auxlsm
