#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "core/dataset.h"
#include "txn/lock_manager.h"
#include "txn/log_record.h"
#include "txn/recovery.h"
#include "txn/transaction.h"
#include "txn/wal.h"

namespace auxlsm {
namespace {

TEST(LockManagerTest, SharedLocksCoexist) {
  LockManager lm;
  lm.Lock(1, "k", LockMode::kShared);
  lm.Lock(2, "k", LockMode::kShared);
  EXPECT_EQ(lm.NumLockedKeys(), 1u);
  lm.Unlock(1, "k");
  lm.Unlock(2, "k");
  EXPECT_EQ(lm.NumLockedKeys(), 0u);
}

TEST(LockManagerTest, ExclusiveBlocksOtherWriter) {
  LockManager lm;
  lm.Lock(1, "k", LockMode::kExclusive);
  std::atomic<bool> acquired{false};
  std::thread t([&]() {
    lm.Lock(2, "k", LockMode::kExclusive);
    acquired.store(true);
    lm.Unlock(2, "k");
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(acquired.load());
  lm.Unlock(1, "k");
  t.join();
  EXPECT_TRUE(acquired.load());
}

TEST(LockManagerTest, SharedBlocksExclusive) {
  LockManager lm;
  lm.Lock(1, "k", LockMode::kShared);
  std::atomic<bool> acquired{false};
  std::thread t([&]() {
    lm.Lock(2, "k", LockMode::kExclusive);
    acquired.store(true);
    lm.Unlock(2, "k");
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(acquired.load());
  lm.Unlock(1, "k");
  t.join();
  EXPECT_TRUE(acquired.load());
}

TEST(LockManagerTest, ReentrantExclusive) {
  LockManager lm;
  lm.Lock(1, "k", LockMode::kExclusive);
  lm.Lock(1, "k", LockMode::kExclusive);  // same holder: no deadlock
  lm.Unlock(1, "k");
  EXPECT_EQ(lm.NumLockedKeys(), 1u);  // still held once
  lm.Unlock(1, "k");
  EXPECT_EQ(lm.NumLockedKeys(), 0u);
}

TEST(LockManagerTest, UnlockAllReleasesEverything) {
  LockManager lm;
  lm.Lock(1, "a", LockMode::kExclusive);
  lm.Lock(1, "b", LockMode::kShared);
  lm.Lock(1, "c", LockMode::kExclusive);
  lm.UnlockAll(1);
  EXPECT_EQ(lm.NumLockedKeys(), 0u);
}

TEST(LockManagerTest, DifferentKeysDoNotConflict) {
  LockManager lm;
  lm.Lock(1, "a", LockMode::kExclusive);
  lm.Lock(2, "b", LockMode::kExclusive);  // returns without blocking
  lm.UnlockAll(1);
  lm.UnlockAll(2);
}

TEST(LogRecordTest, EncodeDecodeRoundTrip) {
  LogRecord r;
  r.lsn = 42;
  r.txn_id = 7;
  r.type = LogRecordType::kUpsert;
  r.key = "pk";
  r.value = std::string(100, 'v');
  r.ts = 12345;
  r.update_bit = true;
  const std::string enc = r.Encode();
  LogRecord got;
  size_t consumed = 0;
  ASSERT_TRUE(LogRecord::Decode(enc, &got, &consumed).ok());
  EXPECT_EQ(consumed, enc.size());
  EXPECT_EQ(got.lsn, r.lsn);
  EXPECT_EQ(got.txn_id, r.txn_id);
  EXPECT_EQ(got.type, r.type);
  EXPECT_EQ(got.key, r.key);
  EXPECT_EQ(got.value, r.value);
  EXPECT_EQ(got.ts, r.ts);
  EXPECT_TRUE(got.update_bit);
}

TEST(LogRecordTest, DecodeDetectsCorruption) {
  LogRecord r;
  r.type = LogRecordType::kCommit;
  std::string enc = r.Encode();
  enc[enc.size() - 1] ^= 0x1;  // flip a payload bit
  LogRecord got;
  size_t consumed;
  EXPECT_TRUE(LogRecord::Decode(enc, &got, &consumed).IsCorruption());
  EXPECT_TRUE(LogRecord::Decode(Slice(enc.data(), 3), &got, &consumed)
                  .IsCorruption());
}

TEST(WalTest, AppendAssignsMonotoneLsns) {
  Wal wal;
  LogRecord r;
  r.type = LogRecordType::kInsert;
  const Lsn a = wal.Append(r);
  const Lsn b = wal.Append(r);
  EXPECT_LT(a, b);
  EXPECT_EQ(wal.tail_lsn(), b);
  EXPECT_EQ(wal.num_records(), 2u);
}

TEST(WalTest, ReadFromFiltersAndTruncate) {
  Wal wal;
  LogRecord r;
  r.type = LogRecordType::kInsert;
  const Lsn a = wal.Append(r);
  wal.Append(r);
  wal.Append(r);
  EXPECT_EQ(wal.ReadFrom(a).size(), 2u);
  wal.TruncateUpTo(a);
  EXPECT_EQ(wal.num_records(), 2u);
  EXPECT_EQ(wal.ReadFrom(kInvalidLsn).size(), 2u);
}

TEST(WalTest, ChargesSequentialLogIo) {
  Wal wal(DiskProfile::Hdd(), /*log_page_bytes=*/128);
  LogRecord r;
  r.type = LogRecordType::kUpsert;
  r.value = std::string(1000, 'x');
  wal.Append(r);
  EXPECT_GT(wal.stats().pages_written, 0u);
  EXPECT_GT(wal.stats().simulated_us, 0.0);
}

TEST(TransactionTest, CommitClearsUndoAndUnlocks) {
  LockManager lm;
  Wal wal;
  TransactionManager mgr(&lm, &wal);
  int undone = 0;
  auto txn = mgr.Begin();
  txn->Lock("k", LockMode::kExclusive);
  txn->PushUndo([&]() { undone++; });
  ASSERT_TRUE(txn->Commit().ok());
  EXPECT_EQ(undone, 0);
  EXPECT_EQ(lm.NumLockedKeys(), 0u);
  EXPECT_EQ(txn->state(), Transaction::State::kCommitted);
  // The commit record is in the log.
  const auto records = wal.ReadFrom(kInvalidLsn);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].type, LogRecordType::kCommit);
}

TEST(TransactionTest, AbortRunsInverseOpsInReverseOrder) {
  LockManager lm;
  Wal wal;
  TransactionManager mgr(&lm, &wal);
  std::vector<int> order;
  auto txn = mgr.Begin();
  txn->PushUndo([&]() { order.push_back(1); });
  txn->PushUndo([&]() { order.push_back(2); });
  txn->PushUndo([&]() { order.push_back(3); });
  ASSERT_TRUE(txn->Abort().ok());
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 3);
  EXPECT_EQ(order[2], 1);
}

TEST(TransactionTest, DestructorAbortsActiveTxn) {
  LockManager lm;
  Wal wal;
  TransactionManager mgr(&lm, &wal);
  int undone = 0;
  {
    auto txn = mgr.Begin();
    txn->PushUndo([&]() { undone++; });
  }
  EXPECT_EQ(undone, 1);
}

TEST(TransactionTest, DoubleCommitRejected) {
  LockManager lm;
  Wal wal;
  TransactionManager mgr(&lm, &wal);
  auto txn = mgr.Begin();
  ASSERT_TRUE(txn->Commit().ok());
  EXPECT_TRUE(txn->Commit().IsInvalidArgument());
  EXPECT_TRUE(txn->Abort().IsInvalidArgument());
}

TEST(RecoveryTest, ReplaysOnlyCommittedBeyondComponentLsn) {
  LockManager lm;
  Wal wal;
  TransactionManager mgr(&lm, &wal);

  // txn 1: committed, ops at lsn 1-2 + commit.
  auto t1 = mgr.Begin();
  LogRecord op;
  op.type = LogRecordType::kUpsert;
  op.key = "a";
  t1->Log(op);
  op.key = "b";
  t1->Log(op);
  ASSERT_TRUE(t1->Commit().ok());
  // txn 2: aborted.
  auto t2 = mgr.Begin();
  op.key = "c";
  t2->Log(op);
  ASSERT_TRUE(t2->Abort().ok());

  std::vector<std::string> replayed;
  RecoveryStats stats;
  ASSERT_TRUE(RecoverFromWal(
                  wal, /*max_component_lsn=*/1, /*bitmap_checkpoint_lsn=*/0,
                  [&](const LogRecord& r) {
                    replayed.push_back(r.key);
                    return Status::OK();
                  },
                  nullptr, &stats)
                  .ok());
  // Only "b" (lsn 2 > 1, committed); "a" already durable, "c" uncommitted.
  ASSERT_EQ(replayed.size(), 1u);
  EXPECT_EQ(replayed[0], "b");
  EXPECT_EQ(stats.uncommitted_skipped, 1u);
}

TEST(RecoveryTest, BitmapRedoUsesUpdateBitAndCheckpoint) {
  LockManager lm;
  Wal wal;
  TransactionManager mgr(&lm, &wal);
  auto t1 = mgr.Begin();
  LogRecord op;
  op.type = LogRecordType::kUpsert;
  op.key = "x";
  op.update_bit = true;
  t1->Log(op);  // lsn 1
  op.key = "y";
  op.update_bit = false;
  t1->Log(op);  // lsn 2
  op.key = "z";
  op.update_bit = true;
  t1->Log(op);  // lsn 3
  ASSERT_TRUE(t1->Commit().ok());

  std::vector<std::string> bitmap_redo;
  ASSERT_TRUE(RecoverFromWal(
                  wal, /*max_component_lsn=*/100,
                  /*bitmap_checkpoint_lsn=*/1,
                  nullptr,
                  [&](const LogRecord& r) {
                    bitmap_redo.push_back(r.key);
                    return Status::OK();
                  },
                  nullptr)
                  .ok());
  // Only "z": "x" is before the bitmap checkpoint, "y" has no update bit.
  ASSERT_EQ(bitmap_redo.size(), 1u);
  EXPECT_EQ(bitmap_redo[0], "z");
}

// --- Serial-path no-steal (DatasetOptions::strict_no_steal) ------------------

namespace nosteal {

EnvOptions TestEnv() {
  EnvOptions o;
  o.page_size = 1024;
  o.cache_pages = 1 << 14;
  o.disk_profile = DiskProfile::Null();
  return o;
}

TweetRecord MakeTweet(uint64_t id) {
  TweetRecord r;
  r.id = id;
  r.user_id = id % 10;
  r.location = "TX";
  r.creation_time = id;
  r.message = std::string(120, 't');
  return r;
}

DatasetOptions SmallBudget(bool strict) {
  DatasetOptions o;
  o.strategy = MaintenanceStrategy::kEager;
  o.mem_budget_bytes = 4 << 10;  // a handful of records triggers the flush
  o.strict_no_steal = strict;
  return o;
}

}  // namespace nosteal

// Documents the legacy serial behavior the knob defaults to: an inline
// budget-triggered flush runs *between an open explicit transaction's
// operations* and writes its uncommitted entries to disk (a steal) — the
// seed behavior, kept bit-for-bit while strict_no_steal is off.
TEST(SerialNoStealTest, LegacyInlineFlushStealsUncommittedEntries) {
  Env env(nosteal::TestEnv());
  Dataset ds(&env, nosteal::SmallBudget(/*strict=*/false));
  auto txn = ds.Begin();
  for (uint64_t id = 1; id <= 60; id++) {
    ASSERT_TRUE(ds.UpsertTxn(nosteal::MakeTweet(id), txn.get()).ok());
  }
  // The transaction is still open, yet its entries were flushed to disk.
  EXPECT_GT(ds.ingest_stats().flushes, 0u);
  EXPECT_GT(ds.primary()->NumDiskComponents(), 0u);
  ASSERT_TRUE(txn->Abort().ok());
}

// The fix: with strict_no_steal the inline flush defers while an explicit
// transaction is open (matching the pipeline's seal deferral), so a rollback
// always finds its entries still in the memtable — no uncommitted data ever
// reaches disk.
TEST(SerialNoStealTest, StrictModeDefersFlushUntilTransactionCloses) {
  Env env(nosteal::TestEnv());
  Dataset ds(&env, nosteal::SmallBudget(/*strict=*/true));
  auto txn = ds.Begin();
  for (uint64_t id = 1; id <= 60; id++) {
    ASSERT_TRUE(ds.UpsertTxn(nosteal::MakeTweet(id), txn.get()).ok());
  }
  // Well past the budget, but no flush stole the open transaction's writes.
  EXPECT_EQ(ds.ingest_stats().flushes, 0u);
  EXPECT_EQ(ds.primary()->NumDiskComponents(), 0u);
  ASSERT_TRUE(txn->Abort().ok());
  EXPECT_EQ(ds.num_records(), 0u);  // the rollback reached every entry

  // The next (auto-commit) operation re-triggers maintenance; only committed
  // data reaches disk.
  ASSERT_TRUE(ds.Upsert(nosteal::MakeTweet(1000)).ok());
  ASSERT_TRUE(ds.FlushAll().ok());
  EXPECT_EQ(ds.num_records(), 1u);
  TweetRecord r;
  EXPECT_TRUE(ds.GetById(1000, &r).ok());
  EXPECT_TRUE(ds.GetById(5, &r).IsNotFound());
}

// Committed explicit transactions flush normally under strict mode: the
// deferral ends as soon as the transaction closes.
TEST(SerialNoStealTest, StrictModeFlushesCommittedWork) {
  Env env(nosteal::TestEnv());
  Dataset ds(&env, nosteal::SmallBudget(/*strict=*/true));
  auto txn = ds.Begin();
  for (uint64_t id = 1; id <= 60; id++) {
    ASSERT_TRUE(ds.UpsertTxn(nosteal::MakeTweet(id), txn.get()).ok());
  }
  ASSERT_TRUE(txn->Commit().ok());
  // Budget is still exceeded; the first op after the close flushes.
  ASSERT_TRUE(ds.Upsert(nosteal::MakeTweet(61)).ok());
  EXPECT_GT(ds.ingest_stats().flushes, 0u);
  EXPECT_EQ(ds.num_records(), 61u);
}

}  // namespace
}  // namespace auxlsm
