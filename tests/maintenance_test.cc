// Maintenance engine (exec/maintenance.h): the parallel flush/merge pipeline
// must produce datasets indistinguishable from the serial engine, stay
// correct under concurrent readers, and partitioned merges must emit exactly
// the entries a whole-range merge emits.
#include "exec/maintenance.h"

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <set>
#include <thread>

#include "core/dataset.h"
#include "core/point_lookup.h"
#include "exec/thread_pool.h"
#include "format/key_codec.h"

namespace auxlsm {
namespace {

EnvOptions TestEnv(size_t cache_shards = 1) {
  EnvOptions o;
  o.page_size = 1024;
  o.cache_pages = 1 << 16;
  o.cache_shards = cache_shards;
  o.disk_profile = DiskProfile::Null();
  return o;
}

TweetRecord MakeTweet(uint64_t id, uint64_t user, uint64_t time) {
  TweetRecord r;
  r.id = id;
  r.user_id = user;
  r.location = "WA";
  r.creation_time = time;
  r.message = "m" + std::to_string(id);
  return r;
}

DatasetOptions BaseOptions(MaintenanceStrategy strategy, size_t threads) {
  DatasetOptions o;
  o.strategy = strategy;
  o.mem_budget_bytes = 64 << 10;  // frequent automatic flushes and merges
  o.max_mergeable_bytes = 4 << 20;
  o.maintenance_threads = threads;
  o.merge_partition_min_bytes = 1;  // exercise partitioned merges eagerly
  return o;
}

// Ingests a deterministic workload of upserts and deletes.
void RunWorkload(Dataset* ds, uint64_t ops) {
  for (uint64_t i = 1; i <= ops; i++) {
    const uint64_t id = i % 700;
    if (i % 13 == 0) {
      ASSERT_TRUE(ds->Delete(id).ok());
    } else {
      ASSERT_TRUE(ds->Upsert(MakeTweet(id, id % 50, i)).ok());
    }
  }
}

// Reconciled view of the dataset: id -> user for every live record.
std::map<uint64_t, uint64_t> LiveRecords(Dataset* ds) {
  std::map<uint64_t, uint64_t> out;
  for (uint64_t id = 0; id < 700; id++) {
    TweetRecord rec;
    if (ds->GetById(id, &rec).ok()) out[id] = rec.user_id;
  }
  return out;
}

class MaintenanceParityTest
    : public ::testing::TestWithParam<MaintenanceStrategy> {};

TEST_P(MaintenanceParityTest, ParallelEngineMatchesSerialEngine) {
  const MaintenanceStrategy strategy = GetParam();
  Env serial_env(TestEnv());
  Dataset serial(&serial_env, BaseOptions(strategy, 1));
  EXPECT_EQ(serial.maintenance(), nullptr);
  RunWorkload(&serial, 3000);

  Env parallel_env(TestEnv(/*cache_shards=*/8));
  Dataset parallel(&parallel_env, BaseOptions(strategy, 4));
  ASSERT_NE(parallel.maintenance(), nullptr);
  EXPECT_TRUE(parallel.maintenance()->parallel());
  RunWorkload(&parallel, 3000);

  // Both engines flushed and merged along the way.
  EXPECT_GT(parallel.ingest_stats().flushes, 0u);
  EXPECT_GT(parallel.ingest_stats().merges, 0u);
  EXPECT_EQ(parallel.ingest_stats().flushes, serial.ingest_stats().flushes);

  EXPECT_EQ(LiveRecords(&parallel), LiveRecords(&serial));
  EXPECT_EQ(parallel.num_records(), serial.num_records());

  // Secondary queries agree too (every user bucket).
  SecondaryQueryOptions q;
  for (uint64_t user = 0; user < 50; user++) {
    QueryResult rs, rp;
    ASSERT_TRUE(serial.QueryUserRange(user, user, q, &rs).ok());
    ASSERT_TRUE(parallel.QueryUserRange(user, user, q, &rp).ok());
    std::set<uint64_t> ids_s, ids_p;
    for (const auto& r : rs.records) ids_s.insert(r.id);
    for (const auto& r : rp.records) ids_p.insert(r.id);
    EXPECT_EQ(ids_p, ids_s) << "user " << user;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Strategies, MaintenanceParityTest,
    ::testing::Values(MaintenanceStrategy::kEager,
                      MaintenanceStrategy::kValidation,
                      MaintenanceStrategy::kMutableBitmap,
                      MaintenanceStrategy::kDeletedKeyBtree),
    [](const auto& info) {
      std::string name = StrategyName(info.param);
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

TEST(MaintenanceParityTest, MergeRepairParity) {
  // Validation with merge repair exercises the repair-in-task path.
  auto opts = [](size_t threads) {
    DatasetOptions o = BaseOptions(MaintenanceStrategy::kValidation, threads);
    o.merge_repair = true;
    return o;
  };
  Env es, ep;
  Dataset serial(&es, opts(1));
  Dataset parallel(&ep, opts(4));
  RunWorkload(&serial, 3000);
  RunWorkload(&parallel, 3000);
  EXPECT_GT(parallel.ingest_stats().repairs, 0u);
  EXPECT_EQ(LiveRecords(&parallel), LiveRecords(&serial));
}

TEST(MaintenanceStressTest, LookupsDuringConcurrentFlushAndMerge) {
  // Flush + merge on the engine while reader threads hammer point lookups
  // and bulk lookups; every observed answer must be a value the key really
  // had, and the final state must reconcile with the serial engine.
  Env env(TestEnv(/*cache_shards=*/8));
  DatasetOptions o = BaseOptions(MaintenanceStrategy::kEager, 4);
  o.mem_budget_bytes = 16 << 10;  // small budget: maintenance churns
  Dataset ds(&env, o);
  ASSERT_NE(ds.maintenance(), nullptr);

  constexpr uint64_t kKeys = 1500;
  constexpr uint64_t kOps = 6000;
  std::atomic<uint64_t> watermark{0};  // ids < watermark are durably present
  std::atomic<bool> done{false};
  std::atomic<uint64_t> reader_checks{0};
  std::atomic<uint64_t> reader_errors{0};

  auto reader = [&]() {
    uint64_t seed = 12345;
    while (!done.load(std::memory_order_acquire)) {
      const uint64_t wm = watermark.load(std::memory_order_acquire);
      if (wm == 0) {
        std::this_thread::yield();
        continue;
      }
      seed = seed * 6364136223846793005ULL + 1442695040888963407ULL;
      const uint64_t id = (seed >> 33) % wm;
      TweetRecord rec;
      if (!ds.GetById(id, &rec).ok() || rec.id != id ||
          rec.user_id != id % 50) {
        reader_errors.fetch_add(1);
      }
      // Bulk lookup over a small sorted id range against the primary tree.
      std::vector<FetchRequest> reqs;
      for (uint64_t k = id; k < std::min(id + 16, wm); k++) {
        reqs.push_back(FetchRequest{EncodeU64(k), 0});
      }
      std::vector<FetchedEntry> out;
      PointLookupOptions lopts;
      if (!BulkPointLookup(*ds.primary(), reqs, lopts, &out).ok() ||
          out.size() != reqs.size()) {
        reader_errors.fetch_add(1);
      }
      reader_checks.fetch_add(1);
    }
  };
  // Secondary queries and scans during maintenance: every id a user-bucket
  // query returns must really belong to that bucket, and no query may fail.
  auto query_reader = [&]() {
    uint64_t user = 0;
    while (!done.load(std::memory_order_acquire)) {
      if (watermark.load(std::memory_order_acquire) == 0) {
        std::this_thread::yield();
        continue;
      }
      SecondaryQueryOptions q;
      QueryResult res;
      if (!ds.QueryUserRange(user, user, q, &res).ok()) {
        reader_errors.fetch_add(1);
      }
      for (const auto& r : res.records) {
        if (r.user_id != user || r.id % 50 != user) reader_errors.fetch_add(1);
      }
      ScanResult sr;
      if (!ds.ScanTimeRange(1, kOps, &sr).ok()) reader_errors.fetch_add(1);
      user = (user + 7) % 50;
      reader_checks.fetch_add(1);
    }
  };
  std::thread r1(reader), r2(query_reader);

  // Writer: insert each id exactly once (stable expected values), with the
  // shared memory budget driving automatic flushes and merges underneath
  // the readers.
  for (uint64_t i = 0; i < kOps; i++) {
    const uint64_t id = i % kKeys;
    if (id < watermark.load(std::memory_order_relaxed)) {
      // Re-upsert with identical contents (ts advances; value stable).
      ASSERT_TRUE(ds.Upsert(MakeTweet(id, id % 50, i + 1)).ok());
    } else {
      ASSERT_TRUE(ds.Upsert(MakeTweet(id, id % 50, i + 1)).ok());
      watermark.store(id + 1, std::memory_order_release);
    }
  }
  ASSERT_TRUE(ds.FlushAll().ok());
  done.store(true, std::memory_order_release);
  r1.join();
  r2.join();

  EXPECT_GT(reader_checks.load(), 0u);
  EXPECT_EQ(reader_errors.load(), 0u);
  EXPECT_GT(ds.ingest_stats().merges, 0u);

  // Final reconciled state matches a serially maintained copy.
  Env env2(TestEnv());
  DatasetOptions o2 = BaseOptions(MaintenanceStrategy::kEager, 1);
  o2.mem_budget_bytes = 16 << 10;
  Dataset serial(&env2, o2);
  for (uint64_t i = 0; i < kOps; i++) {
    const uint64_t id = i % kKeys;
    ASSERT_TRUE(serial.Upsert(MakeTweet(id, id % 50, i + 1)).ok());
  }
  ASSERT_TRUE(serial.FlushAll().ok());
  EXPECT_EQ(ds.num_records(), serial.num_records());
  for (uint64_t id = 0; id < kKeys; id++) {
    TweetRecord a, b;
    ASSERT_TRUE(ds.GetById(id, &a).ok());
    ASSERT_TRUE(serial.GetById(id, &b).ok());
    EXPECT_EQ(a.user_id, b.user_id);
    EXPECT_EQ(a.message, b.message);
  }
}

TEST(PartitionedMergeTest, MatchesWholeRangeMerge) {
  // Build two identical trees with overlapping components (including
  // anti-matter and duplicate keys), merge one serially and one through the
  // scheduler's key-range partitioning, and compare every surviving entry.
  auto build = [](Env* env) {
    auto tree = std::make_unique<LsmTree>(env, LsmTreeOptions());
    uint64_t ts = 0;
    for (int c = 0; c < 4; c++) {
      for (uint64_t i = 0; i < 3000; i++) {
        const uint64_t key = i * 4 + c;  // interleaved key ranges
        tree->Put(EncodeU64(key), "v" + std::to_string(key * 10 + c), ++ts);
      }
      // Overlap: rewrite a stripe of earlier keys, delete some others.
      for (uint64_t i = 0; i < 300; i++) {
        tree->Put(EncodeU64(i * 7), "upd" + std::to_string(c), ++ts);
        tree->PutAntimatter(EncodeU64(i * 11 + 1), ++ts);
      }
      EXPECT_TRUE(tree->Flush().ok());
    }
    return tree;
  };

  Env env_serial(TestEnv()), env_part(TestEnv(/*cache_shards=*/8));
  auto serial_tree = build(&env_serial);
  auto part_tree = build(&env_part);

  ASSERT_TRUE(serial_tree->MergeAll().ok());

  MaintenanceOptions mo;
  mo.threads = 4;
  mo.merge_partitions = 5;
  mo.partition_min_bytes = 1;
  MaintenanceScheduler scheduler(mo);
  ASSERT_TRUE(scheduler.parallel());
  ASSERT_TRUE(
      scheduler.MergeComponents(part_tree.get(), part_tree->Components())
          .ok());

  ASSERT_EQ(serial_tree->NumDiskComponents(), 1u);
  ASSERT_EQ(part_tree->NumDiskComponents(), 1u);
  const auto sc = serial_tree->Components().front();
  const auto pc = part_tree->Components().front();
  EXPECT_EQ(pc->num_entries(), sc->num_entries());
  EXPECT_EQ(pc->id().min_ts, sc->id().min_ts);
  EXPECT_EQ(pc->id().max_ts, sc->id().max_ts);

  auto si = sc->tree().NewIterator(32);
  auto pi = pc->tree().NewIterator(32);
  ASSERT_TRUE(si.SeekToFirst().ok());
  ASSERT_TRUE(pi.SeekToFirst().ok());
  while (si.Valid() && pi.Valid()) {
    EXPECT_EQ(pi.key().ToString(), si.key().ToString());
    EXPECT_EQ(pi.value().ToString(), si.value().ToString());
    EXPECT_EQ(pi.ts(), si.ts());
    EXPECT_EQ(pi.antimatter(), si.antimatter());
    ASSERT_TRUE(si.Next().ok());
    ASSERT_TRUE(pi.Next().ok());
  }
  EXPECT_EQ(si.Valid(), pi.Valid());
}

TEST(MaintenanceSchedulerTest, SerialSchedulerRunsInline) {
  MaintenanceOptions mo;
  mo.threads = 1;
  MaintenanceScheduler scheduler(mo);
  EXPECT_FALSE(scheduler.parallel());
  EXPECT_EQ(scheduler.pool(), nullptr);
  int ran = 0;
  std::vector<std::function<Status()>> tasks;
  tasks.push_back([&ran]() { ran++; return Status::OK(); });
  tasks.push_back([&ran]() { ran++; return Status::IOError("x"); });
  tasks.push_back([&ran]() { ran++; return Status::OK(); });
  // All tasks run even past an error; the first error is returned.
  EXPECT_TRUE(scheduler.RunAll(std::move(tasks)).IsIOError());
  EXPECT_EQ(ran, 3);
}

TEST(MaintenanceSchedulerTest, NestedFanOutDoesNotDeadlock) {
  // Tasks that themselves run partitioned merges saturate the pool; the
  // helping wait must keep making progress with more tasks than workers.
  MaintenanceOptions mo;
  mo.threads = 2;
  mo.partition_min_bytes = 1;
  MaintenanceScheduler scheduler(mo);
  Env env(TestEnv(/*cache_shards=*/4));
  std::vector<std::unique_ptr<LsmTree>> trees;
  for (int t = 0; t < 6; t++) {
    auto tree = std::make_unique<LsmTree>(&env, LsmTreeOptions());
    uint64_t ts = 0;
    for (int c = 0; c < 3; c++) {
      for (uint64_t i = 0; i < 500; i++) {
        tree->Put(EncodeU64(i * 3 + c), "v", ++ts);
      }
      ASSERT_TRUE(tree->Flush().ok());
    }
    trees.push_back(std::move(tree));
  }
  std::vector<std::function<Status()>> tasks;
  for (auto& tree : trees) {
    LsmTree* t = tree.get();
    tasks.push_back([&scheduler, t]() {
      return scheduler.MergeComponents(t, t->Components());
    });
  }
  ASSERT_TRUE(scheduler.RunAll(std::move(tasks)).ok());
  for (auto& tree : trees) {
    EXPECT_EQ(tree->NumDiskComponents(), 1u);
    EXPECT_EQ(tree->Components().front()->num_entries(), 1500u);
  }
}

}  // namespace
}  // namespace auxlsm
