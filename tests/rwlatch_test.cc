#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "common/rwlatch.h"

namespace auxlsm {
namespace {

TEST(RwLatchTest, BasicSharedExclusive) {
  RwLatch latch;
  latch.lock_shared();
  latch.lock_shared();  // readers coexist
  EXPECT_FALSE(latch.try_lock());
  latch.unlock_shared();
  latch.unlock_shared();
  EXPECT_TRUE(latch.try_lock());
  EXPECT_FALSE(latch.try_lock_shared());
  latch.unlock();
  EXPECT_TRUE(latch.try_lock_shared());
  latch.unlock_shared();
}

TEST(RwLatchTest, WorksWithScopedGuards) {
  RwLatch latch;
  {
    ReadLatchGuard shared(latch);
    EXPECT_FALSE(latch.try_lock());
  }
  {
    WriteLatchGuard exclusive(latch);
    EXPECT_FALSE(latch.try_lock_shared());
  }
}

TEST(RwLatchTest, WriterNotStarvedByContinuousReaders) {
  // The reason this latch exists (§5.3's dataset drain): two reader threads
  // re-acquiring in a tight loop must not block a writer forever.
  RwLatch latch;
  std::atomic<bool> stop{false};
  std::atomic<bool> writer_done{false};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; t++) {
    readers.emplace_back([&]() {
      while (!stop.load(std::memory_order_relaxed)) {
        latch.lock_shared();
        latch.unlock_shared();
      }
    });
  }
  std::thread writer([&]() {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    latch.lock();
    latch.unlock();
    writer_done.store(true);
  });
  // The writer must complete well within the test timeout.
  for (int i = 0; i < 500 && !writer_done.load(); i++) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  stop.store(true);
  writer.join();
  for (auto& r : readers) r.join();
  EXPECT_TRUE(writer_done.load());
}

TEST(RwLatchTest, ExclusiveSectionsAreMutuallyExclusive) {
  RwLatch latch;
  int counter = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; t++) {
    threads.emplace_back([&]() {
      for (int i = 0; i < 10000; i++) {
        WriteLatchGuard l(latch);
        counter++;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter, 40000);
}

TEST(RwLatchTest, ReadersSeeConsistentStateUnderWriter) {
  RwLatch latch;
  // Writer maintains the invariant a == b inside the exclusive section;
  // readers must never observe a != b.
  int64_t a = 0, b = 0;
  std::atomic<bool> stop{false};
  std::atomic<int> violations{0};
  std::thread writer([&]() {
    for (int i = 0; i < 20000; i++) {
      WriteLatchGuard l(latch);
      a++;
      b++;
    }
    stop.store(true);
  });
  std::vector<std::thread> readers;
  for (int t = 0; t < 2; t++) {
    readers.emplace_back([&]() {
      while (!stop.load(std::memory_order_relaxed)) {
        ReadLatchGuard l(latch);
        if (a != b) violations.fetch_add(1);
      }
    });
  }
  writer.join();
  for (auto& r : readers) r.join();
  EXPECT_EQ(violations.load(), 0);
}

}  // namespace
}  // namespace auxlsm
