// Query-processing tests: every combination of the §3.2 point-lookup
// optimizations must return the same answer; §4.3's validation methods must
// agree with each other and with the Eager ground truth.
#include <gtest/gtest.h>

#include <set>

#include "common/random.h"
#include "core/dataset.h"
#include "core/point_lookup.h"
#include "format/key_codec.h"

namespace auxlsm {
namespace {

EnvOptions TestEnv() {
  EnvOptions o;
  o.page_size = 1024;
  o.cache_pages = 1 << 16;
  o.disk_profile = DiskProfile::Null();
  return o;
}

TweetRecord MakeTweet(uint64_t id, uint64_t user, uint64_t time) {
  TweetRecord r;
  r.id = id;
  r.user_id = user;
  r.location = "NY";
  r.creation_time = time;
  r.message = std::string(50, 'x');
  return r;
}

// Loads a dataset with several components and some updates; returns expected
// ids per user bucket.
std::map<uint64_t, std::set<uint64_t>> Load(Dataset* ds) {
  std::map<uint64_t, std::set<uint64_t>> expected;
  std::map<uint64_t, uint64_t> current_user;
  uint64_t time = 0;
  for (uint64_t i = 1; i <= 400; i++) {
    const uint64_t user = i % 16;
    EXPECT_TRUE(ds->Upsert(MakeTweet(i, user, ++time)).ok());
    current_user[i] = user;
    if (i % 100 == 0) EXPECT_TRUE(ds->FlushAll().ok());
  }
  for (uint64_t i = 1; i <= 400; i += 5) {
    const uint64_t user = (i % 16) + 16;
    EXPECT_TRUE(ds->Upsert(MakeTweet(i, user, ++time)).ok());
    current_user[i] = user;
  }
  EXPECT_TRUE(ds->FlushAll().ok());
  for (const auto& [id, user] : current_user) expected[user].insert(id);
  return expected;
}

std::set<uint64_t> Ids(const QueryResult& res) {
  std::set<uint64_t> out;
  for (const auto& r : res.records) out.insert(r.id);
  return out;
}

struct LookupVariant {
  const char* name;
  SecondaryQueryOptions::LookupAlgo algo;
  bool stateful;
  bool blocked_bloom;
  bool pid;
  size_t batch_bytes;
};

class LookupVariantTest : public ::testing::TestWithParam<LookupVariant> {};

TEST_P(LookupVariantTest, AllVariantsReturnSameResult) {
  Env env(TestEnv());
  DatasetOptions o;
  o.strategy = MaintenanceStrategy::kEager;
  o.mem_budget_bytes = 1 << 30;  // manual flushes only
  Dataset ds(&env, o);
  const auto expected = Load(&ds);

  const LookupVariant v = GetParam();
  SecondaryQueryOptions q;
  q.lookup = v.algo;
  q.stateful_btree_lookup = v.stateful;
  q.use_blocked_bloom = v.blocked_bloom;
  q.propagate_component_id = v.pid;
  q.batch_memory_bytes = v.batch_bytes;

  for (uint64_t user : {0u, 7u, 16u, 31u}) {
    QueryResult res;
    ASSERT_TRUE(ds.QueryUserRange(user, user, q, &res).ok());
    auto it = expected.find(user);
    const std::set<uint64_t> want =
        it == expected.end() ? std::set<uint64_t>{} : it->second;
    EXPECT_EQ(Ids(res), want) << v.name << " user " << user;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Variants, LookupVariantTest,
    ::testing::Values(
        LookupVariant{"naive", SecondaryQueryOptions::LookupAlgo::kNaive,
                      false, false, false, 16u << 20},
        LookupVariant{"batch", SecondaryQueryOptions::LookupAlgo::kBatched,
                      false, false, false, 16u << 20},
        LookupVariant{"batch_sLookup",
                      SecondaryQueryOptions::LookupAlgo::kBatched, true, false,
                      false, 16u << 20},
        LookupVariant{"batch_sLookup_bBF",
                      SecondaryQueryOptions::LookupAlgo::kBatched, true, true,
                      false, 16u << 20},
        LookupVariant{"batch_sLookup_bBF_pID",
                      SecondaryQueryOptions::LookupAlgo::kBatched, true, true,
                      true, 16u << 20},
        LookupVariant{"tiny_batches",
                      SecondaryQueryOptions::LookupAlgo::kBatched, true, true,
                      false, 1u << 10}),
    [](const auto& info) { return info.param.name; });

TEST(ValidationMethodTest, DirectAndTimestampAgreeUnderUpdates) {
  Env env(TestEnv());
  DatasetOptions o;
  o.strategy = MaintenanceStrategy::kValidation;
  o.merge_repair = false;  // keep obsolete entries around
  o.mem_budget_bytes = 1 << 30;
  Dataset ds(&env, o);
  const auto expected = Load(&ds);

  for (uint64_t user : {3u, 19u}) {
    SecondaryQueryOptions direct;
    direct.validation = SecondaryQueryOptions::Validation::kDirect;
    QueryResult dres;
    ASSERT_TRUE(ds.QueryUserRange(user, user, direct, &dres).ok());

    SecondaryQueryOptions tsq;
    tsq.validation = SecondaryQueryOptions::Validation::kTimestamp;
    QueryResult tres;
    ASSERT_TRUE(ds.QueryUserRange(user, user, tsq, &tres).ok());

    auto it = expected.find(user);
    const std::set<uint64_t> want =
        it == expected.end() ? std::set<uint64_t>{} : it->second;
    EXPECT_EQ(Ids(dres), want) << "direct user " << user;
    EXPECT_EQ(Ids(tres), want) << "ts user " << user;
  }
}

TEST(ValidationMethodTest, ObsoleteEntriesAreFilteredNotReturned) {
  Env env(TestEnv());
  DatasetOptions o;
  o.strategy = MaintenanceStrategy::kValidation;
  o.merge_repair = false;
  o.mem_budget_bytes = 1 << 30;
  Dataset ds(&env, o);
  ASSERT_TRUE(ds.Upsert(MakeTweet(1, 5, 1)).ok());
  ASSERT_TRUE(ds.FlushAll().ok());
  ASSERT_TRUE(ds.Upsert(MakeTweet(1, 9, 2)).ok());  // moves user 5 -> 9
  ASSERT_TRUE(ds.FlushAll().ok());

  SecondaryQueryOptions q;
  QueryResult res;
  ASSERT_TRUE(ds.QueryUserRange(5, 5, q, &res).ok());
  EXPECT_EQ(res.records.size(), 0u);
  EXPECT_EQ(res.candidates, 1u);      // the obsolete entry surfaced...
  EXPECT_EQ(res.validated_out, 1u);   // ...and validation killed it
}

TEST(ValidationMethodTest, IndexOnlyTimestampValidation) {
  Env env(TestEnv());
  DatasetOptions o;
  o.strategy = MaintenanceStrategy::kValidation;
  o.merge_repair = false;
  o.mem_budget_bytes = 1 << 30;
  Dataset ds(&env, o);
  for (uint64_t i = 1; i <= 60; i++) {
    ASSERT_TRUE(ds.Upsert(MakeTweet(i, 4, i)).ok());
  }
  ASSERT_TRUE(ds.FlushAll().ok());
  for (uint64_t i = 1; i <= 60; i += 2) {
    ASSERT_TRUE(ds.Upsert(MakeTweet(i, 8, 100 + i)).ok());  // leave user 4
  }
  ASSERT_TRUE(ds.FlushAll().ok());

  SecondaryQueryOptions q;
  q.index_only = true;
  QueryResult res;
  ASSERT_TRUE(ds.QueryUserRange(4, 4, q, &res).ok());
  EXPECT_EQ(res.keys.size(), 30u);
  for (const auto& k : res.keys) {
    EXPECT_EQ(DecodeU64(k) % 2, 0u);  // only even (un-updated) ids remain
  }
}

TEST(ValidationMethodTest, DeletesInvalidateThroughPkIndexAntimatter) {
  Env env(TestEnv());
  DatasetOptions o;
  o.strategy = MaintenanceStrategy::kValidation;
  o.merge_repair = false;
  o.mem_budget_bytes = 1 << 30;
  Dataset ds(&env, o);
  ASSERT_TRUE(ds.Upsert(MakeTweet(1, 5, 1)).ok());
  ASSERT_TRUE(ds.FlushAll().ok());
  ASSERT_TRUE(ds.Delete(1).ok());
  ASSERT_TRUE(ds.FlushAll().ok());
  SecondaryQueryOptions q;
  QueryResult res;
  ASSERT_TRUE(ds.QueryUserRange(5, 5, q, &res).ok());
  EXPECT_EQ(res.records.size(), 0u);
  q.index_only = true;
  QueryResult ires;
  ASSERT_TRUE(ds.QueryUserRange(5, 5, q, &ires).ok());
  EXPECT_EQ(ires.keys.size(), 0u);
}

TEST(BulkPointLookupTest, RawModeSurfacesDeadEntries) {
  Env env(TestEnv());
  LsmTreeOptions topts;
  LsmTree tree(&env, topts);
  tree.Put(EncodeU64(1), "v", 1);
  ASSERT_TRUE(tree.Flush().ok());
  tree.PutAntimatter(EncodeU64(1), 2);
  ASSERT_TRUE(tree.Flush().ok());

  std::vector<FetchRequest> reqs{{EncodeU64(1), 0}};
  PointLookupOptions alive_opts;
  std::vector<FetchedEntry> out;
  ASSERT_TRUE(BulkPointLookup(tree, reqs, alive_opts, &out).ok());
  EXPECT_TRUE(out.empty());  // newest entry is anti-matter

  PointLookupOptions raw_opts;
  raw_opts.raw = true;
  out.clear();
  ASSERT_TRUE(BulkPointLookup(tree, reqs, raw_opts, &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_FALSE(out[0].alive);
  EXPECT_EQ(out[0].ts, 2u);
}

TEST(BulkPointLookupTest, StatsCountBloomAndBatches) {
  Env env(TestEnv());
  LsmTreeOptions topts;
  LsmTree tree(&env, topts);
  for (uint64_t i = 0; i < 100; i++) tree.Put(EncodeU64(i), "v", i + 1);
  ASSERT_TRUE(tree.Flush().ok());
  for (uint64_t i = 100; i < 200; i++) tree.Put(EncodeU64(i), "v", i + 1);
  ASSERT_TRUE(tree.Flush().ok());

  std::vector<FetchRequest> reqs;
  for (uint64_t i = 0; i < 200; i += 2) reqs.push_back({EncodeU64(i), 0});
  PointLookupOptions opts;
  opts.batch_memory_bytes = 32 * 10;  // 10 keys per batch
  std::vector<FetchedEntry> out;
  PointLookupStats stats;
  ASSERT_TRUE(BulkPointLookup(tree, reqs, opts, &out, &stats).ok());
  EXPECT_EQ(out.size(), 100u);
  EXPECT_EQ(stats.keys, 100u);
  EXPECT_EQ(stats.found, 100u);
  EXPECT_EQ(stats.batches, 10u);
  EXPECT_GT(stats.bloom_negatives, 0u);  // half the probes hit wrong component
}

TEST(BulkPointLookupTest, BatchedIoIsMoreSequentialThanNaive) {
  EnvOptions eo = TestEnv();
  eo.cache_pages = 0;  // observe raw I/O pattern
  eo.disk_profile = DiskProfile::Hdd();

  auto run = [&](bool batched) {
    Env env(eo);
    LsmTreeOptions topts;
    LsmTree tree(&env, topts);
    // Two overlapping components so sorted keys interleave between files.
    for (uint64_t i = 0; i < 2000; i += 2) {
      tree.Put(EncodeU64(i), std::string(100, 'v'), i + 1);
    }
    EXPECT_TRUE(tree.Flush().ok());
    for (uint64_t i = 1; i < 2000; i += 2) {
      tree.Put(EncodeU64(i), std::string(100, 'v'), 3000 + i);
    }
    EXPECT_TRUE(tree.Flush().ok());

    std::vector<FetchRequest> reqs;
    for (uint64_t i = 0; i < 2000; i += 3) reqs.push_back({EncodeU64(i), 0});
    PointLookupOptions opts;
    opts.batched = batched;
    const IoStats before = env.stats();
    std::vector<FetchedEntry> out;
    EXPECT_TRUE(BulkPointLookup(tree, reqs, opts, &out).ok());
    EXPECT_EQ(out.size(), reqs.size());
    return env.stats() - before;
  };

  const IoStats naive = run(false);
  const IoStats batched = run(true);
  EXPECT_LT(batched.random_reads, naive.random_reads);
}

TEST(BulkPointLookupTest, BatchedPathSortsUnsortedRequests) {
  // The §3.2 batched algorithm promises per-component probes in ascending
  // key order; since it now sorts each batch itself, a shuffled request
  // vector must produce exactly the I/O pattern of a pre-sorted one.
  EnvOptions eo = TestEnv();
  eo.cache_pages = 0;  // observe raw I/O pattern
  eo.disk_profile = DiskProfile::Hdd();

  auto run = [&](bool shuffle) {
    Env env(eo);
    LsmTreeOptions topts;
    LsmTree tree(&env, topts);
    for (uint64_t i = 0; i < 2000; i += 2) {
      tree.Put(EncodeU64(i), std::string(100, 'v'), i + 1);
    }
    EXPECT_TRUE(tree.Flush().ok());
    for (uint64_t i = 1; i < 2000; i += 2) {
      tree.Put(EncodeU64(i), std::string(100, 'v'), 3000 + i);
    }
    EXPECT_TRUE(tree.Flush().ok());

    std::vector<FetchRequest> reqs;
    for (uint64_t i = 0; i < 2000; i += 3) reqs.push_back({EncodeU64(i), 0});
    if (shuffle) {
      Random rng(42);
      for (size_t i = reqs.size() - 1; i > 0; i--) {
        std::swap(reqs[i], reqs[rng.Uniform(i + 1)]);
      }
    }
    PointLookupOptions opts;  // batched, one batch (default batch memory)
    const IoStats before = env.stats();
    std::vector<FetchedEntry> out;
    EXPECT_TRUE(BulkPointLookup(tree, reqs, opts, &out).ok());
    EXPECT_EQ(out.size(), reqs.size());
    return env.stats() - before;
  };

  const IoStats sorted = run(false);
  const IoStats shuffled = run(true);
  EXPECT_EQ(shuffled.random_reads, sorted.random_reads);
  EXPECT_EQ(shuffled.pages_read, sorted.pages_read);
}

TEST(QuerySortTest, SortedResultsAreInPkOrder) {
  Env env(TestEnv());
  DatasetOptions o;
  o.strategy = MaintenanceStrategy::kEager;
  o.mem_budget_bytes = 1 << 30;
  Dataset ds(&env, o);
  Load(&ds);
  SecondaryQueryOptions q;
  q.sort_results_by_pk = true;
  QueryResult res;
  ASSERT_TRUE(ds.QueryUserRange(0, 15, q, &res).ok());
  for (size_t i = 1; i < res.records.size(); i++) {
    EXPECT_LT(res.records[i - 1].id, res.records[i].id);
  }
}

}  // namespace
}  // namespace auxlsm
