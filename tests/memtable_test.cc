#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "mem/memtable.h"

namespace auxlsm {
namespace {

TEST(MemtableTest, PutGetOverride) {
  Memtable m;
  m.Put("k1", "v1", 1, false);
  OwnedEntry e;
  ASSERT_TRUE(m.Get("k1", &e).ok());
  EXPECT_EQ(e.value, "v1");
  EXPECT_EQ(e.ts, 1u);
  m.Put("k1", "v2", 2, false);
  ASSERT_TRUE(m.Get("k1", &e).ok());
  EXPECT_EQ(e.value, "v2");  // blind override
  EXPECT_EQ(m.num_entries(), 1u);
}

TEST(MemtableTest, AntimatterStoredAsEntry) {
  Memtable m;
  m.Put("k", "v", 1, false);
  m.Put("k", "", 2, true);
  OwnedEntry e;
  ASSERT_TRUE(m.Get("k", &e).ok());
  EXPECT_TRUE(e.antimatter);
}

TEST(MemtableTest, GetMissing) {
  Memtable m;
  OwnedEntry e;
  EXPECT_TRUE(m.Get("nope", &e).IsNotFound());
  EXPECT_FALSE(m.Contains("nope"));
}

TEST(MemtableTest, TimestampBoundsTrackAllWrites) {
  Memtable m;
  m.Put("a", "1", 10, false);
  m.Put("b", "2", 5, false);
  m.Put("a", "3", 20, false);
  EXPECT_EQ(m.min_ts(), 5u);
  EXPECT_EQ(m.max_ts(), 20u);
}

TEST(MemtableTest, SnapshotSorted) {
  Memtable m;
  m.Put("c", "3", 3, false);
  m.Put("a", "1", 1, false);
  m.Put("b", "2", 2, true);
  const auto snap = m.Snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].key, "a");
  EXPECT_EQ(snap[1].key, "b");
  EXPECT_TRUE(snap[1].antimatter);
  EXPECT_EQ(snap[2].key, "c");
}

TEST(MemtableTest, SnapshotRangeInclusive) {
  Memtable m;
  for (char c = 'a'; c <= 'f'; c++) {
    m.Put(std::string(1, c), "v", 1, false);
  }
  const auto snap = m.SnapshotRange("b", "d");
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap.front().key, "b");
  EXPECT_EQ(snap.back().key, "d");
  EXPECT_EQ(m.SnapshotRange("x", "z").size(), 0u);
  EXPECT_EQ(m.SnapshotRange("", "").size(), 6u);  // unbounded
}

TEST(MemtableTest, EraseIfTsOnlyMatchingTimestamp) {
  Memtable m;
  m.Put("k", "v", 7, false);
  EXPECT_FALSE(m.EraseIfTs("k", 8));
  EXPECT_TRUE(m.Contains("k"));
  EXPECT_TRUE(m.EraseIfTs("k", 7));
  EXPECT_FALSE(m.Contains("k"));
}

TEST(MemtableTest, RestorePreviousEntry) {
  Memtable m;
  m.Put("k", "old", 1, false);
  m.Put("k", "new", 2, false);
  m.Restore("k", MemEntry{"old", 1, false});
  OwnedEntry e;
  ASSERT_TRUE(m.Get("k", &e).ok());
  EXPECT_EQ(e.value, "old");
  EXPECT_EQ(e.ts, 1u);
}

TEST(MemtableTest, MemoryAccountingGrowsAndClears) {
  Memtable m;
  EXPECT_EQ(m.ApproximateMemory(), 0u);
  m.Put("key", std::string(1000, 'v'), 1, false);
  const size_t after_put = m.ApproximateMemory();
  EXPECT_GT(after_put, 1000u);
  m.Put("key", "tiny", 2, false);  // replacement shrinks accounting
  EXPECT_LT(m.ApproximateMemory(), after_put);
  m.Clear();
  EXPECT_EQ(m.ApproximateMemory(), 0u);
  EXPECT_EQ(m.num_entries(), 0u);
  EXPECT_EQ(m.min_ts(), 0u);
}

TEST(MemtableTest, ConcurrentPutAndGet) {
  Memtable m;
  const int kThreads = 4, kPerThread = 5000;
  std::atomic<bool> stop{false};
  std::thread reader([&]() {
    while (!stop.load(std::memory_order_relaxed)) {
      OwnedEntry e;
      (void)m.Get("t0-00100", &e);
      auto snap = m.SnapshotRange("t1-", "t1-99999");
      for (size_t i = 1; i < snap.size(); i++) {
        ASSERT_LT(snap[i - 1].key, snap[i].key);
      }
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; t++) {
    writers.emplace_back([&m, t]() {
      for (int i = 0; i < kPerThread; i++) {
        char key[16];
        std::snprintf(key, sizeof(key), "t%d-%05d", t, i);
        m.Put(key, "value", uint64_t(t * kPerThread + i + 1), false);
      }
    });
  }
  for (auto& th : writers) th.join();
  stop.store(true);
  reader.join();
  EXPECT_EQ(m.num_entries(), uint64_t(kThreads * kPerThread));
  auto snap = m.Snapshot();
  ASSERT_EQ(snap.size(), size_t(kThreads * kPerThread));
  for (size_t i = 1; i < snap.size(); i++) {
    EXPECT_LT(snap[i - 1].key, snap[i].key);
  }
  EXPECT_GT(m.ApproximateMemory(), size_t(kThreads * kPerThread) * 10);
  EXPECT_EQ(m.min_ts(), 1u);
  EXPECT_EQ(m.max_ts(), uint64_t(kThreads * kPerThread));
}

}  // namespace
}  // namespace auxlsm
