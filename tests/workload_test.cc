#include <gtest/gtest.h>

#include <set>

#include "workload/driver.h"
#include "workload/tweet_gen.h"

namespace auxlsm {
namespace {

EnvOptions TestEnv() {
  EnvOptions o;
  o.page_size = 1024;
  o.cache_pages = 1 << 16;
  o.disk_profile = DiskProfile::Null();
  return o;
}

TEST(TweetGeneratorTest, RecordShapeMatchesPaper) {
  TweetGenerator gen;
  std::set<uint64_t> ids;
  for (int i = 0; i < 500; i++) {
    const TweetRecord r = gen.Next();
    EXPECT_LT(r.user_id, 100000u);
    EXPECT_GE(r.message.size(), 450u);
    EXPECT_LE(r.message.size(), 550u);
    EXPECT_EQ(r.location.size(), 2u);
    ids.insert(r.id);
  }
  EXPECT_EQ(ids.size(), 500u);  // random 64-bit keys: unique w.h.p.
  // creation_time is monotonically increasing.
  TweetGenerator gen2;
  uint64_t prev = 0;
  for (int i = 0; i < 100; i++) {
    const TweetRecord r = gen2.Next();
    EXPECT_GT(r.creation_time, prev);
    prev = r.creation_time;
  }
}

TEST(TweetGeneratorTest, SequentialIdsOption) {
  TweetGenOptions o;
  o.sequential_ids = true;
  TweetGenerator gen(o);
  EXPECT_EQ(gen.Next().id, 1u);
  EXPECT_EQ(gen.Next().id, 2u);
  EXPECT_EQ(gen.Next().id, 3u);
}

TEST(TweetGeneratorTest, UpdateReusesIdWithNewTime) {
  TweetGenerator gen;
  const TweetRecord first = gen.Next();
  const TweetRecord updated = gen.Update(0);
  EXPECT_EQ(updated.id, first.id);
  EXPECT_GT(updated.creation_time, first.creation_time);
}

TEST(TweetGeneratorTest, DeterministicAcrossSeeds) {
  TweetGenOptions o;
  o.seed = 123;
  TweetGenerator a(o), b(o);
  for (int i = 0; i < 50; i++) {
    EXPECT_EQ(a.Next().id, b.Next().id);
  }
}

TEST(InsertWorkloadTest, DuplicateRatioProducesDuplicates) {
  Env env(TestEnv());
  DatasetOptions o;
  o.strategy = MaintenanceStrategy::kEager;
  o.mem_budget_bytes = 256 << 10;
  Dataset ds(&env, o);
  TweetGenerator gen;
  InsertWorkloadOptions w;
  w.num_ops = 2000;
  w.duplicate_ratio = 0.5;
  WorkloadReport report;
  ASSERT_TRUE(RunInsertWorkload(&ds, &gen, w, &report).ok());
  EXPECT_EQ(report.ops, 2000u);
  EXPECT_GT(report.duplicate_or_update_ops, 700u);
  EXPECT_LT(report.duplicate_or_update_ops, 1300u);
  EXPECT_EQ(ds.ingest_stats().duplicates_ignored,
            report.duplicate_or_update_ops);
  EXPECT_EQ(ds.num_records(), report.new_records);
}

TEST(UpsertWorkloadTest, UpdateRatioRespected) {
  Env env(TestEnv());
  DatasetOptions o;
  o.strategy = MaintenanceStrategy::kValidation;
  o.mem_budget_bytes = 256 << 10;
  Dataset ds(&env, o);
  TweetGenerator gen;
  UpsertWorkloadOptions w;
  w.num_ops = 2000;
  w.update_ratio = 0.3;
  WorkloadReport report;
  ASSERT_TRUE(RunUpsertWorkload(&ds, &gen, w, &report).ok());
  EXPECT_EQ(report.ops, 2000u);
  EXPECT_GT(report.duplicate_or_update_ops, 400u);
  EXPECT_LT(report.duplicate_or_update_ops, 800u);
  EXPECT_EQ(ds.num_records(), report.new_records);
}

TEST(UpsertWorkloadTest, ZipfSkewsUpdatesTowardRecentKeys) {
  Env env(TestEnv());
  DatasetOptions o;
  o.strategy = MaintenanceStrategy::kValidation;
  o.mem_budget_bytes = 1 << 30;
  Dataset ds(&env, o);
  TweetGenerator gen;
  ASSERT_TRUE(LoadRecords(&ds, &gen, 1000).ok());
  // Zipf updates should hit recent history indexes far more often; verify
  // statistically by regenerating the same distribution.
  ZipfGenerator z(1000, 0.99, 7);
  uint64_t recent = 0;
  for (int i = 0; i < 2000; i++) {
    if (z.Next() < 100) recent++;  // rank<100 => 100 most recent keys
  }
  EXPECT_GT(recent, 600u);

  UpsertWorkloadOptions w;
  w.num_ops = 500;
  w.update_ratio = 1.0;
  w.distribution = UpdateDistribution::kZipf;
  WorkloadReport report;
  ASSERT_TRUE(RunUpsertWorkload(&ds, &gen, w, &report).ok());
  EXPECT_EQ(report.duplicate_or_update_ops, 500u);
  EXPECT_EQ(ds.num_records(), 1000u);  // updates never add records
}

TEST(WorkloadReportTest, TracksSimulatedIo) {
  EnvOptions eo = TestEnv();
  eo.disk_profile = DiskProfile::Hdd();
  Env env(eo);
  DatasetOptions o;
  o.strategy = MaintenanceStrategy::kEager;
  o.mem_budget_bytes = 64 << 10;
  Dataset ds(&env, o);
  TweetGenerator gen;
  UpsertWorkloadOptions w;
  w.num_ops = 1000;
  w.update_ratio = 0.5;
  WorkloadReport report;
  ASSERT_TRUE(RunUpsertWorkload(&ds, &gen, w, &report).ok());
  EXPECT_GT(report.simulated_io_seconds, 0.0);
  EXPECT_GT(report.elapsed_seconds, 0.0);
}

}  // namespace
}  // namespace auxlsm
