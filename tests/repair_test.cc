// Index repair tests (§4.4 / §6.5): merge repair, standalone repair, the
#include "core/deleted_key.h"
// repairedTS pruning bookkeeping, the Bloom-filter optimization, DELI-style
// primary repair, and deleted-key merges.
#include <gtest/gtest.h>

#include <set>

#include "core/dataset.h"
#include "format/key_codec.h"

namespace auxlsm {
namespace {

EnvOptions TestEnv() {
  EnvOptions o;
  o.page_size = 1024;
  o.cache_pages = 1 << 16;
  o.disk_profile = DiskProfile::Null();
  return o;
}

TweetRecord MakeTweet(uint64_t id, uint64_t user, uint64_t time) {
  TweetRecord r;
  r.id = id;
  r.user_id = user;
  r.location = "TX";
  r.creation_time = time;
  r.message = std::string(40, 'm');
  return r;
}

DatasetOptions ValidationOpts(bool merge_repair, bool bloom_opt = false) {
  DatasetOptions o;
  o.strategy = MaintenanceStrategy::kValidation;
  o.merge_repair = merge_repair;
  o.repair_bloom_opt = bloom_opt;
  o.correlated_merges = bloom_opt;  // the bloom opt needs correlated merges
  o.mem_budget_bytes = 1 << 30;
  return o;
}

// Counts live (bitmap-valid, non-antimatter) entries across the secondary
// index's disk components.
uint64_t LiveSecondaryEntries(Dataset* ds) {
  uint64_t live = 0;
  for (const auto& c : ds->secondary(0)->tree->Components()) {
    auto it = c->tree().NewIterator();
    EXPECT_TRUE(it.SeekToFirst().ok());
    while (it.Valid()) {
      if (!it.antimatter() && c->EntryValid(it.ordinal())) live++;
      EXPECT_TRUE(it.Next().ok());
    }
  }
  return live;
}

TEST(MergeRepairTest, ObsoleteEntriesGetBitmapped) {
  Env env(TestEnv());
  Dataset ds(&env, ValidationOpts(/*merge_repair=*/false));
  for (uint64_t i = 1; i <= 100; i++) {
    ASSERT_TRUE(ds.Upsert(MakeTweet(i, 1, i)).ok());
  }
  ASSERT_TRUE(ds.FlushAll().ok());
  // Update half the records to a different user: 50 obsolete entries.
  for (uint64_t i = 1; i <= 100; i += 2) {
    ASSERT_TRUE(ds.Upsert(MakeTweet(i, 2, 200 + i)).ok());
  }
  ASSERT_TRUE(ds.FlushAll().ok());
  EXPECT_EQ(LiveSecondaryEntries(&ds), 150u);  // 100 old + 50 new

  // Merge-repair everything.
  auto picked = ds.secondary(0)->tree->Components();
  ASSERT_TRUE(RunMergeRepair(&ds, ds.secondary(0), picked).ok());
  EXPECT_EQ(ds.secondary(0)->tree->NumDiskComponents(), 1u);
  EXPECT_EQ(LiveSecondaryEntries(&ds), 100u);  // obsolete ones bitmapped

  // repairedTS advanced to cover the pk index components.
  const auto comp = ds.secondary(0)->tree->Components()[0];
  Timestamp max_pk_ts = 0;
  for (const auto& c : ds.primary_key_index()->Components()) {
    max_pk_ts = std::max(max_pk_ts, c->id().max_ts);
  }
  EXPECT_EQ(comp->repaired_ts(), max_pk_ts);
}

TEST(MergeRepairTest, PhysicalRemovalAtNextMerge) {
  Env env(TestEnv());
  Dataset ds(&env, ValidationOpts(false));
  for (uint64_t i = 1; i <= 50; i++) {
    ASSERT_TRUE(ds.Upsert(MakeTweet(i, 1, i)).ok());
  }
  ASSERT_TRUE(ds.FlushAll().ok());
  for (uint64_t i = 1; i <= 50; i++) {
    ASSERT_TRUE(ds.Upsert(MakeTweet(i, 2, 100 + i)).ok());
  }
  ASSERT_TRUE(ds.FlushAll().ok());
  auto picked = ds.secondary(0)->tree->Components();
  ASSERT_TRUE(RunMergeRepair(&ds, ds.secondary(0), picked).ok());
  const uint64_t entries_after_repair =
      ds.secondary(0)->tree->Components()[0]->num_entries();
  EXPECT_EQ(entries_after_repair, 100u);  // still physically present
  // The invalid entries are physically removed by the next merge.
  ASSERT_TRUE(ds.Upsert(MakeTweet(1000, 3, 1000)).ok());
  ASSERT_TRUE(ds.FlushAll().ok());
  ASSERT_TRUE(ds.secondary(0)->tree->MergeAll().ok());
  EXPECT_EQ(ds.secondary(0)->tree->Components()[0]->num_entries(), 51u);
}

TEST(StandaloneRepairTest, BuildsBitmapWithoutMerging) {
  Env env(TestEnv());
  Dataset ds(&env, ValidationOpts(false));
  for (uint64_t i = 1; i <= 60; i++) {
    ASSERT_TRUE(ds.Upsert(MakeTweet(i, 1, i)).ok());
  }
  ASSERT_TRUE(ds.FlushAll().ok());
  for (uint64_t i = 1; i <= 60; i += 3) {
    ASSERT_TRUE(ds.Upsert(MakeTweet(i, 2, 100 + i)).ok());
  }
  ASSERT_TRUE(ds.FlushAll().ok());

  const size_t comps_before = ds.secondary(0)->tree->NumDiskComponents();
  ASSERT_TRUE(ds.RepairAllSecondaries().ok());
  EXPECT_EQ(ds.secondary(0)->tree->NumDiskComponents(), comps_before);
  EXPECT_EQ(LiveSecondaryEntries(&ds), 60u);
}

TEST(StandaloneRepairTest, RepairedTsPrunesSecondRepair) {
  Env env(TestEnv());
  Dataset ds(&env, ValidationOpts(false));
  for (uint64_t i = 1; i <= 40; i++) {
    ASSERT_TRUE(ds.Upsert(MakeTweet(i, 1, i)).ok());
  }
  ASSERT_TRUE(ds.FlushAll().ok());
  ASSERT_TRUE(ds.RepairAllSecondaries().ok());
  const Timestamp ts1 =
      ds.secondary(0)->tree->Components()[0]->repaired_ts();
  EXPECT_GT(ts1, 0u);
  // No new data: a second repair keeps the repairedTS (nothing unpruned).
  ASSERT_TRUE(ds.RepairAllSecondaries().ok());
  EXPECT_EQ(ds.secondary(0)->tree->Components()[0]->repaired_ts(), ts1);
  // New data advances it again.
  for (uint64_t i = 100; i <= 120; i++) {
    ASSERT_TRUE(ds.Upsert(MakeTweet(i, 1, i)).ok());
  }
  ASSERT_TRUE(ds.FlushAll().ok());
  ASSERT_TRUE(ds.RepairAllSecondaries().ok());
  EXPECT_GT(ds.secondary(0)->tree->Components().back()->repaired_ts(), ts1);
}

TEST(RepairTest, QueriesCorrectAfterRepair) {
  Env env(TestEnv());
  Dataset ds(&env, ValidationOpts(true));
  std::set<uint64_t> user2;
  for (uint64_t i = 1; i <= 200; i++) {
    ASSERT_TRUE(ds.Upsert(MakeTweet(i, 1, i)).ok());
  }
  ASSERT_TRUE(ds.FlushAll().ok());
  for (uint64_t i = 1; i <= 200; i += 4) {
    ASSERT_TRUE(ds.Upsert(MakeTweet(i, 2, 500 + i)).ok());
    user2.insert(i);
  }
  ASSERT_TRUE(ds.FlushAll().ok());
  ASSERT_TRUE(ds.RepairAllSecondaries().ok());

  SecondaryQueryOptions q;
  QueryResult res;
  ASSERT_TRUE(ds.QueryUserRange(2, 2, q, &res).ok());
  std::set<uint64_t> got;
  for (const auto& r : res.records) got.insert(r.id);
  EXPECT_EQ(got, user2);
  // After repair, validation filters nothing out for this query.
  EXPECT_EQ(res.validated_out, 0u);
}

TEST(RepairBloomOptTest, SameOutcomeWithAndWithoutBloomOpt) {
  for (bool bloom_opt : {false, true}) {
    Env env(TestEnv());
    Dataset ds(&env, ValidationOpts(/*merge_repair=*/true, bloom_opt));
    for (uint64_t i = 1; i <= 150; i++) {
      ASSERT_TRUE(ds.Upsert(MakeTweet(i, 1, i)).ok());
    }
    ASSERT_TRUE(ds.FlushAll().ok());
    for (uint64_t i = 1; i <= 150; i += 2) {
      ASSERT_TRUE(ds.Upsert(MakeTweet(i, 2, 300 + i)).ok());
    }
    ASSERT_TRUE(ds.FlushAll().ok());
    ASSERT_TRUE(ds.RepairAllSecondaries().ok());
    EXPECT_EQ(LiveSecondaryEntries(&ds), 150u) << "bloom_opt=" << bloom_opt;

    SecondaryQueryOptions q;
    QueryResult res;
    ASSERT_TRUE(ds.QueryUserRange(1, 1, q, &res).ok());
    EXPECT_EQ(res.records.size(), 75u) << "bloom_opt=" << bloom_opt;
  }
}

TEST(PrimaryRepairTest, DeliCleansObsoleteEntries) {
  Env env(TestEnv());
  DatasetOptions o = ValidationOpts(false);
  Dataset ds(&env, o);
  for (uint64_t i = 1; i <= 80; i++) {
    ASSERT_TRUE(ds.Upsert(MakeTweet(i, 1, i)).ok());
  }
  ASSERT_TRUE(ds.FlushAll().ok());
  for (uint64_t i = 1; i <= 80; i += 2) {
    ASSERT_TRUE(ds.Upsert(MakeTweet(i, 2, 100 + i)).ok());
  }
  ASSERT_TRUE(ds.FlushAll().ok());
  ASSERT_TRUE(ds.PrimaryRepair(/*with_merge=*/false).ok());
  EXPECT_EQ(LiveSecondaryEntries(&ds), 80u);

  SecondaryQueryOptions q;
  QueryResult res;
  ASSERT_TRUE(ds.QueryUserRange(1, 1, q, &res).ok());
  EXPECT_EQ(res.records.size(), 40u);
}

TEST(PrimaryRepairTest, WithMergeCollapsesPrimaryComponents) {
  Env env(TestEnv());
  Dataset ds(&env, ValidationOpts(false));
  for (int round = 0; round < 3; round++) {
    for (uint64_t i = 1; i <= 30; i++) {
      ASSERT_TRUE(
          ds.Upsert(MakeTweet(i + round * 100, 1, i + round * 100)).ok());
    }
    ASSERT_TRUE(ds.FlushAll().ok());
  }
  EXPECT_GT(ds.primary()->NumDiskComponents(), 1u);
  ASSERT_TRUE(ds.PrimaryRepair(/*with_merge=*/true).ok());
  EXPECT_EQ(ds.primary()->NumDiskComponents(), 1u);
}

TEST(DeletedKeyTest, CompanionTreeTracksRewrites) {
  Env env(TestEnv());
  DatasetOptions o;
  o.strategy = MaintenanceStrategy::kDeletedKeyBtree;
  o.mem_budget_bytes = 1 << 30;
  Dataset ds(&env, o);
  ASSERT_TRUE(ds.Upsert(MakeTweet(1, 5, 1)).ok());
  ASSERT_TRUE(ds.Upsert(MakeTweet(1, 9, 2)).ok());
  ASSERT_NE(ds.secondary(0)->deleted_keys, nullptr);
  LookupResult res;
  ASSERT_TRUE(
      ds.secondary(0)->deleted_keys->GetRaw(EncodeU64(1), &res).ok());
  EXPECT_TRUE(res.found);
  EXPECT_EQ(res.entry.ts, 2u);
}

TEST(DeletedKeyTest, MergeDropsEntriesInvalidatedByDeletedKeys) {
  Env env(TestEnv());
  DatasetOptions o;
  o.strategy = MaintenanceStrategy::kDeletedKeyBtree;
  o.mem_budget_bytes = 1 << 30;
  Dataset ds(&env, o);
  for (uint64_t i = 1; i <= 50; i++) {
    ASSERT_TRUE(ds.Upsert(MakeTweet(i, 1, i)).ok());
  }
  ASSERT_TRUE(ds.FlushAll().ok());
  for (uint64_t i = 1; i <= 50; i += 2) {
    ASSERT_TRUE(ds.Upsert(MakeTweet(i, 2, 100 + i)).ok());
  }
  ASSERT_TRUE(ds.FlushAll().ok());
  // Force a deleted-key-validating merge of both secondary components.
  ASSERT_TRUE(
      RunDeletedKeyMerge(&ds, ds.secondary(0), MergeRange{0, 2}).ok());
  EXPECT_EQ(ds.secondary(0)->tree->NumDiskComponents(), 1u);
  // 25 old entries invalidated; 25 + 50 remain... the 25 updated entries'
  // old versions are dropped: 50 originals - 25 dropped + 25 new = 50.
  EXPECT_EQ(ds.secondary(0)->tree->Components()[0]->num_entries(), 50u);

  SecondaryQueryOptions q;
  QueryResult res;
  ASSERT_TRUE(ds.QueryUserRange(1, 1, q, &res).ok());
  EXPECT_EQ(res.records.size(), 25u);
}

}  // namespace
}  // namespace auxlsm
