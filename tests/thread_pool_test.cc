// ThreadPool (exec/thread_pool.h): submission, results, exception
// propagation, helping, and shutdown draining.
#include "exec/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>

#include "common/status.h"

namespace auxlsm {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasksAndReturnsResults) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4u);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 100; i++) {
    futures.push_back(pool.Submit([i]() { return i * i; }));
  }
  for (int i = 0; i < 100; i++) {
    EXPECT_EQ(futures[i].get(), i * i);
  }
}

TEST(ThreadPoolTest, AtLeastOneWorkerEvenWhenZeroRequested) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  EXPECT_EQ(pool.Submit([]() { return 7; }).get(), 7);
}

TEST(ThreadPoolTest, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(2);
  auto f = pool.Submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
  // The worker survives the throwing task.
  EXPECT_EQ(pool.Submit([]() { return 1; }).get(), 1);
}

TEST(ThreadPoolTest, StatusResultsCarryErrors) {
  ThreadPool pool(2);
  auto ok = pool.Submit([]() { return Status::OK(); });
  auto bad = pool.Submit([]() { return Status::IOError("disk gone"); });
  EXPECT_TRUE(ok.get().ok());
  EXPECT_TRUE(bad.get().IsIOError());
}

TEST(ThreadPoolTest, TasksRunConcurrently) {
  ThreadPool pool(2);
  // Two tasks that each wait for the other to start can only finish if they
  // run on distinct workers.
  std::atomic<int> started{0};
  auto wait_for_both = [&]() {
    started.fetch_add(1);
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (started.load() < 2) {
      if (std::chrono::steady_clock::now() > deadline) return false;
      std::this_thread::yield();
    }
    return true;
  };
  auto a = pool.Submit(wait_for_both);
  auto b = pool.Submit(wait_for_both);
  EXPECT_TRUE(a.get());
  EXPECT_TRUE(b.get());
}

TEST(ThreadPoolTest, DestructorDrainsQueuedTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 50; i++) {
      pool.Submit([&ran]() { ran.fetch_add(1); });
    }
  }  // destructor joins after running everything queued
  EXPECT_EQ(ran.load(), 50);
}

TEST(ThreadPoolTest, HelpingRunsQueuedTasksOnCallerThread) {
  ThreadPool pool(1);
  std::atomic<bool> release{false};
  std::atomic<bool> blocker_started{false};
  // Occupy the lone worker...
  auto blocker = pool.Submit([&release, &blocker_started]() {
    blocker_started.store(true);
    while (!release.load()) std::this_thread::yield();
  });
  // ...wait until the worker owns it (so this thread cannot pop it below)...
  while (!blocker_started.load()) std::this_thread::yield();
  std::atomic<int> ran{0};
  for (int i = 0; i < 10; i++) {
    pool.Submit([&ran]() { ran.fetch_add(1); });
  }
  // ...then drain its queue from this thread.
  while (pool.RunOneQueued()) {
  }
  EXPECT_EQ(ran.load(), 10);
  release.store(true);
  blocker.get();
}

}  // namespace
}  // namespace auxlsm
