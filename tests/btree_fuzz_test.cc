// Randomized differential tests: the disk B+-tree, its iterators, and the
// stateful cursor must agree with a std::map reference under random key
// shapes (variable lengths, shared prefixes, random bytes) and random page
// sizes.
#include <gtest/gtest.h>

#include <map>

#include "btree/btree_builder.h"
#include "btree/btree_cursor.h"
#include "common/clock.h"
#include "common/random.h"

namespace auxlsm {
namespace {

struct FuzzCase {
  size_t page_size;
  int n_keys;
  int max_key_len;
  int max_val_len;
  uint64_t seed;
};

class BtreeFuzzTest : public ::testing::TestWithParam<FuzzCase> {};

std::string RandomKey(Random* rng, int max_len) {
  // Biased toward shared prefixes to stress separator handling.
  std::string key = rng->Bernoulli(0.5) ? "prefix/" : "";
  const int len = 1 + static_cast<int>(rng->Uniform(max_len));
  for (int i = 0; i < len; i++) {
    key.push_back(static_cast<char>('a' + rng->Uniform(8)));
  }
  return key;
}

TEST_P(BtreeFuzzTest, MatchesReferenceMap) {
  const FuzzCase c = GetParam();
  EnvOptions eo;
  eo.page_size = c.page_size;
  eo.cache_pages = 1 << 16;
  eo.disk_profile = DiskProfile::Null();
  Env env(eo);
  Random rng(c.seed);

  std::map<std::string, std::pair<std::string, Timestamp>> model;
  for (int i = 0; i < c.n_keys; i++) {
    std::string v(rng.Uniform(c.max_val_len + 1), 'v');
    model[RandomKey(&rng, c.max_key_len)] = {v, Timestamp(i + 1)};
  }

  BtreeBuilder b(&env);
  for (const auto& [k, ve] : model) {
    ASSERT_TRUE(b.Add(k, ve.first, ve.second, false).ok());
  }
  BtreeMeta meta;
  ASSERT_TRUE(b.Finish(&meta).ok());
  ASSERT_EQ(meta.num_entries, model.size());
  Btree tree(&env, meta);

  // 1. Full iteration matches in order, content, and ordinals.
  {
    auto it = tree.NewIterator(8);
    ASSERT_TRUE(it.SeekToFirst().ok());
    uint64_t ordinal = 0;
    for (const auto& [k, ve] : model) {
      ASSERT_TRUE(it.Valid());
      EXPECT_EQ(it.key().ToString(), k);
      EXPECT_EQ(it.value().ToString(), ve.first);
      EXPECT_EQ(it.ts(), ve.second);
      EXPECT_EQ(it.ordinal(), ordinal++);
      ASSERT_TRUE(it.Next().ok());
    }
    EXPECT_FALSE(it.Valid());
  }

  // 2. Point lookups: every present key hits; random keys match the model.
  for (const auto& [k, ve] : model) {
    LeafEntry e;
    std::string back;
    ASSERT_TRUE(tree.Get(k, &e, &back).ok()) << k;
    EXPECT_EQ(e.value.ToString(), ve.first);
  }
  for (int i = 0; i < 500; i++) {
    const std::string k = RandomKey(&rng, c.max_key_len);
    LeafEntry e;
    std::string back;
    const Status st = tree.Get(k, &e, &back);
    EXPECT_EQ(st.ok(), model.count(k) > 0) << k;
  }

  // 3. Seek = lower_bound semantics on random targets.
  auto it = tree.NewIterator();
  for (int i = 0; i < 300; i++) {
    const std::string target = RandomKey(&rng, c.max_key_len);
    ASSERT_TRUE(it.Seek(target).ok());
    auto mit = model.lower_bound(target);
    if (mit == model.end()) {
      EXPECT_FALSE(it.Valid()) << target;
    } else {
      ASSERT_TRUE(it.Valid()) << target;
      EXPECT_EQ(it.key().ToString(), mit->first);
    }
  }

  // 4. Stateful cursor agrees with the model on a random probe sequence.
  StatefulBtreeCursor cursor(&tree);
  for (int i = 0; i < 1000; i++) {
    const std::string k = RandomKey(&rng, c.max_key_len);
    LeafEntry e;
    std::string back;
    bool found = false;
    ASSERT_TRUE(cursor.SeekExact(k, &e, &back, &found).ok());
    EXPECT_EQ(found, model.count(k) > 0) << k;
    if (found) EXPECT_EQ(e.value.ToString(), model[k].first);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BtreeFuzzTest,
    ::testing::Values(FuzzCase{256, 200, 12, 20, 1},
                      FuzzCase{512, 2000, 20, 40, 2},
                      FuzzCase{1024, 5000, 8, 100, 3},
                      FuzzCase{4096, 8000, 30, 200, 4},
                      FuzzCase{512, 1, 5, 5, 5},
                      FuzzCase{256, 3000, 40, 0, 6}));

}  // namespace
}  // namespace auxlsm
