#include <gtest/gtest.h>

#include "bloom/blocked_bloom_filter.h"
#include "bloom/bloom_filter.h"
#include "common/random.h"

namespace auxlsm {
namespace {

std::vector<uint64_t> MakeHashes(size_t n, uint64_t seed) {
  Random rng(seed);
  std::vector<uint64_t> out;
  out.reserve(n);
  for (size_t i = 0; i < n; i++) out.push_back(rng.Next());
  return out;
}

TEST(BloomFilterTest, NoFalseNegatives) {
  const auto keys = MakeHashes(10000, 1);
  BloomFilter f(keys, 0.01);
  for (uint64_t k : keys) EXPECT_TRUE(f.MayContain(k));
}

TEST(BlockedBloomFilterTest, NoFalseNegatives) {
  const auto keys = MakeHashes(10000, 2);
  BlockedBloomFilter f(keys, 0.01);
  for (uint64_t k : keys) EXPECT_TRUE(f.MayContain(k));
}

TEST(BloomFilterTest, EmptyFilterAnswers) {
  BloomFilter f;
  EXPECT_TRUE(f.MayContain(uint64_t{12345}));  // built empty: must not reject
  BloomFilter built({}, 0.01);
  EXPECT_EQ(built.MayContain(uint64_t{1}), built.MayContain(uint64_t{1}));
}

TEST(BloomFilterTest, SliceOverloadConsistent) {
  std::vector<uint64_t> hashes = {Hash64(Slice("alpha")), Hash64(Slice("beta"))};
  BloomFilter f(hashes, 0.01);
  EXPECT_TRUE(f.MayContain(Slice("alpha")));
  EXPECT_TRUE(f.MayContain(Slice("beta")));
}

TEST(BloomFilterTest, BitsPerKeyMonotoneInFpr) {
  EXPECT_GT(BloomFilter::BitsPerKey(0.001), BloomFilter::BitsPerKey(0.01));
  EXPECT_GT(BloomFilter::BitsPerKey(0.01), BloomFilter::BitsPerKey(0.1));
}

struct FprCase {
  double fpr;
  size_t n;
};

class BloomFprTest : public ::testing::TestWithParam<FprCase> {};

TEST_P(BloomFprTest, StandardFilterMeetsTargetFpr) {
  const auto [fpr, n] = GetParam();
  const auto keys = MakeHashes(n, 3);
  BloomFilter f(keys, fpr);
  const auto probes = MakeHashes(50000, 4);  // disjoint with high probability
  size_t fp = 0;
  for (uint64_t p : probes) {
    if (f.MayContain(p)) fp++;
  }
  const double measured = double(fp) / double(probes.size());
  EXPECT_LT(measured, fpr * 2.5) << "fpr=" << fpr << " n=" << n;
}

TEST_P(BloomFprTest, BlockedFilterMeetsTargetFpr) {
  const auto [fpr, n] = GetParam();
  const auto keys = MakeHashes(n, 5);
  BlockedBloomFilter f(keys, fpr);
  const auto probes = MakeHashes(50000, 6);
  size_t fp = 0;
  for (uint64_t p : probes) {
    if (f.MayContain(p)) fp++;
  }
  const double measured = double(fp) / double(probes.size());
  // Blocked filters have somewhat worse FPR at equal bits; we sized them
  // with one extra bit per key, so a 3x envelope is a sound invariant.
  EXPECT_LT(measured, fpr * 3.0) << "fpr=" << fpr << " n=" << n;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BloomFprTest,
    ::testing::Values(FprCase{0.01, 1000}, FprCase{0.01, 20000},
                      FprCase{0.05, 10000}, FprCase{0.001, 10000}));

TEST(BlockedBloomFilterTest, MemoryAccountsExtraBit) {
  const auto keys = MakeHashes(10000, 7);
  BloomFilter std_f(keys, 0.01);
  BlockedBloomFilter blk_f(keys, 0.01);
  EXPECT_GE(blk_f.memory_bytes() + 64, std_f.memory_bytes());
}

TEST(BlockedBloomFilterTest, BlockAlignment) {
  const auto keys = MakeHashes(1000, 8);
  BlockedBloomFilter f(keys, 0.01);
  EXPECT_GT(f.num_blocks(), 0u);
  EXPECT_EQ(f.memory_bytes() % 64, 0u);  // whole cache lines
}

}  // namespace
}  // namespace auxlsm
