// Multi-writer ingestion pipeline (PR 2): N writer threads ingesting one
// record set into a dataset must yield exactly the query-visible state a
// single writer produces — across all four maintenance strategies and the
// §5.3 concurrency-control methods — while writer_threads == 1 stays on the
// legacy serial path and the group-commit WAL batches modeled log syncs.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "core/dataset.h"
#include "txn/wal.h"

namespace auxlsm {
namespace {

EnvOptions TestEnv() {
  EnvOptions o;
  o.page_size = 1024;
  o.cache_pages = 1 << 16;
  o.disk_profile = DiskProfile::Null();
  return o;
}

TweetRecord MakeTweet(uint64_t id, uint64_t user, uint64_t time) {
  TweetRecord r;
  r.id = id;
  r.user_id = user;
  r.location = "WA";
  r.creation_time = time;
  r.message = std::string(40, 'm');
  return r;
}

struct Op {
  enum Kind { kInsert, kUpsert, kDelete } kind;
  TweetRecord rec;
};

// Deterministic op stream over ids [1, n]: insert everything, upsert every
// 3rd id to a new user, delete every 7th. Every id's ops appear in stream
// order, and the partitioning below gives all of one id's ops to one thread,
// so the final state is independent of thread interleaving.
std::vector<Op> MakeOps(uint64_t n) {
  std::vector<Op> ops;
  for (uint64_t id = 1; id <= n; id++) {
    ops.push_back(Op{Op::kInsert, MakeTweet(id, id % 40, id)});
  }
  for (uint64_t id = 3; id <= n; id += 3) {
    ops.push_back(Op{Op::kUpsert, MakeTweet(id, 100 + id % 40, n + id)});
  }
  for (uint64_t id = 7; id <= n; id += 7) {
    TweetRecord r;
    r.id = id;
    ops.push_back(Op{Op::kDelete, r});
  }
  return ops;
}

void ApplyOps(Dataset* ds, const std::vector<Op>& ops, uint64_t writers,
              uint64_t me, std::atomic<int>* failures) {
  for (const auto& op : ops) {
    if (op.rec.id % writers != me) continue;
    Status st;
    switch (op.kind) {
      case Op::kInsert: st = ds->Insert(op.rec); break;
      case Op::kUpsert: st = ds->Upsert(op.rec); break;
      case Op::kDelete: st = ds->Delete(op.rec.id); break;
    }
    if (!st.ok()) failures->fetch_add(1);
  }
}

std::vector<uint64_t> SortedIds(const QueryResult& res) {
  std::vector<uint64_t> ids;
  ids.reserve(res.records.size());
  for (const auto& r : res.records) ids.push_back(r.id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

void ExpectSameQueryState(Dataset* multi, Dataset* single, uint64_t n) {
  EXPECT_EQ(multi->num_records(), single->num_records());
  // Point lookups over the whole key space.
  for (uint64_t id = 1; id <= n; id++) {
    TweetRecord a, b;
    const Status sa = multi->GetById(id, &a);
    const Status sb = single->GetById(id, &b);
    ASSERT_EQ(sa.ok(), sb.ok()) << "id " << id;
    if (sa.ok()) {
      EXPECT_EQ(a.user_id, b.user_id) << "id " << id;
      EXPECT_EQ(a.creation_time, b.creation_time) << "id " << id;
    }
  }
  // Secondary range queries (validated), several ranges.
  SecondaryQueryOptions q;
  for (const auto& range : std::vector<std::pair<uint64_t, uint64_t>>{
           {0, 19}, {100, 139}, {0, 200}}) {
    QueryResult ra, rb;
    ASSERT_TRUE(
        multi->QueryUserRange(range.first, range.second, q, &ra).ok());
    ASSERT_TRUE(
        single->QueryUserRange(range.first, range.second, q, &rb).ok());
    EXPECT_EQ(SortedIds(ra), SortedIds(rb))
        << "users [" << range.first << ", " << range.second << "]";
  }
  // Range-filter scans compare matched counts (component layouts differ, so
  // scanned counts may not).
  ScanResult sa, sb;
  ASSERT_TRUE(multi->ScanTimeRange(1, n / 2, &sa).ok());
  ASSERT_TRUE(single->ScanTimeRange(1, n / 2, &sb).ok());
  EXPECT_EQ(sa.records_matched, sb.records_matched);
}

struct PipelineConfig {
  MaintenanceStrategy strategy;
  bool merge_repair;
  BuildCcMethod cc;
  const char* name;
  bool pk_index = true;
  /// > 0 = decoupled merge scheduling (per-tree merge queues, PR 5).
  size_t merge_queue_depth = 0;
};

class MultiWriterParityTest
    : public ::testing::TestWithParam<PipelineConfig> {};

TEST_P(MultiWriterParityTest, MatchesSingleWriterState) {
  const PipelineConfig cfg = GetParam();
  const uint64_t n = 1500;
  const uint64_t writers = 4;
  const auto ops = MakeOps(n);

  Env menv(TestEnv());
  DatasetOptions mo;
  mo.strategy = cfg.strategy;
  mo.merge_repair = cfg.merge_repair;
  mo.build_cc = cfg.cc;
  mo.enable_primary_key_index = cfg.pk_index;
  mo.writer_threads = writers;
  mo.maintenance_threads = 2;
  mo.merge_queue_depth = cfg.merge_queue_depth;
  mo.mem_budget_bytes = 64 << 10;  // force several pipeline cycles
  Dataset multi(&menv, mo);

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (uint64_t t = 0; t < writers; t++) {
    threads.emplace_back(
        [&, t]() { ApplyOps(&multi, ops, writers, t, &failures); });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  ASSERT_TRUE(multi.WaitForMaintenance().ok());

  Env senv(TestEnv());
  DatasetOptions so = mo;
  so.writer_threads = 1;
  so.maintenance_threads = 1;
  Dataset single(&senv, so);
  std::atomic<int> sfailures{0};
  ApplyOps(&single, ops, 1, 0, &sfailures);
  EXPECT_EQ(sfailures.load(), 0);

  ExpectSameQueryState(&multi, &single, n);

  // The pipeline actually engaged: commits were group-committed and flushes
  // ran in the background.
  EXPECT_GT(multi.wal()->wal_stats().syncs, 0u);
  EXPECT_GT(multi.ingest_stats().flushes, 0u);
  EXPECT_EQ(single.wal()->wal_stats().syncs, 0u);  // legacy serial path
}

INSTANTIATE_TEST_SUITE_P(
    Strategies, MultiWriterParityTest,
    ::testing::Values(
        PipelineConfig{MaintenanceStrategy::kEager, false, BuildCcMethod::kNone,
                       "eager"},
        PipelineConfig{MaintenanceStrategy::kValidation, true,
                       BuildCcMethod::kNone, "validation_repair"},
        PipelineConfig{MaintenanceStrategy::kMutableBitmap, false,
                       BuildCcMethod::kSideFile, "bitmap_sidefile"},
        PipelineConfig{MaintenanceStrategy::kMutableBitmap, false,
                       BuildCcMethod::kLock, "bitmap_lock"},
        PipelineConfig{MaintenanceStrategy::kMutableBitmap, false,
                       BuildCcMethod::kNone, "bitmap_stoptheworld"},
        PipelineConfig{MaintenanceStrategy::kMutableBitmap, false,
                       BuildCcMethod::kSideFile, "bitmap_no_pk_index",
                       /*pk_index=*/false},
        PipelineConfig{MaintenanceStrategy::kDeletedKeyBtree, false,
                       BuildCcMethod::kNone, "deleted_key"},
        // Decoupled merge scheduling (PR 5): same parity bar with merge work
        // on the per-tree queues instead of inline in the cycle.
        PipelineConfig{MaintenanceStrategy::kEager, false, BuildCcMethod::kNone,
                       "eager_decoupled", /*pk_index=*/true,
                       /*merge_queue_depth=*/4},
        PipelineConfig{MaintenanceStrategy::kMutableBitmap, false,
                       BuildCcMethod::kSideFile, "bitmap_sidefile_decoupled",
                       /*pk_index=*/true, /*merge_queue_depth=*/4},
        PipelineConfig{MaintenanceStrategy::kDeletedKeyBtree, false,
                       BuildCcMethod::kNone, "deleted_key_decoupled",
                       /*pk_index=*/true, /*merge_queue_depth=*/4}),
    [](const auto& info) { return info.param.name; });

// The TSan stress target: writers, background flush/merge cycles, and
// concurrent queries all running against one dataset.
class PipelineStressTest : public ::testing::TestWithParam<PipelineConfig> {};

TEST_P(PipelineStressTest, ConcurrentIngestAndQueries) {
  const PipelineConfig cfg = GetParam();
  Env env(TestEnv());
  DatasetOptions o;
  o.strategy = cfg.strategy;
  o.merge_repair = cfg.merge_repair;
  o.build_cc = cfg.cc;
  o.writer_threads = 4;
  o.maintenance_threads = 2;
  o.merge_queue_depth = cfg.merge_queue_depth;
  o.mem_budget_bytes = 128 << 10;
  Dataset ds(&env, o);

  const uint64_t per_writer = 900;
  std::atomic<int> failures{0};
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (uint64_t t = 0; t < 4; t++) {
    threads.emplace_back([&, t]() {
      const uint64_t base = 1 + t * per_writer;
      for (uint64_t i = 0; i < per_writer; i++) {
        const uint64_t id = base + i;
        if (!ds.Insert(MakeTweet(id, id % 64, id)).ok()) failures++;
        if (i % 3 == 0 &&
            !ds.Upsert(MakeTweet(id, 64 + id % 64, 10000 + id)).ok()) {
          failures++;
        }
        if (i % 5 == 0 && !ds.Delete(id).ok()) failures++;
      }
    });
  }
  std::thread reader([&]() {
    uint64_t probe = 1;
    while (!stop.load(std::memory_order_relaxed)) {
      TweetRecord r;
      (void)ds.GetById(probe, &r);
      probe = probe % (4 * per_writer) + 1;
      SecondaryQueryOptions q;
      QueryResult res;
      (void)ds.QueryUserRange(0, 31, q, &res);
      ScanResult sres;
      (void)ds.ScanTimeRange(1, 2000, &sres);
    }
  });
  for (auto& th : threads) th.join();
  stop.store(true);
  reader.join();
  EXPECT_EQ(failures.load(), 0);
  ASSERT_TRUE(ds.WaitForMaintenance().ok());

  // Every id ingested by exactly one writer: deterministic final liveness.
  uint64_t expected_live = 0;
  for (uint64_t i = 0; i < per_writer; i++) {
    if (i % 5 != 0) expected_live += 4;
  }
  EXPECT_EQ(ds.num_records(), expected_live);
  TweetRecord r;
  EXPECT_TRUE(ds.GetById(1, &r).IsNotFound());  // i == 0 is deleted
  ASSERT_TRUE(ds.GetById(2, &r).ok());
}

INSTANTIATE_TEST_SUITE_P(
    Strategies, PipelineStressTest,
    ::testing::Values(
        PipelineConfig{MaintenanceStrategy::kEager, false, BuildCcMethod::kNone,
                       "eager"},
        PipelineConfig{MaintenanceStrategy::kMutableBitmap, false,
                       BuildCcMethod::kSideFile, "bitmap_sidefile"},
        PipelineConfig{MaintenanceStrategy::kMutableBitmap, false,
                       BuildCcMethod::kLock, "bitmap_lock"},
        PipelineConfig{MaintenanceStrategy::kEager, false, BuildCcMethod::kNone,
                       "eager_decoupled", /*pk_index=*/true,
                       /*merge_queue_depth=*/4},
        PipelineConfig{MaintenanceStrategy::kMutableBitmap, false,
                       BuildCcMethod::kLock, "bitmap_lock_decoupled",
                       /*pk_index=*/true, /*merge_queue_depth=*/4}),
    [](const auto& info) { return info.param.name; });

// No-steal under the pipeline: the background cycle must not seal (and so
// never flushes) memtables while an explicit transaction has uncommitted
// effects in them, and the rollback must land in the live memtable.
TEST(PipelineNoStealTest, OpenTransactionDefersSealUntilClose) {
  Env env(TestEnv());
  DatasetOptions o;
  o.strategy = MaintenanceStrategy::kEager;
  o.writer_threads = 2;
  o.mem_budget_bytes = 32 << 10;
  Dataset ds(&env, o);

  auto txn = ds.Begin();
  ASSERT_TRUE(ds.UpsertTxn(MakeTweet(999999, 7, 1), txn.get()).ok());
  // Blow well past the budget with auto-commit traffic; every op triggers
  // the pipeline, which must decline to seal while the transaction is open.
  for (uint64_t id = 1; id <= 800; id++) {
    ASSERT_TRUE(ds.Upsert(MakeTweet(id, id % 10, id)).ok());
  }
  ASSERT_TRUE(ds.WaitForMaintenance().ok());
  EXPECT_EQ(ds.primary()->NumDiskComponents(), 0u);  // nothing flushed

  // Roll back: the uncommitted record must vanish from the live memtable.
  ASSERT_TRUE(txn->Abort().ok());
  TweetRecord r;
  EXPECT_TRUE(ds.GetById(999999, &r).IsNotFound());

  // With the transaction closed, the next op lets the pipeline flush.
  ASSERT_TRUE(ds.Upsert(MakeTweet(801, 1, 801)).ok());
  ASSERT_TRUE(ds.WaitForMaintenance().ok());
  EXPECT_GT(ds.primary()->NumDiskComponents(), 0u);
  EXPECT_TRUE(ds.GetById(999999, &r).IsNotFound());  // still rolled back
  EXPECT_EQ(ds.num_records(), 801u);
}

TEST(GroupCommitWalTest, ConcurrentCommitsBatchSyncs) {
  Wal wal(DiskProfile::Null());
  wal.set_group_commit(true);
  const int kThreads = 4, kCommits = 300;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&wal]() {
      for (int i = 0; i < kCommits; i++) {
        LogRecord r;
        r.type = LogRecordType::kCommit;
        wal.AppendCommit(r);
      }
    });
  }
  for (auto& th : threads) th.join();
  const WalStats stats = wal.wal_stats();
  EXPECT_EQ(stats.commits, uint64_t(kThreads * kCommits));
  EXPECT_EQ(stats.records, uint64_t(kThreads * kCommits));
  EXPECT_GE(stats.syncs, 1u);
  EXPECT_LE(stats.syncs, stats.commits);
  // Every commit either led a sync or was batched under another leader's.
  EXPECT_EQ(stats.batched_commits, stats.commits - stats.syncs);
  // Every record present, LSNs strictly increasing.
  const auto records = wal.ReadFrom(0);
  ASSERT_EQ(records.size(), size_t(kThreads * kCommits));
  for (size_t i = 1; i < records.size(); i++) {
    EXPECT_LT(records[i - 1].lsn, records[i].lsn);
  }
}

TEST(GroupCommitWalTest, SerialPathChargesNoSyncs) {
  Wal wal(DiskProfile::Null());
  for (int i = 0; i < 10; i++) {
    LogRecord r;
    r.type = LogRecordType::kCommit;
    wal.AppendCommit(r);
  }
  const WalStats stats = wal.wal_stats();
  EXPECT_EQ(stats.commits, 10u);
  EXPECT_EQ(stats.syncs, 0u);  // legacy behavior: plain appends
}

TEST(GroupCommitWalTest, SingleThreadGroupCommitStaysDurable) {
  Wal wal(DiskProfile::Null());
  wal.set_group_commit(true);
  Lsn last = 0;
  for (int i = 0; i < 20; i++) {
    LogRecord r;
    r.type = LogRecordType::kCommit;
    last = wal.AppendCommit(r);
  }
  const WalStats stats = wal.wal_stats();
  EXPECT_EQ(stats.commits, 20u);
  EXPECT_EQ(stats.syncs, 20u);  // no concurrency: every commit leads
  EXPECT_EQ(wal.tail_lsn(), last);
}

}  // namespace
}  // namespace auxlsm
