// Service layer (PR 9): protocol frame/body round-trips (including torn and
// damaged frames), wire-vs-in-process result parity across all four
// maintenance strategies, paginated cursor continuation over the wire,
// degraded-mode mapping to retryable protocol errors, the server.* failpoint
// seams, the service-side metrics gauges, and a concurrent-client stress for
// TSan.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "core/dataset.h"
#include "fault/fault_injector.h"
#include "server/protocol.h"
#include "server/server.h"
#include "workload/open_loop.h"
#include "workload/tweet_gen.h"

namespace auxlsm {
namespace {

using server::ClientConnection;
using server::DecodeFrame;
using server::FrameResult;
using server::Request;
using server::RequestServer;
using server::RequestType;
using server::Response;
using server::ServerStats;
using server::ResponseCode;
using server::ServerOptions;

EnvOptions TestEnv(FaultInjector* fault = nullptr) {
  EnvOptions o;
  o.page_size = 1024;
  o.cache_pages = 1 << 14;
  o.disk_profile = DiskProfile::Null();
  o.fault_injector = fault;
  return o;
}

DatasetOptions Opts(MaintenanceStrategy s) {
  DatasetOptions o;
  o.strategy = s;
  o.mem_budget_bytes = 48 << 10;
  o.max_mergeable_bytes = 1 << 20;
  if (s == MaintenanceStrategy::kValidation) o.merge_repair = true;
  return o;
}

TweetRecord MakeTweet(uint64_t id, uint64_t user, uint64_t time) {
  TweetRecord r;
  r.id = id;
  r.user_id = user;
  r.location = "GA";
  r.creation_time = time;
  r.message = std::string(40 + id % 30, 'z');
  return r;
}

Request MakeInsert(uint64_t request_id, const TweetRecord& rec) {
  Request q;
  q.request_id = request_id;
  q.type = RequestType::kUpsert;
  q.record = rec;
  return q;
}

/// Sends one request, polls to completion, expects exactly one response.
Response RoundTrip(RequestServer* srv, ClientConnection* c,
                   const Request& req) {
  c->Send(req.EncodeFrame());
  srv->PollUntilIdle();
  std::vector<Response> rs = c->Receive();
  EXPECT_EQ(rs.size(), 1u);
  return rs.empty() ? Response{} : rs[0];
}

// ---------------------------------------------------------------------------
// Protocol round-trips
// ---------------------------------------------------------------------------

TEST(ProtocolTest, RequestRoundTripAllTypes) {
  for (RequestType t :
       {RequestType::kInsert, RequestType::kUpsert, RequestType::kDelete,
        RequestType::kGet, RequestType::kQuery, RequestType::kScan,
        RequestType::kCursorNext, RequestType::kCursorClose}) {
    Request in;
    in.request_id = 42;
    in.arrival_us = 1234.5;
    in.type = t;
    in.record = MakeTweet(7, 3, 11);
    in.id = 99;
    in.index_name = "user_id";
    in.range_lo = 5;
    in.range_hi = 105;
    in.time_lo = 1;
    in.time_hi = 2;
    in.limit = 10;
    in.page_size = 4;
    in.cursor_id = 77;

    const std::string frame = in.EncodeFrame();
    Slice body;
    size_t consumed = 0;
    ASSERT_EQ(DecodeFrame(Slice(frame), server::kDefaultMaxFrameBytes, &body,
                          &consumed, nullptr),
              FrameResult::kOk);
    EXPECT_EQ(consumed, frame.size());
    Request out;
    ASSERT_TRUE(Request::DecodeBody(body, &out).ok());
    EXPECT_EQ(out.request_id, in.request_id);
    EXPECT_DOUBLE_EQ(out.arrival_us, in.arrival_us);
    EXPECT_EQ(out.type, t);
    switch (t) {
      case RequestType::kInsert:
      case RequestType::kUpsert:
        EXPECT_EQ(out.record.id, in.record.id);
        EXPECT_EQ(out.record.message, in.record.message);
        break;
      case RequestType::kDelete:
      case RequestType::kGet:
        EXPECT_EQ(out.id, in.id);
        break;
      case RequestType::kQuery:
        EXPECT_EQ(out.index_name, in.index_name);
        EXPECT_EQ(out.range_lo, in.range_lo);
        EXPECT_EQ(out.range_hi, in.range_hi);
        EXPECT_EQ(out.limit, in.limit);
        EXPECT_EQ(out.page_size, in.page_size);
        break;
      case RequestType::kScan:
        EXPECT_EQ(out.time_lo, in.time_lo);
        EXPECT_EQ(out.time_hi, in.time_hi);
        break;
      case RequestType::kCursorNext:
      case RequestType::kCursorClose:
        EXPECT_EQ(out.cursor_id, in.cursor_id);
        break;
    }
  }
}

TEST(ProtocolTest, ResponseRoundTrip) {
  Response in;
  in.request_id = 7;
  in.code = ResponseCode::kOk;
  in.done = false;
  in.cursor_id = 31;
  in.count = 2;
  in.completion_us = 98.5;
  in.latency_us = 42.25;
  in.message = "hello";
  in.records.push_back(MakeTweet(1, 2, 3));
  in.records.push_back(MakeTweet(4, 5, 6));

  const std::string frame = in.EncodeFrame();
  Slice body;
  size_t consumed = 0;
  ASSERT_EQ(DecodeFrame(Slice(frame), server::kDefaultMaxFrameBytes, &body,
                        &consumed, nullptr),
            FrameResult::kOk);
  Response out;
  ASSERT_TRUE(Response::DecodeBody(body, &out).ok());
  EXPECT_EQ(out.request_id, in.request_id);
  EXPECT_EQ(out.code, in.code);
  EXPECT_EQ(out.done, in.done);
  EXPECT_EQ(out.cursor_id, in.cursor_id);
  EXPECT_EQ(out.count, in.count);
  EXPECT_DOUBLE_EQ(out.completion_us, in.completion_us);
  EXPECT_DOUBLE_EQ(out.latency_us, in.latency_us);
  EXPECT_EQ(out.message, in.message);
  ASSERT_EQ(out.records.size(), 2u);
  EXPECT_EQ(out.records[1].id, 4u);
}

TEST(ProtocolTest, TornAndDamagedFrames) {
  Request req = MakeInsert(1, MakeTweet(1, 1, 1));
  const std::string frame = req.EncodeFrame();

  // Torn: any strict prefix wants more bytes.
  Slice body;
  size_t consumed = 1;
  for (size_t cut : {size_t(3), size_t(server::kFrameHeaderBytes),
                     frame.size() - 1}) {
    EXPECT_EQ(DecodeFrame(Slice(frame.data(), cut),
                          server::kDefaultMaxFrameBytes, &body, &consumed,
                          nullptr),
              FrameResult::kNeedMore);
  }

  // Damaged body: the CRC rejects it, but the length prefix still brackets
  // the frame — exactly one frame is skipped and the next decodes.
  std::string two = frame + frame;
  two[server::kFrameHeaderBytes + 3] ^= 0x40;
  std::string error;
  EXPECT_EQ(DecodeFrame(Slice(two), server::kDefaultMaxFrameBytes, &body,
                        &consumed, &error),
            FrameResult::kBad);
  EXPECT_EQ(consumed, frame.size());
  EXPECT_EQ(DecodeFrame(Slice(two.data() + consumed, two.size() - consumed),
                        server::kDefaultMaxFrameBytes, &body, &consumed,
                        nullptr),
            FrameResult::kOk);

  // Implausible length: the boundary itself is garbage — the rest of the
  // buffer is unrecoverable and dropped wholesale.
  std::string bad = frame;
  bad[0] = char(0xff);
  bad[1] = char(0xff);
  bad[2] = char(0xff);
  bad[3] = char(0x7f);
  EXPECT_EQ(DecodeFrame(Slice(bad), server::kDefaultMaxFrameBytes, &body,
                        &consumed, &error),
            FrameResult::kBad);
  EXPECT_EQ(consumed, bad.size());
}

// ---------------------------------------------------------------------------
// Server behavior over the wire
// ---------------------------------------------------------------------------

TEST(ServerTest, TornDeliveryAndGarbageResync) {
  Env env(TestEnv());
  Dataset ds(&env, Opts(MaintenanceStrategy::kEager));
  RequestServer srv(&ds, ServerOptions{});
  ClientConnection* c = srv.Connect();

  // Torn delivery: half a frame decodes nothing; the rest completes it.
  const Request ins = MakeInsert(1, MakeTweet(1, 1, 1));
  const std::string frame = ins.EncodeFrame();
  c->Send(frame.substr(0, frame.size() / 2));
  srv.Poll();
  EXPECT_TRUE(c->Receive().empty());
  c->Send(frame.substr(frame.size() / 2));
  srv.PollUntilIdle();
  std::vector<Response> rs = c->Receive();
  ASSERT_EQ(rs.size(), 1u);
  EXPECT_EQ(rs[0].code, ResponseCode::kOk);

  // Garbage frame between two valid ones: the damaged frame answers
  // kBadRequest, both valid frames execute — per-request errors, never a
  // poisoned connection.
  std::string mid = MakeInsert(2, MakeTweet(2, 1, 2)).EncodeFrame();
  mid[server::kFrameHeaderBytes + 2] ^= 0x10;
  c->Send(MakeInsert(3, MakeTweet(3, 1, 3)).EncodeFrame() + mid +
          MakeInsert(4, MakeTweet(4, 1, 4)).EncodeFrame());
  srv.PollUntilIdle();
  rs = c->Receive();
  ASSERT_EQ(rs.size(), 3u);
  int ok = 0, bad = 0;
  for (const Response& r : rs) {
    if (r.code == ResponseCode::kOk) ok++;
    if (r.code == ResponseCode::kBadRequest) bad++;
  }
  EXPECT_EQ(ok, 2);
  EXPECT_EQ(bad, 1);
  EXPECT_EQ(ds.num_records(), 3u);  // ids 1, 3, 4; the damaged frame is gone
  EXPECT_EQ(c->stats().decode_errors.load(), 1u);
}

TEST(ServerTest, PaginatedCursorContinuationOverWire) {
  Env env(TestEnv());
  Dataset ds(&env, Opts(MaintenanceStrategy::kEager));
  for (uint64_t id = 1; id <= 30; id++) {
    ASSERT_TRUE(ds.Upsert(MakeTweet(id, /*user=*/5, id)).ok());
  }
  RequestServer srv(&ds, ServerOptions{});
  ClientConnection* c = srv.Connect();
  ClientConnection* other = srv.Connect();

  Request q;
  q.request_id = 100;
  q.type = RequestType::kQuery;
  q.range_lo = 5;
  q.range_hi = 5;
  q.page_size = 7;
  Response page = RoundTrip(&srv, c, q);
  ASSERT_EQ(page.code, ResponseCode::kOk);
  EXPECT_EQ(page.records.size(), 7u);
  ASSERT_FALSE(page.done);
  ASSERT_NE(page.cursor_id, 0u);
  EXPECT_EQ(srv.dispatcher()->open_cursors(), 1u);

  // A foreign connection cannot touch the cursor.
  Request steal;
  steal.request_id = 200;
  steal.type = RequestType::kCursorNext;
  steal.cursor_id = page.cursor_id;
  EXPECT_EQ(RoundTrip(&srv, other, steal).code, ResponseCode::kBadRequest);
  EXPECT_EQ(srv.dispatcher()->open_cursors(), 1u);

  uint64_t rows = page.records.size();
  uint64_t pages = 1;
  while (!page.done) {
    Request next;
    next.request_id = 100;
    next.type = RequestType::kCursorNext;
    next.cursor_id = page.cursor_id;
    page = RoundTrip(&srv, c, next);
    ASSERT_EQ(page.code, ResponseCode::kOk);
    rows += page.records.size();
    pages++;
    ASSERT_LE(pages, 10u);
  }
  EXPECT_EQ(rows, 30u);
  EXPECT_EQ(pages, 5u);  // ceil(30/7) = 5: 7+7+7+7+2
  // The drained cursor auto-closed server-side.
  EXPECT_EQ(srv.dispatcher()->open_cursors(), 0u);
  Request stale;
  stale.request_id = 300;
  stale.type = RequestType::kCursorNext;
  stale.cursor_id = page.cursor_id;
  EXPECT_EQ(RoundTrip(&srv, c, stale).code, ResponseCode::kBadRequest);
}

TEST(ServerTest, GetDeleteScanAndUnknownIndex) {
  Env env(TestEnv());
  Dataset ds(&env, Opts(MaintenanceStrategy::kValidation));
  for (uint64_t id = 1; id <= 10; id++) {
    ASSERT_TRUE(ds.Upsert(MakeTweet(id, id, 100 + id)).ok());
  }
  RequestServer srv(&ds, ServerOptions{});
  ClientConnection* c = srv.Connect();

  Request get;
  get.request_id = 1;
  get.type = RequestType::kGet;
  get.id = 4;
  Response r = RoundTrip(&srv, c, get);
  ASSERT_EQ(r.code, ResponseCode::kOk);
  ASSERT_EQ(r.records.size(), 1u);
  EXPECT_EQ(r.records[0].id, 4u);

  Request del;
  del.request_id = 2;
  del.type = RequestType::kDelete;
  del.id = 4;
  EXPECT_EQ(RoundTrip(&srv, c, del).code, ResponseCode::kOk);
  get.request_id = 3;
  EXPECT_EQ(RoundTrip(&srv, c, get).code, ResponseCode::kNotFound);

  Request scan;
  scan.request_id = 4;
  scan.type = RequestType::kScan;
  scan.time_lo = 101;
  scan.time_hi = 110;
  r = RoundTrip(&srv, c, scan);
  ASSERT_EQ(r.code, ResponseCode::kOk);
  EXPECT_EQ(r.count, 9u);  // 10 records minus the deleted one

  Request q;
  q.request_id = 5;
  q.type = RequestType::kQuery;
  q.index_name = "no-such-index";
  q.range_lo = 0;
  q.range_hi = 100;
  EXPECT_EQ(RoundTrip(&srv, c, q).code, ResponseCode::kBadRequest);
}

// ---------------------------------------------------------------------------
// Wire vs in-process parity, all four strategies
// ---------------------------------------------------------------------------

TEST(ServerParityTest, ServedResultsRowIdenticalAcrossStrategies) {
  for (MaintenanceStrategy s :
       {MaintenanceStrategy::kEager, MaintenanceStrategy::kValidation,
        MaintenanceStrategy::kMutableBitmap,
        MaintenanceStrategy::kDeletedKeyBtree}) {
    SCOPED_TRACE(StrategyName(s));
    constexpr uint64_t kPreload = 300;
    OpenLoopOptions wo;
    wo.num_ops = 400;
    wo.get_fraction = 0.35;
    wo.query_fraction = 0.15;
    wo.range_width = 2000;
    wo.limit = 12;
    wo.page_size = 5;  // paginated queries -> cursor continuations on the wire
    wo.seed = 11;

    // Two identical fixtures; the script is generated once from a generator
    // that produced the served fixture's preload, so gets hit live keys.
    Env env_a(TestEnv()), env_b(TestEnv());
    Dataset served_ds(&env_a, Opts(s)), direct_ds(&env_b, Opts(s));
    TweetGenerator gen_a, gen_b;
    for (uint64_t i = 0; i < kPreload; i++) {
      ASSERT_TRUE(served_ds.Upsert(gen_a.Next()).ok());
      ASSERT_TRUE(direct_ds.Upsert(gen_b.Next()).ok());
    }
    ASSERT_TRUE(served_ds.FlushAll().ok());
    ASSERT_TRUE(direct_ds.FlushAll().ok());
    const std::vector<Request> script = MakeOpenLoopScript(&gen_a, wo);

    RequestServer srv(&served_ds, ServerOptions{});
    OpenLoopReport served, direct;
    ASSERT_TRUE(RunOpenLoopWorkload(&srv, script, /*num_connections=*/3,
                                    /*poll_every=*/1, &served)
                    .ok());
    ASSERT_TRUE(RunOpenLoopInProcess(&direct_ds, script, &direct).ok());

    EXPECT_EQ(served.ok, direct.ok);
    EXPECT_EQ(served.not_found, direct.not_found);
    EXPECT_EQ(served.errors, 0u);
    EXPECT_EQ(direct.errors, 0u);
    EXPECT_EQ(served.rows, direct.rows);
    EXPECT_EQ(served.result_checksum, direct.result_checksum);
    EXPECT_EQ(served_ds.num_records(), direct_ds.num_records());
  }
}

// Regression: a script whose tail is all multi-page queries leaves the
// drain loop harvesting only non-final pages — each response retires one
// outstanding request and immediately re-ups with a kCursorNext, so the
// net outstanding count never moves. The drain must measure progress by
// responses received / requests dispatched, not by that delta.
TEST(ServerParityTest, DrainCompletesWhenScriptEndsOnPaginatedQueries) {
  Env env_a(TestEnv()), env_b(TestEnv());
  Dataset served_ds(&env_a, Opts(MaintenanceStrategy::kEager));
  Dataset direct_ds(&env_b, Opts(MaintenanceStrategy::kEager));
  for (uint64_t id = 1; id <= 60; id++) {
    ASSERT_TRUE(served_ds.Upsert(MakeTweet(id, id % 5, id)).ok());
    ASSERT_TRUE(direct_ds.Upsert(MakeTweet(id, id % 5, id)).ok());
  }
  ASSERT_TRUE(served_ds.FlushAll().ok());
  ASSERT_TRUE(direct_ds.FlushAll().ok());

  // Every script op is a query spanning >= 3 pages (limit 12, page 5).
  std::vector<Request> script;
  for (uint64_t i = 0; i < 4; i++) {
    Request q;
    q.request_id = i + 1;
    q.type = RequestType::kQuery;
    q.range_lo = 0;
    q.range_hi = 4;
    q.limit = 12;
    q.page_size = 5;
    script.push_back(q);
  }

  RequestServer srv(&served_ds, ServerOptions{});
  OpenLoopReport served, direct;
  // poll_every > script size: nothing is harvested until the drain loop,
  // whose first rounds then see exclusively non-final pages.
  ASSERT_TRUE(RunOpenLoopWorkload(&srv, script, /*num_connections=*/2,
                                  /*poll_every=*/100, &served)
                  .ok());
  ASSERT_TRUE(RunOpenLoopInProcess(&direct_ds, script, &direct).ok());
  EXPECT_EQ(served.errors, 0u);
  EXPECT_EQ(served.rows, direct.rows);
  EXPECT_EQ(served.result_checksum, direct.result_checksum);
}

// ---------------------------------------------------------------------------
// Degraded mode and failpoints
// ---------------------------------------------------------------------------

TEST(ServerTest, DegradedModeAnswersRetryableAndConnectionSurvives) {
  FaultInjector fault(3);
  Env env(TestEnv(&fault));
  DatasetOptions o = Opts(MaintenanceStrategy::kEager);
  o.fault_injector = &fault;
  o.mem_budget_bytes = 8 << 10;
  o.maintenance_retry_limit = 2;
  o.retry_backoff_us = 10;
  Dataset ds(&env, o);
  for (uint64_t id = 1; id <= 60; id++) {
    ASSERT_TRUE(ds.Upsert(MakeTweet(id, id % 5, id)).ok());
  }
  ASSERT_TRUE(ds.FlushAll().ok());

  RequestServer srv(&ds, ServerOptions{.fault_injector = &fault});
  ClientConnection* c = srv.Connect();

  fault.Arm(failpoints::kFlushBuild,
            FaultSpec::Error(Status::IOError("disk down"), 1.0));
  // Write through the server until the budget-triggered flush exhausts its
  // retries: the failing request must answer kRetryable (satellite 2), not
  // kill the connection.
  bool saw_retryable = false;
  uint64_t id = 100;
  for (; id < 600 && !saw_retryable; id++) {
    const Response r =
        RoundTrip(&srv, c, MakeInsert(id, MakeTweet(id, 1, id)));
    if (r.code == ResponseCode::kRetryable) {
      saw_retryable = true;
    } else {
      ASSERT_EQ(r.code, ResponseCode::kOk);
    }
  }
  ASSERT_TRUE(saw_retryable) << "flush faults never surfaced over the wire";
  // The dispatcher drained the sticky background errors while mapping, so
  // degradation lifted without any out-of-band intervention.
  EXPECT_EQ(ds.health(), DatasetHealth::kHealthy);

  // The connection is still fully usable: reads serve immediately, and
  // once the disk "recovers" writes commit again on the same connection.
  fault.DisarmAll();
  Request get;
  get.request_id = 9000;
  get.type = RequestType::kGet;
  get.id = 1;
  EXPECT_EQ(RoundTrip(&srv, c, get).code, ResponseCode::kOk);
  EXPECT_EQ(RoundTrip(&srv, c, MakeInsert(9001, MakeTweet(9001, 1, 9001)))
                .code,
            ResponseCode::kOk);
}

TEST(ServerTest, DecodeFailpointDropsRequestNotDataset) {
  FaultInjector fault(5);
  Env env(TestEnv());
  Dataset ds(&env, Opts(MaintenanceStrategy::kEager));
  RequestServer srv(&ds, ServerOptions{.fault_injector = &fault});
  ClientConnection* c = srv.Connect();

  fault.Arm(failpoints::kServerDecodeFrame,
            FaultSpec::ErrorNth(Status::IOError("wire fault"), 2));
  for (uint64_t id = 1; id <= 3; id++) {
    c->Send(MakeInsert(id, MakeTweet(id, 1, id)).EncodeFrame());
  }
  srv.PollUntilIdle();
  std::vector<Response> rs = c->Receive();
  ASSERT_EQ(rs.size(), 3u);
  int ok = 0, retryable = 0;
  for (const Response& r : rs) {
    if (r.code == ResponseCode::kOk) ok++;
    if (r.code == ResponseCode::kRetryable) retryable++;  // IOError retries
  }
  EXPECT_EQ(ok, 2);
  EXPECT_EQ(retryable, 1);
  // The dropped frame had no dataset effect: exactly the two OK inserts.
  EXPECT_EQ(ds.num_records(), 2u);
  fault.DisarmAll();
}

TEST(ServerTest, DispatchFailpointFailsBeforeAnyEffect) {
  FaultInjector fault(5);
  Env env(TestEnv());
  Dataset ds(&env, Opts(MaintenanceStrategy::kEager));
  RequestServer srv(&ds, ServerOptions{.fault_injector = &fault});
  ClientConnection* c = srv.Connect();

  fault.Arm(failpoints::kServerDispatch,
            FaultSpec::Error(Status::IOError("dispatch fault"), 1.0));
  const Request ins = MakeInsert(1, MakeTweet(1, 1, 1));
  EXPECT_EQ(RoundTrip(&srv, c, ins).code, ResponseCode::kRetryable);
  EXPECT_EQ(ds.num_records(), 0u);

  // The same frame retried after the fault clears succeeds: error
  // atomicity held, nothing partial was left behind.
  fault.DisarmAll();
  EXPECT_EQ(RoundTrip(&srv, c, ins).code, ResponseCode::kOk);
  EXPECT_EQ(ds.num_records(), 1u);
}

// ---------------------------------------------------------------------------
// Service-side metrics (satellite 6)
// ---------------------------------------------------------------------------

TEST(ServerTest, MetricsSnapshotCarriesServiceBacklog) {
  Env env(TestEnv());
  Dataset ds(&env, Opts(MaintenanceStrategy::kEager));
  {
    obs::MetricsRegistry registry;
    ServerOptions so;
    so.metrics = &registry;
    RequestServer srv(&ds, so);
    ClientConnection* c = srv.Connect();
    srv.Connect();
    for (uint64_t id = 1; id <= 5; id++) {
      ASSERT_EQ(RoundTrip(&srv, c, MakeInsert(id, MakeTweet(id, 1, id))).code,
                ResponseCode::kOk);
    }
    const obs::MetricsSnapshot s = ds.MetricsSnapshot();
    ASSERT_TRUE(s.values.count("server.connections"));
    EXPECT_EQ(s.values.at("server.connections"), 2);
    EXPECT_EQ(s.values.at("server.requests_dispatched"), 5);
    EXPECT_EQ(s.values.at("server.inflight_requests"), 0);
    EXPECT_EQ(s.values.at("server.batch_max"), 1);
    EXPECT_EQ(s.values.at("server.decode_errors"), 0);
    // DebugString carries the service section for the one-call overview.
    EXPECT_NE(ds.DebugString().find("server.connections"), std::string::npos);
    const ServerStats st = srv.stats();
    EXPECT_EQ(st.requests_dispatched, 5u);
    EXPECT_EQ(st.responses_sent, 5u);
    EXPECT_GT(st.batches, 0u);
  }
  // The server unregistered its metrics source on destruction.
  EXPECT_EQ(ds.MetricsSnapshot().values.count("server.connections"), 0u);
}

// ---------------------------------------------------------------------------
// Concurrent-client stress (TSan)
// ---------------------------------------------------------------------------

TEST(ServerStressTest, ConcurrentClientsAndWorkers) {
  // Multi-queue on both engines: with gcd(storage, log) = 2 queue classes,
  // the 2 workers genuinely dispatch in parallel (one class each) — with
  // single-queue engines the partitioner would rightly serialize them.
  EnvOptions eo = TestEnv();
  eo.io_queues = 2;
  Env env(eo);
  DatasetOptions o = Opts(MaintenanceStrategy::kEager);
  o.writer_threads = 4;  // concurrent dispatch takes the pipeline path
  o.log_queues = 2;
  Dataset ds(&env, o);
  ServerOptions so;
  so.worker_threads = 2;
  RequestServer srv(&ds, so);

  constexpr int kClients = 4;
  constexpr uint64_t kOpsPerClient = 120;
  std::vector<ClientConnection*> conns;
  for (int i = 0; i < kClients; i++) conns.push_back(srv.Connect());

  std::atomic<uint64_t> responses{0};
  std::atomic<bool> stop{false};
  // Server loop: one thread polling (dispatch fans over the worker pool).
  std::thread server_thread([&] {
    while (!stop.load()) {
      srv.Poll();
    }
    srv.PollUntilIdle();
  });

  std::vector<std::thread> clients;
  for (int i = 0; i < kClients; i++) {
    clients.emplace_back([&, i] {
      ClientConnection* c = conns[size_t(i)];
      uint64_t received = 0;
      for (uint64_t k = 0; k < kOpsPerClient; k++) {
        const uint64_t id = uint64_t(i) * 10000 + k + 1;
        Request req;
        if (k % 3 == 2) {
          req.request_id = id;
          req.type = RequestType::kGet;
          req.id = id - 1;
        } else {
          req = MakeInsert(id, MakeTweet(id, uint64_t(i), id));
        }
        c->Send(req.EncodeFrame());
        received += c->Receive().size();
      }
      while (received < kOpsPerClient) {
        received += c->Receive().size();
        std::this_thread::yield();
      }
      responses.fetch_add(received);
    });
  }
  for (std::thread& t : clients) t.join();
  stop.store(true);
  server_thread.join();

  EXPECT_EQ(responses.load(), uint64_t(kClients) * kOpsPerClient);
  const ServerStats st = srv.stats();
  EXPECT_EQ(st.requests_dispatched, uint64_t(kClients) * kOpsPerClient);
  EXPECT_EQ(st.decode_errors, 0u);
  EXPECT_EQ(st.inflight_requests, 0u);
  // Every insert landed exactly once.
  EXPECT_EQ(ds.num_records(), uint64_t(kClients) * (kOpsPerClient - kOpsPerClient / 3));
}

// Disconnect racing Poll: clients park paginated cursors, pull
// continuations, and disconnect mid-pagination while the server thread
// keeps polling. The dispatcher must never destroy a cursor that a worker
// is pulling from (TSan catches the use-after-free this guards).
TEST(ServerStressTest, DisconnectDuringCursorContinuations) {
  Env env(TestEnv());
  Dataset ds(&env, Opts(MaintenanceStrategy::kEager));
  for (uint64_t id = 1; id <= 200; id++) {
    ASSERT_TRUE(ds.Upsert(MakeTweet(id, id % 8, id)).ok());
  }
  ASSERT_TRUE(ds.FlushAll().ok());
  RequestServer srv(&ds, ServerOptions{});

  constexpr int kClients = 4;
  std::vector<ClientConnection*> conns;
  for (int i = 0; i < kClients; i++) conns.push_back(srv.Connect());

  std::atomic<bool> stop{false};
  std::thread server_thread([&] {
    while (!stop.load()) srv.Poll();
  });

  std::vector<std::thread> clients;
  for (int i = 0; i < kClients; i++) {
    clients.emplace_back([&, i] {
      ClientConnection* c = conns[size_t(i)];
      for (int round = 0; round < 20; round++) {
        Request q;
        q.request_id = uint64_t(i) * 1000 + uint64_t(round) + 1;
        q.type = RequestType::kQuery;
        q.range_lo = 0;
        q.range_hi = 8;
        q.limit = 40;
        q.page_size = 4;
        c->Send(q.EncodeFrame());
        // Pull a few continuation pages, then abandon the cursor: the
        // disconnect below drops it while pulls may still be in flight.
        int pages = 0;
        while (pages < 3) {
          for (Response& r : c->Receive()) {
            pages++;
            if (r.code == ResponseCode::kOk && !r.done && r.cursor_id != 0) {
              Request next;
              next.request_id = r.request_id;
              next.type = RequestType::kCursorNext;
              next.cursor_id = r.cursor_id;
              c->Send(next.EncodeFrame());
            }
          }
          std::this_thread::yield();
        }
      }
      srv.Disconnect(c);
    });
  }
  for (std::thread& t : clients) t.join();
  stop.store(true);
  server_thread.join();
  srv.PollUntilIdle();
  EXPECT_EQ(srv.stats().decode_errors, 0u);
}

}  // namespace
}  // namespace auxlsm
