// Social-feed ingestion: the paper's motivating scenario — a high-speed
// tweet stream with updates, ingested under each maintenance strategy.
// Prints a comparison of ingestion cost and what queries then cost, showing
// the trade-off space of §6.3/§6.4 end to end.
#include <cstdio>

#include "core/dataset.h"
#include "workload/driver.h"

using namespace auxlsm;

namespace {

struct Outcome {
  double ingest_seconds;
  double feed_seconds;      ///< simulated I/O of the paginated feed read
  uint64_t feed_candidates; ///< candidates the feed cursor actually pulled
  uint64_t ingest_lookups;
};

Outcome RunStrategy(MaintenanceStrategy strategy, bool merge_repair) {
  EnvOptions eo;
  eo.page_size = 4096;
  eo.cache_pages = 1024;  // 4 MiB cache
  Env env(eo);
  DatasetOptions o;
  o.strategy = strategy;
  o.merge_repair = merge_repair;
  o.mem_budget_bytes = 1 << 20;
  Dataset ds(&env, o);
  TweetGenerator gen;

  UpsertWorkloadOptions w;
  w.num_ops = 20000;
  w.update_ratio = 0.25;  // a quarter of the feed edits existing tweets
  w.distribution = UpdateDistribution::kZipf;  // recent tweets get edited
  WorkloadReport report;
  if (!RunUpsertWorkload(&ds, &gen, w, &report).ok()) std::abort();

  // The dashboard feed: recent activity of a user-id band, read as a
  // paginated top-k through the cursor API — 3 pages of 10 rows, then the
  // user scrolls away. The cursor stops pulling candidates and fetching
  // records at 30 rows, so every strategy pays only for what was shown.
  auto cursor_or = ds.NewCursor(Query()
                                    .Secondary("user_id")
                                    .Range(100, 400)
                                    .Limit(30)
                                    .PageSize(10));
  if (!cursor_or.ok()) std::abort();
  auto cursor = std::move(cursor_or).value();
  QueryPage page;
  while (!cursor->done()) {
    if (!cursor->Next(&page).ok()) std::abort();
  }

  return Outcome{report.elapsed_seconds + report.simulated_io_seconds,
                 cursor->stats().io_simulated_us / 1e6,
                 cursor->stats().candidates,
                 ds.ingest_stats().ingest_point_lookups};
}

}  // namespace

int main() {
  std::printf("social feed: 20K ops, 25%% zipf-skewed edits, 1 secondary "
              "index;\nfeed read = paginated top-30 cursor over users "
              "[100,400]\n\n");
  std::printf("%-24s %14s %16s %12s %18s\n", "strategy", "ingest (s)",
              "feed I/O (s)", "candidates", "ingest lookups");
  struct Case {
    const char* name;
    MaintenanceStrategy s;
    bool repair;
  };
  const Case cases[] = {
      {"eager", MaintenanceStrategy::kEager, false},
      {"validation", MaintenanceStrategy::kValidation, true},
      {"validation(no-repair)", MaintenanceStrategy::kValidation, false},
      {"mutable-bitmap", MaintenanceStrategy::kMutableBitmap, false},
      {"deleted-key-btree", MaintenanceStrategy::kDeletedKeyBtree, false},
  };
  for (const auto& c : cases) {
    const Outcome out = RunStrategy(c.s, c.repair);
    std::printf("%-24s %14.3f %16.4f %12llu %18llu\n", c.name,
                out.ingest_seconds, out.feed_seconds,
                (unsigned long long)out.feed_candidates,
                (unsigned long long)out.ingest_lookups);
  }
  std::printf("\nExpected shape: eager pays point lookups at ingestion and "
              "wins at query time;\nvalidation flips the trade-off; "
              "mutable-bitmap sits in between using the pk index.\n");
  return 0;
}
