// Adaptive strategy selection (the paper's §7 auto-tuning future work):
// track a workload's shape with WorkloadTracker, ask the advisor for a
// maintenance strategy, and build the dataset from the recommendation.
#include <cstdio>

#include "core/advisor.h"
#include "workload/driver.h"

using namespace auxlsm;

namespace {

void Describe(const char* label, const WorkloadProfile& p) {
  const StrategyRecommendation rec = AdviseStrategy(p);
  std::printf("%-28s -> %-18s repair=%d correlated=%d bf=%d\n  %s\n\n", label,
              StrategyName(rec.strategy), rec.merge_repair,
              rec.correlated_merges, rec.repair_bloom_opt,
              rec.rationale.c_str());
}

}  // namespace

int main() {
  std::printf("=== advisor over synthetic profiles ===\n\n");
  WorkloadProfile dashboards;
  dashboards.writes_per_query = 0.2;
  Describe("dashboard (query-heavy)", dashboards);

  WorkloadProfile firehose;
  firehose.writes_per_query = 10000;
  firehose.update_ratio = 0.0;
  Describe("append-only firehose", firehose);

  WorkloadProfile sessions;
  sessions.writes_per_query = 500;
  sessions.update_ratio = 0.6;
  Describe("session store (update-heavy)", sessions);

  WorkloadProfile telemetry;
  telemetry.writes_per_query = 50;
  telemetry.update_ratio = 0.2;
  telemetry.old_range_scan_fraction = 0.6;
  Describe("telemetry w/ historical scans", telemetry);

  // Now drive a live workload through a tracker and apply the advice.
  std::printf("=== tracked workload -> recommended dataset ===\n");
  WorkloadTracker tracker;
  Random rng(11);
  for (int i = 0; i < 10000; i++) tracker.RecordWrite(rng.Bernoulli(0.4));
  for (int i = 0; i < 25; i++) tracker.RecordQuery(false, false);

  const WorkloadProfile profile = tracker.Profile();
  std::printf("observed: update_ratio=%.2f writes/query=%.0f\n",
              profile.update_ratio, profile.writes_per_query);
  const StrategyRecommendation rec = AdviseStrategy(profile);
  std::printf("advised: %s\n", StrategyName(rec.strategy));

  Env env;
  DatasetOptions options;
  options.mem_budget_bytes = 1 << 20;
  rec.ApplyTo(&options);
  Dataset dataset(&env, options);
  TweetGenerator gen;
  UpsertWorkloadOptions w;
  w.num_ops = 10000;
  w.update_ratio = profile.update_ratio;
  WorkloadReport report;
  if (!RunUpsertWorkload(&dataset, &gen, w, &report).ok()) return 1;
  std::printf("ran 10K ops under the advised configuration: %.0f ops/s "
              "(cpu+sim-io)\n",
              double(report.ops) /
                  (report.elapsed_seconds + report.simulated_io_seconds));
  return 0;
}
