// Location-based analytics: time-correlated queries over a user-location
// dataset (the §3.1 running example, scaled up). Demonstrates the
// component-level range filter on creation_time: "recent" dashboards prune
// almost everything; historical queries show the strategy differences of
// Figure 19.
#include <cstdio>

#include "core/dataset.h"
#include "workload/tweet_gen.h"

using namespace auxlsm;

namespace {

void RunScenario(MaintenanceStrategy strategy) {
  EnvOptions eo;
  eo.page_size = 4096;
  eo.cache_pages = 2048;
  Env env(eo);
  DatasetOptions o;
  o.strategy = strategy;
  o.mem_budget_bytes = 512 << 10;
  Dataset ds(&env, o);
  TweetGenerator gen;

  // Two "years" of check-ins; users occasionally refresh their location
  // (an upsert of an old primary key with a new creation_time).
  const uint64_t kUsers = 20000;
  for (uint64_t i = 0; i < kUsers; i++) {
    if (!ds.Upsert(gen.Next()).ok()) std::abort();
  }
  Random rng(5);
  for (uint64_t i = 0; i < kUsers / 4; i++) {
    if (!ds.Upsert(gen.Update(rng.Uniform(kUsers))).ok()) std::abort();
  }
  if (!ds.FlushAll().ok()) std::abort();
  const uint64_t t_max = kUsers + kUsers / 4;

  std::printf("--- %s ---\n", StrategyName(strategy));
  struct Q {
    const char* label;
    uint64_t lo, hi;
  };
  const Q queries[] = {
      {"last day     (recent)", t_max - t_max / 730, t_max},
      {"last month   (recent)", t_max - t_max / 24, t_max},
      {"first month  (old)   ", 1, t_max / 24},
      {"first year   (old)   ", 1, t_max / 2},
  };
  for (const auto& q : queries) {
    env.cache()->Clear();
    const double io0 = env.stats().simulated_us;
    ScanResult res;
    if (!ds.ScanTimeRange(q.lo, q.hi, &res).ok()) std::abort();
    std::printf("  %s matched=%7llu scanned-components=%llu pruned=%llu "
                "io=%8.2f ms\n",
                q.label, (unsigned long long)res.records_matched,
                (unsigned long long)res.components_scanned,
                (unsigned long long)res.components_pruned,
                (env.stats().simulated_us - io0) / 1000.0);
  }
}

}  // namespace

int main() {
  std::printf("location analytics with component range filters on "
              "creation_time\n\n");
  RunScenario(MaintenanceStrategy::kEager);
  RunScenario(MaintenanceStrategy::kValidation);
  RunScenario(MaintenanceStrategy::kMutableBitmap);
  std::printf("\nNote how the Validation strategy cannot prune for the "
              "old-data queries\n(newer components must be read for "
              "overriding updates), while Mutable-bitmap\nprunes in every "
              "case (§6.4.2 / Figure 19).\n");
  return 0;
}
