// Quickstart: create a dataset, ingest a few tweets, then read it back
// through the unified query API — a point read, a secondary-index cursor,
// a paginated top-k read, and a time-range scan — and finish with the
// one-call observability dump (Dataset::DebugString).
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "core/dataset.h"

using namespace auxlsm;

int main() {
  // The Env simulates the storage stack: an in-memory page store with an
  // HDD cost model and an LRU buffer cache.
  Env env;

  // A dataset with the Validation maintenance strategy: upserts are blind
  // (no point lookups), secondary indexes are cleaned up lazily by repair.
  DatasetOptions options;
  options.strategy = MaintenanceStrategy::kValidation;
  options.merge_repair = true;
  Dataset dataset(&env, options);

  // Ingest a few records (auto-commit record-level transactions).
  for (uint64_t i = 1; i <= 1000; i++) {
    TweetRecord tweet;
    tweet.id = i;
    tweet.user_id = i % 50;
    tweet.location = i % 2 ? "CA" : "NY";
    tweet.creation_time = 2000 + i;
    tweet.message = "hello lsm #" + std::to_string(i);
    Status st = dataset.Upsert(tweet);
    if (!st.ok()) {
      std::fprintf(stderr, "upsert failed: %s\n", st.ToString().c_str());
      return 1;
    }
  }
  // Update a record: user 7 moves; the secondary index cleans up lazily.
  TweetRecord moved;
  moved.id = 7;
  moved.user_id = 49;
  moved.location = "WA";
  moved.creation_time = 4000;
  moved.message = "moved!";
  dataset.Upsert(moved);

  // Point read by primary key: Query().Primary(id).
  TweetRecord got;
  if (dataset.GetById(7, &got).ok()) {
    std::printf("id 7 -> user %llu, location %s\n",
                (unsigned long long)got.user_id, got.location.c_str());
  }

  // Secondary-index query: all records of user 49, drained from a cursor
  // (batched point lookups + timestamp validation under the hood). The
  // index is selected by catalog name.
  auto cursor_or = dataset.NewCursor(Query().Secondary("user_id").Range(49, 49));
  if (!cursor_or.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 cursor_or.status().ToString().c_str());
    return 1;
  }
  auto cursor = std::move(cursor_or).value();
  QueryResult res;
  if (Status st = cursor->Drain(&res); !st.ok()) {
    std::fprintf(stderr, "query failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("user 49 has %zu records (candidates=%llu, validated_out=%llu)\n",
              res.records.size(), (unsigned long long)res.candidates,
              (unsigned long long)res.validated_out);

  // Paginated top-k: a wide user range, but only the first 5 rows — the
  // cursor stops scanning, validating, and fetching once 5 rows are out.
  auto topk_or = dataset.NewCursor(
      Query().Secondary("user_id").Range(0, 49).Limit(5).PageSize(2));
  if (topk_or.ok()) {
    auto topk = std::move(topk_or).value();
    QueryPage page;
    size_t page_no = 0;
    while (!topk->done()) {
      if (!topk->Next(&page).ok()) break;
      for (const auto& r : page.records) {
        std::printf("  top-k page %zu: id %llu (user %llu)\n", page_no,
                    (unsigned long long)r.id, (unsigned long long)r.user_id);
      }
      page_no++;
    }
    std::printf("top-5 pulled %llu of %llu candidates\n",
                (unsigned long long)topk->stats().rows,
                (unsigned long long)topk->stats().candidates);
  }

  // Range-filter scan on creation_time (count-only: ScanResult counters).
  ScanResult scan;
  dataset.ScanTimeRange(2001, 2100, &scan);
  std::printf("time range [2001,2100]: %llu records matched, "
              "%llu components pruned\n",
              (unsigned long long)scan.records_matched,
              (unsigned long long)scan.components_pruned);

  const IoStats io = env.stats();
  std::printf("simulated I/O: %llu pages read (%llu random), %.2f ms\n",
              (unsigned long long)io.pages_read,
              (unsigned long long)io.random_reads, io.simulated_us / 1000.0);

  // Live metrics: every subsystem's counters and backlog gauges in one call
  // (see README "Observability" for the metric glossary). Always available —
  // the registry/tracer options only add latency histograms and trace spans.
  std::printf("\n%s", dataset.DebugString().c_str());
  return 0;
}
