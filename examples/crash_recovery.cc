// Crash recovery walkthrough (§2.2, §5.2): checkpoint a dataset, keep
// writing, "crash" (destroy the Dataset object, keeping the Env pages, WAL,
// and catalog), then recover and verify the committed tail was replayed —
// including mutable-bitmap deletes recorded via the log's update bit.
#include <cstdio>

#include "core/dataset.h"

using namespace auxlsm;

namespace {

TweetRecord Make(uint64_t id, uint64_t user, uint64_t time) {
  TweetRecord r;
  r.id = id;
  r.user_id = user;
  r.location = "CA";
  r.creation_time = time;
  r.message = "persistent tweet " + std::to_string(id);
  return r;
}

}  // namespace

int main() {
  Env env;        // survives the crash (the "disk")
  Wal durable_wal;  // survives the crash (the "log disk")
  DatasetCatalog catalog;

  DatasetOptions o;
  o.strategy = MaintenanceStrategy::kMutableBitmap;
  o.mem_budget_bytes = 1 << 30;

  {
    Dataset ds(&env, o);
    for (uint64_t i = 1; i <= 500; i++) {
      if (!ds.Upsert(Make(i, i % 10, i)).ok()) return 1;
    }
    if (!ds.FlushAll().ok()) return 1;
    catalog = ds.Checkpoint();
    std::printf("checkpoint at %llu records, max component LSN %llu\n",
                (unsigned long long)ds.num_records(),
                (unsigned long long)catalog.max_component_lsn);

    // Work after the checkpoint: 100 new tweets, 50 deletes (the deletes
    // flip bitmap bits in flushed components — volatile until checkpoint!).
    for (uint64_t i = 501; i <= 600; i++) {
      if (!ds.Upsert(Make(i, i % 10, i)).ok()) return 1;
    }
    for (uint64_t i = 1; i <= 50; i++) {
      if (!ds.Delete(i).ok()) return 1;
    }
    // An uncommitted transaction that must NOT survive.
    auto txn = ds.Begin();
    if (!ds.UpsertTxn(Make(9999, 1, 9999), txn.get()).ok()) return 1;
    // (no commit — the "crash" hits now)

    for (const auto& r : ds.wal()->ReadFrom(kInvalidLsn)) {
      durable_wal.Append(r);
    }
    std::printf("pre-crash: %llu records, %zu WAL records\n",
                (unsigned long long)ds.num_records(),
                durable_wal.num_records());
  }  // <- crash: all in-memory state (memtables, bitmap deltas) is gone

  RecoveryStats stats;
  auto recovered = Dataset::Recover(&env, &durable_wal, catalog, o, &stats);
  if (!recovered.ok()) {
    std::fprintf(stderr, "recovery failed: %s\n",
                 recovered.status().ToString().c_str());
    return 1;
  }
  Dataset* ds = recovered->get();
  std::printf("recovered: %llu ops replayed, %llu bitmap redo ops, "
              "%llu uncommitted skipped\n",
              (unsigned long long)stats.ops_replayed,
              (unsigned long long)stats.bitmap_ops_replayed,
              (unsigned long long)stats.uncommitted_skipped);
  std::printf("post-recovery record count: %llu (expected 550)\n",
              (unsigned long long)ds->num_records());

  TweetRecord r;
  const bool deleted_gone = ds->GetById(25, &r).IsNotFound();
  const bool new_present = ds->GetById(555, &r).ok();
  const bool uncommitted_gone = ds->GetById(9999, &r).IsNotFound();
  std::printf("delete replayed: %s, post-checkpoint insert replayed: %s, "
              "uncommitted dropped: %s\n",
              deleted_gone ? "yes" : "NO", new_present ? "yes" : "NO",
              uncommitted_gone ? "yes" : "NO");
  return deleted_gone && new_present && uncommitted_gone ? 0 : 1;
}
