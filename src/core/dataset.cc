#include "core/dataset.h"

#include <algorithm>
#include <chrono>

#include "common/hash.h"
#include "core/deleted_key.h"
#include "core/mutable_bitmap_build.h"
#include "exec/maintenance.h"
#include "format/key_codec.h"
#include "io/io_engine.h"

namespace auxlsm {

const char* StrategyName(MaintenanceStrategy s) {
  switch (s) {
    case MaintenanceStrategy::kEager: return "eager";
    case MaintenanceStrategy::kValidation: return "validation";
    case MaintenanceStrategy::kMutableBitmap: return "mutable-bitmap";
    case MaintenanceStrategy::kDeletedKeyBtree: return "deleted-key-btree";
  }
  return "?";
}

SecondaryIndexDef SecondaryIndexDef::UserId() {
  SecondaryIndexDef def;
  def.name = "user_id";
  def.sk_width = 8;
  def.extract = [](const TweetRecord& r) { return EncodeU64(r.user_id); };
  return def;
}

SecondaryIndexDef SecondaryIndexDef::SyntheticAttribute(size_t index_no) {
  if (index_no == 0) return UserId();
  SecondaryIndexDef def;
  def.name = "attr" + std::to_string(index_no);
  def.sk_width = 8;
  def.extract = [index_no](const TweetRecord& r) {
    // Deterministic per-index remix of the user id, so each index has a
    // distinct value distribution over the same domain size.
    return EncodeU64(Mix64(r.user_id * 1000003u + index_no) % 100000);
  };
  return def;
}

LsmTreeOptions Dataset::MakeTreeOptions(const std::string& name,
                                        bool is_primary, bool attach_bitmap,
                                        bool range_filter) const {
  LsmTreeOptions o;
  o.name = name;
  o.bloom_fpr = options_.bloom_fpr;
  o.build_bloom = true;
  o.build_blocked_bloom = options_.build_blocked_bloom;
  o.attach_bitmap = attach_bitmap;
  o.maintain_range_filter = range_filter;
  if (range_filter && is_primary) {
    o.filter_key_extractor = [](const Slice&, const Slice& value) {
      uint64_t t = 0;
      ExtractCreationTime(value, &t);
      return t;
    };
  }
  // Correlated merging is coordinated by the dataset, so per-tree policies
  // stay off in that mode.
  if (!options_.correlated_merges) {
    o.merge_policy = std::make_shared<TieringMergePolicy>(
        options_.merge_size_ratio, options_.max_mergeable_bytes);
  }
  o.scan_readahead_pages = options_.scan_readahead_pages;
  return o;
}

Dataset::Dataset(Env* env, DatasetOptions options)
    : env_(env),
      options_(std::move(options)),
      wal_(DeviceProfile::FromDisk(DiskProfile::Hdd(), options_.log_queues)),
      txns_(&locks_, &wal_) {
  const bool mb = options_.strategy == MaintenanceStrategy::kMutableBitmap;
  // The Mutable-bitmap strategy requires the primary index and the primary
  // key index to merge in lock step so their components keep sharing one
  // validity bitmap (§5.1: "we synchronize the merges ... using the
  // correlated merge policy"). Independent merges would silently drop the
  // sharing and lose bitmap marks.
  if (mb) options_.correlated_merges = true;
  primary_ = std::make_unique<LsmTree>(
      env_, MakeTreeOptions("primary", /*is_primary=*/true,
                            /*attach_bitmap=*/mb,
                            options_.maintain_range_filter));
  if (options_.enable_primary_key_index) {
    pk_index_ = std::make_unique<LsmTree>(
        env_, MakeTreeOptions("pk_index", /*is_primary=*/false,
                              /*attach_bitmap=*/false, false));
  }
  for (const auto& def : options_.secondary_indexes) {
    auto idx = std::make_unique<SecondaryIndex>();
    idx->def = def;
    idx->tree = std::make_unique<LsmTree>(
        env_, MakeTreeOptions(def.name, false, false, false));
    if (options_.strategy == MaintenanceStrategy::kDeletedKeyBtree) {
      idx->deleted_keys = std::make_unique<LsmTree>(
          env_, MakeTreeOptions(def.name + ".deleted", false, false, false));
    }
    secondary_catalog_.emplace(def.name, secondaries_.size());
    secondaries_.push_back(std::move(idx));
  }
  if (options_.tuple_cache_bytes > 0) {
    tuple_cache_ = std::make_unique<TupleCache>(
        options_.tuple_cache_bytes,
        static_cast<uint32_t>(1 + secondaries_.size()),
        options_.fault_injector);
    // Component turnover (flush installs, merges, repair) preserves logical
    // content, but an in-flight reader insert must not straddle it: fence
    // every space's epoch whenever any tree's disk-component list changes.
    TupleCache* cache = tuple_cache_.get();
    for (LsmTree* t : AllTrees()) {
      t->set_install_hook([cache]() { cache->BumpEpochs(); });
    }
  }
  MaintenanceOptions mopts;
  mopts.threads = options_.maintenance_threads;
  mopts.partition_min_bytes = options_.merge_partition_min_bytes == 0
                                  ? UINT64_MAX
                                  : options_.merge_partition_min_bytes;
  mopts.io = env_->io();  // queue affinity for fanned-out maintenance tasks
  mopts.fault = options_.fault_injector;
  auto scheduler = std::make_unique<MaintenanceScheduler>(mopts);
  // threads == 1 keeps the serial code paths untouched (no scheduler) —
  // unless decoupled merge scheduling needs the scheduler for its per-tree
  // merge queues (the engine then still runs every task inline/serially;
  // engine_parallel() keeps the serial code paths routed as before).
  const bool decoupled_merges =
      options_.merge_queue_depth > 0 && multi_writer();
  if (scheduler->parallel() || decoupled_merges) {
    maintenance_ = std::move(scheduler);
  }
  // Multi-writer commits batch their modeled log syncs (group commit).
  if (multi_writer()) wal_.set_group_commit(true);
  // Thread the fault injector through the WAL seams (Env/cache/IO sites are
  // wired by the Env itself via EnvOptions::fault_injector).
  if (options_.fault_injector != nullptr) {
    wal_.set_fault_injector(options_.fault_injector);
  }
  // Observability (PR 8). Storage-engine metrics are wired by the Env itself
  // (EnvOptions::metrics); the dataset adds its own histograms, the WAL's
  // commit-latency histogram, and the log device's io.log metrics.
  if (options_.metrics != nullptr) {
    hist_ingest_modeled_ = options_.metrics->histogram("ingest.op_modeled_ns");
    hist_ingest_wall_ = options_.metrics->histogram("ingest.op_wall_ns");
    hist_cycle_wall_ = options_.metrics->histogram("maintenance.cycle_wall_ns");
    hist_flush_build_wall_ =
        options_.metrics->histogram("maintenance.flush_build_wall_ns");
    hist_merge_job_wall_ =
        options_.metrics->histogram("maintenance.merge_job_wall_ns");
    ctr_cursor_open_ = options_.metrics->counter("query.cursors_opened");
    ctr_cursor_pull_ = options_.metrics->counter("query.pages_pulled");
    wal_.set_metrics(options_.metrics);
    wal_.io()->set_metrics(options_.metrics, "io.log");
  }
  if (options_.trace_buffer_bytes > 0) {
    tracer_ = std::make_unique<obs::Tracer>(options_.trace_buffer_bytes);
    // Modeled stamps come from the recording thread's bound storage queue —
    // the clock the DIGEST critical path is made of.
    IoEngine* const storage_io = env_->io();
    tracer_->set_modeled_clock(
        [storage_io]() { return storage_io->BoundQueueClock(); });
    wal_.set_tracer(tracer_.get());
    wal_.io()->set_tracer(tracer_.get());
    env_->io()->set_tracer(tracer_.get());  // detached in ~Dataset
  }
}

bool Dataset::engine_parallel() const {
  return maintenance_ != nullptr && maintenance_->parallel();
}

Dataset::~Dataset() {
  // Background maintenance touches the trees and the WAL; join it first.
  WaitForMaintenance();
  // The tracer dies with the dataset but the Env outlives it: detach.
  if (tracer_ != nullptr) env_->io()->set_tracer(nullptr);
}

std::vector<LsmTree*> Dataset::AllTrees() {
  std::vector<LsmTree*> trees;
  trees.push_back(primary_.get());
  if (pk_index_) trees.push_back(pk_index_.get());
  for (const auto& s : secondaries_) {
    trees.push_back(s->tree.get());
    if (s->deleted_keys) trees.push_back(s->deleted_keys.get());
  }
  return trees;
}

size_t Dataset::MemComponentBytes() const {
  size_t total = primary_->MemBytes();
  if (pk_index_) total += pk_index_->MemBytes();
  for (const auto& s : secondaries_) {
    total += s->tree->MemBytes();
    if (s->deleted_keys) {
      total += s->deleted_keys->MemBytes();
    }
  }
  return total;
}

Status Dataset::JoinFlushCycle() {
  std::thread t;
  {
    MutexLock l(bg_mu_);
    if (bg_thread_.joinable()) t = std::move(bg_thread_);
  }
  if (t.joinable()) t.join();
  MutexLock l(bg_mu_);
  return bg_status_;
}

Status Dataset::WaitForMaintenance() {
  Status s = JoinFlushCycle();
  if (maintenance_ != nullptr) {
    // Decoupled merge scheduling: quiescing means the merge queues are empty
    // too, and their sticky first error surfaces here (a no-op with empty
    // queues, i.e. on every coupled configuration).
    const Status merge = maintenance_->DrainMerges();
    if (s.ok()) s = merge;
  }
  return s;
}

Status Dataset::TakeBackgroundError() {
  // Pop one error class per call: when both the flush cycle and a merge job
  // failed, the first call returns (and clears) the flush error and leaves
  // the merge error observable for the next call — never silently dropped.
  Status s;
  {
    MutexLock l(bg_mu_);
    if (!bg_status_.ok()) {
      s = bg_status_;
      bg_status_ = Status::OK();
    }
  }
  if (s.ok() && maintenance_ != nullptr) s = maintenance_->TakeMergeError();
  // Degraded mode lifts only once no sticky error remains in either class —
  // taking the flush error while a merge error is still queued keeps ingest
  // fail-fast until that one is taken too.
  bool clear;
  {
    MutexLock l(bg_mu_);
    clear = bg_status_.ok() &&
            (maintenance_ == nullptr || !maintenance_->has_merge_error());
  }
  if (clear) degraded_.store(false, std::memory_order_release);
  return s;
}

Status Dataset::RunWithRetry(const std::string& what,
                             const std::function<Status()>& fn) {
  uint32_t attempt = 0;
  while (true) {
    const Status s = fn();
    if (s.ok()) {
      if (attempt > 0) mstats_.retries_succeeded++;
      return s;
    }
    if (!s.retryable()) {
      // Permanent (Corruption, Aborted, ...): re-running cannot help.
      mstats_.rounds_abandoned++;
      return s.WithContext(what);
    }
    mstats_.transient_failures++;
    if (attempt >= options_.maintenance_retry_limit) {
      mstats_.rounds_abandoned++;
      return s.WithContext(what + " (retries exhausted)");
    }
    attempt++;
    mstats_.retries_attempted++;
    if (tracer_ != nullptr) {
      obs::TraceEvent ev;
      ev.SetName(("retry:" + what).c_str());
      ev.cat = "maintenance";
      ev.instant = true;
      ev.wall_ts_us = tracer_->WallNowUs();
      ev.modeled_ts_us = tracer_->ModeledNowUs();
      tracer_->Record(ev);
    }
    // Exponential backoff: charged to the modeled clock (so retry storms
    // show up in simulated time) and bounded-slept for real (so the
    // background thread cannot spin a core under a fault storm).
    const uint64_t backoff = options_.retry_backoff_us
                             << std::min<uint32_t>(attempt, 10);
    if (backoff > 0) {
      env_->io()->ChargeDelay(double(backoff));
      std::this_thread::sleep_for(
          std::chrono::microseconds(std::min<uint64_t>(backoff, 1000)));
    }
  }
}

void Dataset::MarkDegraded(const Status& cause) {
  if (!cause.ok()) {
    MutexLock l(bg_mu_);
    if (bg_status_.ok()) bg_status_ = cause;
  }
  MarkDegraded();
}

void Dataset::MarkDegraded() {
  if (!degraded_.exchange(true, std::memory_order_acq_rel)) {
    mstats_.degraded_transitions++;
    if (tracer_ != nullptr) tracer_->Instant("dataset.degraded", "health");
  }
}

Status Dataset::DegradedError() {
  {
    MutexLock l(bg_mu_);
    if (!bg_status_.ok()) return bg_status_;
  }
  if (maintenance_ != nullptr) {
    const Status s = maintenance_->merge_error();
    if (!s.ok()) return s;
  }
  // The flag is set but both sticky slots already drained (a concurrent
  // taker raced us): report the state rather than inventing an error.
  return Status::Aborted("dataset degraded: maintenance failed");
}

Status Dataset::MaintainAsync(bool in_explicit_txn) {
  {
    MutexLock l(bg_mu_);
    AUXLSM_RETURN_NOT_OK(bg_status_);  // surface sticky pipeline errors
  }
  if (merge_queues_enabled() && maintenance_->has_merge_error()) {
    AUXLSM_RETURN_NOT_OK(maintenance_->merge_error());  // rare slow path
  }
  if (MemComponentBytes() < options_.mem_budget_bytes) return Status::OK();
  // Deadlock guard: only the §5.3 Lock-method builder takes record locks
  // during a merge, so only there can "merge waits on a transaction's lock,
  // the transaction's thread waits on the merge" form a cycle no timeout
  // breaks. Threads holding an open explicit transaction skip merge-side
  // waits in exactly that configuration (their overrun is bounded by the
  // transaction's length); every other strategy/CC keeps full backpressure,
  // and the flush-cycle join stays safe everywhere (seal/build/install
  // never take record locks).
  const bool skip_merge_waits =
      in_explicit_txn &&
      options_.strategy == MaintenanceStrategy::kMutableBitmap &&
      options_.build_cc == BuildCcMethod::kLock;
  if (merge_queues_enabled()) {
    // Bounded merge-backlog backpressure: writers stall only while the merge
    // queues are more than merge_queue_depth flush rounds behind — they wait
    // out the backlog *excess*, never a full drain, so the stall is bounded
    // by the overrun rather than the whole merge schedule.
    if (!skip_merge_waits) {
      maintenance_->WaitForMergeRounds(options_.merge_queue_depth);
    }
    // Memory bound: a writer a whole budget ahead joins the in-flight
    // *flush* cycle only (merges are queued elsewhere), so this wait is
    // bounded by flush time — the decoupling payoff.
    if (MemComponentBytes() >= 2 * options_.mem_budget_bytes) {
      AUXLSM_RETURN_NOT_OK(JoinFlushCycle());
    }
  } else if (!skip_merge_waits &&
             MemComponentBytes() >= 2 * options_.mem_budget_bytes) {
    // Coupled legacy backpressure: wait for the whole cycle, merges
    // included — which is why Lock-method explicit-txn threads must skip it
    // (the cycle's merge phase can be blocked on one of their locks: the
    // same deadlock, present since the pipeline landed, closed here too).
    AUXLSM_RETURN_NOT_OK(WaitForMaintenance());
  }
  bool expected = false;
  if (!bg_active_.compare_exchange_strong(expected, true)) {
    return Status::OK();  // a cycle is already running
  }
  // Sole launcher from here: reap the previous cycle's thread, start ours.
  std::thread prev;
  {
    MutexLock l(bg_mu_);
    if (bg_thread_.joinable()) prev = std::move(bg_thread_);
  }
  if (prev.joinable()) prev.join();
  MutexLock l(bg_mu_);
  bg_thread_ = std::thread([this]() {
    Status s = MaintenanceCycle();
    // A failed cycle already exhausted its retry budget (or hit a permanent
    // error): store the sticky error and degrade to read-only until the
    // caller takes it (TakeBackgroundError).
    if (!s.ok()) MarkDegraded(s);
    bg_active_.store(false, std::memory_order_release);
  });
  return Status::OK();
}

Status Dataset::MaintenanceCycle() {
  obs::TraceSpan cycle_span(tracer_.get(), "maintenance.cycle", "maintenance");
  const auto cycle_wall0 = std::chrono::steady_clock::now();
  // Phase 1 — seal: a brief exclusive section swaps every tree's memtable;
  // writers resume into fresh ones while the sealed set is built.
  std::vector<std::pair<LsmTree*, std::shared_ptr<Memtable>>> sealed;
  Lsn flush_lsn = kInvalidLsn;
  {
    obs::TraceSpan seal_span(tracer_.get(), "seal", "maintenance");
    WriteLatchGuard latch(ingest_mu_);
    if (MemComponentBytes() < options_.mem_budget_bytes) {
      return Status::OK();  // another path already resolved the overrun
    }
    // No-steal: an open explicit transaction may have uncommitted effects in
    // the memtables — sealing them would flush uncommitted data to disk and
    // strand the rollback closures. Auto-commit transactions live entirely
    // inside a shared-latch hold, so under the exclusive latch any active
    // count is explicit ones; defer the cycle until they close (a later
    // ingest op re-triggers it).
    if (txns_.active_transactions() > 0) return Status::OK();
    for (LsmTree* t : AllTrees()) {
      t->SealMemtable();
      // Collect every pending sealed memtable, not just the fresh one: a
      // prior cycle abandoned by a build failure left its memtables sealed
      // (recoverable, but uninstalled) — this is their re-flush path.
      for (auto& m : t->PendingSealed()) sealed.emplace_back(t, m);
    }
    flush_lsn = wal_.tail_lsn();
  }
  if (sealed.empty()) return Status::OK();

  // Phase 2 — build the flushed components off-latch (fanned out on the
  // maintenance engine when it is active; distinct trees, distinct files).
  // Each build runs under the transient-retry policy; a failed build leaves
  // its sealed memtable in place, so no data is lost (WAL + sealed state).
  FaultInjector* const fault = options_.fault_injector;
  std::vector<DiskComponentPtr> built(sealed.size());
  auto build_one = [&](size_t i) -> Status {
    const std::string& tree = sealed[i].first->options().name;
    obs::TraceSpan build_span(tracer_.get(),
                              ("flush_build(" + tree + ")").c_str(),
                              "maintenance",
                              int32_t(env_->io()->BoundQueue()));
    const auto wall0 = std::chrono::steady_clock::now();
    const Status s = RunWithRetry(
        "flush(" + tree + ")", [&, i]() -> Status {
          if (fault != nullptr) {
            AUXLSM_RETURN_NOT_OK(
                fault->Hit(failpoints::kFlushBuild, env_->io()));
          }
          AUXLSM_ASSIGN_OR_RETURN(
              built[i], sealed[i].first->BuildFromSealed(sealed[i].second));
          return Status::OK();
        });
    if (hist_flush_build_wall_ != nullptr) {
      hist_flush_build_wall_->Record(uint64_t(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - wall0)
              .count()));
    }
    return s;
  };
  if (engine_parallel()) {
    std::vector<std::function<Status()>> tasks;
    for (size_t i = 0; i < sealed.size(); i++) {
      tasks.push_back([&build_one, i]() { return build_one(i); });
    }
    AUXLSM_RETURN_NOT_OK(maintenance_->RunAll(std::move(tasks)));
  } else {
    for (size_t i = 0; i < sealed.size(); i++) {
      // Inline build still spreads trees over device queues: modeled device
      // concurrency does not require host concurrency (no-op on one queue).
      IoQueueScope io_scope(env_->io(), uint32_t(i));
      AUXLSM_RETURN_NOT_OK(build_one(i));
    }
  }

  // Phase 3 — install under the latch: all trees' components appear
  // atomically w.r.t. ingestion, preserving the positional alignment that
  // correlated merges and bitmap sharing rely on. The install failpoint is
  // consulted ONCE, before any tree installs — an injected install error is
  // all-or-nothing (no tree installed), never a partial install that would
  // break the positional alignment.
  {
    obs::TraceSpan install_span(tracer_.get(), "install", "maintenance");
    WriteLatchGuard latch(ingest_mu_);
    if (fault != nullptr) {
      AUXLSM_RETURN_NOT_OK(RunWithRetry("install", [&]() -> Status {
        return fault->Hit(failpoints::kInstall, env_->io());
      }));
    }
    for (size_t i = 0; i < sealed.size(); i++) {
      AUXLSM_RETURN_NOT_OK(
          sealed[i].first->InstallFlushed(sealed[i].second, built[i]));
      built[i]->set_max_lsn(flush_lsn);
    }
    if (options_.strategy == MaintenanceStrategy::kMutableBitmap) {
      if (pk_index_) {
        auto pcomps = primary_->Components();
        auto kcomps = pk_index_->Components();
        if (!pcomps.empty() && !kcomps.empty() &&
            kcomps.front()->bitmap() == nullptr) {
          kcomps.front()->set_bitmap(pcomps.front()->bitmap());
        }
      }
      AUXLSM_RETURN_NOT_OK(FixupFlushedBitmap());
    }
    stats_.flushes++;
  }

  // Phase 4 — merges off-latch. Writers only mutate memtables (and, under
  // Mutable-bitmap, old components' bitmaps — which CorrelatedMerge routes
  // through the §5.3 concurrency-control machinery), so merges are safe
  // against concurrent ingestion. Decoupled mode hands the work to the
  // per-tree merge queues instead, so this cycle — and with it the *next*
  // seal/install — never waits on a merge backlog.
  auto record_cycle_wall = [&]() {
    if (hist_cycle_wall_ != nullptr) {
      hist_cycle_wall_->Record(uint64_t(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - cycle_wall0)
              .count()));
    }
  };
  if (merge_queues_enabled()) {
    // Every cycle enqueues its round unconditionally: a tree whose earlier
    // jobs already retired would otherwise never see this cycle's installs
    // (no re-enqueue path exists outside a flush cycle), leaving a quiesced
    // dataset above its merge policy. Backlog stays bounded anyway: writers
    // wait at merge_queue_depth before launching a cycle, and each of the
    // at-most-writer_threads threads parked between that wait and the CAS
    // can add one stale round — ≤ depth + writer_threads rounds total.
    EnqueueMergeWork();
    record_cycle_wall();
    return Status::OK();
  }
  Status s;
  {
    obs::TraceSpan merge_span(tracer_.get(), "merge", "maintenance");
    s = RunMerges();
  }
  record_cycle_wall();
  return s;
}

void Dataset::EnqueueMergeWork() {
  // One round = one job per serial merge stream: the whole dataset under
  // correlated merges (every index merges in lock step with the anchor), one
  // per tree otherwise. Jobs sharing a key run serially in FIFO order on the
  // scheduler's merge queues, preserving the per-tree merge serialization
  // invariant; redundant jobs (the tree's policy is already satisfied when
  // they run) are cheap no-op policy checks, and the round count is exactly
  // how many flush cycles the merge queues are running behind.
  std::vector<MaintenanceScheduler::MergeJob> round;
  auto add = [&](LsmTree* accounting_tree, MaintenanceScheduler::MergeKey key,
                 std::function<Status()> work) {
    accounting_tree->BeginQueuedMerge();
    const std::string what =
        "merge_job(" + accounting_tree->options().name + ")";
    round.push_back(MaintenanceScheduler::MergeJob{
        key, [this, accounting_tree, what, work = std::move(work)]() {
          // Transient job failures retry in place on the queue (the work
          // re-picks its merge inputs each run, so a retry sees the current
          // component lists). This is the merge-round retry policy the
          // decoupled scheduling PR deferred. EndQueuedMerge runs no matter
          // what — a failed job must never leave the accounting wedged.
          FaultInjector* const fault = options_.fault_injector;
          Status s;
          {
            obs::TraceSpan job_span(tracer_.get(), what.c_str(), "merge",
                                    int32_t(env_->io()->BoundQueue()));
            const auto wall0 = std::chrono::steady_clock::now();
            s = RunWithRetry(what, [&]() -> Status {
              if (fault != nullptr) {
                AUXLSM_RETURN_NOT_OK(
                    fault->Hit(failpoints::kMergeJob, env_->io()));
              }
              return work();
            });
            if (hist_merge_job_wall_ != nullptr) {
              hist_merge_job_wall_->Record(uint64_t(
                  std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::steady_clock::now() - wall0)
                      .count()));
            }
          }
          accounting_tree->EndQueuedMerge();
          // Flag-only degrade: the scheduler keeps the sticky error itself
          // (storing a copy in bg_status_ would double-report it).
          if (!s.ok()) MarkDegraded();
          return s;
        }});
  };
  if (options_.correlated_merges) {
    LsmTree* anchor = pk_index_ ? pk_index_.get() : primary_.get();
    add(anchor, anchor, [this]() { return CorrelatedMerge(/*decoupled=*/true); });
    maintenance_->EnqueueMergeRound(std::move(round));
    return;
  }
  add(primary_.get(), primary_.get(), [this]() {
    uint64_t merges = 0;
    const Status s = maintenance_->MergeToPolicy(primary_.get(), &merges);
    stats_.merges += merges;
    return s;
  });
  if (pk_index_ != nullptr) {
    add(pk_index_.get(), pk_index_.get(), [this]() {
      uint64_t merges = 0;
      const Status s = maintenance_->MergeToPolicy(pk_index_.get(), &merges);
      stats_.merges += merges;
      return s;
    });
  }
  for (auto& sp : secondaries_) {
    SecondaryIndex* s = sp.get();
    add(s->tree.get(), s->tree.get(), [this, s]() {
      uint64_t merges = 0, repairs = 0;
      const Status st =
          SecondaryMergesToPolicy(s, &merges, &repairs, /*decoupled=*/true);
      stats_.merges += merges;
      stats_.repairs += repairs;
      return st;
    });
  }
  maintenance_->EnqueueMergeRound(std::move(round));
}

Status Dataset::SecondaryMergesToPolicy(SecondaryIndex* s, uint64_t* merges,
                                        uint64_t* repairs, bool decoupled) {
  if (options_.strategy == MaintenanceStrategy::kValidation &&
      options_.merge_repair) {
    return MergeRepairToPolicy(s, merges, repairs);
  }
  if (options_.strategy == MaintenanceStrategy::kDeletedKeyBtree) {
    return DeletedKeyMergesToPolicy(s, merges, decoupled);
  }
  AUXLSM_RETURN_NOT_OK(maintenance_->MergeToPolicy(s->tree.get(), merges));
  return maintenance_->MergeToPolicy(s->deleted_keys.get(), merges);
}

void Dataset::RecordBitmapFixup(const std::string& pk, Timestamp ts) {
  MutexLock l(fixup_mu_);
  pending_bitmap_fixups_.emplace_back(pk, ts);
}

Status Dataset::FixupFlushedBitmap() {
  ingest_mu_.AssertHeld();
  // Deletes/upserts whose old version sat in a *sealed* memtable left only
  // anti-matter (or a newer version) in the active memtable; the flushed
  // component carries the old version as valid. Mark those entries invalid,
  // exactly as MutableBitmapUpsert would have had the component existed —
  // otherwise the §5 no-reconciliation scans would resurrect them.
  //
  // The superseding writes were recorded as they happened (the write found
  // its old version in a sealed memtable — precisely the entries the flushed
  // component now carries as valid), so only they pay a B-tree probe here,
  // not every entry of the active memtable. Keys whose old version was on
  // disk had their bit flipped directly at write time, and fresh inserts
  // cannot supersede a live sealed entry (the uniqueness check rejects
  // them), so nothing else can need a mark.
  std::vector<std::pair<std::string, Timestamp>> pending;
  {
    MutexLock l(fixup_mu_);
    pending.swap(pending_bitmap_fixups_);
  }
  if (pending.empty()) return Status::OK();
  auto pcomps = primary_->Components();
  if (pcomps.empty()) return Status::OK();
  const DiskComponentPtr& front = pcomps.front();
  if (front->bitmap() == nullptr) return Status::OK();
  for (size_t i = 0; i < pending.size(); i++) {
    const auto& [key, ts] = pending[i];
    LeafEntry entry;
    std::string backing;
    uint64_t ordinal = 0;
    Status st = front->tree().GetWithOrdinal(key, &entry, &backing,
                                             &ordinal);
    if (st.IsNotFound()) continue;
    if (!st.ok()) {
      // Re-stash the unprocessed marks (current one included — Set is
      // idempotent): a retried cycle must not lose supersessions, or the §5
      // scans would resurrect the dead entries.
      MutexLock l(fixup_mu_);
      pending_bitmap_fixups_.insert(pending_bitmap_fixups_.begin(),
                                    pending.begin() + i, pending.end());
      return st.WithContext("bitmap fixup");
    }
    if (!entry.antimatter && entry.ts < ts) {
      front->bitmap()->Set(ordinal);
      // The bit flip changed the visible outcome for this pk outside the
      // write path's own invalidation window; cut the cache again.
      if (tuple_cache_) tuple_cache_->InvalidatePk(key);
    }
  }
  return Status::OK();
}

Status Dataset::FlushAll() {
  AUXLSM_RETURN_NOT_OK(WaitForMaintenance());
  WriteLatchGuard l(ingest_mu_);
  return FlushAllLocked();
}

Status Dataset::FlushAllLocked() {
  ingest_mu_.AssertHeld();
  const Lsn flush_lsn = wal_.tail_lsn();
  FaultInjector* const fault = options_.fault_injector;
  // Phase 1 — seal every tree (the caller holds the exclusive latch). The
  // slot number preserves the legacy per-tree device-queue binding (one slot
  // per enumerated tree position, occupied or not), so multi-queue simulated
  // charges are bit-for-bit the pre-restructure costs.
  struct PendingFlush {
    LsmTree* tree;
    std::shared_ptr<Memtable> mem;
    uint32_t slot;
  };
  std::vector<PendingFlush> sealed;
  {
    obs::TraceSpan seal_span(tracer_.get(), "seal", "maintenance");
    uint32_t slot = 0;
    auto collect = [&](LsmTree* t) {
      const uint32_t my_slot = slot++;
      if (t == nullptr) return;
      t->SealMemtable();
      for (auto& m : t->PendingSealed()) {
        sealed.push_back(PendingFlush{t, m, my_slot});
      }
    };
    collect(primary_.get());
    collect(pk_index_.get());
    for (auto& s : secondaries_) {
      collect(s->tree.get());
      collect(s->deleted_keys.get());
    }
  }

  // Phase 2 — build all components, then install all (phase 3): a build
  // failure (injected or real) leaves every tree uninstalled and its sealed
  // memtables intact, instead of some trees flushed and others not — the
  // partial state that breaks the positional alignment correlated merges
  // and bitmap sharing rely on. Builds run under the transient-retry policy.
  std::vector<DiskComponentPtr> built(sealed.size());
  auto build_one = [&](size_t i) -> Status {
    const std::string& tree = sealed[i].tree->options().name;
    obs::TraceSpan build_span(tracer_.get(),
                              ("flush_build(" + tree + ")").c_str(),
                              "maintenance",
                              int32_t(env_->io()->BoundQueue()));
    const auto wall0 = std::chrono::steady_clock::now();
    const Status s = RunWithRetry(
        "flush(" + tree + ")", [&, i]() -> Status {
          if (fault != nullptr) {
            AUXLSM_RETURN_NOT_OK(
                fault->Hit(failpoints::kFlushBuild, env_->io()));
          }
          AUXLSM_ASSIGN_OR_RETURN(built[i],
                                  sealed[i].tree->BuildFromSealed(
                                      sealed[i].mem));
          return Status::OK();
        });
    if (hist_flush_build_wall_ != nullptr) {
      hist_flush_build_wall_->Record(uint64_t(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - wall0)
              .count()));
    }
    return s;
  };
  if (engine_parallel()) {
    // All indexes flush together (shared budget); their builds write to
    // distinct trees and files, so they run concurrently on the pool.
    std::vector<std::function<Status()>> tasks;
    for (size_t i = 0; i < sealed.size(); i++) {
      tasks.push_back([&build_one, i]() { return build_one(i); });
    }
    AUXLSM_RETURN_NOT_OK(maintenance_->RunAll(std::move(tasks)));
  } else {
    // Serial path: builds run inline, but each tree still charges its own
    // device queue so multi-queue profiles overlap them in simulated time
    // (queue 0 for every tree on a single-queue device — the legacy costs).
    for (size_t i = 0; i < sealed.size(); i++) {
      IoQueueScope io_scope(env_->io(), sealed[i].slot);
      AUXLSM_RETURN_NOT_OK(build_one(i));
    }
  }

  // Phase 3 — install everything. The install failpoint is consulted once,
  // before any tree installs (all-or-nothing, as in MaintenanceCycle).
  obs::TraceSpan install_span(tracer_.get(), "install", "maintenance");
  if (fault != nullptr && !sealed.empty()) {
    AUXLSM_RETURN_NOT_OK(RunWithRetry("install", [&]() -> Status {
      return fault->Hit(failpoints::kInstall, env_->io());
    }));
  }
  for (size_t i = 0; i < sealed.size(); i++) {
    AUXLSM_RETURN_NOT_OK(sealed[i].tree->InstallFlushed(sealed[i].mem,
                                                        built[i]));
    built[i]->set_max_lsn(flush_lsn);
  }
  // A direct FlushAll flushed active and sealed memtables together, so any
  // recorded seal-window supersessions now coexist with their newer versions
  // as separate components reconciled by recency — exactly the pre-side-list
  // behavior of this path. Drop the stale records (they could only ever
  // no-op against later components, but each would waste a B-tree probe).
  if (options_.strategy == MaintenanceStrategy::kMutableBitmap) {
    MutexLock fl(fixup_mu_);
    pending_bitmap_fixups_.clear();
  }
  // Under the Mutable-bitmap strategy the primary and primary key index are
  // synchronized and share one validity bitmap per component (§5.1).
  if (options_.strategy == MaintenanceStrategy::kMutableBitmap && pk_index_) {
    auto pcomps = primary_->Components();
    auto kcomps = pk_index_->Components();
    if (!pcomps.empty() && !kcomps.empty() &&
        kcomps.front()->bitmap() == nullptr) {
      kcomps.front()->set_bitmap(pcomps.front()->bitmap());
    }
  }
  stats_.flushes++;
  return Status::OK();
}

Status Dataset::MergeRepairToPolicy(SecondaryIndex* index, uint64_t* merges,
                                    uint64_t* repairs) {
  // Merge repair replaces the plain merge for secondary indexes (§4.4). The
  // tree's own policy is the same tiering policy the options describe.
  FaultInjector* const fault = options_.fault_injector;
  std::vector<DiskComponentPtr> picked;
  while (index->tree->PickMergeCandidates(&picked)) {
    AUXLSM_RETURN_NOT_OK(RunWithRetry(
        "repair(" + index->def.name + ")", [&]() -> Status {
          if (fault != nullptr) {
            AUXLSM_RETURN_NOT_OK(fault->Hit(failpoints::kMerge, env_->io()));
          }
          return RunMergeRepair(this, index, picked);
        }));
    (*merges)++;
    (*repairs)++;
  }
  return Status::OK();
}

MergeRange Dataset::PickTieringRange(
    const std::vector<DiskComponentPtr>& comps) const {
  std::vector<ComponentSizeInfo> sizes;
  sizes.reserve(comps.size());
  for (const auto& c : comps) {
    sizes.push_back(ComponentSizeInfo{c->size_bytes()});
  }
  TieringMergePolicy policy(options_.merge_size_ratio,
                            options_.max_mergeable_bytes);
  return policy.PickMerge(sizes);
}

namespace {

std::vector<DiskComponentPtr> SliceRange(
    const std::vector<DiskComponentPtr>& comps, const MergeRange& r) {
  return {comps.begin() + r.begin, comps.begin() + r.end};
}

}  // namespace

Status Dataset::DeletedKeyMergesToPolicy(SecondaryIndex* index,
                                         uint64_t* merges, bool decoupled) {
  while (true) {
    // Pick and capture the index slice and its lock-step deleted-keys slice
    // in one consistent view: as a merge-queue job (`decoupled`), flush
    // installs run concurrently and would shift positions between the two
    // reads, so the pick holds the ingest latch shared (see CorrelatedMerge).
    MergeRange r;
    std::vector<DiskComponentPtr> picked, dk_picked;
    // The guard scope depends on `decoupled`, which one scoped guard cannot
    // express; the capture is hoisted into a lambda run under the latch or
    // bare. The lambda carries no capability assumptions of its own — the
    // component lists are internally synchronized, the latch only freezes
    // the positional alignment between the two reads.
    auto capture = [&]() {
      auto comps = index->tree->Components();
      r = PickTieringRange(comps);
      if (r.empty() || r.count() < 2) return;
      picked = SliceRange(comps, r);
      auto dk = index->deleted_keys->Components();
      if (dk.size() >= r.end) dk_picked = SliceRange(dk, r);
    };
    if (decoupled) {
      ReadLatchGuard pick_latch(ingest_mu_);
      capture();
    } else {
      capture();
    }
    if (r.empty() || r.count() < 2) break;
    FaultInjector* const fault = options_.fault_injector;
    AUXLSM_RETURN_NOT_OK(RunWithRetry(
        "merge(" + index->def.name + ".deleted)", [&]() -> Status {
          if (fault != nullptr) {
            AUXLSM_RETURN_NOT_OK(fault->Hit(failpoints::kMerge, env_->io()));
          }
          return RunDeletedKeyMergePicked(this, index, picked, dk_picked);
        }));
    (*merges)++;
  }
  return Status::OK();
}

Status Dataset::RunMerges() {
  if (options_.correlated_merges) return CorrelatedMerge();
  if (engine_parallel()) return ParallelMerges();
  FaultInjector* const fault = options_.fault_injector;
  auto merge_tree = [&](LsmTree* t) -> Status {
    if (t == nullptr) return Status::OK();
    // The serial path bypasses the scheduler (whose MergeComponents carries
    // the merge failpoint), so the site is consulted here; transient
    // failures retry the tree's merge loop from the current component set.
    return RunWithRetry(
        "merge(" + t->options().name + ")", [&, t]() -> Status {
          bool merged = true;
          while (merged) {
            if (fault != nullptr) {
              AUXLSM_RETURN_NOT_OK(fault->Hit(failpoints::kMerge,
                                              env_->io()));
            }
            AUXLSM_RETURN_NOT_OK(t->TryMerge(&merged));
            if (merged) stats_.merges++;
          }
          return Status::OK();
        });
  };
  AUXLSM_RETURN_NOT_OK(merge_tree(primary_.get()));
  AUXLSM_RETURN_NOT_OK(merge_tree(pk_index_.get()));
  for (auto& s : secondaries_) {
    if (options_.strategy == MaintenanceStrategy::kValidation &&
        options_.merge_repair) {
      uint64_t merges = 0, repairs = 0;
      AUXLSM_RETURN_NOT_OK(MergeRepairToPolicy(s.get(), &merges, &repairs));
      stats_.merges += merges;
      stats_.repairs += repairs;
    } else if (options_.strategy == MaintenanceStrategy::kDeletedKeyBtree) {
      uint64_t merges = 0;
      AUXLSM_RETURN_NOT_OK(DeletedKeyMergesToPolicy(s.get(), &merges));
      stats_.merges += merges;
    } else {
      AUXLSM_RETURN_NOT_OK(merge_tree(s->tree.get()));
      AUXLSM_RETURN_NOT_OK(merge_tree(s->deleted_keys.get()));
    }
  }
  return Status::OK();
}

Status Dataset::ParallelMerges() {
  // One task per tree: independent trees merge concurrently while each
  // tree's own merges stay serialized inside its task (the engine's
  // per-tree serialization rule). Secondary repair/deleted-key merges read
  // the primary-key index concurrently with its own merge — safe because
  // readers work on component snapshots and ReplaceComponents swaps
  // atomically. IngestStats is only updated after the join.
  std::vector<std::function<Status()>> tasks;
  std::vector<uint64_t> merge_counts(2 + secondaries_.size(), 0);
  std::vector<uint64_t> repair_counts(secondaries_.size(), 0);

  tasks.push_back([this, c = &merge_counts[0]]() {
    return maintenance_->MergeToPolicy(primary_.get(), c);
  });
  if (pk_index_ != nullptr) {
    tasks.push_back([this, c = &merge_counts[1]]() {
      return maintenance_->MergeToPolicy(pk_index_.get(), c);
    });
  }
  for (size_t i = 0; i < secondaries_.size(); i++) {
    SecondaryIndex* s = secondaries_[i].get();
    uint64_t* mc = &merge_counts[2 + i];
    uint64_t* rc = &repair_counts[i];
    tasks.push_back([this, s, mc, rc]() {
      return SecondaryMergesToPolicy(s, mc, rc, /*decoupled=*/false);
    });
  }
  AUXLSM_RETURN_NOT_OK(maintenance_->RunAll(std::move(tasks)));
  for (uint64_t c : merge_counts) stats_.merges += c;
  for (uint64_t c : repair_counts) stats_.repairs += c;
  return Status::OK();
}

Status Dataset::CorrelatedMerge(bool decoupled) {
  // The correlated merge policy (§4.4) keeps all of a dataset's indexes
  // merging in lock step with the primary key index: all indexes flush
  // together, so their newest-first component lists are positionally aligned
  // and one pick applies to every index.
  LsmTree* anchor = pk_index_ ? pk_index_.get() : primary_.get();
  while (true) {
    // Pick the round's range and capture every tree's input slice in one
    // consistent view. As a merge-queue job (`decoupled`), flush installs
    // run concurrently and would shift positional indexes between reads of
    // different trees' lists, so the pick holds the ingest latch *shared* —
    // installs hold it exclusively, writers are unaffected. The merges below
    // install by identity (ReplaceComponents), which tolerates components
    // prepended after the capture.
    MergeRange r;
    std::vector<DiskComponentPtr> p_picked, k_picked;
    struct SecPick {
      std::vector<DiskComponentPtr> tree;
      std::vector<DiskComponentPtr> deleted;
    };
    std::vector<SecPick> spicked(secondaries_.size());
    // Conditional latch scope, hoisted into a lambda exactly as in
    // DeletedKeyMergesToPolicy above.
    auto capture = [&]() -> Status {
      auto comps = anchor->Components();
      r = PickTieringRange(comps);
      if (r.empty() || r.count() < 2) return Status::OK();
      // The anchor's pick slices straight off the snapshot the policy saw;
      // only the non-anchor primary needs a bounds re-check (the trees flush
      // in lock step, so a shortfall means the positional alignment the
      // correlated policy relies on is broken — fail loudly rather than
      // merge a wrong slice).
      if (pk_index_ != nullptr) {
        k_picked = SliceRange(comps, r);
        auto pcomps = primary_->Components();
        if (r.end > pcomps.size()) {
          return Status::InvalidArgument(
              "primary/pk component lists out of sync");
        }
        p_picked = SliceRange(pcomps, r);
      } else {
        p_picked = SliceRange(comps, r);
      }
      for (size_t i = 0; i < secondaries_.size(); i++) {
        SecondaryIndex* s = secondaries_[i].get();
        auto scomps = s->tree->Components();
        if (scomps.size() < r.end) continue;  // index skipped early flushes
        spicked[i].tree = SliceRange(scomps, r);
        if (s->deleted_keys != nullptr) {
          auto dcomps = s->deleted_keys->Components();
          if (dcomps.size() >= r.end) {
            spicked[i].deleted = SliceRange(dcomps, r);
          }
        }
      }
      return Status::OK();
    };
    if (decoupled) {
      ReadLatchGuard pick_latch(ingest_mu_);
      AUXLSM_RETURN_NOT_OK(capture());
    } else {
      AUXLSM_RETURN_NOT_OK(capture());
    }
    if (r.empty() || r.count() < 2) break;

    // Merge of one tree's captured slice; routed through the maintenance
    // engine (which may partition large merges) when it is active. A merge
    // fails before any component is replaced, so transient failures retry
    // against the same captured slice.
    FaultInjector* const fault = options_.fault_injector;
    auto merge_picked =
        [this, fault](LsmTree* t,
                      const std::vector<DiskComponentPtr>& picked) -> Status {
      return RunWithRetry(
          "merge(" + t->options().name + ")", [&]() -> Status {
            if (maintenance_ != nullptr) {
              return maintenance_->MergeComponents(t, picked);
            }
            if (fault != nullptr) {
              AUXLSM_RETURN_NOT_OK(fault->Hit(failpoints::kMerge,
                                              env_->io()));
            }
            return t->MergeComponents(picked);
          });
    };

    // Phase 1: primary and primary key index merge (concurrently when the
    // engine is active) — their post-merge components must exist before the
    // bitmap re-share and before secondary repair validates against them.
    if (multi_writer() &&
        options_.strategy == MaintenanceStrategy::kMutableBitmap) {
      // Background merge concurrent with live writers: writers flip bits in
      // the very components being merged, so the merge must run under a
      // §5.3 concurrency-control method. ConcurrentMerge builds the
      // primary + pk-index pair sharing one bitmap, so no re-share is
      // needed. kNone has no writer coordination — stop the world instead
      // (the Fig 23 baseline semantics).
      ConcurrentMergeStats cstats;
      if (options_.build_cc == BuildCcMethod::kNone) {
        WriteLatchGuard latch(ingest_mu_);
        AUXLSM_RETURN_NOT_OK(
            RunWithRetry("merge(concurrent)", [&]() -> Status {
              return ConcurrentMergePicked(this, p_picked, k_picked,
                                           BuildCcMethod::kNone, &cstats,
                                           /*dataset_latched=*/true);
            }));
      } else {
        AUXLSM_RETURN_NOT_OK(
            RunWithRetry("merge(concurrent)", [&]() -> Status {
              return ConcurrentMergePicked(this, p_picked, k_picked,
                                           options_.build_cc, &cstats);
            }));
      }
    } else {
      if (engine_parallel() && pk_index_ != nullptr) {
        std::vector<std::function<Status()>> tasks;
        tasks.push_back([&merge_picked, this, &p_picked]() {
          return merge_picked(primary_.get(), p_picked);
        });
        tasks.push_back([&merge_picked, this, &k_picked]() {
          return merge_picked(pk_index_.get(), k_picked);
        });
        AUXLSM_RETURN_NOT_OK(maintenance_->RunAll(std::move(tasks)));
      } else {
        AUXLSM_RETURN_NOT_OK(merge_picked(primary_.get(), p_picked));
        if (pk_index_) {
          AUXLSM_RETURN_NOT_OK(merge_picked(pk_index_.get(), k_picked));
        }
      }
      if (options_.strategy == MaintenanceStrategy::kMutableBitmap &&
          pk_index_) {
        // Re-share the merged components' bitmap. Positional refetch is safe
        // here: this branch never runs concurrently with installs (the
        // Mutable-bitmap multi-writer path goes through ConcurrentMerge
        // above, which shares the bitmap during the build).
        auto pcomps = primary_->Components();
        auto kcomps = pk_index_->Components();
        if (r.begin < pcomps.size() && r.begin < kcomps.size()) {
          kcomps[r.begin]->set_bitmap(pcomps[r.begin]->bitmap());
        }
      }
    }
    // Phase 2: secondary indexes, one task per index.
    uint64_t round_repairs = 0;
    std::vector<std::function<Status()>> stasks;
    std::vector<uint64_t> srepairs(secondaries_.size(), 0);
    for (size_t i = 0; i < secondaries_.size(); i++) {
      SecondaryIndex* s = secondaries_[i].get();
      if (spicked[i].tree.empty()) continue;
      std::function<Status()> work;
      if (options_.strategy == MaintenanceStrategy::kValidation &&
          options_.merge_repair) {
        uint64_t* rc = &srepairs[i];
        work = [this, s, picked = spicked[i].tree, rc]() -> Status {
          AUXLSM_RETURN_NOT_OK(
              RunWithRetry("repair(" + s->def.name + ")", [&]() -> Status {
                return RunMergeRepair(this, s, picked);
              }));
          (*rc)++;
          return Status::OK();
        };
      } else {
        work = [&merge_picked, s, tpicked = spicked[i].tree,
                dpicked = spicked[i].deleted]() -> Status {
          AUXLSM_RETURN_NOT_OK(merge_picked(s->tree.get(), tpicked));
          if (!dpicked.empty()) {
            AUXLSM_RETURN_NOT_OK(merge_picked(s->deleted_keys.get(), dpicked));
          }
          return Status::OK();
        };
      }
      if (engine_parallel()) {
        stasks.push_back(std::move(work));
      } else {
        AUXLSM_RETURN_NOT_OK(work());
      }
    }
    if (!stasks.empty()) {
      AUXLSM_RETURN_NOT_OK(maintenance_->RunAll(std::move(stasks)));
    }
    for (uint64_t c : srepairs) round_repairs += c;
    stats_.repairs += round_repairs;
    stats_.merges++;
  }
  return Status::OK();
}

Status Dataset::MergeAllIndexes() {
  AUXLSM_RETURN_NOT_OK(WaitForMaintenance());
  AUXLSM_RETURN_NOT_OK(primary_->MergeAll());
  if (pk_index_) AUXLSM_RETURN_NOT_OK(pk_index_->MergeAll());
  if (options_.strategy == MaintenanceStrategy::kMutableBitmap && pk_index_) {
    auto pcomps = primary_->Components();
    auto kcomps = pk_index_->Components();
    if (!pcomps.empty() && !kcomps.empty()) {
      kcomps.front()->set_bitmap(pcomps.front()->bitmap());
    }
  }
  for (auto& s : secondaries_) {
    AUXLSM_RETURN_NOT_OK(s->tree->MergeAll());
    if (s->deleted_keys) AUXLSM_RETURN_NOT_OK(s->deleted_keys->MergeAll());
  }
  return Status::OK();
}

uint64_t Dataset::num_records() const {
  // Reconciling scan over the primary index (exact; test/diagnostic use).
  // Memtables before components (flush-race ordering; see ReconcilingScan).
  auto mem = primary_->MemSnapshot();
  auto comps = primary_->Components();
  MergeCursor::Options mo;
  mo.respect_bitmaps = true;
  mo.drop_antimatter = false;
  MergeCursor cursor(comps, mo);
  if (!cursor.Init().ok()) return 0;
  // Merge the memtable snapshot with the disk cursor, newest wins.
  uint64_t count = 0;
  size_t mi = 0;
  auto mem_key = [&]() { return Slice(mem[mi].key); };
  while (cursor.Valid() || mi < mem.size()) {
    int cmp;
    if (!cursor.Valid()) {
      cmp = -1;  // memtable only
    } else if (mi >= mem.size()) {
      cmp = 1;  // disk only
    } else {
      cmp = mem_key().compare(cursor.key());
    }
    if (cmp < 0) {
      if (!mem[mi].antimatter) count++;
      mi++;
    } else if (cmp > 0) {
      if (!cursor.antimatter()) count++;
      if (!cursor.Next().ok()) break;
    } else {
      // Duplicate key: the copy with the larger timestamp decides liveness.
      const bool antimatter = mem[mi].ts >= cursor.ts()
                                  ? mem[mi].antimatter
                                  : cursor.antimatter();
      if (!antimatter) count++;
      mi++;
      if (!cursor.Next().ok()) break;
    }
  }
  return count;
}

DatasetCatalog Dataset::Checkpoint() {
  // The catalog must reference a stable component set; drain the pipeline.
  WaitForMaintenance();
  DatasetCatalog cat;
  auto snap_tree = [&](LsmTree* t, std::vector<DatasetCatalog::ComponentEntry>* out,
                       bool pk_shares_bitmap) {
    if (t == nullptr) return;
    for (const auto& c : t->Components()) {
      DatasetCatalog::ComponentEntry e;
      e.id = c->id();
      e.meta = c->meta();
      e.repaired_ts = c->repaired_ts();
      e.max_lsn = c->max_lsn();
      if (c->range_filter().has_value() && c->range_filter()->has_value()) {
        e.has_range_filter = true;
        e.filter_min = c->range_filter()->min();
        e.filter_max = c->range_filter()->max();
      }
      if (c->bitmap() != nullptr) {
        e.has_bitmap = true;
        e.bitmap_bits = c->bitmap()->size();
        e.bitmap_words = c->bitmap()->Words();
        e.shares_primary_bitmap = pk_shares_bitmap;
      }
      cat.max_component_lsn = std::max(cat.max_component_lsn, e.max_lsn);
      out->push_back(std::move(e));
    }
  };
  snap_tree(primary_.get(), &cat.primary, false);
  snap_tree(pk_index_.get(), &cat.primary_key,
            options_.strategy == MaintenanceStrategy::kMutableBitmap);
  cat.secondaries.resize(secondaries_.size());
  cat.deleted_keys.resize(secondaries_.size());
  for (size_t i = 0; i < secondaries_.size(); i++) {
    snap_tree(secondaries_[i]->tree.get(), &cat.secondaries[i], false);
    snap_tree(secondaries_[i]->deleted_keys.get(), &cat.deleted_keys[i],
              false);
  }
  // Checkpointing flushes dirty bitmap pages (§5.2): everything up to the
  // current tail is now durable for bitmaps.
  cat.bitmap_checkpoint_lsn = wal_.tail_lsn();
  bitmap_checkpoint_lsn_ = cat.bitmap_checkpoint_lsn;
  return cat;
}

namespace {

// Reopens one disk component from catalog metadata, rebuilding its Bloom
// filters by scanning the keys (a real system would store filter pages in
// the component file; the rebuild preserves behaviour).
Result<DiskComponentPtr> ReopenComponent(
    Env* env, const LsmTreeOptions& topts,
    const DatasetCatalog::ComponentEntry& e) {
  auto c = std::make_shared<DiskComponent>(e.id, env, e.meta);
  c->set_repaired_ts(e.repaired_ts);
  c->set_max_lsn(e.max_lsn);
  if (e.has_range_filter) {
    RangeFilter f;
    f.Expand(e.filter_min);
    f.Expand(e.filter_max);
    c->set_range_filter(f);
  }
  if (e.has_bitmap) {
    c->set_bitmap(std::make_shared<Bitmap>(
        Bitmap::FromWords(e.bitmap_bits, e.bitmap_words)));
  }
  if (topts.build_bloom || topts.build_blocked_bloom) {
    std::vector<uint64_t> hashes;
    hashes.reserve(e.meta.num_entries);
    auto it = c->tree().NewIterator(/*readahead=*/32);
    AUXLSM_RETURN_NOT_OK(it.SeekToFirst());
    while (it.Valid()) {
      hashes.push_back(Hash64(it.key()));
      AUXLSM_RETURN_NOT_OK(it.Next());
    }
    if (topts.build_bloom) {
      c->set_bloom(std::make_unique<BloomFilter>(hashes, topts.bloom_fpr));
    }
    if (topts.build_blocked_bloom) {
      c->set_blocked_bloom(
          std::make_unique<BlockedBloomFilter>(hashes, topts.bloom_fpr));
    }
  }
  return c;
}

Status ReopenTree(Env* env, LsmTree* tree,
                  const std::vector<DatasetCatalog::ComponentEntry>& entries) {
  // Catalog order is newest first; ReplaceComponents with no olds prepends,
  // so install oldest first.
  for (auto it = entries.rbegin(); it != entries.rend(); ++it) {
    AUXLSM_ASSIGN_OR_RETURN(DiskComponentPtr c,
                            ReopenComponent(env, tree->options(), *it));
    AUXLSM_RETURN_NOT_OK(tree->ReplaceComponents({}, std::move(c)));
  }
  return Status::OK();
}

}  // namespace

Result<std::unique_ptr<Dataset>> Dataset::Recover(Env* env, Wal* wal,
                                                  const DatasetCatalog& catalog,
                                                  DatasetOptions options,
                                                  RecoveryStats* stats) {
  auto ds = std::make_unique<Dataset>(env, std::move(options));
  AUXLSM_RETURN_NOT_OK(ReopenTree(env, ds->primary_.get(), catalog.primary));
  if (ds->pk_index_) {
    AUXLSM_RETURN_NOT_OK(
        ReopenTree(env, ds->pk_index_.get(), catalog.primary_key));
    // Re-establish bitmap sharing between primary and pk-index components.
    // Sharing is positional, so first verify the two lists actually line up
    // wherever the catalog asks for a share: matching component ids and
    // entry counts (bit positions are ordinals — a count mismatch means the
    // shared bitmap would mark the wrong rows).
    auto pcomps = ds->primary_->Components();
    auto kcomps = ds->pk_index_->Components();
    bool aligned = true;
    for (size_t i = 0; i < kcomps.size(); i++) {
      if (i >= catalog.primary_key.size() ||
          !catalog.primary_key[i].shares_primary_bitmap) {
        continue;
      }
      if (i >= pcomps.size() ||
          pcomps[i]->id().min_ts != kcomps[i]->id().min_ts ||
          pcomps[i]->id().max_ts != kcomps[i]->id().max_ts ||
          pcomps[i]->meta().num_entries != kcomps[i]->meta().num_entries) {
        aligned = false;
        break;
      }
    }
    if (aligned) {
      for (size_t i = 0; i < kcomps.size() && i < pcomps.size(); i++) {
        if (i < catalog.primary_key.size() &&
            catalog.primary_key[i].shares_primary_bitmap) {
          kcomps[i]->set_bitmap(pcomps[i]->bitmap());
        }
      }
    } else if (ds->options_.strategy == MaintenanceStrategy::kMutableBitmap) {
      // Positional alignment was lost (a fault tore the lock-step merge
      // schedule before the crash). The reopened components still carry
      // correct per-component bitmap *contents* from the catalog; a full
      // merge of both trees materializes that validity into one component
      // each, and the pair can share a single fresh bitmap again. This must
      // happen before WAL replay: replayed bitmap ops target the front
      // component's shared bitmap.
      AUXLSM_RETURN_NOT_OK(ds->primary_->MergeAll());
      AUXLSM_RETURN_NOT_OK(ds->pk_index_->MergeAll());
      auto pm = ds->primary_->Components();
      auto km = ds->pk_index_->Components();
      if (!pm.empty() && !km.empty()) {
        km.front()->set_bitmap(pm.front()->bitmap());
      }
    }
  }
  for (size_t i = 0; i < ds->secondaries_.size(); i++) {
    if (i < catalog.secondaries.size()) {
      AUXLSM_RETURN_NOT_OK(ReopenTree(env, ds->secondaries_[i]->tree.get(),
                                      catalog.secondaries[i]));
    }
    if (ds->secondaries_[i]->deleted_keys && i < catalog.deleted_keys.size()) {
      AUXLSM_RETURN_NOT_OK(ReopenTree(
          env, ds->secondaries_[i]->deleted_keys.get(),
          catalog.deleted_keys[i]));
    }
  }

  Dataset* d = ds.get();
  auto redo_op = [d](const LogRecord& r) -> Status {
    TweetRecord rec;
    if (r.type == LogRecordType::kDelete) {
      rec.id = DecodeU64(r.key);
    } else {
      AUXLSM_RETURN_NOT_OK(TweetRecord::Deserialize(r.value, &rec));
    }
    return d->ReplayOp(r, rec);
  };
  auto redo_bitmap = [d](const LogRecord& r) -> Status {
    return d->ReplayBitmap(r);
  };
  AUXLSM_RETURN_NOT_OK(RecoverFromWal(*wal, catalog.max_component_lsn,
                                      catalog.bitmap_checkpoint_lsn, redo_op,
                                      redo_bitmap, stats));
  return ds;
}

}  // namespace auxlsm
