// Declarative read queries: the dataset's single composable read surface.
//
// A ReadQuery describes *what* to read — the target index (by name), key and
// time predicates, projection (records / keys / counters only), result bound
// and delivery granularity — while ReadOptions carries *how* to read it: the
// §3.2/§4.3 navigation and validation knobs, and the device queue the
// cursor's simulated I/O is charged to. Dataset::NewCursor plans the query
// and returns a pull-based QueryCursor (core/query_cursor.h) that streams
// result pages from a snapshot captured at open.
//
//   auto cursor = dataset.NewCursor(
//       Query().Secondary("user_id").Range(lo, hi).Limit(10).PageSize(5));
//
// The four legacy entry points (GetById, QueryUserRange, ScanTimeRange,
// FullScanUserRange) are thin wrappers over this API and keep their exact
// pre-redesign behavior, counters included.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/clock.h"
#include "format/record.h"

namespace auxlsm {

/// Knobs of §3.2's index-to-index navigation optimizations and §4.3's
/// validation methods.
struct SecondaryQueryOptions {
  enum class LookupAlgo { kNaive, kBatched };
  LookupAlgo lookup = LookupAlgo::kBatched;
  /// Memory for one batch of primary keys (paper default 16 MB).
  size_t batch_memory_bytes = 16u << 20;
  bool stateful_btree_lookup = true;   ///< "sLookup"
  bool use_blocked_bloom = true;       ///< "bBF"
  bool propagate_component_id = false; ///< "pID" (Jia [21])
  /// Sort fetched records back into primary-key order (Fig 12d). A limited
  /// cursor sorts within each candidate chunk (global order would defeat
  /// early termination); unlimited queries sort globally as before.
  bool sort_results_by_pk = false;

  enum class Validation { kAuto, kNone, kDirect, kTimestamp };
  Validation validation = Validation::kAuto;

  bool index_only = false;
};

/// A matching (primary key, timestamp) pair surfaced by a secondary search,
/// with the component ID floor used by the pID optimization.
struct SecondaryMatch {
  std::string pk;
  Timestamp ts = 0;
  Timestamp component_min_ts = 0;
};

/// How to run a read: navigation/validation knobs plus the cursor's device
/// binding. Orthogonal to the query description itself.
struct ReadOptions {
  SecondaryQueryOptions secondary;
  /// Device queue of the storage engine this cursor's I/O is charged to
  /// (io/io_engine.h). Negative = the calling thread's current binding
  /// (queue 0 when unbound) — the legacy behavior. Spreading reader threads
  /// over queues lets concurrent reads overlap in *simulated* time.
  int32_t io_queue = -1;
  /// Scan readahead pages; 0 = the dataset's configured default.
  uint32_t readahead_pages = 0;
};

/// Composable description of one read. Built fluently (see Query() below);
/// executed by Dataset::NewCursor. Unset clauses default to "everything":
/// a query with no clauses full-scans the primary index.
class ReadQuery {
 public:
  ReadQuery() = default;

  /// Primary-key point read.
  ReadQuery& Primary(uint64_t id) {
    has_primary_ = true;
    primary_id_ = id;
    return *this;
  }

  /// Target the first configured secondary index.
  ReadQuery& Secondary() {
    has_secondary_ = true;
    index_name_.clear();
    return *this;
  }

  /// Target a secondary index by catalog name (e.g. "user_id", "attr1").
  /// Unknown names fail at NewCursor with a proper error.
  ReadQuery& Secondary(std::string index_name) {
    has_secondary_ = true;
    index_name_ = std::move(index_name);
    return *this;
  }

  /// Key range [lo, hi]: the secondary-key range when Secondary() is set,
  /// otherwise a user_id predicate evaluated by a full primary scan (the
  /// Fig 12b "scan" baseline).
  ReadQuery& Range(uint64_t lo, uint64_t hi) {
    has_range_ = true;
    range_lo_ = lo;
    range_hi_ = hi;
    return *this;
  }

  /// creation_time predicate [lo, hi]. Alone it plans the §6.4.2
  /// range-filter scan (component pruning); composed with Secondary/Range
  /// it filters fetched records.
  ReadQuery& TimeRange(uint64_t lo, uint64_t hi) {
    has_time_ = true;
    time_lo_ = lo;
    time_hi_ = hi;
    return *this;
  }

  /// Project primary keys instead of records (secondary queries only).
  ReadQuery& IndexOnly(bool on = true) {
    index_only_ = on;
    return *this;
  }

  /// Count matches without materializing rows (the legacy scan entry
  /// points' semantics; results arrive via CursorStats).
  ReadQuery& CountOnly(bool on = true) {
    count_only_ = on;
    return *this;
  }

  /// Stop after k result rows. The cursor terminates early: fewer candidate
  /// chunks are pulled, validated, and fetched than an unlimited run.
  ReadQuery& Limit(uint64_t k) {
    limit_ = k;
    return *this;
  }

  /// Rows delivered per QueryCursor::Next pull (default 256).
  ReadQuery& PageSize(size_t n) {
    page_size_ = n == 0 ? 1 : n;
    return *this;
  }

  ReadQuery& Options(const ReadOptions& ro) {
    read_options_ = ro;
    return *this;
  }

  // --- Planner accessors ------------------------------------------------------
  bool has_primary() const { return has_primary_; }
  uint64_t primary_id() const { return primary_id_; }
  bool has_secondary() const { return has_secondary_; }
  const std::string& index_name() const { return index_name_; }
  bool has_range() const { return has_range_; }
  uint64_t range_lo() const { return range_lo_; }
  uint64_t range_hi() const { return range_hi_; }
  bool has_time_range() const { return has_time_; }
  uint64_t time_lo() const { return time_lo_; }
  uint64_t time_hi() const { return time_hi_; }
  bool index_only() const { return index_only_; }
  bool count_only() const { return count_only_; }
  uint64_t limit() const { return limit_; }  ///< 0 = unlimited
  size_t page_size() const { return page_size_; }
  const ReadOptions& read_options() const { return read_options_; }

 private:
  bool has_primary_ = false;
  uint64_t primary_id_ = 0;
  bool has_secondary_ = false;
  std::string index_name_;
  bool has_range_ = false;
  uint64_t range_lo_ = 0, range_hi_ = 0;
  bool has_time_ = false;
  uint64_t time_lo_ = 0, time_hi_ = 0;
  bool index_only_ = false;
  bool count_only_ = false;
  uint64_t limit_ = 0;
  size_t page_size_ = 256;
  ReadOptions read_options_;
};

/// Builder entry point: Query().Secondary("user_id").Range(lo, hi)...
inline ReadQuery Query() { return ReadQuery(); }

/// Materialized result of a fully-drained query (the legacy entry points'
/// output shape; QueryCursor::Drain fills one).
struct QueryResult {
  std::vector<TweetRecord> records;  ///< non-index-only queries
  std::vector<std::string> keys;     ///< index-only queries
  uint64_t candidates = 0;           ///< matches before validation
  uint64_t validated_out = 0;        ///< candidates rejected by validation
};

struct ScanResult {
  uint64_t records_scanned = 0;
  uint64_t records_matched = 0;
  uint64_t components_pruned = 0;
  uint64_t components_scanned = 0;
};

}  // namespace auxlsm
