// DELI-style primary repair [31] (§4.1, evaluated in §6.5): repair secondary
// indexes by scanning — or fully merging — the primary index components.
// Whenever multiple records with the same primary key are found, anti-matter
// entries for the obsolete versions are produced into the secondary indexes.
// Unlike §4.4's secondary repair this reads full records, so its cost tracks
// the primary index size (Fig 20/21).
#include "core/dataset.h"
#include "format/key_codec.h"

namespace auxlsm {

Status Dataset::PrimaryRepair(bool with_merge) {
  auto comps = primary_->Components();
  if (!comps.empty()) {
    // K-way scan over all versions of each key (newest component first).
    std::vector<Btree::Iterator> iters;
    iters.reserve(comps.size());
    for (const auto& c : comps) {
      iters.push_back(c->tree().NewIterator(options_.scan_readahead_pages));
      AUXLSM_RETURN_NOT_OK(iters.back().SeekToFirst());
    }
    while (true) {
      int first = -1;
      for (size_t i = 0; i < iters.size(); i++) {
        if (!iters[i].Valid()) continue;
        if (first < 0 || iters[i].key().compare(iters[first].key()) < 0) {
          first = static_cast<int>(i);
        }
      }
      if (first < 0) break;
      const std::string key = iters[first].key().ToString();

      // Gather all versions of this key, newest (lowest component index)
      // first.
      bool newest_seen = false;
      TweetRecord newest_record;
      bool newest_alive = false;
      for (size_t i = 0; i < iters.size(); i++) {
        if (!iters[i].Valid() || iters[i].key() != Slice(key)) continue;
        const bool bitmap_dead = !comps[i]->EntryValid(iters[i].ordinal());
        if (!newest_seen) {
          newest_seen = true;
          newest_alive = !iters[i].antimatter() && !bitmap_dead;
          if (newest_alive) {
            AUXLSM_RETURN_NOT_OK(
                TweetRecord::Deserialize(iters[i].value(), &newest_record));
          }
        } else if (!iters[i].antimatter() && !bitmap_dead) {
          // Obsolete version: clean its secondary entries.
          TweetRecord old_record;
          AUXLSM_RETURN_NOT_OK(
              TweetRecord::Deserialize(iters[i].value(), &old_record));
          const Timestamp ts = clock_.Tick();
          for (auto& s : secondaries_) {
            const std::string old_sk = s->def.extract(old_record);
            if (newest_alive && old_sk == s->def.extract(newest_record)) {
              continue;  // same secondary key: the newest entry subsumes it
            }
            s->tree->PutAntimatter(ComposeSecondaryKey(old_sk, key), ts);
          }
        }
        AUXLSM_RETURN_NOT_OK(iters[i].Next());
      }
    }
  }

  if (with_merge) {
    AUXLSM_RETURN_NOT_OK(primary_->MergeAll());
    if (pk_index_) AUXLSM_RETURN_NOT_OK(pk_index_->MergeAll());
  }
  // Push the produced anti-matter through the LSM machinery so the secondary
  // indexes are physically cleaned (queries would already see them).
  AUXLSM_RETURN_NOT_OK(FlushAll());
  for (auto& s : secondaries_) {
    AUXLSM_RETURN_NOT_OK(s->tree->MergeAll());
    if (s->deleted_keys) AUXLSM_RETURN_NOT_OK(s->deleted_keys->MergeAll());
  }
  stats_.repairs++;
  return Status::OK();
}

}  // namespace auxlsm
