#include "core/point_lookup.h"

#include <algorithm>

#include "btree/btree_cursor.h"
#include "cache/tuple_cache.h"
#include "common/hash.h"
#include "format/key_codec.h"

namespace auxlsm {

namespace {

// Approximate per-key footprint in batching memory: the key itself plus
// bookkeeping (hash, found flag, result slot).
constexpr size_t kBatchBytesPerKey = 32;

struct PendingKey {
  const FetchRequest* req;
  uint64_t hash;
  bool done = false;
};

// Searches the view's memory components (active + sealed) for every pending
// key; marks hits done.
void SearchMemtable(const LsmReadView& view, std::vector<PendingKey>& pending,
                    bool raw, std::vector<FetchedEntry>* out,
                    PointLookupStats* stats) {
  for (auto& p : pending) {
    OwnedEntry e;
    if (!view.GetFromMem(p.req->pk, &e).ok()) continue;
    p.done = true;
    stats->found++;
    const bool alive = !e.antimatter;
    if (alive || raw) {
      out->push_back(FetchedEntry{p.req->pk, std::move(e.value), e.ts, alive});
    }
  }
}

}  // namespace

Status BulkPointLookup(const LsmReadView& view,
                       const std::vector<FetchRequest>& requests,
                       const PointLookupOptions& options,
                       std::vector<FetchedEntry>* out,
                       PointLookupStats* stats) {
  PointLookupStats local;
  local.keys = requests.size();

  const size_t batch_keys =
      options.batched
          ? std::max<size_t>(1, options.batch_memory_bytes / kBatchBytesPerKey)
          : requests.size();

  size_t start = 0;
  while (start < requests.size()) {
    const size_t end = options.batched
                           ? std::min(requests.size(), start + batch_keys)
                           : requests.size();
    local.batches++;

    std::vector<PendingKey> pending;
    pending.reserve(end - start);
    for (size_t i = start; i < end; i++) {
      pending.push_back(PendingKey{&requests[i], Hash64(requests[i].pk)});
    }
    if (options.batched) {
      // §3.2 probes each component's unfound keys in ascending key order so
      // leaf pages are read sequentially; enforce it here instead of
      // trusting callers to pre-sort (a stable sort keeps duplicate-key
      // requests in arrival order).
      std::stable_sort(pending.begin(), pending.end(),
                       [](const PendingKey& a, const PendingKey& b) {
                         return a.req->pk < b.req->pk;
                       });
    }
    SearchMemtable(view, pending, options.raw, out, &local);
    // The view's memtables were captured before its components: a concurrent
    // flush moves entries memtable -> new component, so the reverse order
    // could make a key invisible to both probes.
    const auto& components = view.components;

    if (!options.batched) {
      // Naive: per key, search components newest to oldest independently.
      for (auto& p : pending) {
        if (p.done) continue;
        for (const auto& c : components) {
          if (c->id().max_ts < p.req->prune_min_ts) {
            local.components_skipped_by_id++;
            continue;
          }
          local.bloom_probes++;
          if (!c->MayContain(p.hash, options.use_blocked_bloom)) {
            local.bloom_negatives++;
            continue;
          }
          local.tree_probes++;
          LeafEntry entry;
          std::string backing;
          uint64_t ordinal = 0;
          Status st =
              c->tree().GetWithOrdinal(p.req->pk, &entry, &backing, &ordinal);
          if (st.IsNotFound()) continue;
          AUXLSM_RETURN_NOT_OK(st);
          p.done = true;
          local.found++;
          const bool alive = !entry.antimatter && c->EntryValid(ordinal);
          if (alive || options.raw) {
            out->push_back(FetchedEntry{p.req->pk, entry.value.ToString(),
                                        entry.ts, alive});
          }
          break;
        }
      }
    } else {
      // Batched (§3.2): per component, probe the batch's unfound keys in
      // ascending key order so leaf pages are read sequentially.
      size_t remaining = 0;
      for (const auto& p : pending) {
        if (!p.done) remaining++;
      }
      for (const auto& c : components) {
        if (remaining == 0) break;
        StatefulBtreeCursor cursor(&c->tree());
        for (auto& p : pending) {
          if (p.done) continue;
          if (c->id().max_ts < p.req->prune_min_ts) {
            local.components_skipped_by_id++;
            continue;
          }
          local.bloom_probes++;
          if (!c->MayContain(p.hash, options.use_blocked_bloom)) {
            local.bloom_negatives++;
            continue;
          }
          local.tree_probes++;
          LeafEntry entry;
          std::string backing;
          bool found = false;
          uint64_t ordinal = 0;
          if (options.stateful_btree_lookup) {
            AUXLSM_RETURN_NOT_OK(cursor.SeekExactWithOrdinal(
                p.req->pk, &entry, &backing, &found, &ordinal));
          } else {
            Status st = c->tree().GetWithOrdinal(p.req->pk, &entry, &backing,
                                                 &ordinal);
            if (st.ok()) {
              found = true;
            } else if (!st.IsNotFound()) {
              return st;
            }
          }
          if (!found) continue;
          p.done = true;
          remaining--;
          local.found++;
          const bool alive = !entry.antimatter && c->EntryValid(ordinal);
          if (alive || options.raw) {
            out->push_back(FetchedEntry{p.req->pk, entry.value.ToString(),
                                        entry.ts, alive});
          }
        }
      }
    }
    start = end;
  }
  if (stats != nullptr) *stats = local;
  return Status::OK();
}

Status BulkPointLookup(const LsmTree& tree,
                       const std::vector<FetchRequest>& requests,
                       const PointLookupOptions& options,
                       std::vector<FetchedEntry>* out,
                       PointLookupStats* stats) {
  return BulkPointLookup(LsmReadView::Capture(tree), requests, options, out,
                         stats);
}

Status CachedPrimaryGet(TupleCache* cache, const LsmTree& tree, uint64_t id,
                        const GetOptions& opts, bool* found,
                        std::string* value, bool* from_cache) {
  *from_cache = false;
  if (cache != nullptr && cache->LookupPoint(id, found, value)) {
    *from_cache = true;
    return Status::OK();
  }
  // Epoch before the lookup: a write racing this read invalidates (bumping
  // the epoch) only after its memtable effects are visible, so an outcome
  // read after an unchanged epoch capture is safe to admit.
  const uint64_t epoch =
      cache != nullptr ? cache->SpaceEpoch(TupleCache::kPointSpace) : 0;
  const std::string pk = EncodeU64(id);
  OwnedEntry e;
  Status st = tree.Get(pk, &e, opts);
  if (st.IsNotFound()) {
    *found = false;
    if (cache != nullptr) cache->InsertPoint(id, false, pk, Slice(), epoch);
    return Status::OK();
  }
  AUXLSM_RETURN_NOT_OK(st);
  *found = true;
  *value = std::move(e.value);
  if (cache != nullptr) cache->InsertPoint(id, true, pk, *value, epoch);
  return Status::OK();
}

}  // namespace auxlsm
