// Concurrency control for flush/merge under the Mutable-bitmap strategy
// (§5.3). A component builder constructs a new primary + primary-key-index
// component pair (sharing one validity bitmap) while writers concurrently
// delete keys:
//
//  - Lock method (Fig 10): the builder takes a shared lock per scanned key
//    and re-checks the bitmap; a writer whose deleted key was already copied
//    into the new component marks it there directly.
//  - Side-file method (Fig 11): the builder scans immutable bitmap snapshots;
//    writers append deleted keys to a side-file that the builder sorts and
//    applies during a catch-up phase.
//  - kNone: no coordination (the Fig 23 baseline) — deletes that race with
//    the scan may be missed by the new component.
#pragma once

#include <atomic>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "core/dataset.h"
#include "lsm/bitmap.h"

namespace auxlsm {

/// Shared state linking old components to the component under construction.
/// Old components point here (DiskComponent::build_link); writers follow the
/// pointer on delete.
struct BuildLink {
  explicit BuildLink(BuildCcMethod m, uint64_t capacity)
      : method(m), overlay(capacity) {
    emitted_keys.reserve(capacity);
  }

  const BuildCcMethod method;

  /// Keys emitted into the new component so far, ascending. Capacity is
  /// reserved up front so concurrent binary searches over [0, emitted_count)
  /// never race with reallocation. emitted_keys[emitted_count-1] is
  /// "C'.ScannedKey" of Fig 10.
  std::vector<std::string> emitted_keys;
  std::atomic<size_t> emitted_count{0};

  /// Deletions applied to the new component during the build, by position.
  Bitmap overlay;

  // --- Side-file state (guarded by mu) ---------------------------------------
  // Leaf rank: taken by writers under the shared ingest latch and by the
  // builder's catch-up phase under the exclusive latch; never held while
  // acquiring anything else.
  Mutex mu{lockrank::kLeaf, "build.link"};
  bool side_file_closed GUARDED_BY(mu) = false;
  /// (key, is_rollback): deletes append (k, false); transaction rollbacks
  /// append anti-matter (k, true) while the side-file is open (§5.3).
  std::vector<std::pair<std::string, bool>> side_file GUARDED_BY(mu);
};

/// Writer-side hook: called by the Mutable-bitmap ingestion path after it
/// marked a key deleted in an old component that links to an in-progress
/// build. Registers rollback behaviour with txn when provided.
void ApplyDeleteToBuild(BuildLink* link, const Slice& pk, Transaction* txn);

struct ConcurrentMergeStats {
  uint64_t input_entries = 0;
  uint64_t output_entries = 0;
  uint64_t side_file_applied = 0;
  uint64_t builder_lock_acquisitions = 0;
  double elapsed_seconds = 0;
};

/// Merges primary-index components [begin, end) (newest-first positions) and
/// the matching primary-key-index components, concurrently with writers,
/// using the given concurrency-control method. The dataset must use the
/// Mutable-bitmap strategy. `dataset_latched` means the caller already holds
/// the dataset's exclusive ingest latch (writers drained, e.g. the pipeline's
/// stop-the-world kNone merge); the internal latch acquisitions are skipped.
Status ConcurrentMerge(Dataset* dataset, size_t begin, size_t end,
                       BuildCcMethod method, ConcurrentMergeStats* stats,
                       bool dataset_latched = false);

/// Identity-based form: merges the given primary components and (when the
/// dataset keeps a primary key index) the matching pk-index components,
/// captured by the caller. Decoupled merge-queue jobs use this — positions
/// shift when a flush install races the merge, identities do not; the
/// install replaces the inputs by identity and fails safe if they are no
/// longer current. `old_k` must be positionally parallel to `old_p` (empty
/// when there is no pk index).
Status ConcurrentMergePicked(Dataset* dataset,
                             const std::vector<DiskComponentPtr>& old_p,
                             const std::vector<DiskComponentPtr>& old_k,
                             BuildCcMethod method, ConcurrentMergeStats* stats,
                             bool dataset_latched = false);

}  // namespace auxlsm
