// Dataset::MetricsSnapshot / DebugString (PR 8): folds every subsystem's
// stats struct and the live backlog gauges into one obs::MetricsSnapshot.
// Pull-based — nothing here runs unless called, so the always-available
// snapshot costs the hot paths nothing.
#include "core/dataset.h"
#include "exec/maintenance.h"

namespace auxlsm {

namespace {

void FoldIo(obs::MetricsSnapshot* s, const std::string& prefix,
            const IoStats& io) {
  s->Set(prefix + ".pages_read", double(io.pages_read));
  s->Set(prefix + ".random_reads", double(io.random_reads));
  s->Set(prefix + ".sequential_reads", double(io.sequential_reads));
  s->Set(prefix + ".pages_written", double(io.pages_written));
  s->Set(prefix + ".cache_hits", double(io.cache_hits));
  s->Set(prefix + ".cache_misses", double(io.cache_misses));
  s->Set(prefix + ".simulated_us", io.simulated_us);
  s->Set(prefix + ".critical_path_us", io.critical_path_us);
}

}  // namespace

obs::MetricsSnapshot Dataset::MetricsSnapshot() {
  obs::MetricsSnapshot s;

  // Ingest counters.
  const IngestStats& in = stats_;
  s.Set("ingest.inserts", double(in.inserts.load()));
  s.Set("ingest.upserts", double(in.upserts.load()));
  s.Set("ingest.deletes", double(in.deletes.load()));
  s.Set("ingest.duplicates_ignored", double(in.duplicates_ignored.load()));
  s.Set("ingest.point_lookups", double(in.ingest_point_lookups.load()));
  s.Set("maintenance.flushes", double(in.flushes.load()));
  s.Set("maintenance.merges", double(in.merges.load()));
  s.Set("maintenance.repairs", double(in.repairs.load()));

  // Robustness counters + health.
  s.Set("maintenance.transient_failures",
        double(mstats_.transient_failures.load()));
  s.Set("maintenance.retries_attempted",
        double(mstats_.retries_attempted.load()));
  s.Set("maintenance.retries_succeeded",
        double(mstats_.retries_succeeded.load()));
  s.Set("maintenance.rounds_abandoned",
        double(mstats_.rounds_abandoned.load()));
  s.Set("maintenance.degraded_transitions",
        double(mstats_.degraded_transitions.load()));
  s.Set("dataset.degraded", health() == DatasetHealth::kDegraded ? 1 : 0);
  s.Set("dataset.mem_component_bytes", double(MemComponentBytes()));
  s.Set("dataset.records", double(num_records()));

  // WAL counters + live group-commit backlog.
  const WalStats ws = wal_.wal_stats();
  s.Set("wal.records", double(ws.records));
  s.Set("wal.commits", double(ws.commits));
  s.Set("wal.syncs", double(ws.syncs));
  s.Set("wal.batched_commits", double(ws.batched_commits));
  s.Set("wal.commit_latency_us_avg",
        ws.commits > 0 ? ws.commit_latency_us_total / double(ws.commits) : 0);
  s.Set("wal.commit_latency_us_max", ws.commit_latency_us_max);
  const Wal::Backlog wb = wal_.backlog();
  s.Set("wal.commit_waiters", double(wb.commit_waiters));
  s.Set("wal.unsynced_records", double(wb.unsynced_records));
  s.Set("wal.tail_bytes", double(wb.tail_bytes));
  s.Set("wal.sync_in_progress", wb.sync_in_progress ? 1 : 0);

  // Device accounting: storage engine, log engine, page cache.
  FoldIo(&s, "io.storage", env_->stats());
  FoldIo(&s, "io.log", wal_.stats());
  const BufferCacheStats bc = env_->cache()->stats();
  s.Set("cache.page.hits", double(bc.hits));
  s.Set("cache.page.misses", double(bc.misses));
  s.Set("cache.page.evictions", double(bc.evictions));

  // Tuple cache (all-zero when disabled).
  const TupleCacheStats tc = tuple_cache_stats();
  s.Set("cache.tuple.hits", double(tc.hits));
  s.Set("cache.tuple.chain_served", double(tc.chain_served));
  s.Set("cache.tuple.misses", double(tc.misses));
  s.Set("cache.tuple.invalidations", double(tc.invalidations));
  s.Set("cache.tuple.evictions", double(tc.evictions));
  s.Set("cache.tuple.inserts", double(tc.inserts));
  s.Set("cache.tuple.stale_drops", double(tc.stale_drops));
  s.Set("cache.tuple.resident_bytes", double(tc.resident_bytes));

  // Per-tree backlog gauges: merge-queue jobs in flight, sealed memtables
  // awaiting (re-)flush, live memory bytes, installed disk components.
  for (LsmTree* t : AllTrees()) {
    const std::string p = "lsm." + t->options().name;
    s.Set(p + ".merge_pending_jobs", double(t->merge_pending_jobs()));
    s.Set(p + ".sealed_memtables", double(t->PendingSealed().size()));
    s.Set(p + ".mem_bytes", double(t->MemBytes()));
    s.Set(p + ".disk_components", double(t->NumDiskComponents()));
  }

  // Maintenance engine backlog (all zero on the serial inline path, where
  // no scheduler exists — emitted anyway so the key set is stable).
  const bool eng = maintenance_ != nullptr;
  s.Set("exec.pool_queue_depth", eng ? double(maintenance_->PoolQueueDepth()) : 0);
  s.Set("exec.merge_rounds_pending",
        eng ? double(maintenance_->PendingMergeRounds()) : 0);
  s.Set("exec.merge_jobs_pending",
        eng ? double(maintenance_->PendingMergeJobs()) : 0);

  // Fault injection activity, when armed.
  if (options_.fault_injector != nullptr) {
    s.Set("fault.total_fires", double(options_.fault_injector->TotalFires()));
  }

  // Tracing activity, when armed.
  if (tracer_ != nullptr) {
    s.Set("trace.dropped_events", double(tracer_->dropped()));
  }

  // External sources (PR 9: the request server's service-side backlog).
  // Copied out under the lock, invoked outside it — a source may take its
  // own locks, and holding ours across that invites ordering cycles.
  std::vector<std::function<void(obs::MetricsSnapshot*)>> sources;
  {
    MutexLock l(metrics_sources_mu_);
    sources.reserve(metrics_sources_.size());
    for (const auto& [id, fn] : metrics_sources_) sources.push_back(fn);
  }
  for (const auto& fn : sources) fn(&s);

  // Registry metrics (latency histograms, io.* request counters, query.*
  // counters) land on top; the registry may carry metrics from other
  // components sharing it, which is the point of one registry per process.
  if (options_.metrics != nullptr) s.Merge(options_.metrics->Snapshot());
  return s;
}

uint64_t Dataset::AddMetricsSource(
    std::function<void(obs::MetricsSnapshot*)> fn) {
  MutexLock l(metrics_sources_mu_);
  const uint64_t id = next_metrics_source_id_++;
  metrics_sources_.emplace_back(id, std::move(fn));
  return id;
}

void Dataset::RemoveMetricsSource(uint64_t id) {
  MutexLock l(metrics_sources_mu_);
  for (auto it = metrics_sources_.begin(); it != metrics_sources_.end(); ++it) {
    if (it->first == id) {
      metrics_sources_.erase(it);
      return;
    }
  }
}

std::string Dataset::DebugString() {
  std::string out = "Dataset metrics (strategy=";
  out += StrategyName(options_.strategy);
  out += ")\n";
  out += MetricsSnapshot().DebugString();
  return out;
}

}  // namespace auxlsm
