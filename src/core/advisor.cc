#include "core/advisor.h"

namespace auxlsm {

void StrategyRecommendation::ApplyTo(DatasetOptions* options) const {
  options->strategy = strategy;
  options->merge_repair = merge_repair;
  options->correlated_merges = correlated_merges;
  options->repair_bloom_opt = repair_bloom_opt;
}

WorkloadProfile WorkloadTracker::Profile() const {
  WorkloadProfile p;
  if (writes_ > 0) p.update_ratio = double(updates_) / double(writes_);
  p.writes_per_query =
      queries_ == 0 ? double(writes_) : double(writes_) / double(queries_);
  if (queries_ > 0) {
    p.index_only_fraction = double(index_only_) / double(queries_);
    p.old_range_scan_fraction = double(old_scans_) / double(queries_);
  }
  return p;
}

StrategyRecommendation AdviseStrategy(const WorkloadProfile& p) {
  StrategyRecommendation rec;

  // Query-dominated workloads: the Eager strategy's ingestion-time point
  // lookups are amortized over many cheap queries (§6.4).
  if (p.writes_per_query < 2.0) {
    rec.strategy = MaintenanceStrategy::kEager;
    rec.rationale =
        "query-dominated workload: eager maintenance keeps every query "
        "validation-free and filters fully effective";
    return rec;
  }

  // Write-heavy with significant old-data range scans: only Mutable-bitmap
  // preserves filter pruning under updates (§6.4.2 / Fig 19) while still
  // avoiding full-record point lookups at ingestion.
  if (p.old_range_scan_fraction > 0.25 && p.update_ratio > 0.05) {
    rec.strategy = MaintenanceStrategy::kMutableBitmap;
    rec.rationale =
        "write-heavy with time-correlated scans over old data under "
        "updates: mutable bitmaps keep component pruning effective";
    return rec;
  }

  // Write-heavy with many index-only queries: Validation's extra validation
  // step costs 3-5x there (§6.4.1); Eager remains preferable until writes
  // dominate overwhelmingly.
  if (p.index_only_fraction > 0.5 && p.writes_per_query < 50.0) {
    rec.strategy = MaintenanceStrategy::kEager;
    rec.rationale =
        "index-only queries dominate: validation's sort+validate overhead "
        "(3-5x, §6.4.1) outweighs eager's ingestion-time lookups";
    return rec;
  }

  // Otherwise: ingestion-bound — Validation. Repair policy scales with the
  // update ratio (§4.4/§6.5).
  rec.strategy = MaintenanceStrategy::kValidation;
  if (p.update_ratio >= 0.25) {
    rec.merge_repair = true;
    rec.correlated_merges = true;
    rec.repair_bloom_opt = true;
    rec.rationale =
        "ingestion-bound and update-heavy: validation with merge repair and "
        "the Bloom-filter optimization under correlated merges";
  } else if (p.update_ratio > 0.02) {
    rec.merge_repair = true;
    rec.rationale =
        "ingestion-bound with moderate updates: validation with merge "
        "repair keeps obsolete entries bounded at small ingestion cost";
  } else {
    rec.rationale =
        "ingestion-bound, nearly append-only: validation without repair — "
        "few obsolete entries ever accumulate; schedule standalone repair "
        "off-peak";
  }
  return rec;
}

}  // namespace auxlsm
