// Index-to-index navigation: bulk point lookups against an LSM tree (§3.2).
//
// The naive algorithm sorts the keys and looks each up independently (every
// lookup descends every component from the root, so leaf pages of different
// components interleave and reads come out random). The batched algorithm
// divides the sorted keys into batches and, per batch, visits components one
// by one from newest to oldest, probing only still-unfound keys — so each
// component's leaf pages are touched in ascending key order (sequential), at
// the price of results coming back out of primary-key order.
#pragma once

#include <vector>

#include "lsm/lsm_tree.h"

namespace auxlsm {

struct FetchRequest {
  std::string pk;
  /// Component-ID propagation (pID): components with max_ts below this bound
  /// cannot contain the record and are skipped for this key.
  Timestamp prune_min_ts = 0;
};

struct PointLookupOptions {
  bool batched = true;
  size_t batch_memory_bytes = 16u << 20;
  /// Stateful B+-tree cursors with exponential search within a batch.
  bool stateful_btree_lookup = true;
  bool use_blocked_bloom = true;
  /// Raw mode: return the newest physical entry (including anti-matter and
  /// bitmap-invalid ones are reported as dead). Used by timestamp validation
  /// against the primary key index.
  bool raw = false;
};

struct FetchedEntry {
  std::string pk;
  std::string value;
  Timestamp ts = 0;
  bool alive = true;  ///< false: newest entry was anti-matter/bitmap-deleted
};

struct PointLookupStats {
  uint64_t keys = 0;
  uint64_t found = 0;
  uint64_t bloom_probes = 0;
  uint64_t bloom_negatives = 0;
  uint64_t tree_probes = 0;
  uint64_t components_skipped_by_id = 0;  ///< pID pruning
  uint64_t batches = 0;
};

/// A pinned read view of one LSM tree: its memtable set and disk-component
/// list captured once, memtables before components (the flush-race ordering
/// every query path observes). Disk components are immutable and their files
/// stay alive while the view holds them; memtable snapshots pin the
/// shared_ptrs, so a view remains self-consistent while concurrent flushes,
/// merges, and component retirement proceed. Note the *active* memtable is
/// still live — lookups through a view see writes that land after capture,
/// the same read-latest semantics as querying the tree directly.
///
/// QueryCursor executors capture their views at open and run every later
/// pull against them, which is what makes paginated reads stable across
/// concurrent maintenance.
struct LsmReadView {
  std::vector<std::shared_ptr<Memtable>> mems;  ///< newest first
  std::vector<DiskComponentPtr> components;     ///< newest first

  static LsmReadView Capture(const LsmTree& tree) {
    LsmReadView v;
    v.mems = tree.MemtableSet();  // before Components(): flush-race ordering
    v.components = tree.Components();
    return v;
  }

  /// Searches the memory components newest first; first hit wins (including
  /// anti-matter entries).
  Status GetFromMem(const Slice& key, OwnedEntry* out) const {
    for (const auto& m : mems) {
      if (m->Get(key, out).ok()) return Status::OK();
    }
    return Status::NotFound();
  }
};

/// Looks up every request in the captured view. Requests should be sorted by
/// pk ascending — batches are carved off the request vector in order, so
/// unsorted input degrades batch locality; within a batch the batched
/// algorithm re-sorts its pending keys itself before probing components.
/// Results are appended to *out in discovery order — primary-key order for
/// the naive algorithm, batch/component order for the batched one. Dead
/// entries (anti-matter / bitmap-invalid newest versions) are only appended
/// in raw mode.
Status BulkPointLookup(const LsmReadView& view,
                       const std::vector<FetchRequest>& requests,
                       const PointLookupOptions& options,
                       std::vector<FetchedEntry>* out,
                       PointLookupStats* stats = nullptr);

/// Convenience overload: captures a view of `tree` and looks up through it.
Status BulkPointLookup(const LsmTree& tree,
                       const std::vector<FetchRequest>& requests,
                       const PointLookupOptions& options,
                       std::vector<FetchedEntry>* out,
                       PointLookupStats* stats = nullptr);

class TupleCache;

/// Tuple-cache-aware reconciling point lookup against the primary index
/// (cache/tuple_cache.h, PR 7). Probes the cache's point space first — a hit
/// serves the record (or its proven absence) with no tree descent. On a miss
/// the cache epoch is captured *before* the tree lookup, the reconciling
/// Get runs, and the validated outcome (value or NotFound) is admitted.
/// `cache` may be null: the call is then exactly tree.Get. Returns OK with
/// *found = false for a missing key (NotFound is folded, unlike tree.Get).
Status CachedPrimaryGet(TupleCache* cache, const LsmTree& tree, uint64_t id,
                        const GetOptions& opts, bool* found,
                        std::string* value, bool* from_cache);

}  // namespace auxlsm
