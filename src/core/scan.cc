// Primary-index scans as a streaming executor: full scans (the Fig 12b
// baseline) and range-filter scans (§6.4.2) with strategy-dependent
// component pruning, pulled one entry at a time so a Limit stops reading
// pages as soon as enough rows matched. The legacy one-shot entry points
// drain an unlimited count-only cursor, visiting entries in exactly the
// pre-cursor order — ScanResult counters are bit-identical.
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "core/dataset.h"
#include "format/key_codec.h"

namespace auxlsm {

// ---------------------------------------------------------------------------
// FilterScanExecutor (a Dataset friend; see dataset.h)
// ---------------------------------------------------------------------------

class FilterScanExecutor final : public QueryExecutor {
 public:
  FilterScanExecutor(Dataset* dataset, const ReadQuery& query)
      : dataset_(dataset), query_(query) {}

  Status Open() override {
    readahead_ = query_.read_options().readahead_pages;
    if (readahead_ == 0) readahead_ = dataset_->options_.scan_readahead_pages;
    const auto strategy = dataset_->options_.strategy;
    LsmTree* primary = dataset_->primary_.get();

    // A pure time-range query scans with range-filter pruning; any user_id
    // predicate forces the full primary scan (filters only cover time).
    const bool prune_mode = query_.has_time_range() && !query_.has_range();

    if (!prune_mode) {
      mem_ = primary->MemSnapshot();  // before Components()
      selected_ = primary->Components();
      components_scanned_ = selected_.size();
      include_memtable_ = true;
      return InitCursor();
    }

    // Memtable state before the component snapshot (flush-race ordering).
    // Covers active and sealed memory components.
    const bool mem_overlaps =
        primary->MemOverlaps(query_.time_lo(), query_.time_hi());
    mem_ = primary->MemSnapshot();

    auto comps = primary->Components();
    auto overlaps = [&](const DiskComponentPtr& c) {
      const auto& f = c->range_filter();
      // A component without a filter can never be pruned.
      if (!f.has_value()) return true;
      return f->Overlaps(query_.time_lo(), query_.time_hi());
    };

    if (strategy == MaintenanceStrategy::kMutableBitmap) {
      // §5: bitmaps make disk entries self-describing, so components are
      // scanned one by one with independent pruning and no reconciliation.
      // The memtable snapshot was taken before the component snapshot, so a
      // concurrently flushed entry can appear in both; the newer timestamp
      // wins in either direction. Serially a mem/disk duplicate cannot
      // exist with a valid bitmap bit (the upsert marks the old version),
      // so the reconciliation map is only built when the maintenance engine
      // makes concurrent flushes possible — the serial hot loop stays
      // allocation-free.
      per_component_ = true;
      comps_ = std::move(comps);
      overlaps_ = overlaps;
      include_memtable_ = mem_overlaps;
      if (mem_overlaps && (dataset_->maintenance_ != nullptr ||
                           dataset_->multi_writer())) {
        for (const auto& e : mem_) mem_ts_[e.key] = e.ts;
      }
      return Status::OK();
    }

    // Candidate components by filter overlap.
    std::vector<bool> candidate(comps.size());
    int oldest_candidate = -1;
    for (size_t i = 0; i < comps.size(); i++) {
      candidate[i] = overlaps(comps[i]);
      if (candidate[i]) oldest_candidate = static_cast<int>(i);
    }

    include_memtable_ = mem_overlaps;
    if (strategy == MaintenanceStrategy::kValidation ||
        strategy == MaintenanceStrategy::kDeletedKeyBtree) {
      // §4.2: filters only reflect new records, so a query touching an
      // older component must read every newer component (and the memtable)
      // to see overriding updates.
      if (oldest_candidate >= 0) {
        include_memtable_ = true;
        for (int i = 0; i <= oldest_candidate; i++) {
          selected_.push_back(comps[i]);
        }
      }
    } else {
      // Eager: filters were widened with old-record values, so components
      // prune independently.
      for (size_t i = 0; i < comps.size(); i++) {
        if (candidate[i]) selected_.push_back(comps[i]);
      }
    }
    components_scanned_ = selected_.size();
    components_pruned_ = comps.size() - selected_.size();
    return InitCursor();
  }

  Status Produce(size_t max_rows, QueryPage* page, bool* done) override {
    const uint64_t match_budget =
        query_.limit() == 0 ? UINT64_MAX : query_.limit();
    size_t emitted = 0;
    while (!done_) {
      if (query_.count_only()) {
        // No rows to deliver: run to exhaustion (or to the match Limit) in
        // this single pull.
        if (records_matched_ >= match_budget) break;
      } else if (emitted >= max_rows) {
        break;
      }
      bool produced = false;
      AUXLSM_RETURN_NOT_OK(per_component_ ? StepPerComponent(page, &produced)
                                          : StepReconciling(page, &produced));
      if (produced) emitted++;
    }
    *done = done_ || records_matched_ >= match_budget;
    return Status::OK();
  }

  void AccumulateStats(CursorStats* out) const override {
    out->records_scanned = records_scanned_;
    out->records_matched = records_matched_;
    out->components_scanned = components_scanned_;
    out->components_pruned = components_pruned_;
  }

 private:
  Status InitCursor() {
    MergeCursor::Options mo;
    mo.readahead_pages = readahead_;
    mo.respect_bitmaps = true;
    cursor_ = std::make_unique<MergeCursor>(selected_, mo);
    return cursor_->Init();
  }

  /// Evaluates the query predicates against a serialized record.
  bool Matches(const Slice& value) const {
    if (query_.has_range()) {
      uint64_t uid = 0;
      if (!(ExtractUserId(value, &uid).ok() && uid >= query_.range_lo() &&
            uid <= query_.range_hi())) {
        return false;
      }
    }
    if (query_.has_time_range()) {
      uint64_t t = 0;
      if (!(ExtractCreationTime(value, &t).ok() && t >= query_.time_lo() &&
            t <= query_.time_hi())) {
        return false;
      }
    }
    return true;
  }

  /// Counts (and, for row-producing cursors, materializes) one live record.
  Status Visit(const Slice& value, QueryPage* page, bool* produced) {
    records_scanned_++;
    if (!Matches(value)) return Status::OK();
    records_matched_++;
    if (!query_.count_only()) {
      TweetRecord rec;
      AUXLSM_RETURN_NOT_OK(TweetRecord::Deserialize(value, &rec));
      page->records.push_back(std::move(rec));
      *produced = true;
    }
    return Status::OK();
  }

  /// One step of the reconciling merge over (selected components, memtable
  /// snapshot): duplicate keys resolve to the larger timestamp. Mirrors the
  /// legacy ReconcilingScan loop body.
  Status StepReconciling(QueryPage* page, bool* produced) {
    const auto& mem = include_memtable_ ? mem_ : kNoMem;
    if (!cursor_->Valid() && mi_ >= mem.size()) {
      done_ = true;
      return Status::OK();
    }
    int cmp;
    if (!cursor_->Valid()) {
      cmp = -1;
    } else if (mi_ >= mem.size()) {
      cmp = 1;
    } else {
      cmp = Slice(mem[mi_].key).compare(cursor_->key());
    }
    if (cmp < 0) {
      if (!mem[mi_].antimatter) {
        AUXLSM_RETURN_NOT_OK(Visit(mem[mi_].value, page, produced));
      }
      mi_++;
    } else if (cmp > 0) {
      if (!cursor_->antimatter()) {
        AUXLSM_RETURN_NOT_OK(Visit(cursor_->value(), page, produced));
      }
      AUXLSM_RETURN_NOT_OK(cursor_->Next());
    } else {
      if (mem[mi_].ts >= cursor_->ts()) {
        if (!mem[mi_].antimatter) {
          AUXLSM_RETURN_NOT_OK(Visit(mem[mi_].value, page, produced));
        }
      } else {
        if (!cursor_->antimatter()) {
          AUXLSM_RETURN_NOT_OK(Visit(cursor_->value(), page, produced));
        }
      }
      mi_++;
      AUXLSM_RETURN_NOT_OK(cursor_->Next());
    }
    return Status::OK();
  }

  /// One step of the Mutable-bitmap per-component scan: components in
  /// newest-first order (independent pruning), then the memtable snapshot.
  Status StepPerComponent(QueryPage* page, bool* produced) {
    while (true) {
      if (it_.has_value()) {
        if (it_->Valid()) {
          const DiskComponentPtr& c = comps_[ci_];
          bool visit = false;
          if (!it_->antimatter() && c->EntryValid(it_->ordinal())) {
            visit = true;
            if (!mem_ts_.empty()) {
              auto dup = mem_ts_.find(it_->key().ToString());
              if (dup != mem_ts_.end()) {
                if (dup->second >= it_->ts()) {
                  visit = false;  // mem copy newer: skip the disk copy
                } else {
                  superseded_.insert(dup->first);  // disk newer: skip mem
                }
              }
            }
          }
          Status st;
          if (visit) st = Visit(it_->value(), page, produced);
          AUXLSM_RETURN_NOT_OK(st);
          AUXLSM_RETURN_NOT_OK(it_->Next());
          if (*produced || visit) return Status::OK();
          continue;
        }
        it_.reset();
        ci_++;
      }
      if (ci_ < comps_.size()) {
        const DiskComponentPtr& c = comps_[ci_];
        if (!overlaps_(c)) {
          components_pruned_++;
          ci_++;
          continue;
        }
        components_scanned_++;
        it_.emplace(c->tree().NewIterator(readahead_));
        AUXLSM_RETURN_NOT_OK(it_->SeekToFirst());
        continue;
      }
      // Memtable phase.
      if (!include_memtable_ || mi_ >= mem_.size()) {
        done_ = true;
        return Status::OK();
      }
      const OwnedEntry& e = mem_[mi_++];
      if (!e.antimatter &&
          (superseded_.empty() || superseded_.count(e.key) == 0)) {
        return Visit(e.value, page, produced);
      }
    }
  }

  static const std::vector<OwnedEntry> kNoMem;

  Dataset* dataset_;
  ReadQuery query_;
  uint32_t readahead_ = 32;

  // Snapshot (captured at Open).
  std::vector<OwnedEntry> mem_;
  std::vector<DiskComponentPtr> selected_;  // reconciling mode
  std::vector<DiskComponentPtr> comps_;     // per-component mode
  std::function<bool(const DiskComponentPtr&)> overlaps_;
  bool include_memtable_ = false;
  bool per_component_ = false;

  // Iteration state.
  std::unique_ptr<MergeCursor> cursor_;
  size_t mi_ = 0;
  size_t ci_ = 0;
  std::optional<Btree::Iterator> it_;
  std::unordered_map<std::string, Timestamp> mem_ts_;
  std::unordered_set<std::string> superseded_;
  bool done_ = false;

  uint64_t records_scanned_ = 0;
  uint64_t records_matched_ = 0;
  uint64_t components_scanned_ = 0;
  uint64_t components_pruned_ = 0;
};

const std::vector<OwnedEntry> FilterScanExecutor::kNoMem;

std::unique_ptr<QueryExecutor> MakeFilterScanExecutor(Dataset* dataset,
                                                      const ReadQuery& query) {
  return std::make_unique<FilterScanExecutor>(dataset, query);
}

// --- Legacy wrappers --------------------------------------------------------

namespace {

Status FillScanResult(Dataset* ds, const ReadQuery& q, ScanResult* out) {
  AUXLSM_ASSIGN_OR_RETURN(auto cursor, ds->NewCursor(q));
  QueryPage page;
  while (!cursor->done()) {
    AUXLSM_RETURN_NOT_OK(cursor->Next(&page));
  }
  const CursorStats& s = cursor->stats();
  out->records_scanned = s.records_scanned;
  out->records_matched = s.records_matched;
  out->components_scanned = s.components_scanned;
  out->components_pruned = s.components_pruned;
  return Status::OK();
}

}  // namespace

Status Dataset::FullScanUserRange(uint64_t lo_user, uint64_t hi_user,
                                  ScanResult* out) {
  return FillScanResult(this, Query().Range(lo_user, hi_user).CountOnly(),
                        out);
}

Status Dataset::ScanTimeRange(uint64_t lo, uint64_t hi, ScanResult* out) {
  return FillScanResult(this, Query().TimeRange(lo, hi).CountOnly(), out);
}

}  // namespace auxlsm
