// Primary-index scans: full scans (the Fig 12b baseline) and range-filter
// scans (§6.4.2), with strategy-dependent component pruning.
#include <unordered_map>
#include <unordered_set>

#include "core/dataset.h"
#include "format/key_codec.h"

namespace auxlsm {

namespace {

/// Reconciling scan over the given primary components + a memtable snapshot
/// taken by the caller *before* the component snapshot (so a concurrent
/// flush cannot hide entries from both), invoking cb(value) for every live
/// record. Duplicate keys resolve to the larger timestamp.
Status ReconcilingScan(const std::vector<DiskComponentPtr>& comps,
                       const std::vector<OwnedEntry>& mem,
                       uint32_t readahead,
                       const std::function<void(const Slice&)>& cb) {
  MergeCursor::Options mo;
  mo.readahead_pages = readahead;
  mo.respect_bitmaps = true;
  MergeCursor cursor(comps, mo);
  AUXLSM_RETURN_NOT_OK(cursor.Init());

  size_t mi = 0;
  while (cursor.Valid() || mi < mem.size()) {
    int cmp;
    if (!cursor.Valid()) {
      cmp = -1;
    } else if (mi >= mem.size()) {
      cmp = 1;
    } else {
      cmp = Slice(mem[mi].key).compare(cursor.key());
    }
    if (cmp < 0) {
      if (!mem[mi].antimatter) cb(mem[mi].value);
      mi++;
    } else if (cmp > 0) {
      if (!cursor.antimatter()) cb(cursor.value());
      AUXLSM_RETURN_NOT_OK(cursor.Next());
    } else {
      if (mem[mi].ts >= cursor.ts()) {
        if (!mem[mi].antimatter) cb(mem[mi].value);
      } else {
        if (!cursor.antimatter()) cb(cursor.value());
      }
      mi++;
      AUXLSM_RETURN_NOT_OK(cursor.Next());
    }
  }
  return Status::OK();
}

}  // namespace

Status Dataset::FullScanUserRange(uint64_t lo_user, uint64_t hi_user,
                                  ScanResult* out) {
  const auto mem = primary_->MemSnapshot();  // before Components()
  auto comps = primary_->Components();
  out->components_scanned = comps.size();
  uint64_t scanned = 0, matched = 0;
  AUXLSM_RETURN_NOT_OK(ReconcilingScan(
      comps, mem, options_.scan_readahead_pages,
      [&](const Slice& value) {
        scanned++;
        uint64_t uid = 0;
        if (ExtractUserId(value, &uid).ok() && uid >= lo_user &&
            uid <= hi_user) {
          matched++;
        }
      }));
  out->records_scanned = scanned;
  out->records_matched = matched;
  return Status::OK();
}

Status Dataset::ScanTimeRange(uint64_t lo, uint64_t hi, ScanResult* out) {
  // Memtable state before the component snapshot (flush-race ordering; see
  // ReconcilingScan). Covers active and sealed memory components.
  const bool mem_overlaps = primary_->MemOverlaps(lo, hi);
  const auto mem = primary_->MemSnapshot();

  auto comps = primary_->Components();
  auto overlaps = [&](const DiskComponentPtr& c) {
    const auto& f = c->range_filter();
    // A component without a filter can never be pruned.
    if (!f.has_value()) return true;
    return f->Overlaps(lo, hi);
  };
  auto count_matches = [&](const Slice& value, uint64_t* matched) {
    uint64_t t = 0;
    if (ExtractCreationTime(value, &t).ok() && t >= lo && t <= hi) {
      (*matched)++;
    }
  };

  uint64_t scanned = 0, matched = 0;

  if (options_.strategy == MaintenanceStrategy::kMutableBitmap) {
    // §5: bitmaps make disk entries self-describing, so components are
    // scanned one by one with independent pruning and no reconciliation.
    // The memtable snapshot was taken before the component snapshot, so a
    // concurrently flushed entry can appear in both; the newer timestamp
    // wins in either direction. Serially a mem/disk duplicate cannot exist
    // with a valid bitmap bit (the upsert marks the old version), so the
    // reconciliation map is only built when the maintenance engine makes
    // concurrent flushes possible — the serial hot loop stays
    // allocation-free.
    std::unordered_map<std::string, Timestamp> mem_ts;
    std::unordered_set<std::string> superseded;
    if (mem_overlaps && (maintenance_ != nullptr || multi_writer())) {
      for (const auto& e : mem) mem_ts[e.key] = e.ts;
    }
    for (const auto& c : comps) {
      if (!overlaps(c)) {
        out->components_pruned++;
        continue;
      }
      out->components_scanned++;
      auto it = c->tree().NewIterator(options_.scan_readahead_pages);
      AUXLSM_RETURN_NOT_OK(it.SeekToFirst());
      while (it.Valid()) {
        if (!it.antimatter() && c->EntryValid(it.ordinal())) {
          bool dup_wins = false;
          if (!mem_ts.empty()) {
            auto dup = mem_ts.find(it.key().ToString());
            if (dup != mem_ts.end()) {
              if (dup->second >= it.ts()) {
                dup_wins = true;  // mem copy newer: skip the disk copy
              } else {
                superseded.insert(dup->first);  // disk copy newer: skip mem
              }
            }
          }
          if (!dup_wins) {
            scanned++;
            count_matches(it.value(), &matched);
          }
        }
        AUXLSM_RETURN_NOT_OK(it.Next());
      }
    }
    if (mem_overlaps) {
      for (const auto& e : mem) {
        if (!e.antimatter &&
            (superseded.empty() || superseded.count(e.key) == 0)) {
          scanned++;
          count_matches(e.value, &matched);
        }
      }
    }
    out->records_scanned = scanned;
    out->records_matched = matched;
    return Status::OK();
  }

  // Candidate components by filter overlap.
  std::vector<bool> candidate(comps.size());
  int oldest_candidate = -1;
  for (size_t i = 0; i < comps.size(); i++) {
    candidate[i] = overlaps(comps[i]);
    if (candidate[i]) oldest_candidate = static_cast<int>(i);
  }

  std::vector<DiskComponentPtr> selected;
  bool include_memtable = mem_overlaps;
  if (options_.strategy == MaintenanceStrategy::kValidation ||
      options_.strategy == MaintenanceStrategy::kDeletedKeyBtree) {
    // §4.2: filters only reflect new records, so a query touching an older
    // component must read every newer component (and the memtable) to see
    // overriding updates.
    if (oldest_candidate >= 0) {
      include_memtable = true;
      for (int i = 0; i <= oldest_candidate; i++) {
        selected.push_back(comps[i]);
      }
    }
  } else {
    // Eager: filters were widened with old-record values, so components
    // prune independently.
    for (size_t i = 0; i < comps.size(); i++) {
      if (candidate[i]) selected.push_back(comps[i]);
    }
  }
  out->components_scanned = selected.size();
  out->components_pruned = comps.size() - selected.size();

  static const std::vector<OwnedEntry> kNoMem;
  AUXLSM_RETURN_NOT_OK(ReconcilingScan(
      selected, include_memtable ? mem : kNoMem,
      options_.scan_readahead_pages, [&](const Slice& value) {
        scanned++;
        count_matches(value, &matched);
      }));
  out->records_scanned = scanned;
  out->records_matched = matched;
  return Status::OK();
}

}  // namespace auxlsm
