// Primary-index scans as a streaming executor: full scans (the Fig 12b
// baseline) and range-filter scans (§6.4.2) with strategy-dependent
// component pruning, pulled one entry at a time so a Limit stops reading
// pages as soon as enough rows matched. The legacy one-shot entry points
// drain an unlimited count-only cursor, visiting entries in exactly the
// pre-cursor order — ScanResult counters are bit-identical.
#include <algorithm>
#include <map>
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "cache/tuple_cache.h"
#include "core/dataset.h"
#include "format/key_codec.h"

namespace auxlsm {

// ---------------------------------------------------------------------------
// FilterScanExecutor (a Dataset friend; see dataset.h)
// ---------------------------------------------------------------------------

class FilterScanExecutor final : public QueryExecutor {
 public:
  FilterScanExecutor(Dataset* dataset, const ReadQuery& query)
      : dataset_(dataset), query_(query) {}

  Status Open() override {
    readahead_ = query_.read_options().readahead_pages;
    if (readahead_ == 0) readahead_ = dataset_->options_.scan_readahead_pages;
    const auto strategy = dataset_->options_.strategy;
    LsmTree* primary = dataset_->primary_.get();

    // Tuple-cache consult (PR 7): an unlimited user-range scan produces
    // exactly the records whose current user_id falls in [lo, hi], in
    // primary-key order — the same result the "user_id" secondary query
    // caches — so the two plans share that index's space. Only complete
    // chains are served: the scan streams pages out incrementally, so a
    // key-major cached prefix could not be merged back into pk order
    // before delivery (unlike the buffering secondary executor).
    if (TupleCache* cache = dataset_->tuple_cache();
        cache != nullptr && query_.has_range() && !query_.has_time_range() &&
        !query_.count_only() && query_.limit() == 0) {
      for (size_t i = 0; i < dataset_->secondaries_.size(); i++) {
        const auto& def = dataset_->secondaries_[i]->def;
        if (def.name == "user_id" && def.sk_width == sizeof(uint64_t)) {
          cache_ = cache;
          space_ = Dataset::TupleCacheSpaceOf(i);
          break;
        }
      }
    }
    if (cache_ != nullptr) {
      // Epoch before any snapshot capture: a racing write invalidates after
      // its effects are visible, so an unchanged epoch at populate time
      // proves the scan observed the write (or the insert is dropped).
      epoch_ = cache_->SpaceEpoch(space_);
      TupleCache::RangeServe serve;
      cache_->LookupRange(space_, query_.range_lo(), query_.range_hi(),
                          &serve);
      if (serve.complete) {
        // Full serve: no snapshot, no merge cursor, no modeled I/O. Cached
        // tuples are key-major; the scan's order is global pk-ascending.
        cache_hits_ = 1;
        cache_rows_ = serve.tuples.size();
        served_.reserve(serve.tuples.size());
        for (const auto& t : serve.tuples) {
          TweetRecord rec;
          AUXLSM_RETURN_NOT_OK(TweetRecord::Deserialize(t.value, &rec));
          served_.push_back(std::move(rec));
        }
        std::sort(served_.begin(), served_.end(),
                  [](const TweetRecord& a, const TweetRecord& b) {
                    return a.id < b.id;
                  });
        full_serve_ = true;
        return Status::OK();
      }
      cache_misses_ = 1;
      collect_ = true;  // populate from the completed scan below
    }

    // A pure time-range query scans with range-filter pruning; any user_id
    // predicate forces the full primary scan (filters only cover time).
    const bool prune_mode = query_.has_time_range() && !query_.has_range();

    if (!prune_mode) {
      mem_ = primary->MemSnapshot();  // before Components()
      selected_ = primary->Components();
      components_scanned_ = selected_.size();
      include_memtable_ = true;
      return InitCursor();
    }

    // Memtable state before the component snapshot (flush-race ordering).
    // Covers active and sealed memory components.
    const bool mem_overlaps =
        primary->MemOverlaps(query_.time_lo(), query_.time_hi());
    mem_ = primary->MemSnapshot();

    auto comps = primary->Components();
    auto overlaps = [&](const DiskComponentPtr& c) {
      const auto& f = c->range_filter();
      // A component without a filter can never be pruned.
      if (!f.has_value()) return true;
      return f->Overlaps(query_.time_lo(), query_.time_hi());
    };

    if (strategy == MaintenanceStrategy::kMutableBitmap) {
      // §5: bitmaps make disk entries self-describing, so components are
      // scanned one by one with independent pruning and no reconciliation.
      // The memtable snapshot was taken before the component snapshot, so a
      // concurrently flushed entry can appear in both; the newer timestamp
      // wins in either direction. Serially a mem/disk duplicate cannot
      // exist with a valid bitmap bit (the upsert marks the old version),
      // so the reconciliation map is only built when the maintenance engine
      // makes concurrent flushes possible — the serial hot loop stays
      // allocation-free.
      per_component_ = true;
      comps_ = std::move(comps);
      overlaps_ = overlaps;
      include_memtable_ = mem_overlaps;
      if (mem_overlaps && (dataset_->maintenance_ != nullptr ||
                           dataset_->multi_writer())) {
        for (const auto& e : mem_) mem_ts_[e.key] = e.ts;
      }
      return Status::OK();
    }

    // Candidate components by filter overlap.
    std::vector<bool> candidate(comps.size());
    int oldest_candidate = -1;
    for (size_t i = 0; i < comps.size(); i++) {
      candidate[i] = overlaps(comps[i]);
      if (candidate[i]) oldest_candidate = static_cast<int>(i);
    }

    include_memtable_ = mem_overlaps;
    if (strategy == MaintenanceStrategy::kValidation ||
        strategy == MaintenanceStrategy::kDeletedKeyBtree) {
      // §4.2: filters only reflect new records, so a query touching an
      // older component must read every newer component (and the memtable)
      // to see overriding updates.
      if (oldest_candidate >= 0) {
        include_memtable_ = true;
        for (int i = 0; i <= oldest_candidate; i++) {
          selected_.push_back(comps[i]);
        }
      }
    } else {
      // Eager: filters were widened with old-record values, so components
      // prune independently.
      for (size_t i = 0; i < comps.size(); i++) {
        if (candidate[i]) selected_.push_back(comps[i]);
      }
    }
    components_scanned_ = selected_.size();
    components_pruned_ = comps.size() - selected_.size();
    return InitCursor();
  }

  Status Produce(size_t max_rows, QueryPage* page, bool* done) override {
    if (full_serve_) {
      size_t emitted = 0;
      while (emitted < max_rows && served_pos_ < served_.size()) {
        records_matched_++;
        page->records.push_back(std::move(served_[served_pos_++]));
        emitted++;
      }
      if (served_pos_ >= served_.size()) done_ = true;
      *done = done_;
      return Status::OK();
    }
    const uint64_t match_budget =
        query_.limit() == 0 ? UINT64_MAX : query_.limit();
    size_t emitted = 0;
    while (!done_) {
      if (query_.count_only()) {
        // No rows to deliver: run to exhaustion (or to the match Limit) in
        // this single pull.
        if (records_matched_ >= match_budget) break;
      } else if (emitted >= max_rows) {
        break;
      }
      bool produced = false;
      AUXLSM_RETURN_NOT_OK(per_component_ ? StepPerComponent(page, &produced)
                                          : StepReconciling(page, &produced));
      if (produced) emitted++;
    }
    // An eligible (unlimited, row-producing) scan completes only by stream
    // exhaustion, so the full matched set was collected: admit it.
    if (done_ && collect_ && !populated_) PopulateCache();
    *done = done_ || records_matched_ >= match_budget;
    return Status::OK();
  }

  void AccumulateStats(CursorStats* out) const override {
    out->records_scanned = records_scanned_;
    out->records_matched = records_matched_;
    out->components_scanned = components_scanned_;
    out->components_pruned = components_pruned_;
    out->tuple_cache_hits = cache_hits_;
    out->tuple_cache_chain_rows = cache_rows_;
    out->tuple_cache_misses = cache_misses_;
  }

 private:
  Status InitCursor() {
    MergeCursor::Options mo;
    mo.readahead_pages = readahead_;
    mo.respect_bitmaps = true;
    cursor_ = std::make_unique<MergeCursor>(selected_, mo);
    return cursor_->Init();
  }

  /// Evaluates the query predicates against a serialized record.
  bool Matches(const Slice& value) const {
    if (query_.has_range()) {
      uint64_t uid = 0;
      if (!(ExtractUserId(value, &uid).ok() && uid >= query_.range_lo() &&
            uid <= query_.range_hi())) {
        return false;
      }
    }
    if (query_.has_time_range()) {
      uint64_t t = 0;
      if (!(ExtractCreationTime(value, &t).ok() && t >= query_.time_lo() &&
            t <= query_.time_hi())) {
        return false;
      }
    }
    return true;
  }

  /// Counts (and, for row-producing cursors, materializes) one live record.
  Status Visit(const Slice& value, QueryPage* page, bool* produced) {
    records_scanned_++;
    if (!Matches(value)) return Status::OK();
    records_matched_++;
    if (!query_.count_only()) {
      TweetRecord rec;
      AUXLSM_RETURN_NOT_OK(TweetRecord::Deserialize(value, &rec));
      if (collect_) collected_.push_back(rec);
      page->records.push_back(std::move(rec));
      *produced = true;
    }
    return Status::OK();
  }

  /// Runs once when an eligible scan exhausts: admits the completed result
  /// of [range_lo, range_hi] into the shared user_id space, grouped by each
  /// record's current user_id (the key write-side invalidation cuts on).
  void PopulateCache() {
    populated_ = true;
    std::map<uint64_t, std::vector<CachedTuple>> grouped;
    for (const auto& rec : collected_) {
      // Defensive: a key outside the queried interval would poison the
      // chain's emptiness claims (unreachable — Matches() filtered on it).
      if (rec.user_id < query_.range_lo() || rec.user_id > query_.range_hi())
        return;
      grouped[rec.user_id].push_back(
          CachedTuple{EncodeU64(rec.id), rec.Serialize()});
    }
    std::vector<TupleCache::KeyGroup> groups;
    groups.reserve(grouped.size());
    for (auto& [key, tuples] : grouped) {
      groups.push_back(TupleCache::KeyGroup{key, std::move(tuples)});
    }
    cache_->InsertRange(space_, query_.range_lo(), query_.range_hi(),
                        std::move(groups), epoch_);
    collected_.clear();
  }

  /// One step of the reconciling merge over (selected components, memtable
  /// snapshot): duplicate keys resolve to the larger timestamp. Mirrors the
  /// legacy ReconcilingScan loop body.
  Status StepReconciling(QueryPage* page, bool* produced) {
    const auto& mem = include_memtable_ ? mem_ : kNoMem;
    if (!cursor_->Valid() && mi_ >= mem.size()) {
      done_ = true;
      return Status::OK();
    }
    int cmp;
    if (!cursor_->Valid()) {
      cmp = -1;
    } else if (mi_ >= mem.size()) {
      cmp = 1;
    } else {
      cmp = Slice(mem[mi_].key).compare(cursor_->key());
    }
    if (cmp < 0) {
      if (!mem[mi_].antimatter) {
        AUXLSM_RETURN_NOT_OK(Visit(mem[mi_].value, page, produced));
      }
      mi_++;
    } else if (cmp > 0) {
      if (!cursor_->antimatter()) {
        AUXLSM_RETURN_NOT_OK(Visit(cursor_->value(), page, produced));
      }
      AUXLSM_RETURN_NOT_OK(cursor_->Next());
    } else {
      if (mem[mi_].ts >= cursor_->ts()) {
        if (!mem[mi_].antimatter) {
          AUXLSM_RETURN_NOT_OK(Visit(mem[mi_].value, page, produced));
        }
      } else {
        if (!cursor_->antimatter()) {
          AUXLSM_RETURN_NOT_OK(Visit(cursor_->value(), page, produced));
        }
      }
      mi_++;
      AUXLSM_RETURN_NOT_OK(cursor_->Next());
    }
    return Status::OK();
  }

  /// One step of the Mutable-bitmap per-component scan: components in
  /// newest-first order (independent pruning), then the memtable snapshot.
  Status StepPerComponent(QueryPage* page, bool* produced) {
    while (true) {
      if (it_.has_value()) {
        if (it_->Valid()) {
          const DiskComponentPtr& c = comps_[ci_];
          bool visit = false;
          if (!it_->antimatter() && c->EntryValid(it_->ordinal())) {
            visit = true;
            if (!mem_ts_.empty()) {
              auto dup = mem_ts_.find(it_->key().ToString());
              if (dup != mem_ts_.end()) {
                if (dup->second >= it_->ts()) {
                  visit = false;  // mem copy newer: skip the disk copy
                } else {
                  superseded_.insert(dup->first);  // disk newer: skip mem
                }
              }
            }
          }
          Status st;
          if (visit) st = Visit(it_->value(), page, produced);
          AUXLSM_RETURN_NOT_OK(st);
          AUXLSM_RETURN_NOT_OK(it_->Next());
          if (*produced || visit) return Status::OK();
          continue;
        }
        it_.reset();
        ci_++;
      }
      if (ci_ < comps_.size()) {
        const DiskComponentPtr& c = comps_[ci_];
        if (!overlaps_(c)) {
          components_pruned_++;
          ci_++;
          continue;
        }
        components_scanned_++;
        it_.emplace(c->tree().NewIterator(readahead_));
        AUXLSM_RETURN_NOT_OK(it_->SeekToFirst());
        continue;
      }
      // Memtable phase.
      if (!include_memtable_ || mi_ >= mem_.size()) {
        done_ = true;
        return Status::OK();
      }
      const OwnedEntry& e = mem_[mi_++];
      if (!e.antimatter &&
          (superseded_.empty() || superseded_.count(e.key) == 0)) {
        return Visit(e.value, page, produced);
      }
    }
  }

  static const std::vector<OwnedEntry> kNoMem;

  Dataset* dataset_;
  ReadQuery query_;
  uint32_t readahead_ = 32;

  // Snapshot (captured at Open).
  std::vector<OwnedEntry> mem_;
  std::vector<DiskComponentPtr> selected_;  // reconciling mode
  std::vector<DiskComponentPtr> comps_;     // per-component mode
  std::function<bool(const DiskComponentPtr&)> overlaps_;
  bool include_memtable_ = false;
  bool per_component_ = false;

  // Iteration state.
  std::unique_ptr<MergeCursor> cursor_;
  size_t mi_ = 0;
  size_t ci_ = 0;
  std::optional<Btree::Iterator> it_;
  std::unordered_map<std::string, Timestamp> mem_ts_;
  std::unordered_set<std::string> superseded_;
  bool done_ = false;

  uint64_t records_scanned_ = 0;
  uint64_t records_matched_ = 0;
  uint64_t components_scanned_ = 0;
  uint64_t components_pruned_ = 0;

  // Tuple-cache state (PR 7); inert when cache_ is null.
  TupleCache* cache_ = nullptr;
  uint32_t space_ = 0;
  uint64_t epoch_ = 0;
  bool full_serve_ = false;
  bool collect_ = false;
  bool populated_ = false;
  std::vector<TweetRecord> served_;   ///< cache-served rows (pk order)
  size_t served_pos_ = 0;
  std::vector<TweetRecord> collected_;  ///< emitted rows awaiting populate
  uint64_t cache_hits_ = 0;
  uint64_t cache_rows_ = 0;
  uint64_t cache_misses_ = 0;
};

const std::vector<OwnedEntry> FilterScanExecutor::kNoMem;

std::unique_ptr<QueryExecutor> MakeFilterScanExecutor(Dataset* dataset,
                                                      const ReadQuery& query) {
  return std::make_unique<FilterScanExecutor>(dataset, query);
}

// --- Legacy wrappers --------------------------------------------------------

namespace {

Status FillScanResult(Dataset* ds, const ReadQuery& q, ScanResult* out) {
  AUXLSM_ASSIGN_OR_RETURN(auto cursor, ds->NewCursor(q));
  QueryPage page;
  while (!cursor->done()) {
    AUXLSM_RETURN_NOT_OK(cursor->Next(&page));
  }
  const CursorStats& s = cursor->stats();
  out->records_scanned = s.records_scanned;
  out->records_matched = s.records_matched;
  out->components_scanned = s.components_scanned;
  out->components_pruned = s.components_pruned;
  return Status::OK();
}

}  // namespace

Status Dataset::FullScanUserRange(uint64_t lo_user, uint64_t hi_user,
                                  ScanResult* out) {
  return FillScanResult(this, Query().Range(lo_user, hi_user).CountOnly(),
                        out);
}

Status Dataset::ScanTimeRange(uint64_t lo, uint64_t hi, ScanResult* out) {
  return FillScanResult(this, Query().TimeRange(lo, hi).CountOnly(), out);
}

}  // namespace auxlsm
