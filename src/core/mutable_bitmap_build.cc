#include "core/mutable_bitmap_build.h"

#include <algorithm>
#include <chrono>

#include "btree/btree_builder.h"
#include "common/hash.h"

namespace auxlsm {

namespace {

/// Binary search over the emitted-keys prefix [0, count).
bool FindEmitted(const BuildLink* link, size_t count, const Slice& pk,
                 uint64_t* pos) {
  const auto begin = link->emitted_keys.begin();
  const auto end = begin + static_cast<long>(count);
  auto it = std::lower_bound(begin, end, pk.view(),
                             [](const std::string& a, std::string_view b) {
                               return std::string_view(a) < b;
                             });
  if (it == end || Slice(*it) != pk) return false;
  *pos = static_cast<uint64_t>(it - begin);
  return true;
}

}  // namespace

void ApplyDeleteToBuild(BuildLink* link, const Slice& pk, Transaction* txn) {
  if (link->method == BuildCcMethod::kLock) {
    // Fig 10b lines 6-7: if the key was already copied (key <= ScannedKey),
    // mark it deleted in the new component too.
    const size_t count = link->emitted_count.load(std::memory_order_acquire);
    uint64_t pos = 0;
    if (count > 0 && FindEmitted(link, count, pk, &pos)) {
      link->overlay.Set(pos);
      if (txn != nullptr) {
        Bitmap* overlay = &link->overlay;
        txn->PushUndo([overlay, pos]() { overlay->Unset(pos); });
      }
    }
    return;
  }
  if (link->method == BuildCcMethod::kSideFile) {
    // Fig 11b lines 6-9: append to the side-file; if it is already closed,
    // apply to the new component directly. The lock is cycled explicitly:
    // the closed case continues lock-free against the immutable emitted
    // prefix, which a scoped guard cannot express.
    link->mu.lock();
    if (!link->side_file_closed) {
      link->side_file.emplace_back(pk.ToString(), false);
      if (txn != nullptr) {
        BuildLink* lk = link;
        std::string key = pk.ToString();
        txn->PushUndo([lk, key]() {
          lk->mu.lock();
          if (!lk->side_file_closed) {
            // Rollback appends an anti-matter key while the side-file is open.
            lk->side_file.emplace_back(key, true);
            lk->mu.unlock();
          } else {
            lk->mu.unlock();
            uint64_t pos = 0;
            const size_t n = lk->emitted_count.load(std::memory_order_acquire);
            if (FindEmitted(lk, n, key, &pos)) lk->overlay.Unset(pos);
          }
        });
      }
      link->mu.unlock();
      return;
    }
    link->mu.unlock();
    const size_t count = link->emitted_count.load(std::memory_order_acquire);
    uint64_t pos = 0;
    if (FindEmitted(link, count, pk, &pos)) {
      link->overlay.Set(pos);
      if (txn != nullptr) {
        Bitmap* overlay = &link->overlay;
        txn->PushUndo([overlay, pos]() { overlay->Unset(pos); });
      }
    }
  }
}

namespace {

struct DualBuilder {
  DualBuilder(Env* env) : primary(env), pk(env) {}
  BtreeBuilder primary;
  BtreeBuilder pk;
  std::vector<uint64_t> hashes;

  Status Add(const Slice& key, const Slice& value, Timestamp ts,
             bool antimatter) {
    AUXLSM_RETURN_NOT_OK(primary.Add(key, value, ts, antimatter));
    AUXLSM_RETURN_NOT_OK(pk.Add(key, Slice(), ts, antimatter));
    hashes.push_back(Hash64(key));
    return Status::OK();
  }
};

// Installs the finished primary/pk component pair, replacing the old ones.
Status InstallPair(Dataset* ds, const std::vector<DiskComponentPtr>& old_p,
                   const std::vector<DiskComponentPtr>& old_k,
                   DualBuilder* dual, ComponentId id, Timestamp repaired,
                   const Bitmap& overlay, uint64_t emitted,
                   uint64_t* output_entries) {
  BtreeMeta pmeta, kmeta;
  AUXLSM_RETURN_NOT_OK(dual->primary.Finish(&pmeta));
  AUXLSM_RETURN_NOT_OK(dual->pk.Finish(&kmeta));
  *output_entries = pmeta.num_entries;

  auto pcomp = std::make_shared<DiskComponent>(id, ds->env(), pmeta);
  auto kcomp = std::make_shared<DiskComponent>(id, ds->env(), kmeta);
  const double fpr = ds->options().bloom_fpr;
  pcomp->set_bloom(std::make_unique<BloomFilter>(dual->hashes, fpr));
  kcomp->set_bloom(std::make_unique<BloomFilter>(dual->hashes, fpr));
  if (ds->options().build_blocked_bloom) {
    pcomp->set_blocked_bloom(
        std::make_unique<BlockedBloomFilter>(dual->hashes, fpr));
    kcomp->set_blocked_bloom(
        std::make_unique<BlockedBloomFilter>(dual->hashes, fpr));
  }
  // One shared validity bitmap (§5.1), seeded with deletes that were applied
  // to the new component during the build.
  auto bitmap = std::make_shared<Bitmap>(pmeta.num_entries);
  for (uint64_t i = 0; i < emitted && i < pmeta.num_entries; i++) {
    if (overlay.Test(i)) bitmap->Set(i);
  }
  pcomp->set_bitmap(bitmap);
  kcomp->set_bitmap(bitmap);
  pcomp->set_repaired_ts(repaired);
  kcomp->set_repaired_ts(repaired);
  // Recovery replays from the max component LSN; the merged pair must keep
  // carrying the newest LSN of its inputs (see LsmTree::MergeFromStream).
  Lsn max_lsn = kInvalidLsn;
  for (const auto& c : old_p) max_lsn = std::max(max_lsn, c->max_lsn());
  pcomp->set_max_lsn(max_lsn);
  kcomp->set_max_lsn(max_lsn);
  // Merged range filter: union of inputs (conservative).
  RangeFilter f;
  for (const auto& c : old_p) {
    if (c->range_filter().has_value()) f.Merge(*c->range_filter());
  }
  pcomp->set_range_filter(f);

  AUXLSM_RETURN_NOT_OK(ds->primary()->ReplaceComponents(old_p, pcomp));
  if (ds->primary_key_index() != nullptr) {
    AUXLSM_RETURN_NOT_OK(
        ds->primary_key_index()->ReplaceComponents(old_k, kcomp));
  }
  return Status::OK();
}

// Unpublishes a build on ANY exit after the link went live. A §5.3 build
// that fails mid-scan (I/O error, injected fault, failed builder commit)
// used to leave its BuildLink on the picked components and its side-file
// open forever: writers kept routing deletes into the dead build, and under
// decoupled scheduling the failed job wedged its group queue. The guard
// closes the side-file and clears the links — under a briefly-acquired
// exclusive ingest latch unless the caller already holds it — and the
// success path disarms it after its own under-latch cleanup.
class BuildLinkGuard {
 public:
  BuildLinkGuard(Dataset* ds, bool dataset_latched,
                 const std::vector<DiskComponentPtr>& old_p,
                 const std::vector<DiskComponentPtr>& old_k)
      : ds_(ds), latched_(dataset_latched), old_p_(old_p), old_k_(old_k) {}

  void Arm(std::shared_ptr<BuildLink> link) {
    link_ = std::move(link);
    armed_ = true;
  }
  void Disarm() { armed_ = false; }

  ~BuildLinkGuard() {
    if (!armed_) return;
    auto unpublish = [this]() {
      if (link_ != nullptr) {
        MutexLock l(link_->mu);
        link_->side_file_closed = true;
      }
      for (const auto& c : old_p_) c->set_build_link(nullptr);
      for (const auto& c : old_k_) c->set_build_link(nullptr);
    };
    if (latched_) {
      unpublish();
    } else {
      WriteLatchGuard drain(ds_->ingest_latch());
      unpublish();
    }
  }

 private:
  Dataset* const ds_;
  const bool latched_;
  const std::vector<DiskComponentPtr>& old_p_;
  const std::vector<DiskComponentPtr>& old_k_;
  std::shared_ptr<BuildLink> link_;
  bool armed_ = false;
};

}  // namespace

Status ConcurrentMerge(Dataset* ds, size_t begin, size_t end,
                       BuildCcMethod method, ConcurrentMergeStats* stats,
                       bool dataset_latched) {
  auto old_p_all = ds->primary()->Components();
  auto old_k_all = ds->primary_key_index() != nullptr
                       ? ds->primary_key_index()->Components()
                       : std::vector<DiskComponentPtr>{};
  if (end > old_p_all.size() || begin >= end) {
    return Status::InvalidArgument("bad merge range");
  }
  std::vector<DiskComponentPtr> old_p(old_p_all.begin() + begin,
                                      old_p_all.begin() + end);
  std::vector<DiskComponentPtr> old_k;
  if (!old_k_all.empty()) {
    if (end > old_k_all.size()) {
      return Status::InvalidArgument("pk index components out of sync");
    }
    old_k.assign(old_k_all.begin() + begin, old_k_all.begin() + end);
  }
  return ConcurrentMergePicked(ds, old_p, old_k, method, stats,
                               dataset_latched);
}

Status ConcurrentMergePicked(Dataset* ds,
                             const std::vector<DiskComponentPtr>& old_p,
                             const std::vector<DiskComponentPtr>& old_k,
                             BuildCcMethod method, ConcurrentMergeStats* stats,
                             bool dataset_latched) {
  const auto t0 = std::chrono::steady_clock::now();
  // Runs fn with in-flight writers drained: under a freshly-acquired
  // exclusive ingest latch, or bare when the caller already holds it (the
  // latch is not reentrant, and the analysis cannot see a caller-held
  // capability through a runtime flag — hence the call-under-guard shape
  // instead of a conditional scoped lock).
  auto with_writers_drained = [ds, dataset_latched](auto&& fn) {
    if (dataset_latched) return fn();
    WriteLatchGuard drain(ds->ingest_latch());
    return fn();
  };
  if (old_p.empty()) {
    return Status::InvalidArgument("bad merge range");
  }
  if (!old_k.empty() && old_k.size() != old_p.size()) {
    return Status::InvalidArgument("pk index components out of sync");
  }

  uint64_t capacity = 0;
  for (const auto& c : old_p) capacity += c->num_entries();
  stats->input_entries = capacity;
  const ComponentId id{old_p.back()->id().min_ts, old_p.front()->id().max_ts};
  Timestamp repaired = old_p.front()->repaired_ts();
  for (const auto& c : old_p) repaired = std::min(repaired, c->repaired_ts());
  // Anti-matter may be dropped only when the merge reaches the tree's oldest
  // component; checking against the live list is stable under concurrent
  // flush installs (they only prepend at the newest end).
  const bool drop_antimatter = ds->primary()->IsOldestComponent(old_p.back());

  DualBuilder dual(ds->env());

  if (method == BuildCcMethod::kNone) {
    // Baseline: plain merge with live bitmaps, no writer coordination.
    MergeCursor::Options mo;
    mo.respect_bitmaps = true;
    mo.drop_antimatter = drop_antimatter;
    MergeCursor cursor(old_p, mo);
    AUXLSM_RETURN_NOT_OK(cursor.Init());
    Bitmap empty_overlay(0);
    uint64_t emitted = 0;
    while (cursor.Valid()) {
      AUXLSM_RETURN_NOT_OK(
          dual.Add(cursor.key(), cursor.value(), cursor.ts(),
                   cursor.antimatter()));
      emitted++;
      AUXLSM_RETURN_NOT_OK(cursor.Next());
    }
    AUXLSM_RETURN_NOT_OK(with_writers_drained([&]() -> Status {
      return InstallPair(ds, old_p, old_k, &dual, id, repaired, empty_overlay,
                         0, &stats->output_entries);
    }));
    stats->elapsed_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    return Status::OK();
  }

  auto link = std::make_shared<BuildLink>(method, capacity);
  BuildLinkGuard guard(ds, dataset_latched, old_p, old_k);
  FaultInjector* fault = ds->options().fault_injector;

  if (method == BuildCcMethod::kLock) {
    // Fig 10a: make the new component visible, then scan with per-key shared
    // locks, re-checking validity under the lock.
    for (const auto& c : old_p) c->set_build_link(link);
    for (const auto& c : old_k) c->set_build_link(link);
    guard.Arm(link);
    if (fault != nullptr) {
      AUXLSM_RETURN_NOT_OK(
          fault->Hit(failpoints::kConcurrentBuild, ds->env()->io()));
    }

    MergeCursor::Options mo;
    mo.respect_bitmaps = false;  // validity re-checked under the lock
    mo.drop_antimatter = drop_antimatter;
    MergeCursor cursor(old_p, mo);
    AUXLSM_RETURN_NOT_OK(cursor.Init());
    // Read-only: the builder takes per-key shared locks but never touches a
    // memtable, so it must not count toward the no-steal seal deferral — a
    // long decoupled merge would otherwise block every flush cycle for its
    // whole scan.
    auto builder_txn = ds->BeginReadOnly();
    while (cursor.Valid()) {
      {
        ScopedLock sl(ds->locks(), builder_txn->id(), cursor.key(),
                      LockMode::kShared);
        stats->builder_lock_acquisitions++;
        const auto& src = old_p[cursor.source()];
        const bool still_valid =
            src->bitmap() == nullptr ||
            !src->bitmap()->Test(cursor.source_ordinal());
        if (still_valid) {
          AUXLSM_RETURN_NOT_OK(dual.Add(cursor.key(), cursor.value(),
                                        cursor.ts(), cursor.antimatter()));
          link->emitted_keys.push_back(cursor.key().ToString());
          link->emitted_count.store(link->emitted_keys.size(),
                                    std::memory_order_release);
        }
      }
      AUXLSM_RETURN_NOT_OK(cursor.Next());
    }
    AUXLSM_RETURN_NOT_OK(builder_txn->Commit());

    // Drain in-flight writers, install, unlink.
    AUXLSM_RETURN_NOT_OK(with_writers_drained([&]() -> Status {
      const uint64_t emitted =
          link->emitted_count.load(std::memory_order_acquire);
      AUXLSM_RETURN_NOT_OK(InstallPair(ds, old_p, old_k, &dual, id, repaired,
                                       link->overlay, emitted,
                                       &stats->output_entries));
      for (const auto& c : old_p) c->set_build_link(nullptr);
      for (const auto& c : old_k) c->set_build_link(nullptr);
      guard.Disarm();
      return Status::OK();
    }));
  } else {
    // Side-file method, Fig 11a.
    std::vector<std::shared_ptr<Bitmap>> snapshots;
    // Initialization phase: drain ongoing operations, snapshot bitmaps,
    // publish the link.
    with_writers_drained([&]() {
      for (const auto& c : old_p) {
        snapshots.push_back(
            c->bitmap() == nullptr
                ? nullptr
                : std::make_shared<Bitmap>(Bitmap::SnapshotOf(*c->bitmap())));
      }
      for (const auto& c : old_p) c->set_build_link(link);
      for (const auto& c : old_k) c->set_build_link(link);
      guard.Arm(link);
    });
    if (fault != nullptr) {
      AUXLSM_RETURN_NOT_OK(
          fault->Hit(failpoints::kConcurrentBuild, ds->env()->io()));
    }

    // Build phase: scan against the snapshots; no per-key locks.
    MergeCursor::Options mo;
    mo.respect_bitmaps = true;
    mo.bitmap_overrides = snapshots;
    mo.drop_antimatter = drop_antimatter;
    MergeCursor cursor(old_p, mo);
    AUXLSM_RETURN_NOT_OK(cursor.Init());
    while (cursor.Valid()) {
      AUXLSM_RETURN_NOT_OK(dual.Add(cursor.key(), cursor.value(), cursor.ts(),
                                    cursor.antimatter()));
      link->emitted_keys.push_back(cursor.key().ToString());
      link->emitted_count.store(link->emitted_keys.size(),
                                std::memory_order_release);
      AUXLSM_RETURN_NOT_OK(cursor.Next());
    }

    // Catch-up phase: close the side-file under the dataset latch, sort it,
    // apply, install. The side-file mutex stays held across the sort/apply —
    // writers are drained so it is uncontended; holding it just satisfies the
    // guarded-field discipline without a behavior change.
    AUXLSM_RETURN_NOT_OK(with_writers_drained([&]() -> Status {
      size_t emitted = 0;
      {
        MutexLock l(link->mu);
        link->side_file_closed = true;
        // Stable sort keeps the delete/rollback order per key.
        std::stable_sort(link->side_file.begin(), link->side_file.end(),
                         [](const auto& a, const auto& b) {
                           return a.first < b.first;
                         });
        emitted = link->emitted_count.load(std::memory_order_acquire);
        for (const auto& [key, is_rollback] : link->side_file) {
          uint64_t pos = 0;
          if (!FindEmitted(link.get(), emitted, key, &pos)) continue;
          if (is_rollback) {
            link->overlay.Unset(pos);
          } else {
            link->overlay.Set(pos);
            stats->side_file_applied++;
          }
        }
      }
      AUXLSM_RETURN_NOT_OK(InstallPair(ds, old_p, old_k, &dual, id, repaired,
                                       link->overlay, emitted,
                                       &stats->output_entries));
      for (const auto& c : old_p) c->set_build_link(nullptr);
      for (const auto& c : old_k) c->set_build_link(nullptr);
      guard.Disarm();
      return Status::OK();
    }));
  }

  stats->elapsed_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return Status::OK();
}

}  // namespace auxlsm
