// Ingestion paths for the four maintenance strategies (§3.1, §4.2, §5.2).
#include <chrono>
#include <cmath>

#include "core/dataset.h"
#include "core/mutable_bitmap_build.h"
#include "format/key_codec.h"

namespace auxlsm {

namespace {

/// Puts an entry into an index's memory component, registering the inverse
/// operation with the transaction when rollback must be possible.
void PutIndex(LsmTree* tree, const Slice& key, const Slice& value,
              Timestamp ts, bool antimatter, Transaction* undo_txn) {
  if (undo_txn != nullptr) {
    // Undo closures may outlive this operation's latch hold; keep the target
    // memtable alive by shared_ptr so it cannot dangle. The pipeline's seal
    // phase defers while explicit transactions are open (no-steal), so the
    // closures' target is still the live memtable when a rollback runs.
    std::shared_ptr<Memtable> mem = tree->active_memtable();
    OwnedEntry prev;
    const bool had_prev = mem->Get(key, &prev).ok();
    std::string k = key.ToString();
    if (had_prev) {
      MemEntry restore{prev.value, prev.ts, prev.antimatter};
      undo_txn->PushUndo(
          [mem, k, restore]() { mem->Restore(k, restore); });
    } else {
      undo_txn->PushUndo([mem, k, ts]() { mem->EraseIfTs(k, ts); });
    }
  }
  if (antimatter) {
    tree->PutAntimatter(key, ts);
  } else {
    tree->Put(key, value, ts);
  }
}

}  // namespace

Status Dataset::Insert(const TweetRecord& record, bool* inserted) {
  return IngestOp(LogRecordType::kInsert, record, nullptr, inserted, true);
}
Status Dataset::Upsert(const TweetRecord& record) {
  return IngestOp(LogRecordType::kUpsert, record, nullptr, nullptr, true);
}
Status Dataset::Delete(uint64_t id) {
  TweetRecord r;
  r.id = id;
  return IngestOp(LogRecordType::kDelete, r, nullptr, nullptr, true);
}
Status Dataset::InsertTxn(const TweetRecord& record, Transaction* txn,
                          bool* inserted) {
  return IngestOp(LogRecordType::kInsert, record, txn, inserted, true);
}
Status Dataset::UpsertTxn(const TweetRecord& record, Transaction* txn) {
  return IngestOp(LogRecordType::kUpsert, record, txn, nullptr, true);
}
Status Dataset::DeleteTxn(uint64_t id, Transaction* txn) {
  TweetRecord r;
  r.id = id;
  return IngestOp(LogRecordType::kDelete, r, txn, nullptr, true);
}

Status Dataset::InsertIntoAll(const TweetRecord& record, Timestamp ts,
                              Transaction* txn) {
  const std::string pk = record.primary_key();
  PutIndex(primary_.get(), pk, record.Serialize(), ts, false, txn);
  if (pk_index_) PutIndex(pk_index_.get(), pk, Slice(), ts, false, txn);
  for (auto& s : secondaries_) {
    PutIndex(s->tree.get(), ComposeSecondaryKey(s->def.extract(record), pk),
             Slice(), ts, false, txn);
  }
  if (options_.maintain_range_filter) {
    primary_->mem_range_filter()->Expand(record.creation_time);
  }
  return Status::OK();
}

Status Dataset::EagerUpsert(const TweetRecord& record, Timestamp ts,
                            Transaction* txn, bool is_delete) {
  const std::string pk = record.primary_key();
  // Point lookup to fetch the old record (§3.1).
  OwnedEntry old_entry;
  GetOptions gopts;
  gopts.use_blocked_bloom = options_.build_blocked_bloom;
  Status st = primary_->Get(pk, &old_entry, gopts);
  stats_.ingest_point_lookups++;
  const bool old_exists = st.ok();
  if (!old_exists && !st.IsNotFound()) return st;

  TweetRecord old_record;
  if (old_exists) {
    AUXLSM_RETURN_NOT_OK(TweetRecord::Deserialize(old_entry.value, &old_record));
  }
  if (is_delete) {
    if (!old_exists) return Status::OK();  // deleting a missing key: ignore
    PutIndex(primary_.get(), pk, Slice(), ts, true, txn);
    if (pk_index_) PutIndex(pk_index_.get(), pk, Slice(), ts, true, txn);
    for (auto& s : secondaries_) {
      PutIndex(s->tree.get(),
               ComposeSecondaryKey(s->def.extract(old_record), pk), Slice(),
               ts, true, txn);
    }
    // Filters must reflect the deleted record, or scans could prune the
    // memory component and resurrect it (§3.1).
    if (options_.maintain_range_filter) {
      primary_->mem_range_filter()->Expand(old_record.creation_time);
    }
    return Status::OK();
  }

  // Upsert: anti-matter for the old secondary entries, then insert anew.
  if (old_exists) {
    for (auto& s : secondaries_) {
      const std::string old_sk = s->def.extract(old_record);
      const std::string new_sk = s->def.extract(record);
      if (old_sk != new_sk) {  // unchanged keys skip maintenance (§3.1)
        PutIndex(s->tree.get(), ComposeSecondaryKey(old_sk, pk), Slice(), ts,
                 true, txn);
      }
    }
    if (options_.maintain_range_filter) {
      primary_->mem_range_filter()->Expand(old_record.creation_time);
    }
  }
  PutIndex(primary_.get(), pk, record.Serialize(), ts, false, txn);
  if (pk_index_) PutIndex(pk_index_.get(), pk, Slice(), ts, false, txn);
  for (auto& s : secondaries_) {
    PutIndex(s->tree.get(), ComposeSecondaryKey(s->def.extract(record), pk),
             Slice(), ts, false, txn);
  }
  if (options_.maintain_range_filter) {
    primary_->mem_range_filter()->Expand(record.creation_time);
  }
  return Status::OK();
}

Status Dataset::ValidationUpsert(const TweetRecord& record, Timestamp ts,
                                 Transaction* txn, bool is_delete) {
  const std::string pk = record.primary_key();
  // Memory-component optimization (§4.2): the memory components must be
  // searched to place the new entry anyway, so an old record found there
  // (active or sealed) cleans the secondary indexes for free.
  OwnedEntry mem_old;
  const bool mem_hit = primary_->GetFromMem(pk, &mem_old).ok() &&
                       !mem_old.antimatter;
  TweetRecord old_record;
  if (mem_hit) {
    AUXLSM_RETURN_NOT_OK(TweetRecord::Deserialize(mem_old.value, &old_record));
  }

  if (is_delete) {
    PutIndex(primary_.get(), pk, Slice(), ts, true, txn);
    if (pk_index_) PutIndex(pk_index_.get(), pk, Slice(), ts, true, txn);
    if (mem_hit) {
      for (auto& s : secondaries_) {
        PutIndex(s->tree.get(),
                 ComposeSecondaryKey(s->def.extract(old_record), pk), Slice(),
                 ts, true, txn);
      }
    }
    return Status::OK();
  }

  if (mem_hit) {
    for (auto& s : secondaries_) {
      const std::string old_sk = s->def.extract(old_record);
      if (old_sk != s->def.extract(record)) {
        PutIndex(s->tree.get(), ComposeSecondaryKey(old_sk, pk), Slice(), ts,
                 true, txn);
      }
    }
  }
  PutIndex(primary_.get(), pk, record.Serialize(), ts, false, txn);
  if (pk_index_) PutIndex(pk_index_.get(), pk, Slice(), ts, false, txn);
  for (auto& s : secondaries_) {
    PutIndex(s->tree.get(), ComposeSecondaryKey(s->def.extract(record), pk),
             Slice(), ts, false, txn);
  }
  // Filters are maintained on the new record only (§4.2); queries over older
  // components compensate by also reading newer components.
  if (options_.maintain_range_filter) {
    primary_->mem_range_filter()->Expand(record.creation_time);
  }
  return Status::OK();
}

Status Dataset::DeletedKeyUpsert(const TweetRecord& record, Timestamp ts,
                                 Transaction* txn, bool is_delete) {
  // Blind maintenance as under Validation, but each secondary index records
  // the (re)written primary key in its companion deleted-key tree so queries
  // and merges can invalidate older entries (§4.1).
  const std::string pk = record.primary_key();
  AUXLSM_RETURN_NOT_OK(ValidationUpsert(record, ts, txn, is_delete));
  for (auto& s : secondaries_) {
    PutIndex(s->deleted_keys.get(), pk, Slice(), ts, false, txn);
  }
  return Status::OK();
}

Status Dataset::MutableBitmapUpsert(const TweetRecord& record, Timestamp ts,
                                    Transaction* txn, bool is_delete,
                                    bool* update_bit) {
  *update_bit = false;
  const std::string pk = record.primary_key();
  LsmTree* finder = pk_index_ ? pk_index_.get() : primary_.get();

  // Search the primary key index — never the full records (§5.2).
  LookupResult res;
  GetOptions gopts;
  gopts.use_blocked_bloom = options_.build_blocked_bloom;
  gopts.respect_bitmaps = true;
  AUXLSM_RETURN_NOT_OK(finder->GetRaw(pk, &res, gopts));
  stats_.ingest_point_lookups++;

  const bool old_in_disk = res.found && !res.entry.antimatter &&
                           !res.from_memtable && res.component != nullptr;
  const bool old_in_mem = res.found && !res.entry.antimatter &&
                          res.from_memtable;
  if (is_delete && !res.found) return Status::OK();
  if (is_delete && res.entry.antimatter) return Status::OK();

  // Old version live in a *sealed* memtable: this write supersedes an entry
  // that is being flushed right now and will surface as valid in the new
  // component. Record it so the install-time bitmap fixup marks exactly
  // these entries (O(recorded deletes) instead of scanning the whole active
  // memtable under the exclusive latch). An old version in the *active*
  // memtable needs nothing — both versions flush together and reconcile —
  // and one on disk had its bit flipped directly below.
  if (old_in_mem && res.from_sealed) {
    RecordBitmapFixup(pk, ts);
    if (txn != nullptr) {
      // An abort must retract the recorded supersession, or the install-time
      // fixup would mark the (still live) old version deleted.
      txn->PushUndo([this, pk, ts]() {
        MutexLock l(fixup_mu_);
        auto& v = pending_bitmap_fixups_;
        for (auto it = v.begin(); it != v.end(); ++it) {
          if (it->first == pk && it->second == ts) {
            v.erase(it);
            break;
          }
        }
      });
    }
  }

  if (old_in_disk && res.component->bitmap() != nullptr) {
    // Mark the old version deleted directly in the disk component.
    const uint64_t ordinal = res.ordinal;
    auto bitmap = res.component->bitmap();
    const bool was_set = bitmap->Set(ordinal);
    if (!was_set) {
      *update_bit = true;
      if (txn != nullptr) {
        // Aborts flip the bit back from 1 to 0 (§5.2 footnote).
        txn->PushUndo([bitmap, ordinal]() { bitmap->Unset(ordinal); });
      }
      // If a concurrent flush/merge is building a new component from this
      // one, propagate the delete (§5.3).
      auto link = res.component->build_link();
      if (link != nullptr) {
        ApplyDeleteToBuild(link.get(), pk, txn);
      }
    }
  }

  // The memory-component optimization applies as under Validation.
  OwnedEntry mem_old;
  TweetRecord old_record;
  const bool mem_hit = old_in_mem &&
                       primary_->GetFromMem(pk, &mem_old).ok() &&
                       !mem_old.antimatter &&
                       TweetRecord::Deserialize(mem_old.value, &old_record).ok();

  if (is_delete) {
    // Anti-matter keeps LSM semantics intact and lets Validation-maintained
    // secondaries validate against recently ingested keys (§5.2).
    PutIndex(primary_.get(), pk, Slice(), ts, true, txn);
    if (pk_index_) PutIndex(pk_index_.get(), pk, Slice(), ts, true, txn);
    if (mem_hit) {
      for (auto& s : secondaries_) {
        PutIndex(s->tree.get(),
                 ComposeSecondaryKey(s->def.extract(old_record), pk), Slice(),
                 ts, true, txn);
      }
    }
    return Status::OK();
  }

  if (mem_hit) {
    for (auto& s : secondaries_) {
      const std::string old_sk = s->def.extract(old_record);
      if (old_sk != s->def.extract(record)) {
        PutIndex(s->tree.get(), ComposeSecondaryKey(old_sk, pk), Slice(), ts,
                 true, txn);
      }
    }
  }
  PutIndex(primary_.get(), pk, record.Serialize(), ts, false, txn);
  if (pk_index_) PutIndex(pk_index_.get(), pk, Slice(), ts, false, txn);
  for (auto& s : secondaries_) {
    PutIndex(s->tree.get(), ComposeSecondaryKey(s->def.extract(record), pk),
             Slice(), ts, false, txn);
  }
  // Filters are maintained on the new record only — the bitmap already
  // reflects the old record's deletion, so no widening is needed (§5.2).
  if (options_.maintain_range_filter) {
    primary_->mem_range_filter()->Expand(record.creation_time);
  }
  return Status::OK();
}

Status Dataset::IngestOp(LogRecordType op, const TweetRecord& record,
                         Transaction* txn, bool* inserted, bool log_to_wal) {
  // Degraded read-only mode: maintenance exhausted its retry budget (or hit
  // a permanent error), so ingest fails fast with the sticky cause while
  // reads keep serving the installed components. TakeBackgroundError()
  // re-arms the pipeline.
  if (degraded_.load(std::memory_order_acquire)) return DegradedError();

  // Observability: per-op latency histograms (modeled = storage + log device
  // work this op charged; wall = host time) and an optional trace span. Both
  // reduce to null-pointer branches when unarmed; neither charges modeled
  // time itself.
  obs::TraceSpan op_span(tracer_.get(), "ingest.op", "ingest");
  struct OpLatencyGuard {
    Dataset* ds = nullptr;
    double modeled0 = 0;
    std::chrono::steady_clock::time_point wall0;
    explicit OpLatencyGuard(Dataset* d) {
      if (d->hist_ingest_modeled_ == nullptr) return;
      ds = d;
      modeled0 =
          d->env_->stats().simulated_us + d->wal_.stats().simulated_us;
      wall0 = std::chrono::steady_clock::now();
    }
    ~OpLatencyGuard() {
      if (ds == nullptr) return;
      const double modeled1 =
          ds->env_->stats().simulated_us + ds->wal_.stats().simulated_us;
      ds->hist_ingest_modeled_->Record(
          uint64_t(std::llround((modeled1 - modeled0) * 1000.0)));
      ds->hist_ingest_wall_->Record(uint64_t(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - wall0)
              .count()));
    }
  } op_latency(this);

  ReadLatchGuard ingest_lock(ingest_mu_);

  std::unique_ptr<Transaction> auto_txn;
  const bool owns_txn = txn == nullptr;
  if (owns_txn) {
    auto_txn = txns_.Begin();
    txn = auto_txn.get();
  }
  // Record-level X lock on the primary key for the transaction's duration.
  const std::string pk = record.primary_key();
  txn->Lock(pk, LockMode::kExclusive);
  // Auto-commit transactions never roll back; skip undo bookkeeping — unless
  // a fault injector is armed: an injected WAL drop must be able to undo the
  // op's memtable effects, or unlogged state would survive to the next flush.
  Transaction* undo_txn =
      owns_txn && options_.fault_injector == nullptr ? nullptr : txn;

  const Timestamp ts = clock_.Tick();
  bool update_bit = false;

  // Tuple-cache rollback handling. An abort restores old values whose cache
  // positions — the record's *old* secondary keys — are unknown here in
  // general (lazy strategies never read the old record), and a proven-empty
  // claim a concurrent reader cached over such a position between the
  // forward write and the rollback would survive any pk-precise re-cut. So
  // rollback degrades to dropping the whole cache, with the undo closures'
  // memtable restores inside the same write fence as the forward path
  // (Transaction::Rollback holds the fence across the undos and the Clear).
  // Installing per op is idempotent.
  if (tuple_cache_ && undo_txn != nullptr) {
    undo_txn->SetRollbackCache(tuple_cache_.get());
  }

  // Write fence: in flight from before the first memtable effect until
  // after the cut below. The effect can be visible to a reader before the
  // cut runs; the fence keeps that reader's (pre-effect) snapshot out of
  // the cache even though its captured epoch is still current.
  TupleCacheWriteFence cache_fence(tuple_cache_.get());

  if (op == LogRecordType::kInsert) {
    // Key-uniqueness check through the primary key index when available
    // (§3.1's optimization), else the primary index.
    LsmTree* checker = pk_index_ ? pk_index_.get() : primary_.get();
    OwnedEntry existing;
    GetOptions gopts;
    gopts.use_blocked_bloom = options_.build_blocked_bloom;
    Status st = checker->Get(pk, &existing, gopts);
    stats_.ingest_point_lookups++;
    if (st.ok()) {
      stats_.duplicates_ignored++;
      if (inserted != nullptr) *inserted = false;
      if (owns_txn) return txn->Commit();
      return Status::OK();
    }
    if (!st.IsNotFound()) return st;
    AUXLSM_RETURN_NOT_OK(InsertIntoAll(record, ts, undo_txn));
    if (inserted != nullptr) *inserted = true;
    stats_.inserts++;
  } else {
    const bool is_delete = op == LogRecordType::kDelete;
    switch (options_.strategy) {
      case MaintenanceStrategy::kEager:
        AUXLSM_RETURN_NOT_OK(EagerUpsert(record, ts, undo_txn, is_delete));
        break;
      case MaintenanceStrategy::kValidation:
        AUXLSM_RETURN_NOT_OK(ValidationUpsert(record, ts, undo_txn, is_delete));
        break;
      case MaintenanceStrategy::kMutableBitmap:
        AUXLSM_RETURN_NOT_OK(
            MutableBitmapUpsert(record, ts, undo_txn, is_delete, &update_bit));
        break;
      case MaintenanceStrategy::kDeletedKeyBtree:
        AUXLSM_RETURN_NOT_OK(DeletedKeyUpsert(record, ts, undo_txn, is_delete));
        break;
    }
    if (is_delete) {
      stats_.deletes++;
    } else {
      stats_.upserts++;
    }
  }

  // The write's memtable effects are visible; invalidate under the shared
  // ingest latch so the cut cannot be reordered past a seal.
  InvalidateTupleCache(record, op);

  if (log_to_wal && options_.enable_wal) {
    LogRecord r;
    r.type = op;
    r.key = pk;
    if (op != LogRecordType::kDelete) r.value = record.Serialize();
    r.ts = ts;
    r.update_bit = update_bit;
    if (txn->Log(std::move(r)) == kInvalidLsn) {
      // The WAL dropped the operation record (fault injection / crash): the
      // op can never be durable. Abort the transaction — its undo closures
      // remove the memtable effects — and surface the injector's parked
      // error. A transaction with a hole in its log must not commit: its
      // other records would replay while this op silently vanished.
      txn->Abort();
      Status parked;
      if (options_.fault_injector != nullptr) {
        parked = options_.fault_injector->TakePending();
      }
      return parked.ok() ? Status::IOError("wal dropped the log record")
                         : parked;
    }
  }
  if (owns_txn) {
    const Status cs = txn->Commit();
    if (!cs.ok()) {
      // Prefer the injector's parked Status: it names the failpoint site.
      if (options_.fault_injector != nullptr) {
        const Status parked = options_.fault_injector->TakePending();
        if (!parked.ok()) return parked;
      }
      return cs;
    }
  }

  ingest_lock.Release();
  return CheckBudgetAndMaintain(/*in_explicit_txn=*/!owns_txn);
}

Status Dataset::CheckBudgetAndMaintain(bool in_explicit_txn) {
  // Writer-group pipeline: hand flush + merge to the background cycle
  // instead of running them inline on the ingesting thread.
  if (multi_writer()) return MaintainAsync(in_explicit_txn);
  if (MemComponentBytes() < options_.mem_budget_bytes) return Status::OK();
  WriteLatchGuard l(ingest_mu_);
  if (MemComponentBytes() < options_.mem_budget_bytes) return Status::OK();
  // Serial-path no-steal: an inline budget-triggered flush between an open
  // explicit transaction's operations would write its uncommitted entries to
  // disk, out of reach of the rollback closures. Defer exactly as the
  // pipeline's seal phase does (the transaction's next operation — or the
  // first op after it closes — re-triggers the flush). Gated on
  // strict_no_steal: the default keeps the seed behavior bit-for-bit.
  if (options_.strict_no_steal && txns_.active_transactions() > 0) {
    return Status::OK();
  }
  // Serial inline cycle: same span structure as MaintenanceCycle so serial
  // traces show the same seal -> flush_build -> install -> merge shape.
  obs::TraceSpan cycle_span(tracer_.get(), "maintenance.cycle", "maintenance");
  const auto cycle_wall0 = std::chrono::steady_clock::now();
  Status s = FlushAllLocked();
  if (s.ok()) {
    obs::TraceSpan merge_span(tracer_.get(), "merge", "maintenance");
    s = RunMerges();
  }
  if (hist_cycle_wall_ != nullptr) {
    hist_cycle_wall_->Record(uint64_t(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - cycle_wall0)
            .count()));
  }
  if (!s.ok()) {
    // Serial inline maintenance failed past its retry budget. The op that
    // tripped the budget check already committed (its WAL records are
    // durable), so failing *it* would misreport a committed op. Degrade to
    // read-only with the cause sticky instead: the NEXT ingest fails fast —
    // before any effect — until TakeBackgroundError() re-arms the pipeline.
    MarkDegraded(s);
  }
  return Status::OK();
}

Status Dataset::ReplayOp(const LogRecord& r, const TweetRecord& record) {
  // Replay runs single-threaded before the dataset is opened for traffic,
  // but the strategy helpers require the shared ingest latch — acquiring it
  // here (uncontended, a few atomics) keeps their contract uniform instead
  // of punching a recovery-only hole through the annotations.
  ReadLatchGuard replay_latch(ingest_mu_);
  clock_.AdvanceTo(r.ts);
  bool update_bit = false;
  Status st;
  if (r.type == LogRecordType::kInsert) {
    // Inserts passed their uniqueness check originally; redo blindly.
    st = InsertIntoAll(record, r.ts, nullptr);
  } else {
    const bool is_delete = r.type == LogRecordType::kDelete;
    switch (options_.strategy) {
      case MaintenanceStrategy::kEager:
        st = EagerUpsert(record, r.ts, nullptr, is_delete);
        break;
      case MaintenanceStrategy::kValidation:
        st = ValidationUpsert(record, r.ts, nullptr, is_delete);
        break;
      case MaintenanceStrategy::kMutableBitmap:
        st = MutableBitmapUpsert(record, r.ts, nullptr, is_delete,
                                 &update_bit);
        break;
      case MaintenanceStrategy::kDeletedKeyBtree:
        st = DeletedKeyUpsert(record, r.ts, nullptr, is_delete);
        break;
    }
  }
  // Defensive: recovery normally precedes reads, but a cache created before
  // replay must not serve pre-replay outcomes.
  if (st.ok()) InvalidateTupleCache(record, r.type);
  return st;
}

Status Dataset::ReplayBitmap(const LogRecord& r) {
  // The record's data already lives in disk components; re-mark the version
  // older than r.ts as deleted (its bitmap change may have been lost in the
  // crash — bitmaps are no-steal/no-force with checkpoints, §5.2).
  LsmTree* finder = pk_index_ ? pk_index_.get() : primary_.get();
  for (const auto& c : finder->Components()) {
    LeafEntry entry;
    std::string backing;
    uint64_t ordinal = 0;
    Status st = c->tree().GetWithOrdinal(r.key, &entry, &backing, &ordinal);
    if (st.IsNotFound()) continue;
    AUXLSM_RETURN_NOT_OK(st);
    if (entry.ts >= r.ts || entry.antimatter) continue;  // not the old version
    if (c->bitmap() == nullptr) {
      // The log says this component's version was superseded (update bit),
      // but the recovered component cannot record it — returning OK here
      // would silently resurrect the old version. Under the Mutable-bitmap
      // strategy every primary/pk component carries a bitmap, so a missing
      // one means the checkpointed catalog and the log disagree.
      return Status::Corruption(
          "bitmap redo for '" + r.key + "' targets component without bitmap");
    }
    c->bitmap()->Set(ordinal);
    if (tuple_cache_) tuple_cache_->InvalidatePk(r.key);
    return Status::OK();
  }
  return Status::OK();
}

void Dataset::InvalidateTupleCache(const TweetRecord& record,
                                   LogRecordType op) {
  // Every caller must hold the ingest latch at least shared: invalidation
  // racing a stop-the-world install could otherwise cut the cache before the
  // install publishes, leaving a stale tuple behind.
  ingest_mu_.AssertHeldShared();
  if (!tuple_cache_) return;
  // The pk cut also fences every range space (epoch bump) and drops any
  // cached tuple for this pk wherever its *old* secondary keys placed it.
  tuple_cache_->InvalidatePk(record.primary_key());
  if (op == LogRecordType::kDelete) return;  // old positions covered above
  // The record's *new* secondary keys gain a result; cut those positions.
  for (size_t i = 0; i < secondaries_.size(); i++) {
    const auto& def = secondaries_[i]->def;
    if (def.sk_width != sizeof(uint64_t)) continue;
    tuple_cache_->InvalidateKey(TupleCacheSpaceOf(i),
                                DecodeU64(def.extract(record)));
  }
}

}  // namespace auxlsm
