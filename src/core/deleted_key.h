// Merge-time cleanup for the deleted-key B+-tree strategy (§4.1): when a
// secondary index's components merge, each surviving entry is validated
// against the index's own deleted-key trees. The deleted-key trees are
// duplicated per secondary index (unlike the single primary key index of
// §4.4), which is exactly the overhead Fig 15b measures.
#pragma once

#include "core/dataset.h"

namespace auxlsm {

Status RunDeletedKeyMerge(Dataset* dataset, SecondaryIndex* index,
                          const MergeRange& range);

/// Identity-based form: merges the captured secondary-index components and,
/// in lock step, the captured companion deleted-key components (empty =
/// companion not merged). Decoupled merge-queue jobs use this — a flush
/// install racing the merge shifts positional ranges but not identities;
/// ReplaceComponents fails safe if the picks are no longer current.
Status RunDeletedKeyMergePicked(Dataset* dataset, SecondaryIndex* index,
                                const std::vector<DiskComponentPtr>& picked,
                                const std::vector<DiskComponentPtr>& dk_picked);

}  // namespace auxlsm
