#include "core/deleted_key.h"

#include "format/key_codec.h"

namespace auxlsm {

Status RunDeletedKeyMerge(Dataset* ds, SecondaryIndex* index,
                          const MergeRange& range) {
  auto comps = index->tree->Components();
  if (range.end > comps.size() || range.empty()) {
    return Status::InvalidArgument("bad merge range");
  }
  std::vector<DiskComponentPtr> picked(comps.begin() + range.begin,
                                       comps.begin() + range.end);
  std::vector<DiskComponentPtr> dk_picked;
  auto dk = index->deleted_keys->Components();
  if (dk.size() >= range.end) {
    dk_picked.assign(dk.begin() + range.begin, dk.begin() + range.end);
  }
  return RunDeletedKeyMergePicked(ds, index, picked, dk_picked);
}

Status RunDeletedKeyMergePicked(
    Dataset* ds, SecondaryIndex* index,
    const std::vector<DiskComponentPtr>& picked,
    const std::vector<DiskComponentPtr>& dk_picked) {
  LsmTree* tree = index->tree.get();
  if (picked.empty()) return Status::InvalidArgument("bad merge range");
  // Stable under concurrent flush installs: prepends never change the back.
  const bool includes_oldest = tree->IsOldestComponent(picked.back());

  MergeCursor::Options mo;
  mo.respect_bitmaps = true;
  mo.drop_antimatter = includes_oldest;
  MergeCursor cursor(picked, mo);
  AUXLSM_RETURN_NOT_OK(cursor.Init());

  // Per-entry point lookups against the deleted-key trees: an entry is
  // obsolete if its primary key was re-written with a newer timestamp.
  GetOptions gopts;
  gopts.use_blocked_bloom = ds->options().build_blocked_bloom;
  Status iter_status;
  auto next = [&](OwnedEntry* e) {
    while (cursor.Valid()) {
      const bool antimatter = cursor.antimatter();
      bool obsolete = false;
      if (!antimatter) {
        Slice pk;
        SplitSecondaryKey(cursor.key(), index->def.sk_width, nullptr, &pk);
        LookupResult res;
        iter_status = index->deleted_keys->GetRaw(pk, &res, gopts);
        if (!iter_status.ok()) return false;
        obsolete = res.found && res.entry.ts > cursor.ts();
      }
      if (obsolete) {
        iter_status = cursor.Next();
        if (!iter_status.ok()) return false;
        continue;
      }
      e->key = cursor.key().ToString();
      e->value = cursor.value().ToString();
      e->ts = cursor.ts();
      e->antimatter = antimatter;
      iter_status = cursor.Next();
      return iter_status.ok();
    }
    return false;
  };

  const ComponentId id{picked.back()->id().min_ts, picked.front()->id().max_ts};
  AUXLSM_ASSIGN_OR_RETURN(DiskComponentPtr merged,
                          tree->BuildComponent(id, next));
  AUXLSM_RETURN_NOT_OK(iter_status);
  AUXLSM_RETURN_NOT_OK(tree->ReplaceComponents(picked, merged));

  // The companion deleted-key tree merges in lock step.
  if (!dk_picked.empty()) {
    AUXLSM_RETURN_NOT_OK(index->deleted_keys->MergeComponents(dk_picked));
  }
  return Status::OK();
}

}  // namespace auxlsm
