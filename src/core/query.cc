// Secondary-index query processing: secondary search -> sort(-distinct) ->
// validation (§4.3) -> primary point lookups (§3.2).
#include <algorithm>
#include <unordered_map>

#include "core/dataset.h"
#include "core/point_lookup.h"
#include "format/key_codec.h"

namespace auxlsm {

namespace {

/// Scans one secondary index for composed keys in [lo_sk, hi_sk] (whole
/// secondary-key range), reconciling across components and the memtable;
/// anti-matter and bitmap-invalidated entries suppress older duplicates.
Status SecondaryRangeScan(const SecondaryIndex& index, const Slice& lo_sk,
                          const Slice& hi_sk, uint32_t readahead,
                          std::vector<SecondaryMatch>* out) {
  std::string lo = lo_sk.ToString() + std::string(8, '\0');
  std::string hi = hi_sk.ToString() + std::string(8, '\xff');

  // Memtable before components: a concurrent flush moves entries memtable ->
  // new component, so the reverse order could observe neither copy. The
  // duplicate-key resolution below picks the larger timestamp, which also
  // covers a write landing between the two snapshots.
  const auto mem = index.tree->MemSnapshotRange(lo, hi);
  const Timestamp mem_min_ts = index.tree->MemMinTs();

  auto comps = index.tree->Components();
  MergeCursor::Options mo;
  mo.readahead_pages = readahead;
  mo.respect_bitmaps = true;  // repair bitmaps hide cleaned entries
  mo.lower_bound = lo;
  mo.upper_bound = hi;
  MergeCursor cursor(comps, mo);
  AUXLSM_RETURN_NOT_OK(cursor.Init());

  auto emit_mem = [&](const OwnedEntry& e) {
    if (e.antimatter) return;
    Slice pk;
    SplitSecondaryKey(e.key, index.def.sk_width, nullptr, &pk);
    out->push_back(SecondaryMatch{pk.ToString(), e.ts, mem_min_ts});
  };
  auto emit_disk = [&](const MergeCursor& c, Timestamp comp_min_ts) {
    if (c.antimatter()) return;
    Slice pk;
    SplitSecondaryKey(c.key(), index.def.sk_width, nullptr, &pk);
    out->push_back(SecondaryMatch{pk.ToString(), c.ts(), comp_min_ts});
  };

  size_t mi = 0;
  while (cursor.Valid() || mi < mem.size()) {
    int cmp;
    if (!cursor.Valid()) {
      cmp = -1;
    } else if (mi >= mem.size()) {
      cmp = 1;
    } else {
      cmp = Slice(mem[mi].key).compare(cursor.key());
    }
    if (cmp < 0) {
      emit_mem(mem[mi]);
      mi++;
    } else if (cmp > 0) {
      emit_disk(cursor, comps.empty() ? 0 : comps[cursor.source()]->id().min_ts);
      AUXLSM_RETURN_NOT_OK(cursor.Next());
    } else {
      // Duplicate key: the newer write wins (equal timestamps mean the same
      // entry observed in both snapshots around a flush).
      if (mem[mi].ts >= cursor.ts()) {
        emit_mem(mem[mi]);
      } else {
        emit_disk(cursor,
                  comps.empty() ? 0 : comps[cursor.source()]->id().min_ts);
      }
      mi++;
      AUXLSM_RETURN_NOT_OK(cursor.Next());
    }
  }
  return Status::OK();
}

/// Sorts candidates by pk; duplicates collapse to the entry with the largest
/// timestamp (Fig 5's sort-distinct).
void SortDistinct(std::vector<SecondaryMatch>* matches) {
  std::sort(matches->begin(), matches->end(),
            [](const SecondaryMatch& a, const SecondaryMatch& b) {
              if (a.pk != b.pk) return a.pk < b.pk;
              return a.ts > b.ts;
            });
  matches->erase(std::unique(matches->begin(), matches->end(),
                             [](const SecondaryMatch& a,
                                const SecondaryMatch& b) {
                               return a.pk == b.pk;
                             }),
                 matches->end());
}

PointLookupOptions MakeLookupOptions(const SecondaryQueryOptions& q) {
  PointLookupOptions o;
  o.batched = q.lookup == SecondaryQueryOptions::LookupAlgo::kBatched;
  o.batch_memory_bytes = q.batch_memory_bytes;
  o.stateful_btree_lookup = q.stateful_btree_lookup;
  o.use_blocked_bloom = q.use_blocked_bloom;
  return o;
}

}  // namespace

Status Dataset::QueryUserRange(uint64_t lo_user, uint64_t hi_user,
                               const SecondaryQueryOptions& opts,
                               QueryResult* out) {
  if (secondaries_.empty()) {
    return Status::InvalidArgument("no secondary index");
  }
  SecondaryIndex& index = *secondaries_[0];

  // 1. Secondary index search.
  std::vector<SecondaryMatch> matches;
  AUXLSM_RETURN_NOT_OK(SecondaryRangeScan(index, EncodeU64(lo_user),
                                          EncodeU64(hi_user),
                                          options_.scan_readahead_pages,
                                          &matches));
  out->candidates = matches.size();

  // 2. Sort (and dedup by pk, keeping the newest entry).
  SortDistinct(&matches);

  // 3. Pick the validation method. The Eager strategy keeps secondaries
  // up-to-date so no validation is needed; lazy strategies default to
  // timestamp validation (deleted-key validates against its own trees).
  auto validation = opts.validation;
  if (validation == SecondaryQueryOptions::Validation::kAuto) {
    validation = options_.strategy == MaintenanceStrategy::kEager
                     ? SecondaryQueryOptions::Validation::kNone
                     : SecondaryQueryOptions::Validation::kTimestamp;
  }

  std::vector<FetchRequest> requests;
  requests.reserve(matches.size());
  auto to_request = [&](const SecondaryMatch& m) {
    FetchRequest r;
    r.pk = m.pk;
    if (opts.propagate_component_id) r.prune_min_ts = m.component_min_ts;
    return r;
  };

  if (validation == SecondaryQueryOptions::Validation::kTimestamp) {
    // Fig 5b: validate (pk, ts) pairs against the primary key index — a key
    // is invalid if the index holds the same key with a larger timestamp.
    if (options_.strategy == MaintenanceStrategy::kDeletedKeyBtree) {
      // AsterixDB baseline: validate against each component's deleted-key
      // B+-tree instead of a primary key index (§4.1).
      std::vector<FetchRequest> vreq;
      for (const auto& m : matches) vreq.push_back(FetchRequest{m.pk, 0});
      PointLookupOptions vopts = MakeLookupOptions(opts);
      vopts.raw = true;
      std::vector<FetchedEntry> newest;
      AUXLSM_RETURN_NOT_OK(
          BulkPointLookup(*index.deleted_keys, vreq, vopts, &newest));
      std::unordered_map<std::string, Timestamp> newest_ts;
      for (const auto& e : newest) newest_ts[e.pk] = e.ts;
      for (const auto& m : matches) {
        auto it = newest_ts.find(m.pk);
        if (it != newest_ts.end() && it->second > m.ts) {
          out->validated_out++;
          continue;
        }
        requests.push_back(to_request(m));
      }
    } else {
      LsmTree* finder = pk_index_ ? pk_index_.get() : primary_.get();
      std::vector<FetchRequest> vreq;
      for (const auto& m : matches) vreq.push_back(FetchRequest{m.pk, 0});
      PointLookupOptions vopts = MakeLookupOptions(opts);
      vopts.raw = true;
      std::vector<FetchedEntry> newest;
      AUXLSM_RETURN_NOT_OK(BulkPointLookup(*finder, vreq, vopts, &newest));
      std::unordered_map<std::string, Timestamp> newest_ts;
      std::unordered_map<std::string, bool> newest_alive;
      for (const auto& e : newest) {
        newest_ts[e.pk] = e.ts;
        newest_alive[e.pk] = e.alive;
      }
      for (const auto& m : matches) {
        auto it = newest_ts.find(m.pk);
        const bool invalid =
            it != newest_ts.end() &&
            (it->second > m.ts || !newest_alive[m.pk]);
        if (invalid) {
          out->validated_out++;
          continue;
        }
        requests.push_back(to_request(m));
      }
    }
    if (opts.index_only) {
      for (const auto& r : requests) out->keys.push_back(r.pk);
      return Status::OK();
    }
  } else {
    for (const auto& m : matches) requests.push_back(to_request(m));
    if (opts.index_only &&
        validation == SecondaryQueryOptions::Validation::kNone) {
      for (const auto& r : requests) out->keys.push_back(r.pk);
      return Status::OK();
    }
  }

  // 4. Fetch records from the primary index.
  std::vector<FetchedEntry> fetched;
  AUXLSM_RETURN_NOT_OK(BulkPointLookup(*primary_, requests,
                                       MakeLookupOptions(opts), &fetched));

  // 5. Direct validation re-checks the search condition on the records
  // (Fig 5a); dead keys simply fetch nothing.
  const bool recheck =
      validation == SecondaryQueryOptions::Validation::kDirect;
  uint64_t missing = requests.size() - fetched.size();
  out->validated_out += missing;
  for (auto& e : fetched) {
    TweetRecord rec;
    AUXLSM_RETURN_NOT_OK(TweetRecord::Deserialize(e.value, &rec));
    if (recheck && (rec.user_id < lo_user || rec.user_id > hi_user)) {
      out->validated_out++;
      continue;
    }
    if (opts.index_only) {
      out->keys.push_back(e.pk);
    } else {
      out->records.push_back(std::move(rec));
    }
  }

  // 6. Optionally restore primary-key order destroyed by batching (Fig 12d).
  if (opts.sort_results_by_pk && !opts.index_only) {
    std::sort(out->records.begin(), out->records.end(),
              [](const TweetRecord& a, const TweetRecord& b) {
                return a.id < b.id;
              });
  }
  return Status::OK();
}

}  // namespace auxlsm
