// Secondary-index query processing: streaming secondary search ->
// sort(-distinct) -> validation (§4.3) -> primary point lookups (§3.2),
// organized as a pull-based executor behind QueryCursor.
//
// The candidate pipeline runs in *chunks*. An unlimited query processes one
// chunk covering the whole candidate stream — operator order, batching
// boundaries, and therefore result order and counters are exactly the
// pre-cursor implementation's. A Limit(k) query pulls small chunks and stops
// as soon as k rows are out, so the secondary scan, the validation lookups,
// and the record fetches all terminate early.
#include <algorithm>
#include <map>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "cache/tuple_cache.h"
#include "core/dataset.h"
#include "core/point_lookup.h"
#include "format/key_codec.h"

namespace auxlsm {

namespace {

/// Streaming reconciled scan of one secondary index over composed keys in
/// [lo_sk, hi_sk] (whole secondary-key range): memtable snapshot merged with
/// a disk MergeCursor, anti-matter and bitmap-invalidated entries suppressing
/// older duplicates. The memtable snapshot is materialized and the component
/// list pinned at Open, so the match stream is stable under concurrent
/// flushes and merges.
class SecondaryScanStream {
 public:
  Status Open(const SecondaryIndex& index, const Slice& lo_sk,
              const Slice& hi_sk, uint32_t readahead) {
    sk_width_ = index.def.sk_width;
    lo_ = lo_sk.ToString() + std::string(8, '\0');
    hi_ = hi_sk.ToString() + std::string(8, '\xff');

    // Memtable before components: a concurrent flush moves entries memtable
    // -> new component, so the reverse order could observe neither copy. The
    // duplicate-key resolution below picks the larger timestamp, which also
    // covers a write landing between the two snapshots.
    mem_ = index.tree->MemSnapshotRange(lo_, hi_);
    mem_min_ts_ = index.tree->MemMinTs();

    comps_ = index.tree->Components();
    MergeCursor::Options mo;
    mo.readahead_pages = readahead;
    mo.respect_bitmaps = true;  // repair bitmaps hide cleaned entries
    mo.lower_bound = lo_;
    mo.upper_bound = hi_;
    cursor_ = std::make_unique<MergeCursor>(comps_, mo);
    mi_ = 0;  // support re-Open (cache prefix discarded after a raced write)
    return cursor_->Init();
  }

  /// Pulls the next live match; sets *valid = false at stream end.
  Status Next(SecondaryMatch* out, bool* valid) {
    while (cursor_->Valid() || mi_ < mem_.size()) {
      int cmp;
      if (!cursor_->Valid()) {
        cmp = -1;
      } else if (mi_ >= mem_.size()) {
        cmp = 1;
      } else {
        cmp = Slice(mem_[mi_].key).compare(cursor_->key());
      }
      bool emitted = false;
      if (cmp < 0) {
        emitted = EmitMem(mem_[mi_], out);
        mi_++;
      } else if (cmp > 0) {
        emitted = EmitDisk(out);
        AUXLSM_RETURN_NOT_OK(cursor_->Next());
      } else {
        // Duplicate key: the newer write wins (equal timestamps mean the
        // same entry observed in both snapshots around a flush).
        if (mem_[mi_].ts >= cursor_->ts()) {
          emitted = EmitMem(mem_[mi_], out);
        } else {
          emitted = EmitDisk(out);
        }
        mi_++;
        AUXLSM_RETURN_NOT_OK(cursor_->Next());
      }
      if (emitted) {
        *valid = true;
        return Status::OK();
      }
    }
    *valid = false;
    return Status::OK();
  }

 private:
  bool EmitMem(const OwnedEntry& e, SecondaryMatch* out) {
    if (e.antimatter) return false;
    Slice pk;
    SplitSecondaryKey(e.key, sk_width_, nullptr, &pk);
    *out = SecondaryMatch{pk.ToString(), e.ts, mem_min_ts_};
    return true;
  }
  bool EmitDisk(SecondaryMatch* out) {
    if (cursor_->antimatter()) return false;
    Slice pk;
    SplitSecondaryKey(cursor_->key(), sk_width_, nullptr, &pk);
    *out = SecondaryMatch{
        pk.ToString(), cursor_->ts(),
        comps_.empty() ? 0 : comps_[cursor_->source()]->id().min_ts};
    return true;
  }

  size_t sk_width_ = 8;
  std::string lo_, hi_;
  std::vector<OwnedEntry> mem_;
  Timestamp mem_min_ts_ = 0;
  std::vector<DiskComponentPtr> comps_;
  std::unique_ptr<MergeCursor> cursor_;
  size_t mi_ = 0;
};

/// Sorts candidates by pk; duplicates collapse to the entry with the largest
/// timestamp (Fig 5's sort-distinct).
void SortDistinct(std::vector<SecondaryMatch>* matches) {
  std::sort(matches->begin(), matches->end(),
            [](const SecondaryMatch& a, const SecondaryMatch& b) {
              if (a.pk != b.pk) return a.pk < b.pk;
              return a.ts > b.ts;
            });
  matches->erase(std::unique(matches->begin(), matches->end(),
                             [](const SecondaryMatch& a,
                                const SecondaryMatch& b) {
                               return a.pk == b.pk;
                             }),
                 matches->end());
}

PointLookupOptions MakeLookupOptions(const SecondaryQueryOptions& q) {
  PointLookupOptions o;
  o.batched = q.lookup == SecondaryQueryOptions::LookupAlgo::kBatched;
  o.batch_memory_bytes = q.batch_memory_bytes;
  o.stateful_btree_lookup = q.stateful_btree_lookup;
  o.use_blocked_bloom = q.use_blocked_bloom;
  return o;
}

}  // namespace

// ---------------------------------------------------------------------------
// SecondaryQueryExecutor (a Dataset friend; see dataset.h)
// ---------------------------------------------------------------------------

class SecondaryQueryExecutor final : public QueryExecutor {
 public:
  SecondaryQueryExecutor(Dataset* dataset, SecondaryIndex* index,
                         const ReadQuery& query)
      : dataset_(dataset),
        index_(index),
        query_(query),
        opts_(query.read_options().secondary) {}

  Status Open() override {
    // The projection flag lives on both the builder and the legacy options;
    // either requests keys-only.
    if (query_.index_only()) opts_.index_only = true;

    // Pick the validation method. The Eager strategy keeps secondaries
    // up-to-date so no validation is needed; lazy strategies default to
    // timestamp validation (deleted-key validates against its own trees).
    validation_ = opts_.validation;
    if (validation_ == SecondaryQueryOptions::Validation::kAuto) {
      validation_ =
          dataset_->options_.strategy == MaintenanceStrategy::kEager
              ? SecondaryQueryOptions::Validation::kNone
              : SecondaryQueryOptions::Validation::kTimestamp;
    }

    uint32_t readahead = query_.read_options().readahead_pages;
    if (readahead == 0) readahead = dataset_->options_.scan_readahead_pages;
    uint64_t lo = query_.has_range() ? query_.range_lo() : 0;
    const uint64_t hi = query_.has_range() ? query_.range_hi() : UINT64_MAX;
    range_lo_ = lo;
    range_hi_ = hi;

    // Tuple-cache consult (PR 7). Eligibility is the set of shapes whose
    // cache-served result is provably bit-identical to the legacy pipeline:
    //   - unlimited, row-producing (Limit changes chunk sizing and with it
    //     the row set; count-only/index-only project differently);
    //   - no TimeRange predicate (cached tuples are post-validation,
    //     pre-time-filter would need re-filtering — keep it simple);
    //   - final order is primary-key-ascending (sort_results_by_pk). Any
    //     unsorted emission order — batched *or* naive — leaks where the
    //     records physically live (memtable hits surface before component
    //     hits), which a cache serve cannot reproduce;
    //   - the effective validation rejects stale matches (kTimestamp /
    //     kDirect, or any method under Eager, whose index has none), so an
    //     emitted record's current secondary key equals its matched key and
    //     the populate below groups correctly.
    cache_ = dataset_->tuple_cache();
    cache_eligible_ =
        cache_ != nullptr && query_.limit() == 0 && !query_.count_only() &&
        !opts_.index_only && !query_.has_time_range() &&
        index_->def.sk_width == sizeof(uint64_t) &&
        opts_.sort_results_by_pk &&
        (validation_ != SecondaryQueryOptions::Validation::kNone ||
         dataset_->options_.strategy == MaintenanceStrategy::kEager);
    if (cache_eligible_) {
      space_ = 0;
      for (size_t i = 0; i < dataset_->secondaries_.size(); i++) {
        if (dataset_->secondaries_[i].get() == index_) {
          space_ = Dataset::TupleCacheSpaceOf(i);
          break;
        }
      }
      if (space_ == 0) cache_eligible_ = false;  // not in the catalog
    }
    if (cache_eligible_) {
      // Epoch before any snapshot capture: a write that races this open
      // invalidates after its effects are visible, so an unchanged epoch
      // proves the populate below saw the write (or the insert is dropped).
      epoch_ = cache_->SpaceEpoch(space_);
      TupleCache::RangeServe serve;
      cache_->LookupRange(space_, lo, hi, &serve);
      if (serve.complete) {
        // Full serve: the chain covered [lo, hi] — no stream, no views, no
        // tree descent, no modeled I/O. Legacy (eligible) order is global
        // pk-ascending; cached tuples are key-major, so re-sort.
        cache_hits_ = 1;
        cache_rows_ = serve.tuples.size();
        for (const auto& t : serve.tuples) {
          TweetRecord rec;
          AUXLSM_RETURN_NOT_OK(TweetRecord::Deserialize(t.value, &rec));
          buffer_.records.push_back(std::move(rec));
        }
        std::sort(buffer_.records.begin(), buffer_.records.end(),
                  [](const TweetRecord& a, const TweetRecord& b) {
                    return a.id < b.id;
                  });
        rows_buffered_ = buffer_.records.size();
        cache_full_serve_ = true;
        stream_dry_ = true;
        exhausted_ = true;
        return Status::OK();
      }
      cache_misses_ = 1;
      if (!serve.tuples.empty()) {
        // Partial serve: the chain covered [lo, serve.next); only the
        // remainder walks the tree. The prefix rows are merged (and the
        // global pk order restored) when the stream exhausts.
        cache_rows_ = serve.tuples.size();
        cache_pending_.reserve(serve.tuples.size());
        for (const auto& t : serve.tuples) {
          TweetRecord rec;
          AUXLSM_RETURN_NOT_OK(TweetRecord::Deserialize(t.value, &rec));
          cache_pending_.push_back(std::move(rec));
        }
        lo = serve.next;
      }
    }
    AUXLSM_RETURN_NOT_OK(
        stream_.Open(*index_, EncodeU64(lo), EncodeU64(hi), readahead));

    // Pin the validation and fetch targets once: later pulls reuse these
    // views, so a paginated read keeps probing the same component lists no
    // matter how maintenance reshapes the trees meanwhile.
    if (validation_ == SecondaryQueryOptions::Validation::kTimestamp) {
      if (dataset_->options_.strategy ==
          MaintenanceStrategy::kDeletedKeyBtree) {
        validation_view_ = LsmReadView::Capture(*index_->deleted_keys);
      } else {
        LsmTree* finder = dataset_->pk_index_ ? dataset_->pk_index_.get()
                                              : dataset_->primary_.get();
        validation_view_ = LsmReadView::Capture(*finder);
      }
    }
    fetch_view_ = LsmReadView::Capture(*dataset_->primary_);
    if (!cache_pending_.empty() && !cache_->WritersQuiescent(space_, epoch_)) {
      // A write landed (or is still in flight) between the chain serve and
      // the snapshot captures above: the prefix and the stream would
      // reflect different moments (a moved record could appear in both
      // halves, or in neither). Drop the prefix and restart the stream at
      // the query's own bound; the populate at exhaustion is already
      // fenced by the stale epoch / in-flight writer.
      cache_pending_.clear();
      cache_rows_ = 0;
      AUXLSM_RETURN_NOT_OK(stream_.Open(*index_, EncodeU64(range_lo_),
                                        EncodeU64(hi), readahead));
    }
    return Status::OK();
  }

  Status Produce(size_t max_rows, QueryPage* page, bool* done) override {
    while (page->rows() < max_rows) {
      if (buf_pos_ < buffer_.rows()) {
        MoveFromBuffer(max_rows - page->rows(), page);
        continue;
      }
      if (exhausted_) break;
      AUXLSM_RETURN_NOT_OK(ProcessChunk(max_rows - page->rows()));
      // An eligible (unlimited) query exhausts within its single chunk,
      // before any row left the buffer: merge the cache-served prefix and
      // record the completed result while the full row set is still here.
      if (exhausted_ && cache_eligible_ && !cache_full_serve_ &&
          !cache_finalized_) {
        FinalizeCacheServe();
      }
    }
    if (buf_pos_ >= buffer_.rows() && exhausted_) *done = true;
    return Status::OK();
  }

  void AccumulateStats(CursorStats* out) const override {
    out->candidates = candidates_;
    out->validated_out = validated_out_;
    out->time_filtered = time_filtered_;
    out->candidate_chunks = chunks_;
    out->tuple_cache_hits = cache_hits_;
    out->tuple_cache_chain_rows = cache_rows_;
    out->tuple_cache_misses = cache_misses_;
    // For row-producing cursors `rows` is the authoritative delivered count
    // (rows_buffered_ includes chunk headroom the Limit truncates); the
    // match count is only meaningful — and exact — on the count-only path.
    if (query_.count_only()) out->records_matched = rows_buffered_;
  }

 private:
  /// Moves up to n buffered rows into the page (a buffer holds records or
  /// keys, never both; buf_pos_ indexes the concatenation).
  void MoveFromBuffer(size_t n, QueryPage* page) {
    size_t moved = 0;
    while (moved < n && buf_pos_ < buffer_.rows()) {
      if (buf_pos_ < buffer_.records.size()) {
        page->records.push_back(std::move(buffer_.records[buf_pos_]));
      } else {
        page->keys.push_back(
            std::move(buffer_.keys[buf_pos_ - buffer_.records.size()]));
      }
      buf_pos_++;
      moved++;
    }
    if (buf_pos_ >= buffer_.rows()) {
      buffer_.clear();
      buf_pos_ = 0;
    }
  }

  /// Runs one candidate chunk through the legacy pipeline stages. An
  /// unlimited query uses one all-covering chunk (exact legacy order and
  /// counters); a limited one pulls just enough candidates to likely cover
  /// the *remaining limit* (not the next page — per-page chunks would
  /// shrink the §3.2 fetch batches and lose their sequential-leaf
  /// locality), with 25% headroom for validation losses.
  Status ProcessChunk(size_t want) {
    const bool unlimited = query_.limit() == 0;
    size_t chunk = SIZE_MAX;
    if (!unlimited) {
      const uint64_t rem = query_.limit() > rows_buffered_
                               ? query_.limit() - rows_buffered_
                               : 1;
      chunk = std::max<size_t>(size_t(rem + rem / 4 + kMinChunkCandidates),
                               2 * std::max<size_t>(want, 1));
    }

    // 1. Pull candidates from the streaming secondary search.
    std::vector<SecondaryMatch> matches;
    while (matches.size() < chunk) {
      SecondaryMatch m;
      bool valid = false;
      AUXLSM_RETURN_NOT_OK(stream_.Next(&m, &valid));
      if (!valid) {
        stream_dry_ = true;
        break;
      }
      matches.push_back(std::move(m));
    }
    candidates_ += matches.size();
    chunks_++;
    if (matches.empty()) {
      if (stream_dry_) exhausted_ = true;
      return Status::OK();
    }
    if (stream_dry_) exhausted_ = true;

    // 2. Sort (and dedup by pk, keeping the newest entry). Across chunks, a
    // pk that already produced a row is dropped here — the global
    // sort-distinct of the single-chunk path collapses those duplicates, so
    // this keeps multi-chunk (limited) runs from double-emitting a record
    // whose obsolete secondary entries survive direct/no validation.
    SortDistinct(&matches);
    if (!emitted_pks_.empty()) {
      matches.erase(std::remove_if(matches.begin(), matches.end(),
                                   [&](const SecondaryMatch& m) {
                                     return emitted_pks_.count(m.pk) > 0;
                                   }),
                    matches.end());
    }

    // 3. Validation.
    std::vector<FetchRequest> requests;
    requests.reserve(matches.size());
    auto to_request = [&](const SecondaryMatch& m) {
      FetchRequest r;
      r.pk = m.pk;
      if (opts_.propagate_component_id) r.prune_min_ts = m.component_min_ts;
      return r;
    };

    if (validation_ == SecondaryQueryOptions::Validation::kTimestamp) {
      // Fig 5b: validate (pk, ts) pairs against the primary key index — a
      // key is invalid if the index holds the same key with a larger
      // timestamp. (AsterixDB baseline: against each component's deleted-key
      // B+-tree instead, §4.1 — the captured view made that choice.)
      std::vector<FetchRequest> vreq;
      for (const auto& m : matches) vreq.push_back(FetchRequest{m.pk, 0});
      PointLookupOptions vopts = MakeLookupOptions(opts_);
      vopts.raw = true;
      std::vector<FetchedEntry> newest;
      AUXLSM_RETURN_NOT_OK(
          BulkPointLookup(validation_view_, vreq, vopts, &newest));
      const bool deleted_key_mode =
          dataset_->options_.strategy == MaintenanceStrategy::kDeletedKeyBtree;
      std::unordered_map<std::string, Timestamp> newest_ts;
      std::unordered_map<std::string, bool> newest_alive;
      for (const auto& e : newest) {
        newest_ts[e.pk] = e.ts;
        newest_alive[e.pk] = e.alive;
      }
      for (const auto& m : matches) {
        auto it = newest_ts.find(m.pk);
        const bool invalid =
            it != newest_ts.end() &&
            (it->second > m.ts ||
             (!deleted_key_mode && !newest_alive[m.pk]));
        if (invalid) {
          validated_out_++;
          continue;
        }
        requests.push_back(to_request(m));
      }
      if (opts_.index_only && !query_.has_time_range()) {
        for (auto& r : requests) {
          if (CountBudgetReached()) break;
          EmitKey(std::move(r.pk));
        }
        MaybeFinishCountOnly();
        return Status::OK();
      }
    } else {
      for (const auto& m : matches) requests.push_back(to_request(m));
      if (opts_.index_only && !query_.has_time_range() &&
          validation_ == SecondaryQueryOptions::Validation::kNone) {
        for (auto& r : requests) {
          if (CountBudgetReached()) break;
          EmitKey(std::move(r.pk));
        }
        MaybeFinishCountOnly();
        return Status::OK();
      }
    }

    // 4. Fetch records from the primary index.
    std::vector<FetchedEntry> fetched;
    AUXLSM_RETURN_NOT_OK(BulkPointLookup(fetch_view_, requests,
                                         MakeLookupOptions(opts_), &fetched));

    // 5. Direct validation re-checks the search condition on the records
    // (Fig 5a); dead keys simply fetch nothing.
    const bool recheck =
        validation_ == SecondaryQueryOptions::Validation::kDirect;
    validated_out_ += requests.size() - fetched.size();
    const size_t first_record = buffer_.records.size();
    for (auto& e : fetched) {
      if (CountBudgetReached()) break;
      TweetRecord rec;
      AUXLSM_RETURN_NOT_OK(TweetRecord::Deserialize(e.value, &rec));
      if (recheck && query_.has_range() &&
          (rec.user_id < query_.range_lo() ||
           rec.user_id > query_.range_hi())) {
        validated_out_++;
        continue;
      }
      if (query_.has_time_range() &&
          (rec.creation_time < query_.time_lo() ||
           rec.creation_time > query_.time_hi())) {
        time_filtered_++;
        continue;
      }
      if (opts_.index_only) {
        EmitKey(std::move(e.pk));
      } else {
        // The emitted-pk set only matters across chunks; unlimited queries
        // run one chunk, so skip its upkeep on the legacy hot path.
        if (query_.limit() != 0) emitted_pks_.insert(e.pk);
        rows_buffered_++;
        if (!query_.count_only()) {
          buffer_.records.push_back(std::move(rec));
        }
      }
    }

    // 6. Optionally restore primary-key order destroyed by batching
    // (Fig 12d); chunk-local, which is global order for unlimited queries.
    if (opts_.sort_results_by_pk && !opts_.index_only) {
      std::sort(buffer_.records.begin() + first_record,
                buffer_.records.end(),
                [](const TweetRecord& a, const TweetRecord& b) {
                  return a.id < b.id;
                });
    }
    MaybeFinishCountOnly();
    return Status::OK();
  }

  /// Runs once when an eligible query exhausts: merges the cache-served
  /// prefix into the (still undrained) buffer, restores the global pk order,
  /// and admits the completed, validated result of [range_lo_, range_hi_]
  /// into the cache under the epoch captured at Open.
  void FinalizeCacheServe() {
    cache_finalized_ = true;
    if (!cache_pending_.empty()) {
      // A write whose invalidation was still in flight at Open's epoch
      // re-check can surface the same pk in both halves; the stream's row
      // is the newer snapshot, so it wins and the prefix copy drops.
      std::set<uint64_t> streamed;
      for (const auto& r : buffer_.records) streamed.insert(r.id);
      for (auto& r : cache_pending_) {
        if (streamed.count(r.id) == 0) {
          buffer_.records.push_back(std::move(r));
        }
      }
      cache_pending_.clear();
      std::sort(buffer_.records.begin(), buffer_.records.end(),
                [](const TweetRecord& a, const TweetRecord& b) {
                  return a.id < b.id;
                });
      rows_buffered_ = buffer_.records.size();
    }
    // Group the result by its records' *current* secondary keys (equal to
    // the matched keys for every eligible validation mode). A key outside
    // the queried interval would poison the chain's emptiness claims; skip
    // the populate outright if one appears (defensive — unreachable for
    // eligible shapes).
    std::map<uint64_t, std::vector<CachedTuple>> grouped;
    for (const auto& rec : buffer_.records) {
      const uint64_t key = DecodeU64(index_->def.extract(rec));
      if (key < range_lo_ || key > range_hi_) return;
      grouped[key].push_back(CachedTuple{EncodeU64(rec.id), rec.Serialize()});
    }
    std::vector<TupleCache::KeyGroup> groups;
    groups.reserve(grouped.size());
    for (auto& [key, tuples] : grouped) {
      groups.push_back(TupleCache::KeyGroup{key, std::move(tuples)});
    }
    cache_->InsertRange(space_, range_lo_, range_hi_, std::move(groups),
                        epoch_);
  }

  void EmitKey(std::string pk) {
    if (query_.limit() != 0) emitted_pks_.insert(pk);
    rows_buffered_++;
    if (!query_.count_only()) buffer_.keys.push_back(std::move(pk));
  }

  /// Count-only cursors deliver no pages, so the cursor-side Limit never
  /// triggers; the count stops exactly at the Limit and ends the stream.
  bool CountBudgetReached() const {
    return query_.count_only() && query_.limit() != 0 &&
           rows_buffered_ >= query_.limit();
  }
  void MaybeFinishCountOnly() {
    if (CountBudgetReached()) exhausted_ = true;
  }

  static constexpr size_t kMinChunkCandidates = 16;

  Dataset* dataset_;
  SecondaryIndex* index_;
  ReadQuery query_;
  SecondaryQueryOptions opts_;
  SecondaryQueryOptions::Validation validation_ =
      SecondaryQueryOptions::Validation::kAuto;

  SecondaryScanStream stream_;
  LsmReadView validation_view_;
  LsmReadView fetch_view_;

  /// pks that already produced a row (multi-chunk dedup; see ProcessChunk).
  std::unordered_set<std::string> emitted_pks_;
  uint64_t rows_buffered_ = 0;  ///< rows ever produced (chunk sizing input)
  QueryPage buffer_;
  size_t buf_pos_ = 0;
  bool stream_dry_ = false;
  bool exhausted_ = false;

  uint64_t candidates_ = 0;
  uint64_t validated_out_ = 0;
  uint64_t time_filtered_ = 0;
  uint64_t chunks_ = 0;

  // Tuple-cache state (PR 7); inert when cache_eligible_ is false.
  TupleCache* cache_ = nullptr;
  bool cache_eligible_ = false;
  bool cache_full_serve_ = false;
  bool cache_finalized_ = false;
  uint32_t space_ = 0;
  uint64_t epoch_ = 0;
  uint64_t range_lo_ = 0, range_hi_ = UINT64_MAX;
  std::vector<TweetRecord> cache_pending_;  ///< served prefix awaiting merge
  uint64_t cache_hits_ = 0;
  uint64_t cache_rows_ = 0;
  uint64_t cache_misses_ = 0;
};

std::unique_ptr<QueryExecutor> MakeSecondaryQueryExecutor(
    Dataset* dataset, SecondaryIndex* index, const ReadQuery& query) {
  return std::make_unique<SecondaryQueryExecutor>(dataset, index, query);
}

// --- Legacy wrapper ---------------------------------------------------------

Status Dataset::QueryUserRange(uint64_t lo_user, uint64_t hi_user,
                               const SecondaryQueryOptions& opts,
                               QueryResult* out) {
  ReadOptions ro;
  ro.secondary = opts;
  AUXLSM_ASSIGN_OR_RETURN(
      auto cursor,
      NewCursor(ReadQuery().Secondary().Range(lo_user, hi_user).Options(ro)));
  return cursor->Drain(out);
}

}  // namespace auxlsm
