// Pull-based streaming query cursor.
//
// A QueryCursor is opened by Dataset::NewCursor(ReadQuery) and delivers
// result pages on demand. The underlying executor captures its snapshot —
// memtable entry snapshots plus pinned disk-component lists, taken
// memtables-before-components exactly like the one-shot paths — once at
// open, so:
//
//   - the candidate set is stable: concurrent inserts, flushes, and merges
//     during the cursor's lifetime neither add, drop, nor duplicate rows
//     (pinned components keep their files alive until the cursor closes);
//   - work happens per pull: a Limit(k) query stops pulling candidate
//     chunks, validating, and fetching as soon as k rows are out, which is
//     observable as strictly fewer candidates and fewer simulated-I/O
//     microseconds in stats();
//   - without a Limit, the pipeline runs in one chunk with exactly the
//     legacy operator order, so a drained cursor is bit-identical (order
//     included) to the pre-redesign entry points.
//
// Validation and record fetch consult the pinned trees' memtables, which
// remain live for the *active* memtable: a concurrent update/delete of a
// snapshot row may still validate it out or refresh its fetched value —
// the same read-latest semantics the one-shot paths always had.
//
// Cursors are not thread-safe and must not outlive their Dataset.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "common/result.h"
#include "core/read_query.h"

namespace auxlsm {

class Dataset;
class QueryExecutor;

/// One page of results. Record queries fill `records`; index-only queries
/// fill `keys`; count-only queries fill neither (counters only).
struct QueryPage {
  std::vector<TweetRecord> records;
  std::vector<std::string> keys;

  size_t rows() const { return records.size() + keys.size(); }
  bool empty() const { return records.empty() && keys.empty(); }
  void clear() {
    records.clear();
    keys.clear();
  }
};

/// Cumulative work/result counters of a cursor (the QueryResult/ScanResult
/// counters, unified, plus the cursor's own I/O accounting).
struct CursorStats {
  uint64_t rows = 0;                ///< result rows delivered in pages
  uint64_t candidates = 0;          ///< secondary matches pulled pre-validation
  uint64_t validated_out = 0;       ///< candidates rejected by validation
  uint64_t time_filtered = 0;       ///< rows dropped by a TimeRange predicate
  uint64_t candidate_chunks = 0;    ///< candidate chunks processed
  uint64_t records_scanned = 0;     ///< scan plans: live entries visited
  uint64_t records_matched = 0;     ///< scan plans + CountOnly: matched rows
  uint64_t components_scanned = 0;
  uint64_t components_pruned = 0;
  // Tuple-cache accounting (cache/tuple_cache.h, PR 7); all zero when the
  // cache is disabled.
  uint64_t tuple_cache_hits = 0;       ///< consults served fully from cache
  uint64_t tuple_cache_chain_rows = 0; ///< rows delivered by chain walks
  uint64_t tuple_cache_misses = 0;     ///< consults that fell through
  /// Simulated-I/O microseconds of the storage device charged while this
  /// cursor was executing (open + pulls). Exact when the cursor runs alone;
  /// concurrent actors on the same Env make it an overestimate.
  double io_simulated_us = 0;
};

/// Internal executor interface: one implementation per plan shape
/// (point lookup in query_cursor.cc, secondary query in query.cc, primary
/// scans in scan.cc). Produce() appends up to max_rows rows and sets *done
/// when the stream is exhausted.
class QueryExecutor {
 public:
  virtual ~QueryExecutor() = default;
  virtual Status Open() = 0;
  virtual Status Produce(size_t max_rows, QueryPage* page, bool* done) = 0;
  virtual void AccumulateStats(CursorStats* out) const = 0;
};

class QueryCursor {
 public:
  ~QueryCursor();
  QueryCursor(const QueryCursor&) = delete;
  QueryCursor& operator=(const QueryCursor&) = delete;

  /// Pulls the next page: up to PageSize rows, fewer at stream end or when
  /// the Limit is reached. An exhausted cursor returns OK with an empty
  /// page. Execution is charged to ReadOptions::io_queue while inside.
  Status Next(QueryPage* page);

  /// True once the stream is exhausted (or the Limit was delivered).
  bool done() const { return done_; }

  /// Drains the remaining pages into a materialized QueryResult (records or
  /// keys, plus the legacy candidates/validated_out counters).
  Status Drain(QueryResult* out);

  /// Counters so far; final once done(). Scan counters map onto ScanResult.
  const CursorStats& stats() const { return stats_; }

 private:
  friend class Dataset;
  QueryCursor(Dataset* dataset, const ReadQuery& query,
              std::unique_ptr<QueryExecutor> executor);

  /// Runs fn under the cursor's I/O-queue binding, accounting simulated-us.
  Status Charged(const std::function<Status()>& fn);

  Dataset* dataset_;
  ReadQuery query_;
  std::unique_ptr<QueryExecutor> executor_;
  uint64_t remaining_;  ///< rows still allowed by Limit (UINT64_MAX = none)
  bool done_ = false;
  CursorStats stats_;
};

}  // namespace auxlsm
