// Secondary index repair (§4.4, Fig 7): validate a component's primary keys
// against the primary key index, recording obsolete entries in an immutable
// validity bitmap. Merge repair does this as part of a merge; standalone
// repair only creates a new bitmap.
#include <algorithm>

#include "btree/btree_cursor.h"
#include "common/hash.h"
#include "core/dataset.h"
#include "format/key_codec.h"

namespace auxlsm {

namespace {

struct RepairKey {
  std::string pk;
  Timestamp ts = 0;
  uint64_t position = 0;
};

/// Validates keys (sorted by pk) against the primary key index components
/// with max_ts > repaired_ts (older components are pruned — their entries
/// cannot invalidate anything ingested before repaired_ts). Invalid keys'
/// positions are set in *bitmap. Advances *new_repaired_ts to the maximum
/// timestamp covered by the components searched.
Status ValidateSortedKeys(Dataset* ds, std::vector<RepairKey>* keys,
                          Timestamp repaired_ts, bool use_bloom_opt,
                          Bitmap* bitmap, Timestamp* new_repaired_ts) {
  LsmTree* finder = ds->primary_key_index() != nullptr
                        ? ds->primary_key_index()
                        : ds->primary();
  std::vector<DiskComponentPtr> unpruned;
  Timestamp covered = repaired_ts;
  uint64_t recent_keys = 0;
  for (const auto& c : finder->Components()) {
    if (c->id().max_ts <= repaired_ts) continue;  // prunable (§4.4)
    unpruned.push_back(c);
    covered = std::max(covered, c->id().max_ts);
    recent_keys += c->num_entries();
  }
  *new_repaired_ts = covered;
  if (unpruned.empty()) return Status::OK();

  // Bloom filter optimization (§4.4): a key absent from every unpruned
  // component's Bloom filter cannot have been updated; exclude it before the
  // sort+validate work.
  if (use_bloom_opt) {
    keys->erase(std::remove_if(keys->begin(), keys->end(),
                               [&](const RepairKey& k) {
                                 const uint64_t h = Hash64(k.pk);
                                 for (const auto& c : unpruned) {
                                   if (c->MayContain(h, false)) return false;
                                 }
                                 return true;  // definitely not updated
                               }),
                keys->end());
  }
  std::sort(keys->begin(), keys->end(),
            [](const RepairKey& a, const RepairKey& b) { return a.pk < b.pk; });

  auto invalidates = [](Timestamp newer_ts, Timestamp entry_ts) {
    return newer_ts > entry_ts;
  };

  if (keys->size() > recent_keys) {
    // More keys to validate than recently ingested keys: merge-scan the
    // sorted keys with the unpruned primary key index components (§4.4).
    MergeCursor::Options mo;
    mo.respect_bitmaps = true;
    mo.drop_antimatter = false;  // anti-matter invalidates too
    MergeCursor cursor(unpruned, mo);
    AUXLSM_RETURN_NOT_OK(cursor.Init());
    size_t i = 0;
    while (cursor.Valid() && i < keys->size()) {
      const int cmp = Slice((*keys)[i].pk).compare(cursor.key());
      if (cmp < 0) {
        i++;
      } else if (cmp > 0) {
        AUXLSM_RETURN_NOT_OK(cursor.Next());
      } else {
        // All repair keys with this pk share the comparison point.
        while (i < keys->size() && Slice((*keys)[i].pk) == cursor.key()) {
          if (invalidates(cursor.ts(), (*keys)[i].ts)) {
            bitmap->Set((*keys)[i].position);
          }
          i++;
        }
        AUXLSM_RETURN_NOT_OK(cursor.Next());
      }
    }
  } else {
    // Point lookups (newest unpruned entry per key), stateful per component
    // since the keys are sorted.
    std::vector<StatefulBtreeCursor> cursors;
    cursors.reserve(unpruned.size());
    for (const auto& c : unpruned) {
      cursors.emplace_back(&c->tree());
    }
    for (auto& k : *keys) {
      const uint64_t h = Hash64(k.pk);
      for (size_t ci = 0; ci < unpruned.size(); ci++) {
        if (!unpruned[ci]->MayContain(h, false)) continue;
        LeafEntry entry;
        std::string backing;
        bool found = false;
        AUXLSM_RETURN_NOT_OK(
            cursors[ci].SeekExact(k.pk, &entry, &backing, &found));
        if (!found) continue;
        if (invalidates(entry.ts, k.ts)) bitmap->Set(k.position);
        break;  // newest unpruned component wins
      }
    }
  }
  return Status::OK();
}

}  // namespace

Status RunMergeRepair(Dataset* ds, SecondaryIndex* index,
                      const std::vector<DiskComponentPtr>& picked) {
  if (picked.empty()) return Status::OK();
  LsmTree* tree = index->tree.get();
  bool includes_oldest;
  {
    auto all = tree->Components();
    includes_oldest = !all.empty() && picked.back() == all.back();
  }

  // Fig 7 lines 1-7: scan valid entries into the new component, streaming
  // (pkey, ts, position) to the sorter.
  MergeCursor::Options mo;
  mo.respect_bitmaps = true;
  mo.drop_antimatter = includes_oldest;
  MergeCursor cursor(picked, mo);
  AUXLSM_RETURN_NOT_OK(cursor.Init());

  std::vector<RepairKey> repair_keys;
  Status iter_status;
  uint64_t position = 0;
  auto next = [&](OwnedEntry* e) {
    if (!cursor.Valid()) return false;
    e->key = cursor.key().ToString();
    e->value = cursor.value().ToString();
    e->ts = cursor.ts();
    e->antimatter = cursor.antimatter();
    if (!e->antimatter) {
      Slice pk;
      SplitSecondaryKey(e->key, index->def.sk_width, nullptr, &pk);
      repair_keys.push_back(RepairKey{pk.ToString(), e->ts, position});
    }
    position++;
    iter_status = cursor.Next();
    return iter_status.ok();
  };

  const ComponentId id{picked.back()->id().min_ts, picked.front()->id().max_ts};
  AUXLSM_ASSIGN_OR_RETURN(DiskComponentPtr merged,
                          tree->BuildComponent(id, next));
  AUXLSM_RETURN_NOT_OK(iter_status);

  Timestamp repaired = picked.front()->repaired_ts();
  for (const auto& c : picked) repaired = std::min(repaired, c->repaired_ts());

  // Fig 7 lines 8-13: sort, validate, set bitmap bits.
  auto bitmap = std::make_shared<Bitmap>(merged->num_entries());
  Timestamp new_repaired = repaired;
  AUXLSM_RETURN_NOT_OK(ValidateSortedKeys(ds, &repair_keys, repaired,
                                          ds->options().repair_bloom_opt,
                                          bitmap.get(), &new_repaired));
  if (bitmap->CountSet() > 0) merged->set_bitmap(std::move(bitmap));
  merged->set_repaired_ts(new_repaired);
  return tree->ReplaceComponents(picked, merged);
}

Status RunStandaloneRepair(Dataset* ds, SecondaryIndex* index) {
  // Standalone repair produces only a fresh bitmap per component (§4.4).
  for (const auto& c : index->tree->Components()) {
    std::vector<RepairKey> repair_keys;
    repair_keys.reserve(c->num_entries());
    auto it = c->tree().NewIterator(ds->options().scan_readahead_pages);
    AUXLSM_RETURN_NOT_OK(it.SeekToFirst());
    while (it.Valid()) {
      const bool already_invalid =
          c->bitmap() != nullptr && c->bitmap()->Test(it.ordinal());
      if (!already_invalid && !it.antimatter()) {
        Slice pk;
        SplitSecondaryKey(it.key(), index->def.sk_width, nullptr, &pk);
        repair_keys.push_back(RepairKey{pk.ToString(), it.ts(), it.ordinal()});
      }
      AUXLSM_RETURN_NOT_OK(it.Next());
    }
    auto bitmap = std::make_shared<Bitmap>(c->num_entries());
    if (c->bitmap() != nullptr) bitmap->UnionWith(*c->bitmap());
    Timestamp new_repaired = c->repaired_ts();
    AUXLSM_RETURN_NOT_OK(ValidateSortedKeys(ds, &repair_keys,
                                            c->repaired_ts(),
                                            ds->options().repair_bloom_opt,
                                            bitmap.get(), &new_repaired));
    c->set_bitmap(std::move(bitmap));
    c->set_repaired_ts(new_repaired);
  }
  return Status::OK();
}

Status Dataset::RepairAllSecondaries() {
  for (auto& s : secondaries_) {
    AUXLSM_RETURN_NOT_OK(RunStandaloneRepair(this, s.get()));
    stats_.repairs++;
  }
  return Status::OK();
}

}  // namespace auxlsm
