// Maintenance-strategy advisor — the auto-tuning direction the paper leaves
// as future work (§7: "since no strategy was found to work best for all
// workloads, we plan to develop auto-tuning techniques so that the system
// could dynamically adopt the optimal maintenance strategies").
//
// The heuristics encode the paper's experimental conclusions:
//   * Eager optimizes queries but pays a point lookup per write (§6.3);
//   * Validation maximizes ingestion, costs little for non-index-only
//     queries, 3-5x for index-only ones (§6.4.1), and loses range-filter
//     pruning on old data (§6.4.2);
//   * Mutable-bitmap keeps filters effective at a modest ingestion cost;
//   * frequent updates make repair worthwhile, and the Bloom-filter repair
//     optimization (with correlated merges) pays off for update-heavy
//     workloads (§4.4, §6.5).
#pragma once

#include <string>

#include "core/dataset.h"

namespace auxlsm {

/// Observed or predicted workload characteristics.
struct WorkloadProfile {
  /// Fraction of write operations that update/delete existing keys.
  double update_ratio = 0.0;
  /// Write operations per query (ingestion pressure).
  double writes_per_query = 1.0;
  /// Of the queries, the fraction answerable from secondary indexes alone.
  double index_only_fraction = 0.0;
  /// Of the queries, the fraction that are filter-pruned scans over *old*
  /// data (where Validation loses all pruning).
  double old_range_scan_fraction = 0.0;
};

struct StrategyRecommendation {
  MaintenanceStrategy strategy = MaintenanceStrategy::kEager;
  bool merge_repair = false;
  bool correlated_merges = false;
  bool repair_bloom_opt = false;
  std::string rationale;

  /// Applies the recommendation to a DatasetOptions.
  void ApplyTo(DatasetOptions* options) const;
};

/// Picks a maintenance strategy for the profile.
StrategyRecommendation AdviseStrategy(const WorkloadProfile& profile);

/// Accumulates a profile from live counters (feed it from application code
/// or from Dataset::ingest_stats()).
class WorkloadTracker {
 public:
  void RecordWrite(bool is_update) {
    writes_++;
    if (is_update) updates_++;
  }
  void RecordQuery(bool index_only, bool old_range_scan) {
    queries_++;
    if (index_only) index_only_++;
    if (old_range_scan) old_scans_++;
  }

  WorkloadProfile Profile() const;
  uint64_t writes() const { return writes_; }
  uint64_t queries() const { return queries_; }

 private:
  uint64_t writes_ = 0;
  uint64_t updates_ = 0;
  uint64_t queries_ = 0;
  uint64_t index_only_ = 0;
  uint64_t old_scans_ = 0;
};

}  // namespace auxlsm
