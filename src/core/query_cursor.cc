// QueryCursor mechanics and query planning: Dataset::NewCursor resolves a
// declarative ReadQuery to one of three executors — point lookup (here),
// secondary-index query (query.cc), primary scan (scan.cc) — and the cursor
// meters pages out of it, enforcing the Limit and charging execution to the
// ReadOptions::io_queue device queue.
#include "core/query_cursor.h"

#include <algorithm>

#include "core/dataset.h"
#include "core/point_lookup.h"
#include "format/key_codec.h"
#include "io/io_engine.h"

namespace auxlsm {

// Executor factories (query.cc / scan.cc).
std::unique_ptr<QueryExecutor> MakeSecondaryQueryExecutor(
    Dataset* dataset, SecondaryIndex* index, const ReadQuery& query);
std::unique_ptr<QueryExecutor> MakeFilterScanExecutor(Dataset* dataset,
                                                      const ReadQuery& query);

// ---------------------------------------------------------------------------
// Point lookup plan: Query().Primary(id). One-shot by nature; kept
// behavior-identical to the legacy GetById (a reconciling LsmTree::Get).
// ---------------------------------------------------------------------------

namespace {

class PointLookupExecutor final : public QueryExecutor {
 public:
  PointLookupExecutor(Dataset* dataset, const ReadQuery& query)
      : dataset_(dataset), query_(query) {}

  Status Open() override { return Status::OK(); }

  Status Produce(size_t max_rows, QueryPage* page, bool* done) override {
    *done = true;
    if (max_rows == 0) return Status::OK();
    GetOptions opts;
    opts.use_blocked_bloom = dataset_->options().build_blocked_bloom;
    // The tuple cache stores the validated pre-filter record (and proven
    // absences); the TimeRange predicate below applies either way, so a hit
    // is behavior-identical to the tree lookup.
    TupleCache* cache = dataset_->tuple_cache();
    bool found = false, from_cache = false;
    std::string value;
    AUXLSM_RETURN_NOT_OK(CachedPrimaryGet(cache, *dataset_->primary(),
                                          query_.primary_id(), opts, &found,
                                          &value, &from_cache));
    if (cache != nullptr) {
      if (from_cache) {
        cache_hits_++;
        if (found) cache_rows_++;
      } else {
        cache_misses_++;
      }
    }
    if (!found) return Status::OK();
    TweetRecord rec;
    AUXLSM_RETURN_NOT_OK(TweetRecord::Deserialize(value, &rec));
    if (query_.has_time_range() && (rec.creation_time < query_.time_lo() ||
                                    rec.creation_time > query_.time_hi())) {
      time_filtered_++;
      return Status::OK();
    }
    if (!query_.count_only()) page->records.push_back(std::move(rec));
    matched_++;
    return Status::OK();
  }

  void AccumulateStats(CursorStats* out) const override {
    out->time_filtered = time_filtered_;
    out->records_matched = matched_;
    out->tuple_cache_hits = cache_hits_;
    out->tuple_cache_chain_rows = cache_rows_;
    out->tuple_cache_misses = cache_misses_;
  }

 private:
  Dataset* dataset_;
  ReadQuery query_;
  uint64_t time_filtered_ = 0;
  uint64_t matched_ = 0;
  uint64_t cache_hits_ = 0;
  uint64_t cache_rows_ = 0;
  uint64_t cache_misses_ = 0;
};

}  // namespace

// ---------------------------------------------------------------------------
// QueryCursor
// ---------------------------------------------------------------------------

QueryCursor::QueryCursor(Dataset* dataset, const ReadQuery& query,
                         std::unique_ptr<QueryExecutor> executor)
    : dataset_(dataset),
      query_(query),
      executor_(std::move(executor)),
      remaining_(query.limit() == 0 ? UINT64_MAX : query.limit()) {}

QueryCursor::~QueryCursor() = default;

Status QueryCursor::Charged(const std::function<Status()>& fn) {
  IoEngine* io = dataset_->env()->io();
  MaybeIoQueueScope scope(io, query_.read_options().io_queue);
  const double before = io->stats().simulated_us;
  Status st = fn();
  stats_.io_simulated_us += io->stats().simulated_us - before;
  executor_->AccumulateStats(&stats_);
  return st;
}

Status QueryCursor::Next(QueryPage* page) {
  page->clear();
  if (done_) return Status::OK();
  obs::TraceSpan pull_span(dataset_->tracer(), "query.pull", "query",
                           query_.read_options().io_queue);
  if (dataset_->ctr_cursor_pull_ != nullptr) ++*dataset_->ctr_cursor_pull_;
  const size_t want =
      size_t(std::min<uint64_t>(query_.page_size(), remaining_));
  bool exec_done = false;
  AUXLSM_RETURN_NOT_OK(
      Charged([&] { return executor_->Produce(want, page, &exec_done); }));
  stats_.rows += page->rows();
  remaining_ -= std::min<uint64_t>(page->rows(), remaining_);
  if (exec_done || remaining_ == 0) done_ = true;
  return Status::OK();
}

Status QueryCursor::Drain(QueryResult* out) {
  QueryPage page;
  while (!done_) {
    AUXLSM_RETURN_NOT_OK(Next(&page));
    for (auto& r : page.records) out->records.push_back(std::move(r));
    for (auto& k : page.keys) out->keys.push_back(std::move(k));
  }
  out->candidates = stats_.candidates;
  out->validated_out = stats_.validated_out;
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Planning
// ---------------------------------------------------------------------------

Result<SecondaryIndex*> Dataset::secondary_by_name(std::string_view name) {
  auto it = secondary_catalog_.find(std::string(name));
  if (it == secondary_catalog_.end()) {
    return Status::InvalidArgument("unknown secondary index: " +
                                   std::string(name));
  }
  return secondaries_[it->second].get();
}

Result<std::unique_ptr<QueryCursor>> Dataset::NewCursor(
    const ReadQuery& query) {
  std::unique_ptr<QueryExecutor> exec;
  if (query.has_primary()) {
    if (query.has_secondary() || query.has_range()) {
      return Status::InvalidArgument(
          "Primary() does not compose with Secondary()/Range()");
    }
    if (query.index_only()) {
      return Status::InvalidArgument(
          "IndexOnly() requires a secondary-index query");
    }
    exec = std::make_unique<PointLookupExecutor>(this, query);
  } else if (query.has_secondary()) {
    SecondaryIndex* index = nullptr;
    if (query.index_name().empty()) {
      if (secondaries_.empty()) {
        return Status::InvalidArgument("no secondary index");
      }
      index = secondaries_[0].get();
    } else {
      AUXLSM_ASSIGN_OR_RETURN(index, secondary_by_name(query.index_name()));
    }
    exec = MakeSecondaryQueryExecutor(this, index, query);
  } else {
    if (query.index_only()) {
      return Status::InvalidArgument(
          "IndexOnly() requires a secondary-index query");
    }
    exec = MakeFilterScanExecutor(this, query);
  }
  auto cursor = std::unique_ptr<QueryCursor>(
      new QueryCursor(this, query, std::move(exec)));
  // The snapshot capture itself may read pages (cursor seeks); charge it to
  // the cursor's queue like every later pull.
  obs::TraceSpan open_span(tracer(), "query.open", "query",
                           query.read_options().io_queue);
  if (ctr_cursor_open_ != nullptr) ++*ctr_cursor_open_;
  QueryExecutor* e = cursor->executor_.get();
  AUXLSM_RETURN_NOT_OK(cursor->Charged([e] { return e->Open(); }));
  return cursor;
}

// --- Legacy wrapper ---------------------------------------------------------

Status Dataset::GetById(uint64_t id, TweetRecord* out) {
  AUXLSM_ASSIGN_OR_RETURN(auto cursor, NewCursor(ReadQuery().Primary(id)));
  QueryResult res;
  AUXLSM_RETURN_NOT_OK(cursor->Drain(&res));
  if (res.records.empty()) return Status::NotFound("id not found");
  *out = std::move(res.records.front());
  return Status::OK();
}

}  // namespace auxlsm
