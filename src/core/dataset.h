// Dataset: the multi-index LSM storage architecture of §3 (Figure 1).
//
// A dataset owns a primary index (primary key -> record), a primary key
// index (primary keys only), and a set of secondary indexes ((secondary key,
// primary key) composed entries). All indexes share one memory budget and
// flush together, so their component IDs line up. The primary index carries
// a component-level range filter on the record's creation_time.
//
// The maintenance strategy governs how auxiliary structures are kept
// consistent under updates and deletes:
//  - kEager           anti-matter via ingestion-time point lookups (§3.1)
//  - kValidation      lazy cleanup, timestamp validation + repair (§4)
//  - kMutableBitmap   per-component validity bitmaps for the primary index
//                     and its filters, secondaries via Validation (§5)
//  - kDeletedKeyBtree AsterixDB baseline: per-secondary-component deleted-key
//                     B+-trees (§2.3/§4.1)
#pragma once

#include <atomic>
#include <memory>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <utility>

#include "common/mutex.h"
#include "common/rwlatch.h"
#include "common/thread_annotations.h"
#include <string>
#include <vector>

#include "cache/tuple_cache.h"
#include "common/clock.h"
#include "common/result.h"
#include "common/stat_counter.h"
#include "core/query_cursor.h"
#include "fault/fault_injector.h"
#include "core/read_query.h"
#include "format/record.h"
#include "lsm/lsm_tree.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "txn/recovery.h"
#include "txn/transaction.h"

namespace auxlsm {

enum class MaintenanceStrategy {
  kEager,
  kValidation,
  kMutableBitmap,
  kDeletedKeyBtree,
};

const char* StrategyName(MaintenanceStrategy s);

/// Concurrency-control method for flush/merge concurrent with bitmap writers
/// (§5.3). kNone = stop-the-world merge (the baseline in Fig 23).
enum class BuildCcMethod { kNone, kLock, kSideFile };

/// Definition of one secondary index. The extractor returns the fixed-width
/// encoded secondary key of a record.
struct SecondaryIndexDef {
  std::string name = "sk";
  size_t sk_width = 8;
  std::function<std::string(const TweetRecord&)> extract;

  /// The paper's default secondary index on user_id.
  static SecondaryIndexDef UserId();
  /// Synthetic extra attributes for the multi-index scalability experiments
  /// (Fig 15b / Fig 22): a per-index deterministic mix of the user id.
  static SecondaryIndexDef SyntheticAttribute(size_t index_no);
};

struct DatasetOptions {
  MaintenanceStrategy strategy = MaintenanceStrategy::kEager;
  std::vector<SecondaryIndexDef> secondary_indexes = {
      SecondaryIndexDef::UserId()};

  /// Shared memory-component budget across all indexes (§2.2).
  size_t mem_budget_bytes = 4u << 20;
  double bloom_fpr = 0.01;
  bool build_blocked_bloom = true;

  /// Build the primary key index (Fig 13 toggles this off).
  bool enable_primary_key_index = true;
  /// Maintain the creation_time range filter on the primary index.
  bool maintain_range_filter = true;

  /// Per-index merge policy; default tiering with ratio 1.2 (§6.1).
  double merge_size_ratio = 1.2;
  uint64_t max_mergeable_bytes = 64u << 20;
  /// Correlated merge policy (§4.4): synchronize merges of all indexes with
  /// the primary key index.
  bool correlated_merges = false;

  // --- Validation strategy -------------------------------------------------
  /// Repair secondary indexes as part of merges (§4.4).
  bool merge_repair = false;
  /// Bloom filter repair optimization (§4.4); effective with correlated
  /// merges.
  bool repair_bloom_opt = false;

  // --- Mutable-bitmap strategy ----------------------------------------------
  BuildCcMethod build_cc = BuildCcMethod::kNone;

  bool enable_wal = true;
  uint32_t scan_readahead_pages = 32;  ///< scaled equivalent of the paper's 4 MB read-ahead (32 pages of 128 KB)

  /// Queues of the dedicated log device (io/io_engine.h). 1 = the legacy
  /// single-head log model. With more queues, group-commit syncs are charged
  /// to the leader's bound log queue (bind committer threads with
  /// IoQueueScope on wal()->io()) and overlap in modeled time.
  uint32_t log_queues = 1;

  // --- Maintenance engine (exec/maintenance.h) ------------------------------
  /// Threads used to run the indexes' flushes and merges concurrently.
  /// 0 = one per hardware thread; 1 = the legacy serial path (identical
  /// behavior to builds without the engine).
  size_t maintenance_threads = 0;
  /// Merges of at least this many input bytes are additionally split into
  /// key-range partitions scanned in parallel (0 disables partitioning).
  uint64_t merge_partition_min_bytes = 8u << 20;

  // --- Concurrent ingestion pipeline (PR 2) ---------------------------------
  /// Number of writer threads the dataset is tuned for. 1 = the legacy
  /// serial write path (budget overruns flush and merge inline on the
  /// ingesting thread under the exclusive ingest latch; no WAL group
  /// commit) — bit-for-bit the pre-pipeline behavior. > 1 enables the
  /// writer-group pipeline: a budget overrun seals every index's memtable
  /// under a brief exclusive latch and hands flush + merge to a background
  /// maintenance cycle, transaction commits batch their modeled log syncs
  /// through the WAL's group commit, and the Mutable-bitmap strategy's
  /// merges run under the §5.3 concurrency-control method selected by
  /// `build_cc` (kNone = stop-the-world merge, the Fig 23 baseline).
  size_t writer_threads = 1;

  // --- Decoupled merge scheduling (PR 5) ------------------------------------
  /// 0 (default) = legacy coupled maintenance: each background cycle runs
  /// seal -> flush -> install -> merges end-to-end, so a long merge phase
  /// delays the next seal and writers hit the 2x-budget backpressure for the
  /// whole merge's duration — bit-for-bit the pre-decoupling behavior.
  /// > 0 (with writer_threads > 1): the cycle stops after install and hands
  /// merge work to per-tree merge queues drained by the MaintenanceScheduler
  /// (exec/maintenance.h). A backlogged merge on one tree then never blocks
  /// the next seal/install or other trees' merges (per-tree merges stay
  /// mutually serial), so per-op ingest stalls are bounded by flush — not
  /// merge — time. The value is the backpressure depth: writers stall once
  /// the merge queues fall more than `merge_queue_depth` flush rounds
  /// behind, replacing the raw 2x-budget wait-for-the-whole-cycle.
  size_t merge_queue_depth = 0;

  /// Serial-path no-steal (writer_threads == 1): the legacy inline
  /// budget-triggered flush can run *between an open explicit transaction's
  /// operations* and flush its uncommitted entries to disk — a rollback then
  /// cannot reach them (the pipeline path already defers sealing while
  /// explicit transactions are open). true defers the inline flush the same
  /// way; false keeps the seed behavior for bit-for-bit parity.
  bool strict_no_steal = false;

  // --- Robustness (PR 6) ----------------------------------------------------
  /// Optional fault injector threaded through every modeled-storage seam
  /// (fault/fault_injector.h). Must outlive the Dataset AND the Env — the
  /// same injector instance should be handed to EnvOptions::fault_injector
  /// so the Env/cache/IO sites and the maintenance sites fire consistently.
  /// Null (default) disables injection entirely (a pure branch per site).
  FaultInjector* fault_injector = nullptr;
  /// Transient-failure retry budget for maintenance steps (flush builds,
  /// installs, merges, merge-queue jobs): a step failing with a retryable
  /// Status (Status::retryable(): IOError / Busy) is re-run up to this many
  /// times before the round is abandoned. 0 = fail fast on first error.
  /// Permanent errors (Corruption, Aborted, ...) never retry.
  uint32_t maintenance_retry_limit = 3;
  /// Base backoff charged between maintenance retries, doubled per attempt
  /// (modeled clock when the Env has one; also a real sleep bound for the
  /// background thread so a fault storm cannot spin a core).
  uint64_t retry_backoff_us = 50;

  // --- Interval tuple cache (PR 7) ------------------------------------------
  /// Byte budget of the validated-tuple cache (cache/tuple_cache.h) that
  /// serves hot point lookups and chain-linked range/secondary queries above
  /// the LSM trees. 0 (default) disables the cache entirely — no cache
  /// object is created, every read site reduces to a null-pointer branch,
  /// and all results, counters, and modeled I/O are bit-for-bit the
  /// pre-cache behavior (the CI bench DIGEST lines pin this).
  size_t tuple_cache_bytes = 0;

  // --- Observability (PR 8) -------------------------------------------------
  /// Metrics registry (obs/metrics.h). When set, the dataset registers its
  /// latency histograms (ingest.op_modeled_ns, ingest.op_wall_ns,
  /// maintenance.*_wall_ns, wal.commit_modeled_ns, io.log.*) and
  /// MetricsSnapshot() folds the registry's metrics into its view. Hand the
  /// SAME registry to EnvOptions::metrics so the storage engine's io.storage
  /// metrics land in one place. Null (default) disables recording — one
  /// branch per site, no modeled-time or DIGEST change (armed-but-quiet,
  /// like the fault injector). Must outlive the Dataset.
  obs::MetricsRegistry* metrics = nullptr;
  /// Per-thread trace ring-buffer size (obs/trace.h). 0 (default) = no
  /// tracer. > 0 creates a Dataset-owned Tracer recording RAII spans for
  /// ingest ops, maintenance cycle steps (seal/flush_build/install/merge),
  /// merge-queue jobs, retries, WAL group-commit syncs, and per-queue
  /// IoEngine charges — each stamped with wall AND modeled time. Drain via
  /// tracer() and export with obs::Tracer::ToChromeJson (Perfetto).
  size_t trace_buffer_bytes = 0;
};

/// Dataset health for the robustness state machine (PR 6): once maintenance
/// exhausts its retry budget or hits a permanent error, the dataset degrades
/// to read-only — ingest fails fast with the sticky background error while
/// reads keep serving the installed components. TakeBackgroundError() clears
/// the degradation once every sticky error class has been taken.
enum class DatasetHealth { kHealthy, kDegraded };

/// Robustness counters (relaxed atomics, like IngestStats): retry/abandon
/// activity of the maintenance pipeline plus degraded-mode transitions.
struct MaintenanceStats {
  StatCounter transient_failures;   ///< retryable step failures observed
  StatCounter retries_attempted;    ///< re-runs issued after a transient failure
  StatCounter retries_succeeded;    ///< steps that succeeded on a retry
  StatCounter rounds_abandoned;     ///< steps given up (budget/permanent)
  StatCounter degraded_transitions; ///< kHealthy -> kDegraded edges

  /// Interval delta (same ergonomics as IoStats::operator-).
  MaintenanceStats operator-(const MaintenanceStats& o) const {
    MaintenanceStats d;
    d.transient_failures = transient_failures.load() - o.transient_failures.load();
    d.retries_attempted = retries_attempted.load() - o.retries_attempted.load();
    d.retries_succeeded = retries_succeeded.load() - o.retries_succeeded.load();
    d.rounds_abandoned = rounds_abandoned.load() - o.rounds_abandoned.load();
    d.degraded_transitions =
        degraded_transitions.load() - o.degraded_transitions.load();
    return d;
  }
};

/// Counters are relaxed atomics: they are bumped from concurrent writers
/// (shared ingest latch) and from the background maintenance cycle.
struct IngestStats {
  StatCounter inserts;
  StatCounter upserts;
  StatCounter deletes;
  StatCounter duplicates_ignored;
  StatCounter ingest_point_lookups;  ///< pre-operation lookups
  StatCounter flushes;
  StatCounter merges;
  StatCounter repairs;
};

class Dataset;

/// One secondary index: its LSM tree plus, under kDeletedKeyBtree, the
/// companion deleted-key tree whose components parallel the index's.
struct SecondaryIndex {
  SecondaryIndexDef def;
  std::unique_ptr<LsmTree> tree;
  std::unique_ptr<LsmTree> deleted_keys;  // kDeletedKeyBtree only
};

// ---------------------------------------------------------------------------
// Query plumbing lives in core/read_query.h (query descriptions, options,
// result shapes) and core/query_cursor.h (streaming cursor); the executors
// are implemented in point_lookup.cc / query.cc / scan.cc / query_cursor.cc.
// ---------------------------------------------------------------------------

/// Serializable snapshot of the dataset's component catalog; stands in for
/// the metadata a real system persists per component. Exported by
/// Checkpoint(), consumed by Dataset::Recover after a simulated crash.
struct DatasetCatalog {
  struct ComponentEntry {
    ComponentId id;
    BtreeMeta meta;
    Timestamp repaired_ts = 0;
    Lsn max_lsn = kInvalidLsn;
    bool has_range_filter = false;
    uint64_t filter_min = 0, filter_max = 0;
    bool has_bitmap = false;
    std::vector<uint64_t> bitmap_words;  ///< checkpointed bitmap contents
    uint64_t bitmap_bits = 0;
    bool shares_primary_bitmap = false;  ///< pk-index component, shared bitmap
  };
  std::vector<ComponentEntry> primary;
  std::vector<ComponentEntry> primary_key;
  std::vector<std::vector<ComponentEntry>> secondaries;
  std::vector<std::vector<ComponentEntry>> deleted_keys;
  Lsn max_component_lsn = kInvalidLsn;
  Lsn bitmap_checkpoint_lsn = kInvalidLsn;
};

class MaintenanceScheduler;
struct ConcurrentMergeStats;

class Dataset {
 public:
  Dataset(Env* env, DatasetOptions options);
  ~Dataset();

  Env* env() const { return env_; }
  const DatasetOptions& options() const { return options_; }
  LogicalClock* clock() { return &clock_; }
  Wal* wal() { return &wal_; }
  LockManager* locks() { return &locks_; }

  // --- Ingestion (auto-commit record-level transactions) --------------------
  /// Inserts a record after a key-uniqueness check; a duplicate key is
  /// ignored (sets *inserted = false).
  Status Insert(const TweetRecord& record, bool* inserted = nullptr);
  Status Upsert(const TweetRecord& record);
  Status Delete(uint64_t id);

  /// Explicit-transaction variants (§5.2's locking/abort semantics).
  std::unique_ptr<Transaction> Begin() { return txns_.Begin(); }
  Status InsertTxn(const TweetRecord& record, Transaction* txn,
                   bool* inserted);
  Status UpsertTxn(const TweetRecord& record, Transaction* txn);
  Status DeleteTxn(uint64_t id, Transaction* txn);

  // --- Queries ----------------------------------------------------------------
  /// Plans a declarative read (core/read_query.h) and opens a streaming
  /// cursor over a snapshot captured here. Fails with a proper error on an
  /// unknown index name or a contradictory description.
  Result<std::unique_ptr<QueryCursor>> NewCursor(const ReadQuery& query);

  // Legacy one-shot entry points: thin wrappers that drain a QueryCursor.
  // Results and counters are bit-identical to the pre-cursor implementations
  // (the unlimited pipeline runs in one chunk with the legacy operator
  // order), so every paper-figure series is unchanged.

  /// Primary-key point query. Query().Primary(id).
  Status GetById(uint64_t id, TweetRecord* out);

  /// Secondary-index range query on user_id in [lo_user, hi_user].
  /// Query().Secondary().Range(lo, hi) with ReadOptions::secondary = opts.
  Status QueryUserRange(uint64_t lo_user, uint64_t hi_user,
                        const SecondaryQueryOptions& opts, QueryResult* out);

  /// Range-filter scan: records with creation_time in [lo, hi] (§6.4.2).
  /// Query().TimeRange(lo, hi).CountOnly().
  Status ScanTimeRange(uint64_t lo, uint64_t hi, ScanResult* out);

  /// Full primary scan counting records with user_id in [lo_user, hi_user]
  /// (the Fig 12b "scan" baseline). Query().Range(lo, hi).CountOnly().
  Status FullScanUserRange(uint64_t lo_user, uint64_t hi_user,
                           ScanResult* out);

  // --- Maintenance -------------------------------------------------------------
  /// Flushes all indexes together (shared budget semantics) and then lets
  /// merge policies run.
  Status FlushAll();
  Status MergeAllIndexes();

  /// Joins the in-flight background maintenance cycle (writer_threads > 1),
  /// drains the decoupled merge queues, and returns the sticky first
  /// background error, if any. No-op on the serial path. Callers should
  /// quiesce writers first if they need "all data flushed" semantics rather
  /// than "the current cycle finished".
  Status WaitForMaintenance();

  /// Returns and *clears* one sticky background error per call (flush-cycle
  /// first, then merge-queue — when both failed, two calls observe both).
  /// Without this, one transient maintenance failure poisons every later
  /// ingest forever; callers that handled the error (retried, shed load)
  /// take it to re-arm the pipeline. OK() once everything is clear; degraded
  /// mode (health()) lifts once the last sticky error class is taken.
  Status TakeBackgroundError();

  /// Robustness state (PR 6): kDegraded once maintenance exhausted its retry
  /// budget or hit a permanent error. Degraded ingest fails fast with the
  /// sticky background error; reads keep serving. Cleared by taking every
  /// sticky error via TakeBackgroundError().
  DatasetHealth health() const {
    return degraded_.load(std::memory_order_acquire) ? DatasetHealth::kDegraded
                                                     : DatasetHealth::kHealthy;
  }
  /// Retry / degraded-mode counters.
  const MaintenanceStats& maintenance_stats() const { return mstats_; }

  /// Standalone repair of every secondary index (§4.4). Brings repairedTS
  /// forward; used by Fig 20-22.
  Status RepairAllSecondaries();

  /// DELI-style primary repair [31] (Fig 20-22 baseline): repairs secondary
  /// indexes by scanning (or fully merging) the primary index.
  Status PrimaryRepair(bool with_merge);

  // --- Recovery ------------------------------------------------------------------
  /// Checkpoints bitmap pages and exports the component catalog. The catalog
  /// stands in for per-component metadata that a real system persists as
  /// flushes/merges happen: it references live component files, so a catalog
  /// taken before later merges retire those files cannot be recovered from —
  /// recovery wants the catalog reflecting the component set at crash time
  /// (§2.2 "examines all valid disk components").
  DatasetCatalog Checkpoint();

  /// Rebuilds a dataset after a simulated crash: reopens components from the
  /// catalog and replays the WAL (§2.2). The WAL and Env must outlive the
  /// crash; `stats` reports replay counts.
  static Result<std::unique_ptr<Dataset>> Recover(Env* env, Wal* wal,
                                                  const DatasetCatalog& catalog,
                                                  DatasetOptions options,
                                                  RecoveryStats* stats);

  // --- Introspection ----------------------------------------------------------
  LsmTree* primary() { return primary_.get(); }
  LsmTree* primary_key_index() { return pk_index_.get(); }
  const std::vector<std::unique_ptr<SecondaryIndex>>& secondaries() const {
    return secondaries_;
  }
  /// Positional access; null when i is out of range (prefer the name-based
  /// catalog lookup below — positions are an artifact of option order).
  SecondaryIndex* secondary(size_t i) {
    return i < secondaries_.size() ? secondaries_[i].get() : nullptr;
  }
  /// Catalog lookup by index name (SecondaryIndexDef::name); a proper error
  /// on unknown names. Query planning routes index selection through this.
  Result<SecondaryIndex*> secondary_by_name(std::string_view name);
  const IngestStats& ingest_stats() const { return stats_; }
  uint64_t num_records() const;

  /// The interval tuple cache; null when tuple_cache_bytes == 0. Read sites
  /// gate on the pointer, so the disabled configuration stays bit-for-bit
  /// legacy.
  TupleCache* tuple_cache() { return tuple_cache_.get(); }
  /// Snapshot of the cache's counters (all-zero when disabled).
  TupleCacheStats tuple_cache_stats() const {
    return tuple_cache_ ? tuple_cache_->stats() : TupleCacheStats{};
  }
  /// The cache space serving secondary index i's range queries (space 0 is
  /// the primary point-lookup space).
  static uint32_t TupleCacheSpaceOf(size_t secondary_index_pos) {
    return static_cast<uint32_t>(1 + secondary_index_pos);
  }

  // --- Observability (PR 8, core/metrics_snapshot.cc) -----------------------
  /// One unified point-in-time view: every subsystem's stats struct
  /// (ingest, maintenance, WAL, storage + log I/O, page cache, tuple
  /// cache), the live backlog gauges (per-tree merge_pending_jobs and
  /// sealed memtables, maintenance pool queue depth, pending merge
  /// rounds/jobs, WAL batch occupancy), and — when DatasetOptions::metrics
  /// is attached — the registry's counters and latency histograms. Always
  /// available (pull-based; costs nothing until called).
  obs::MetricsSnapshot MetricsSnapshot();
  /// Human-readable dump of MetricsSnapshot() (the quickstart's one-call
  /// "show me what happened").
  std::string DebugString();
  /// Registers an external metrics source folded into every MetricsSnapshot()
  /// (before the registry merge) — how layers built *on top* of the dataset
  /// (the request server's service-side backlog gauges) land in the one
  /// unified view without the dataset knowing about them. Returns a handle
  /// for RemoveMetricsSource; the callback must stay valid until removed,
  /// and must not call back into MetricsSnapshot().
  uint64_t AddMetricsSource(std::function<void(obs::MetricsSnapshot*)> fn);
  void RemoveMetricsSource(uint64_t id);
  /// The dataset-owned tracer; null unless trace_buffer_bytes > 0.
  obs::Tracer* tracer() const { return tracer_.get(); }

  /// The maintenance engine; null on the fully serial path. Non-null does
  /// NOT imply a parallel pool: with merge_queue_depth > 0 (and
  /// writer_threads > 1) the scheduler is kept alive even at
  /// maintenance_threads = 1 solely for its merge queues — gate engine
  /// fan-out on engine_parallel(), never on this pointer.
  MaintenanceScheduler* maintenance() { return maintenance_.get(); }

  /// Total memory-component bytes across indexes (flush trigger input).
  size_t MemComponentBytes() const;

  // Internal: used by the concurrent-build module. Every ingestion operation
  // holds this in shared mode; the Side-file builder takes it exclusively
  // during its initialization and catchup phases (the "S lock dataset" of
  // Fig 11 — draining ongoing operations).
  RwLatch& ingest_latch() { return ingest_mu_; }

 private:
  friend class SecondaryQueryExecutor;
  friend class FilterScanExecutor;
  friend class QueryCursor;  // cursor open/pull observability counters
  friend Status RunMergeRepair(Dataset* dataset, SecondaryIndex* index,
                               const std::vector<DiskComponentPtr>& picked);
  friend Status RunStandaloneRepair(Dataset* dataset, SecondaryIndex* index);
  friend Status ConcurrentMergePicked(Dataset* dataset,
                                      const std::vector<DiskComponentPtr>&,
                                      const std::vector<DiskComponentPtr>&,
                                      BuildCcMethod, ConcurrentMergeStats*,
                                      bool);

  /// Lock-only internal transaction excluded from the no-steal active count
  /// (the §5.3 Lock-method builder): it has no memtable effects, so sealing
  /// while it runs is safe and must not be deferred. Deliberately NOT public
  /// — a write transaction begun this way would be flushable mid-flight,
  /// breaking the no-steal invariant its rollback relies on.
  std::unique_ptr<Transaction> BeginReadOnly() {
    return txns_.BeginReadOnly();
  }

  // ingest.cc
  Status IngestOp(LogRecordType op, const TweetRecord& record,
                  Transaction* txn, bool* inserted, bool log_to_wal);
  /// Recovery redo of a data operation (uses the record's original ts, no
  /// WAL logging, no locks).
  Status ReplayOp(const LogRecord& r, const TweetRecord& record);
  /// Recovery redo of a bitmap mutation for a record whose data already
  /// resides in disk components (update bit, §5.2).
  Status ReplayBitmap(const LogRecord& r);
  // The strategy upsert helpers and the cache cut below run with the ingest
  // latch held shared: they mutate memtables and component bitmaps that the
  // seal/install phases swap under the exclusive latch. IngestOp holds the
  // guard across the whole operation; ReplayOp takes it itself (recovery is
  // single-threaded, but the invariant is uniform either way).
  Status EagerUpsert(const TweetRecord& record, Timestamp ts,
                     Transaction* txn, bool is_delete)
      REQUIRES_SHARED(ingest_mu_);
  Status ValidationUpsert(const TweetRecord& record, Timestamp ts,
                          Transaction* txn, bool is_delete)
      REQUIRES_SHARED(ingest_mu_);
  Status MutableBitmapUpsert(const TweetRecord& record, Timestamp ts,
                             Transaction* txn, bool is_delete,
                             bool* update_bit) REQUIRES_SHARED(ingest_mu_);
  Status DeletedKeyUpsert(const TweetRecord& record, Timestamp ts,
                          Transaction* txn, bool is_delete)
      REQUIRES_SHARED(ingest_mu_);
  Status InsertIntoAll(const TweetRecord& record, Timestamp ts,
                       Transaction* txn) REQUIRES_SHARED(ingest_mu_);
  /// Cuts every tuple-cache entry the write could have stale-served: the
  /// record's primary key (which fences all range spaces — the *old*
  /// secondary keys are unknown under the lazy strategies) plus, for
  /// non-deletes, the new secondary key positions. Called under the shared
  /// ingest latch AFTER the memtable effects are visible; no-op when the
  /// cache is disabled.
  void InvalidateTupleCache(const TweetRecord& record, LogRecordType op)
      REQUIRES_SHARED(ingest_mu_);
  /// `in_explicit_txn` = the calling thread holds an open explicit
  /// transaction (and with it record locks): it must never park on
  /// maintenance backpressure, because the merge it would wait for may
  /// itself be blocked on one of its locks (§5.3 Lock-method builder) — a
  /// deadlock no timeout would break.
  Status CheckBudgetAndMaintain(bool in_explicit_txn);

  // --- Writer-group pipeline (ingest.cc / dataset.cc) ----------------------
  bool multi_writer() const { return options_.writer_threads > 1; }
  /// Decoupled merge scheduling is on: flush cycles enqueue merge work onto
  /// the scheduler's per-tree queues instead of running it inline.
  bool merge_queues_enabled() const {
    return options_.merge_queue_depth > 0 && multi_writer() &&
           maintenance_ != nullptr;
  }
  /// True when the maintenance engine fans work out over a pool (a scheduler
  /// kept solely for its merge queues still runs tasks inline/serially).
  bool engine_parallel() const;
  /// Every index tree of the dataset (primary, pk, secondaries, deleted-key).
  std::vector<LsmTree*> AllTrees();
  /// Launches one background maintenance cycle if the budget is exceeded and
  /// none is running; applies backpressure when writers outpace the pipeline
  /// (skipped for threads holding an open explicit transaction — see
  /// CheckBudgetAndMaintain).
  Status MaintainAsync(bool in_explicit_txn);
  /// One background cycle: seal (brief exclusive latch) -> build components
  /// off-latch -> install (exclusive latch) -> merges (inline in coupled
  /// mode; enqueued on the per-tree merge queues in decoupled mode).
  Status MaintenanceCycle();
  /// Joins only the in-flight flush cycle (not the merge queues): the
  /// decoupled pipeline's 2x-budget wait, bounded by flush time.
  Status JoinFlushCycle();
  /// Decoupled mode: hands this cycle's merge work to the scheduler's
  /// per-tree queues as one round (one job per tree / correlated group).
  void EnqueueMergeWork();
  /// Mutable-bitmap only: marks entries of the freshly flushed primary
  /// component that are superseded by newer active-memtable writes (their
  /// delete/upsert raced the sealed window). Caller holds the latch. The
  /// superseding writes were recorded in pending_bitmap_fixups_ as they
  /// happened (MutableBitmapUpsert found the old version in a *sealed*
  /// memtable), so the fixup costs O(recorded deletes) B-tree probes rather
  /// than O(|active memtable| log n) under the exclusive latch.
  Status FixupFlushedBitmap() REQUIRES(ingest_mu_);
  /// Records a seal-window superseding write for the next fixup.
  void RecordBitmapFixup(const std::string& pk, Timestamp ts);

  // dataset.cc
  Status FlushAllLocked() REQUIRES(ingest_mu_);
  Status RunMerges();
  Status ParallelMerges();
  /// Correlated merge rounds (§4.4). `decoupled` = running as a merge-queue
  /// job concurrent with flush installs: each round's range pick and
  /// per-tree component slices are captured under a brief *shared* ingest
  /// latch (installs hold it exclusively, so the positional alignment across
  /// trees is consistent), and the merges install by identity, which
  /// tolerates components prepended meanwhile.
  Status CorrelatedMerge(bool decoupled = false);
  /// Merge-repair merges for one secondary index until its policy is
  /// satisfied (Validation strategy, §4.4). Shared by the serial and
  /// parallel engines so their behavior cannot drift.
  Status MergeRepairToPolicy(SecondaryIndex* index, uint64_t* merges,
                             uint64_t* repairs);
  /// Deleted-key merges for one secondary index until its policy is
  /// satisfied (kDeletedKeyBtree, §4.1). `decoupled` = running as a
  /// merge-queue job: picks are captured under a brief shared ingest latch
  /// (see CorrelatedMerge).
  Status DeletedKeyMergesToPolicy(SecondaryIndex* index, uint64_t* merges,
                                  bool decoupled = false);
  /// Strategy dispatch for one secondary index's non-correlated merges
  /// (merge repair / deleted-key / plain). Shared by ParallelMerges and the
  /// decoupled merge-queue jobs so their behavior cannot drift. Requires the
  /// maintenance engine.
  Status SecondaryMergesToPolicy(SecondaryIndex* index, uint64_t* merges,
                                 uint64_t* repairs, bool decoupled);
  /// Evaluates the dataset-level tiering policy (merge_size_ratio /
  /// max_mergeable_bytes) over a component snapshot. Shared by the
  /// correlated and deleted-key pick paths so their policy cannot drift.
  MergeRange PickTieringRange(
      const std::vector<DiskComponentPtr>& comps) const;
  LsmTreeOptions MakeTreeOptions(const std::string& name, bool is_primary,
                                 bool attach_bitmap, bool range_filter) const;

  // --- Robustness helpers (dataset.cc) --------------------------------------
  /// Runs `fn` with bounded retry-on-transient: a Status::retryable() failure
  /// is re-run up to maintenance_retry_limit times with exponential backoff
  /// (retry_backoff_us, modeled + real); permanent errors and exhausted
  /// budgets return immediately with `what` prefixed as context. Updates
  /// mstats_.
  Status RunWithRetry(const std::string& what,
                      const std::function<Status()>& fn);
  /// Marks the dataset degraded and stores `cause` as the sticky flush-cycle
  /// error if none is stored yet.
  void MarkDegraded(const Status& cause);
  /// Flag-only degraded transition: used when the sticky error lives in the
  /// merge scheduler (TakeMergeError would double-report a copied status).
  void MarkDegraded();
  /// The error degraded ingest fails with (a peek at the sticky state —
  /// does NOT clear it; callers clear via TakeBackgroundError).
  Status DegradedError();

  Env* const env_;
  DatasetOptions options_;
  LogicalClock clock_;
  LockManager locks_;
  Wal wal_;
  TransactionManager txns_;

  std::unique_ptr<LsmTree> primary_;
  std::unique_ptr<LsmTree> pk_index_;
  std::vector<std::unique_ptr<SecondaryIndex>> secondaries_;
  /// Name -> position catalog for secondary_by_name (first definition wins
  /// if options carry duplicate names). Immutable after construction.
  std::unordered_map<std::string, size_t> secondary_catalog_;
  std::unique_ptr<MaintenanceScheduler> maintenance_;
  std::unique_ptr<TupleCache> tuple_cache_;  // null when disabled

  // Observability (PR 8). The tracer is dataset-owned and detached from the
  // engines in the destructor; histogram pointers are cached at construction
  // (null when no registry) so hot paths record with one branch + one
  // relaxed RMW.
  std::unique_ptr<obs::Tracer> tracer_;
  obs::Histogram* hist_ingest_modeled_ = nullptr;  ///< ingest.op_modeled_ns
  obs::Histogram* hist_ingest_wall_ = nullptr;     ///< ingest.op_wall_ns
  obs::Histogram* hist_cycle_wall_ = nullptr;      ///< maintenance.cycle_wall_ns
  obs::Histogram* hist_flush_build_wall_ = nullptr;  ///< maintenance.flush_build_wall_ns
  obs::Histogram* hist_merge_job_wall_ = nullptr;  ///< maintenance.merge_job_wall_ns
  StatCounter* ctr_cursor_open_ = nullptr;         ///< query.cursors_opened
  StatCounter* ctr_cursor_pull_ = nullptr;         ///< query.pages_pulled

  /// The ingest latch (rank kIngestLatch — the shallowest rank: every other
  /// engine lock may be taken under it, never the reverse). Shared by every
  /// ingestion operation; exclusive for seal/install/stop-the-world merges
  /// and the Side-file builder's catchup.
  RwLatch ingest_mu_{lockrank::kIngestLatch, "dataset.ingest"};
  IngestStats stats_;
  Lsn bitmap_checkpoint_lsn_ = kInvalidLsn;

  // Seal-window delete side-list (Mutable-bitmap): writes that superseded an
  // old version sitting in a sealed memtable, keyed (pk, ts). Appended under
  // the shared ingest latch; drained by FixupFlushedBitmap under the
  // exclusive latch at install time.
  Mutex fixup_mu_{lockrank::kLeaf, "dataset.fixup"};
  std::vector<std::pair<std::string, Timestamp>> pending_bitmap_fixups_
      GUARDED_BY(fixup_mu_);

  // Background maintenance cycle (writer_threads > 1). bg_active_ admits one
  // cycle at a time; bg_mu_ guards the thread handle and the sticky first
  // error. The thread is joined by WaitForMaintenance / the next launch /
  // the destructor. Rank kLeaf: taken under the exclusive ingest latch
  // (MarkDegraded on the serial inline path) with nothing nested inside.
  Mutex bg_mu_{lockrank::kLeaf, "dataset.bg"};
  std::thread bg_thread_ GUARDED_BY(bg_mu_);
  std::atomic<bool> bg_active_{false};
  Status bg_status_ GUARDED_BY(bg_mu_);

  // Robustness state (PR 6): set on retry-budget exhaustion or permanent
  // maintenance errors; read lock-free by every ingest op.
  std::atomic<bool> degraded_{false};
  MaintenanceStats mstats_;

  // External metrics sources (PR 9): folded into MetricsSnapshot(). The
  // mutex is unranked: the callbacks it is held across are caller-supplied
  // (they read gauges, which may take arbitrary unrelated locks).
  Mutex metrics_sources_mu_;
  uint64_t next_metrics_source_id_ GUARDED_BY(metrics_sources_mu_) = 1;
  std::vector<std::pair<uint64_t, std::function<void(obs::MetricsSnapshot*)>>>
      metrics_sources_ GUARDED_BY(metrics_sources_mu_);
};

// repair.cc — exposed for tests and benchmarks.
Status RunMergeRepair(Dataset* dataset, SecondaryIndex* index,
                      const std::vector<DiskComponentPtr>& picked);
Status RunStandaloneRepair(Dataset* dataset, SecondaryIndex* index);

}  // namespace auxlsm
