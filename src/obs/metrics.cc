#include "obs/metrics.h"

#include <cctype>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <sstream>

namespace auxlsm {
namespace obs {

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot s;
  uint64_t counts[kNumBuckets];
  for (size_t i = 0; i < kNumBuckets; ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
    s.count += counts[i];
  }
  s.sum = sum_.load(std::memory_order_relaxed);
  s.max = max_.load(std::memory_order_relaxed);
  if (s.count == 0) return s;
  // Nearest-rank percentiles over bucket upper bounds.
  const struct {
    double q;
    uint64_t* out;
  } wanted[] = {{0.50, &s.p50}, {0.90, &s.p90}, {0.99, &s.p99}};
  for (const auto& w : wanted) {
    uint64_t rank = uint64_t(std::ceil(w.q * double(s.count)));
    if (rank == 0) rank = 1;
    uint64_t seen = 0;
    for (size_t i = 0; i < kNumBuckets; ++i) {
      seen += counts[i];
      if (seen >= rank) {
        uint64_t v = BucketUpper(i);
        *w.out = v < s.max ? v : s.max;
        break;
      }
    }
  }
  return s;
}

Counter* MetricsRegistry::counter(const std::string& name) {
  MutexLock l(mu_);
  auto& slot = counters_[name];
  if (!slot) slot.reset(new Counter());
  return slot.get();
}

Histogram* MetricsRegistry::histogram(const std::string& name) {
  MutexLock l(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot.reset(new Histogram());
  return slot.get();
}

void MetricsRegistry::SetGauge(const std::string& name,
                               std::function<double()> fn) {
  MutexLock l(mu_);
  gauges_[name] = std::move(fn);
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot s;
  MutexLock l(mu_);
  for (const auto& kv : counters_) s.values[kv.first] = double(kv.second->load());
  for (const auto& kv : gauges_) s.values[kv.first] = kv.second();
  for (const auto& kv : histograms_) s.histograms[kv.first] = kv.second->Snapshot();
  return s;
}

void MetricsSnapshot::Merge(const MetricsSnapshot& other) {
  for (const auto& kv : other.values) values[kv.first] = kv.second;
  for (const auto& kv : other.histograms) histograms[kv.first] = kv.second;
}

namespace {

void AppendJsonString(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

// Stable scalar formatting: integers print without a fraction so counter
// values round-trip exactly; everything else uses %.6g.
void AppendJsonNumber(std::string* out, double v) {
  char buf[40];
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
  } else if (std::isfinite(v)) {
    std::snprintf(buf, sizeof(buf), "%.6g", v);
  } else {
    std::snprintf(buf, sizeof(buf), "0");
  }
  *out += buf;
}

void AppendU64(std::string* out, uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  *out += buf;
}

// --- Minimal JSON reader -----------------------------------------------------
// Handles exactly the subset ToJson() (and the Chrome trace exporter) emit:
// objects, arrays, strings with the escapes above, numbers, true/false/null.
struct JsonReader {
  const char* p;
  const char* end;

  explicit JsonReader(const std::string& s) : p(s.data()), end(s.data() + s.size()) {}

  void SkipWs() {
    while (p < end && std::isspace(static_cast<unsigned char>(*p))) ++p;
  }
  bool Consume(char c) {
    SkipWs();
    if (p < end && *p == c) {
      ++p;
      return true;
    }
    return false;
  }
  bool Peek(char c) {
    SkipWs();
    return p < end && *p == c;
  }
  bool ParseString(std::string* out) {
    if (!Consume('"')) return false;
    out->clear();
    while (p < end && *p != '"') {
      if (*p == '\\') {
        if (p + 1 >= end) return false;
        ++p;
        switch (*p) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case 'n': out->push_back('\n'); break;
          case 't': out->push_back('\t'); break;
          case 'u': {
            if (p + 4 >= end) return false;
            unsigned v = 0;
            std::sscanf(p + 1, "%4x", &v);
            out->push_back(char(v & 0xff));
            p += 4;
            break;
          }
          default: return false;
        }
        ++p;
      } else {
        out->push_back(*p++);
      }
    }
    return Consume('"');
  }
  bool ParseNumber(double* out) {
    SkipWs();
    char* q = nullptr;
    *out = std::strtod(p, &q);
    if (q == p) return false;
    p = q;
    return true;
  }
  // Skips any value (used for unknown keys).
  bool SkipValue() {
    SkipWs();
    if (p >= end) return false;
    if (*p == '"') {
      std::string s;
      return ParseString(&s);
    }
    if (*p == '{' || *p == '[') {
      const char open = *p;
      const char close = open == '{' ? '}' : ']';
      ++p;
      SkipWs();
      if (Consume(close)) return true;
      while (true) {
        if (open == '{') {
          std::string k;
          if (!ParseString(&k) || !Consume(':')) return false;
        }
        if (!SkipValue()) return false;
        if (Consume(close)) return true;
        if (!Consume(',')) return false;
      }
    }
    if (std::strncmp(p, "true", 4) == 0) { p += 4; return true; }
    if (std::strncmp(p, "false", 5) == 0) { p += 5; return true; }
    if (std::strncmp(p, "null", 4) == 0) { p += 4; return true; }
    double d;
    return ParseNumber(&d);
  }
};

}  // namespace

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\"values\":{";
  bool first = true;
  for (const auto& kv : values) {
    if (!first) out.push_back(',');
    first = false;
    AppendJsonString(&out, kv.first);
    out.push_back(':');
    AppendJsonNumber(&out, kv.second);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& kv : histograms) {
    if (!first) out.push_back(',');
    first = false;
    AppendJsonString(&out, kv.first);
    const HistogramSnapshot& h = kv.second;
    out += ":{\"count\":";
    AppendU64(&out, h.count);
    out += ",\"sum\":";
    AppendU64(&out, h.sum);
    out += ",\"max\":";
    AppendU64(&out, h.max);
    out += ",\"p50\":";
    AppendU64(&out, h.p50);
    out += ",\"p90\":";
    AppendU64(&out, h.p90);
    out += ",\"p99\":";
    AppendU64(&out, h.p99);
    out += "}";
  }
  out += "}}";
  return out;
}

bool MetricsSnapshot::FromJson(const std::string& json, MetricsSnapshot* out) {
  *out = MetricsSnapshot();
  JsonReader r(json);
  if (!r.Consume('{')) return false;
  if (r.Consume('}')) return true;
  do {
    std::string section;
    if (!r.ParseString(&section) || !r.Consume(':')) return false;
    if (!r.Consume('{')) return false;
    if (r.Consume('}')) continue;
    do {
      std::string name;
      if (!r.ParseString(&name) || !r.Consume(':')) return false;
      if (section == "values") {
        double v;
        if (!r.ParseNumber(&v)) return false;
        out->values[name] = v;
      } else if (section == "histograms") {
        if (!r.Consume('{')) return false;
        HistogramSnapshot h;
        if (!r.Consume('}')) {
          do {
            std::string field;
            double v;
            if (!r.ParseString(&field) || !r.Consume(':') || !r.ParseNumber(&v)) {
              return false;
            }
            const uint64_t u = uint64_t(v);
            if (field == "count") h.count = u;
            else if (field == "sum") h.sum = u;
            else if (field == "max") h.max = u;
            else if (field == "p50") h.p50 = u;
            else if (field == "p90") h.p90 = u;
            else if (field == "p99") h.p99 = u;
          } while (r.Consume(','));
          if (!r.Consume('}')) return false;
        }
        out->histograms[name] = h;
      } else {
        if (!r.SkipValue()) return false;
      }
    } while (r.Consume(','));
    if (!r.Consume('}')) return false;
  } while (r.Consume(','));
  return r.Consume('}');
}

std::string MetricsSnapshot::DebugString() const {
  size_t width = 0;
  for (const auto& kv : values) width = std::max(width, kv.first.size());
  for (const auto& kv : histograms) width = std::max(width, kv.first.size());
  std::ostringstream os;
  for (const auto& kv : values) {
    os << "  " << kv.first << std::string(width - kv.first.size() + 2, ' ');
    char buf[40];
    if (kv.second == std::floor(kv.second) && std::fabs(kv.second) < 1e15) {
      std::snprintf(buf, sizeof(buf), "%.0f", kv.second);
    } else {
      std::snprintf(buf, sizeof(buf), "%.3f", kv.second);
    }
    os << buf << "\n";
  }
  for (const auto& kv : histograms) {
    const HistogramSnapshot& h = kv.second;
    os << "  " << kv.first << std::string(width - kv.first.size() + 2, ' ')
       << "count=" << h.count << " mean=" << std::fixed;
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.1f", h.mean());
    os << buf << " p50=" << h.p50 << " p90=" << h.p90 << " p99=" << h.p99
       << " max=" << h.max << "\n";
  }
  return os.str();
}

}  // namespace obs
}  // namespace auxlsm
