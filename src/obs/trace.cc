#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

namespace auxlsm {
namespace obs {

namespace {

// Monotonic per-Tracer instance ids make the thread-local buffer cache safe
// against a Tracer being destroyed and another allocated at the same
// address: ids are never reused, so a stale cache entry can never
// false-match a new tracer.
std::atomic<uint64_t> g_next_tracer_id{1};

struct TlsEntry {
  uint64_t tracer_id;
  void* buf;
};

thread_local std::vector<TlsEntry> tls_bufs;

int64_t SteadyNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

Tracer::Tracer(size_t buffer_bytes)
    : capacity_events_(std::max<size_t>(16, buffer_bytes / sizeof(TraceEvent))),
      tracer_id_(g_next_tracer_id.fetch_add(1, std::memory_order_relaxed)),
      epoch_ns_(SteadyNowNs()) {}

Tracer::~Tracer() = default;

double Tracer::WallNowUs() const {
  return double(SteadyNowNs() - epoch_ns_) / 1000.0;
}

Tracer::ThreadBuf* Tracer::GetThreadBuf() {
  for (const TlsEntry& e : tls_bufs) {
    if (e.tracer_id == tracer_id_) return static_cast<ThreadBuf*>(e.buf);
  }
  auto buf = std::unique_ptr<ThreadBuf>(new ThreadBuf());
  buf->ring.resize(capacity_events_);
  ThreadBuf* raw = buf.get();
  {
    MutexLock l(reg_mu_);
    raw->tid = next_tid_++;
    bufs_.push_back(std::move(buf));
  }
  tls_bufs.push_back({tracer_id_, raw});
  return raw;
}

void Tracer::Record(TraceEvent ev) {
  ThreadBuf* b = GetThreadBuf();
  ev.tid = b->tid;
  MutexLock l(b->mu);
  if (b->wrapped) dropped_.fetch_add(1, std::memory_order_relaxed);
  b->ring[b->next] = ev;
  b->next = (b->next + 1) % capacity_events_;
  if (b->next == 0) b->wrapped = true;
}

void Tracer::Instant(const char* name, const char* cat, int32_t queue) {
  TraceEvent ev;
  ev.SetName(name);
  ev.cat = cat;
  ev.queue = queue;
  ev.instant = true;
  ev.wall_ts_us = WallNowUs();
  ev.modeled_ts_us = ModeledNowUs();
  Record(ev);
}

std::vector<TraceEvent> Tracer::Drain() {
  std::vector<TraceEvent> out;
  MutexLock l(reg_mu_);
  for (auto& bp : bufs_) {
    ThreadBuf* b = bp.get();
    MutexLock bl(b->mu);
    if (b->wrapped) {
      // Oldest-first: [next, end) then [0, next).
      out.insert(out.end(), b->ring.begin() + long(b->next), b->ring.end());
    }
    out.insert(out.end(), b->ring.begin(), b->ring.begin() + long(b->next));
    b->next = 0;
    b->wrapped = false;
  }
  return out;
}

std::string Tracer::ToChromeJson(const std::vector<TraceEvent>& events) {
  std::vector<const TraceEvent*> sorted;
  sorted.reserve(events.size());
  for (const auto& e : events) sorted.push_back(&e);
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const TraceEvent* a, const TraceEvent* b) {
                     return a->wall_ts_us < b->wall_ts_us;
                   });
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  char buf[512];
  bool first = true;
  for (const TraceEvent* e : sorted) {
    if (!first) out.push_back(',');
    first = false;
    if (e->instant) {
      std::snprintf(buf, sizeof(buf),
                    "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"i\",\"s\":\"t\","
                    "\"pid\":1,\"tid\":%u,\"ts\":%.3f,"
                    "\"args\":{\"modeled_ts_us\":%.3f,\"queue\":%d}}",
                    e->name, e->cat, e->tid, e->wall_ts_us, e->modeled_ts_us,
                    int(e->queue));
    } else {
      std::snprintf(buf, sizeof(buf),
                    "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"pid\":1,"
                    "\"tid\":%u,\"ts\":%.3f,\"dur\":%.3f,"
                    "\"args\":{\"modeled_ts_us\":%.3f,\"modeled_dur_us\":%.3f,"
                    "\"queue\":%d}}",
                    e->name, e->cat, e->tid, e->wall_ts_us, e->wall_dur_us,
                    e->modeled_ts_us, e->modeled_dur_us, int(e->queue));
    }
    out += buf;
  }
  out += "]}";
  return out;
}

}  // namespace obs
}  // namespace auxlsm
