// Unified observability: process-wide metrics registry (PR 8).
//
// The system grew seven per-subsystem stats structs (IngestStats,
// MaintenanceStats, WalStats, IoStats, BufferCacheStats, TupleCacheStats,
// FaultSiteStats) with no single place to ask production questions: what is
// p99 ingest latency, which merge queue is backlogged, is the cache earning
// its bytes? This header provides the shared vocabulary:
//
//   - Counter: a relaxed-atomic monotone count (StatCounter re-exported).
//   - Histogram: log-bucketed latency histogram. Recording is one relaxed
//     fetch_add on a bucket plus count/sum updates and a CAS max — lock-free
//     and wait-free on the hot path, safe from any thread. Readout computes
//     nearest-rank p50/p90/p99 from bucket upper bounds, so percentiles are
//     deterministic and overestimate by at most one bucket width (<= 25%
//     relative; exact below kExactLimit).
//   - MetricsRegistry: name -> metric, get-or-create under a mutex at
//     registration time only; callers cache the returned pointer and record
//     through it without further synchronization. Gauges are registered as
//     callbacks and evaluated at Snapshot() time (pull model, zero hot-path
//     cost).
//   - MetricsSnapshot: a point-in-time map of scalar values and histogram
//     summaries with a stable (sorted-key) JSON serialization. This is also
//     the type Dataset::MetricsSnapshot() returns after folding every
//     existing stats struct and live backlog gauge into one view.
//
// Armed-but-quiet contract (same as the fault injector's): a wired-up but
// idle registry must not change a single DIGEST line. Recording never
// charges modeled time and never takes a lock, and every instrumentation
// site is a single branch on a cached pointer when the registry is absent.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "common/mutex.h"
#include "common/stat_counter.h"
#include "common/thread_annotations.h"

namespace auxlsm {
namespace obs {

using Counter = StatCounter;

/// Summary of a Histogram at one point in time. Percentiles are bucket
/// upper bounds (deterministic, slight overestimate); `max` is exact.
struct HistogramSnapshot {
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t max = 0;
  uint64_t p50 = 0;
  uint64_t p90 = 0;
  uint64_t p99 = 0;

  double mean() const { return count == 0 ? 0.0 : double(sum) / double(count); }
};

/// Log-bucketed histogram over uint64 values (by convention: nanoseconds,
/// metric names carry a `_ns` suffix). Values below kExactLimit land in
/// exact unit buckets; above, buckets are power-of-two octaves split into
/// 4 linear sub-buckets (<= 25% relative width). Recording is relaxed-atomic
/// and lock-free; Snapshot() reads relaxed too and is meant for quiescent or
/// approximate readout, which is all a monitoring poll needs.
class Histogram {
 public:
  static constexpr uint64_t kExactLimit = 8;  // values < 8 are exact
  static constexpr size_t kNumBuckets = 252;  // covers full uint64 range

  Histogram() {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  }

  void Record(uint64_t value) {
    buckets_[BucketOf(value)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    uint64_t prev = max_.load(std::memory_order_relaxed);
    while (prev < value &&
           !max_.compare_exchange_weak(prev, value, std::memory_order_relaxed)) {
    }
  }

  /// Bucket index of a value (exposed for tests).
  static size_t BucketOf(uint64_t v) {
    if (v < kExactLimit) return size_t(v);
    // Highest set bit o >= 3; 2 following bits pick the sub-bucket.
    int o = 63;
    while (!(v >> o & 1)) --o;
    const uint64_t sub = (v >> (o - 2)) & 3;
    const size_t idx = size_t(o - 3) * 4 + size_t(sub) + kExactLimit;
    return idx < kNumBuckets ? idx : kNumBuckets - 1;
  }

  /// Inclusive upper bound of a bucket — the representative value used for
  /// percentile readout (exposed for tests).
  static uint64_t BucketUpper(size_t idx) {
    if (idx < kExactLimit) return uint64_t(idx);
    const size_t k = idx - kExactLimit;
    const int o = int(k / 4) + 3;
    const uint64_t sub = k % 4;
    const uint64_t lower = (4 + sub) << (o - 2);
    return lower + ((uint64_t(1) << (o - 2)) - 1);
  }

  HistogramSnapshot Snapshot() const;

 private:
  std::atomic<uint64_t> buckets_[kNumBuckets];
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> max_{0};
};

/// Point-in-time view: scalar values (counters + gauges) and histogram
/// summaries, both sorted by name. ToJson() is stable (map ordering, fixed
/// number formatting) so snapshots diff cleanly across runs.
struct MetricsSnapshot {
  std::map<std::string, double> values;
  std::map<std::string, HistogramSnapshot> histograms;

  void Set(const std::string& name, double v) { values[name] = v; }

  /// Merges `other` into this snapshot (other wins on name collision).
  void Merge(const MetricsSnapshot& other);

  std::string ToJson() const;
  /// Parses a string produced by ToJson(). Returns false on malformed
  /// input. Round-trips exactly for the grammar ToJson() emits.
  static bool FromJson(const std::string& json, MetricsSnapshot* out);

  /// Human-readable multi-line dump (name-aligned, histograms on one line).
  std::string DebugString() const;
};

/// Named metric registry. Registration (counter()/histogram()/SetGauge())
/// takes a mutex; returned pointers are stable for the registry's lifetime,
/// so hot paths cache them once and record lock-free thereafter. The
/// registry is plumbed by raw pointer (EnvOptions::metrics,
/// DatasetOptions::metrics) like FaultInjector: the caller owns it and it
/// must outlive every component it is attached to.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* counter(const std::string& name);
  Histogram* histogram(const std::string& name);
  /// Registers (or replaces) a gauge callback, evaluated at Snapshot time.
  void SetGauge(const std::string& name, std::function<double()> fn);

  MetricsSnapshot Snapshot() const;

 private:
  // Unranked on purpose: Snapshot() evaluates caller-supplied gauge
  // callbacks under mu_, and those callbacks may take ranked engine locks
  // (e.g. a merge-backlog gauge reading the scheduler's queue mutex).
  mutable Mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_ GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      GUARDED_BY(mu_);
  std::map<std::string, std::function<double()>> gauges_ GUARDED_BY(mu_);
};

}  // namespace obs
}  // namespace auxlsm
