// Trace spans with dual clocks (PR 8).
//
// The interesting question about a maintenance cycle is usually *shape*,
// not totals: did the per-tree flush builds actually overlap, which queue
// did a merge charge, how long did writers stall behind a WAL group-commit
// sync? A Tracer records RAII TraceSpans into per-thread bounded ring
// buffers and exports Chrome trace-event JSON that Perfetto (or
// chrome://tracing) renders as a timeline: seal -> per-tree flush builds ->
// install -> decoupled merge jobs, with WAL syncs and per-queue IoEngine
// charges as nested/instant events.
//
// Every span carries TWO timelines:
//   - wall time: steady_clock microseconds since the tracer's epoch. This
//     is what the Chrome `ts`/`dur` fields use, so the timeline shows real
//     thread overlap.
//   - modeled time: the virtual DiskModel clock of the thread's bound
//     I/O queue (via the modeled-clock callback), stamped at span start and
//     end and exported in `args.modeled_*`. This is what the DIGEST lines
//     are made of, so a span can show "2 us of wall, 3400 us modeled".
//
// Ring semantics: `buffer_bytes` bounds EACH thread's ring (in whole
// events, minimum 16). When a ring is full the oldest event is overwritten
// and `dropped()` counts it — tracing a long run keeps the most recent
// window instead of failing or growing without bound. Recording takes a
// per-thread mutex that is uncontended except against a concurrent Drain().
//
// Armed-but-quiet: recording never charges modeled time; with
// DatasetOptions::trace_buffer_bytes == 0 no Tracer exists and every
// instrumentation site is a null-pointer branch.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace auxlsm {
namespace obs {

/// One recorded event. `name` is copied (bounded) so callers may pass
/// ephemeral strings like "flush_build(user_id)"; `cat` must be a string
/// literal.
struct TraceEvent {
  static constexpr size_t kNameCap = 48;

  char name[kNameCap] = {0};
  const char* cat = "";
  double wall_ts_us = 0;     ///< since tracer epoch
  double wall_dur_us = 0;    ///< 0 for instant events
  double modeled_ts_us = 0;  ///< bound-queue virtual clock at start
  double modeled_dur_us = 0;
  int32_t queue = -1;  ///< device queue, when meaningful
  uint32_t tid = 0;    ///< tracer-assigned sequential thread id
  bool instant = false;

  void SetName(const char* n) {
    std::strncpy(name, n, kNameCap - 1);
    name[kNameCap - 1] = '\0';
  }
};

class Tracer {
 public:
  /// `buffer_bytes` bounds each thread's ring buffer.
  explicit Tracer(size_t buffer_bytes);
  ~Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Callback returning the recording thread's modeled virtual clock in
  /// microseconds (typically the bound IoEngine queue's simulated_us).
  /// May be empty; modeled stamps are then 0.
  void set_modeled_clock(std::function<double()> fn) { modeled_clock_ = std::move(fn); }

  double WallNowUs() const;
  double ModeledNowUs() const { return modeled_clock_ ? modeled_clock_() : 0.0; }

  /// Records a completed event. Fills ev.tid; everything else is the
  /// caller's. Lock-free against other threads, locks only its own ring.
  void Record(TraceEvent ev);

  /// Convenience: records an instant event with current stamps.
  void Instant(const char* name, const char* cat, int32_t queue = -1);

  /// Copies out all recorded events (oldest first per thread) and clears
  /// the rings. Thread ids identify the recording threads.
  std::vector<TraceEvent> Drain();

  /// Events overwritten because a ring was full (cumulative).
  uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }

  size_t events_per_thread() const { return capacity_events_; }

  /// Chrome trace-event JSON ({"traceEvents":[...]}), sorted by wall ts.
  /// Load in Perfetto (ui.perfetto.dev) or chrome://tracing.
  static std::string ToChromeJson(const std::vector<TraceEvent>& events);

 private:
  struct ThreadBuf {
    // Unranked: only the owning thread records into its ring; the mutex
    // exists solely to serialize against a concurrent Drain().
    Mutex mu;
    std::vector<TraceEvent> ring GUARDED_BY(mu);
    size_t next GUARDED_BY(mu) = 0;
    bool wrapped GUARDED_BY(mu) = false;
    // Written once under reg_mu_ before the buffer is published; read
    // lock-free by the owning thread afterwards.
    uint32_t tid = 0;
  };

  ThreadBuf* GetThreadBuf();

  const size_t capacity_events_;
  const uint64_t tracer_id_;

  std::function<double()> modeled_clock_;
  std::atomic<uint64_t> dropped_{0};

  // Unranked; Drain() nests each ThreadBuf::mu inside it (both unranked,
  // and nothing else is ever taken under either).
  Mutex reg_mu_;
  std::vector<std::unique_ptr<ThreadBuf>> bufs_ GUARDED_BY(reg_mu_);
  uint32_t next_tid_ GUARDED_BY(reg_mu_) = 1;

  int64_t epoch_ns_ = 0;
};

/// RAII span: stamps wall + modeled clocks at construction and records a
/// complete event at destruction. Null-tracer-safe (no-op).
class TraceSpan {
 public:
  TraceSpan(Tracer* t, const char* name, const char* cat, int32_t queue = -1)
      : t_(t) {
    if (!t_) return;
    ev_.SetName(name);
    ev_.cat = cat;
    ev_.queue = queue;
    ev_.wall_ts_us = t_->WallNowUs();
    ev_.modeled_ts_us = t_->ModeledNowUs();
  }
  ~TraceSpan() {
    if (!t_) return;
    ev_.wall_dur_us = t_->WallNowUs() - ev_.wall_ts_us;
    if (!modeled_overridden_) {
      ev_.modeled_dur_us = t_->ModeledNowUs() - ev_.modeled_ts_us;
    }
    t_->Record(ev_);
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Overrides the modeled stamps (e.g. WAL sync, whose modeled window is
  /// the log-device clock rather than the thread's storage queue).
  void SetModeled(double start_us, double end_us) {
    if (!t_) return;
    ev_.modeled_ts_us = start_us;
    ev_.modeled_dur_us = end_us - start_us;
    modeled_overridden_ = true;
  }
  void set_queue(int32_t q) { ev_.queue = q; }

 private:
  friend class Tracer;
  Tracer* t_;
  TraceEvent ev_;
  bool modeled_overridden_ = false;
};

}  // namespace obs
}  // namespace auxlsm
