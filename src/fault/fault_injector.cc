#include "fault/fault_injector.h"

#include "io/io_engine.h"

namespace auxlsm {

namespace failpoints {

std::vector<const char*> AllSites() {
  return {kEnvAppendPage, kEnvReadPage, kEnvDeleteFile,  kCacheMissFill,
          kIoSubmit,      kWalAppend,   kWalSync,        kFlushBuild,
          kInstall,       kMerge,       kMergeJob,       kConcurrentBuild,
          kCacheTupleInsert, kCacheTupleInvalidate,
          kServerDecodeFrame, kServerDispatch};
}

}  // namespace failpoints

void FaultInjector::Arm(const std::string& site, FaultSpec spec) {
  MutexLock l(mu_);
  armed_[site] = ArmedSite{std::move(spec), 0};
}

void FaultInjector::Disarm(const std::string& site) {
  MutexLock l(mu_);
  armed_.erase(site);
}

void FaultInjector::DisarmAll() {
  MutexLock l(mu_);
  armed_.clear();
}

Status FaultInjector::HitLocked(const std::string& site, IoEngine* io,
                                bool parked, bool* fired) {
  *fired = false;
  if (crashed_.load(std::memory_order_acquire)) {
    // The dataset is abandoned: every storage seam fails permanently until
    // recovery resets the crash. Aborted is non-retryable by design, so
    // retry policies give up immediately instead of spinning.
    *fired = true;
    Status crashed = Status::Aborted("crashed (fault injection): " + site);
    if (parked && pending_.ok()) pending_ = crashed;
    return crashed;
  }
  auto it = armed_.find(site);
  if (it == armed_.end()) return Status::OK();
  ArmedSite& armed = it->second;
  FaultSiteStats& st = stats_[site];
  st.hits++;
  armed.hit_count++;
  bool fire;
  if (armed.spec.every_nth > 0) {
    fire = armed.hit_count % armed.spec.every_nth == 0;
  } else {
    fire = rng_.NextDouble() < armed.spec.probability;
  }
  if (!fire) return Status::OK();
  *fired = true;
  st.fires++;
  const FaultSpec spec = armed.spec;
  if (spec.one_shot) armed_.erase(it);
  switch (spec.action) {
    case FaultSpec::Action::kDelay:
      if (io != nullptr) io->ChargeDelay(spec.delay_us);
      return Status::OK();
    case FaultSpec::Action::kCrash: {
      crashed_.store(true, std::memory_order_release);
      Status crashed = Status::Aborted("crashed (fault injection): " + site);
      if (parked && pending_.ok()) pending_ = crashed;
      return crashed;
    }
    case FaultSpec::Action::kError:
    default: {
      Status err = spec.error.WithContext(site);
      if (parked && pending_.ok()) pending_ = err;
      return err;
    }
  }
}

Status FaultInjector::Hit(const std::string& site, IoEngine* io) {
  MutexLock l(mu_);
  bool fired = false;
  return HitLocked(site, io, /*parked=*/false, &fired);
}

bool FaultInjector::HitCharge(const std::string& site, IoEngine* io) {
  MutexLock l(mu_);
  bool fired = false;
  const Status st = HitLocked(site, io, /*parked=*/false, &fired);
  return fired && !st.ok();
}

bool FaultInjector::HitParked(const std::string& site, IoEngine* io) {
  MutexLock l(mu_);
  bool fired = false;
  const Status st = HitLocked(site, io, /*parked=*/true, &fired);
  return fired && !st.ok();
}

Status FaultInjector::TakePending() {
  MutexLock l(mu_);
  Status out = pending_;
  pending_ = Status::OK();
  return out;
}

void FaultInjector::ResetCrash() {
  MutexLock l(mu_);
  crashed_.store(false, std::memory_order_release);
  pending_ = Status::OK();
}

FaultSiteStats FaultInjector::site_stats(const std::string& site) const {
  MutexLock l(mu_);
  auto it = stats_.find(site);
  return it == stats_.end() ? FaultSiteStats{} : it->second;
}

uint64_t FaultInjector::TotalFires() const {
  MutexLock l(mu_);
  uint64_t total = 0;
  for (const auto& [site, st] : stats_) total += st.fires;
  return total;
}

}  // namespace auxlsm
