// Deterministic fault injection for the modeled storage stack.
//
// A FaultInjector is a seeded registry of named failpoint *sites* threaded
// through every seam where the engine touches modeled storage: Env page
// append/read/delete, BufferCache miss fills, IoEngine submissions, WAL
// append/sync, and the maintenance pipeline's build/install/merge steps
// (including decoupled merge-queue jobs). Tests arm a site with a FaultSpec
// — probability, every-Nth, or one-shot triggers; error / modeled-clock
// delay / crash actions — and the instrumented call sites consult the
// injector at runtime.
//
// Parity contract: a null injector (the default everywhere) is a single
// branch per site; an armed injector that never fires changes no behavior
// and charges no modeled time. The CI bench DIGEST lines pin this.
//
// Crash semantics: a kCrash fire marks the injector crashed. From then on
// every Status-channel site fails with Aborted (permanent — retry policies
// give up immediately), the WAL drops appends (the log ends at the crash
// point), and I/O submissions are discarded. The test then abandons the
// Dataset object, keeps the Env + WAL + catalog — exactly the crash model
// the recovery tests use — calls ResetCrash()/DisarmAll(), and recovers.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/random.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace auxlsm {

class IoEngine;

/// Registered failpoint site names. Sites are plain strings so subsystems
/// don't need a shared enum; these constants are the canonical registry.
namespace failpoints {
inline constexpr const char* kEnvAppendPage = "env.append_page";
inline constexpr const char* kEnvReadPage = "env.read_page";
inline constexpr const char* kEnvDeleteFile = "env.delete_file";
inline constexpr const char* kCacheMissFill = "cache.miss_fill";
inline constexpr const char* kIoSubmit = "io.submit";
inline constexpr const char* kWalAppend = "wal.append";
inline constexpr const char* kWalSync = "wal.sync";
inline constexpr const char* kFlushBuild = "maintenance.flush_build";
inline constexpr const char* kInstall = "maintenance.install";
inline constexpr const char* kMerge = "maintenance.merge";
inline constexpr const char* kMergeJob = "maintenance.merge_job";
inline constexpr const char* kConcurrentBuild = "maintenance.concurrent_build";
/// Tuple-cache seams (cache/tuple_cache.h, PR 7). A fired insert fault
/// drops the admission (the next read is a plain miss); a fired invalidate
/// fault makes the precise cut degrade to clearing the whole cache —
/// degraded invalidation must never leave a stale tuple servable.
inline constexpr const char* kCacheTupleInsert = "cache.tuple_insert";
inline constexpr const char* kCacheTupleInvalidate = "cache.tuple_invalidate";
/// Service-layer seams (server/, PR 9). A fired decode fault drops the
/// frame before dispatch (the client sees a per-request error response,
/// retryable when the injected Status is); a fired dispatch fault fails
/// the request before any dataset effect. Neither can leave partial
/// state — the fault matrix's error-atomicity contract extends to the
/// wire: a request answered with an error has no surviving effect.
inline constexpr const char* kServerDecodeFrame = "server.decode_frame";
inline constexpr const char* kServerDispatch = "server.dispatch";

/// Every registered site, for matrix-style test iteration.
std::vector<const char*> AllSites();
}  // namespace failpoints

/// What an armed site does when its trigger fires.
struct FaultSpec {
  enum class Action {
    kError,  ///< return / park the configured Status
    kDelay,  ///< charge delay_us to the site's modeled device clock
    kCrash,  ///< mark the injector crashed (see crash semantics above)
  };

  Action action = Action::kError;
  Status error = Status::IOError("injected fault");
  /// Trigger: when every_nth > 0 the site fires on its every_nth-th hit
  /// (and each multiple thereafter unless one_shot); otherwise each hit
  /// fires independently with `probability`.
  double probability = 1.0;
  uint64_t every_nth = 0;
  bool one_shot = false;  ///< disarm the site after its first fire
  double delay_us = 0;    ///< kDelay only

  static FaultSpec Error(Status s, double p = 1.0) {
    FaultSpec f;
    f.error = std::move(s);
    f.probability = p;
    return f;
  }
  static FaultSpec ErrorNth(Status s, uint64_t nth, bool once = true) {
    FaultSpec f;
    f.error = std::move(s);
    f.every_nth = nth;
    f.one_shot = once;
    return f;
  }
  static FaultSpec Delay(double us, double p = 1.0) {
    FaultSpec f;
    f.action = Action::kDelay;
    f.delay_us = us;
    f.probability = p;
    return f;
  }
  static FaultSpec CrashNth(uint64_t nth) {
    FaultSpec f;
    f.action = Action::kCrash;
    f.every_nth = nth;
    f.one_shot = true;
    return f;
  }
};

struct FaultSiteStats {
  uint64_t hits = 0;   ///< instrumented calls while the site was armed
  uint64_t fires = 0;  ///< hits whose trigger fired
};

class FaultInjector {
 public:
  explicit FaultInjector(uint64_t seed = 42) : rng_(seed) {}

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  void Arm(const std::string& site, FaultSpec spec);
  void Disarm(const std::string& site);
  void DisarmAll();

  /// Status-channel sites (Env, BufferCache, maintenance steps). Returns
  /// the injected error / Aborted-after-crash, or OK when nothing fires.
  /// `io` receives the kDelay charge (null = delay is a no-op).
  Status Hit(const std::string& site, IoEngine* io = nullptr);

  /// Charge-only sites with no Status channel (IoEngine::Submit): a kError
  /// fire silently discards the submission, kCrash additionally marks the
  /// crash. Returns true when the submission should be dropped.
  bool HitCharge(const std::string& site, IoEngine* io = nullptr);

  /// No-Status sites whose failures must surface later (WAL append/sync):
  /// like HitCharge, but a kError/kCrash fire also parks the Status for
  /// TakePending(). Returns true when the record/sync should be dropped.
  bool HitParked(const std::string& site, IoEngine* io = nullptr);

  /// Fetches-and-clears the Status parked by the last HitParked fire.
  Status TakePending();

  bool crashed() const { return crashed_.load(std::memory_order_acquire); }
  /// Clears the crash flag and any parked Status (recovery begins).
  void ResetCrash();

  FaultSiteStats site_stats(const std::string& site) const;
  uint64_t TotalFires() const;

 private:
  /// Evaluates a hit under mu_. Fills *fired and the action taken; returns
  /// the Status for Status-channel callers.
  Status HitLocked(const std::string& site, IoEngine* io, bool parked,
                   bool* fired) REQUIRES(mu_);

  // Unranked on purpose: instrumented sites hit the injector while holding
  // whichever subsystem lock guards the seam (wal.mu, a cache shard, ...),
  // so a fixed rank could not be both above and below them.
  mutable Mutex mu_;
  Random rng_ GUARDED_BY(mu_);
  struct ArmedSite {
    FaultSpec spec;
    uint64_t hit_count = 0;  ///< trigger counter for every_nth
  };
  std::unordered_map<std::string, ArmedSite> armed_ GUARDED_BY(mu_);
  std::unordered_map<std::string, FaultSiteStats> stats_ GUARDED_BY(mu_);
  Status pending_ GUARDED_BY(mu_);
  std::atomic<bool> crashed_{false};
};

}  // namespace auxlsm
