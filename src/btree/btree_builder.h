// Bulk loader for immutable disk B+-trees (LSM flush/merge output).
//
// Entries must be added in non-decreasing key order. Leaf pages are written
// first and contiguously (so range scans and batched lookups read the file
// sequentially), then each internal level, with the root page last.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "btree/btree_page.h"
#include "common/status.h"
#include "env/env.h"

namespace auxlsm {

/// Metadata describing a finished tree; kept in the in-memory component
/// catalog (components are immutable, so this never changes after build).
struct BtreeMeta {
  uint32_t file_id = 0;
  uint32_t root_page = 0;
  uint32_t num_pages = 0;
  uint32_t first_leaf_page = 0;  // always 0: leaves are written first
  uint32_t num_leaf_pages = 0;
  uint64_t num_entries = 0;
  uint8_t height = 1;
  std::string min_key;
  std::string max_key;
  uint64_t data_bytes = 0;  ///< sum of key+value sizes
};

class BtreeBuilder {
 public:
  /// Creates a builder writing into a fresh file of env.
  explicit BtreeBuilder(Env* env);

  /// Adds the next entry; keys must be non-decreasing.
  Status Add(const Slice& key, const Slice& value, uint64_t ts,
             bool antimatter);

  /// Flushes remaining pages and internal levels; fills *meta.
  Status Finish(BtreeMeta* meta);

  uint64_t num_entries() const { return num_entries_; }
  uint64_t data_bytes() const { return data_bytes_; }

 private:
  Status FlushLeaf();

  Env* const env_;
  const size_t page_size_;
  uint32_t file_id_;
  BtreePageBuilder leaf_builder_;
  // (first key, page no) of each page in the level being collected.
  std::vector<std::pair<std::string, uint32_t>> level_entries_;
  std::string pending_first_key_;
  bool leaf_has_entries_ = false;
  uint64_t num_entries_ = 0;
  uint64_t data_bytes_ = 0;
  std::string min_key_, max_key_;
  bool finished_ = false;
};

}  // namespace auxlsm
