#include "btree/btree_cursor.h"

namespace auxlsm {

bool StatefulBtreeCursor::Covers(size_t depth, const Slice& key) const {
  const Level& lvl = path_[depth];
  if (lvl.page.count() == 0) return false;
  // Keys at or past the page's high key belong to a later sibling.
  if (!lvl.high_key.empty() && key.compare(Slice(lvl.high_key)) >= 0) {
    return false;
  }
  if (lvl.page.is_leaf()) {
    // A key below the first key might live in an earlier leaf; within
    // [first key, high key) the leaf answers both hits and misses.
    return key.compare(lvl.page.KeyAt(0)) >= 0;
  }
  // The subtree selected at slot covers [KeyAt(slot), KeyAt(slot+1)) — the
  // right end falling back to the page's high key handled above.
  if (key.compare(lvl.page.KeyAt(lvl.slot)) < 0) {
    // Below the selected separator: an earlier sibling subtree — or, when
    // slot is 0, an earlier page unless this page is on the leftmost spine.
    if (lvl.slot > 0 || !lvl.leftmost) return false;
  }
  if (lvl.slot + 1 < lvl.page.count() &&
      key.compare(lvl.page.KeyAt(lvl.slot + 1)) >= 0) {
    return false;  // key belongs to a later sibling subtree
  }
  return true;
}

Status StatefulBtreeCursor::DescendFrom(size_t depth, const Slice& key) {
  path_.resize(depth + 1);
  while (!path_.back().page.is_leaf()) {
    Level& lvl = path_.back();
    int slot = lvl.page.UpperSlot(key);
    if (slot < 0) slot = 0;
    lvl.slot = slot;
    Level child;
    child.page_no = lvl.page.ChildAt(slot);
    child.high_key = slot + 1 < lvl.page.count()
                         ? lvl.page.KeyAt(slot + 1).ToString()
                         : lvl.high_key;
    child.leftmost = lvl.leftmost && slot == 0;
    AUXLSM_RETURN_NOT_OK(tree_->ReadPage(child.page_no, &child.page));
    path_.push_back(std::move(child));
  }
  last_leaf_pos_ = 0;
  return Status::OK();
}

Status StatefulBtreeCursor::SeekExact(const Slice& key, LeafEntry* entry,
                                      std::string* backing, bool* found) {
  uint64_t ordinal;
  return SeekExactWithOrdinal(key, entry, backing, found, &ordinal);
}

Status StatefulBtreeCursor::SeekExactWithOrdinal(const Slice& key,
                                                 LeafEntry* entry,
                                                 std::string* backing,
                                                 bool* found,
                                                 uint64_t* ordinal) {
  *found = false;
  if (tree_->meta().num_entries == 0) return Status::OK();

  if (path_.empty()) {
    Level root;
    root.page_no = tree_->meta().root_page;
    AUXLSM_RETURN_NOT_OK(tree_->ReadPage(root.page_no, &root.page));
    path_.push_back(std::move(root));
    AUXLSM_RETURN_NOT_OK(DescendFrom(0, key));
  } else if (!Covers(path_.size() - 1, key)) {
    // Climb to the lowest ancestor whose selected subtree covers the key,
    // then re-descend; fall back to the root if none covers it.
    size_t depth = path_.size() - 1;
    while (depth > 0 && !Covers(depth - 1, key)) depth--;
    AUXLSM_RETURN_NOT_OK(DescendFrom(depth == 0 ? 0 : depth - 1, key));
  }

  Level& leaf = path_.back();
  // The hint only helps non-decreasing probe sequences; a backward probe
  // restarts the gallop from the leaf's front.
  int from = last_leaf_pos_;
  if (from >= leaf.page.count() ||
      (from > 0 && key.compare(leaf.page.KeyAt(from)) < 0)) {
    from = 0;
  }
  const int slot = leaf.page.LowerBoundFrom(key, from);
  last_leaf_pos_ = slot < leaf.page.count() ? slot : leaf.page.count() - 1;
  if (slot >= leaf.page.count() || leaf.page.KeyAt(slot) != key) {
    return Status::OK();
  }
  LeafEntry e;
  AUXLSM_RETURN_NOT_OK(leaf.page.LeafEntryAt(slot, &e));
  backing->assign(e.key.data(), e.key.size());
  const size_t klen = e.key.size();
  backing->append(e.value.data(), e.value.size());
  entry->key = Slice(backing->data(), klen);
  entry->value = Slice(backing->data() + klen, e.value.size());
  entry->ts = e.ts;
  entry->antimatter = e.antimatter;
  *ordinal = uint64_t{leaf.page.first_ordinal()} + static_cast<uint64_t>(slot);
  *found = true;
  return Status::OK();
}

}  // namespace auxlsm
