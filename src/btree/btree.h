// Read side of the immutable disk B+-tree: point lookups, range iteration.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "btree/btree_builder.h"
#include "btree/btree_page.h"
#include "common/result.h"
#include "env/env.h"

namespace auxlsm {

class Btree {
 public:
  Btree(Env* env, BtreeMeta meta) : env_(env), meta_(std::move(meta)) {}

  const BtreeMeta& meta() const { return meta_; }
  Env* env() const { return env_; }

  /// Point lookup. Returns NotFound if the key is absent. Anti-matter
  /// entries are returned (with entry.antimatter == true); reconciliation is
  /// the LSM layer's job.
  Status Get(const Slice& key, LeafEntry* entry, std::string* backing) const;

  /// Like Get but also reports the entry's ordinal position within the
  /// component (for validity-bitmap addressing).
  Status GetWithOrdinal(const Slice& key, LeafEntry* entry,
                        std::string* backing, uint64_t* ordinal) const;

  /// Forward iterator over the tree. Valid() is false when exhausted.
  class Iterator {
   public:
    Iterator(const Btree* tree, uint32_t readahead_pages)
        : tree_(tree), readahead_(readahead_pages) {}

    Status SeekToFirst();
    Status Seek(const Slice& target);
    Status Next();
    bool Valid() const { return valid_; }

    Slice key() const { return entry_.key; }
    Slice value() const { return entry_.value; }
    uint64_t ts() const { return entry_.ts; }
    bool antimatter() const { return entry_.antimatter; }
    /// Ordinal of the current entry within the component.
    uint64_t ordinal() const;

   private:
    Status LoadLeaf(uint32_t page_no);
    Status DecodeCurrent();

    const Btree* tree_;
    uint32_t readahead_;
    bool valid_ = false;
    uint32_t leaf_page_ = 0;
    BtreePage page_;
    int slot_ = 0;
    LeafEntry entry_;
  };

  Iterator NewIterator(uint32_t readahead_pages = 0) const {
    return Iterator(this, readahead_pages);
  }

  /// Returns up to `partitions - 1` keys that split the tree's key space
  /// into roughly equal-sized runs of leaf pages (used by partitioned
  /// merges). Keys are strictly ascending first-keys of evenly spaced
  /// leaves; fewer (possibly zero) keys come back for small trees.
  Status ApproximateSplitKeys(size_t partitions,
                              std::vector<std::string>* out) const;

  /// Descends to the leaf that may contain key; returns the loaded page and
  /// its page number. Shared by Get and the stateful cursor.
  Status FindLeaf(const Slice& key, BtreePage* page, uint32_t* page_no) const;

  Status ReadPage(uint32_t page_no, BtreePage* out,
                  uint32_t readahead = 0) const;

 private:
  Env* const env_;
  const BtreeMeta meta_;
};

}  // namespace auxlsm
