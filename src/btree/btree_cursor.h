// Stateful B+-tree lookup cursor (§3.2 "Stateful B+-tree Lookup").
//
// For a batch of ascending keys searched against one component, the cursor
// remembers the root-to-leaf path of the previous search. A new key first
// tries an exponential (galloping) search within the current leaf from the
// last position; if the key lies beyond the leaf it climbs the remembered
// path to the lowest covering ancestor and re-descends, instead of starting
// from the root each time.
#pragma once

#include <string>
#include <vector>

#include "btree/btree.h"

namespace auxlsm {

class StatefulBtreeCursor {
 public:
  explicit StatefulBtreeCursor(const Btree* tree) : tree_(tree) {}

  /// Point lookup optimized for non-decreasing target sequences (arbitrary
  /// targets remain correct, just slower). On hit, copies the entry into
  /// *entry backed by *backing and sets *found.
  Status SeekExact(const Slice& key, LeafEntry* entry, std::string* backing,
                   bool* found);

  /// Like SeekExact, also reporting the ordinal on a hit.
  Status SeekExactWithOrdinal(const Slice& key, LeafEntry* entry,
                              std::string* backing, bool* found,
                              uint64_t* ordinal);

  /// Forgets all state (e.g. before a new batch).
  void Reset() { path_.clear(); }

 private:
  struct Level {
    uint32_t page_no = 0;
    BtreePage page;
    int slot = 0;
    /// Exclusive upper bound of this page's key space, inherited from the
    /// ancestors' separators; empty = unbounded. Without it, the last slot
    /// of an internal page would wrongly claim coverage of keys that belong
    /// to the next sibling page.
    std::string high_key;
    /// True if the page is on the leftmost spine; only then may it claim
    /// keys below its first separator.
    bool leftmost = true;
  };

  // Re-descends from path level `depth` (0 = root) toward the leaf.
  Status DescendFrom(size_t depth, const Slice& key);
  // True if the subtree selected at path_[depth] can contain key.
  bool Covers(size_t depth, const Slice& key) const;

  const Btree* tree_;
  std::vector<Level> path_;  // path_[0] = root ... path_.back() = leaf
  int last_leaf_pos_ = 0;
};

}  // namespace auxlsm
