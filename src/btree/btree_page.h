// Immutable slotted-page layout for disk B+-tree components.
//
// Layout (page_size bytes):
//   [0]   u8  level          0 = leaf, >0 = internal
//   [1]   u8  flags          (reserved)
//   [2]   u16 count          number of entries
//   [4]   u32 first_ordinal  ordinal of the page's first entry (leaf only);
//                            ordinals feed the per-component validity bitmaps
//   [8..] entries, densely encoded
//   [page_size - 2*count ..] slot array, u16 offset per entry
//
// Leaf entry:     varint32 klen | key | varint32 vlen | value | varint64 ts |
//                 u8 flags (bit0 = anti-matter)
// Internal entry: varint32 klen | key | fixed32 child_page_no
#pragma once

#include <cstdint>
#include <string>

#include "common/slice.h"
#include "common/status.h"
#include "env/page_store.h"

namespace auxlsm {

/// One decoded leaf entry. Slices point into the page buffer.
struct LeafEntry {
  Slice key;
  Slice value;
  uint64_t ts = 0;
  bool antimatter = false;
};

inline constexpr uint8_t kEntryFlagAntimatter = 0x1;
inline constexpr size_t kPageHeaderSize = 8;

/// Read-side view over a page buffer.
class BtreePage {
 public:
  BtreePage() = default;
  BtreePage(PageData data, size_t page_size)
      : data_(std::move(data)), page_size_(page_size) {}

  bool valid() const { return data_ != nullptr; }
  uint8_t level() const { return static_cast<uint8_t>((*data_)[0]); }
  bool is_leaf() const { return level() == 0; }
  uint16_t count() const;
  uint32_t first_ordinal() const;

  /// Key of entry i (works for both leaf and internal pages).
  Slice KeyAt(int i) const;

  /// Decodes leaf entry i.
  Status LeafEntryAt(int i, LeafEntry* out) const;

  /// Child page number of internal entry i.
  uint32_t ChildAt(int i) const;

  /// Index of the first entry with key >= target (== count() if none).
  int LowerBound(const Slice& target) const;

  /// Index of the last entry with key <= target, or -1 if none. Used to pick
  /// the child subtree in internal pages.
  int UpperSlot(const Slice& target) const;

  /// Exponential (galloping) search for LowerBound starting from a prior
  /// position hint; used by the stateful cursor (§3.2).
  int LowerBoundFrom(const Slice& target, int from) const;

 private:
  const char* EntryPtr(int i) const;

  PageData data_;
  size_t page_size_ = 0;
};

/// Builds one page during bulk load.
class BtreePageBuilder {
 public:
  BtreePageBuilder(uint8_t level, size_t page_size);

  /// Returns false if the entry does not fit in the remaining space.
  bool AddLeafEntry(const Slice& key, const Slice& value, uint64_t ts,
                    bool antimatter);
  bool AddInternalEntry(const Slice& key, uint32_t child_page);

  int count() const { return static_cast<int>(offsets_.size()); }
  bool empty() const { return offsets_.empty(); }

  void set_first_ordinal(uint32_t ordinal) { first_ordinal_ = ordinal; }

  /// Produces the finished page buffer and resets the builder.
  std::string Finish();

 private:
  bool Fits(size_t entry_size) const;

  uint8_t level_;
  size_t page_size_;
  uint32_t first_ordinal_ = 0;
  std::string buf_;                // entries region (after header)
  std::vector<uint16_t> offsets_;  // slot array
};

}  // namespace auxlsm
