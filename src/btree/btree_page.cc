#include "btree/btree_page.h"

#include <cassert>

#include "common/coding.h"

namespace auxlsm {

uint16_t BtreePage::count() const { return DecodeFixed16(data_->data() + 2); }

uint32_t BtreePage::first_ordinal() const {
  return DecodeFixed32(data_->data() + 4);
}

const char* BtreePage::EntryPtr(int i) const {
  const char* base = data_->data();
  const int n = count();
  assert(i >= 0 && i < n);
  const char* slots = base + page_size_ - 2 * n;
  const uint16_t off = DecodeFixed16(slots + 2 * i);
  return base + off;
}

Slice BtreePage::KeyAt(int i) const {
  const char* p = EntryPtr(i);
  const char* limit = data_->data() + page_size_;
  uint32_t klen = 0;
  p = GetVarint32Ptr(p, limit, &klen);
  assert(p != nullptr);
  return Slice(p, klen);
}

Status BtreePage::LeafEntryAt(int i, LeafEntry* out) const {
  const char* p = EntryPtr(i);
  const char* limit = data_->data() + page_size_;
  uint32_t klen = 0, vlen = 0;
  p = GetVarint32Ptr(p, limit, &klen);
  if (p == nullptr || p + klen > limit) return Status::Corruption("leaf key");
  out->key = Slice(p, klen);
  p += klen;
  p = GetVarint32Ptr(p, limit, &vlen);
  if (p == nullptr || p + vlen > limit) return Status::Corruption("leaf val");
  out->value = Slice(p, vlen);
  p += vlen;
  uint64_t ts = 0;
  p = GetVarint64Ptr(p, limit, &ts);
  if (p == nullptr || p >= limit) return Status::Corruption("leaf ts");
  out->ts = ts;
  out->antimatter = (*p & kEntryFlagAntimatter) != 0;
  return Status::OK();
}

uint32_t BtreePage::ChildAt(int i) const {
  const char* p = EntryPtr(i);
  const char* limit = data_->data() + page_size_;
  uint32_t klen = 0;
  p = GetVarint32Ptr(p, limit, &klen);
  assert(p != nullptr);
  return DecodeFixed32(p + klen);
}

int BtreePage::LowerBound(const Slice& target) const {
  int lo = 0, hi = count();
  while (lo < hi) {
    const int mid = (lo + hi) / 2;
    if (KeyAt(mid).compare(target) < 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

int BtreePage::UpperSlot(const Slice& target) const {
  // last i with KeyAt(i) <= target
  int lo = 0, hi = count();
  while (lo < hi) {
    const int mid = (lo + hi) / 2;
    if (KeyAt(mid).compare(target) <= 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo - 1;
}

int BtreePage::LowerBoundFrom(const Slice& target, int from) const {
  const int n = count();
  if (from < 0) from = 0;
  if (from >= n) return n;
  if (KeyAt(from).compare(target) >= 0) return from;
  // Gallop: find window (from + step/2, from + step] containing the bound.
  int step = 1;
  while (from + step < n && KeyAt(from + step).compare(target) < 0) {
    step *= 2;
  }
  int lo = from + step / 2 + 1;
  int hi = from + step < n ? from + step + 1 : n;
  while (lo < hi) {
    const int mid = (lo + hi) / 2;
    if (KeyAt(mid).compare(target) < 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

BtreePageBuilder::BtreePageBuilder(uint8_t level, size_t page_size)
    : level_(level), page_size_(page_size) {
  buf_.reserve(page_size_);
}

bool BtreePageBuilder::Fits(size_t entry_size) const {
  const size_t used = kPageHeaderSize + buf_.size();
  const size_t slots = 2 * (offsets_.size() + 1);
  return used + entry_size + slots <= page_size_;
}

bool BtreePageBuilder::AddLeafEntry(const Slice& key, const Slice& value,
                                    uint64_t ts, bool antimatter) {
  const size_t sz = VarintLength(key.size()) + key.size() +
                    VarintLength(value.size()) + value.size() +
                    VarintLength(ts) + 1;
  if (!Fits(sz)) return false;
  offsets_.push_back(static_cast<uint16_t>(kPageHeaderSize + buf_.size()));
  PutVarint32(&buf_, static_cast<uint32_t>(key.size()));
  buf_.append(key.data(), key.size());
  PutVarint32(&buf_, static_cast<uint32_t>(value.size()));
  buf_.append(value.data(), value.size());
  PutVarint64(&buf_, ts);
  buf_.push_back(static_cast<char>(antimatter ? kEntryFlagAntimatter : 0));
  return true;
}

bool BtreePageBuilder::AddInternalEntry(const Slice& key, uint32_t child) {
  const size_t sz = VarintLength(key.size()) + key.size() + 4;
  if (!Fits(sz)) return false;
  offsets_.push_back(static_cast<uint16_t>(kPageHeaderSize + buf_.size()));
  PutVarint32(&buf_, static_cast<uint32_t>(key.size()));
  buf_.append(key.data(), key.size());
  char cbuf[4];
  EncodeFixed32(cbuf, child);
  buf_.append(cbuf, 4);
  return true;
}

std::string BtreePageBuilder::Finish() {
  std::string page(page_size_, '\0');
  page[0] = static_cast<char>(level_);
  page[1] = 0;
  EncodeFixed16(page.data() + 2, static_cast<uint16_t>(offsets_.size()));
  EncodeFixed32(page.data() + 4, first_ordinal_);
  memcpy(page.data() + kPageHeaderSize, buf_.data(), buf_.size());
  char* slots = page.data() + page_size_ - 2 * offsets_.size();
  for (size_t i = 0; i < offsets_.size(); i++) {
    EncodeFixed16(slots + 2 * i, offsets_[i]);
  }
  buf_.clear();
  offsets_.clear();
  first_ordinal_ = 0;
  return page;
}

}  // namespace auxlsm
