#include "btree/btree.h"

namespace auxlsm {

Status Btree::ReadPage(uint32_t page_no, BtreePage* out,
                       uint32_t readahead) const {
  PageData data;
  AUXLSM_RETURN_NOT_OK(
      env_->ReadPage(meta_.file_id, page_no, &data, readahead));
  *out = BtreePage(std::move(data), env_->page_size());
  return Status::OK();
}

Status Btree::FindLeaf(const Slice& key, BtreePage* page,
                       uint32_t* page_no) const {
  uint32_t current = meta_.root_page;
  BtreePage p;
  AUXLSM_RETURN_NOT_OK(ReadPage(current, &p));
  while (!p.is_leaf()) {
    int slot = p.UpperSlot(key);
    if (slot < 0) slot = 0;  // key below subtree min: leftmost child
    current = p.ChildAt(slot);
    AUXLSM_RETURN_NOT_OK(ReadPage(current, &p));
  }
  *page = std::move(p);
  *page_no = current;
  return Status::OK();
}

Status Btree::Get(const Slice& key, LeafEntry* entry,
                  std::string* backing) const {
  uint64_t ordinal;
  return GetWithOrdinal(key, entry, backing, &ordinal);
}

Status Btree::GetWithOrdinal(const Slice& key, LeafEntry* entry,
                             std::string* backing, uint64_t* ordinal) const {
  if (meta_.num_entries == 0) return Status::NotFound();
  BtreePage page;
  uint32_t page_no;
  AUXLSM_RETURN_NOT_OK(FindLeaf(key, &page, &page_no));
  const int slot = page.LowerBound(key);
  if (slot >= page.count() || page.KeyAt(slot) != key) {
    return Status::NotFound();
  }
  LeafEntry e;
  AUXLSM_RETURN_NOT_OK(page.LeafEntryAt(slot, &e));
  // Copy out: the page buffer is shared and may be evicted; callers keep the
  // backing string alive as long as they use the entry.
  backing->assign(e.key.data(), e.key.size());
  const size_t klen = e.key.size();
  backing->append(e.value.data(), e.value.size());
  entry->key = Slice(backing->data(), klen);
  entry->value = Slice(backing->data() + klen, e.value.size());
  entry->ts = e.ts;
  entry->antimatter = e.antimatter;
  *ordinal = uint64_t{page.first_ordinal()} + static_cast<uint64_t>(slot);
  return Status::OK();
}

Status Btree::Iterator::LoadLeaf(uint32_t page_no) {
  AUXLSM_RETURN_NOT_OK(tree_->ReadPage(page_no, &page_, readahead_));
  leaf_page_ = page_no;
  return Status::OK();
}

Status Btree::Iterator::DecodeCurrent() {
  return page_.LeafEntryAt(slot_, &entry_);
}

Status Btree::Iterator::SeekToFirst() {
  valid_ = false;
  if (tree_->meta().num_entries == 0) return Status::OK();
  AUXLSM_RETURN_NOT_OK(LoadLeaf(tree_->meta().first_leaf_page));
  slot_ = 0;
  // Leaves are contiguous and non-empty for non-empty trees.
  valid_ = page_.count() > 0;
  if (valid_) AUXLSM_RETURN_NOT_OK(DecodeCurrent());
  return Status::OK();
}

Status Btree::Iterator::Seek(const Slice& target) {
  valid_ = false;
  if (tree_->meta().num_entries == 0) return Status::OK();
  if (target.compare(Slice(tree_->meta().max_key)) > 0) return Status::OK();
  BtreePage page;
  uint32_t page_no;
  AUXLSM_RETURN_NOT_OK(tree_->FindLeaf(target, &page, &page_no));
  page_ = std::move(page);
  leaf_page_ = page_no;
  slot_ = page_.LowerBound(target);
  if (slot_ >= page_.count()) {
    // Target falls past the leaf's last key: advance to the next leaf.
    const auto& m = tree_->meta();
    const uint32_t last_leaf = m.first_leaf_page + m.num_leaf_pages - 1;
    if (leaf_page_ >= last_leaf) return Status::OK();
    AUXLSM_RETURN_NOT_OK(LoadLeaf(leaf_page_ + 1));
    slot_ = 0;
    if (page_.count() == 0) return Status::OK();
  }
  valid_ = true;
  return DecodeCurrent();
}

Status Btree::Iterator::Next() {
  slot_++;
  if (slot_ >= page_.count()) {
    const auto& m = tree_->meta();
    const uint32_t last_leaf = m.first_leaf_page + m.num_leaf_pages - 1;
    if (leaf_page_ >= last_leaf) {
      valid_ = false;
      return Status::OK();
    }
    AUXLSM_RETURN_NOT_OK(LoadLeaf(leaf_page_ + 1));
    slot_ = 0;
    if (page_.count() == 0) {
      valid_ = false;
      return Status::OK();
    }
  }
  return DecodeCurrent();
}

uint64_t Btree::Iterator::ordinal() const {
  return uint64_t{page_.first_ordinal()} + static_cast<uint64_t>(slot_);
}

Status Btree::ApproximateSplitKeys(size_t partitions,
                                   std::vector<std::string>* out) const {
  out->clear();
  if (partitions < 2 || meta_.num_leaf_pages == 0) return Status::OK();
  for (size_t i = 1; i < partitions; i++) {
    const uint32_t leaf = static_cast<uint32_t>(
        uint64_t{meta_.num_leaf_pages} * i / partitions);
    if (leaf == 0 || leaf >= meta_.num_leaf_pages) continue;
    BtreePage page;
    AUXLSM_RETURN_NOT_OK(ReadPage(meta_.first_leaf_page + leaf, &page));
    if (!page.is_leaf() || page.count() == 0) continue;
    std::string key = page.KeyAt(0).ToString();
    if (out->empty() || out->back() < key) out->push_back(std::move(key));
  }
  return Status::OK();
}

}  // namespace auxlsm
