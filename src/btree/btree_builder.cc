#include "btree/btree_builder.h"

#include <cassert>

namespace auxlsm {

BtreeBuilder::BtreeBuilder(Env* env)
    : env_(env),
      page_size_(env->page_size()),
      file_id_(env->CreateFile()),
      leaf_builder_(0, page_size_) {}

Status BtreeBuilder::Add(const Slice& key, const Slice& value, uint64_t ts,
                         bool antimatter) {
  assert(!finished_);
  if (num_entries_ == 0) {
    min_key_ = key.ToString();
  } else if (key.compare(Slice(max_key_)) < 0) {
    return Status::InvalidArgument("keys added out of order");
  }
  if (!leaf_has_entries_) {
    pending_first_key_ = key.ToString();
    leaf_builder_.set_first_ordinal(static_cast<uint32_t>(num_entries_));
  }
  if (!leaf_builder_.AddLeafEntry(key, value, ts, antimatter)) {
    AUXLSM_RETURN_NOT_OK(FlushLeaf());
    pending_first_key_ = key.ToString();
    leaf_builder_.set_first_ordinal(static_cast<uint32_t>(num_entries_));
    if (!leaf_builder_.AddLeafEntry(key, value, ts, antimatter)) {
      return Status::InvalidArgument("entry larger than page");
    }
  }
  leaf_has_entries_ = true;
  num_entries_++;
  data_bytes_ += key.size() + value.size();
  max_key_ = key.ToString();
  return Status::OK();
}

Status BtreeBuilder::FlushLeaf() {
  if (!leaf_has_entries_) return Status::OK();
  uint32_t page_no = 0;
  AUXLSM_RETURN_NOT_OK(
      env_->AppendPage(file_id_, leaf_builder_.Finish(), &page_no));
  level_entries_.emplace_back(pending_first_key_, page_no);
  leaf_has_entries_ = false;
  return Status::OK();
}

Status BtreeBuilder::Finish(BtreeMeta* meta) {
  assert(!finished_);
  finished_ = true;

  if (num_entries_ == 0) {
    // Emit a single empty leaf as the root so readers have a valid page.
    uint32_t page_no = 0;
    AUXLSM_RETURN_NOT_OK(
        env_->AppendPage(file_id_, leaf_builder_.Finish(), &page_no));
    meta->file_id = file_id_;
    meta->root_page = page_no;
    meta->num_pages = 1;
    meta->num_leaf_pages = 1;
    meta->num_entries = 0;
    meta->height = 1;
    return Status::OK();
  }

  AUXLSM_RETURN_NOT_OK(FlushLeaf());
  const uint32_t num_leaf_pages = static_cast<uint32_t>(level_entries_.size());

  uint8_t height = 1;
  // Build internal levels until a single page remains.
  while (level_entries_.size() > 1) {
    height++;
    std::vector<std::pair<std::string, uint32_t>> next_level;
    BtreePageBuilder internal(height - 1, page_size_);
    std::string page_first_key;
    auto flush_internal = [&]() -> Status {
      uint32_t page_no = 0;
      AUXLSM_RETURN_NOT_OK(
          env_->AppendPage(file_id_, internal.Finish(), &page_no));
      next_level.emplace_back(page_first_key, page_no);
      return Status::OK();
    };
    for (const auto& [first_key, child] : level_entries_) {
      if (internal.empty()) page_first_key = first_key;
      if (!internal.AddInternalEntry(first_key, child)) {
        AUXLSM_RETURN_NOT_OK(flush_internal());
        page_first_key = first_key;
        if (!internal.AddInternalEntry(first_key, child)) {
          return Status::InvalidArgument("separator larger than page");
        }
      }
    }
    if (!internal.empty()) {
      AUXLSM_RETURN_NOT_OK(flush_internal());
    }
    level_entries_ = std::move(next_level);
  }

  meta->file_id = file_id_;
  meta->root_page = level_entries_[0].second;
  meta->num_pages = env_->store()->NumPages(file_id_);
  meta->first_leaf_page = 0;
  meta->num_leaf_pages = num_leaf_pages;
  meta->num_entries = num_entries_;
  meta->height = height;
  meta->min_key = min_key_;
  meta->max_key = max_key_;
  meta->data_bytes = data_bytes_;
  return Status::OK();
}

}  // namespace auxlsm
