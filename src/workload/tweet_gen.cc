#include "workload/tweet_gen.h"

namespace auxlsm {

namespace {
const char* kStates[] = {"CA", "NY", "TX", "WA", "MA", "UT", "FL", "IL",
                         "OH", "GA", "NC", "PA", "AZ", "MI", "NJ", "VA"};
constexpr size_t kNumStates = sizeof(kStates) / sizeof(kStates[0]);
}  // namespace

TweetGenerator::TweetGenerator(TweetGenOptions options)
    : options_(options), rng_(options.seed) {}

TweetRecord TweetGenerator::MakeBody(uint64_t id) {
  TweetRecord r;
  r.id = id;
  r.user_id = rng_.Uniform(options_.user_id_domain);
  r.location = kStates[rng_.Uniform(kNumStates)];
  r.creation_time = next_time_++;
  const size_t len =
      options_.min_message_bytes +
      rng_.Uniform(options_.max_message_bytes - options_.min_message_bytes + 1);
  r.message.resize(len);
  for (size_t i = 0; i < len; i++) {
    r.message[i] = static_cast<char>('a' + (rng_.Next() % 26));
  }
  return r;
}

TweetRecord TweetGenerator::Next() {
  uint64_t id;
  if (options_.sequential_ids) {
    id = next_seq_id_++;
  } else {
    id = rng_.Next();
  }
  history_.push_back(id);
  return MakeBody(id);
}

TweetRecord TweetGenerator::Update(uint64_t history_index) {
  return MakeBody(history_[history_index]);
}

}  // namespace auxlsm
