// Open-loop traffic driver for the request server (PR 9).
//
// Closed-loop drivers (driver.h) issue the next operation only after the
// previous one returns, so a slow server quietly throttles the workload and
// latency numbers stay flattering. The open-loop driver severs that link:
// operations arrive at Poisson times on the *modeled* clock, fixed in
// advance — when the server falls behind, later arrivals queue behind the
// backlog and their modeled latency grows without bound. This is the
// latency-vs-offered-load methodology of bench/fig24_service_latency.
//
// The driver is script-based for parity: MakeOpenLoopScript() generates the
// full operation sequence (op mix, keys, ranges, arrival stamps) once from
// a seeded generator, and the same script replays either through the server
// (RunOpenLoopWorkload — frames over connections, responses collected off
// the wire) or directly against the Dataset (RunOpenLoopInProcess). Both
// runs fold every response into the same order-insensitive result checksum,
// so "served results row-identical to the in-process run" is one integer
// comparison.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "server/protocol.h"
#include "workload/tweet_gen.h"

namespace auxlsm {

class Dataset;

namespace server {
class RequestServer;
}

struct OpenLoopOptions {
  uint64_t num_ops = 10000;
  /// Poisson arrival rate on the modeled clock. 0 disables arrival stamps:
  /// every request arrives at its start (closed-loop degenerate, latency ==
  /// service time).
  double offered_ops_per_sec = 0;
  /// Op mix: write (fresh-record upsert), point get, secondary range query;
  /// fractions of 1.0, remainder goes to writes.
  double get_fraction = 0.3;
  double query_fraction = 0.1;
  uint64_t range_width = 100;  ///< secondary-key width of each range query
  uint64_t limit = 10;         ///< rows per range query (0 = unlimited)
  size_t page_size = 0;        ///< > 0 = paginate with cursor continuations
  uint64_t user_domain = 100000;
  uint64_t seed = 7;
  std::string index_name;  ///< empty = the first secondary index
};

/// Generates the operation script: requests with ids 1..num_ops, arrival
/// stamps (modeled µs) when offered_ops_per_sec > 0, keys drawn from the
/// generator's history (point gets need gen->generated() > 0 — preload
/// with LoadRecords first when the mix includes gets).
std::vector<server::Request> MakeOpenLoopScript(TweetGenerator* gen,
                                                const OpenLoopOptions& options);

struct LatencySummary {
  double p50 = 0, p90 = 0, p99 = 0, max = 0, mean = 0;
};

/// Nearest-rank percentiles over per-request modeled latencies (µs).
LatencySummary SummarizeLatencies(std::vector<double> samples);

struct OpenLoopReport {
  uint64_t ops = 0;        ///< script requests answered (continuations fold in)
  uint64_t ok = 0;         ///< responses with code kOk
  uint64_t not_found = 0;
  uint64_t errors = 0;     ///< kRetryable / kBadRequest / kError responses
  uint64_t retryable = 0;  ///< kRetryable subset
  uint64_t rows = 0;       ///< result rows across gets + query pages
  /// Order-insensitive fold of (request id, code, count, row ids): equal
  /// checksums + counts mean the two runs served identical results.
  uint64_t result_checksum = 0;
  double offered_ops_per_sec = 0;
  double achieved_ops_per_sec = 0;  ///< ops / modeled makespan
  double makespan_us = 0;           ///< max modeled completion stamp
  LatencySummary latency;           ///< per-response modeled latency
};

/// Replays the script through the server: request i goes to connection
/// (i % num_connections), the server is polled every `poll_every` sends
/// (1 = strict script order, the parity configuration), paginated queries
/// are continued with kCursorNext frames whose arrival is the previous
/// page's modeled completion, and the run drains until every response —
/// continuations included — is back.
Status RunOpenLoopWorkload(server::RequestServer* srv,
                           const std::vector<server::Request>& script,
                           size_t num_connections, size_t poll_every,
                           OpenLoopReport* report);

/// Replays the same script directly against the dataset (no server, no
/// frames) and folds results into the same checksum: the parity baseline.
Status RunOpenLoopInProcess(Dataset* dataset,
                            const std::vector<server::Request>& script,
                            OpenLoopReport* report);

}  // namespace auxlsm
