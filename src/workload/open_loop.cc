#include "workload/open_loop.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "core/dataset.h"
#include "server/server.h"

namespace auxlsm {

namespace {

/// Order-insensitive result fold: responses may come off the wire in any
/// cross-connection order, so per-response contributions sum (commutative)
/// while staying order-sensitive *within* a request via the row index.
uint64_t MixResult(uint64_t request_id, uint64_t tag, uint64_t value) {
  uint64_t h = request_id * 0x9E3779B97F4A7C15ULL;
  h ^= (tag + 1) * 0xC2B2AE3D27D4EB4FULL;
  h ^= value * 0x165667B19E3779F9ULL;
  h ^= h >> 29;
  return h;
}

void FoldResponse(const server::Response& r, uint64_t first_row_index,
                  OpenLoopReport* report) {
  using server::ResponseCode;
  switch (r.code) {
    case ResponseCode::kOk:
      report->ok++;
      break;
    case ResponseCode::kNotFound:
      report->not_found++;
      break;
    case ResponseCode::kRetryable:
      report->retryable++;
      report->errors++;
      break;
    default:
      report->errors++;
      break;
  }
  report->result_checksum +=
      MixResult(r.request_id, 0, (uint64_t(r.code) << 32) | r.count);
  uint64_t row = first_row_index;
  for (const TweetRecord& rec : r.records) {
    report->result_checksum += MixResult(r.request_id, 1 + row, rec.id);
    row++;
  }
  report->rows += r.records.size();
}

}  // namespace

std::vector<server::Request> MakeOpenLoopScript(
    TweetGenerator* gen, const OpenLoopOptions& options) {
  using server::Request;
  using server::RequestType;
  Random rng(options.seed);
  std::vector<Request> script;
  script.reserve(options.num_ops);
  double arrival_us = 0;
  const double mean_gap_us = options.offered_ops_per_sec > 0
                                 ? 1e6 / options.offered_ops_per_sec
                                 : 0;
  for (uint64_t i = 0; i < options.num_ops; i++) {
    Request req;
    req.request_id = i + 1;
    if (mean_gap_us > 0) {
      // Exponential interarrival: Poisson process on the modeled clock.
      arrival_us += -mean_gap_us * std::log(1.0 - rng.NextDouble());
      req.arrival_us = arrival_us;
    }
    const double u = rng.NextDouble();
    if (u < options.get_fraction && gen->generated() > 0) {
      req.type = RequestType::kGet;
      req.id = gen->IdAt(rng.Uniform(gen->generated()));
    } else if (u < options.get_fraction + options.query_fraction) {
      req.type = RequestType::kQuery;
      req.index_name = options.index_name;
      req.range_lo = rng.Uniform(options.user_domain);
      req.range_hi = req.range_lo + options.range_width;
      req.limit = options.limit;
      req.page_size = options.page_size;
    } else {
      req.type = RequestType::kUpsert;
      req.record = gen->Next();
    }
    script.push_back(std::move(req));
  }
  return script;
}

LatencySummary SummarizeLatencies(std::vector<double> samples) {
  LatencySummary s;
  if (samples.empty()) return s;
  std::sort(samples.begin(), samples.end());
  auto rank = [&](double p) {
    size_t i = size_t(std::ceil(p * double(samples.size())));
    if (i == 0) i = 1;
    return samples[std::min(i, samples.size()) - 1];
  };
  s.p50 = rank(0.50);
  s.p90 = rank(0.90);
  s.p99 = rank(0.99);
  s.max = samples.back();
  double sum = 0;
  for (double v : samples) sum += v;
  s.mean = sum / double(samples.size());
  return s;
}

Status RunOpenLoopWorkload(server::RequestServer* srv,
                           const std::vector<server::Request>& script,
                           size_t num_connections, size_t poll_every,
                           OpenLoopReport* report) {
  using server::ClientConnection;
  using server::Request;
  using server::RequestType;
  using server::Response;
  *report = OpenLoopReport{};
  if (num_connections == 0) num_connections = 1;
  if (poll_every == 0) poll_every = 1;
  std::vector<ClientConnection*> conns;
  conns.reserve(num_connections);
  for (size_t i = 0; i < num_connections; i++) conns.push_back(srv->Connect());

  std::vector<double> latencies;
  latencies.reserve(script.size());
  // Rows already delivered per request id (continuation pages keep the
  // original id, so the checksum's row index runs across pages).
  std::unordered_map<uint64_t, uint64_t> rows_seen;
  uint64_t outstanding = 0;

  auto harvest = [&](ClientConnection* c) -> size_t {
    size_t received = 0;
    for (Response& r : c->Receive()) {
      outstanding--;
      received++;
      uint64_t& row0 = rows_seen[r.request_id];
      FoldResponse(r, row0, report);
      row0 += r.records.size();
      latencies.push_back(r.latency_us);
      report->makespan_us = std::max(report->makespan_us, r.completion_us);
      if (r.code == server::ResponseCode::kOk && !r.done && r.cursor_id != 0) {
        // Continuation: the next page is requested the instant the previous
        // one completes on the modeled clock — a client pulling as fast as
        // the pagination allows.
        Request next;
        next.request_id = r.request_id;
        next.type = RequestType::kCursorNext;
        next.cursor_id = r.cursor_id;
        next.arrival_us = r.completion_us;
        c->Send(next.EncodeFrame());
        outstanding++;
      }
    }
    return received;
  };

  size_t sent = 0;
  for (const Request& req : script) {
    conns[sent % num_connections]->Send(req.EncodeFrame());
    outstanding++;
    sent++;
    if (sent % poll_every == 0) {
      srv->Poll();
      for (ClientConnection* c : conns) harvest(c);
    }
  }
  // Drain: every script response and every continuation it spawns. Progress
  // is responses harvested or requests dispatched — NOT the net change in
  // `outstanding`, which stays constant when every harvested response is a
  // non-final page that immediately re-ups with a kCursorNext continuation.
  while (outstanding > 0) {
    const size_t dispatched = srv->PollUntilIdle();
    size_t received = 0;
    for (ClientConnection* c : conns) received += harvest(c);
    if (dispatched == 0 && received == 0) {
      return Status::Aborted("open-loop drain made no progress");
    }
  }
  report->ops = report->ok + report->not_found + report->errors;
  report->latency = SummarizeLatencies(std::move(latencies));
  if (report->makespan_us > 0) {
    report->achieved_ops_per_sec =
        double(report->ops) * 1e6 / report->makespan_us;
  }
  return Status::OK();
}

Status RunOpenLoopInProcess(Dataset* dataset,
                            const std::vector<server::Request>& script,
                            OpenLoopReport* report) {
  using server::Request;
  using server::RequestType;
  using server::Response;
  *report = OpenLoopReport{};
  for (const Request& req : script) {
    switch (req.type) {
      case RequestType::kUpsert: {
        AUXLSM_RETURN_NOT_OK(dataset->Upsert(req.record));
        Response r;
        r.request_id = req.request_id;
        r.code = server::ResponseCode::kOk;
        r.count = 1;
        FoldResponse(r, 0, report);
        break;
      }
      case RequestType::kInsert: {
        bool inserted = false;
        AUXLSM_RETURN_NOT_OK(dataset->Insert(req.record, &inserted));
        Response r;
        r.request_id = req.request_id;
        r.code = server::ResponseCode::kOk;
        r.count = inserted ? 1 : 0;
        FoldResponse(r, 0, report);
        break;
      }
      case RequestType::kGet: {
        Response r;
        r.request_id = req.request_id;
        TweetRecord rec;
        const Status st = dataset->GetById(req.id, &rec);
        if (st.IsNotFound()) {
          r.code = server::ResponseCode::kNotFound;
        } else if (!st.ok()) {
          return st;
        } else {
          r.code = server::ResponseCode::kOk;
          r.count = 1;
          r.records.push_back(rec);
        }
        FoldResponse(r, 0, report);
        break;
      }
      case RequestType::kQuery: {
        ReadQuery q;
        if (req.index_name.empty()) {
          q.Secondary();
        } else {
          q.Secondary(req.index_name);
        }
        q.Range(req.range_lo, req.range_hi);
        if (req.limit > 0) q.Limit(req.limit);
        if (req.page_size > 0) q.PageSize(req.page_size);
        auto cursor = dataset->NewCursor(q);
        AUXLSM_RETURN_NOT_OK(cursor.status());
        // Page exactly like the wire protocol: one response per page, all
        // under the original request id with a running row index.
        uint64_t row = 0;
        do {
          QueryPage page;
          AUXLSM_RETURN_NOT_OK((*cursor)->Next(&page));
          Response r;
          r.request_id = req.request_id;
          r.code = server::ResponseCode::kOk;
          r.records = std::move(page.records);
          r.count = r.records.size();
          FoldResponse(r, row, report);
          row += r.records.size();
        } while (!(*cursor)->done());
        break;
      }
      default:
        return Status::InvalidArgument("script op not replayable in-process");
    }
  }
  report->ops = report->ok + report->not_found + report->errors;
  return Status::OK();
}

}  // namespace auxlsm
