// Workload drivers for the paper's ingestion experiments (§6.3): insert
// workloads controlled by a duplicate ratio and upsert workloads controlled
// by an update ratio with uniform or Zipf (theta 0.99) key skew.
#pragma once

#include "common/random.h"
#include "core/dataset.h"
#include "workload/tweet_gen.h"

namespace auxlsm {

enum class UpdateDistribution { kUniform, kZipf };

struct InsertWorkloadOptions {
  uint64_t num_ops = 100000;
  double duplicate_ratio = 0.0;  ///< fraction of ops re-inserting past keys
  uint64_t seed = 7;
};

struct UpsertWorkloadOptions {
  uint64_t num_ops = 100000;
  double update_ratio = 0.1;  ///< fraction of ops updating past keys
  UpdateDistribution distribution = UpdateDistribution::kUniform;
  uint64_t seed = 7;
};

struct WorkloadReport {
  uint64_t ops = 0;
  uint64_t new_records = 0;
  uint64_t duplicate_or_update_ops = 0;
  double elapsed_seconds = 0;     ///< wall-clock CPU-side time
  double simulated_io_seconds = 0;///< simulated disk time (env + wal)
};

/// Runs an insert workload (duplicates are uniform over past keys).
Status RunInsertWorkload(Dataset* dataset, TweetGenerator* gen,
                         const InsertWorkloadOptions& options,
                         WorkloadReport* report);

/// Runs an upsert workload.
Status RunUpsertWorkload(Dataset* dataset, TweetGenerator* gen,
                         const UpsertWorkloadOptions& options,
                         WorkloadReport* report);

/// Paginated top-k read workload over the new cursor API: each query is a
/// secondary range of `range_width` user ids, drained page by page up to
/// `limit` rows (0 = unlimited). `io_queue` binds the queries' simulated
/// I/O to one device queue (a reader pool passes reader i % queues);
/// negative keeps the calling thread's binding.
struct PagedReadWorkloadOptions {
  uint64_t num_queries = 100;
  uint64_t range_width = 100;
  uint64_t limit = 10;
  size_t page_size = 10;
  uint64_t user_domain = 100000;
  uint64_t seed = 7;
  int32_t io_queue = -1;
  std::string index_name;  ///< empty = the first secondary index
};

struct PagedReadReport {
  uint64_t queries = 0;
  uint64_t rows = 0;
  uint64_t pages = 0;
  uint64_t candidates = 0;
  uint64_t validated_out = 0;
  double elapsed_seconds = 0;  ///< wall-clock CPU-side time
};

Status RunPagedReadWorkload(Dataset* dataset,
                            const PagedReadWorkloadOptions& options,
                            PagedReadReport* report);

/// Skewed key picker for hot-read workloads (PR 7, bench/fig18_hot_reads):
/// draws keys from [0, domain) either Zipfian (YCSB theta; popular ranks
/// scattered across the domain so the hot keys are not clustered) or
/// hot-set (a fixed set of `hot_keys` keys drawn with probability
/// `hot_fraction`, uniform cold keys otherwise). Deterministic per seed.
struct HotKeyOptions {
  enum class Skew { kZipf, kHotSet };
  Skew skew = Skew::kZipf;
  uint64_t domain = 100000;
  double theta = 0.99;        ///< kZipf skew parameter
  double hot_fraction = 0.9;  ///< kHotSet: P(draw from the hot set)
  uint64_t hot_keys = 100;    ///< kHotSet: hot-set size
  uint64_t seed = 7;
};

class HotKeyGenerator {
 public:
  explicit HotKeyGenerator(const HotKeyOptions& options);

  /// Draws the next key in [0, domain).
  uint64_t Next();

 private:
  uint64_t Scatter(uint64_t i) const;  ///< deterministic spread over domain

  HotKeyOptions options_;
  Random rng_;
  ZipfGenerator zipf_;
};

/// Loads `n` fresh records via upsert (dataset preparation helper).
Status LoadRecords(Dataset* dataset, TweetGenerator* gen, uint64_t n);

}  // namespace auxlsm
