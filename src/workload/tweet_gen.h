// Synthetic tweet generator (§6.1): ~500-byte records with a random 64-bit
// primary key, a user id uniform in [0, 100K), a US-state location, a
// monotonically increasing creation time, and a 450-550 byte message.
#pragma once

#include <string>
#include <vector>

#include "common/random.h"
#include "format/record.h"

namespace auxlsm {

struct TweetGenOptions {
  uint64_t seed = 20190501;
  uint64_t user_id_domain = 100000;
  size_t min_message_bytes = 450;
  size_t max_message_bytes = 550;
  /// Sequential primary keys instead of random ones (the Fig 12b
  /// "scan (seq keys)" dataset).
  bool sequential_ids = false;
};

class TweetGenerator {
 public:
  explicit TweetGenerator(TweetGenOptions options = TweetGenOptions());

  /// Generates the next new tweet (fresh primary key, next creation time).
  TweetRecord Next();

  /// Generates an updated version of a previously generated tweet: same
  /// primary key (by index into the generation history), fresh user id,
  /// location, message, and a new creation time.
  TweetRecord Update(uint64_t history_index);

  /// Primary key of the i-th generated tweet.
  uint64_t IdAt(uint64_t history_index) const {
    return history_[history_index];
  }
  uint64_t generated() const { return history_.size(); }

  Random* rng() { return &rng_; }

 private:
  TweetRecord MakeBody(uint64_t id);

  TweetGenOptions options_;
  Random rng_;
  uint64_t next_time_ = 1;
  uint64_t next_seq_id_ = 1;
  std::vector<uint64_t> history_;
};

}  // namespace auxlsm
