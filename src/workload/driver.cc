#include "workload/driver.h"

#include <algorithm>
#include <chrono>

#include "common/hash.h"

namespace auxlsm {

namespace {
double SimulatedSeconds(Dataset* ds) {
  return (ds->env()->stats().simulated_us + ds->wal()->stats().simulated_us) /
         1e6;
}
}  // namespace

Status RunInsertWorkload(Dataset* ds, TweetGenerator* gen,
                         const InsertWorkloadOptions& options,
                         WorkloadReport* report) {
  Random rng(options.seed);
  const auto t0 = std::chrono::steady_clock::now();
  const double sim0 = SimulatedSeconds(ds);
  for (uint64_t i = 0; i < options.num_ops; i++) {
    const bool dup =
        gen->generated() > 0 && rng.Bernoulli(options.duplicate_ratio);
    bool inserted = false;
    if (dup) {
      const uint64_t idx = rng.Uniform(gen->generated());
      AUXLSM_RETURN_NOT_OK(ds->Insert(gen->Update(idx), &inserted));
      report->duplicate_or_update_ops++;
    } else {
      AUXLSM_RETURN_NOT_OK(ds->Insert(gen->Next(), &inserted));
    }
    if (inserted) report->new_records++;
    report->ops++;
  }
  report->elapsed_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  report->simulated_io_seconds = SimulatedSeconds(ds) - sim0;
  return Status::OK();
}

Status RunUpsertWorkload(Dataset* ds, TweetGenerator* gen,
                         const UpsertWorkloadOptions& options,
                         WorkloadReport* report) {
  Random rng(options.seed);
  ZipfGenerator zipf(std::max<uint64_t>(1, gen->generated()), 0.99,
                     options.seed);
  const auto t0 = std::chrono::steady_clock::now();
  const double sim0 = SimulatedSeconds(ds);
  for (uint64_t i = 0; i < options.num_ops; i++) {
    const bool update =
        gen->generated() > 0 && rng.Bernoulli(options.update_ratio);
    if (update) {
      uint64_t idx;
      if (options.distribution == UpdateDistribution::kZipf) {
        zipf.Grow(gen->generated());
        // Rank 0 = most recently ingested key (YCSB-latest style skew).
        const uint64_t rank = zipf.Next();
        idx = gen->generated() - 1 - rank;
      } else {
        idx = rng.Uniform(gen->generated());
      }
      AUXLSM_RETURN_NOT_OK(ds->Upsert(gen->Update(idx)));
      report->duplicate_or_update_ops++;
    } else {
      AUXLSM_RETURN_NOT_OK(ds->Upsert(gen->Next()));
      report->new_records++;
    }
    report->ops++;
  }
  report->elapsed_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  report->simulated_io_seconds = SimulatedSeconds(ds) - sim0;
  return Status::OK();
}

Status LoadRecords(Dataset* ds, TweetGenerator* gen, uint64_t n) {
  for (uint64_t i = 0; i < n; i++) {
    AUXLSM_RETURN_NOT_OK(ds->Upsert(gen->Next()));
  }
  return Status::OK();
}

Status RunPagedReadWorkload(Dataset* ds,
                            const PagedReadWorkloadOptions& options,
                            PagedReadReport* report) {
  Random rng(options.seed);
  const uint64_t span =
      options.user_domain > options.range_width
          ? options.user_domain - options.range_width
          : 1;
  ReadOptions ro;
  ro.io_queue = options.io_queue;
  const auto t0 = std::chrono::steady_clock::now();
  for (uint64_t i = 0; i < options.num_queries; i++) {
    const uint64_t lo = rng.Uniform(span);
    ReadQuery q = Query()
                      .Range(lo, lo + options.range_width - 1)
                      .Limit(options.limit)
                      .PageSize(options.page_size)
                      .Options(ro);
    if (options.index_name.empty()) {
      q.Secondary();
    } else {
      q.Secondary(options.index_name);
    }
    AUXLSM_ASSIGN_OR_RETURN(auto cursor, ds->NewCursor(q));
    QueryPage page;
    while (!cursor->done()) {
      AUXLSM_RETURN_NOT_OK(cursor->Next(&page));
      report->rows += page.rows();
      if (!page.empty()) report->pages++;
    }
    report->candidates += cursor->stats().candidates;
    report->validated_out += cursor->stats().validated_out;
    report->queries++;
  }
  report->elapsed_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return Status::OK();
}

HotKeyGenerator::HotKeyGenerator(const HotKeyOptions& options)
    : options_(options),
      rng_(options.seed),
      zipf_(std::max<uint64_t>(1, options.domain), options.theta,
            options.seed) {}

uint64_t HotKeyGenerator::Scatter(uint64_t i) const {
  // Popular ranks / hot-set ordinals land on pseudo-random but stable keys,
  // so the hot working set is spread over the domain instead of being the
  // prefix [0, k) (which range filters or key order could accidentally
  // favor).
  return Mix64(i) % std::max<uint64_t>(1, options_.domain);
}

uint64_t HotKeyGenerator::Next() {
  if (options_.skew == HotKeyOptions::Skew::kZipf) {
    return Scatter(zipf_.Next());
  }
  if (options_.hot_keys > 0 && rng_.Bernoulli(options_.hot_fraction)) {
    return Scatter(rng_.Uniform(options_.hot_keys));
  }
  return rng_.Uniform(std::max<uint64_t>(1, options_.domain));
}

}  // namespace auxlsm
