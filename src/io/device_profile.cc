#include "io/device_profile.h"

#include <algorithm>

namespace auxlsm {

DeviceProfile DeviceProfile::FromDisk(DiskProfile p, uint32_t queues) {
  DeviceProfile d;
  d.name = p.name + (queues > 1 ? "x" + std::to_string(queues) : "");
  d.queue_profile = std::move(p);
  d.queues = std::max<uint32_t>(1, queues);
  return d;
}

DeviceProfile DeviceProfile::Hdd() {
  DeviceProfile d = FromDisk(DiskProfile::Hdd(), 1);
  d.name = "hdd";
  return d;
}

DeviceProfile DeviceProfile::SataSsd(uint32_t queues) {
  DeviceProfile d = FromDisk(DiskProfile::Ssd(), queues);
  d.name = "sata-ssd";
  return d;
}

DeviceProfile DeviceProfile::Nvme(uint32_t queues) {
  // 4KiB pages: ~20us random read, ~2GB/s streaming reads, ~1.5GB/s writes
  // per queue.
  DiskProfile p;
  p.seek_us = 20;
  p.read_transfer_us = 2;
  p.write_transfer_us = 3;
  p.name = "nvme";
  DeviceProfile d = FromDisk(std::move(p), queues);
  d.name = "nvme";
  return d;
}

DeviceProfile DeviceProfile::Null() {
  DeviceProfile d = FromDisk(DiskProfile::Null(), 1);
  d.name = "null";
  return d;
}

}  // namespace auxlsm
