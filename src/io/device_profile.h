// Device profiles for the multi-queue simulated I/O subsystem (io/io_engine.h).
//
// DiskProfile (env/disk_model.h) describes the cost parameters of ONE disk
// head. A DeviceProfile extends that with the device's queue topology: how
// many independent submission queues the device exposes, each with its own
// head position and per-queue bandwidth. An HDD has a single arm, so it is a
// one-queue device; a SATA SSD exposes a small NCQ depth; NVMe exposes many
// deep submission queues whose requests genuinely proceed in parallel.
//
// The queue count is what lets concurrent maintenance shorten *simulated*
// time, not just wall-clock: the IoEngine charges each request to one queue's
// virtual clock and reports the completed time of a parallel phase as the max
// over queues (the critical path) instead of the sum.
#pragma once

#include <cstdint>
#include <string>

#include "env/disk_model.h"

namespace auxlsm {

struct DeviceProfile {
  /// Cost parameters of each queue's head (seek/transfer, microseconds).
  DiskProfile queue_profile;
  /// Independent submission queues. 1 reproduces the legacy single-head
  /// DiskModel bit-for-bit.
  uint32_t queues = 1;
  std::string name;

  /// Wraps a legacy DiskProfile as an n-queue device (n defaults to 1, the
  /// exact legacy behavior).
  static DeviceProfile FromDisk(DiskProfile p, uint32_t queues = 1);

  /// 7200rpm SATA HDD: one arm, one queue.
  static DeviceProfile Hdd();
  /// SATA SSD with a small native-command-queue depth.
  static DeviceProfile SataSsd(uint32_t queues = 4);
  /// NVMe SSD: many independent submission queues, lower per-request
  /// latency and higher per-queue bandwidth than SATA.
  static DeviceProfile Nvme(uint32_t queues = 8);
  /// Zero-cost device (pure CPU measurements).
  static DeviceProfile Null();
};

}  // namespace auxlsm
