// Multi-queue simulated I/O engine.
//
// The legacy DiskModel charges every page access of an Env to a single disk
// head, so concurrent maintenance (parallel flushes, partitioned merges,
// group-commit syncs) could only shorten wall-clock time — simulated disk
// seconds were structurally blind to parallelism. The IoEngine replaces that
// with a device-level request scheduler:
//
//   - It owns N independent queues (DeviceProfile::queues). Each queue is a
//     full DiskModel: its own head position, its own sequential/random
//     classification, and its own virtual-time clock. Requests charged to
//     different queues overlap in modeled time; requests on one queue
//     serialize against that queue's head, exactly as before.
//   - Submit(IoRequest) -> IoTicket prices the request on its queue's clock
//     and returns a ticket carrying the completion virtual time; Wait(ticket)
//     returns it. (Simulated devices complete instantly in wall time — the
//     split exists so call sites read like an async submission API and so a
//     caller can observe per-request completion times, e.g. the WAL's
//     per-commit latency accounting.)
//   - Threads map to queues with IoQueueScope (RAII). The maintenance
//     scheduler binds each fanned-out task to queue (task_index % queues), so
//     affinity is deterministic: the same trace with the same affinity always
//     produces the same per-queue clocks regardless of host thread
//     interleaving across queues. An unbound thread charges queue 0.
//   - stats() aggregates over queues: counters and simulated_us sum (total
//     device work), while critical_path_us is the max over queue clocks (the
//     completed simulated time of the device). With queues == 1 the two are
//     equal and every charge goes through one DiskModel — bit-for-bit the
//     legacy behavior.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/stat_counter.h"
#include "env/disk_model.h"
#include "io/device_profile.h"

namespace auxlsm {

class FaultInjector;

namespace obs {
class MetricsRegistry;
class Histogram;
class Tracer;
}  // namespace obs

/// One simulated device request. Reads address a (file, page) pair so the
/// queue's head can classify them sequential vs. random; writes are
/// append-streams of n_pages at sequential cost.
struct IoRequest {
  enum class Op { kRead, kWrite };
  Op op = Op::kRead;
  uint32_t file_id = 0;   ///< reads
  uint32_t page_no = 0;   ///< reads
  uint64_t n_pages = 1;   ///< writes
  /// Target queue; kAnyQueue charges the calling thread's bound queue.
  static constexpr int32_t kAnyQueue = -1;
  int32_t queue = kAnyQueue;

  static IoRequest Read(uint32_t file_id, uint32_t page_no) {
    IoRequest r;
    r.op = Op::kRead;
    r.file_id = file_id;
    r.page_no = page_no;
    return r;
  }
  static IoRequest Write(uint64_t n_pages) {
    IoRequest r;
    r.op = Op::kWrite;
    r.n_pages = n_pages;
    return r;
  }
};

/// Completion handle of a submitted request: which queue served it and that
/// queue's virtual clock after it completed.
struct IoTicket {
  uint32_t queue = 0;
  double complete_us = 0;
};

class IoEngine {
 public:
  explicit IoEngine(DeviceProfile profile);

  IoEngine(const IoEngine&) = delete;
  IoEngine& operator=(const IoEngine&) = delete;

  uint32_t num_queues() const { return uint32_t(queues_.size()); }
  const DeviceProfile& profile() const { return profile_; }

  /// Prices the request on its queue's virtual clock (the thread-bound queue
  /// when req.queue is kAnyQueue) and returns the completion ticket.
  IoTicket Submit(const IoRequest& req);

  /// Returns the request's completion virtual time. A real engine would
  /// block here; the simulated device completes at submit.
  double Wait(const IoTicket& ticket) const { return ticket.complete_us; }

  // --- Synchronous conveniences (the Env / BufferCache charging surface) ----
  void ChargeRead(uint32_t file_id, uint32_t page_no) {
    Submit(IoRequest::Read(file_id, page_no));
  }
  void ChargeWrite(uint64_t n_pages) { Submit(IoRequest::Write(n_pages)); }
  void OnCacheHit();
  void OnCacheMiss();

  /// Advances the calling thread's bound queue clock by a flat `us` without
  /// moving its head (injected device stalls); returns the post-charge
  /// clock. This is the modeled-clock sink for FaultSpec::Action::kDelay.
  double ChargeDelay(double us);

  /// Failpoint hook (fault/fault_injector.h). A null injector (default) is
  /// a single branch in Submit; an injector that fires an error discards
  /// the submission (the engine has no Status channel — see
  /// FaultInjector::HitCharge).
  void set_fault_injector(FaultInjector* fault) { fault_ = fault; }

  /// Observability hooks (obs/metrics.h, obs/trace.h). Attach before the
  /// engine sees concurrent traffic; the registry/tracer must outlive the
  /// engine (or be detached with null first). `prefix` namespaces the
  /// metric names — "io.storage" and "io.log" for the two engines of a
  /// Dataset — registering `<prefix>.requests`, `<prefix>.q<i>.requests`
  /// per queue, and the `<prefix>.request_modeled_ns` cost histogram.
  /// Recording never charges modeled time (armed-but-quiet contract).
  void set_metrics(obs::MetricsRegistry* metrics, const std::string& prefix);
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }

  /// The calling thread's bound queue clock (simulated_us) — the modeled
  /// timeline trace spans stamp.
  double BoundQueueClock() const;

  /// Forgets head positions resting on file_id, on every queue. Called when
  /// a retired component's file is deleted (merge and repair paths) so no
  /// queue keeps a stale head on a dead file.
  void ForgetFile(uint32_t file_id);

  /// Files some queue's head currently rests on (deduplicated, for the
  /// no-stale-head leak assertions in env_test).
  std::vector<uint32_t> HeadFiles() const;

  /// The calling thread's bound queue for this engine (0 when unbound).
  uint32_t BoundQueue() const;

  /// Aggregate over queues: counters and simulated_us sum; critical_path_us
  /// is the max over queue clocks.
  IoStats stats() const;
  /// One queue's accounting (its critical_path_us equals its simulated_us).
  IoStats queue_stats(uint32_t queue) const;
  /// Shorthand for stats().critical_path_us.
  double critical_path_us() const;
  /// Every queue's virtual clock. Interval measurements must diff these
  /// per queue and take the max of the deltas — the difference of two
  /// critical_path_us snapshots is NOT the interval's critical path when
  /// the interval's work lands on a queue other than the leading one.
  std::vector<double> QueueClocks() const;

 private:
  friend class IoQueueScope;
  friend class MaybeIoQueueScope;
  /// Per-thread binding stack; engine-keyed so one thread can hold bindings
  /// on several engines (storage + log) at once.
  static std::vector<std::pair<const IoEngine*, uint32_t>>& TlsBindings();

  /// Resolves a request's target queue index: explicit queue id wins,
  /// kAnyQueue takes the thread binding; out-of-range ids wrap.
  uint32_t ResolveQueue(int32_t requested) const;

  /// Slow path of Submit's observability tail: counts the request and
  /// records its modeled cost into the histogram / trace ring.
  void ObserveSubmit(const IoRequest& req, const IoTicket& ticket,
                     double before_us);

  DeviceProfile profile_;
  std::vector<std::unique_ptr<DiskModel>> queues_;
  FaultInjector* fault_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
  StatCounter* req_counter_ = nullptr;            ///< <prefix>.requests
  std::vector<StatCounter*> queue_req_counters_;  ///< <prefix>.q<i>.requests
  obs::Histogram* req_hist_ = nullptr;            ///< <prefix>.request_modeled_ns
};

/// RAII thread->queue binding. While alive, the constructing thread's
/// kAnyQueue submissions to `engine` are charged to `queue % num_queues`.
/// Scopes nest (innermost wins); a null engine makes the scope a no-op.
class IoQueueScope {
 public:
  IoQueueScope(IoEngine* engine, uint32_t queue);
  ~IoQueueScope();

  IoQueueScope(const IoQueueScope&) = delete;
  IoQueueScope& operator=(const IoQueueScope&) = delete;

 private:
  IoEngine* engine_;
};

/// Conditional binding: binds like IoQueueScope when queue >= 0 and leaves
/// the thread's current binding untouched when queue is negative. This is
/// the read path's queue selector — ReadOptions::io_queue defaults to -1
/// ("charge wherever the calling thread is bound"), and a reader pool binds
/// reader i to queue i % Q by passing explicit ids.
class MaybeIoQueueScope {
 public:
  MaybeIoQueueScope(IoEngine* engine, int32_t queue);
  ~MaybeIoQueueScope();

  MaybeIoQueueScope(const MaybeIoQueueScope&) = delete;
  MaybeIoQueueScope& operator=(const MaybeIoQueueScope&) = delete;

 private:
  IoEngine* engine_;  ///< null when no binding was pushed
};

}  // namespace auxlsm
