#include "io/io_engine.h"

#include <algorithm>
#include <cmath>

#include "fault/fault_injector.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace auxlsm {

IoEngine::IoEngine(DeviceProfile profile) : profile_(std::move(profile)) {
  const uint32_t n = std::max<uint32_t>(1, profile_.queues);
  queues_.reserve(n);
  for (uint32_t i = 0; i < n; i++) {
    queues_.push_back(std::make_unique<DiskModel>(profile_.queue_profile));
  }
}

std::vector<std::pair<const IoEngine*, uint32_t>>& IoEngine::TlsBindings() {
  static thread_local std::vector<std::pair<const IoEngine*, uint32_t>>
      bindings;
  return bindings;
}

uint32_t IoEngine::BoundQueue() const {
  const auto& bindings = TlsBindings();
  for (auto it = bindings.rbegin(); it != bindings.rend(); ++it) {
    if (it->first == this) return it->second;
  }
  return 0;
}

uint32_t IoEngine::ResolveQueue(int32_t requested) const {
  // The one place the queue-selection rule lives: an explicit request wins,
  // otherwise the thread's binding, and out-of-range ids wrap.
  const uint32_t q = requested == IoRequest::kAnyQueue ? BoundQueue()
                                                       : uint32_t(requested);
  return q % num_queues();
}

IoTicket IoEngine::Submit(const IoRequest& req) {
  IoTicket t;
  t.queue = ResolveQueue(req.queue);
  if (fault_ != nullptr && fault_->HitCharge(failpoints::kIoSubmit, this)) {
    // The injected device dropped the request; its ticket completes at the
    // queue's current clock with nothing charged.
    t.complete_us = queues_[t.queue]->stats().simulated_us;
    return t;
  }
  const bool observed = req_hist_ != nullptr || tracer_ != nullptr;
  double before_us = 0;
  if (observed) before_us = queues_[t.queue]->stats().simulated_us;
  DiskModel& model = *queues_[t.queue];
  t.complete_us = req.op == IoRequest::Op::kRead
                      ? model.ChargeRead(req.file_id, req.page_no)
                      : model.ChargeWrite(req.n_pages);
  if (observed) ObserveSubmit(req, t, before_us);
  return t;
}

void IoEngine::set_metrics(obs::MetricsRegistry* metrics,
                           const std::string& prefix) {
  if (metrics == nullptr) {
    req_counter_ = nullptr;
    queue_req_counters_.clear();
    req_hist_ = nullptr;
    return;
  }
  req_counter_ = metrics->counter(prefix + ".requests");
  queue_req_counters_.clear();
  for (uint32_t i = 0; i < num_queues(); ++i) {
    queue_req_counters_.push_back(
        metrics->counter(prefix + ".q" + std::to_string(i) + ".requests"));
  }
  req_hist_ = metrics->histogram(prefix + ".request_modeled_ns");
}

void IoEngine::ObserveSubmit(const IoRequest& req, const IoTicket& t,
                             double before_us) {
  const double cost_us = t.complete_us - before_us;
  if (req_counter_ != nullptr) {
    ++*req_counter_;
    ++*queue_req_counters_[t.queue];
    req_hist_->Record(uint64_t(std::llround(cost_us * 1000.0)));
  }
  if (tracer_ != nullptr) {
    obs::TraceEvent ev;
    ev.SetName(req.op == IoRequest::Op::kRead ? "io.read" : "io.write");
    ev.cat = "io";
    ev.queue = int32_t(t.queue);
    ev.wall_ts_us = tracer_->WallNowUs();
    ev.modeled_ts_us = before_us;
    ev.modeled_dur_us = cost_us;
    tracer_->Record(ev);
  }
}

double IoEngine::BoundQueueClock() const {
  return queues_[BoundQueue()]->stats().simulated_us;
}

double IoEngine::ChargeDelay(double us) {
  return queues_[ResolveQueue(IoRequest::kAnyQueue)]->ChargeDelay(us);
}

void IoEngine::OnCacheHit() {
  queues_[ResolveQueue(IoRequest::kAnyQueue)]->OnCacheHit();
}

void IoEngine::OnCacheMiss() {
  queues_[ResolveQueue(IoRequest::kAnyQueue)]->OnCacheMiss();
}

void IoEngine::ForgetFile(uint32_t file_id) {
  for (auto& q : queues_) q->ForgetFile(file_id);
}

std::vector<uint32_t> IoEngine::HeadFiles() const {
  std::vector<uint32_t> files;
  for (const auto& q : queues_) {
    uint32_t f = 0;
    if (q->HeadFile(&f) &&
        std::find(files.begin(), files.end(), f) == files.end()) {
      files.push_back(f);
    }
  }
  return files;
}

IoStats IoEngine::stats() const {
  IoStats total;
  for (const auto& q : queues_) {
    const IoStats s = q->stats();
    total.pages_read += s.pages_read;
    total.random_reads += s.random_reads;
    total.sequential_reads += s.sequential_reads;
    total.pages_written += s.pages_written;
    total.cache_hits += s.cache_hits;
    total.cache_misses += s.cache_misses;
    total.simulated_us += s.simulated_us;
    total.critical_path_us = std::max(total.critical_path_us, s.simulated_us);
  }
  return total;
}

IoStats IoEngine::queue_stats(uint32_t queue) const {
  return queues_[queue % queues_.size()]->stats();
}

double IoEngine::critical_path_us() const {
  double max_us = 0;
  for (const auto& q : queues_) {
    max_us = std::max(max_us, q->stats().simulated_us);
  }
  return max_us;
}

std::vector<double> IoEngine::QueueClocks() const {
  std::vector<double> clocks;
  clocks.reserve(queues_.size());
  for (const auto& q : queues_) clocks.push_back(q->stats().simulated_us);
  return clocks;
}

IoQueueScope::IoQueueScope(IoEngine* engine, uint32_t queue)
    : engine_(engine) {
  if (engine_ == nullptr) return;
  IoEngine::TlsBindings().emplace_back(engine_,
                                       queue % engine_->num_queues());
}

IoQueueScope::~IoQueueScope() {
  if (engine_ == nullptr) return;
  auto& bindings = IoEngine::TlsBindings();
  // Scopes are strictly nested per thread, so ours is the innermost binding
  // for this engine; erase from the back.
  for (auto it = bindings.rbegin(); it != bindings.rend(); ++it) {
    if (it->first == engine_) {
      bindings.erase(std::next(it).base());
      return;
    }
  }
}

MaybeIoQueueScope::MaybeIoQueueScope(IoEngine* engine, int32_t queue)
    : engine_(queue >= 0 ? engine : nullptr) {
  if (engine_ == nullptr) return;
  IoEngine::TlsBindings().emplace_back(
      engine_, uint32_t(queue) % engine_->num_queues());
}

MaybeIoQueueScope::~MaybeIoQueueScope() {
  if (engine_ == nullptr) return;
  auto& bindings = IoEngine::TlsBindings();
  for (auto it = bindings.rbegin(); it != bindings.rend(); ++it) {
    if (it->first == engine_) {
      bindings.erase(std::next(it).base());
      return;
    }
  }
}

}  // namespace auxlsm
