// One simulated client connection of the request server (PR 9).
//
// A ClientConnection is a duplex byte stream between one client and the
// RequestServer, modeled after iproto's per-connection input queues: the
// client appends encoded request frames with Send() and drains decoded
// responses with Receive(); the server side moves inbound bytes into a
// private decode buffer, extracts complete frames (tolerating torn tails
// and skipping damaged frames — see server/protocol.h), and queues the
// decoded requests for per-connection batched dispatch.
//
// Thread model: Send() and Receive() are safe to call from one client
// thread concurrently with the server's dispatch loop (the buffers are
// mutex-guarded); the decode buffer, pending queue, and completion clock
// are touched only by the server (single dispatch thread, or one worker
// per connection when the server fans batches out — requests of one
// connection are never processed concurrently, preserving per-connection
// FIFO exactly like a real per-socket input queue).
//
// Device affinity: connection i binds to storage queue (i % Q) and log
// queue (i % Qlog), so a multi-queue DeviceProfile serves connections'
// I/O on overlapping modeled clocks (the PR 3 affinity rules applied to
// the service edge).
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/stat_counter.h"
#include "common/thread_annotations.h"
#include "server/protocol.h"

namespace auxlsm {

class FaultInjector;

namespace server {

/// Relaxed atomics (StatCounter): bumped by the dispatch loop, read by
/// concurrent stats()/MetricsSnapshot() pollers.
struct ConnectionStats {
  StatCounter requests_decoded;
  StatCounter decode_errors;   ///< damaged frames surfaced as error responses
  StatCounter responses_sent;
  StatCounter batches;         ///< dispatch batches taken from this connection
  StatCounter batched_requests;
  StatCounter max_batch;       ///< largest single dispatch batch
};

class ClientConnection {
 public:
  uint64_t id() const { return id_; }
  /// Storage-device queue this connection's requests are charged to.
  uint32_t io_queue() const { return io_queue_; }
  /// Log-device queue its commits are charged to.
  uint32_t log_queue() const { return log_queue_; }

  // --- Client side ----------------------------------------------------------
  /// Appends encoded request frames to the inbound stream (thread-safe).
  void Send(const std::string& bytes);
  /// Drains and decodes the outbound stream into responses (thread-safe).
  /// Truncated response tails wait for more bytes; the server never writes
  /// damaged frames, so a decode failure here aborts in tests.
  std::vector<Response> Receive();

  const ConnectionStats& stats() const { return stats_; }
  /// Decoded requests awaiting dispatch (server-side backlog gauge).
  size_t pending_requests() const;

 private:
  friend class RequestServer;

  ClientConnection(uint64_t id, uint32_t io_queue, uint32_t log_queue)
      : id_(id), io_queue_(io_queue), log_queue_(log_queue) {}

  /// Server side: moves inbound bytes into the decode buffer and extracts
  /// complete frames. Damaged frames — including frames dropped by a fired
  /// server.decode_frame failpoint — produce immediate error responses
  /// (written to the outbound stream) instead of reaching the dataset.
  /// Returns the number of requests decoded.
  size_t DecodeInbound(size_t max_frame_bytes, FaultInjector* fault,
                       std::vector<Response>* decode_failures);

  /// Server side: takes up to max_batch pending requests as one batch.
  std::vector<Request> TakeBatch(size_t max_batch);

  /// Server side: encodes and writes one response to the outbound stream.
  void Write(const Response& response);

  const uint64_t id_;
  const uint32_t io_queue_;
  const uint32_t log_queue_;

  // Unranked stream mutexes: held only for the byte-buffer splice itself,
  // never while calling into the engine.
  mutable Mutex in_mu_;
  std::string inbox_ GUARDED_BY(in_mu_);  ///< client -> server bytes
  mutable Mutex out_mu_;
  std::string outbox_ GUARDED_BY(out_mu_);  ///< server -> client bytes

  // Server-only state (never touched concurrently; see thread model above).
  std::string decode_buf_;  ///< partial-frame residue across polls
  mutable Mutex pending_mu_;  ///< pending_ size is read by gauges
  /// Decoded requests awaiting dispatch.
  std::deque<Request> pending_ GUARDED_BY(pending_mu_);
  /// Modeled completion time of this connection's last finished request:
  /// per-connection responses complete in FIFO order on the virtual clock.
  double last_completion_us_ = 0;
  ConnectionStats stats_;
};

}  // namespace server
}  // namespace auxlsm
