#include "server/connection.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "common/coding.h"
#include "fault/fault_injector.h"

namespace auxlsm {
namespace server {

void ClientConnection::Send(const std::string& bytes) {
  MutexLock l(in_mu_);
  inbox_ += bytes;
}

std::vector<Response> ClientConnection::Receive() {
  std::string bytes;
  {
    MutexLock l(out_mu_);
    bytes.swap(outbox_);
  }
  std::vector<Response> out;
  Slice in(bytes);
  while (!in.empty()) {
    Slice body;
    size_t consumed = 0;
    std::string error;
    const FrameResult fr =
        DecodeFrame(in, kDefaultMaxFrameBytes, &body, &consumed, &error);
    if (fr == FrameResult::kNeedMore) {
      // Torn response tail: push the residue back for the next Receive.
      MutexLock l(out_mu_);
      outbox_.insert(0, in.data(), in.size());
      break;
    }
    if (fr == FrameResult::kBad) {
      // The server encodes every response itself; a damaged frame here is a
      // bug, not a workload condition.
      std::fprintf(stderr, "ClientConnection::Receive: %s\n", error.c_str());
      std::abort();
    }
    Response r;
    const Status st = Response::DecodeBody(body, &r);
    if (!st.ok()) {
      std::fprintf(stderr, "ClientConnection::Receive: %s\n",
                   st.ToString().c_str());
      std::abort();
    }
    out.push_back(std::move(r));
    in.remove_prefix(consumed);
  }
  return out;
}

size_t ClientConnection::pending_requests() const {
  MutexLock l(pending_mu_);
  return pending_.size();
}

size_t ClientConnection::DecodeInbound(
    size_t max_frame_bytes, FaultInjector* fault,
    std::vector<Response>* decode_failures) {
  {
    MutexLock l(in_mu_);
    decode_buf_ += inbox_;
    inbox_.clear();
  }
  size_t decoded = 0;
  Slice in(decode_buf_);
  while (!in.empty()) {
    Slice body;
    size_t consumed = 0;
    std::string error;
    const FrameResult fr =
        DecodeFrame(in, max_frame_bytes, &body, &consumed, &error);
    if (fr == FrameResult::kNeedMore) break;
    in.remove_prefix(consumed);
    if (fr == FrameResult::kBad) {
      stats_.decode_errors++;
      Response err;
      err.code = ResponseCode::kBadRequest;
      err.message = "decode: " + error;
      decode_failures->push_back(std::move(err));
      continue;
    }
    Request req;
    Status st = Request::DecodeBody(body, &req);
    if (st.ok() && fault != nullptr) {
      // server.decode_frame failpoint: a fired decode fault models a frame
      // damaged past recovery — the request is dropped before dispatch and
      // the client sees a per-request error (retryable for transient
      // injections), never a partial dataset effect.
      const Status fst = fault->Hit(failpoints::kServerDecodeFrame);
      if (!fst.ok()) {
        stats_.decode_errors++;
        Response err;
        err.request_id = req.request_id;
        err.code = fst.retryable() ? ResponseCode::kRetryable
                                   : ResponseCode::kBadRequest;
        err.message = "decode: " + fst.ToString();
        decode_failures->push_back(std::move(err));
        continue;
      }
    }
    if (!st.ok()) {
      // The frame passed its CRC but the body grammar is wrong (or the
      // decode failpoint fired upstream): a per-request error, never a
      // dataset touch. The request id is the first field, so it is
      // recoverable whenever at least the header decoded.
      stats_.decode_errors++;
      Response err;
      err.code = ResponseCode::kBadRequest;
      err.message = "decode: " + st.ToString();
      if (body.size() >= 8) err.request_id = DecodeFixed64(body.data());
      decode_failures->push_back(std::move(err));
      continue;
    }
    {
      MutexLock l(pending_mu_);
      pending_.push_back(std::move(req));
    }
    decoded++;
  }
  decode_buf_.erase(0, decode_buf_.size() - in.size());
  stats_.requests_decoded += decoded;
  return decoded;
}

std::vector<Request> ClientConnection::TakeBatch(size_t max_batch) {
  std::vector<Request> batch;
  MutexLock l(pending_mu_);
  const size_t n = std::min(max_batch, pending_.size());
  batch.reserve(n);
  for (size_t i = 0; i < n; i++) {
    batch.push_back(std::move(pending_.front()));
    pending_.pop_front();
  }
  if (!batch.empty()) {
    stats_.batches++;
    stats_.batched_requests += batch.size();
    if (batch.size() > stats_.max_batch.load()) {
      stats_.max_batch = uint64_t(batch.size());
    }
  }
  return batch;
}

void ClientConnection::Write(const Response& response) {
  const std::string frame = response.EncodeFrame();
  MutexLock l(out_mu_);
  outbox_ += frame;
  stats_.responses_sent++;
}

}  // namespace server
}  // namespace auxlsm
