// Wire protocol of the network service layer (PR 9).
//
// Requests and responses travel as length-prefixed, CRC-framed binary
// frames — the same framing discipline as the WAL's log records
// (txn/log_record.cc), so a torn or corrupted frame is detectable before
// any field is trusted:
//
//   frame := [fixed32 body_len][fixed32 masked_crc32c(body)][body]
//
// A stream decoder distinguishes three outcomes: a complete valid frame
// (kOk), an incomplete tail that needs more bytes (kNeedMore — the normal
// residue of streaming, never an error), and a damaged frame (kBad — CRC
// mismatch or an implausible length). A CRC-failing frame still has a
// trustworthy boundary (the length prefix precedes the checksummed body),
// so the decoder skips exactly that frame and resynchronizes on the next;
// an implausible length (> max_frame_bytes) means the boundary itself is
// garbage and the decoder drops the remaining buffer. Either way the
// server surfaces a per-request error response — a malformed frame never
// reaches the dataset (see failpoints server.decode_frame).
//
// Request bodies carry a request id (echoed in the response), the modeled
// arrival timestamp (IEEE-754 bits of the open-loop driver's virtual
// clock, microseconds; 0 = "now"), the operation type, and a per-type
// payload. Response bodies echo the id and report a ResponseCode, the
// result rows, an optional cursor id for paginated continuation
// (kCursorNext), and the request's modeled completion/latency stamps.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/slice.h"
#include "common/status.h"
#include "format/record.h"

namespace auxlsm {
namespace server {

/// Frame header: fixed32 body length + fixed32 masked CRC-32C of the body.
inline constexpr size_t kFrameHeaderBytes = 8;
/// Default ceiling on one frame's body; a length prefix above the
/// configured maximum is treated as stream corruption (the boundary cannot
/// be trusted, so the decoder cannot resynchronize past it).
inline constexpr size_t kDefaultMaxFrameBytes = 1u << 20;

/// Wraps a body in a CRC frame.
std::string EncodeFrame(const std::string& body);

enum class FrameResult {
  kOk,        ///< *body holds a verified frame body; *consumed advanced
  kNeedMore,  ///< incomplete tail — feed more bytes, nothing consumed
  kBad,       ///< damaged frame — *consumed skips it (or the whole buffer)
};

/// Extracts the next frame from `in`. On kBad, *consumed is the number of
/// bytes to discard (the damaged frame when its boundary is trustworthy,
/// the whole buffer when the length prefix is implausible) and *error
/// explains the damage.
FrameResult DecodeFrame(const Slice& in, size_t max_frame_bytes, Slice* body,
                        size_t* consumed, std::string* error);

enum class RequestType : uint8_t {
  kInsert = 1,      ///< insert (duplicate key -> kOk with count=0)
  kUpsert = 2,
  kDelete = 3,
  kGet = 4,         ///< primary-key point read
  kQuery = 5,       ///< secondary range query, paginated via cursor_id
  kScan = 6,        ///< creation_time range-filter scan (count-only)
  kCursorNext = 7,  ///< pull the next page of an open server cursor
  kCursorClose = 8, ///< drop an open server cursor
};

struct Request {
  uint64_t request_id = 0;
  /// Modeled send time (microseconds on the open-loop driver's virtual
  /// clock). 0 = no arrival model: the request is treated as arriving the
  /// moment the server gets to it, so its latency is pure service time.
  double arrival_us = 0;
  RequestType type = RequestType::kGet;

  TweetRecord record;       ///< kInsert / kUpsert
  uint64_t id = 0;          ///< kDelete / kGet
  std::string index_name;   ///< kQuery; empty = the first secondary index
  uint64_t range_lo = 0, range_hi = 0;  ///< kQuery secondary-key range
  uint64_t time_lo = 0, time_hi = 0;    ///< kScan creation_time range
  uint64_t limit = 0;       ///< kQuery; 0 = unlimited
  uint64_t page_size = 0;   ///< kQuery rows per page; 0 = server default
  uint64_t cursor_id = 0;   ///< kCursorNext / kCursorClose

  std::string EncodeBody() const;
  /// EncodeBody wrapped in a CRC frame — what a client writes to the wire.
  std::string EncodeFrame() const;
  static Status DecodeBody(const Slice& body, Request* out);
};

enum class ResponseCode : uint8_t {
  kOk = 0,
  kNotFound = 1,    ///< kGet miss
  kRetryable = 2,   ///< transient server/dataset condition — retry the op
  kBadRequest = 3,  ///< malformed frame / unknown type / bad cursor id
  kError = 4,       ///< permanent failure of this request
};

const char* ResponseCodeName(ResponseCode code);

struct Response {
  uint64_t request_id = 0;
  ResponseCode code = ResponseCode::kOk;
  /// Cursor protocol: done=false + cursor_id != 0 means more pages are
  /// available via kCursorNext. Non-cursor responses are always done.
  bool done = true;
  uint64_t cursor_id = 0;
  /// kScan: matched rows; kInsert: 1 iff a new record was inserted;
  /// kQuery/kCursorNext: rows in this page (== records.size()).
  uint64_t count = 0;
  /// Modeled completion time and arrival->completion latency of this
  /// request on the service's virtual clocks (server/server.h).
  double completion_us = 0;
  double latency_us = 0;
  std::string message;  ///< error text (empty on kOk)
  std::vector<TweetRecord> records;

  std::string EncodeBody() const;
  std::string EncodeFrame() const;
  static Status DecodeBody(const Slice& body, Response* out);
};

}  // namespace server
}  // namespace auxlsm
