#include "server/server.h"

#include <algorithm>
#include <future>
#include <numeric>
#include <utility>

#include "core/dataset.h"
#include "env/env.h"
#include "exec/thread_pool.h"
#include "io/io_engine.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "txn/wal.h"

namespace auxlsm {
namespace server {

RequestServer::RequestServer(Dataset* dataset, ServerOptions options)
    : ds_(dataset),
      options_(options),
      dispatcher_(dataset, options.fault_injector,
                  options.max_open_cursors_per_connection) {
  queue_next_free_us_.assign(ds_->env()->io()->num_queues(), 0.0);
  // Two connections share a storage queue iff their ids are congruent mod
  // Qs, a log queue iff congruent mod Qlog. Congruence mod gcd(Qs, Qlog)
  // is implied by either, so partitioning workers on (id % gcd) puts every
  // pair of connections that can touch the same DiskModel queue on the
  // same worker — the queues themselves are unsynchronized.
  queue_partition_stride_ =
      std::gcd(std::max<uint32_t>(1, ds_->env()->io()->num_queues()),
               std::max<uint32_t>(1, ds_->wal()->io()->num_queues()));
  if (options_.worker_threads > 1) {
    pool_ = std::make_unique<ThreadPool>(options_.worker_threads);
  }
  if (options_.metrics != nullptr) {
    ctr_requests_ = options_.metrics->counter("server.requests");
    ctr_responses_ = options_.metrics->counter("server.responses");
    ctr_decode_errors_ = options_.metrics->counter("server.decode_errors");
    ctr_batches_ = options_.metrics->counter("server.batches");
    hist_latency_ = options_.metrics->histogram("server.request_modeled_ns");
  }
  // Fold the service-side backlog into Dataset::MetricsSnapshot() /
  // DebugString() (satellite 6). Unregistered in the destructor — the
  // server must be torn down before its dataset.
  metrics_source_id_ = ds_->AddMetricsSource([this](obs::MetricsSnapshot* s) {
    const ServerStats st = stats();
    s->Set("server.connections", double(st.connections));
    s->Set("server.inflight_requests", double(st.inflight_requests));
    s->Set("server.dispatch_queue_depth", double(st.inflight_requests));
    s->Set("server.open_cursors", double(st.open_cursors));
    s->Set("server.requests_dispatched", double(st.requests_dispatched));
    s->Set("server.decode_errors", double(st.decode_errors));
    s->Set("server.errors", double(st.errors));
    s->Set("server.batch_max", double(st.max_batch));
    s->Set("server.batch_avg",
           st.batches > 0 ? double(st.requests_dispatched) / double(st.batches)
                          : 0);
  });
}

RequestServer::~RequestServer() {
  ds_->RemoveMetricsSource(metrics_source_id_);
}

ClientConnection* RequestServer::Connect() {
  MutexLock l(conns_mu_);
  const uint64_t id = conns_.size();
  const uint32_t storage_q =
      uint32_t(id % std::max<uint32_t>(1, ds_->env()->io()->num_queues()));
  const uint32_t log_q =
      uint32_t(id % std::max<uint32_t>(1, ds_->wal()->io()->num_queues()));
  conns_.emplace_back(new ClientConnection(id, storage_q, log_q));
  return conns_.back().get();
}

void RequestServer::Disconnect(ClientConnection* conn) {
  dispatcher_.CloseConnectionCursors(conn->id());
  MutexLock l(conns_mu_);
  closed_.insert(conn->id());
}

void RequestServer::WriteResponse(ClientConnection* conn, Response r) {
  conn->Write(r);
  if (ctr_responses_ != nullptr) *ctr_responses_ += 1;
}

size_t RequestServer::DispatchBatch(ClientConnection* conn) {
  std::vector<Request> batch = conn->TakeBatch(options_.max_batch);
  if (batch.empty()) return 0;
  if (ctr_batches_ != nullptr) *ctr_batches_ += 1;
  IoEngine* const storage = ds_->env()->io();
  IoEngine* const log = ds_->wal()->io();
  // Bind this batch's modeled I/O to the connection's device queues.
  IoQueueScope storage_scope(storage, conn->io_queue());
  IoQueueScope log_scope(log, conn->log_queue());
  for (const Request& req : batch) {
    const double storage_before = storage->BoundQueueClock();
    const double log_before = log->BoundQueueClock();
    Response resp;
    {
      obs::TraceSpan span(options_.tracer, "server.request", "server",
                          int32_t(conn->io_queue()));
      resp = dispatcher_.Execute(req, conn->id());
    }
    const double service_us = (storage->BoundQueueClock() - storage_before) +
                              (log->BoundQueueClock() - log_before);
    double completion = 0;
    {
      MutexLock l(model_mu_);
      double& queue_free =
          queue_next_free_us_[conn->io_queue() % queue_next_free_us_.size()];
      double start = std::max(queue_free, conn->last_completion_us_);
      if (req.arrival_us > 0) start = std::max(start, req.arrival_us);
      completion = start + service_us;
      queue_free = completion;
      conn->last_completion_us_ = completion;
    }
    const double latency_us =
        req.arrival_us > 0 ? completion - req.arrival_us : service_us;
    resp.completion_us = completion;
    resp.latency_us = latency_us;
    const ResponseCode code = resp.code;
    WriteResponse(conn, std::move(resp));
    {
      MutexLock l(stats_mu_);
      dispatched_++;
      service_us_total_ += service_us;
      if (code == ResponseCode::kRetryable) {
        errors_++;
        retryable_errors_++;
      } else if (code == ResponseCode::kBadRequest ||
                 code == ResponseCode::kError) {
        errors_++;
      }
      if (options_.collect_latencies) latency_samples_.push_back(latency_us);
    }
    if (ctr_requests_ != nullptr) *ctr_requests_ += 1;
    if (hist_latency_ != nullptr) {
      hist_latency_->Record(uint64_t(latency_us * 1000.0));
    }
  }
  return batch.size();
}

size_t RequestServer::Poll() {
  std::vector<ClientConnection*> open;
  {
    MutexLock l(conns_mu_);
    open.reserve(conns_.size());
    for (const auto& c : conns_) {
      if (closed_.count(c->id()) == 0) open.push_back(c.get());
    }
  }
  // Decode phase: damaged frames answer immediately with zero modeled
  // stamps — they never reach the latency model or the dataset.
  size_t total = 0;
  for (ClientConnection* c : open) {
    std::vector<Response> decode_failures;
    total += c->DecodeInbound(options_.max_frame_bytes,
                              options_.fault_injector, &decode_failures);
    for (Response& r : decode_failures) {
      if (ctr_decode_errors_ != nullptr) *ctr_decode_errors_ += 1;
      WriteResponse(c, std::move(r));
    }
  }
  // Dispatch phase: one batch per connection per round, connections in id
  // order (deterministic on the single-threaded path).
  size_t dispatched = 0;
  if (pool_ == nullptr) {
    for (ClientConnection* c : open) dispatched += DispatchBatch(c);
  } else {
    // Partition connections over workers by device-queue equivalence class
    // (id % gcd of queue counts): per-connection FIFO holds, and no two
    // workers ever charge the same storage or log DiskModel queue.
    const size_t workers = options_.worker_threads;
    const size_t stride = queue_partition_stride_;
    std::vector<std::future<size_t>> futures;
    futures.reserve(workers);
    for (size_t w = 0; w < workers; w++) {
      futures.push_back(pool_->Submit([this, &open, w, workers, stride]() {
        size_t n = 0;
        for (ClientConnection* c : open) {
          if ((c->id() % stride) % workers == w) n += DispatchBatch(c);
        }
        return n;
      }));
    }
    for (auto& f : futures) dispatched += f.get();
  }
  return dispatched;
}

size_t RequestServer::PollUntilIdle() {
  size_t total = 0;
  for (;;) {
    const size_t n = Poll();
    total += n;
    if (n > 0) continue;
    // A round may decode without dispatching (or vice versa); idle means
    // no pending requests survived the round either.
    MutexLock l(conns_mu_);
    if (InflightLocked() == 0) break;
  }
  return total;
}

uint64_t RequestServer::InflightLocked() const {
  uint64_t inflight = 0;
  for (const auto& c : conns_) {
    if (closed_.count(c->id()) == 0) inflight += c->pending_requests();
  }
  return inflight;
}

ServerStats RequestServer::stats() const {
  ServerStats out;
  {
    MutexLock l(conns_mu_);
    out.connections = conns_.size() - closed_.size();
    out.inflight_requests = InflightLocked();
    for (const auto& c : conns_) {
      const ConnectionStats& cs = c->stats();
      out.requests_decoded += cs.requests_decoded.load();
      out.decode_errors += cs.decode_errors.load();
      out.responses_sent += cs.responses_sent.load();
      out.batches += cs.batches.load();
      out.max_batch = std::max(out.max_batch, cs.max_batch.load());
    }
  }
  {
    MutexLock l(stats_mu_);
    out.requests_dispatched = dispatched_;
    out.errors = errors_;
    out.retryable_errors = retryable_errors_;
    out.service_us_total = service_us_total_;
  }
  out.open_cursors = dispatcher_.open_cursors();
  return out;
}

std::vector<double> RequestServer::TakeLatencySamples() {
  MutexLock l(stats_mu_);
  std::vector<double> out;
  out.swap(latency_samples_);
  return out;
}

}  // namespace server
}  // namespace auxlsm
