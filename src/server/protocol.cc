#include "server/protocol.h"

#include <algorithm>
#include <bit>

#include "common/coding.h"
#include "common/crc32.h"

namespace auxlsm {
namespace server {

namespace {

void PutDoubleBits(std::string* dst, double v) {
  PutFixed64(dst, std::bit_cast<uint64_t>(v));
}

double GetDoubleBits(const char* p) {
  return std::bit_cast<double>(DecodeFixed64(p));
}

}  // namespace

std::string EncodeFrame(const std::string& body) {
  std::string out;
  out.reserve(kFrameHeaderBytes + body.size());
  PutFixed32(&out, static_cast<uint32_t>(body.size()));
  PutFixed32(&out, MaskCrc(Crc32c(body.data(), body.size())));
  out += body;
  return out;
}

FrameResult DecodeFrame(const Slice& in, size_t max_frame_bytes, Slice* body,
                        size_t* consumed, std::string* error) {
  *consumed = 0;
  if (in.size() < kFrameHeaderBytes) return FrameResult::kNeedMore;
  const uint32_t len = DecodeFixed32(in.data());
  if (len > max_frame_bytes) {
    // The boundary itself is untrustworthy: resynchronization past this
    // point is impossible, so the caller drops the remaining buffer.
    *consumed = in.size();
    if (error != nullptr) *error = "frame length implausible";
    return FrameResult::kBad;
  }
  if (in.size() < kFrameHeaderBytes + len) return FrameResult::kNeedMore;
  const uint32_t crc = UnmaskCrc(DecodeFixed32(in.data() + 4));
  const Slice frame_body(in.data() + kFrameHeaderBytes, len);
  *consumed = kFrameHeaderBytes + len;
  if (Crc32c(frame_body.data(), frame_body.size()) != crc) {
    // The length prefix precedes the checksummed body, so the boundary is
    // still usable: skip exactly this frame and resynchronize on the next.
    if (error != nullptr) *error = "frame checksum mismatch";
    return FrameResult::kBad;
  }
  *body = frame_body;
  return FrameResult::kOk;
}

std::string Request::EncodeBody() const {
  std::string body;
  PutFixed64(&body, request_id);
  PutDoubleBits(&body, arrival_us);
  body.push_back(static_cast<char>(type));
  switch (type) {
    case RequestType::kInsert:
    case RequestType::kUpsert:
      PutLengthPrefixedSlice(&body, record.Serialize());
      break;
    case RequestType::kDelete:
    case RequestType::kGet:
      PutVarint64(&body, id);
      break;
    case RequestType::kQuery:
      PutLengthPrefixedSlice(&body, index_name);
      PutVarint64(&body, range_lo);
      PutVarint64(&body, range_hi);
      PutVarint64(&body, limit);
      PutVarint64(&body, page_size);
      break;
    case RequestType::kScan:
      PutVarint64(&body, time_lo);
      PutVarint64(&body, time_hi);
      break;
    case RequestType::kCursorNext:
    case RequestType::kCursorClose:
      PutFixed64(&body, cursor_id);
      break;
  }
  return body;
}

std::string Request::EncodeFrame() const { return server::EncodeFrame(EncodeBody()); }

Status Request::DecodeBody(const Slice& body, Request* out) {
  if (body.size() < 17) return Status::Corruption("request header truncated");
  out->request_id = DecodeFixed64(body.data());
  out->arrival_us = GetDoubleBits(body.data() + 8);
  const uint8_t raw_type = static_cast<uint8_t>(body[16]);
  if (raw_type < uint8_t(RequestType::kInsert) ||
      raw_type > uint8_t(RequestType::kCursorClose)) {
    return Status::Corruption("unknown request type");
  }
  out->type = static_cast<RequestType>(raw_type);
  Slice p(body.data() + 17, body.size() - 17);
  switch (out->type) {
    case RequestType::kInsert:
    case RequestType::kUpsert: {
      Slice rec;
      if (!GetLengthPrefixedSlice(&p, &rec)) {
        return Status::Corruption("request record truncated");
      }
      AUXLSM_RETURN_NOT_OK(TweetRecord::Deserialize(rec, &out->record));
      break;
    }
    case RequestType::kDelete:
    case RequestType::kGet:
      if (!GetVarint64(&p, &out->id)) {
        return Status::Corruption("request id field truncated");
      }
      break;
    case RequestType::kQuery: {
      Slice name;
      if (!GetLengthPrefixedSlice(&p, &name) ||
          !GetVarint64(&p, &out->range_lo) ||
          !GetVarint64(&p, &out->range_hi) || !GetVarint64(&p, &out->limit) ||
          !GetVarint64(&p, &out->page_size)) {
        return Status::Corruption("query request truncated");
      }
      out->index_name = name.ToString();
      break;
    }
    case RequestType::kScan:
      if (!GetVarint64(&p, &out->time_lo) ||
          !GetVarint64(&p, &out->time_hi)) {
        return Status::Corruption("scan request truncated");
      }
      break;
    case RequestType::kCursorNext:
    case RequestType::kCursorClose:
      if (p.size() < 8) return Status::Corruption("cursor request truncated");
      out->cursor_id = DecodeFixed64(p.data());
      break;
  }
  return Status::OK();
}

const char* ResponseCodeName(ResponseCode code) {
  switch (code) {
    case ResponseCode::kOk: return "ok";
    case ResponseCode::kNotFound: return "not-found";
    case ResponseCode::kRetryable: return "retryable";
    case ResponseCode::kBadRequest: return "bad-request";
    case ResponseCode::kError: return "error";
  }
  return "unknown";
}

std::string Response::EncodeBody() const {
  std::string body;
  PutFixed64(&body, request_id);
  body.push_back(static_cast<char>(code));
  body.push_back(static_cast<char>(done ? 1 : 0));
  PutFixed64(&body, cursor_id);
  PutVarint64(&body, count);
  PutDoubleBits(&body, completion_us);
  PutDoubleBits(&body, latency_us);
  PutLengthPrefixedSlice(&body, message);
  PutVarint32(&body, static_cast<uint32_t>(records.size()));
  for (const TweetRecord& r : records) {
    PutLengthPrefixedSlice(&body, r.Serialize());
  }
  return body;
}

std::string Response::EncodeFrame() const {
  return server::EncodeFrame(EncodeBody());
}

Status Response::DecodeBody(const Slice& body, Response* out) {
  if (body.size() < 34) return Status::Corruption("response header truncated");
  out->request_id = DecodeFixed64(body.data());
  const uint8_t raw_code = static_cast<uint8_t>(body[8]);
  if (raw_code > uint8_t(ResponseCode::kError)) {
    return Status::Corruption("unknown response code");
  }
  out->code = static_cast<ResponseCode>(raw_code);
  out->done = body[9] != 0;
  out->cursor_id = DecodeFixed64(body.data() + 10);
  Slice p(body.data() + 18, body.size() - 18);
  if (!GetVarint64(&p, &out->count)) {
    return Status::Corruption("response count truncated");
  }
  if (p.size() < 16) return Status::Corruption("response stamps truncated");
  out->completion_us = GetDoubleBits(p.data());
  out->latency_us = GetDoubleBits(p.data() + 8);
  p.remove_prefix(16);
  Slice msg;
  uint32_t n = 0;
  if (!GetLengthPrefixedSlice(&p, &msg) || !GetVarint32(&p, &n)) {
    return Status::Corruption("response message truncated");
  }
  out->message = msg.ToString();
  out->records.clear();
  // `n` is wire data: each record costs at least its 1-byte length prefix,
  // so any count beyond the remaining body is structurally bogus — cap the
  // reservation instead of trusting a CRC-valid-but-hostile frame with a
  // multi-GB allocation.
  out->records.reserve(std::min<size_t>(n, p.size()));
  for (uint32_t i = 0; i < n; i++) {
    Slice rec;
    if (!GetLengthPrefixedSlice(&p, &rec)) {
      return Status::Corruption("response record truncated");
    }
    TweetRecord r;
    AUXLSM_RETURN_NOT_OK(TweetRecord::Deserialize(rec, &r));
    out->records.push_back(std::move(r));
  }
  return Status::OK();
}

}  // namespace server
}  // namespace auxlsm
