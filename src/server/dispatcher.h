// Request dispatcher of the service layer (PR 9).
//
// The Dispatcher is the protocol -> storage bridge: it executes one decoded
// Request against the Dataset (writes through the auto-commit ingest path,
// reads through the ReadQuery planner / QueryCursor pull API) and shapes the
// outcome into a Response. It owns the server-side cursor table: a paginated
// kQuery opens a QueryCursor, returns its first page plus a cursor id, and
// the client continues with kCursorNext frames until `done` — exactly the
// wire-level equivalent of the in-process pull loop.
//
// Error mapping (satellite 2): a write failing while the dataset is degraded
// (Dataset::health() == kDegraded) drains TakeBackgroundError() to re-arm
// the maintenance pipeline and answers kRetryable — the connection stays
// open and a later retry can succeed, instead of one background fault
// killing every session. Transient storage errors (Status::retryable())
// map to kRetryable likewise; permanent errors to kError; NotFound and
// grammar problems to their own codes.
//
// The server.dispatch failpoint fires before the dataset is touched, so an
// injected dispatch fault is a pure per-request error with no partial state.
//
// Thread model: Execute() is safe from concurrent server workers (the cursor
// table is mutex-guarded), but requests of one connection are never executed
// concurrently (the server partitions batches by connection).
// CloseConnectionCursors may race an in-flight kCursorNext of the same
// connection (Disconnect from another thread): the continuation owns its
// cursor outside the table while Next() runs and drops it afterwards if the
// connection's cursor accounting is gone, so the disconnect path never
// destroys a cursor mid-pull.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <unordered_map>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "server/protocol.h"

namespace auxlsm {

class Dataset;
class FaultInjector;
class QueryCursor;

namespace server {

class Dispatcher {
 public:
  /// `fault` may be null; `max_cursors_per_connection` bounds the cursor
  /// table per client (an exhausted budget answers kError).
  Dispatcher(Dataset* dataset, FaultInjector* fault,
             size_t max_cursors_per_connection);
  ~Dispatcher();

  Dispatcher(const Dispatcher&) = delete;
  Dispatcher& operator=(const Dispatcher&) = delete;

  /// Executes one request on behalf of connection `conn_id`. The caller is
  /// responsible for device-queue binding (IoQueueScope) around this call.
  Response Execute(const Request& req, uint64_t conn_id);

  /// Drops every cursor owned by a connection (disconnect path).
  void CloseConnectionCursors(uint64_t conn_id);

  /// Live server-side cursors (backlog gauge).
  size_t open_cursors() const;

 private:
  Response ExecuteQuery(const Request& req, uint64_t conn_id);
  Response ExecuteCursorNext(const Request& req, uint64_t conn_id);
  Response ExecuteCursorClose(const Request& req, uint64_t conn_id);
  /// Maps a non-OK write Status to a Response, draining the dataset's
  /// sticky background errors when degraded (see header comment).
  Response MapWriteError(const Request& req, const Status& st);

  struct OpenCursor {
    std::unique_ptr<QueryCursor> cursor;
    uint64_t conn_id = 0;
  };

  Dataset* const ds_;
  FaultInjector* const fault_;
  const size_t max_cursors_per_conn_;

  // Unranked: cursor-table bookkeeping only — never held across the
  // dataset call a cursor continuation performs.
  mutable Mutex mu_;
  uint64_t next_cursor_id_ GUARDED_BY(mu_) = 1;
  std::map<uint64_t, OpenCursor> cursors_ GUARDED_BY(mu_);
  std::unordered_map<uint64_t, size_t> cursors_per_conn_ GUARDED_BY(mu_);
};

}  // namespace server
}  // namespace auxlsm
