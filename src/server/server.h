// RequestServer: the async service layer over the storage engine (PR 9).
//
// The server multiplexes M simulated client connections onto the engine,
// closing ROADMAP open item 2. Clients write length-prefixed, CRC-framed
// request frames (server/protocol.h) into their connection's inbound
// stream; Poll() decodes each connection's stream, takes per-connection
// batches (iproto-style: one batch per connection per round, bounded by
// max_batch), and dispatches them through the Dispatcher — writes via the
// auto-commit ingest path, reads via ReadQuery/QueryCursor — under the
// connection's device-queue binding: connection i charges storage queue
// (i % Q) and log queue (i % Qlog), so a multi-queue device serves
// connections on overlapping modeled clocks.
//
// Modeled per-request latency (the Fig 24 measurement): the request's
// *service time* is the virtual-clock advance of its bound storage and log
// queues while it executes; its *latency* is completion - arrival on the
// modeled timeline, where
//
//   start      = max(arrival_us, device queue free, connection's last
//                    completion)        — G/G/1 per device queue, FIFO per
//                                         connection
//   completion = start + service_us
//
// Arrivals come from the open-loop driver (workload/open_loop.h) as Poisson
// stamps in modeled microseconds; a slow request queues later arrivals
// behind it (latency grows) instead of throttling them — the open-loop
// property. A request with arrival_us == 0 is treated as arriving at its
// start (latency == service time), which is the closed-loop degenerate.
//
// Determinism: with worker_threads == 1 (default) one dispatch thread
// serves connections in id order, so modeled completions and latencies are
// exact functions of the request streams — the fig24 serial DIGEST lines
// pin this. worker_threads > 1 fans per-connection batches over a pool.
// Connections are partitioned across workers by device-queue equivalence
// class (id % gcd(Q, Qlog)), which both keeps per-connection FIFO and pins
// every connection that can charge a given DiskModel queue to one worker —
// the modeled queues are unsynchronized, so two workers must never share
// one. Cross-connection ordering across queues then depends on host
// scheduling, trading determinism for wall-clock speed exactly like the
// ingest pipeline.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_set>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

#include "server/connection.h"
#include "server/dispatcher.h"
#include "server/protocol.h"

namespace auxlsm {

class Dataset;
class FaultInjector;
namespace obs {
class MetricsRegistry;
class Histogram;
class Tracer;
}  // namespace obs
class ThreadPool;

namespace server {

struct ServerOptions {
  /// Requests dispatched per connection per poll round.
  size_t max_batch = 16;
  /// 1 (default) = single deterministic dispatch thread. > 1 fans
  /// per-connection batches over a pool; pair with dataset
  /// writer_threads > 1 so concurrent writes take the pipeline path.
  size_t worker_threads = 1;
  size_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Server-side cursor budget per connection (kQuery continuations).
  size_t max_open_cursors_per_connection = 64;
  /// Record per-request modeled latencies for TakeLatencySamples().
  bool collect_latencies = true;
  /// server.decode_frame / server.dispatch failpoints; null disables.
  FaultInjector* fault_injector = nullptr;
  /// Optional registry: server.requests / server.responses /
  /// server.decode_errors / server.batches counters and the
  /// server.request_modeled_ns latency histogram. Must outlive the server.
  obs::MetricsRegistry* metrics = nullptr;
  /// Optional tracer: a server.request span per dispatched request.
  obs::Tracer* tracer = nullptr;
};

/// Point-in-time server accounting: lifetime counters plus live backlog
/// gauges (also folded into Dataset::MetricsSnapshot() as server.*).
struct ServerStats {
  uint64_t connections = 0;
  uint64_t requests_decoded = 0;
  uint64_t decode_errors = 0;
  uint64_t requests_dispatched = 0;
  uint64_t responses_sent = 0;
  uint64_t batches = 0;
  uint64_t max_batch = 0;        ///< largest single dispatch batch
  uint64_t errors = 0;           ///< responses with code worse than kNotFound
  uint64_t retryable_errors = 0; ///< kRetryable subset
  double service_us_total = 0;   ///< summed modeled service time
  // Live gauges.
  uint64_t inflight_requests = 0;  ///< decoded, not yet dispatched
  uint64_t open_cursors = 0;       ///< parked query continuations
};

class RequestServer {
 public:
  RequestServer(Dataset* dataset, ServerOptions options);
  ~RequestServer();

  RequestServer(const RequestServer&) = delete;
  RequestServer& operator=(const RequestServer&) = delete;

  /// Opens a new connection bound to storage queue (id % Q) and log queue
  /// (id % Qlog). The returned pointer stays valid for the server's
  /// lifetime. Not safe concurrently with Poll().
  ClientConnection* Connect();

  /// Closes a connection's server side: its parked cursors are dropped and
  /// its pending requests are no longer dispatched.
  void Disconnect(ClientConnection* conn);

  /// One round: decode every connection's inbound stream (damaged frames
  /// answer immediately), then dispatch up to max_batch requests per
  /// connection in id order. Returns the number of requests dispatched.
  size_t Poll();

  /// Polls until a round decodes and dispatches nothing.
  size_t PollUntilIdle();

  ServerStats stats() const;
  /// Drains the per-request modeled latencies recorded since the last call
  /// (collect_latencies only; microseconds).
  std::vector<double> TakeLatencySamples();

  Dispatcher* dispatcher() { return &dispatcher_; }
  const ServerOptions& options() const { return options_; }

 private:
  /// Dispatches one batch for `conn` under its queue bindings; returns the
  /// number of requests served.
  size_t DispatchBatch(ClientConnection* conn);
  void WriteResponse(ClientConnection* conn, Response r);
  /// Sum of decoded-not-dispatched requests over open connections.
  uint64_t InflightLocked() const REQUIRES(conns_mu_);

  Dataset* const ds_;
  const ServerOptions options_;
  Dispatcher dispatcher_;
  std::unique_ptr<ThreadPool> pool_;  ///< worker_threads > 1 only
  /// gcd(storage queues, log queues): connections congruent mod this can
  /// never share a device queue, so workers partition on (id % stride).
  size_t queue_partition_stride_ = 1;

  // The three server mutexes are unranked: none is ever held while taking
  // a ranked engine lock (dispatch runs dataset calls lock-free between
  // them), and they never nest with each other.
  mutable Mutex conns_mu_;
  std::vector<std::unique_ptr<ClientConnection>> conns_ GUARDED_BY(conns_mu_);
  std::unordered_set<uint64_t> closed_ GUARDED_BY(conns_mu_);

  /// Modeled time each storage queue finishes its last served request —
  /// the G/G/1 server-busy state of the latency model.
  mutable Mutex model_mu_;
  std::vector<double> queue_next_free_us_ GUARDED_BY(model_mu_);

  mutable Mutex stats_mu_;
  uint64_t dispatched_ GUARDED_BY(stats_mu_) = 0;
  uint64_t errors_ GUARDED_BY(stats_mu_) = 0;
  uint64_t retryable_errors_ GUARDED_BY(stats_mu_) = 0;
  double service_us_total_ GUARDED_BY(stats_mu_) = 0;
  std::vector<double> latency_samples_ GUARDED_BY(stats_mu_);

  uint64_t metrics_source_id_ = 0;  ///< Dataset::AddMetricsSource handle
  StatCounter* ctr_requests_ = nullptr;
  StatCounter* ctr_responses_ = nullptr;
  StatCounter* ctr_decode_errors_ = nullptr;
  StatCounter* ctr_batches_ = nullptr;
  obs::Histogram* hist_latency_ = nullptr;  ///< server.request_modeled_ns
};

}  // namespace server
}  // namespace auxlsm
