#include "server/dispatcher.h"

#include <utility>

#include "core/dataset.h"
#include "fault/fault_injector.h"

namespace auxlsm {
namespace server {

namespace {

Response OkResponse(const Request& req) {
  Response r;
  r.request_id = req.request_id;
  r.code = ResponseCode::kOk;
  return r;
}

Response ErrorResponse(const Request& req, ResponseCode code,
                       std::string message) {
  Response r;
  r.request_id = req.request_id;
  r.code = code;
  r.message = std::move(message);
  return r;
}

}  // namespace

Dispatcher::Dispatcher(Dataset* dataset, FaultInjector* fault,
                       size_t max_cursors_per_connection)
    : ds_(dataset),
      fault_(fault),
      max_cursors_per_conn_(max_cursors_per_connection) {}

Dispatcher::~Dispatcher() = default;

Response Dispatcher::MapWriteError(const Request& req, const Status& st) {
  if (ds_->health() == DatasetHealth::kDegraded) {
    // Satellite 2: degraded mode is a maintenance condition, not a request
    // problem. Take every sticky background error class (flush-cycle, then
    // merge-queue) to re-arm the pipeline and tell the client to retry —
    // never close the connection. The loop is bounded: each take clears one
    // class and degradation lifts once all are clear.
    std::string first;
    for (int i = 0; i < 4 && ds_->health() == DatasetHealth::kDegraded; i++) {
      const Status bg = ds_->TakeBackgroundError();
      if (first.empty() && !bg.ok()) first = bg.ToString();
      if (bg.ok()) break;
    }
    if (first.empty()) first = st.ToString();
    return ErrorResponse(req, ResponseCode::kRetryable, "degraded: " + first);
  }
  return ErrorResponse(
      req, st.retryable() ? ResponseCode::kRetryable : ResponseCode::kError,
      st.ToString());
}

Response Dispatcher::Execute(const Request& req, uint64_t conn_id) {
  if (fault_ != nullptr) {
    // server.dispatch failpoint: fails the request before any dataset
    // effect — the error-atomicity contract on the wire.
    const Status fst = fault_->Hit(failpoints::kServerDispatch);
    if (!fst.ok()) {
      return ErrorResponse(req,
                           fst.retryable() ? ResponseCode::kRetryable
                                           : ResponseCode::kError,
                           "dispatch: " + fst.ToString());
    }
  }
  switch (req.type) {
    case RequestType::kInsert: {
      bool inserted = false;
      const Status st = ds_->Insert(req.record, &inserted);
      if (!st.ok()) return MapWriteError(req, st);
      Response r = OkResponse(req);
      r.count = inserted ? 1 : 0;  // duplicate key = OK with count 0
      return r;
    }
    case RequestType::kUpsert: {
      const Status st = ds_->Upsert(req.record);
      if (!st.ok()) return MapWriteError(req, st);
      Response r = OkResponse(req);
      r.count = 1;
      return r;
    }
    case RequestType::kDelete: {
      const Status st = ds_->Delete(req.id);
      if (!st.ok()) return MapWriteError(req, st);
      Response r = OkResponse(req);
      r.count = 1;
      return r;
    }
    case RequestType::kGet: {
      TweetRecord rec;
      const Status st = ds_->GetById(req.id, &rec);
      if (st.IsNotFound()) {
        return ErrorResponse(req, ResponseCode::kNotFound, "");
      }
      if (!st.ok()) {
        return ErrorResponse(req,
                             st.retryable() ? ResponseCode::kRetryable
                                            : ResponseCode::kError,
                             st.ToString());
      }
      Response r = OkResponse(req);
      r.count = 1;
      r.records.push_back(std::move(rec));
      return r;
    }
    case RequestType::kQuery:
      return ExecuteQuery(req, conn_id);
    case RequestType::kScan: {
      auto cursor = ds_->NewCursor(
          Query().TimeRange(req.time_lo, req.time_hi).CountOnly());
      if (!cursor.ok()) {
        return ErrorResponse(req, ResponseCode::kBadRequest,
                             cursor.status().ToString());
      }
      QueryResult drained;
      const Status st = (*cursor)->Drain(&drained);
      if (!st.ok()) {
        return ErrorResponse(req,
                             st.retryable() ? ResponseCode::kRetryable
                                            : ResponseCode::kError,
                             st.ToString());
      }
      Response r = OkResponse(req);
      r.count = (*cursor)->stats().records_matched;
      r.done = true;
      return r;
    }
    case RequestType::kCursorNext:
      return ExecuteCursorNext(req, conn_id);
    case RequestType::kCursorClose:
      return ExecuteCursorClose(req, conn_id);
  }
  return ErrorResponse(req, ResponseCode::kBadRequest, "unknown request type");
}

Response Dispatcher::ExecuteQuery(const Request& req, uint64_t conn_id) {
  ReadQuery q;
  if (req.index_name.empty()) {
    q.Secondary();
  } else {
    q.Secondary(req.index_name);
  }
  q.Range(req.range_lo, req.range_hi);
  if (req.limit > 0) q.Limit(req.limit);
  if (req.page_size > 0) q.PageSize(req.page_size);
  auto cursor = ds_->NewCursor(q);
  if (!cursor.ok()) {
    // Planner rejections (unknown index name, contradictory description)
    // are the client's fault, not the dataset's.
    return ErrorResponse(req, ResponseCode::kBadRequest,
                         cursor.status().ToString());
  }
  QueryPage page;
  const Status st = (*cursor)->Next(&page);
  if (!st.ok()) {
    return ErrorResponse(req,
                         st.retryable() ? ResponseCode::kRetryable
                                        : ResponseCode::kError,
                         st.ToString());
  }
  Response r = OkResponse(req);
  r.records = std::move(page.records);
  r.count = r.records.size();
  if ((*cursor)->done()) {
    r.done = true;
    return r;
  }
  // More pages remain: park the cursor and hand the client a continuation
  // id. The snapshot stays pinned until kCursorClose or the last page.
  MutexLock l(mu_);
  size_t& open = cursors_per_conn_[conn_id];
  if (open >= max_cursors_per_conn_) {
    return ErrorResponse(req, ResponseCode::kError,
                         "cursor budget exhausted for connection");
  }
  open++;
  const uint64_t id = next_cursor_id_++;
  cursors_[id] = OpenCursor{std::move(*cursor), conn_id};
  r.cursor_id = id;
  r.done = false;
  return r;
}

Response Dispatcher::ExecuteCursorNext(const Request& req, uint64_t conn_id) {
  // Take ownership of the cursor while holding mu_ so a concurrent
  // Disconnect -> CloseConnectionCursors cannot destroy it under us; the
  // entry is re-inserted after Next() unless the cursor finished or the
  // connection went away in the meantime.
  std::unique_ptr<QueryCursor> cursor;
  {
    MutexLock l(mu_);
    auto it = cursors_.find(req.cursor_id);
    if (it == cursors_.end() || it->second.conn_id != conn_id) {
      // Unknown or foreign cursor ids look identical to the client: cursor
      // ids are per-server capabilities, not probeable global names.
      return ErrorResponse(req, ResponseCode::kBadRequest, "unknown cursor");
    }
    cursor = std::move(it->second.cursor);
    cursors_.erase(it);
  }
  QueryPage page;
  const Status st = cursor->Next(&page);
  Response r;
  bool keep_cursor;
  if (!st.ok()) {
    // Keep the cursor parked so a retryable failure can be retried.
    keep_cursor = true;
    r = ErrorResponse(req,
                      st.retryable() ? ResponseCode::kRetryable
                                     : ResponseCode::kError,
                      st.ToString());
  } else {
    r = OkResponse(req);
    r.records = std::move(page.records);
    r.count = r.records.size();
    r.cursor_id = req.cursor_id;
    r.done = cursor->done();
    keep_cursor = !r.done;
  }
  MutexLock l(mu_);
  auto per_conn = cursors_per_conn_.find(conn_id);
  if (per_conn == cursors_per_conn_.end()) {
    // Disconnected while Next() ran: the cursor dies here, whatever state
    // it is in — CloseConnectionCursors already dropped its siblings.
    return r;
  }
  if (keep_cursor) {
    cursors_[req.cursor_id] = OpenCursor{std::move(cursor), conn_id};
  } else if (per_conn->second > 0 && --per_conn->second == 0) {
    cursors_per_conn_.erase(per_conn);
  }
  return r;
}

Response Dispatcher::ExecuteCursorClose(const Request& req, uint64_t conn_id) {
  MutexLock l(mu_);
  auto it = cursors_.find(req.cursor_id);
  if (it == cursors_.end() || it->second.conn_id != conn_id) {
    return ErrorResponse(req, ResponseCode::kBadRequest, "unknown cursor");
  }
  cursors_.erase(it);
  auto per_conn = cursors_per_conn_.find(conn_id);
  if (per_conn != cursors_per_conn_.end() && per_conn->second > 0 &&
      --per_conn->second == 0) {
    cursors_per_conn_.erase(per_conn);
  }
  Response r = OkResponse(req);
  r.done = true;
  return r;
}

void Dispatcher::CloseConnectionCursors(uint64_t conn_id) {
  MutexLock l(mu_);
  for (auto it = cursors_.begin(); it != cursors_.end();) {
    if (it->second.conn_id == conn_id) {
      it = cursors_.erase(it);
    } else {
      ++it;
    }
  }
  cursors_per_conn_.erase(conn_id);
}

size_t Dispatcher::open_cursors() const {
  MutexLock l(mu_);
  return cursors_.size();
}

}  // namespace server
}  // namespace auxlsm
