// Record-level S/X lock manager (§5.2: "each writer acquires an exclusive
// lock on a primary key throughout the record-level transaction"; §5.3's
// Lock method additionally takes shared locks per scanned key in the
// component builder).
//
// The table is sharded by key hash; each shard serializes with its own mutex
// and condition variable. Locks are held by transaction id and are
// re-entrant for the same holder (X subsumes S).
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/slice.h"
#include "common/thread_annotations.h"

namespace auxlsm {

using TxnId = uint64_t;

enum class LockMode { kShared, kExclusive };

class LockManager {
 public:
  explicit LockManager(size_t num_shards = 16);

  /// Blocks until the lock is granted.
  void Lock(TxnId txn, const Slice& key, LockMode mode);
  void Unlock(TxnId txn, const Slice& key);

  /// Releases every lock held by txn (commit/abort).
  void UnlockAll(TxnId txn);

  /// Counts currently held locks (tests/diagnostics).
  size_t NumLockedKeys() const;

 private:
  struct LockState {
    TxnId x_holder = 0;             // 0 = none
    uint32_t x_count = 0;           // re-entrancy
    std::unordered_map<TxnId, uint32_t> s_holders;
  };
  struct Shard {
    // Leaf rank: shard mutexes are only held for the table operation itself
    // (never across a wait on another lock), so nothing nests inside them.
    mutable Mutex mu{lockrank::kLeaf, "txn.lock_shard"};
    CondVar cv;
    std::unordered_map<std::string, LockState> table GUARDED_BY(mu);
  };

  Shard& ShardFor(const Slice& key);
  const Shard& ShardFor(const Slice& key) const;
  static bool CanGrant(const LockState& st, TxnId txn, LockMode mode);

  std::vector<std::unique_ptr<Shard>> shards_;
};

/// RAII lock holder.
class ScopedLock {
 public:
  ScopedLock(LockManager* mgr, TxnId txn, const Slice& key, LockMode mode)
      : mgr_(mgr), txn_(txn), key_(key.ToString()) {
    mgr_->Lock(txn_, key_, mode);
  }
  ~ScopedLock() { mgr_->Unlock(txn_, key_); }
  ScopedLock(const ScopedLock&) = delete;
  ScopedLock& operator=(const ScopedLock&) = delete;

 private:
  LockManager* mgr_;
  TxnId txn_;
  std::string key_;
};

}  // namespace auxlsm
