// Crash recovery (§2.2): find the maximum component LSN across valid disk
// components, then replay committed transactions beyond it. No undo pass is
// needed — the no-steal policy guarantees disk components contain only
// committed data. Mutable-bitmap changes are replayed from the last bitmap
// checkpoint using each record's update bit (§5.2).
#pragma once

#include <functional>
#include <vector>

#include "common/slice.h"
#include "txn/wal.h"

namespace auxlsm {

struct RecoveryStats {
  uint64_t records_scanned = 0;
  uint64_t ops_replayed = 0;
  uint64_t bitmap_ops_replayed = 0;
  uint64_t uncommitted_skipped = 0;
  /// Bytes discarded as a torn log tail by DecodeWalStream (an incomplete
  /// or checksum-failing final record — the normal shape of a crash mid
  /// log append).
  uint64_t torn_tail_bytes = 0;
};

/// Decodes a serialized log byte stream (concatenated LogRecord::Encode()
/// frames) into records, tolerating a torn tail: a *final* frame that is
/// incomplete or fails its checksum is the normal residue of a crash mid
/// append, so decoding stops there, the surviving prefix is returned OK,
/// and stats->torn_tail_bytes records the discard. Corruption that is NOT
/// at the tail — a checksum-failing frame with decodable records after it —
/// is damage to already-durable history and returns Corruption loudly.
/// (A corrupted length field destroys the framing of everything after it
/// and is indistinguishable from tail garbage; it truncates.)
Status DecodeWalStream(const Slice& data, std::vector<LogRecord>* out,
                       RecoveryStats* stats = nullptr);

/// Replays the log.
///  - redo_op(record) is invoked for every committed data operation with
///    lsn > max_component_lsn (these rebuild memory-component state).
///  - redo_bitmap(record) is invoked for every committed record with the
///    update bit set and lsn > bitmap_checkpoint_lsn (these re-mark deleted
///    keys in disk-component bitmaps).
Status RecoverFromWal(
    const Wal& wal, Lsn max_component_lsn, Lsn bitmap_checkpoint_lsn,
    const std::function<Status(const LogRecord&)>& redo_op,
    const std::function<Status(const LogRecord&)>& redo_bitmap,
    RecoveryStats* stats = nullptr);

}  // namespace auxlsm
