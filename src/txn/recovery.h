// Crash recovery (§2.2): find the maximum component LSN across valid disk
// components, then replay committed transactions beyond it. No undo pass is
// needed — the no-steal policy guarantees disk components contain only
// committed data. Mutable-bitmap changes are replayed from the last bitmap
// checkpoint using each record's update bit (§5.2).
#pragma once

#include <functional>

#include "txn/wal.h"

namespace auxlsm {

struct RecoveryStats {
  uint64_t records_scanned = 0;
  uint64_t ops_replayed = 0;
  uint64_t bitmap_ops_replayed = 0;
  uint64_t uncommitted_skipped = 0;
};

/// Replays the log.
///  - redo_op(record) is invoked for every committed data operation with
///    lsn > max_component_lsn (these rebuild memory-component state).
///  - redo_bitmap(record) is invoked for every committed record with the
///    update bit set and lsn > bitmap_checkpoint_lsn (these re-mark deleted
///    keys in disk-component bitmaps).
Status RecoverFromWal(
    const Wal& wal, Lsn max_component_lsn, Lsn bitmap_checkpoint_lsn,
    const std::function<Status(const LogRecord&)>& redo_op,
    const std::function<Status(const LogRecord&)>& redo_bitmap,
    RecoveryStats* stats = nullptr);

}  // namespace auxlsm
