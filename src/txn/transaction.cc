#include "txn/transaction.h"

namespace auxlsm {

Transaction::~Transaction() {
  if (state_ == State::kActive) {
    Abort();
  }
}

Lsn Transaction::Log(LogRecord record) {
  record.txn_id = id_;
  return wal_->Append(std::move(record));
}

Status Transaction::Commit() {
  if (state_ != State::kActive) {
    return Status::InvalidArgument("transaction not active");
  }
  LogRecord commit;
  commit.type = LogRecordType::kCommit;
  Log(std::move(commit));
  undo_.clear();
  state_ = State::kCommitted;
  ReleaseLocks();
  return Status::OK();
}

Status Transaction::Abort() {
  if (state_ != State::kActive) {
    return Status::InvalidArgument("transaction not active");
  }
  // Inverse operations in reverse order (§2.2).
  for (auto it = undo_.rbegin(); it != undo_.rend(); ++it) {
    (*it)();
  }
  undo_.clear();
  LogRecord abort;
  abort.type = LogRecordType::kAbort;
  Log(std::move(abort));
  state_ = State::kAborted;
  ReleaseLocks();
  return Status::OK();
}

}  // namespace auxlsm
