#include "txn/transaction.h"

#include "cache/tuple_cache.h"

namespace auxlsm {

Transaction::~Transaction() {
  if (state_ == State::kActive) {
    Abort();
  }
}

Lsn Transaction::Log(LogRecord record) {
  record.txn_id = id_;
  return wal_->Append(std::move(record));
}

void Transaction::NoteClosed() {
  if (mgr_ != nullptr) {
    mgr_->active_.fetch_sub(1, std::memory_order_relaxed);
  }
}

void Transaction::Rollback() {
  // Inverse operations in reverse order (§2.2), bracketed by the tuple
  // cache's write fence when a cache is installed: the restores are
  // memtable effects visible to readers before any cache invalidation
  // runs, so they need the same write fencing as the forward path. The
  // Clear (which bumps every epoch) lands inside the fence, before the
  // guard's release.
  TupleCacheWriteFence fence(rollback_cache_);
  for (auto it = undo_.rbegin(); it != undo_.rend(); ++it) {
    (*it)();
  }
  undo_.clear();
  if (rollback_cache_ != nullptr) rollback_cache_->Clear();
}

Status Transaction::Commit() {
  if (state_ != State::kActive) {
    return Status::InvalidArgument("transaction not active");
  }
  // The commit record goes through the WAL's commit path: with group commit
  // enabled the call returns once a leader has synced the batch containing
  // it; on the serial path it is a plain append, exactly as before.
  LogRecord commit;
  commit.type = LogRecordType::kCommit;
  commit.txn_id = id_;
  if (wal_->AppendCommit(std::move(commit)) == kInvalidLsn) {
    // The log dropped the commit record (fault injection / crash): the
    // transaction can never be durable, so roll its effects back and fail
    // the commit — leaving the effects in place would let a later flush
    // persist work the recovered log knows nothing about.
    Rollback();
    state_ = State::kAborted;
    NoteClosed();
    ReleaseLocks();
    return Status::IOError("wal dropped the commit record");
  }
  undo_.clear();
  state_ = State::kCommitted;
  NoteClosed();
  ReleaseLocks();
  return Status::OK();
}

Status Transaction::Abort() {
  if (state_ != State::kActive) {
    return Status::InvalidArgument("transaction not active");
  }
  Rollback();
  LogRecord abort;
  abort.type = LogRecordType::kAbort;
  Log(std::move(abort));
  state_ = State::kAborted;
  NoteClosed();
  ReleaseLocks();
  return Status::OK();
}

}  // namespace auxlsm
