#include "txn/log_record.h"

#include "common/coding.h"
#include "common/crc32.h"

namespace auxlsm {

std::string LogRecord::Encode() const {
  std::string body;
  PutVarint64(&body, lsn);
  PutVarint64(&body, txn_id);
  body.push_back(static_cast<char>(type));
  body.push_back(static_cast<char>(update_bit ? 1 : 0));
  PutVarint64(&body, ts);
  PutLengthPrefixedSlice(&body, key);
  PutLengthPrefixedSlice(&body, value);

  std::string out;
  PutFixed32(&out, static_cast<uint32_t>(body.size()));
  PutFixed32(&out, MaskCrc(Crc32c(body.data(), body.size())));
  out += body;
  return out;
}

Status LogRecord::Decode(const Slice& data, LogRecord* out, size_t* consumed) {
  if (data.size() < 8) return Status::Corruption("log record header");
  const uint32_t len = DecodeFixed32(data.data());
  const uint32_t crc = UnmaskCrc(DecodeFixed32(data.data() + 4));
  if (data.size() < 8 + len) return Status::Corruption("log record truncated");
  const Slice body(data.data() + 8, len);
  if (Crc32c(body.data(), body.size()) != crc) {
    return Status::Corruption("log record checksum");
  }
  Slice p = body;
  uint64_t lsn = 0, txn = 0, ts = 0;
  if (!GetVarint64(&p, &lsn) || !GetVarint64(&p, &txn) || p.size() < 2) {
    return Status::Corruption("log record fields");
  }
  out->lsn = lsn;
  out->txn_id = txn;
  out->type = static_cast<LogRecordType>(p[0]);
  out->update_bit = p[1] != 0;
  p.remove_prefix(2);
  Slice key, value;
  if (!GetVarint64(&p, &ts) || !GetLengthPrefixedSlice(&p, &key) ||
      !GetLengthPrefixedSlice(&p, &value)) {
    return Status::Corruption("log record payload");
  }
  out->ts = ts;
  out->key = key.ToString();
  out->value = value.ToString();
  *consumed = 8 + len;
  return Status::OK();
}

}  // namespace auxlsm
