#include "txn/wal.h"

#include <algorithm>
#include <cmath>
#include <thread>

#include "fault/fault_injector.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace auxlsm {

void Wal::set_group_commit(bool on) {
  MutexLock l(mu_);
  group_commit_ = on;
}

void Wal::set_fault_injector(FaultInjector* fault) {
  MutexLock l(mu_);
  fault_ = fault;
}

void Wal::set_metrics(obs::MetricsRegistry* metrics) {
  MutexLock l(mu_);
  commit_hist_ =
      metrics == nullptr ? nullptr : metrics->histogram("wal.commit_modeled_ns");
}

void Wal::set_tracer(obs::Tracer* tracer) {
  MutexLock l(mu_);
  tracer_ = tracer;
}

Wal::Backlog Wal::backlog() const {
  MutexLock l(mu_);
  Backlog b;
  b.commit_waiters = commit_waiters_;
  const Lsn tail = next_lsn_ - 1;
  b.unsynced_records = tail > durable_lsn_ ? tail - durable_lsn_ : 0;
  b.tail_bytes = bytes_since_page_;
  b.sync_in_progress = sync_in_progress_;
  return b;
}

Lsn Wal::AppendLocked(LogRecord record) {
  record.lsn = next_lsn_++;
  // Charge sequential log I/O one page at a time as bytes accumulate; full
  // pages stream out on the appending thread's log-device queue.
  bytes_since_page_ += record.Encode().size();
  while (bytes_since_page_ >= log_page_bytes_) {
    io_.ChargeWrite(1);
    bytes_since_page_ -= log_page_bytes_;
  }
  tail_dirty_ = true;
  wstats_.records++;
  const Lsn lsn = record.lsn;
  records_.push_back(std::move(record));
  return lsn;
}

Lsn Wal::Append(LogRecord record) {
  MutexLock l(mu_);
  if (fault_ != nullptr && fault_->HitParked(failpoints::kWalAppend, &io_)) {
    return kInvalidLsn;  // record dropped; Status parked for TakePending
  }
  return AppendLocked(std::move(record));
}

Lsn Wal::AppendCommit(LogRecord record) {
  // The leader protocol cycles the mutex mid-function (the commit window's
  // yield below), which no scoped guard can express — explicit annotated
  // lock()/unlock() calls keep the static analysis tracking every path.
  mu_.lock();
  if (fault_ != nullptr && fault_->HitParked(failpoints::kWalAppend, &io_)) {
    mu_.unlock();
    return kInvalidLsn;  // commit record dropped — the txn must roll back
  }
  const Lsn lsn = AppendLocked(std::move(record));
  wstats_.commits++;
  if (!group_commit_) {
    // Legacy serial path: identical to Append (no modeled sync).
    durable_lsn_ = lsn;
    mu_.unlock();
    return lsn;
  }
  // The commit's modeled latency runs from here (log-device virtual time at
  // append) to its batch's sync completion.
  const double enter_us = io_.critical_path_us();
  ++commit_waiters_;
  bool led = false;
  while (durable_lsn_ < lsn) {
    if (sync_in_progress_) {
      cv_.Wait(mu_);
      continue;
    }
    // Become the leader: open a short commit window so concurrent commits
    // can append into the batch, then sync everything with one flush. The
    // sync is charged to the leader's bound log-device queue, so batches led
    // from different queues overlap in modeled time.
    led = true;
    sync_in_progress_ = true;
    mu_.unlock();
    std::this_thread::yield();
    mu_.lock();
    if (tail_dirty_) {
      // The modeled fsync of the partial tail page, charged to the leader's
      // bound log queue. The durable point is read from the device's
      // completed-time clock (critical path) rather than the sync ticket:
      // enter_us below uses the same clock, so the two endpoints of a
      // commit's latency are always comparable even when appends, syncs,
      // and leaders land on different queues (per-queue clocks are not
      // mutually ordered; the critical path is monotone under mu_).
      // An injected wal.sync failure skips the flush charge; the records
      // themselves already sit in the modeled log, so nothing is lost —
      // the fire is visible in the injector's stats and commit latency.
      if (fault_ == nullptr ||
          !fault_->HitCharge(failpoints::kWalSync, &io_)) {
        const double sync_wall0 = tracer_ != nullptr ? tracer_->WallNowUs() : 0;
        const double sync_modeled0 = io_.critical_path_us();
        io_.Submit(IoRequest::Write(1));
        durable_point_us_ =
            std::max(durable_point_us_, io_.critical_path_us());
        if (tracer_ != nullptr) {
          obs::TraceEvent ev;
          ev.SetName("wal.sync");
          ev.cat = "wal";
          ev.queue = int32_t(io_.BoundQueue());
          ev.wall_ts_us = sync_wall0;
          ev.wall_dur_us = tracer_->WallNowUs() - sync_wall0;
          ev.modeled_ts_us = sync_modeled0;
          ev.modeled_dur_us = durable_point_us_ - sync_modeled0;
          tracer_->Record(ev);
        }
      }
      tail_dirty_ = false;
    }
    durable_lsn_ = next_lsn_ - 1;
    wstats_.syncs++;
    sync_in_progress_ = false;
    cv_.NotifyAll();
  }
  if (!led) wstats_.batched_commits++;
  // Non-negative by monotonicity whenever our batch synced after we entered;
  // the clamp covers the already-durable case (tail was clean), where the
  // commit genuinely waited on nothing.
  const double latency_us = std::max(0.0, durable_point_us_ - enter_us);
  wstats_.commit_latency_us_total += latency_us;
  wstats_.commit_latency_us_max =
      std::max(wstats_.commit_latency_us_max, latency_us);
  --commit_waiters_;
  obs::Histogram* hist = commit_hist_;
  mu_.unlock();
  // Histogram recording is internally synchronized; keep it outside the
  // commit window so observability never extends it.
  if (hist != nullptr) {
    hist->Record(uint64_t(std::llround(latency_us * 1000.0)));
  }
  return lsn;
}

Lsn Wal::tail_lsn() const {
  MutexLock l(mu_);
  return records_.empty() ? kInvalidLsn : records_.back().lsn;
}

std::vector<LogRecord> Wal::ReadFrom(Lsn after) const {
  MutexLock l(mu_);
  std::vector<LogRecord> out;
  for (const auto& r : records_) {
    if (r.lsn > after) out.push_back(r);
  }
  return out;
}

void Wal::TruncateUpTo(Lsn up_to) {
  MutexLock l(mu_);
  records_.erase(std::remove_if(records_.begin(), records_.end(),
                                [&](const LogRecord& r) {
                                  return r.lsn <= up_to;
                                }),
                 records_.end());
}

WalStats Wal::wal_stats() const {
  MutexLock l(mu_);
  return wstats_;
}

size_t Wal::num_records() const {
  MutexLock l(mu_);
  return records_.size();
}

}  // namespace auxlsm
