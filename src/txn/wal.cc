#include "txn/wal.h"

#include <algorithm>

namespace auxlsm {

Lsn Wal::Append(LogRecord record) {
  std::lock_guard<std::mutex> l(mu_);
  record.lsn = next_lsn_++;
  // Charge sequential log I/O one page at a time as bytes accumulate.
  bytes_since_page_ += record.Encode().size();
  while (bytes_since_page_ >= log_page_bytes_) {
    disk_.ChargeWrite(1);
    bytes_since_page_ -= log_page_bytes_;
  }
  const Lsn lsn = record.lsn;
  records_.push_back(std::move(record));
  return lsn;
}

Lsn Wal::tail_lsn() const {
  std::lock_guard<std::mutex> l(mu_);
  return records_.empty() ? kInvalidLsn : records_.back().lsn;
}

std::vector<LogRecord> Wal::ReadFrom(Lsn after) const {
  std::lock_guard<std::mutex> l(mu_);
  std::vector<LogRecord> out;
  for (const auto& r : records_) {
    if (r.lsn > after) out.push_back(r);
  }
  return out;
}

void Wal::TruncateUpTo(Lsn up_to) {
  std::lock_guard<std::mutex> l(mu_);
  records_.erase(std::remove_if(records_.begin(), records_.end(),
                                [&](const LogRecord& r) {
                                  return r.lsn <= up_to;
                                }),
                 records_.end());
}

size_t Wal::num_records() const {
  std::lock_guard<std::mutex> l(mu_);
  return records_.size();
}

}  // namespace auxlsm
