// Write-ahead log. The paper's setup dedicates a separate disk to logging
// (§6.1); we model the log as an append-only byte stream with sequential
// write cost charged to its own DiskModel, so log I/O never perturbs the
// storage disk's sequential/random accounting.
//
// Group commit (the multi-writer ingestion pipeline): with group commit
// enabled, AppendCommit makes a commit record durable through a leader-based
// protocol — one committer becomes the leader, opens a short commit window
// so concurrent committers can append their records into the batch, then
// syncs the whole batch with a single modeled log flush and wakes the group.
// With group commit off (writer_threads == 1), AppendCommit is exactly
// Append: no syncs are charged, bit-for-bit the legacy serial behavior.
//
// The log survives a simulated crash (tests drop the Dataset but keep the
// Wal + Env), which is what recovery replays from.
#pragma once

#include <condition_variable>
#include <mutex>
#include <string>
#include <vector>

#include "env/disk_model.h"
#include "txn/log_record.h"

namespace auxlsm {

struct WalStats {
  uint64_t records = 0;          ///< log records appended
  uint64_t commits = 0;          ///< AppendCommit calls
  uint64_t syncs = 0;            ///< modeled log-device flushes
  uint64_t batched_commits = 0;  ///< commits made durable by another leader
};

class Wal {
 public:
  explicit Wal(DiskProfile profile = DiskProfile::Hdd(),
               size_t log_page_bytes = 4096)
      : disk_(profile), log_page_bytes_(log_page_bytes) {}

  /// Enables leader-based group commit for AppendCommit (the dataset turns
  /// this on when writer_threads > 1).
  void set_group_commit(bool on);

  /// Appends a record, assigning it the next LSN (returned).
  Lsn Append(LogRecord record);

  /// Appends a commit record and returns once it is durable. See the group
  /// commit notes above.
  Lsn AppendCommit(LogRecord record);

  /// Current tail LSN (last assigned); kInvalidLsn if empty.
  Lsn tail_lsn() const;

  /// All records with lsn > after, in order.
  std::vector<LogRecord> ReadFrom(Lsn after) const;

  /// Truncates records with lsn <= up_to (checkpointing).
  void TruncateUpTo(Lsn up_to);

  IoStats stats() const { return disk_.stats(); }
  WalStats wal_stats() const;
  size_t num_records() const;

 private:
  Lsn AppendLocked(LogRecord record);

  mutable std::mutex mu_;
  std::condition_variable cv_;
  DiskModel disk_;
  const size_t log_page_bytes_;
  size_t bytes_since_page_ = 0;
  Lsn next_lsn_ = 1;
  std::vector<LogRecord> records_;

  bool group_commit_ = false;
  bool sync_in_progress_ = false;  ///< a leader's commit window is open
  bool tail_dirty_ = false;        ///< appended bytes not yet synced
  Lsn durable_lsn_ = 0;
  WalStats wstats_;
};

}  // namespace auxlsm
