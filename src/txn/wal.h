// Write-ahead log. The paper's setup dedicates a separate disk to logging
// (§6.1); we model the log as an append-only byte stream with sequential
// write cost charged to its own IoEngine (io/io_engine.h), so log I/O never
// perturbs the storage device's sequential/random accounting. The log device
// defaults to one queue — bit-for-bit the legacy single-head DiskModel — but
// can be built from a multi-queue DeviceProfile, in which case each group
// commit's sync is charged to the syncing (leader) thread's bound queue and
// syncs led from different queues overlap in modeled time.
//
// Group commit (the multi-writer ingestion pipeline): with group commit
// enabled, AppendCommit makes a commit record durable through a leader-based
// protocol — one committer becomes the leader, opens a short commit window
// so concurrent committers can append their records into the batch, then
// syncs the whole batch with a single modeled log flush and wakes the group.
// Every commit's modeled latency — the log device's virtual time from the
// commit's append to its batch's sync completion — is accumulated in
// WalStats, which is what makes the per-commit win of group commit
// reportable in simulated time. With group commit off (writer_threads == 1),
// AppendCommit is exactly Append: no syncs are charged, bit-for-bit the
// legacy serial behavior.
//
// The log survives a simulated crash (tests drop the Dataset but keep the
// Wal + Env), which is what recovery replays from.
#pragma once

#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "env/disk_model.h"
#include "io/io_engine.h"
#include "txn/log_record.h"

namespace auxlsm {

class FaultInjector;

namespace obs {
class MetricsRegistry;
class Histogram;
class Tracer;
}  // namespace obs

struct WalStats {
  uint64_t records = 0;          ///< log records appended
  uint64_t commits = 0;          ///< AppendCommit calls
  uint64_t syncs = 0;            ///< modeled log-device flushes
  uint64_t batched_commits = 0;  ///< commits made durable by another leader
  /// Modeled commit latency (group commit only): log-device virtual time
  /// from a commit's append to its batch's sync completion, summed / maxed
  /// over commits. Average = commit_latency_us_total / commits.
  double commit_latency_us_total = 0;
  double commit_latency_us_max = 0;

  /// Interval delta (same ergonomics as IoStats::operator-): counters and
  /// the latency total subtract; commit_latency_us_max is a cumulative
  /// high-water mark, so the minuend's value is kept as-is.
  WalStats operator-(const WalStats& o) const {
    WalStats d = *this;
    d.records -= o.records;
    d.commits -= o.commits;
    d.syncs -= o.syncs;
    d.batched_commits -= o.batched_commits;
    d.commit_latency_us_total -= o.commit_latency_us_total;
    return d;
  }
};

class Wal {
 public:
  explicit Wal(DiskProfile profile = DiskProfile::Hdd(),
               size_t log_page_bytes = 4096)
      : io_(DeviceProfile::FromDisk(std::move(profile), 1)),
        log_page_bytes_(log_page_bytes) {}

  /// Multi-queue log device; group-commit syncs are charged per leader
  /// queue (bind committer threads with IoQueueScope on io()).
  explicit Wal(DeviceProfile profile, size_t log_page_bytes = 4096)
      : io_(std::move(profile)), log_page_bytes_(log_page_bytes) {}

  /// Enables leader-based group commit for AppendCommit (the dataset turns
  /// this on when writer_threads > 1).
  void set_group_commit(bool on);

  /// Failpoint hook (fault/fault_injector.h). An armed wal.append fire
  /// DROPS the record — Append/AppendCommit return kInvalidLsn and the
  /// injected Status is parked for FaultInjector::TakePending(); while the
  /// injector is crashed every append drops, so the log ends at the crash
  /// point. A wal.sync fire skips the modeled group-commit sync charge.
  void set_fault_injector(FaultInjector* fault);

  /// Appends a record, assigning it the next LSN (returned).
  Lsn Append(LogRecord record);

  /// Appends a commit record and returns once it is durable. See the group
  /// commit notes above.
  Lsn AppendCommit(LogRecord record);

  /// Current tail LSN (last assigned); kInvalidLsn if empty.
  Lsn tail_lsn() const;

  /// All records with lsn > after, in order.
  std::vector<LogRecord> ReadFrom(Lsn after) const;

  /// Truncates records with lsn <= up_to (checkpointing).
  void TruncateUpTo(Lsn up_to);

  /// Observability hooks (obs/). The registry adds the
  /// "wal.commit_modeled_ns" latency histogram; the tracer records one
  /// "wal.sync" span per modeled group-commit flush, stamped with the log
  /// device's virtual clock. Both null by default — armed-but-quiet, no
  /// modeled-time change. Attach before concurrent commit traffic.
  void set_metrics(obs::MetricsRegistry* metrics);
  void set_tracer(obs::Tracer* tracer);

  /// Live group-commit backlog (the WAL batch-occupancy gauges).
  struct Backlog {
    uint64_t commit_waiters = 0;    ///< committers inside AppendCommit
    uint64_t unsynced_records = 0;  ///< appended past the durable LSN
    uint64_t tail_bytes = 0;        ///< partial tail page not yet streamed
    bool sync_in_progress = false;  ///< a leader's commit window is open
  };
  Backlog backlog() const;

  /// The log device's engine (bind committer threads to queues here).
  IoEngine* io() { return &io_; }

  IoStats stats() const { return io_.stats(); }
  WalStats wal_stats() const;
  size_t num_records() const;

 private:
  Lsn AppendLocked(LogRecord record) REQUIRES(mu_);

  /// mu_ is the commit-window mutex: it guards the log tail (records_,
  /// next_lsn_, the partial-page byte counter) and the whole group-commit
  /// protocol state below. Rank kLeaf: held across modeled sync charges to
  /// the log device (DiskModel rank is deeper).
  mutable Mutex mu_{lockrank::kLeaf, "wal.mu"};
  CondVar cv_;
  IoEngine io_;
  FaultInjector* fault_ GUARDED_BY(mu_) = nullptr;
  const size_t log_page_bytes_;
  size_t bytes_since_page_ GUARDED_BY(mu_) = 0;
  Lsn next_lsn_ GUARDED_BY(mu_) = 1;
  std::vector<LogRecord> records_ GUARDED_BY(mu_);

  obs::Histogram* commit_hist_ GUARDED_BY(mu_) = nullptr;  ///< wal.commit_modeled_ns
  obs::Tracer* tracer_ GUARDED_BY(mu_) = nullptr;

  bool group_commit_ GUARDED_BY(mu_) = false;
  bool sync_in_progress_ GUARDED_BY(mu_) = false;  ///< a leader's window is open
  bool tail_dirty_ GUARDED_BY(mu_) = false;  ///< appended bytes not yet synced
  uint64_t commit_waiters_ GUARDED_BY(mu_) = 0;  ///< inside AppendCommit
  Lsn durable_lsn_ GUARDED_BY(mu_) = 0;
  /// Log-device critical path as of the last completed sync; batched
  /// commits read it to compute their modeled latency.
  double durable_point_us_ GUARDED_BY(mu_) = 0;
  WalStats wstats_ GUARDED_BY(mu_);
};

}  // namespace auxlsm
