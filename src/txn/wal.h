// Write-ahead log. The paper's setup dedicates a separate disk to logging
// (§6.1); we model the log as an append-only byte stream with sequential
// write cost charged to its own DiskModel, so log I/O never perturbs the
// storage disk's sequential/random accounting.
//
// The log survives a simulated crash (tests drop the Dataset but keep the
// Wal + Env), which is what recovery replays from.
#pragma once

#include <mutex>
#include <string>
#include <vector>

#include "env/disk_model.h"
#include "txn/log_record.h"

namespace auxlsm {

class Wal {
 public:
  explicit Wal(DiskProfile profile = DiskProfile::Hdd(),
               size_t log_page_bytes = 4096)
      : disk_(profile), log_page_bytes_(log_page_bytes) {}

  /// Appends a record, assigning it the next LSN (returned).
  Lsn Append(LogRecord record);

  /// Current tail LSN (last assigned); kInvalidLsn if empty.
  Lsn tail_lsn() const;

  /// All records with lsn > after, in order.
  std::vector<LogRecord> ReadFrom(Lsn after) const;

  /// Truncates records with lsn <= up_to (checkpointing).
  void TruncateUpTo(Lsn up_to);

  IoStats stats() const { return disk_.stats(); }
  size_t num_records() const;

 private:
  mutable std::mutex mu_;
  DiskModel disk_;
  const size_t log_page_bytes_;
  size_t bytes_since_page_ = 0;
  Lsn next_lsn_ = 1;
  std::vector<LogRecord> records_;
};

}  // namespace auxlsm
