// Record-level ACID transactions over a dataset's LSM indexes (§2.2).
//
// No-steal / no-force: all transaction effects live in memory components and
// mutable bitmaps until commit; disk components only ever contain committed
// data. Rollback applies inverse operations in reverse order. Durability
// comes from the WAL (commit record) plus recovery replay.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <vector>

#include "txn/lock_manager.h"
#include "txn/log_record.h"
#include "txn/wal.h"

namespace auxlsm {

class TransactionManager;
class TupleCache;

class Transaction {
 public:
  enum class State { kActive, kCommitted, kAborted };

  Transaction(TxnId id, LockManager* locks, Wal* wal,
              TransactionManager* mgr = nullptr)
      : id_(id), locks_(locks), wal_(wal), mgr_(mgr) {}
  ~Transaction();

  TxnId id() const { return id_; }
  State state() const { return state_; }
  LockManager* locks() const { return locks_; }

  /// Acquires a key lock held until commit/abort.
  void Lock(const Slice& key, LockMode mode) { locks_->Lock(id_, key, mode); }

  /// Appends a log record stamped with this transaction's id.
  Lsn Log(LogRecord record);

  /// Registers an inverse operation executed (in reverse order) on abort.
  void PushUndo(std::function<void()> inverse) {
    undo_.push_back(std::move(inverse));
  }

  /// Installs the dataset's tuple cache on the rollback path: every
  /// rollback (Abort and the commit-record-drop rollback in Commit) runs
  /// its undo closures inside the cache's write fence and then drops the
  /// whole cache. The undo closures' memtable restores are effects visible
  /// before any cache cut, exactly like the forward path's, and the
  /// restored records' cache positions (their *old* secondary keys) are
  /// unknown in general, so precise re-cuts are impossible — degrading to
  /// misses is the only stale-free option. Null (the default) skips both.
  /// Idempotent to reinstall per operation.
  void SetRollbackCache(TupleCache* cache) { rollback_cache_ = cache; }

  Status Commit();
  Status Abort();

 private:
  void ReleaseLocks() { locks_->UnlockAll(id_); }
  void NoteClosed();
  void Rollback();

  const TxnId id_;
  LockManager* const locks_;
  Wal* const wal_;
  TransactionManager* const mgr_;
  State state_ = State::kActive;
  std::vector<std::function<void()>> undo_;
  TupleCache* rollback_cache_ = nullptr;
};

class TransactionManager {
 public:
  TransactionManager(LockManager* locks, Wal* wal)
      : locks_(locks), wal_(wal) {}

  std::unique_ptr<Transaction> Begin() {
    active_.fetch_add(1, std::memory_order_relaxed);
    return std::make_unique<Transaction>(
        next_id_.fetch_add(1, std::memory_order_relaxed), locks_, wal_, this);
  }

  /// A maintenance-internal transaction that takes locks but has no
  /// uncommitted memtable effects (e.g. the §5.3 Lock-method builder): it is
  /// excluded from active_transactions(), so a long-running merge holding
  /// one never defers the pipeline's seal phase — sealing while it runs is
  /// safe precisely because it has nothing to roll back in the memtables.
  std::unique_ptr<Transaction> BeginReadOnly() {
    return std::make_unique<Transaction>(
        next_id_.fetch_add(1, std::memory_order_relaxed), locks_, wal_,
        nullptr);
  }

  /// Transactions begun and not yet committed/aborted. The ingestion
  /// pipeline checks this under the exclusive ingest latch (where in-flight
  /// auto-commit transactions are drained) to keep the no-steal invariant:
  /// memtables are never sealed for flush while an explicit transaction has
  /// uncommitted effects in them.
  int active_transactions() const {
    return active_.load(std::memory_order_relaxed);
  }

  LockManager* locks() const { return locks_; }
  Wal* wal() const { return wal_; }

 private:
  friend class Transaction;
  LockManager* const locks_;
  Wal* const wal_;
  std::atomic<TxnId> next_id_{1};
  std::atomic<int> active_{0};
};

}  // namespace auxlsm
