#include "txn/lock_manager.h"

#include "common/hash.h"

namespace auxlsm {

LockManager::LockManager(size_t num_shards) {
  shards_.reserve(num_shards);
  for (size_t i = 0; i < num_shards; i++) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

LockManager::Shard& LockManager::ShardFor(const Slice& key) {
  return *shards_[Hash64(key) % shards_.size()];
}
const LockManager::Shard& LockManager::ShardFor(const Slice& key) const {
  return *shards_[Hash64(key) % shards_.size()];
}

bool LockManager::CanGrant(const LockState& st, TxnId txn, LockMode mode) {
  if (mode == LockMode::kExclusive) {
    if (st.x_holder != 0 && st.x_holder != txn) return false;
    // Other readers block an X request (a self-held S lock upgrades).
    for (const auto& [holder, n] : st.s_holders) {
      if (holder != txn && n > 0) return false;
    }
    return true;
  }
  // Shared: granted unless another txn holds X.
  return st.x_holder == 0 || st.x_holder == txn;
}

void LockManager::Lock(TxnId txn, const Slice& key, LockMode mode) {
  Shard& shard = ShardFor(key);
  const std::string k = key.ToString();
  MutexLock l(shard.mu);
  // Re-find the entry on every wakeup: concurrent Lock() calls on other keys
  // can rehash the table and Unlock() erases entries that become free, so a
  // reference captured before waiting dangles (and a waiter reading stale
  // state may block forever).
  while (true) {
    auto it = shard.table.find(k);
    if (it == shard.table.end() || CanGrant(it->second, txn, mode)) break;
    shard.cv.Wait(shard.mu);
  }
  auto& st = shard.table[k];
  if (mode == LockMode::kExclusive) {
    st.x_holder = txn;
    st.x_count++;
  } else {
    st.s_holders[txn]++;
  }
}

void LockManager::Unlock(TxnId txn, const Slice& key) {
  Shard& shard = ShardFor(key);
  {
    MutexLock l(shard.mu);
    auto it = shard.table.find(key.ToString());
    if (it == shard.table.end()) return;
    LockState& st = it->second;
    if (st.x_holder == txn && st.x_count > 0) {
      if (--st.x_count == 0) st.x_holder = 0;
    } else {
      auto sit = st.s_holders.find(txn);
      if (sit != st.s_holders.end() && --sit->second == 0) {
        st.s_holders.erase(sit);
      }
    }
    if (st.x_holder == 0 && st.s_holders.empty()) {
      shard.table.erase(it);
    }
  }
  shard.cv.NotifyAll();
}

void LockManager::UnlockAll(TxnId txn) {
  for (auto& shard : shards_) {
    {
      MutexLock l(shard->mu);
      for (auto it = shard->table.begin(); it != shard->table.end();) {
        LockState& st = it->second;
        if (st.x_holder == txn) {
          st.x_holder = 0;
          st.x_count = 0;
        }
        st.s_holders.erase(txn);
        if (st.x_holder == 0 && st.s_holders.empty()) {
          it = shard->table.erase(it);
        } else {
          ++it;
        }
      }
    }
    shard->cv.NotifyAll();
  }
}

size_t LockManager::NumLockedKeys() const {
  size_t n = 0;
  for (const auto& shard : shards_) {
    MutexLock l(shard->mu);
    n += shard->table.size();
  }
  return n;
}

}  // namespace auxlsm
