// WAL log records (§2.2: index-level logical logging with no-steal/no-force
// buffering; §5.2: an extra "update bit" per delete/upsert records whether
// the old key lived in a disk component, so bitmap changes can be undone on
// abort and replayed on recovery).
#pragma once

#include <cstdint>
#include <string>

#include "common/clock.h"
#include "common/slice.h"
#include "common/status.h"

namespace auxlsm {

using Lsn = uint64_t;
inline constexpr Lsn kInvalidLsn = 0;

enum class LogRecordType : uint8_t {
  kInsert = 1,      ///< insert of a new record
  kUpsert = 2,      ///< upsert (blind or with old-record handling)
  kDelete = 3,      ///< delete by primary key
  kCommit = 4,
  kAbort = 5,
  kCheckpoint = 6,  ///< bitmap pages flushed up to this LSN
};

struct LogRecord {
  Lsn lsn = kInvalidLsn;
  uint64_t txn_id = 0;
  LogRecordType type = LogRecordType::kInsert;
  std::string key;    ///< primary key (empty for commit/abort/checkpoint)
  std::string value;  ///< serialized record (empty for deletes)
  Timestamp ts = 0;   ///< ingestion timestamp assigned to the operation
  /// §5.2: 1 iff the operation flipped a disk-component bitmap bit.
  bool update_bit = false;

  /// Binary encoding with a masked CRC-32C trailer.
  std::string Encode() const;
  static Status Decode(const Slice& data, LogRecord* out, size_t* consumed);
};

}  // namespace auxlsm
