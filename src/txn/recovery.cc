#include "txn/recovery.h"

#include <unordered_set>

namespace auxlsm {

Status RecoverFromWal(
    const Wal& wal, Lsn max_component_lsn, Lsn bitmap_checkpoint_lsn,
    const std::function<Status(const LogRecord&)>& redo_op,
    const std::function<Status(const LogRecord&)>& redo_bitmap,
    RecoveryStats* stats) {
  RecoveryStats local;
  const std::vector<LogRecord> records = wal.ReadFrom(kInvalidLsn);

  // Pass 1: committed transaction ids.
  std::unordered_set<uint64_t> committed;
  for (const auto& r : records) {
    if (r.type == LogRecordType::kCommit) committed.insert(r.txn_id);
  }

  // Pass 2: redo committed work in log order.
  for (const auto& r : records) {
    local.records_scanned++;
    if (r.type == LogRecordType::kCommit || r.type == LogRecordType::kAbort ||
        r.type == LogRecordType::kCheckpoint) {
      continue;
    }
    if (committed.find(r.txn_id) == committed.end()) {
      local.uncommitted_skipped++;
      continue;
    }
    if (r.lsn > max_component_lsn && redo_op) {
      AUXLSM_RETURN_NOT_OK(redo_op(r));
      local.ops_replayed++;
    }
    if (r.update_bit && r.lsn > bitmap_checkpoint_lsn && redo_bitmap) {
      AUXLSM_RETURN_NOT_OK(redo_bitmap(r));
      local.bitmap_ops_replayed++;
    }
  }
  if (stats != nullptr) *stats = local;
  return Status::OK();
}

}  // namespace auxlsm
