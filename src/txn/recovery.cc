#include "txn/recovery.h"

#include <unordered_set>

#include "common/coding.h"

namespace auxlsm {

Status DecodeWalStream(const Slice& data, std::vector<LogRecord>* out,
                       RecoveryStats* stats) {
  size_t off = 0;
  while (off < data.size()) {
    const Slice rest(data.data() + off, data.size() - off);
    LogRecord record;
    size_t consumed = 0;
    const Status st = LogRecord::Decode(rest, &record, &consumed);
    if (st.ok()) {
      out->push_back(std::move(record));
      off += consumed;
      continue;
    }
    // This frame is bad. A crash tears the log mid-append, so a bad FINAL
    // frame is expected and safely discarded; a bad frame with decodable
    // records after it means durable history was damaged — that must fail
    // recovery loudly. The frame length (when the header survived) tells
    // us where the next frame would start; probe it.
    if (rest.size() >= 8) {
      const size_t frame = 8 + size_t{DecodeFixed32(rest.data())};
      if (rest.size() > frame) {
        LogRecord probe;
        size_t probe_consumed = 0;
        const Slice after(rest.data() + frame, rest.size() - frame);
        if (LogRecord::Decode(after, &probe, &probe_consumed).ok()) {
          return st.WithContext("mid-log corruption at byte " +
                                std::to_string(off));
        }
      }
    }
    if (stats != nullptr) stats->torn_tail_bytes += data.size() - off;
    break;
  }
  return Status::OK();
}

Status RecoverFromWal(
    const Wal& wal, Lsn max_component_lsn, Lsn bitmap_checkpoint_lsn,
    const std::function<Status(const LogRecord&)>& redo_op,
    const std::function<Status(const LogRecord&)>& redo_bitmap,
    RecoveryStats* stats) {
  RecoveryStats local;
  const std::vector<LogRecord> records = wal.ReadFrom(kInvalidLsn);

  // Pass 1: committed transaction ids.
  std::unordered_set<uint64_t> committed;
  for (const auto& r : records) {
    if (r.type == LogRecordType::kCommit) committed.insert(r.txn_id);
  }

  // Pass 2: redo committed work in log order.
  for (const auto& r : records) {
    local.records_scanned++;
    if (r.type == LogRecordType::kCommit || r.type == LogRecordType::kAbort ||
        r.type == LogRecordType::kCheckpoint) {
      continue;
    }
    if (committed.find(r.txn_id) == committed.end()) {
      local.uncommitted_skipped++;
      continue;
    }
    if (r.lsn > max_component_lsn && redo_op) {
      AUXLSM_RETURN_NOT_OK(redo_op(r));
      local.ops_replayed++;
    }
    if (r.update_bit && r.lsn > bitmap_checkpoint_lsn && redo_bitmap) {
      AUXLSM_RETURN_NOT_OK(redo_bitmap(r));
      local.bitmap_ops_replayed++;
    }
  }
  if (stats != nullptr) *stats = local;
  return Status::OK();
}

}  // namespace auxlsm
