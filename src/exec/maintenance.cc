#include "exec/maintenance.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "exec/thread_pool.h"
#include "fault/fault_injector.h"
#include "io/io_engine.h"

namespace auxlsm {

MaintenanceScheduler::MaintenanceScheduler(MaintenanceOptions options)
    : options_(options) {
  threads_ = options_.threads;
  if (threads_ == 0) {
    threads_ = std::max(1u, std::thread::hardware_concurrency());
  }
}

MaintenanceScheduler::~MaintenanceScheduler() {
  // Shut the merge queues down like ThreadPool: remaining jobs still run
  // (the owning Dataset keeps its trees alive until after this destructor),
  // then the workers exit and are joined.
  {
    MutexLock l(merge_mu_);
    merge_stop_ = true;
  }
  merge_cv_.NotifyAll();
  for (auto& w : merge_workers_) w.join();
}

void MaintenanceScheduler::EnqueueMergeRound(std::vector<MergeJob> jobs) {
  jobs.erase(std::remove_if(jobs.begin(), jobs.end(),
                            [](const MergeJob& j) { return !j.work; }),
             jobs.end());
  if (jobs.empty()) return;
  MutexLock l(merge_mu_);
  auto remaining = std::make_shared<size_t>(jobs.size());
  merge_rounds_pending_++;
  merge_rounds_relaxed_.store(merge_rounds_pending_, std::memory_order_relaxed);
  for (auto& j : jobs) {
    auto [it, fresh] = merge_queues_.try_emplace(j.key);
    if (fresh) it->second.io_index = next_merge_queue_index_++;
    it->second.jobs.push_back(QueuedMergeJob{std::move(j.work), remaining});
    merge_jobs_pending_++;
  }
  // Merge work gets dedicated drain workers (never the flush pool): lazily
  // spawned, capped at one per registered queue — a tree's queue can always
  // drain even while every other queue is stuck on a long merge, which is
  // the "a backlogged merge on one tree never blocks other trees' merges"
  // guarantee. Queue count is the dataset's tree count, so this stays a
  // handful of mostly-parked threads even on a serial engine.
  size_t claimable = 0;
  for (const auto& [key, q] : merge_queues_) {
    (void)key;
    if (!q.draining && !q.jobs.empty()) claimable++;
  }
  size_t available = idle_merge_workers_;
  while (available < claimable &&
         merge_workers_.size() < merge_queues_.size()) {
    merge_workers_.emplace_back([this]() { MergeDrainLoop(); });
    available++;
  }
  merge_cv_.NotifyAll();
}

MaintenanceScheduler::MergeQueue* MaintenanceScheduler::ClaimQueueLocked() {
  for (auto& [key, q] : merge_queues_) {
    (void)key;
    if (!q.draining && !q.jobs.empty()) {
      q.draining = true;
      return &q;  // unordered_map references are stable across inserts
    }
  }
  return nullptr;
}

void MaintenanceScheduler::MergeDrainLoop() {
  // The drain loop cycles merge_mu_ around each job (locked while claiming,
  // unlocked while the job runs) — inexpressible with a scoped guard, so it
  // uses explicit annotated lock()/unlock() calls the analysis can follow.
  merge_mu_.lock();
  while (true) {
    MergeQueue* q = ClaimQueueLocked();
    if (q == nullptr) {
      if (merge_stop_) {
        merge_mu_.unlock();
        return;
      }
      idle_merge_workers_++;
      merge_cv_.Wait(merge_mu_);
      idle_merge_workers_--;
      continue;
    }
    // Drain this queue to empty; its jobs run strictly serially (the
    // per-tree merge serialization rule), newest-enqueued last.
    while (!q->jobs.empty()) {
      QueuedMergeJob job = std::move(q->jobs.front());
      q->jobs.pop_front();
      const uint32_t io_index = q->io_index;
      merge_mu_.unlock();
      Status st;
      {
        // Queue-aware device affinity, mirroring RunAll's task binding.
        IoQueueScope scope(options_.io, io_index);
        try {
          st = job.work();
        } catch (const std::exception& e) {
          // A throwing job must not wedge the queue: the pending-job and
          // pending-round counters below have to run no matter what, or
          // PendingMergeRounds() never drains and ingest backpressure
          // deadlocks.
          st = Status::Aborted(std::string("merge job threw: ") + e.what());
        } catch (...) {
          st = Status::Aborted("merge job threw");
        }
      }
      merge_mu_.lock();
      if (!st.ok() && merge_error_.ok()) {
        merge_error_ = st;
        has_merge_error_.store(true, std::memory_order_release);
      }
      merge_jobs_pending_--;
      if (--*job.round_remaining == 0) {
        merge_rounds_pending_--;
        merge_rounds_relaxed_.store(merge_rounds_pending_,
                                    std::memory_order_relaxed);
      }
      merge_cv_.NotifyAll();
    }
    q->draining = false;
    merge_cv_.NotifyAll();
  }
}

size_t MaintenanceScheduler::PendingMergeRounds() const {
  MutexLock l(merge_mu_);
  return merge_rounds_pending_;
}

size_t MaintenanceScheduler::PendingMergeJobs() const {
  MutexLock l(merge_mu_);
  return merge_jobs_pending_;
}

void MaintenanceScheduler::WaitForMergeRounds(size_t limit) {
  // Per-op ingest fast path: no backlog means no lock — writers only
  // contend on merge_mu_ once the queues are genuinely behind.
  if (merge_rounds_relaxed_.load(std::memory_order_relaxed) <= limit) return;
  MutexLock l(merge_mu_);
  while (merge_rounds_pending_ > limit && !merge_stop_) {
    merge_cv_.Wait(merge_mu_);
  }
}

Status MaintenanceScheduler::DrainMerges() {
  MutexLock l(merge_mu_);
  while (merge_jobs_pending_ != 0) merge_cv_.Wait(merge_mu_);
  return merge_error_;
}

Status MaintenanceScheduler::merge_error() const {
  MutexLock l(merge_mu_);
  return merge_error_;
}

Status MaintenanceScheduler::TakeMergeError() {
  MutexLock l(merge_mu_);
  Status s = merge_error_;
  merge_error_ = Status::OK();
  has_merge_error_.store(false, std::memory_order_release);
  return s;
}

ThreadPool* MaintenanceScheduler::pool() {
  if (threads_ <= 1) return nullptr;
  MutexLock l(pool_mu_);
  if (pool_ == nullptr) pool_ = std::make_unique<ThreadPool>(threads_);
  return pool_.get();
}

size_t MaintenanceScheduler::PoolQueueDepth() {
  MutexLock l(pool_mu_);
  return pool_ == nullptr ? 0 : pool_->QueueDepth();
}

size_t MaintenanceScheduler::partitions() const {
  return options_.merge_partitions == 0 ? threads_
                                        : options_.merge_partitions;
}

Status MaintenanceScheduler::WaitAll(
    std::vector<std::future<Status>>& futures) {
  ThreadPool* p = pool();
  Status first_error;
  for (auto& f : futures) {
    // Help drain the pool queue while waiting, so tasks that themselves
    // fanned out (nested merges) cannot starve on a fully blocked pool.
    while (f.wait_for(std::chrono::seconds(0)) !=
           std::future_status::ready) {
      if (!p->RunOneQueued()) {
        f.wait_for(std::chrono::milliseconds(1));
      }
    }
    const Status st = f.get();
    if (first_error.ok() && !st.ok()) first_error = st;
  }
  return first_error;
}

Status MaintenanceScheduler::RunAll(
    std::vector<std::function<Status()>>&& tasks) {
  if (tasks.empty()) return Status::OK();
  // Queue affinity: task i's I/O is charged to device queue (i % queues).
  // Binding travels with the task (not the worker), so the mapping is
  // deterministic under helping/stealing, and it applies on the inline
  // serial path too — simulated device concurrency is independent of host
  // concurrency. With a single-queue engine this is a no-op.
  IoEngine* io = options_.io;
  const bool bind = io != nullptr && io->num_queues() > 1 && tasks.size() > 1;
  if (bind) {
    for (size_t i = 0; i < tasks.size(); i++) {
      tasks[i] = [io, i, task = std::move(tasks[i])]() {
        IoQueueScope scope(io, uint32_t(i));
        return task();
      };
    }
  }
  if (!parallel() || tasks.size() == 1) {
    Status first_error;
    for (auto& t : tasks) {
      const Status st = t();
      if (first_error.ok() && !st.ok()) first_error = st;
    }
    return first_error;
  }
  ThreadPool* p = pool();
  std::vector<std::future<Status>> futures;
  futures.reserve(tasks.size());
  for (auto& t : tasks) {
    futures.push_back(p->Submit(std::move(t)));
  }
  return WaitAll(futures);
}

Status MaintenanceScheduler::MergeToPolicy(LsmTree* tree, uint64_t* merges) {
  if (tree == nullptr) return Status::OK();
  std::vector<DiskComponentPtr> picked;
  while (tree->PickMergeCandidates(&picked)) {
    AUXLSM_RETURN_NOT_OK(MergeComponents(tree, picked));
    if (merges != nullptr) (*merges)++;
  }
  return Status::OK();
}

Status MaintenanceScheduler::MergeComponents(
    LsmTree* tree, const std::vector<DiskComponentPtr>& picked) {
  if (picked.empty()) return Status::OK();
  if (options_.fault != nullptr) {
    AUXLSM_RETURN_NOT_OK(
        options_.fault->Hit(failpoints::kMerge, options_.io));
  }
  uint64_t total_bytes = 0;
  for (const auto& c : picked) total_bytes += c->size_bytes();
  const size_t parts = partitions();
  if (!parallel() || parts < 2 || picked.size() < 2 ||
      total_bytes < options_.partition_min_bytes) {
    return tree->MergeComponents(picked);
  }

  // Partition boundaries: evenly spaced leaf first-keys of the largest
  // input, which dominates the merge's key distribution.
  const DiskComponentPtr* largest = &picked.front();
  for (const auto& c : picked) {
    if (c->size_bytes() > (*largest)->size_bytes()) largest = &c;
  }
  std::vector<std::string> splits;
  AUXLSM_RETURN_NOT_OK(
      (*largest)->tree().ApproximateSplitKeys(parts, &splits));
  if (splits.empty()) return tree->MergeComponents(picked);

  const bool includes_oldest = tree->IsOldestComponent(picked.back());
  const uint32_t readahead = tree->options().scan_readahead_pages;

  // Scan partition i = keys in [splits[i-1], splits[i]) — reconciled and
  // bitmap/anti-matter filtered exactly as a whole-range merge would. The
  // partition outputs are buffered in memory until the stitch, so peak
  // memory is O(merge output); merges are bounded by the policy's
  // max_mergeable_bytes, and partition_min_bytes keeps small merges on the
  // streaming serial path. Spilling partitions to temp files would lift the
  // bound for unbounded full merges (see ROADMAP open items).
  const size_t n_parts = splits.size() + 1;
  std::vector<std::vector<OwnedEntry>> part_entries(n_parts);
  auto scan_part = [&, includes_oldest, readahead](size_t i) -> Status {
    MergeCursor::Options mo;
    mo.readahead_pages = readahead;
    mo.respect_bitmaps = true;
    mo.drop_antimatter = includes_oldest;
    if (i > 0) mo.lower_bound = splits[i - 1];
    if (i < splits.size()) {
      mo.upper_bound = splits[i];
      mo.upper_bound_exclusive = true;  // partition i+1 owns splits[i]
    }
    MergeCursor cursor(picked, mo);
    AUXLSM_RETURN_NOT_OK(cursor.Init());
    std::vector<OwnedEntry>& out = part_entries[i];
    while (cursor.Valid()) {
      OwnedEntry e;
      e.key = cursor.key().ToString();
      e.value = cursor.value().ToString();
      e.ts = cursor.ts();
      e.antimatter = cursor.antimatter();
      out.push_back(std::move(e));
      AUXLSM_RETURN_NOT_OK(cursor.Next());
    }
    return Status::OK();
  };

  std::vector<std::function<Status()>> tasks;
  tasks.reserve(n_parts);
  for (size_t i = 0; i < n_parts; i++) {
    tasks.push_back([&scan_part, i]() { return scan_part(i); });
  }
  AUXLSM_RETURN_NOT_OK(RunAll(std::move(tasks)));

  // Stitch: feed the partition outputs, in key order, to one component
  // build. MergeFromStream re-applies repaired-ts and range-filter rules.
  size_t pi = 0, ei = 0;
  auto next = [&](OwnedEntry* e) {
    while (pi < part_entries.size() && ei >= part_entries[pi].size()) {
      part_entries[pi].clear();
      part_entries[pi].shrink_to_fit();
      pi++;
      ei = 0;
    }
    if (pi >= part_entries.size()) return false;
    *e = std::move(part_entries[pi][ei++]);
    return true;
  };
  return tree->MergeFromStream(picked, next);
}

}  // namespace auxlsm
