// Background maintenance engine: runs the flushes and merges of a Dataset's
// index trees concurrently on a ThreadPool (exec/thread_pool.h).
//
// Architecture / threading model of src/exec/:
//
//   Dataset (core/dataset.cc)                 MaintenanceScheduler
//   ------------------------------            ----------------------------
//   FlushAllLocked  ── tasks per tree ──────► RunAll: one flush per index
//   RunMerges       ── tasks per tree ──────► RunAll: MergeToPolicy loops
//   CorrelatedMerge ── tasks per round ─────► RunAll: ranged merges
//                                             │
//                                             ▼
//                                       ThreadPool (N workers)
//
//   - Work is fanned out at *tree* granularity: the primary, primary-key,
//     secondary, and deleted-key trees flush and merge concurrently. Merges
//     of one tree are never issued concurrently (per-tree serialization):
//     each tree's merge loop runs inside a single task.
//   - A large merge of one tree may additionally be split into key-range
//     partitions (MergeCursor lower/upper bounds); the partitions are
//     scanned in parallel and the outputs stitched into one component by
//     LsmTree::MergeFromStream.
//   - Shared state touched from tasks: Env's PageStore / IoEngine /
//     BufferCache (each internally synchronized; the BufferCache is
//     lock-striped into shards), and each LsmTree's components_ list
//     (guarded by its components_mu_). Dataset-level counters (IngestStats)
//     are relaxed atomics (common/stat_counter.h): they are bumped from
//     concurrent writer threads and the background ingestion pipeline, not
//     just the coordinating thread.
//   - Queue affinity: when MaintenanceOptions::io names a multi-queue
//     IoEngine, RunAll binds task i to device queue (i % queues) for the
//     task's duration (IoQueueScope), so fanned-out flushes and partitioned
//     merge scans charge independent queue clocks and genuinely overlap in
//     *simulated* time, not just wall-clock. The mapping is by task index,
//     not worker thread, so it is deterministic under work stealing and
//     "helping", and it applies on the serial inline path too (modeled
//     device concurrency does not require host concurrency). With a
//     single-queue engine every binding resolves to queue 0 — bit-for-bit
//     the legacy single-head charging.
//   - Waits use "helping": a thread blocked on task futures runs queued
//     tasks itself, so nested fan-out (merge loop inside a task spawning
//     partition scans) cannot deadlock the fixed-size pool.
#pragma once

#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <vector>

#include "common/status.h"
#include "lsm/lsm_tree.h"

namespace auxlsm {

class ThreadPool;
class IoEngine;

struct MaintenanceOptions {
  /// Worker threads. 0 = one per hardware thread; 1 = no pool (every
  /// scheduler entry point degrades to the caller's thread, byte-for-byte
  /// the legacy serial behavior).
  size_t threads = 0;
  /// Number of key-range partitions a large merge is split into.
  /// 0 = match the thread count.
  size_t merge_partitions = 0;
  /// Only merges of at least this many input bytes are partitioned (small
  /// merges are dominated by setup cost).
  uint64_t partition_min_bytes = 8u << 20;
  /// Device engine for queue affinity: RunAll binds task i to device queue
  /// (i % queues). Null or single-queue = every task charges queue 0, the
  /// legacy single-head accounting.
  IoEngine* io = nullptr;
};

class MaintenanceScheduler {
 public:
  explicit MaintenanceScheduler(MaintenanceOptions options);
  ~MaintenanceScheduler();

  MaintenanceScheduler(const MaintenanceScheduler&) = delete;
  MaintenanceScheduler& operator=(const MaintenanceScheduler&) = delete;

  /// Resolved worker count (>= 1).
  size_t threads() const { return threads_; }
  /// True when entry points fan out (threads > 1). The worker pool itself
  /// is spawned lazily on first use, so an idle scheduler costs nothing.
  bool parallel() const { return threads_ > 1; }
  /// The worker pool; created on first call, null when not parallel().
  ThreadPool* pool();

  /// Runs every task (on the pool when parallel, else inline) and returns
  /// the first non-OK status. All tasks run to completion either way.
  Status RunAll(std::vector<std::function<Status()>>&& tasks);

  /// Repeatedly consults `tree`'s merge policy and merges until it is
  /// satisfied, splitting large merges into key-range partitions. Adds the
  /// number of merges run to *merges (may be null).
  Status MergeToPolicy(LsmTree* tree, uint64_t* merges);

  /// One merge of `picked` into a single component, scanned as parallel
  /// key-range partitions when profitable, else delegated to
  /// LsmTree::MergeComponents.
  Status MergeComponents(LsmTree* tree,
                         const std::vector<DiskComponentPtr>& picked);

 private:
  /// Blocks on `futures`, helping run queued pool tasks meanwhile.
  Status WaitAll(std::vector<std::future<Status>>& futures);

  size_t partitions() const;

  MaintenanceOptions options_;
  size_t threads_ = 1;
  std::mutex pool_mu_;                // guards lazy pool creation
  std::unique_ptr<ThreadPool> pool_;  // null until first use / if serial
};

}  // namespace auxlsm
