// Background maintenance engine: runs the flushes and merges of a Dataset's
// index trees concurrently on a ThreadPool (exec/thread_pool.h).
//
// Architecture / threading model of src/exec/:
//
//   Dataset (core/dataset.cc)                 MaintenanceScheduler
//   ------------------------------            ----------------------------
//   FlushAllLocked  ── tasks per tree ──────► RunAll: one flush per index
//   RunMerges       ── tasks per tree ──────► RunAll: MergeToPolicy loops
//   CorrelatedMerge ── tasks per round ─────► RunAll: ranged merges
//                                             │
//                                             ▼
//                                       ThreadPool (N workers)
//
//   - Work is fanned out at *tree* granularity: the primary, primary-key,
//     secondary, and deleted-key trees flush and merge concurrently. Merges
//     of one tree are never issued concurrently (per-tree serialization):
//     each tree's merge loop runs inside a single task.
//   - A large merge of one tree may additionally be split into key-range
//     partitions (MergeCursor lower/upper bounds); the partitions are
//     scanned in parallel and the outputs stitched into one component by
//     LsmTree::MergeFromStream.
//   - Shared state touched from tasks: Env's PageStore / IoEngine /
//     BufferCache (each internally synchronized; the BufferCache is
//     lock-striped into shards), and each LsmTree's components_ list
//     (guarded by its components_mu_). Dataset-level counters (IngestStats)
//     are relaxed atomics (common/stat_counter.h): they are bumped from
//     concurrent writer threads and the background ingestion pipeline, not
//     just the coordinating thread.
//   - Queue affinity: when MaintenanceOptions::io names a multi-queue
//     IoEngine, RunAll binds task i to device queue (i % queues) for the
//     task's duration (IoQueueScope), so fanned-out flushes and partitioned
//     merge scans charge independent queue clocks and genuinely overlap in
//     *simulated* time, not just wall-clock. The mapping is by task index,
//     not worker thread, so it is deterministic under work stealing and
//     "helping", and it applies on the serial inline path too (modeled
//     device concurrency does not require host concurrency). With a
//     single-queue engine every binding resolves to queue 0 — bit-for-bit
//     the legacy single-head charging.
//   - Waits use "helping": a thread blocked on task futures runs queued
//     tasks itself, so nested fan-out (merge loop inside a task spawning
//     partition scans) cannot deadlock the fixed-size pool.
//   - Decoupled merge scheduling (PR 5): EnqueueMergeRound hands merge work
//     to per-tree FIFO queues drained by dedicated lazily-spawned drain
//     workers — NOT the flush pool, so a long merge backlog can never starve
//     the next flush cycle's fan-out. Jobs of one queue key run strictly
//     serially (the per-tree merge serialization rule above); distinct keys
//     drain concurrently. Each queue is bound to device queue
//     (registration-index % io queues) for its jobs' duration, mirroring
//     RunAll's task-index affinity. A *round* is the batch of jobs one flush
//     cycle enqueues; PendingMergeRounds() counts rounds not yet fully
//     retired and is the ingestion pipeline's bounded merge-backlog
//     backpressure signal. The first job error is sticky
//     (merge_error / TakeMergeError) until explicitly taken.
#pragma once

#include <atomic>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "lsm/lsm_tree.h"

namespace auxlsm {

class ThreadPool;
class IoEngine;
class FaultInjector;

struct MaintenanceOptions {
  /// Worker threads. 0 = one per hardware thread; 1 = no pool (every
  /// scheduler entry point degrades to the caller's thread, byte-for-byte
  /// the legacy serial behavior).
  size_t threads = 0;
  /// Number of key-range partitions a large merge is split into.
  /// 0 = match the thread count.
  size_t merge_partitions = 0;
  /// Only merges of at least this many input bytes are partitioned (small
  /// merges are dominated by setup cost).
  uint64_t partition_min_bytes = 8u << 20;
  /// Device engine for queue affinity: RunAll binds task i to device queue
  /// (i % queues). Null or single-queue = every task charges queue 0, the
  /// legacy single-head accounting.
  IoEngine* io = nullptr;
  /// Optional fault injector (fault/fault_injector.h): MergeComponents hits
  /// the "maintenance.merge" failpoint before any merge I/O. Null disables
  /// (a pure branch — no behavior change).
  FaultInjector* fault = nullptr;
};

class MaintenanceScheduler {
 public:
  explicit MaintenanceScheduler(MaintenanceOptions options);
  ~MaintenanceScheduler();

  MaintenanceScheduler(const MaintenanceScheduler&) = delete;
  MaintenanceScheduler& operator=(const MaintenanceScheduler&) = delete;

  /// Resolved worker count (>= 1).
  size_t threads() const { return threads_; }
  /// True when entry points fan out (threads > 1). The worker pool itself
  /// is spawned lazily on first use, so an idle scheduler costs nothing.
  bool parallel() const { return threads_ > 1; }
  /// The worker pool; created on first call, null when not parallel().
  ThreadPool* pool();
  /// Live queue depth of the worker pool WITHOUT creating it (0 when the
  /// pool was never spawned) — the exec.pool_queue_depth gauge.
  size_t PoolQueueDepth();

  /// Runs every task (on the pool when parallel, else inline) and returns
  /// the first non-OK status. All tasks run to completion either way.
  Status RunAll(std::vector<std::function<Status()>>&& tasks);

  /// Repeatedly consults `tree`'s merge policy and merges until it is
  /// satisfied, splitting large merges into key-range partitions. Adds the
  /// number of merges run to *merges (may be null).
  Status MergeToPolicy(LsmTree* tree, uint64_t* merges);

  /// One merge of `picked` into a single component, scanned as parallel
  /// key-range partitions when profitable, else delegated to
  /// LsmTree::MergeComponents.
  Status MergeComponents(LsmTree* tree,
                         const std::vector<DiskComponentPtr>& picked);

  // --- Decoupled per-tree merge queues --------------------------------------
  /// Opaque serial-stream key: one tree (or one correlated-merge group).
  /// Jobs sharing a key never run concurrently and run in FIFO order.
  using MergeKey = const void*;
  struct MergeJob {
    MergeKey key = nullptr;
    std::function<Status()> work;
  };

  /// Enqueues one *round* of merge work (the batch one flush cycle hands
  /// over). Jobs are appended to their keys' FIFO queues and drained by
  /// dedicated merge workers, never by the flush pool. The round stays
  /// pending until every one of its jobs finished. Empty rounds are ignored.
  void EnqueueMergeRound(std::vector<MergeJob> jobs);

  /// Rounds whose jobs have not all finished — the merge-backlog depth the
  /// ingestion pipeline backpressures on.
  size_t PendingMergeRounds() const;
  /// Queued + running individual merge jobs (diagnostics / tests).
  size_t PendingMergeJobs() const;

  /// Blocks until PendingMergeRounds() <= limit (bounded backpressure: the
  /// caller waits out only the backlog *excess*, never a full drain). The
  /// common no-backlog case is lock-free — the mutex is only taken once the
  /// relaxed round count exceeds the limit.
  void WaitForMergeRounds(size_t limit);

  /// Blocks until every queue is empty and all jobs finished; returns the
  /// sticky first merge error (which stays sticky — see TakeMergeError).
  Status DrainMerges();

  /// Lock-free fast path for the per-op ingest check: true iff a merge job
  /// has failed since the last TakeMergeError(). Callers take merge_error()
  /// (which locks) only when this fires.
  bool has_merge_error() const {
    return has_merge_error_.load(std::memory_order_acquire);
  }
  /// First non-OK status of any merge job since the last TakeMergeError().
  Status merge_error() const;
  /// Returns and clears the sticky merge error.
  Status TakeMergeError();

 private:
  /// Blocks on `futures`, helping run queued pool tasks meanwhile.
  Status WaitAll(std::vector<std::future<Status>>& futures);

  size_t partitions() const;

  struct QueuedMergeJob {
    std::function<Status()> work;
    /// Shared per-round countdown (guarded by merge_mu_); the round retires
    /// when it reaches zero.
    std::shared_ptr<size_t> round_remaining;
  };
  struct MergeQueue {
    std::deque<QueuedMergeJob> jobs;
    bool draining = false;   ///< a worker is running this queue's jobs
    uint32_t io_index = 0;   ///< device-queue binding (registration order)
  };
  /// Long-lived merge drain worker: claims a non-draining queue with work,
  /// runs its jobs to empty (serially), repeats; exits on shutdown once no
  /// claimable work remains (the destructor drains, like ThreadPool's).
  void MergeDrainLoop();
  MergeQueue* ClaimQueueLocked() REQUIRES(merge_mu_);

  MaintenanceOptions options_;
  size_t threads_ = 1;
  Mutex pool_mu_{lockrank::kLeaf, "exec.pool_mu"};  // guards lazy pool creation
  std::unique_ptr<ThreadPool> pool_ GUARDED_BY(pool_mu_);  // null until use

  // Merge-queue state (all guarded by merge_mu_ except where noted).
  mutable Mutex merge_mu_{lockrank::kLeaf, "exec.merge_mu"};
  CondVar merge_cv_;
  std::unordered_map<MergeKey, MergeQueue> merge_queues_ GUARDED_BY(merge_mu_);
  size_t merge_jobs_pending_ GUARDED_BY(merge_mu_) = 0;  // queued + running
  size_t merge_rounds_pending_ GUARDED_BY(merge_mu_) = 0;  // unfinished rounds
  /// Relaxed mirror of merge_rounds_pending_ for the per-op fast path.
  std::atomic<size_t> merge_rounds_relaxed_{0};
  size_t idle_merge_workers_ GUARDED_BY(merge_mu_) = 0;
  bool merge_stop_ GUARDED_BY(merge_mu_) = false;
  Status merge_error_ GUARDED_BY(merge_mu_);
  std::atomic<bool> has_merge_error_{false};  // mirrors merge_error_.ok()
  uint32_t next_merge_queue_index_ GUARDED_BY(merge_mu_) = 0;
  std::vector<std::thread> merge_workers_ GUARDED_BY(merge_mu_);
};

}  // namespace auxlsm
