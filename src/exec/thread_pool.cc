#include "exec/thread_pool.h"

#include <algorithm>

namespace auxlsm {

ThreadPool::ThreadPool(size_t num_threads) {
  num_threads = std::max<size_t>(1, num_threads);
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; i++) {
    threads_.emplace_back([this]() { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> l(queue_mu_);
    stop_ = true;
  }
  queue_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

bool ThreadPool::RunOneQueued() {
  std::function<void()> task;
  {
    std::lock_guard<std::mutex> l(queue_mu_);
    if (queue_.empty()) return false;
    task = std::move(queue_.front());
    queue_.pop_front();
  }
  task();
  return true;
}

size_t ThreadPool::QueueDepth() const {
  std::lock_guard<std::mutex> l(queue_mu_);
  return queue_.size();
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> l(queue_mu_);
      queue_cv_.wait(l, [this]() { return stop_ || !queue_.empty(); });
      // Drain remaining tasks even after stop: every Submit() promised a
      // future that must eventually be fulfilled.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // packaged_task captures any exception in the future
  }
}

}  // namespace auxlsm
