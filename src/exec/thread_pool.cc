#include "exec/thread_pool.h"

#include <algorithm>

namespace auxlsm {

ThreadPool::ThreadPool(size_t num_threads) {
  num_threads = std::max<size_t>(1, num_threads);
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; i++) {
    threads_.emplace_back([this]() { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock l(queue_mu_);
    stop_ = true;
  }
  queue_cv_.NotifyAll();
  for (auto& t : threads_) t.join();
}

bool ThreadPool::RunOneQueued() {
  std::function<void()> task;
  {
    MutexLock l(queue_mu_);
    if (queue_.empty()) return false;
    task = std::move(queue_.front());
    queue_.pop_front();
  }
  task();
  return true;
}

size_t ThreadPool::QueueDepth() const {
  MutexLock l(queue_mu_);
  return queue_.size();
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      MutexLock l(queue_mu_);
      while (!stop_ && queue_.empty()) queue_cv_.Wait(queue_mu_);
      // Drain remaining tasks even after stop: every Submit() promised a
      // future that must eventually be fulfilled.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // packaged_task captures any exception in the future
  }
}

}  // namespace auxlsm
