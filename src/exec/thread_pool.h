// Fixed-size worker pool backing the maintenance engine (exec/maintenance.h).
//
// Threading model of src/exec/ (see also maintenance.h):
//   - ThreadPool owns N OS threads that pop tasks from one FIFO queue guarded
//     by queue_mu_. Submit() may be called from any thread, including from a
//     task already running on the pool (tasks must not *block* on tasks they
//     submitted unless spare workers exist — the MaintenanceScheduler is
//     structured so only the coordinating thread waits on futures).
//   - Exceptions thrown by a task are captured in the task's future and
//     rethrown at get(); workers never die from a task exception.
//   - The destructor drains the queue (runs every submitted task) before
//     joining, so callers may drop a pool without waiting on every future.
#pragma once

#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <thread>
#include <type_traits>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace auxlsm {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return threads_.size(); }

  /// Enqueues a callable; returns a future for its result. A thrown
  /// exception propagates through the future.
  template <typename F>
  auto Submit(F&& f) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> future = task->get_future();
    {
      MutexLock l(queue_mu_);
      queue_.emplace_back([task]() { (*task)(); });
    }
    queue_cv_.NotifyOne();
    return future;
  }

  /// Pops and runs one queued task on the calling thread; returns false if
  /// the queue was empty. Threads blocked on futures of tasks that fan out
  /// further Submit()s call this in a loop ("helping"), which keeps nested
  /// fan-out deadlock-free even when every worker is blocked waiting.
  bool RunOneQueued();

  /// Tasks submitted and not yet started (diagnostics).
  size_t QueueDepth() const;

 private:
  void WorkerLoop();

  mutable Mutex queue_mu_{lockrank::kPoolQueue, "threadpool.queue"};
  CondVar queue_cv_;
  std::deque<std::function<void()>> queue_ GUARDED_BY(queue_mu_);
  bool stop_ GUARDED_BY(queue_mu_) = false;
  std::vector<std::thread> threads_;
};

}  // namespace auxlsm
