// Key encodings. All index keys are byte strings ordered by memcmp; integers
// are encoded big-endian so numeric order equals byte order. Secondary index
// keys are the composition (secondary key, primary key) — §3's design for
// handling duplicate secondary keys — with fixed-width secondary keys so the
// concatenation preserves lexicographic order.
#pragma once

#include <cstdint>
#include <string>

#include "common/slice.h"

namespace auxlsm {

/// Encodes a uint64 in big-endian (memcmp-ordered).
std::string EncodeU64(uint64_t v);
void AppendU64(std::string* dst, uint64_t v);
uint64_t DecodeU64(const Slice& s);

/// Encodes an int64 order-preservingly (sign bit flipped, big-endian).
std::string EncodeI64(int64_t v);
int64_t DecodeI64(const Slice& s);

/// Composes a secondary-index key from a fixed-width secondary key and the
/// primary key.
std::string ComposeSecondaryKey(const Slice& secondary_key,
                                const Slice& primary_key);

/// Splits a composed secondary-index key given the secondary key width.
void SplitSecondaryKey(const Slice& composed, size_t sk_width,
                       Slice* secondary_key, Slice* primary_key);

}  // namespace auxlsm
