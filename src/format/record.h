// The synthetic tweet record used throughout the paper's evaluation (§6.1):
// a 64-bit primary key, a user id in [0, 100K) for controlled-selectivity
// secondary queries, a location, a monotonically increasing creation time
// (the range-filter key), and a variable-length message (450-550 bytes).
#pragma once

#include <cstdint>
#include <string>

#include "common/slice.h"
#include "common/status.h"

namespace auxlsm {

struct TweetRecord {
  uint64_t id = 0;             ///< primary key
  uint64_t user_id = 0;        ///< secondary index key
  std::string location;        ///< e.g. "CA"
  uint64_t creation_time = 0;  ///< range-filter key, monotonically increasing
  std::string message;

  std::string primary_key() const;
  /// Encoded secondary key for the user_id index (8-byte big-endian).
  std::string user_key() const;

  /// Serializes to the stored record format.
  std::string Serialize() const;
  static Status Deserialize(const Slice& data, TweetRecord* out);

  bool operator==(const TweetRecord& o) const {
    return id == o.id && user_id == o.user_id && location == o.location &&
           creation_time == o.creation_time && message == o.message;
  }
};

/// Extracts just the creation_time field from a serialized record (cheap,
/// used for filter maintenance without full deserialization).
Status ExtractCreationTime(const Slice& data, uint64_t* creation_time);
/// Extracts just the user_id field from a serialized record.
Status ExtractUserId(const Slice& data, uint64_t* user_id);

}  // namespace auxlsm
