#include "format/record.h"

#include "common/coding.h"
#include "format/key_codec.h"

namespace auxlsm {

std::string TweetRecord::primary_key() const { return EncodeU64(id); }
std::string TweetRecord::user_key() const { return EncodeU64(user_id); }

std::string TweetRecord::Serialize() const {
  std::string out;
  out.reserve(8 + 8 + 8 + 2 + location.size() + message.size() + 4);
  PutFixed64(&out, id);
  PutFixed64(&out, user_id);
  PutFixed64(&out, creation_time);
  PutLengthPrefixedSlice(&out, location);
  PutLengthPrefixedSlice(&out, message);
  return out;
}

Status TweetRecord::Deserialize(const Slice& data, TweetRecord* out) {
  if (data.size() < 24) return Status::Corruption("record too short");
  out->id = DecodeFixed64(data.data());
  out->user_id = DecodeFixed64(data.data() + 8);
  out->creation_time = DecodeFixed64(data.data() + 16);
  Slice rest(data.data() + 24, data.size() - 24);
  Slice loc, msg;
  if (!GetLengthPrefixedSlice(&rest, &loc) ||
      !GetLengthPrefixedSlice(&rest, &msg)) {
    return Status::Corruption("record fields truncated");
  }
  out->location = loc.ToString();
  out->message = msg.ToString();
  return Status::OK();
}

Status ExtractCreationTime(const Slice& data, uint64_t* creation_time) {
  if (data.size() < 24) return Status::Corruption("record too short");
  *creation_time = DecodeFixed64(data.data() + 16);
  return Status::OK();
}

Status ExtractUserId(const Slice& data, uint64_t* user_id) {
  if (data.size() < 24) return Status::Corruption("record too short");
  *user_id = DecodeFixed64(data.data() + 8);
  return Status::OK();
}

}  // namespace auxlsm
