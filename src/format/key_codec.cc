#include "format/key_codec.h"

#include <cassert>

namespace auxlsm {

void AppendU64(std::string* dst, uint64_t v) {
  char buf[8];
  for (int i = 7; i >= 0; i--) {
    buf[i] = static_cast<char>(v & 0xff);
    v >>= 8;
  }
  dst->append(buf, 8);
}

std::string EncodeU64(uint64_t v) {
  std::string s;
  AppendU64(&s, v);
  return s;
}

uint64_t DecodeU64(const Slice& s) {
  assert(s.size() >= 8);
  uint64_t v = 0;
  for (int i = 0; i < 8; i++) {
    v = (v << 8) | static_cast<unsigned char>(s[i]);
  }
  return v;
}

std::string EncodeI64(int64_t v) {
  return EncodeU64(static_cast<uint64_t>(v) ^ (uint64_t{1} << 63));
}

int64_t DecodeI64(const Slice& s) {
  return static_cast<int64_t>(DecodeU64(s) ^ (uint64_t{1} << 63));
}

std::string ComposeSecondaryKey(const Slice& secondary_key,
                                const Slice& primary_key) {
  std::string out;
  out.reserve(secondary_key.size() + primary_key.size());
  out.append(secondary_key.data(), secondary_key.size());
  out.append(primary_key.data(), primary_key.size());
  return out;
}

void SplitSecondaryKey(const Slice& composed, size_t sk_width,
                       Slice* secondary_key, Slice* primary_key) {
  assert(composed.size() >= sk_width);
  if (secondary_key != nullptr) {
    *secondary_key = Slice(composed.data(), sk_width);
  }
  if (primary_key != nullptr) {
    *primary_key =
        Slice(composed.data() + sk_width, composed.size() - sk_width);
  }
}

}  // namespace auxlsm
