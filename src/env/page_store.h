// In-memory page-file store backing LSM disk components.
//
// A "file" is an append-only sequence of fixed-size pages, created by a flush
// or merge via an appending writer and immutable afterwards (matching LSM
// disk-component semantics). Page data is reference-counted so readers keep
// pages alive across concurrent file deletion.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace auxlsm {

using PageData = std::shared_ptr<const std::string>;

class PageStore {
 public:
  explicit PageStore(size_t page_size) : page_size_(page_size) {}

  size_t page_size() const { return page_size_; }

  /// Creates a new empty file and returns its id.
  uint32_t CreateFile();

  /// Appends a page (must be exactly page_size bytes) and returns its number.
  Status AppendPage(uint32_t file_id, std::string page, uint32_t* page_no);

  /// Reads one page.
  Status ReadPage(uint32_t file_id, uint32_t page_no, PageData* out) const;

  /// Number of pages in a file, or 0 if absent.
  uint32_t NumPages(uint32_t file_id) const;

  /// Drops a file; in-flight readers holding PageData remain valid.
  Status DeleteFile(uint32_t file_id);

  bool FileExists(uint32_t file_id) const;

  /// Total pages across all live files.
  uint64_t TotalPages() const;

 private:
  const size_t page_size_;
  // Miss fills fault pages in while holding a BufferCache shard mutex, so
  // the store ranks between the shards and the disk model.
  mutable SharedMutex mu_{lockrank::kPageStore, "env.page_store"};
  uint32_t next_file_id_ GUARDED_BY(mu_) = 1;
  std::unordered_map<uint32_t, std::vector<PageData>> files_ GUARDED_BY(mu_);
};

}  // namespace auxlsm
