#include "env/env.h"

#include <algorithm>
#include <thread>

namespace auxlsm {

namespace {
size_t ResolveCacheShards(const EnvOptions& o) {
  if (o.cache_shards != 0) return o.cache_shards;
  return std::max(1u, std::thread::hardware_concurrency());
}
}  // namespace

Env::Env(EnvOptions options)
    : options_(options),
      store_(options.page_size),
      io_(options.ResolvedDevice()),
      cache_(&store_, &io_, options.cache_pages, ResolveCacheShards(options)) {
  if (options_.fault_injector != nullptr) {
    io_.set_fault_injector(options_.fault_injector);
    cache_.set_fault_injector(options_.fault_injector);
  }
  if (options_.metrics != nullptr) {
    io_.set_metrics(options_.metrics, "io.storage");
  }
}

Status Env::DeleteFile(uint32_t file_id) {
  if (options_.fault_injector != nullptr) {
    AUXLSM_RETURN_NOT_OK(
        options_.fault_injector->Hit(failpoints::kEnvDeleteFile, &io_));
  }
  cache_.Evict(file_id);
  io_.ForgetFile(file_id);
  return store_.DeleteFile(file_id);
}

}  // namespace auxlsm
