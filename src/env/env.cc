#include "env/env.h"

namespace auxlsm {

Env::Env(EnvOptions options)
    : options_(options),
      store_(options.page_size),
      disk_(options.disk_profile),
      cache_(&store_, &disk_, options.cache_pages) {}

Status Env::DeleteFile(uint32_t file_id) {
  cache_.Evict(file_id);
  disk_.ForgetFile(file_id);
  return store_.DeleteFile(file_id);
}

}  // namespace auxlsm
