// LRU buffer cache over (file, page) with optional read-ahead.
//
// The cache is read-through: a miss faults the page in from the PageStore and
// charges the DiskModel; read-ahead faults in the following pages of the same
// file at sequential-transfer cost, modelling OS/disk read-ahead the paper
// relies on for scans (4MB read-ahead in §6.1).
#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <unordered_map>

#include "common/status.h"
#include "env/disk_model.h"
#include "env/page_store.h"

namespace auxlsm {

class BufferCache {
 public:
  /// capacity_pages == 0 disables caching entirely.
  BufferCache(PageStore* store, DiskModel* disk, size_t capacity_pages);

  /// Reads a page through the cache. readahead_pages > 0 additionally faults
  /// in up to that many following pages of the same file on a miss.
  Status Read(uint32_t file_id, uint32_t page_no, PageData* out,
              uint32_t readahead_pages = 0);

  /// Drops all cached pages of a file (called when a component is deleted).
  void Evict(uint32_t file_id);

  /// Drops everything (used by benchmarks to model a cold cache).
  void Clear();

  size_t size() const;
  size_t capacity() const { return capacity_; }
  void set_capacity(size_t capacity_pages);

 private:
  struct Key {
    uint32_t file_id;
    uint32_t page_no;
    bool operator==(const Key& o) const {
      return file_id == o.file_id && page_no == o.page_no;
    }
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      return (uint64_t{k.file_id} << 32 | k.page_no) * 0x9e3779b97f4a7c15ULL;
    }
  };
  struct Entry {
    Key key;
    PageData data;
  };
  using LruList = std::list<Entry>;

  // Inserts into the cache (caller holds mu_). Returns the cached data.
  void InsertLocked(const Key& k, PageData data);
  bool LookupLocked(const Key& k, PageData* out);

  PageStore* const store_;
  DiskModel* const disk_;
  size_t capacity_;

  mutable std::mutex mu_;
  LruList lru_;  // front = most recent
  std::unordered_map<Key, LruList::iterator, KeyHash> map_;
};

}  // namespace auxlsm
