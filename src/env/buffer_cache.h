// Lock-striped LRU buffer cache over (file, page) with optional read-ahead.
//
// The cache is read-through: a miss faults the page in from the PageStore and
// charges the IoEngine (on the faulting thread's device queue); read-ahead
// faults in the following pages of the same file at sequential-transfer cost,
// modelling OS/disk read-ahead the paper relies on for scans (4MB read-ahead
// in §6.1).
//
// Concurrency: the cache is split into `shards` independent stripes, each
// with its own mutex, LRU list, and page index, selected by a hash of
// (file_id, page_no). Parallel maintenance (concurrent flushes/merges) and
// lookups therefore contend per-stripe instead of on one global mutex.
// shards == 1 reproduces the single-LRU behavior exactly (one global
// eviction order), which keeps the simulated I/O costs of serial runs
// bit-for-bit comparable with the original implementation.
//
// Each shard additionally keeps a per-file index of its resident pages, so
// Evict(file_id) — called when a retired component's file is deleted — costs
// O(resident pages of that file), not O(cache size).
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "env/page_store.h"
#include "io/io_engine.h"

namespace auxlsm {

class FaultInjector;

/// Aggregated cache counters (summed over shards).
struct BufferCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
};

class BufferCache {
 public:
  /// capacity_pages == 0 disables caching entirely. `shards` stripes the
  /// cache; the capacity is divided evenly across shards.
  BufferCache(PageStore* store, IoEngine* io, size_t capacity_pages,
              size_t shards = 1);

  /// Reads a page through the cache. readahead_pages > 0 additionally faults
  /// in up to that many following pages of the same file on a miss.
  Status Read(uint32_t file_id, uint32_t page_no, PageData* out,
              uint32_t readahead_pages = 0);

  /// Drops all cached pages of a file (called when a component is deleted).
  void Evict(uint32_t file_id);

  /// Drops everything (used by benchmarks to model a cold cache).
  void Clear();

  size_t size() const;
  size_t capacity() const {
    return capacity_.load(std::memory_order_relaxed);
  }
  size_t shards() const { return shards_.size(); }
  void set_capacity(size_t capacity_pages);

  BufferCacheStats stats() const;

  /// Failpoint hook for miss fills (fault/fault_injector.h); the Env wires
  /// this when EnvOptions::fault_injector is set. Null = no-op branch.
  void set_fault_injector(FaultInjector* fault) { fault_ = fault; }

 private:
  struct Key {
    uint32_t file_id;
    uint32_t page_no;
  };
  struct Entry {
    Key key;
    PageData data;
  };
  using LruList = std::list<Entry>;
  /// page_no -> LRU position, per file: lookup is two hash probes, and
  /// deleting a file touches only its own resident pages.
  using FilePages = std::unordered_map<uint32_t, LruList::iterator>;

  struct Shard {
    // Held across miss faults into the PageStore and DiskModel charges,
    // hence ranked above both (kCacheShard < kPageStore < kDiskModel).
    mutable Mutex mu{lockrank::kCacheShard, "env.cache_shard"};
    size_t capacity GUARDED_BY(mu) = 0;
    size_t size GUARDED_BY(mu) = 0;
    LruList lru GUARDED_BY(mu);  // front = most recent
    std::unordered_map<uint32_t, FilePages> files GUARDED_BY(mu);
    uint64_t hits GUARDED_BY(mu) = 0;
    uint64_t misses GUARDED_BY(mu) = 0;
    uint64_t evictions GUARDED_BY(mu) = 0;
  };

  Shard& ShardOf(uint32_t file_id, uint32_t page_no);
  // The following helpers run with the shard's mutex held.
  bool LookupLocked(Shard& s, const Key& k, PageData* out) REQUIRES(s.mu);
  void InsertLocked(Shard& s, const Key& k, PageData data) REQUIRES(s.mu);
  void EvictOverflowLocked(Shard& s) REQUIRES(s.mu);

  PageStore* const store_;
  IoEngine* const io_;
  FaultInjector* fault_ = nullptr;
  std::atomic<size_t> capacity_;

  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace auxlsm
