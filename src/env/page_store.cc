#include "env/page_store.h"

namespace auxlsm {

uint32_t PageStore::CreateFile() {
  SharedMutexWriteLock l(mu_);
  uint32_t id = next_file_id_++;
  files_.emplace(id, std::vector<PageData>());
  return id;
}

Status PageStore::AppendPage(uint32_t file_id, std::string page,
                             uint32_t* page_no) {
  if (page.size() != page_size_) {
    return Status::InvalidArgument("page size mismatch");
  }
  SharedMutexWriteLock l(mu_);
  auto it = files_.find(file_id);
  if (it == files_.end()) return Status::NotFound("no such file");
  it->second.push_back(std::make_shared<const std::string>(std::move(page)));
  if (page_no != nullptr) {
    *page_no = static_cast<uint32_t>(it->second.size() - 1);
  }
  return Status::OK();
}

Status PageStore::ReadPage(uint32_t file_id, uint32_t page_no,
                           PageData* out) const {
  SharedMutexReadLock l(mu_);
  auto it = files_.find(file_id);
  if (it == files_.end()) return Status::NotFound("no such file");
  if (page_no >= it->second.size()) {
    return Status::InvalidArgument("page out of range");
  }
  *out = it->second[page_no];
  return Status::OK();
}

uint32_t PageStore::NumPages(uint32_t file_id) const {
  SharedMutexReadLock l(mu_);
  auto it = files_.find(file_id);
  return it == files_.end() ? 0 : static_cast<uint32_t>(it->second.size());
}

Status PageStore::DeleteFile(uint32_t file_id) {
  SharedMutexWriteLock l(mu_);
  if (files_.erase(file_id) == 0) return Status::NotFound("no such file");
  return Status::OK();
}

bool PageStore::FileExists(uint32_t file_id) const {
  SharedMutexReadLock l(mu_);
  return files_.count(file_id) > 0;
}

uint64_t PageStore::TotalPages() const {
  SharedMutexReadLock l(mu_);
  uint64_t total = 0;
  for (const auto& [id, pages] : files_) total += pages.size();
  return total;
}

}  // namespace auxlsm
