// Simulated disk cost model.
//
// The paper's experiments ran on 7200rpm SATA disks and on an SSD; the
// phenomena it measures (batched lookups avoiding random I/O, the small
// primary-key index staying cached, read-ahead scans) are all functions of
// *which pages are touched in which order*. We therefore keep page data in
// memory and charge a simulated cost per page access: a random read pays a
// seek plus a transfer, a sequential read (the next page of the same file
// relative to the previous read of that file) pays only a transfer. This is
// the substitution documented in DESIGN.md.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <unordered_map>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace auxlsm {

/// Cost parameters, in microseconds.
struct DiskProfile {
  double seek_us = 0;               ///< extra cost of a non-sequential read
  double read_transfer_us = 0;      ///< per-page transfer cost (read)
  double write_transfer_us = 0;     ///< per-page transfer cost (write)
  std::string name;

  /// 7200rpm SATA HDD, 4KiB pages: ~8ms seek+rotation, ~160MB/s streaming.
  static DiskProfile Hdd();
  /// SATA SSD, 4KiB pages: ~60us random read, ~500MB/s streaming.
  static DiskProfile Ssd();
  /// Zero-cost profile (pure CPU measurements).
  static DiskProfile Null();
};

/// Aggregate I/O accounting. All counters are cumulative; callers snapshot
/// before/after an operation and subtract.
struct IoStats {
  uint64_t pages_read = 0;
  uint64_t random_reads = 0;
  uint64_t sequential_reads = 0;
  uint64_t pages_written = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  /// Total device work: the sum of every queue's busy time.
  double simulated_us = 0;
  /// Completed simulated time: the max over device queues' virtual clocks
  /// (io/io_engine.h). Work charged to different queues overlaps in modeled
  /// time, so this is what a multi-queue device actually takes end-to-end.
  /// On a single-queue device (and on a bare DiskModel) it equals
  /// simulated_us.
  double critical_path_us = 0;

  /// Field-wise difference of two cumulative snapshots. Caveat: the
  /// critical_path_us difference is a clock delta of the leading queue, not
  /// the interval's own critical path — work landing on a non-leading queue
  /// does not advance it. Interval measurements on multi-queue engines
  /// should diff IoEngine::QueueClocks() per queue and take the max delta
  /// (as bench::Stopwatch does).
  IoStats operator-(const IoStats& b) const {
    IoStats r;
    r.pages_read = pages_read - b.pages_read;
    r.random_reads = random_reads - b.random_reads;
    r.sequential_reads = sequential_reads - b.sequential_reads;
    r.pages_written = pages_written - b.pages_written;
    r.cache_hits = cache_hits - b.cache_hits;
    r.cache_misses = cache_misses - b.cache_misses;
    r.simulated_us = simulated_us - b.simulated_us;
    r.critical_path_us = critical_path_us - b.critical_path_us;
    return r;
  }
};

/// Tracks a single disk-head position to classify sequential vs. random
/// reads and accumulates simulated time. Thread-safe.
class DiskModel {
 public:
  explicit DiskModel(DiskProfile profile) : profile_(std::move(profile)) {}

  /// Charges one page read of (file_id, page_no); priced against the head
  /// position left by the previous read (same page / next page = transfer
  /// only; short forward skip in the same file = rotation over the gap,
  /// capped by a seek; otherwise a full seek). Returns the head's virtual
  /// clock (cumulative simulated_us) after the charge.
  double ChargeRead(uint32_t file_id, uint32_t page_no);

  /// Charges n sequentially written pages; returns the post-charge clock.
  double ChargeWrite(uint64_t n_pages);

  /// Advances the head's virtual clock by a flat `us` without touching the
  /// head position or page counters (injected device stalls); returns the
  /// post-charge clock.
  double ChargeDelay(double us);

  void OnCacheHit();
  void OnCacheMiss();

  /// Forgets read heads (e.g. when a file is deleted).
  void ForgetFile(uint32_t file_id);

  /// True if the head currently rests on a file; *file_id receives it.
  /// Retired-component sweeps assert no head is left on a deleted file.
  bool HeadFile(uint32_t* file_id) const;

  IoStats stats() const;
  const DiskProfile& profile() const { return profile_; }

 private:
  DiskProfile profile_;
  // Deepest rank: every modeled-I/O charge bottoms out here while callers
  // hold WAL/cache/store locks; the model itself never locks anything.
  mutable Mutex mu_{lockrank::kDiskModel, "env.disk"};
  bool has_head_ GUARDED_BY(mu_) = false;
  uint32_t head_file_ GUARDED_BY(mu_) = 0;
  uint32_t head_page_ GUARDED_BY(mu_) = 0;
  IoStats stats_ GUARDED_BY(mu_);
};

}  // namespace auxlsm
