#include "env/buffer_cache.h"

#include <algorithm>

#include "fault/fault_injector.h"

namespace auxlsm {

namespace {

inline uint64_t PageHash(uint32_t file_id, uint32_t page_no) {
  return (uint64_t{file_id} << 32 | page_no) * 0x9e3779b97f4a7c15ULL;
}

}  // namespace

BufferCache::BufferCache(PageStore* store, IoEngine* io,
                         size_t capacity_pages, size_t shards)
    : store_(store), io_(io), capacity_(capacity_pages) {
  shards = std::max<size_t>(1, shards);
  // More shards than pages would leave zero-capacity stripes whose pages
  // could never be cached; clamp so every shard holds at least one page.
  if (capacity_pages > 0) shards = std::min(shards, capacity_pages);
  shards_.reserve(shards);
  for (size_t i = 0; i < shards; i++) {
    shards_.push_back(std::make_unique<Shard>());
  }
  set_capacity(capacity_pages);
}

BufferCache::Shard& BufferCache::ShardOf(uint32_t file_id, uint32_t page_no) {
  if (shards_.size() == 1) return *shards_[0];
  // Top bits of the multiplicative hash spread consecutive pages of one file
  // across shards.
  return *shards_[(PageHash(file_id, page_no) >> 32) % shards_.size()];
}

bool BufferCache::LookupLocked(Shard& s, const Key& k, PageData* out) {
  auto fit = s.files.find(k.file_id);
  if (fit == s.files.end()) return false;
  auto pit = fit->second.find(k.page_no);
  if (pit == fit->second.end()) return false;
  s.lru.splice(s.lru.begin(), s.lru, pit->second);
  *out = pit->second->data;
  return true;
}

void BufferCache::EvictOverflowLocked(Shard& s) {
  while (s.size > s.capacity && !s.lru.empty()) {
    const Key& victim = s.lru.back().key;
    auto fit = s.files.find(victim.file_id);
    if (fit != s.files.end()) {
      fit->second.erase(victim.page_no);
      if (fit->second.empty()) s.files.erase(fit);
    }
    s.lru.pop_back();
    s.size--;
    s.evictions++;
  }
}

void BufferCache::InsertLocked(Shard& s, const Key& k, PageData data) {
  auto fit = s.files.find(k.file_id);
  if (fit != s.files.end()) {
    auto pit = fit->second.find(k.page_no);
    if (pit != fit->second.end()) {
      pit->second->data = std::move(data);
      s.lru.splice(s.lru.begin(), s.lru, pit->second);
      return;
    }
  }
  s.lru.push_front(Entry{k, std::move(data)});
  s.files[k.file_id][k.page_no] = s.lru.begin();
  s.size++;
  EvictOverflowLocked(s);
}

Status BufferCache::Read(uint32_t file_id, uint32_t page_no, PageData* out,
                         uint32_t readahead_pages) {
  const Key k{file_id, page_no};
  const size_t cap = capacity_.load(std::memory_order_relaxed);
  if (cap == 0) {
    if (fault_ != nullptr) {
      AUXLSM_RETURN_NOT_OK(fault_->Hit(failpoints::kCacheMissFill, io_));
    }
    io_->OnCacheMiss();
    AUXLSM_RETURN_NOT_OK(store_->ReadPage(file_id, page_no, out));
    io_->ChargeRead(file_id, page_no);
    return Status::OK();
  }
  {
    // The shard lock is held across the miss fault, so two threads missing
    // the same page serialize and only one charges the IoEngine (a page
    // always hashes to one shard). PageStore and IoEngine never take cache
    // locks, so no cycle.
    Shard& s = ShardOf(file_id, page_no);
    MutexLock l(s.mu);
    if (LookupLocked(s, k, out)) {
      s.hits++;
      io_->OnCacheHit();
      return Status::OK();
    }
    if (fault_ != nullptr) {
      AUXLSM_RETURN_NOT_OK(fault_->Hit(failpoints::kCacheMissFill, io_));
    }
    s.misses++;
    io_->OnCacheMiss();
    AUXLSM_RETURN_NOT_OK(store_->ReadPage(file_id, page_no, out));
    io_->ChargeRead(file_id, page_no);
    InsertLocked(s, k, *out);
  }
  // Read-ahead: fault in following pages at sequential cost.
  const uint32_t n_pages = store_->NumPages(file_id);
  for (uint32_t i = 1; i <= readahead_pages && page_no + i < n_pages; i++) {
    const Key rk{file_id, page_no + i};
    Shard& s = ShardOf(rk.file_id, rk.page_no);
    PageData tmp;
    MutexLock l(s.mu);
    if (LookupLocked(s, rk, &tmp)) continue;
    if (!store_->ReadPage(rk.file_id, rk.page_no, &tmp).ok()) break;
    io_->ChargeRead(rk.file_id, rk.page_no);
    InsertLocked(s, rk, std::move(tmp));
  }
  return Status::OK();
}

void BufferCache::Evict(uint32_t file_id) {
  for (auto& sp : shards_) {
    Shard& s = *sp;
    MutexLock l(s.mu);
    auto fit = s.files.find(file_id);
    if (fit == s.files.end()) continue;
    for (auto& [page_no, it] : fit->second) {
      s.lru.erase(it);
      s.size--;
    }
    s.files.erase(fit);
  }
}

void BufferCache::Clear() {
  for (auto& sp : shards_) {
    Shard& s = *sp;
    MutexLock l(s.mu);
    s.lru.clear();
    s.files.clear();
    s.size = 0;
  }
}

size_t BufferCache::size() const {
  size_t total = 0;
  for (const auto& sp : shards_) {
    MutexLock l(sp->mu);
    total += sp->size;
  }
  return total;
}

void BufferCache::set_capacity(size_t capacity_pages) {
  capacity_.store(capacity_pages, std::memory_order_relaxed);
  const size_t n = shards_.size();
  for (size_t i = 0; i < n; i++) {
    Shard& s = *shards_[i];
    MutexLock l(s.mu);
    // First (capacity % n) shards take the remainder page each. Shrinking a
    // sharded cache below its shard count floors every shard at one page —
    // a zero-capacity stripe could never cache its pages — so the effective
    // capacity is max(capacity, shards) in that degenerate case.
    s.capacity = capacity_pages / n + (i < capacity_pages % n ? 1 : 0);
    if (capacity_pages > 0 && s.capacity == 0) s.capacity = 1;
    EvictOverflowLocked(s);
  }
}

BufferCacheStats BufferCache::stats() const {
  BufferCacheStats total;
  for (const auto& sp : shards_) {
    MutexLock l(sp->mu);
    total.hits += sp->hits;
    total.misses += sp->misses;
    total.evictions += sp->evictions;
  }
  return total;
}

}  // namespace auxlsm
