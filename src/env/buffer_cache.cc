#include "env/buffer_cache.h"

namespace auxlsm {

BufferCache::BufferCache(PageStore* store, DiskModel* disk,
                         size_t capacity_pages)
    : store_(store), disk_(disk), capacity_(capacity_pages) {}

bool BufferCache::LookupLocked(const Key& k, PageData* out) {
  auto it = map_.find(k);
  if (it == map_.end()) return false;
  lru_.splice(lru_.begin(), lru_, it->second);
  *out = it->second->data;
  return true;
}

void BufferCache::InsertLocked(const Key& k, PageData data) {
  auto it = map_.find(k);
  if (it != map_.end()) {
    it->second->data = std::move(data);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(Entry{k, std::move(data)});
  map_[k] = lru_.begin();
  while (map_.size() > capacity_) {
    map_.erase(lru_.back().key);
    lru_.pop_back();
  }
}

Status BufferCache::Read(uint32_t file_id, uint32_t page_no, PageData* out,
                         uint32_t readahead_pages) {
  const Key k{file_id, page_no};
  if (capacity_ > 0) {
    std::lock_guard<std::mutex> l(mu_);
    if (LookupLocked(k, out)) {
      disk_->OnCacheHit();
      return Status::OK();
    }
  }
  disk_->OnCacheMiss();
  AUXLSM_RETURN_NOT_OK(store_->ReadPage(file_id, page_no, out));
  disk_->ChargeRead(file_id, page_no);
  if (capacity_ > 0) {
    std::lock_guard<std::mutex> l(mu_);
    InsertLocked(k, *out);
    // Read-ahead: fault in following pages at sequential cost.
    const uint32_t n_pages = store_->NumPages(file_id);
    for (uint32_t i = 1; i <= readahead_pages && page_no + i < n_pages; i++) {
      const Key rk{file_id, page_no + i};
      PageData tmp;
      if (LookupLocked(rk, &tmp)) continue;
      if (!store_->ReadPage(file_id, page_no + i, &tmp).ok()) break;
      disk_->ChargeRead(file_id, page_no + i);
      InsertLocked(rk, std::move(tmp));
    }
  }
  return Status::OK();
}

void BufferCache::Evict(uint32_t file_id) {
  std::lock_guard<std::mutex> l(mu_);
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (it->key.file_id == file_id) {
      map_.erase(it->key);
      it = lru_.erase(it);
    } else {
      ++it;
    }
  }
}

void BufferCache::Clear() {
  std::lock_guard<std::mutex> l(mu_);
  lru_.clear();
  map_.clear();
}

size_t BufferCache::size() const {
  std::lock_guard<std::mutex> l(mu_);
  return map_.size();
}

void BufferCache::set_capacity(size_t capacity_pages) {
  std::lock_guard<std::mutex> l(mu_);
  capacity_ = capacity_pages;
  while (map_.size() > capacity_) {
    map_.erase(lru_.back().key);
    lru_.pop_back();
  }
}

}  // namespace auxlsm
