// Env bundles the simulated storage stack: page store, disk model, buffer
// cache. Every index component does its I/O through an Env.
#pragma once

#include <memory>

#include "env/buffer_cache.h"
#include "env/disk_model.h"
#include "env/page_store.h"

namespace auxlsm {

struct EnvOptions {
  size_t page_size = 4096;
  size_t cache_pages = 4096;         ///< 16 MiB with 4 KiB pages
  /// Lock stripes of the buffer cache. 0 = one per hardware thread (capped
  /// by the cache size), so a parallel maintenance engine doesn't serialize
  /// page faults behind one mutex. 1 = the single global LRU, bit-for-bit
  /// the legacy behavior — deterministic-I/O benches and tests pin this.
  size_t cache_shards = 0;
  uint32_t scan_readahead_pages = 32;///< read-ahead used by range scans
  DiskProfile disk_profile = DiskProfile::Hdd();
};

class Env {
 public:
  explicit Env(EnvOptions options = EnvOptions());

  PageStore* store() { return &store_; }
  DiskModel* disk() { return &disk_; }
  BufferCache* cache() { return &cache_; }

  size_t page_size() const { return store_.page_size(); }
  uint32_t scan_readahead_pages() const { return options_.scan_readahead_pages; }

  IoStats stats() const { return disk_.stats(); }

  /// Creates a new append-only page file.
  uint32_t CreateFile() { return store_.CreateFile(); }

  /// Appends a page, charging a sequential write.
  Status AppendPage(uint32_t file_id, std::string page, uint32_t* page_no) {
    AUXLSM_RETURN_NOT_OK(store_.AppendPage(file_id, std::move(page), page_no));
    disk_.ChargeWrite(1);
    return Status::OK();
  }

  /// Reads a page through the cache.
  Status ReadPage(uint32_t file_id, uint32_t page_no, PageData* out,
                  uint32_t readahead_pages = 0) {
    return cache_.Read(file_id, page_no, out, readahead_pages);
  }

  /// Deletes a file and evicts its cached pages.
  Status DeleteFile(uint32_t file_id);

  const EnvOptions& options() const { return options_; }

 private:
  EnvOptions options_;
  PageStore store_;
  DiskModel disk_;
  BufferCache cache_;
};

}  // namespace auxlsm
