// Env bundles the simulated storage stack: page store, multi-queue I/O
// engine, buffer cache. Every index component does its I/O through an Env;
// the engine prices each page access on one device queue's virtual clock
// (io/io_engine.h), so concurrent maintenance bound to different queues
// overlaps in simulated time on multi-queue device profiles.
#pragma once

#include <memory>
#include <optional>

#include "env/buffer_cache.h"
#include "env/disk_model.h"
#include "env/page_store.h"
#include "fault/fault_injector.h"
#include "io/io_engine.h"

namespace auxlsm {

struct EnvOptions {
  size_t page_size = 4096;
  size_t cache_pages = 4096;         ///< 16 MiB with 4 KiB pages
  /// Lock stripes of the buffer cache. 0 = one per hardware thread (capped
  /// by the cache size), so a parallel maintenance engine doesn't serialize
  /// page faults behind one mutex. 1 = the single global LRU, bit-for-bit
  /// the legacy behavior — deterministic-I/O benches and tests pin this.
  size_t cache_shards = 0;
  uint32_t scan_readahead_pages = 32;///< read-ahead used by range scans
  /// Legacy single-head cost parameters; the device defaults to one queue of
  /// this profile, which reproduces the old DiskModel charging bit-for-bit.
  DiskProfile disk_profile = DiskProfile::Hdd();
  /// Number of independent device queues for disk_profile (1 = legacy).
  uint32_t io_queues = 1;
  /// Full device profile; when set it wins over disk_profile/io_queues
  /// (e.g. DeviceProfile::Nvme(4) for the multi-queue benches).
  std::optional<DeviceProfile> device_profile;

  /// Failpoint registry (fault/fault_injector.h) threaded through the
  /// storage seams: page append/read, file delete, cache miss fills, and
  /// the I/O engine's submissions. Null (default) disables injection — a
  /// single branch per seam, no behavior or modeled-time change. The
  /// injector must outlive the Env.
  FaultInjector* fault_injector = nullptr;

  /// Metrics registry (obs/metrics.h) attached to the storage I/O engine
  /// under the "io.storage" metric prefix. Null (default) disables metric
  /// recording with the same armed-but-quiet contract as the fault
  /// injector: attaching a registry never changes modeled time or DIGEST
  /// output. The registry must outlive the Env.
  obs::MetricsRegistry* metrics = nullptr;

  /// The device the engine is built from.
  DeviceProfile ResolvedDevice() const {
    return device_profile.has_value()
               ? *device_profile
               : DeviceProfile::FromDisk(disk_profile, io_queues);
  }
};

class Env {
 public:
  explicit Env(EnvOptions options = EnvOptions());

  PageStore* store() { return &store_; }
  IoEngine* io() { return &io_; }
  BufferCache* cache() { return &cache_; }

  size_t page_size() const { return store_.page_size(); }
  uint32_t scan_readahead_pages() const { return options_.scan_readahead_pages; }

  IoStats stats() const { return io_.stats(); }

  /// Creates a new append-only page file.
  uint32_t CreateFile() { return store_.CreateFile(); }

  /// Appends a page, charging a sequential write to the calling thread's
  /// device queue.
  Status AppendPage(uint32_t file_id, std::string page, uint32_t* page_no) {
    if (options_.fault_injector != nullptr) {
      AUXLSM_RETURN_NOT_OK(
          options_.fault_injector->Hit(failpoints::kEnvAppendPage, &io_));
    }
    AUXLSM_RETURN_NOT_OK(store_.AppendPage(file_id, std::move(page), page_no));
    io_.ChargeWrite(1);
    return Status::OK();
  }

  /// Reads a page through the cache.
  Status ReadPage(uint32_t file_id, uint32_t page_no, PageData* out,
                  uint32_t readahead_pages = 0) {
    if (options_.fault_injector != nullptr) {
      AUXLSM_RETURN_NOT_OK(
          options_.fault_injector->Hit(failpoints::kEnvReadPage, &io_));
    }
    return cache_.Read(file_id, page_no, out, readahead_pages);
  }

  /// Deletes a file, evicts its cached pages, and sweeps every device
  /// queue's head position off it.
  Status DeleteFile(uint32_t file_id);

  const EnvOptions& options() const { return options_; }

 private:
  EnvOptions options_;
  PageStore store_;
  IoEngine io_;
  BufferCache cache_;
};

}  // namespace auxlsm
