#include "env/disk_model.h"

#include <algorithm>

namespace auxlsm {

DiskProfile DiskProfile::Hdd() {
  DiskProfile p;
  p.seek_us = 8000;          // seek + rotational latency
  p.read_transfer_us = 25;   // 4KiB @ ~160MB/s
  p.write_transfer_us = 25;
  p.name = "hdd";
  return p;
}

DiskProfile DiskProfile::Ssd() {
  DiskProfile p;
  p.seek_us = 60;            // random 4KiB read latency
  p.read_transfer_us = 8;    // 4KiB @ ~500MB/s
  p.write_transfer_us = 10;
  p.name = "ssd";
  return p;
}

DiskProfile DiskProfile::Null() {
  DiskProfile p;
  p.name = "null";
  return p;
}

double DiskModel::ChargeRead(uint32_t file_id, uint32_t page_no) {
  MutexLock l(mu_);
  stats_.pages_read++;
  // One head: a read is cheap only relative to the immediately previous
  // read. Re-reading or advancing to the adjacent page is sequential; a
  // short forward skip within the same file costs the rotation over the gap
  // (capped by a full seek); anything else — including switching files — is
  // a full seek. This is what makes interleaved multi-component lookups
  // random and batched per-component lookups sequential (§3.2).
  double cost;
  bool sequential;
  if (has_head_ && file_id == head_file_ &&
      (page_no == head_page_ + 1 || page_no == head_page_)) {
    cost = profile_.read_transfer_us;
    sequential = true;
  } else if (has_head_ && file_id == head_file_ && page_no > head_page_) {
    const double skip =
        double(page_no - head_page_) * profile_.read_transfer_us;
    cost = std::min(profile_.seek_us, skip) + profile_.read_transfer_us;
    sequential = skip < profile_.seek_us;
  } else {
    cost = profile_.seek_us + profile_.read_transfer_us;
    sequential = false;
  }
  if (sequential) {
    stats_.sequential_reads++;
  } else {
    stats_.random_reads++;
  }
  stats_.simulated_us += cost;
  has_head_ = true;
  head_file_ = file_id;
  head_page_ = page_no;
  return stats_.simulated_us;
}

double DiskModel::ChargeWrite(uint64_t n_pages) {
  MutexLock l(mu_);
  stats_.pages_written += n_pages;
  stats_.simulated_us += profile_.write_transfer_us * double(n_pages);
  return stats_.simulated_us;
}

double DiskModel::ChargeDelay(double us) {
  MutexLock l(mu_);
  stats_.simulated_us += us;
  return stats_.simulated_us;
}

void DiskModel::OnCacheHit() {
  MutexLock l(mu_);
  stats_.cache_hits++;
}

void DiskModel::OnCacheMiss() {
  MutexLock l(mu_);
  stats_.cache_misses++;
}

void DiskModel::ForgetFile(uint32_t file_id) {
  MutexLock l(mu_);
  if (has_head_ && head_file_ == file_id) has_head_ = false;
}

bool DiskModel::HeadFile(uint32_t* file_id) const {
  MutexLock l(mu_);
  if (has_head_ && file_id != nullptr) *file_id = head_file_;
  return has_head_;
}

IoStats DiskModel::stats() const {
  MutexLock l(mu_);
  IoStats s = stats_;
  // A bare DiskModel is one queue: its busy time is its critical path.
  s.critical_path_us = s.simulated_us;
  return s;
}

}  // namespace auxlsm
