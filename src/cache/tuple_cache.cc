#include "cache/tuple_cache.h"

#include <algorithm>

#include "fault/fault_injector.h"
#include "format/key_codec.h"

namespace auxlsm {

TupleCache::TupleCache(size_t capacity_bytes, uint32_t num_spaces,
                       FaultInjector* fault_injector)
    : capacity_(capacity_bytes),
      fault_injector_(fault_injector),
      spaces_(num_spaces),
      epochs_(num_spaces, 0) {}

uint64_t TupleCache::SpaceEpoch(uint32_t space) const {
  MutexLock l(mu_);
  return space < epochs_.size() ? epochs_[space] : 0;
}

void TupleCache::BeginWrite() {
  MutexLock l(mu_);
  writers_in_flight_++;
}

void TupleCache::EndWrite() {
  MutexLock l(mu_);
  writers_in_flight_--;
}

bool TupleCache::WritersQuiescent(uint32_t space, uint64_t epoch) const {
  MutexLock l(mu_);
  return writers_in_flight_ == 0 && space < epochs_.size() &&
         epochs_[space] == epoch;
}

size_t TupleCache::EntryBytes(const Entry& e) {
  size_t b = 48;  // map node + LRU + gap metadata
  for (const auto& t : e.tuples) b += t.pk.size() + t.value.size() + 48;
  return b;
}

bool TupleCache::InsertFaultFired() {
  return fault_injector_ != nullptr &&
         !fault_injector_->Hit(failpoints::kCacheTupleInsert).ok();
}

bool TupleCache::InvalidateFaultFired() {
  return fault_injector_ != nullptr &&
         !fault_injector_->Hit(failpoints::kCacheTupleInvalidate).ok();
}

void TupleCache::Touch(uint32_t space, SpaceMap::iterator it) {
  lru_.erase(it->second.lru_it);
  lru_.emplace_front(space, it->first);
  it->second.lru_it = lru_.begin();
}

void TupleCache::RegisterEntry(uint32_t space, uint64_t key, const Entry& e) {
  if (space == kPointSpace) return;  // point entries are found by key == pk
  for (const auto& t : e.tuples) {
    auto& v = pk_map_[t.pk];
    const auto loc = std::make_pair(space, key);
    if (std::find(v.begin(), v.end(), loc) == v.end()) v.push_back(loc);
  }
}

void TupleCache::UnregisterEntry(uint32_t space, uint64_t key,
                                 const Entry& e) {
  if (space == kPointSpace) return;
  for (const auto& t : e.tuples) {
    auto it = pk_map_.find(t.pk);
    if (it == pk_map_.end()) continue;
    auto& v = it->second;
    v.erase(std::remove(v.begin(), v.end(), std::make_pair(space, key)),
            v.end());
    if (v.empty()) pk_map_.erase(it);
  }
}

void TupleCache::EraseEntry(uint32_t space, SpaceMap::iterator it) {
  UnregisterEntry(space, it->first, it->second);
  resident_bytes_ -= std::min<uint64_t>(resident_bytes_, it->second.bytes);
  lru_.erase(it->second.lru_it);
  spaces_[space].erase(it);
}

void TupleCache::UpsertEntry(uint32_t space, uint64_t key,
                             std::vector<CachedTuple> tuples, bool present,
                             uint64_t gap_lo, uint64_t gap_hi) {
  auto [it, fresh] = spaces_[space].try_emplace(key);
  Entry& e = it->second;
  if (!fresh) {
    // Both the resident claim and the fresh one were kept true by
    // invalidation, so their union is true.
    gap_lo = std::min(gap_lo, e.gap_lo);
    gap_hi = std::max(gap_hi, e.gap_hi);
    UnregisterEntry(space, key, e);
    resident_bytes_ -= std::min<uint64_t>(resident_bytes_, e.bytes);
    lru_.erase(e.lru_it);
  }
  e.tuples = std::move(tuples);
  e.present = present;
  e.gap_lo = gap_lo;
  e.gap_hi = gap_hi;
  e.bytes = EntryBytes(e);
  resident_bytes_ += e.bytes;
  lru_.emplace_front(space, key);
  e.lru_it = lru_.begin();
  RegisterEntry(space, key, e);
  counters_.inserts++;
}

void TupleCache::CutAt(uint32_t space, uint64_t key) {
  auto& sp = spaces_[space];
  auto it = sp.lower_bound(key);
  if (it != sp.end() && it->first == key) {
    EraseEntry(space, it++);
    counters_.invalidations++;
  }
  // Cut every claim spanning the written key: the gap it proved empty now
  // potentially holds a result. InsertRange keeps claims from containing
  // another entry's key, so only the immediate neighbors can span `key` and
  // each walk takes at most one step — but walking (instead of a single
  // neighbor cut) also repairs any wider overlap defensively rather than
  // leaving a stale claim resident.
  if (key < UINT64_MAX) {
    for (auto rt = it; rt != sp.end() && rt->second.gap_lo <= key; ++rt) {
      rt->second.gap_lo = key + 1;
      counters_.invalidations++;
    }
  }
  if (key > 0) {
    for (auto lt = it; lt != sp.begin();) {
      auto pv = std::prev(lt);
      if (pv->second.gap_hi < key) break;
      pv->second.gap_hi = key - 1;
      counters_.invalidations++;
      lt = pv;
    }
  }
}

void TupleCache::EvictForCapacity() {
  while (resident_bytes_ > capacity_ && !lru_.empty()) {
    const auto [space, key] = lru_.back();
    auto it = spaces_[space].find(key);
    if (it == spaces_[space].end()) {  // should not happen; drop the stray
      lru_.pop_back();
      continue;
    }
    EraseEntry(space, it);
    counters_.evictions++;
  }
}

void TupleCache::ClearLocked() {
  for (auto& sp : spaces_) {
    counters_.invalidations += sp.size();
    sp.clear();
  }
  lru_.clear();
  pk_map_.clear();
  resident_bytes_ = 0;
  for (auto& e : epochs_) e++;
}

void TupleCache::Clear() {
  MutexLock l(mu_);
  ClearLocked();
}

void TupleCache::BumpEpochs() {
  MutexLock l(mu_);
  for (auto& e : epochs_) e++;
}

// --- Point space -------------------------------------------------------------

bool TupleCache::LookupPoint(uint64_t key, bool* found, std::string* value) {
  MutexLock l(mu_);
  auto& sp = spaces_[kPointSpace];
  auto it = sp.find(key);
  if (it == sp.end()) {
    counters_.misses++;
    return false;
  }
  Touch(kPointSpace, it);
  counters_.hits++;
  *found = it->second.present;
  if (it->second.present) {
    counters_.chain_served++;
    if (value != nullptr) *value = it->second.tuples.front().value;
  }
  return true;
}

void TupleCache::InsertPoint(uint64_t key, bool found, const Slice& pk,
                             const Slice& value, uint64_t epoch) {
  MutexLock l(mu_);
  if (epochs_[kPointSpace] != epoch || writers_in_flight_ > 0) {
    counters_.stale_drops++;
    return;
  }
  if (InsertFaultFired()) return;  // degrade to a later plain miss
  std::vector<CachedTuple> tuples;
  if (found) tuples.push_back(CachedTuple{pk.ToString(), value.ToString()});
  UpsertEntry(kPointSpace, key, std::move(tuples), found, key, key);
  EvictForCapacity();
}

// --- Range spaces ------------------------------------------------------------

void TupleCache::LookupRange(uint32_t space, uint64_t lo, uint64_t hi,
                             RangeServe* out) {
  out->tuples.clear();
  out->complete = false;
  out->next = lo;
  MutexLock l(mu_);
  auto& sp = spaces_[space];

  uint64_t need = lo;  // first key of [lo, hi] not yet proven covered
  auto it = sp.lower_bound(lo);
  if (it != sp.begin()) {
    // An entry below lo can prove a prefix (or all) of [lo, hi] empty via
    // its right-side claim.
    auto pv = std::prev(it);
    if (pv->second.gap_hi >= hi) {
      Touch(space, pv);
      counters_.hits++;
      out->complete = true;
      return;
    }
    if (pv->second.gap_hi >= need) need = pv->second.gap_hi + 1;
  }

  bool complete = false;
  while (it != sp.end()) {
    Entry& e = it->second;
    if (e.gap_lo > need) break;  // unproven hole [need, gap_lo): chain ends
    if (it->first > hi) {
      // The entry lies past the range but its left claim [gap_lo, key)
      // covers the tail [need, hi]. Touch it: the serve depends on this
      // entry staying resident just as much as on the served ones.
      Touch(space, it);
      complete = true;
      break;
    }
    Touch(space, it);
    for (const auto& t : e.tuples) out->tuples.push_back(t);
    counters_.chain_served += e.tuples.size();
    if (e.gap_hi >= hi) {
      complete = true;
      break;
    }
    need = e.gap_hi + 1;  // gap_hi >= key, so this also moves past the key
    ++it;
  }
  if (need > hi) complete = true;

  out->complete = complete;
  out->next = need;
  if (complete) {
    counters_.hits++;
  } else {
    counters_.misses++;
  }
}

void TupleCache::InsertRange(uint32_t space, uint64_t lo, uint64_t hi,
                             std::vector<KeyGroup> groups, uint64_t epoch) {
  if (lo > hi) return;  // empty interval proves nothing about any key
  MutexLock l(mu_);
  if (epochs_[space] != epoch || writers_in_flight_ > 0) {
    counters_.stale_drops++;
    return;
  }
  if (InsertFaultFired()) return;  // degrade to a later plain miss
  auto& sp = spaces_[space];

  // The fresh result is authoritative for [lo, hi]: drop resident entries
  // it does not confirm (unreachable when invalidation holds, but cheap).
  {
    auto it = sp.lower_bound(lo);
    size_t gi = 0;
    while (it != sp.end() && it->first <= hi) {
      while (gi < groups.size() && groups[gi].key < it->first) gi++;
      if (gi < groups.size() && groups[gi].key == it->first) {
        ++it;
      } else {
        EraseEntry(space, it++);
      }
    }
  }
  // Clamp external neighbor claims so no resident claim contains a key this
  // insert creates (the empty-groups case creates the anchor at lo). This
  // maintains the global invariant that no entry's claim contains another
  // entry's key — which is what makes CutAt's neighbor cuts exhaustive: a
  // claim spanning a written key from two entries away would survive the
  // cut and keep falsely proving the written position empty.
  const uint64_t first_key = groups.empty() ? lo : groups.front().key;
  const uint64_t last_key = groups.empty() ? lo : groups.back().key;
  {
    auto at = sp.lower_bound(lo);
    if (at != sp.begin() && first_key > 0) {
      auto pv = std::prev(at);
      if (pv->second.gap_hi >= first_key) {
        pv->second.gap_hi = first_key - 1;
      }
    }
    auto above = sp.upper_bound(hi);
    if (above != sp.end() && last_key < UINT64_MAX &&
        above->second.gap_lo <= last_key) {
      above->second.gap_lo = last_key + 1;
    }
  }

  if (groups.empty()) {
    // Proven emptiness needs an anchor: a tuple-less boundary entry at lo
    // claiming the whole interval.
    UpsertEntry(space, lo, {}, false, lo, hi);
  } else {
    for (size_t i = 0; i < groups.size(); i++) {
      const uint64_t glo = i == 0 ? lo : groups[i - 1].key + 1;
      const uint64_t ghi =
          i + 1 == groups.size() ? hi : groups[i + 1].key - 1;
      UpsertEntry(space, groups[i].key, std::move(groups[i].tuples), true,
                  glo, ghi);
    }
  }
  EvictForCapacity();
}

// --- Invalidation ------------------------------------------------------------

void TupleCache::InvalidateKey(uint32_t space, uint64_t key) {
  MutexLock l(mu_);
  epochs_[space]++;
  if (InvalidateFaultFired()) {
    ClearLocked();  // a failed precise cut degrades to misses, never stale
    return;
  }
  CutAt(space, key);
}

void TupleCache::InvalidatePk(const Slice& pk) {
  MutexLock l(mu_);
  // The written record's *old* secondary keys are unknown to the writer, so
  // every range space's in-flight inserts must be fenced.
  for (auto& e : epochs_) e++;
  if (InvalidateFaultFired()) {
    ClearLocked();
    return;
  }
  if (pk.size() != sizeof(uint64_t)) {
    ClearLocked();  // unknown pk encoding: be safe, drop everything
    return;
  }
  const uint64_t id = DecodeU64(pk);
  auto& points = spaces_[kPointSpace];
  auto pit = points.find(id);
  if (pit != points.end()) {
    EraseEntry(kPointSpace, pit);
    counters_.invalidations++;
  }
  auto rit = pk_map_.find(pk.ToString());
  if (rit != pk_map_.end()) {
    // EraseEntry edits pk_map_; walk a copy.
    const auto locations = rit->second;
    for (const auto& [space, key] : locations) {
      auto it = spaces_[space].find(key);
      if (it == spaces_[space].end()) continue;
      EraseEntry(space, it);
      counters_.invalidations++;
    }
  }
}

TupleCacheStats TupleCache::stats() const {
  MutexLock l(mu_);
  TupleCacheStats s = counters_;
  s.resident_bytes = resident_bytes_;
  return s;
}

}  // namespace auxlsm
