// Interval tuple cache: validated result tuples served above the LSM (PR 7).
//
// The page-level BufferCache removes repeat *modeled I/O*, but a hot read
// still pays the full tree descent — memtable search, per-component probes,
// candidate validation — every time. The TupleCache sits above the LSM and
// stores the *final, validated* result tuples of point lookups, secondary
// range queries, and user-range scans, so a repeat (or overlapping) read is
// served with no descent, no validation, and no modeled I/O at all. The
// design follows tarantool's vy_cache: entries are keyed by their position
// in an interval space and carry **chain links** — proven-empty gap
// metadata — so a later query can walk adjacent entries and distinguish
// "this gap provably holds no results" from "this gap is merely uncached".
//
// Spaces. Entries live in per-dataset *spaces*, each an ordered map over a
// uint64 key domain:
//   - space 0 (kPointSpace): primary point lookups, key = primary id. An
//     entry holds the record, or is a *proven-absent* marker (a NotFound
//     outcome is itself cacheable knowledge).
//   - space 1 + i: secondary index i (8-byte keys only), key = the decoded
//     secondary key. An entry holds every validated record whose secondary
//     key equals the entry key (pk-ascending). User-range scans of the
//     primary index share the "user_id" index's space — both produce the
//     same validated result set in primary-key order.
//
// Chain links. Each entry additionally claims a proven-empty interval
// around its key: no result keys exist in [gap_lo, key) or (key, gap_hi].
// A completed range query [lo, hi] that produced keys k1 < ... < kn links
// the run — k1.gap_lo = lo, ki.gap_lo = k(i-1)+1, ki.gap_hi = k(i+1)-1,
// kn.gap_hi = hi — and an *empty* result is recorded as a tuple-less
// boundary entry at lo claiming [lo, hi]. A later LookupRange walks the
// chain from lo: as long as each step's gap claim abuts the previous
// coverage, its tuples are served; the first unproven hole ends the served
// prefix and the caller falls through to the real executors for the
// remainder. Claims are only ever cut (never widened) by invalidation, so
// every claim stays true independently of its neighbors — eviction of one
// entry breaks the chain but falsifies nothing. Insertion additionally
// maintains the invariant that no entry's claim contains another entry's
// *key* (adjacent claims may still share the open gap between their keys):
// InsertRange clamps the external neighbors of the keys it creates,
// including the tuple-less anchor of an empty result. The invariant is what
// makes precise invalidation exhaustive — a written key can only be spanned
// by the claims of its immediate neighbors, which CutAt cuts.
//
// Invalidation (precise, write-path):
//   - InvalidateKey(space, k): the result set at key k changed (a new
//     record's secondary key, an insert's id). Drops the entry at k and
//     cuts neighbor claims spanning k.
//   - InvalidatePk(pk): a write to primary key pk. Drops the point entry
//     and — via an exact pk -> (space, key) reverse map maintained per
//     cached tuple — every range entry holding a tuple for pk. This is what
//     makes lazy-strategy upserts/deletes safe: the *old* secondary key of
//     the written record is unknown to the writer, but any cached tuple for
//     the pk is registered and found.
//   - Mutable-bitmap supersession (direct bitmap Set on disk components,
//     install-time fixups, recovery bitmap redo) funnels through the same
//     two calls: it only ever changes outcomes for the written pk.
//
// Consistency with concurrent readers. Writers invalidate *after* their
// memtable effects are visible, while holding the dataset's shared ingest
// latch; the cache has its own leaf mutex. A reader that captured its
// snapshot before a concurrent write could insert a stale result after the
// write's invalidation ran — so every invalidation bumps the space's
// *epoch*, readers capture the epoch before capturing their snapshot, and
// Insert*() rejects a mismatched epoch (counted as stale_drops). The epoch
// alone leaves one hole: a write's effect becomes visible *before* its
// cut runs, so a reader could snapshot pre-effect yet insert post-cut with
// its captured epoch still current. Writers therefore fence the whole span:
// BeginWrite() before the first memtable effect, EndWrite() after the last
// cut, and Insert*() also rejects while any writer is in flight
// (WritersQuiescent covers the serve-prefix + tree-snapshot composition the
// executors build for partial range serves). Component turnover (flush
// install, merge install) preserves logical content, so installed entries
// stay valid; the dataset still bumps every epoch on install (LsmTree
// install hook) so no in-flight insert can straddle a structural change.
// Transaction aborts restore old values whose cache positions (the record's
// *old* secondary keys) are unknown in general, so no precise re-cut is
// possible: rollback runs its undo closures inside the same BeginWrite /
// EndWrite fence as the forward path and then drops the whole cache
// (Clear bumps every epoch), degrading to misses, never a stale serve.
//
// Capacity is bounded by bytes with global LRU eviction across spaces.
// Fault injection: failpoints::kCacheTupleInsert drops the insert (a later
// plain miss); failpoints::kCacheTupleInvalidate falls back to clearing the
// whole cache — a failed *precise* invalidation must degrade to misses,
// never to a stale read.
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/slice.h"
#include "common/thread_annotations.h"

namespace auxlsm {

class FaultInjector;

/// Counter snapshot (TupleCache::stats()).
struct TupleCacheStats {
  uint64_t hits = 0;            ///< consults served completely from cache
  uint64_t chain_served = 0;    ///< tuples delivered via chain walks / points
  uint64_t misses = 0;          ///< consults that fell through (incl. partial)
  uint64_t invalidations = 0;   ///< entries dropped / claims cut by writes
  uint64_t evictions = 0;       ///< entries dropped by LRU pressure
  uint64_t inserts = 0;         ///< entries admitted
  uint64_t stale_drops = 0;     ///< inserts rejected by the epoch guard
  uint64_t resident_bytes = 0;  ///< current accounted bytes

  /// Interval delta (same ergonomics as IoStats::operator-): counters
  /// subtract; resident_bytes is a level gauge, so the minuend's current
  /// value is kept as-is.
  TupleCacheStats operator-(const TupleCacheStats& o) const {
    TupleCacheStats d = *this;
    d.hits -= o.hits;
    d.chain_served -= o.chain_served;
    d.misses -= o.misses;
    d.invalidations -= o.invalidations;
    d.evictions -= o.evictions;
    d.inserts -= o.inserts;
    d.stale_drops -= o.stale_drops;
    return d;
  }
};

/// One cached result tuple: the record's encoded primary key and its
/// serialized value, exactly as the executors would have emitted it.
struct CachedTuple {
  std::string pk;
  std::string value;
};

class TupleCache {
 public:
  static constexpr uint32_t kPointSpace = 0;

  /// `num_spaces` = 1 (point space) + number of secondary indexes. The
  /// injector may be null and must outlive the cache.
  TupleCache(size_t capacity_bytes, uint32_t num_spaces,
             FaultInjector* fault_injector = nullptr);

  size_t capacity_bytes() const { return capacity_; }

  /// Epoch of a space; capture *before* capturing the read snapshot and
  /// pass to the matching Insert*() call.
  uint64_t SpaceEpoch(uint32_t space) const;

  /// The write fence as a real capability: every in-flight writer holds it
  /// *shared* (writers fence readers' inserts, not each other), from just
  /// before its first memtable effect until just after its last
  /// invalidation cut. Inserts are rejected while any writer is in flight
  /// (the effect may already be visible to a reader whose cut has not
  /// landed yet). The capability carries no state of its own — the counted
  /// state lives in writers_in_flight_ under mu_ — but gives the static
  /// analysis an acquire/release pair to pair up, so an unbalanced fence
  /// (a Begin without an End on some path) is a compile error under
  /// -Wthread-safety. Prefer the TupleCacheWriteFence RAII guard below.
  class CAPABILITY("tuple_cache.write_fence") WriteFenceCap {};

  void BeginWrite() ACQUIRE_SHARED(write_fence_);
  void EndWrite() RELEASE_SHARED(write_fence_);

  /// True when `epoch` is still current for `space` AND no writer is in
  /// flight — i.e. nothing could have changed between the caller's chain
  /// serve and now. Used to keep a served prefix coherent with a tree
  /// snapshot captured slightly later.
  bool WritersQuiescent(uint32_t space, uint64_t epoch) const;

  // --- Point space -----------------------------------------------------------
  /// Probes the point space. Returns true on a cache hit; then *found tells
  /// whether the key exists (false = proven absent) and *value receives the
  /// serialized record when it does.
  bool LookupPoint(uint64_t key, bool* found, std::string* value);

  /// Records a validated point outcome (found = false caches the absence).
  void InsertPoint(uint64_t key, bool found, const Slice& pk,
                   const Slice& value, uint64_t epoch);

  // --- Range spaces ----------------------------------------------------------
  struct RangeServe {
    std::vector<CachedTuple> tuples;  ///< key-major, pk-ascending per key
    /// First key of [lo, hi] not proven covered; the caller's executors own
    /// [next, hi]. Meaningful only when !complete.
    uint64_t next = 0;
    bool complete = false;  ///< the chain covered all of [lo, hi]
  };
  /// Walks the chain from lo, serving tuples until the first unproven gap.
  void LookupRange(uint32_t space, uint64_t lo, uint64_t hi, RangeServe* out);

  struct KeyGroup {
    uint64_t key = 0;
    std::vector<CachedTuple> tuples;  ///< pk-ascending
  };
  /// Records a completed, validated range result: `groups` (ascending keys
  /// within [lo, hi]) are ALL result keys of [lo, hi]; an empty vector
  /// records proven emptiness. Rejected when the space epoch moved past
  /// `epoch` since the caller captured its snapshot.
  void InsertRange(uint32_t space, uint64_t lo, uint64_t hi,
                   std::vector<KeyGroup> groups, uint64_t epoch);

  // --- Invalidation ----------------------------------------------------------
  void InvalidateKey(uint32_t space, uint64_t key);
  void InvalidatePk(const Slice& pk);
  /// Drops everything (the kCacheTupleInvalidate degradation path, also
  /// used directly by tests).
  void Clear();
  /// Bumps every space epoch without dropping entries: installed component
  /// turnover preserves logical content but must fence in-flight inserts.
  void BumpEpochs();

  TupleCacheStats stats() const;

 private:
  struct Entry {
    std::vector<CachedTuple> tuples;
    bool present = true;  ///< point space: false = proven absent
    uint64_t gap_lo = 0, gap_hi = 0;
    size_t bytes = 0;
    std::list<std::pair<uint32_t, uint64_t>>::iterator lru_it;
  };
  using SpaceMap = std::map<uint64_t, Entry>;

  static size_t EntryBytes(const Entry& e);

  /// True when the insert should be dropped (injected fault).
  bool InsertFaultFired();
  /// True when precise invalidation should degrade to a full clear.
  bool InvalidateFaultFired();

  void Touch(uint32_t space, SpaceMap::iterator it) REQUIRES(mu_);
  /// Registers/unregisters an entry's tuples in the pk reverse map.
  void RegisterEntry(uint32_t space, uint64_t key, const Entry& e)
      REQUIRES(mu_);
  void UnregisterEntry(uint32_t space, uint64_t key, const Entry& e)
      REQUIRES(mu_);
  /// Removes an entry outright (bookkeeping included).
  void EraseEntry(uint32_t space, SpaceMap::iterator it) REQUIRES(mu_);
  /// Upserts one entry; claims are unioned on overwrite (both remain true).
  void UpsertEntry(uint32_t space, uint64_t key, std::vector<CachedTuple> tuples,
                   bool present, uint64_t gap_lo, uint64_t gap_hi)
      REQUIRES(mu_);
  /// Drops the entry at `key` (if any) and cuts neighbor claims spanning it.
  void CutAt(uint32_t space, uint64_t key) REQUIRES(mu_);
  void EvictForCapacity() REQUIRES(mu_);
  void ClearLocked() REQUIRES(mu_);

  const size_t capacity_;
  FaultInjector* const fault_injector_;

  WriteFenceCap write_fence_;
  mutable Mutex mu_{lockrank::kLeaf, "cache.tuple_mu"};
  std::vector<SpaceMap> spaces_ GUARDED_BY(mu_);
  std::vector<uint64_t> epochs_ GUARDED_BY(mu_);
  /// Most-recent first; (space, key) of every resident entry.
  std::list<std::pair<uint32_t, uint64_t>> lru_ GUARDED_BY(mu_);
  /// Encoded pk -> every range-space entry holding a tuple for it.
  std::unordered_map<std::string, std::vector<std::pair<uint32_t, uint64_t>>>
      pk_map_ GUARDED_BY(mu_);
  uint64_t resident_bytes_ GUARDED_BY(mu_) = 0;
  uint32_t writers_in_flight_ GUARDED_BY(mu_) = 0;
  TupleCacheStats counters_ GUARDED_BY(mu_);

  friend class TupleCacheWriteFence;
};

/// Null-safe RAII hold of a TupleCache's write fence: acquires (shared) at
/// construction, releases at scope exit. A null cache makes the scope a
/// no-op (datasets without a tuple cache share the write paths).
class SCOPED_CAPABILITY TupleCacheWriteFence {
 public:
  explicit TupleCacheWriteFence(TupleCache* cache)
      ACQUIRE_SHARED(cache->write_fence_)
      : cache_(cache) {
    if (cache_ != nullptr) cache_->BeginWrite();
  }
  ~TupleCacheWriteFence() RELEASE() {
    if (cache_ != nullptr) cache_->EndWrite();
  }
  TupleCacheWriteFence(const TupleCacheWriteFence&) = delete;
  TupleCacheWriteFence& operator=(const TupleCacheWriteFence&) = delete;

 private:
  TupleCache* const cache_;
};

}  // namespace auxlsm
