// In-memory LSM component. Writes (inserts, upserts, anti-matter deletes)
// land here and are flushed to an immutable disk component when the dataset's
// shared memory budget fills (§2.2). Entries carry the ingestion timestamp
// used by component IDs and by the Validation strategy.
//
// The ordered representation is a concurrent skiplist (mem/skiplist.h):
// inserts of distinct keys are lock-free and reads never block on writers,
// which is what the multi-writer ingestion pipeline needs (writers of the
// *same* key are serialized by the dataset's record-level locks). The
// memtable's latch is taken in shared mode by every read/write operation and
// exclusively only by the quiesced-or-rollback paths (Clear / EraseIfTs /
// Restore), which physically unlink nodes.
//
// A memtable that has been *sealed* by the ingestion pipeline (swapped out
// for a fresh one, awaiting background flush) is immutable in practice and
// stays readable: lookups hold it by shared_ptr, so its entries survive
// until the flushed disk component replaces it and the last reader drops.
//
// The memtable also owns the memory component's creation-time range filter
// (§3): the filter must be sealed and flushed together with the entries it
// covers, so it lives here rather than on the tree.
#pragma once

#include <atomic>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/mutex.h"
#include "common/slice.h"
#include "common/status.h"
#include "lsm/range_filter.h"
#include "mem/skiplist.h"

namespace auxlsm {

struct MemEntry {
  std::string value;
  Timestamp ts = 0;
  bool antimatter = false;
};

/// A fully-owned entry snapshot handed to flush and to readers.
struct OwnedEntry {
  std::string key;
  std::string value;
  Timestamp ts = 0;
  bool antimatter = false;
};

class Memtable {
 public:
  /// Inserts or replaces the entry for key. Newer writes to the same key
  /// blindly override older ones (out-of-place update semantics). Safe for
  /// concurrent callers on distinct keys.
  void Put(const Slice& key, const Slice& value, Timestamp ts,
           bool antimatter);

  /// Looks up a key; fills *out on hit (including anti-matter entries).
  Status Get(const Slice& key, OwnedEntry* out) const;

  bool Contains(const Slice& key) const;

  /// Removes the entry for key iff it carries exactly timestamp ts. Used by
  /// transaction rollback (inverse operations, no-steal policy).
  bool EraseIfTs(const Slice& key, Timestamp ts);

  /// Restores a previous entry (rollback of an overwrite).
  void Restore(const Slice& key, const MemEntry& prev);

  uint64_t num_entries() const;
  size_t ApproximateMemory() const;
  bool empty() const { return num_entries() == 0; }

  /// Component ID bounds: min/max timestamp over current entries' writes
  /// (including overwritten ones, to keep IDs conservative).
  Timestamp min_ts() const;
  Timestamp max_ts() const;

  /// The memory component's range filter; widening rules are applied by the
  /// dataset's strategy code (§3.1/§4.2/§5.2).
  RangeFilter* range_filter() { return &filter_; }
  const RangeFilter& range_filter() const { return filter_; }

  /// Ordered snapshot of all entries (flush input).
  std::vector<OwnedEntry> Snapshot() const;

  /// Ordered snapshot of entries with key in [lo, hi] (inclusive bounds;
  /// empty slices mean unbounded).
  std::vector<OwnedEntry> SnapshotRange(const Slice& lo, const Slice& hi) const;

  void Clear();

 private:
  // Shared by all read/write operations (the skiplist handles their mutual
  // concurrency); exclusive only for structural unlinking (Clear/Erase/
  // Restore), which must not run under concurrent traversals. list_ carries
  // no GUARDED_BY: writers mutate it under the *shared* latch by design
  // (lock-free skiplist inserts), a data-dependent discipline the static
  // analysis cannot express — the latch here only fences structural
  // unlinking, not entry publication.
  mutable SharedMutex mu_{lockrank::kLeaf, "mem.table"};
  SkipList<MemEntry> list_;
  std::atomic<size_t> bytes_{0};
  std::atomic<Timestamp> min_ts_{0};
  std::atomic<Timestamp> max_ts_{0};
  RangeFilter filter_;
};

}  // namespace auxlsm
