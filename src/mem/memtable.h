// In-memory LSM component. Writes (inserts, upserts, anti-matter deletes)
// land here and are flushed to an immutable disk component when the dataset's
// shared memory budget fills (§2.2). Entries carry the ingestion timestamp
// used by component IDs and by the Validation strategy.
//
// The ordered representation is a skiplist (mem/skiplist.h), the classic
// LSM memory-component structure, guarded by a shared_mutex — ample for the
// single-writer-per-dataset ingestion model of the paper's experiments
// (§6.6's concurrent writers contend on disk-component bitmaps, not on the
// memtable).
#pragma once

#include <shared_mutex>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/slice.h"
#include "common/status.h"
#include "mem/skiplist.h"

namespace auxlsm {

struct MemEntry {
  std::string value;
  Timestamp ts = 0;
  bool antimatter = false;
};

/// A fully-owned entry snapshot handed to flush and to readers.
struct OwnedEntry {
  std::string key;
  std::string value;
  Timestamp ts = 0;
  bool antimatter = false;
};

class Memtable {
 public:
  /// Inserts or replaces the entry for key. Newer writes to the same key
  /// blindly override older ones (out-of-place update semantics).
  void Put(const Slice& key, const Slice& value, Timestamp ts,
           bool antimatter);

  /// Looks up a key; fills *out on hit (including anti-matter entries).
  Status Get(const Slice& key, OwnedEntry* out) const;

  bool Contains(const Slice& key) const;

  /// Removes the entry for key iff it carries exactly timestamp ts. Used by
  /// transaction rollback (inverse operations, no-steal policy).
  bool EraseIfTs(const Slice& key, Timestamp ts);

  /// Restores a previous entry (rollback of an overwrite).
  void Restore(const Slice& key, const MemEntry& prev);

  uint64_t num_entries() const;
  size_t ApproximateMemory() const;
  bool empty() const { return num_entries() == 0; }

  /// Component ID bounds: min/max timestamp over current entries' writes
  /// (including overwritten ones, to keep IDs conservative).
  Timestamp min_ts() const;
  Timestamp max_ts() const;

  /// Ordered snapshot of all entries (flush input).
  std::vector<OwnedEntry> Snapshot() const;

  /// Ordered snapshot of entries with key in [lo, hi] (inclusive bounds;
  /// empty slices mean unbounded).
  std::vector<OwnedEntry> SnapshotRange(const Slice& lo, const Slice& hi) const;

  void Clear();

 private:
  mutable std::shared_mutex mu_;
  SkipList<MemEntry> list_;
  size_t bytes_ = 0;
  Timestamp min_ts_ = 0;
  Timestamp max_ts_ = 0;
};

}  // namespace auxlsm
