// Ordered skiplist used as the memtable's internal representation (the
// classic LSM memory-component structure; RocksDB uses the same shape).
//
// Single-writer / multi-reader is handled by the Memtable's latch; the list
// itself is a plain (non-concurrent) skiplist with O(log n) expected search,
// insert, and erase, plus ordered iteration and lower_bound — the operations
// flush snapshots and range scans need.
#pragma once

#include <cassert>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/random.h"

namespace auxlsm {

template <typename Value>
class SkipList {
 public:
  static constexpr int kMaxHeight = 16;

  SkipList() : rng_(0x5ee7c0de), head_(NewNode("", kMaxHeight)) {}
  ~SkipList() {
    Node* n = head_;
    while (n != nullptr) {
      Node* next = n->next[0];
      DeleteNode(n);
      n = next;
    }
  }
  SkipList(const SkipList&) = delete;
  SkipList& operator=(const SkipList&) = delete;

  struct Node {
    std::string key;
    Value value;
    int height;
    Node* next[1];  // over-allocated to `height` entries
  };

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Inserts key -> value, or assigns if the key exists. Returns the node
  /// and whether a new node was created.
  Node* InsertOrAssign(std::string_view key, Value value, bool* created) {
    Node* prev[kMaxHeight];
    Node* n = FindGreaterOrEqual(key, prev);
    if (n != nullptr && n->key == key) {
      n->value = std::move(value);
      *created = false;
      return n;
    }
    const int height = RandomHeight();
    Node* node = NewNode(key, height);
    node->value = std::move(value);
    for (int level = 0; level < height; level++) {
      node->next[level] = prev[level]->next[level];
      prev[level]->next[level] = node;
    }
    size_++;
    *created = true;
    return node;
  }

  /// Returns the node for key, or nullptr.
  Node* Find(std::string_view key) const {
    Node* n = FindGreaterOrEqual(key, nullptr);
    return (n != nullptr && n->key == key) ? n : nullptr;
  }

  /// First node with node->key >= key, or nullptr.
  Node* LowerBound(std::string_view key) const {
    return FindGreaterOrEqual(key, nullptr);
  }

  /// First node in order, or nullptr.
  Node* First() const { return head_->next[0]; }

  /// Successor (nullptr at the end).
  static Node* Next(Node* n) { return n->next[0]; }

  /// Erases key; returns true if it was present.
  bool Erase(std::string_view key) {
    Node* prev[kMaxHeight];
    Node* n = FindGreaterOrEqual(key, prev);
    if (n == nullptr || n->key != key) return false;
    for (int level = 0; level < n->height; level++) {
      if (prev[level]->next[level] == n) {
        prev[level]->next[level] = n->next[level];
      }
    }
    DeleteNode(n);
    size_--;
    return true;
  }

  void Clear() {
    Node* n = head_->next[0];
    while (n != nullptr) {
      Node* next = n->next[0];
      DeleteNode(n);
      n = next;
    }
    for (int level = 0; level < kMaxHeight; level++) {
      head_->next[level] = nullptr;
    }
    size_ = 0;
  }

 private:
  static Node* NewNode(std::string_view key, int height) {
    // Over-allocate the trailing next[] array.
    void* mem = ::operator new(sizeof(Node) + sizeof(Node*) * (height - 1));
    Node* n = new (mem) Node{std::string(key), Value{}, height, {nullptr}};
    for (int level = 0; level < height; level++) n->next[level] = nullptr;
    return n;
  }
  static void DeleteNode(Node* n) {
    n->~Node();
    ::operator delete(n);
  }

  int RandomHeight() {
    int h = 1;
    // P(level promotion) = 1/4, as in LevelDB.
    while (h < kMaxHeight && (rng_.Next() & 3) == 0) h++;
    return h;
  }

  Node* FindGreaterOrEqual(std::string_view key, Node** prev) const {
    Node* x = head_;
    for (int level = kMaxHeight - 1; level >= 0; level--) {
      while (x->next[level] != nullptr &&
             std::string_view(x->next[level]->key) < key) {
        x = x->next[level];
      }
      if (prev != nullptr) prev[level] = x;
    }
    return x->next[0];
  }

  Random rng_;
  Node* head_;
  size_t size_ = 0;
};

}  // namespace auxlsm
