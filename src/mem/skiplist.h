// Ordered skiplist used as the memtable's internal representation (the
// classic LSM memory-component structure; RocksDB uses the same shape).
//
// Concurrency model (the multi-writer ingestion pipeline):
//  - Inserts are lock-free: next pointers are atomics and new nodes are
//    linked level by level with CAS, bottom level first — membership is
//    decided by the level-0 link, upper levels are an index that concurrent
//    searches tolerate being mid-construction (the RocksDB InlineSkipList
//    approach).
//  - Reads (Find / LowerBound / ordered traversal) run concurrently with
//    inserts without locks; traversals acquire-load next pointers, and a
//    node's key is immutable after it is published.
//  - A node's *value* may be reassigned in place (out-of-place LSM updates
//    blindly overwrite); assignment and value reads synchronize on a
//    per-node spinlock (ReadValue / the InsertOrAssign replace path) so a
//    reader never observes a torn value.
//  - Erase and Clear physically unlink and free nodes; callers must exclude
//    all concurrent access (the Memtable holds its latch exclusively there —
//    both are rollback/quiesced-only paths).
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>

#include "common/random.h"

namespace auxlsm {

/// Minimal test-and-set spinlock; guards per-node value assignment, which is
/// a handful of pointer moves — never held across blocking work.
class SpinLock {
 public:
  void lock() {
    while (flag_.test_and_set(std::memory_order_acquire)) {
    }
  }
  void unlock() { flag_.clear(std::memory_order_release); }

 private:
  std::atomic_flag flag_;
};

template <typename Value>
class SkipList {
 public:
  static constexpr int kMaxHeight = 16;

  SkipList() : head_(NewNode("", kMaxHeight)) {}
  ~SkipList() {
    Node* n = head_;
    while (n != nullptr) {
      Node* next = n->next[0].load(std::memory_order_relaxed);
      DeleteNode(n);
      n = next;
    }
  }
  SkipList(const SkipList&) = delete;
  SkipList& operator=(const SkipList&) = delete;

  struct Node {
    std::string key;
    Value value;
    int height;
    SpinLock value_lock;            // guards `value` reassignment/reads
    std::atomic<Node*> next[1];     // over-allocated to `height` entries

    void LockValue() { value_lock.lock(); }
    void UnlockValue() { value_lock.unlock(); }
  };

  size_t size() const { return size_.load(std::memory_order_relaxed); }
  bool empty() const { return size() == 0; }

  /// Inserts key -> value, or assigns if the key exists. Safe against
  /// concurrent InsertOrAssign of *different* keys (same-key writers must be
  /// serialized by the caller, as the dataset's record locks do; a lost
  /// same-key race still degrades safely into the assign path). On replace,
  /// `on_replace(old_value)` runs under the node's value lock before the
  /// assignment (used for byte accounting). Returns the node and whether a
  /// new node was created.
  template <typename OnReplace>
  Node* InsertOrAssign(std::string_view key, Value value, bool* created,
                       OnReplace&& on_replace) {
    Node* prev[kMaxHeight];
    Node* succ[kMaxHeight];
    Node* node = nullptr;
    int height = 0;
    while (true) {
      Node* n = FindGreaterOrEqual(key, prev, succ);
      if (n != nullptr && n->key == key) {
        if (node != nullptr) DeleteNode(node);  // lost a same-key race
        n->LockValue();
        on_replace(n->value);
        n->value = std::move(value);
        n->UnlockValue();
        *created = false;
        return n;
      }
      if (node == nullptr) {
        height = RandomHeight();
        node = NewNode(key, height);
      }
      node->value = std::move(value);
      node->next[0].store(succ[0], std::memory_order_relaxed);
      Node* expected = succ[0];
      // Release so the node's key/value are visible before it is reachable.
      if (prev[0]->next[0].compare_exchange_strong(expected, node,
                                                   std::memory_order_release,
                                                   std::memory_order_relaxed)) {
        break;
      }
      value = std::move(node->value);  // retry; take the value back
    }
    for (int level = 1; level < height; level++) {
      while (true) {
        node->next[level].store(succ[level], std::memory_order_relaxed);
        Node* expected = succ[level];
        if (prev[level]->next[level].compare_exchange_strong(
                expected, node, std::memory_order_release,
                std::memory_order_relaxed)) {
          break;
        }
        FindGreaterOrEqual(key, prev, succ);  // recompute this level's links
      }
    }
    size_.fetch_add(1, std::memory_order_relaxed);
    *created = true;
    return node;
  }

  Node* InsertOrAssign(std::string_view key, Value value, bool* created) {
    return InsertOrAssign(key, std::move(value), created,
                          [](const Value&) {});
  }

  /// Returns the node for key, or nullptr.
  Node* Find(std::string_view key) const {
    Node* n = FindGreaterOrEqual(key, nullptr, nullptr);
    return (n != nullptr && n->key == key) ? n : nullptr;
  }

  /// First node with node->key >= key, or nullptr.
  Node* LowerBound(std::string_view key) const {
    return FindGreaterOrEqual(key, nullptr, nullptr);
  }

  /// First node in order, or nullptr.
  Node* First() const { return head_->next[0].load(std::memory_order_acquire); }

  /// Successor (nullptr at the end).
  static Node* Next(Node* n) {
    return n->next[0].load(std::memory_order_acquire);
  }

  /// Copy of a node's value, taken under its value lock (safe against a
  /// concurrent same-key assignment).
  static Value ReadValue(Node* n) {
    n->LockValue();
    Value v = n->value;
    n->UnlockValue();
    return v;
  }

  /// Erases key; returns true if it was present. Requires external exclusion
  /// of all concurrent operations (rollback path).
  bool Erase(std::string_view key) {
    Node* prev[kMaxHeight];
    Node* n = FindGreaterOrEqual(key, prev, nullptr);
    if (n == nullptr || n->key != key) return false;
    for (int level = 0; level < n->height; level++) {
      if (prev[level]->next[level].load(std::memory_order_relaxed) == n) {
        prev[level]->next[level].store(
            n->next[level].load(std::memory_order_relaxed),
            std::memory_order_relaxed);
      }
    }
    DeleteNode(n);
    size_.fetch_sub(1, std::memory_order_relaxed);
    return true;
  }

  /// Requires external exclusion of all concurrent operations.
  void Clear() {
    Node* n = head_->next[0].load(std::memory_order_relaxed);
    while (n != nullptr) {
      Node* next = n->next[0].load(std::memory_order_relaxed);
      DeleteNode(n);
      n = next;
    }
    for (int level = 0; level < kMaxHeight; level++) {
      head_->next[level].store(nullptr, std::memory_order_relaxed);
    }
    size_.store(0, std::memory_order_relaxed);
  }

 private:
  static Node* NewNode(std::string_view key, int height) {
    // Over-allocate the trailing next[] array.
    void* mem = ::operator new(sizeof(Node) +
                               sizeof(std::atomic<Node*>) * (height - 1));
    Node* n = new (mem) Node{std::string(key), Value{}, height, {}, {nullptr}};
    for (int level = 1; level < height; level++) {
      new (&n->next[level]) std::atomic<Node*>(nullptr);
    }
    return n;
  }
  static void DeleteNode(Node* n) {
    n->~Node();
    ::operator delete(n);
  }

  int RandomHeight() {
    // P(level promotion) = 1/4, as in LevelDB. Heights are structural only
    // (no observable behavior depends on them), so a per-thread stream keeps
    // concurrent inserts race-free without coordination.
    static thread_local Random rng(0x5ee7c0de);
    int h = 1;
    while (h < kMaxHeight && (rng.Next() & 3) == 0) h++;
    return h;
  }

  /// First node with key >= `key` (by level-0 membership). Fills prev/succ
  /// per level when non-null. Safe against concurrent inserts.
  Node* FindGreaterOrEqual(std::string_view key, Node** prev,
                           Node** succ) const {
    Node* x = head_;
    Node* bottom = nullptr;
    for (int level = kMaxHeight - 1; level >= 0; level--) {
      Node* nxt = x->next[level].load(std::memory_order_acquire);
      while (nxt != nullptr && std::string_view(nxt->key) < key) {
        x = nxt;
        nxt = x->next[level].load(std::memory_order_acquire);
      }
      if (prev != nullptr) prev[level] = x;
      if (succ != nullptr) succ[level] = nxt;
      if (level == 0) bottom = nxt;
    }
    return bottom;
  }

  Node* head_;
  std::atomic<size_t> size_{0};
};

}  // namespace auxlsm
