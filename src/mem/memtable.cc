#include "mem/memtable.h"


namespace auxlsm {

void Memtable::Put(const Slice& key, const Slice& value, Timestamp ts,
                   bool antimatter) {
  SharedMutexReadLock l(mu_);
  bool created = false;
  size_t replaced_value_bytes = 0;
  list_.InsertOrAssign(key.view(), MemEntry{value.ToString(), ts, antimatter},
                       &created, [&](const MemEntry& old) {
                         replaced_value_bytes = old.value.size();
                       });
  if (created) {
    bytes_.fetch_add(key.size() + value.size() + 32,
                     std::memory_order_relaxed);
  } else {
    // Unsigned wraparound makes this a correct signed delta.
    bytes_.fetch_add(value.size() - replaced_value_bytes,
                     std::memory_order_relaxed);
  }
  Timestamp cur = min_ts_.load(std::memory_order_relaxed);
  while ((cur == 0 || ts < cur) &&
         !min_ts_.compare_exchange_weak(cur, ts, std::memory_order_relaxed)) {
  }
  cur = max_ts_.load(std::memory_order_relaxed);
  while (ts > cur &&
         !max_ts_.compare_exchange_weak(cur, ts, std::memory_order_relaxed)) {
  }
}

Status Memtable::Get(const Slice& key, OwnedEntry* out) const {
  SharedMutexReadLock l(mu_);
  auto* node = list_.Find(key.view());
  if (node == nullptr) return Status::NotFound();
  MemEntry e = SkipList<MemEntry>::ReadValue(node);
  out->key = node->key;
  out->value = std::move(e.value);
  out->ts = e.ts;
  out->antimatter = e.antimatter;
  return Status::OK();
}

bool Memtable::Contains(const Slice& key) const {
  SharedMutexReadLock l(mu_);
  return list_.Find(key.view()) != nullptr;
}

bool Memtable::EraseIfTs(const Slice& key, Timestamp ts) {
  SharedMutexWriteLock l(mu_);
  auto* node = list_.Find(key.view());
  if (node == nullptr || node->value.ts != ts) return false;
  bytes_.fetch_sub(key.size() + node->value.value.size() + 32,
                   std::memory_order_relaxed);
  list_.Erase(key.view());
  return true;
}

void Memtable::Restore(const Slice& key, const MemEntry& prev) {
  SharedMutexWriteLock l(mu_);
  bool created = false;
  list_.InsertOrAssign(key.view(), prev, &created);
  if (created) {
    bytes_.fetch_add(key.size() + prev.value.size() + 32,
                     std::memory_order_relaxed);
  }
}

uint64_t Memtable::num_entries() const { return list_.size(); }

size_t Memtable::ApproximateMemory() const {
  return bytes_.load(std::memory_order_relaxed);
}

Timestamp Memtable::min_ts() const {
  return min_ts_.load(std::memory_order_relaxed);
}

Timestamp Memtable::max_ts() const {
  return max_ts_.load(std::memory_order_relaxed);
}

std::vector<OwnedEntry> Memtable::Snapshot() const {
  SharedMutexReadLock l(mu_);
  std::vector<OwnedEntry> out;
  out.reserve(list_.size());
  for (auto* n = list_.First(); n != nullptr;
       n = SkipList<MemEntry>::Next(n)) {
    MemEntry e = SkipList<MemEntry>::ReadValue(n);
    out.push_back(
        OwnedEntry{n->key, std::move(e.value), e.ts, e.antimatter});
  }
  return out;
}

std::vector<OwnedEntry> Memtable::SnapshotRange(const Slice& lo,
                                                const Slice& hi) const {
  SharedMutexReadLock l(mu_);
  std::vector<OwnedEntry> out;
  auto* n = lo.empty() ? list_.First() : list_.LowerBound(lo.view());
  for (; n != nullptr; n = SkipList<MemEntry>::Next(n)) {
    if (!hi.empty() && Slice(n->key).compare(hi) > 0) break;
    MemEntry e = SkipList<MemEntry>::ReadValue(n);
    out.push_back(
        OwnedEntry{n->key, std::move(e.value), e.ts, e.antimatter});
  }
  return out;
}

void Memtable::Clear() {
  SharedMutexWriteLock l(mu_);
  list_.Clear();
  bytes_.store(0, std::memory_order_relaxed);
  min_ts_.store(0, std::memory_order_relaxed);
  max_ts_.store(0, std::memory_order_relaxed);
  filter_.Reset();
}

}  // namespace auxlsm
