#include "mem/memtable.h"
#include <mutex>

namespace auxlsm {

void Memtable::Put(const Slice& key, const Slice& value, Timestamp ts,
                   bool antimatter) {
  std::unique_lock<std::shared_mutex> l(mu_);
  auto* existing = list_.Find(key.view());
  if (existing != nullptr) {
    bytes_ += value.size();
    bytes_ -= existing->value.value.size();
    existing->value = MemEntry{value.ToString(), ts, antimatter};
  } else {
    bool created = false;
    list_.InsertOrAssign(key.view(), MemEntry{value.ToString(), ts, antimatter},
                         &created);
    bytes_ += key.size() + value.size() + 32;
  }
  if (min_ts_ == 0 || ts < min_ts_) min_ts_ = ts;
  if (ts > max_ts_) max_ts_ = ts;
}

Status Memtable::Get(const Slice& key, OwnedEntry* out) const {
  std::shared_lock<std::shared_mutex> l(mu_);
  const auto* node = list_.Find(key.view());
  if (node == nullptr) return Status::NotFound();
  out->key = node->key;
  out->value = node->value.value;
  out->ts = node->value.ts;
  out->antimatter = node->value.antimatter;
  return Status::OK();
}

bool Memtable::Contains(const Slice& key) const {
  std::shared_lock<std::shared_mutex> l(mu_);
  return list_.Find(key.view()) != nullptr;
}

bool Memtable::EraseIfTs(const Slice& key, Timestamp ts) {
  std::unique_lock<std::shared_mutex> l(mu_);
  auto* node = list_.Find(key.view());
  if (node == nullptr || node->value.ts != ts) return false;
  bytes_ -= key.size() + node->value.value.size() + 32;
  list_.Erase(key.view());
  return true;
}

void Memtable::Restore(const Slice& key, const MemEntry& prev) {
  std::unique_lock<std::shared_mutex> l(mu_);
  bool created = false;
  list_.InsertOrAssign(key.view(), prev, &created);
  if (created) bytes_ += key.size() + prev.value.size() + 32;
}

uint64_t Memtable::num_entries() const {
  std::shared_lock<std::shared_mutex> l(mu_);
  return list_.size();
}

size_t Memtable::ApproximateMemory() const {
  std::shared_lock<std::shared_mutex> l(mu_);
  return bytes_;
}

Timestamp Memtable::min_ts() const {
  std::shared_lock<std::shared_mutex> l(mu_);
  return min_ts_;
}

Timestamp Memtable::max_ts() const {
  std::shared_lock<std::shared_mutex> l(mu_);
  return max_ts_;
}

std::vector<OwnedEntry> Memtable::Snapshot() const {
  std::shared_lock<std::shared_mutex> l(mu_);
  std::vector<OwnedEntry> out;
  out.reserve(list_.size());
  for (auto* n = list_.First(); n != nullptr;
       n = SkipList<MemEntry>::Next(n)) {
    out.push_back(OwnedEntry{n->key, n->value.value, n->value.ts,
                             n->value.antimatter});
  }
  return out;
}

std::vector<OwnedEntry> Memtable::SnapshotRange(const Slice& lo,
                                                const Slice& hi) const {
  std::shared_lock<std::shared_mutex> l(mu_);
  std::vector<OwnedEntry> out;
  auto* n = lo.empty() ? list_.First() : list_.LowerBound(lo.view());
  for (; n != nullptr; n = SkipList<MemEntry>::Next(n)) {
    if (!hi.empty() && Slice(n->key).compare(hi) > 0) break;
    out.push_back(OwnedEntry{n->key, n->value.value, n->value.ts,
                             n->value.antimatter});
  }
  return out;
}

void Memtable::Clear() {
  std::unique_lock<std::shared_mutex> l(mu_);
  list_.Clear();
  bytes_ = 0;
  min_ts_ = 0;
  max_ts_ = 0;
}

}  // namespace auxlsm
