// LSM disk components and component IDs (§3, Figure 1).
//
// A component ID is the (minTS, maxTS) pair of ingestion timestamps of the
// entries stored in the component; IDs give the recency ordering across the
// components of *different* indexes of a dataset, which index maintenance
// relies on (repairedTS pruning, component-ID propagation).
#pragma once

#include <atomic>
#include <memory>
#include <optional>
#include <string>

#include "bloom/blocked_bloom_filter.h"
#include "bloom/bloom_filter.h"
#include "btree/btree.h"
#include "common/clock.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "lsm/bitmap.h"
#include "lsm/range_filter.h"

namespace auxlsm {

struct ComponentId {
  Timestamp min_ts = 0;
  Timestamp max_ts = 0;

  /// True if this component's entries are all older than the other's.
  bool OlderThan(const ComponentId& o) const { return max_ts < o.min_ts; }
  bool Overlaps(const ComponentId& o) const {
    return min_ts <= o.max_ts && o.min_ts <= max_ts;
  }
  std::string ToString() const;
};

class DiskComponent;
using DiskComponentPtr = std::shared_ptr<DiskComponent>;

/// Link from an old component to the new component being built from it by a
/// concurrent flush/merge (Mutable-bitmap concurrency control, §5.3). Writers
/// that delete a key in the old component follow this link to also fix the
/// new component (Lock method) or append to the side-file (Side-file method).
struct BuildLink;

class DiskComponent {
 public:
  DiskComponent(ComponentId id, Env* env, BtreeMeta meta)
      : id_(id), tree_(env, std::move(meta)) {}

  /// Deletes the backing file once the last reference drops, if the
  /// component was retired (replaced by a merge).
  ~DiskComponent();

  /// Marks the component's file for deletion on destruction.
  void MarkRetired() { retired_.store(true, std::memory_order_relaxed); }

  const ComponentId& id() const { return id_; }
  const Btree& tree() const { return tree_; }
  const BtreeMeta& meta() const { return tree_.meta(); }
  uint64_t num_entries() const { return tree_.meta().num_entries; }
  uint64_t size_bytes() const { return tree_.meta().data_bytes; }

  // --- Bloom filters (memory-resident) -------------------------------------
  void set_bloom(std::unique_ptr<BloomFilter> b) { bloom_ = std::move(b); }
  void set_blocked_bloom(std::unique_ptr<BlockedBloomFilter> b) {
    blocked_bloom_ = std::move(b);
  }
  const BloomFilter* bloom() const { return bloom_.get(); }
  const BlockedBloomFilter* blocked_bloom() const {
    return blocked_bloom_.get();
  }

  /// Bloom check using the requested filter flavor; true if the key may be
  /// present (also true when no filter was built).
  bool MayContain(uint64_t key_hash, bool use_blocked) const;

  // --- Range filter ---------------------------------------------------------
  void set_range_filter(RangeFilter f) { range_filter_ = f; }
  const std::optional<RangeFilter>& range_filter() const {
    return range_filter_;
  }

  // --- Validity bitmap -------------------------------------------------------
  /// Attaches a validity bitmap sized to the entry count (1 = invalid).
  void EnsureBitmap();
  void set_bitmap(std::shared_ptr<Bitmap> b) { bitmap_ = std::move(b); }
  const std::shared_ptr<Bitmap>& bitmap() const { return bitmap_; }
  bool EntryValid(uint64_t ordinal) const {
    return bitmap_ == nullptr || !bitmap_->Test(ordinal);
  }

  // --- Repair bookkeeping (Validation strategy, §4.4) -----------------------
  Timestamp repaired_ts() const { return repaired_ts_; }
  void set_repaired_ts(Timestamp ts) { repaired_ts_ = ts; }

  // --- Recovery bookkeeping (§2.2): max WAL LSN contained in the component.
  uint64_t max_lsn() const { return max_lsn_; }
  void set_max_lsn(uint64_t lsn) { max_lsn_ = lsn; }

  // --- Concurrent-build link (§5.3) ------------------------------------------
  void set_build_link(std::shared_ptr<BuildLink> link);
  std::shared_ptr<BuildLink> build_link() const;

 private:
  const ComponentId id_;
  Btree tree_;
  std::unique_ptr<BloomFilter> bloom_;
  std::unique_ptr<BlockedBloomFilter> blocked_bloom_;
  std::optional<RangeFilter> range_filter_;
  std::shared_ptr<Bitmap> bitmap_;
  Timestamp repaired_ts_ = 0;
  uint64_t max_lsn_ = 0;

  mutable Mutex link_mu_{lockrank::kLeaf, "lsm.component.link"};
  std::shared_ptr<BuildLink> build_link_ GUARDED_BY(link_mu_);
  std::atomic<bool> retired_{false};
};

}  // namespace auxlsm
