// Validity bitmaps over disk-component entries (one bit per entry, addressed
// by ordinal; bit = 1 means the entry is invalid/deleted).
//
// Two flavors are used by the paper:
//  - The Validation strategy's merge repair produces an *immutable* bitmap
//    (built once, read-only afterwards) marking obsolete secondary entries.
//  - The Mutable-bitmap strategy mutates bits concurrently: writers flip
//    0 -> 1 to delete; transaction aborts flip 1 -> 0. Bit mutations use CAS
//    so two writers touching the same word don't lose updates (§5.2).
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

namespace auxlsm {

class Bitmap {
 public:
  Bitmap() = default;
  explicit Bitmap(uint64_t n_bits);

  /// Deep copy (snapshot) of another bitmap's current contents; used by the
  /// Side-file method's build phase (§5.3).
  static Bitmap SnapshotOf(const Bitmap& other);

  uint64_t size() const { return n_bits_; }

  /// Atomically sets bit i to 1. Returns the previous value.
  bool Set(uint64_t i);
  /// Atomically clears bit i to 0 (abort path). Returns the previous value.
  bool Unset(uint64_t i);
  bool Test(uint64_t i) const;

  /// Number of set (invalid) bits.
  uint64_t CountSet() const;

  /// Approximate memory footprint.
  size_t memory_bytes() const { return words_.size() * 8; }

  /// Raw word snapshot (checkpointing) and reconstruction.
  std::vector<uint64_t> Words() const;
  static Bitmap FromWords(uint64_t n_bits, const std::vector<uint64_t>& words);

  /// ORs another bitmap's set bits into this one (same size required).
  void UnionWith(const Bitmap& other);

 private:
  uint64_t n_bits_ = 0;
  std::vector<std::atomic<uint64_t>> words_;
};

}  // namespace auxlsm
