#include "lsm/lsm_tree.h"

#include <algorithm>
#include <cassert>

#include "btree/btree_builder.h"
#include "common/hash.h"

namespace auxlsm {

LsmTree::LsmTree(Env* env, LsmTreeOptions options)
    : env_(env),
      options_(std::move(options)),
      mem_(std::make_shared<Memtable>()) {
  if (options_.merge_policy == nullptr) {
    options_.merge_policy = std::make_shared<NoMergePolicy>();
  }
}

std::shared_ptr<Memtable> LsmTree::ActiveMem() const {
  MutexLock l(mem_mu_);
  return mem_;
}

void LsmTree::Put(const Slice& key, const Slice& value, Timestamp ts) {
  ActiveMem()->Put(key, value, ts, /*antimatter=*/false);
}

void LsmTree::PutAntimatter(const Slice& key, Timestamp ts) {
  ActiveMem()->Put(key, Slice(), ts, /*antimatter=*/true);
}

std::vector<std::shared_ptr<Memtable>> LsmTree::MemtableSet() const {
  MutexLock l(mem_mu_);
  std::vector<std::shared_ptr<Memtable>> out;
  out.reserve(1 + sealed_.size());
  out.push_back(mem_);
  for (auto it = sealed_.rbegin(); it != sealed_.rend(); ++it) {
    out.push_back(*it);
  }
  return out;
}

Status LsmTree::GetFromMem(const Slice& key, OwnedEntry* out,
                           bool* from_sealed) const {
  if (from_sealed != nullptr) *from_sealed = false;
  // Fast path: no sealed memtables (always true on the serial path) — skip
  // the set snapshot on the hot per-operation lookup.
  std::shared_ptr<Memtable> active;
  {
    MutexLock l(mem_mu_);
    if (sealed_.empty()) active = mem_;
  }
  if (active != nullptr) return active->Get(key, out);
  const auto mems = MemtableSet();  // active first, then sealed newest-first
  for (size_t i = 0; i < mems.size(); i++) {
    if (!mems[i]->Get(key, out).ok()) continue;
    if (from_sealed != nullptr) *from_sealed = i > 0;
    return Status::OK();
  }
  return Status::NotFound();
}

namespace {

/// Merges two ordered entry snapshots; on a duplicate key the entry with the
/// larger timestamp wins (ties prefer `newer`, matching the reconciliation
/// convention used by scans).
std::vector<OwnedEntry> MergeSnapshots(std::vector<OwnedEntry> newer,
                                       std::vector<OwnedEntry> older) {
  if (older.empty()) return newer;
  if (newer.empty()) return older;
  std::vector<OwnedEntry> out;
  out.reserve(newer.size() + older.size());
  size_t ni = 0, oi = 0;
  while (ni < newer.size() || oi < older.size()) {
    int cmp;
    if (ni >= newer.size()) {
      cmp = 1;
    } else if (oi >= older.size()) {
      cmp = -1;
    } else {
      cmp = Slice(newer[ni].key).compare(Slice(older[oi].key));
    }
    if (cmp < 0) {
      out.push_back(std::move(newer[ni++]));
    } else if (cmp > 0) {
      out.push_back(std::move(older[oi++]));
    } else {
      out.push_back(newer[ni].ts >= older[oi].ts ? std::move(newer[ni])
                                                 : std::move(older[oi]));
      ni++;
      oi++;
    }
  }
  return out;
}

}  // namespace

std::vector<OwnedEntry> LsmTree::MemSnapshot() const {
  auto mems = MemtableSet();
  std::vector<OwnedEntry> out = mems.front()->Snapshot();
  for (size_t i = 1; i < mems.size(); i++) {
    out = MergeSnapshots(std::move(out), mems[i]->Snapshot());
  }
  return out;
}

std::vector<OwnedEntry> LsmTree::MemSnapshotRange(const Slice& lo,
                                                  const Slice& hi) const {
  auto mems = MemtableSet();
  std::vector<OwnedEntry> out = mems.front()->SnapshotRange(lo, hi);
  for (size_t i = 1; i < mems.size(); i++) {
    out = MergeSnapshots(std::move(out), mems[i]->SnapshotRange(lo, hi));
  }
  return out;
}

size_t LsmTree::MemBytes() const {
  // Per-ingest-op budget input; byte counters are atomics, so summing under
  // mem_mu_ needs no set snapshot.
  MutexLock l(mem_mu_);
  size_t total = mem_->ApproximateMemory();
  for (const auto& m : sealed_) total += m->ApproximateMemory();
  return total;
}

bool LsmTree::MemEmpty() const {
  MutexLock l(mem_mu_);
  if (!mem_->empty()) return false;
  for (const auto& m : sealed_) {
    if (!m->empty()) return false;
  }
  return true;
}

Timestamp LsmTree::MemMinTs() const {
  MutexLock l(mem_mu_);
  Timestamp min = mem_->min_ts();
  for (const auto& m : sealed_) {
    const Timestamp t = m->min_ts();
    if (t != 0 && (min == 0 || t < min)) min = t;
  }
  return min;
}

bool LsmTree::MemOverlaps(uint64_t lo, uint64_t hi) const {
  for (const auto& m : MemtableSet()) {
    if (m->empty()) continue;
    if (!options_.maintain_range_filter || !m->range_filter()->has_value()) {
      return true;
    }
    if (m->range_filter()->Overlaps(lo, hi)) return true;
  }
  return false;
}

Status LsmTree::Get(const Slice& key, OwnedEntry* out,
                    const GetOptions& opts) const {
  LookupResult res;
  AUXLSM_RETURN_NOT_OK(GetRaw(key, &res, opts));
  if (!res.found || res.entry.antimatter) return Status::NotFound();
  *out = std::move(res.entry);
  return Status::OK();
}

Status LsmTree::GetRaw(const Slice& key, LookupResult* out,
                       const GetOptions& opts) const {
  out->found = false;
  if (opts.search_memtable) {
    OwnedEntry e;
    bool from_sealed = false;
    if (GetFromMem(key, &e, &from_sealed).ok()) {
      out->found = true;
      out->entry = std::move(e);
      out->from_memtable = true;
      out->from_sealed = from_sealed;
      out->component = nullptr;
      return Status::OK();
    }
  }
  const uint64_t h = Hash64(key);
  for (const auto& c : Components()) {
    if (c->id().max_ts < opts.min_component_ts) continue;
    if (!c->MayContain(h, opts.use_blocked_bloom)) continue;
    LeafEntry entry;
    std::string backing;
    uint64_t ordinal = 0;
    Status st = c->tree().GetWithOrdinal(key, &entry, &backing, &ordinal);
    if (st.IsNotFound()) continue;
    AUXLSM_RETURN_NOT_OK(st);
    if (opts.respect_bitmaps && !c->EntryValid(ordinal)) {
      // The newest physical entry is marked deleted; the key is gone.
      return Status::OK();
    }
    out->found = true;
    out->entry.key = entry.key.ToString();
    out->entry.value = entry.value.ToString();
    out->entry.ts = entry.ts;
    out->entry.antimatter = entry.antimatter;
    out->from_memtable = false;
    out->from_sealed = false;
    out->component = c;
    out->ordinal = ordinal;
    return Status::OK();
  }
  return Status::OK();
}

Result<DiskComponentPtr> LsmTree::BuildComponent(
    ComponentId id, const std::function<bool(OwnedEntry*)>& next) {
  BtreeBuilder builder(env_);
  std::vector<uint64_t> hashes;
  RangeFilter filter;
  OwnedEntry e;
  while (next(&e)) {
    Status st = builder.Add(e.key, e.value, e.ts, e.antimatter);
    if (!st.ok()) return st;
    if (options_.build_bloom || options_.build_blocked_bloom) {
      hashes.push_back(Hash64(e.key));
    }
    if (options_.maintain_range_filter && options_.filter_key_extractor &&
        !e.antimatter) {
      filter.Expand(options_.filter_key_extractor(e.key, e.value));
    }
  }
  BtreeMeta meta;
  Status st = builder.Finish(&meta);
  if (!st.ok()) return st;

  auto component = std::make_shared<DiskComponent>(id, env_, std::move(meta));
  if (options_.build_bloom) {
    component->set_bloom(
        std::make_unique<BloomFilter>(hashes, options_.bloom_fpr));
  }
  if (options_.build_blocked_bloom) {
    component->set_blocked_bloom(
        std::make_unique<BlockedBloomFilter>(hashes, options_.bloom_fpr));
  }
  if (options_.maintain_range_filter) {
    component->set_range_filter(filter);
  }
  if (options_.attach_bitmap) {
    component->EnsureBitmap();
  }
  return component;
}

std::shared_ptr<Memtable> LsmTree::SealMemtable() {
  MutexLock l(mem_mu_);
  if (mem_->empty()) return nullptr;
  std::shared_ptr<Memtable> sealed = mem_;
  sealed_.push_back(sealed);
  mem_ = std::make_shared<Memtable>();
  return sealed;
}

Result<DiskComponentPtr> LsmTree::BuildFromSealed(
    const std::shared_ptr<Memtable>& sealed) {
  const ComponentId id{sealed->min_ts(), sealed->max_ts()};
  auto snapshot = sealed->Snapshot();
  size_t i = 0;
  auto next = [&](OwnedEntry* e) {
    if (i >= snapshot.size()) return false;
    *e = std::move(snapshot[i++]);
    return true;
  };
  AUXLSM_ASSIGN_OR_RETURN(DiskComponentPtr component,
                          BuildComponent(id, next));
  // The flushed component's range filter is the *memory component's* filter,
  // which strategies may have widened with old-record values (§3.1); the
  // entry-derived filter computed during the build can be too narrow.
  if (options_.maintain_range_filter && sealed->range_filter()->has_value()) {
    component->set_range_filter(*sealed->range_filter());
  }
  return component;
}

Status LsmTree::InstallFlushed(const std::shared_ptr<Memtable>& sealed,
                               DiskComponentPtr component) {
  {
    MutexLock ml(mem_mu_);
    auto it = std::find(sealed_.begin(), sealed_.end(), sealed);
    if (it == sealed_.end()) {
      // The sealed memtable was already flushed by a competing path (e.g. an
      // explicit FlushAll racing the background cycle); drop the duplicate
      // build rather than installing the same entries twice.
      component->MarkRetired();
      return Status::OK();
    }
    // Publish the component before dropping the sealed memtable: a reader
    // between the two steps sees the entry twice (reconciled by timestamp),
    // never zero times. Lock order mem_mu_ -> components_mu_ (no other path
    // nests them).
    {
      MutexLock cl(components_mu_);
      components_.insert(components_.begin(), component);
    }
    sealed_.erase(it);
  }
  if (install_hook_) install_hook_();
  return Status::OK();
}

Status LsmTree::Flush() {
  SealMemtable();
  // Flush oldest-sealed first so the newest-first component order holds.
  std::vector<std::shared_ptr<Memtable>> pending;
  {
    MutexLock l(mem_mu_);
    pending = sealed_;
  }
  for (const auto& m : pending) {
    AUXLSM_ASSIGN_OR_RETURN(DiskComponentPtr component, BuildFromSealed(m));
    AUXLSM_RETURN_NOT_OK(InstallFlushed(m, component));
  }
  return Status::OK();
}

std::vector<DiskComponentPtr> LsmTree::Components() const {
  MutexLock l(components_mu_);
  return components_;
}

bool LsmTree::PickMergeCandidates(
    std::vector<DiskComponentPtr>* picked) const {
  picked->clear();
  std::vector<DiskComponentPtr> snapshot = Components();
  std::vector<ComponentSizeInfo> sizes;
  sizes.reserve(snapshot.size());
  for (const auto& c : snapshot) {
    sizes.push_back(ComponentSizeInfo{c->size_bytes()});
  }
  const MergeRange range = options_.merge_policy->PickMerge(sizes);
  if (range.empty() || range.count() < 2) return false;
  picked->assign(snapshot.begin() + range.begin, snapshot.begin() + range.end);
  return true;
}

Status LsmTree::TryMerge(bool* merged) {
  *merged = false;
  std::vector<DiskComponentPtr> picked;
  if (!PickMergeCandidates(&picked)) return Status::OK();
  AUXLSM_RETURN_NOT_OK(MergeComponents(picked));
  *merged = true;
  return Status::OK();
}

Status LsmTree::MergeComponentRange(const MergeRange& range) {
  std::vector<DiskComponentPtr> snapshot = Components();
  if (range.end > snapshot.size() || range.empty()) {
    return Status::InvalidArgument("bad merge range");
  }
  std::vector<DiskComponentPtr> picked(snapshot.begin() + range.begin,
                                       snapshot.begin() + range.end);
  return MergeComponents(picked);
}

Status LsmTree::MergeAll() {
  std::vector<DiskComponentPtr> snapshot = Components();
  if (snapshot.size() < 2) return Status::OK();
  return MergeComponents(snapshot);
}

bool LsmTree::IsOldestComponent(const DiskComponentPtr& c) const {
  MutexLock l(components_mu_);
  return !components_.empty() && c == components_.back();
}

Status LsmTree::MergeComponents(const std::vector<DiskComponentPtr>& picked) {
  if (picked.empty()) return Status::OK();
  // Anti-matter may be dropped only if the merge reaches the oldest
  // component (no older component can hold a shadowed version).
  const bool includes_oldest = IsOldestComponent(picked.back());
  MergeCursor::Options mo;
  mo.readahead_pages = options_.scan_readahead_pages;
  mo.respect_bitmaps = true;
  mo.drop_antimatter = includes_oldest;
  MergeCursor cursor(picked, mo);
  AUXLSM_RETURN_NOT_OK(cursor.Init());

  Status iter_status;
  auto next = [&](OwnedEntry* e) {
    if (!cursor.Valid()) return false;
    e->key = cursor.key().ToString();
    e->value = cursor.value().ToString();
    e->ts = cursor.ts();
    e->antimatter = cursor.antimatter();
    iter_status = cursor.Next();
    return iter_status.ok();
  };
  return MergeFromStream(picked, next, &iter_status);
}

Status LsmTree::MergeFromStream(
    const std::vector<DiskComponentPtr>& picked,
    const std::function<bool(OwnedEntry*)>& next,
    const Status* stream_status) {
  if (picked.empty()) return Status::OK();
  const bool includes_oldest = IsOldestComponent(picked.back());
  ComponentId id{picked.back()->id().min_ts, picked.front()->id().max_ts};
  AUXLSM_ASSIGN_OR_RETURN(DiskComponentPtr merged, BuildComponent(id, next));
  // A stream that stopped on an error must not install its truncated output.
  if (stream_status != nullptr) AUXLSM_RETURN_NOT_OK(*stream_status);

  // A merged component inherits the most conservative repair progress, and
  // the newest LSN any input carried: recovery replays the log from the
  // maximum component LSN, so merging away the components that carried it
  // must not shrink that watermark (a crash right after a full merge would
  // otherwise re-replay — and under Eager semantics corrupt — work the
  // merged component already contains).
  Timestamp repaired = picked.front()->repaired_ts();
  uint64_t max_lsn = 0;
  for (const auto& c : picked) {
    repaired = std::min(repaired, c->repaired_ts());
    max_lsn = std::max(max_lsn, c->max_lsn());
  }
  merged->set_repaired_ts(repaired);
  merged->set_max_lsn(max_lsn);
  // The merged range filter must stay the union of the inputs' filters
  // unless the merge reached the oldest component: a partial merge keeps
  // shadowing obsolete versions in older components, and the Eager
  // strategy's correctness depends on the filter still covering the old
  // values those versions carry (§3.1's widening invariant). Only a full
  // merge, which physically drops every obsolete version, may tighten the
  // filter to the surviving entries (computed during the build).
  if (options_.maintain_range_filter &&
      !(includes_oldest && options_.filter_key_extractor)) {
    RangeFilter f;
    for (const auto& c : picked) {
      if (c->range_filter().has_value()) f.Merge(*c->range_filter());
    }
    merged->set_range_filter(f);
  }

  AUXLSM_RETURN_NOT_OK(ReplaceComponents(picked, merged));
  if (merge_hook_) merge_hook_(picked, merged);
  return Status::OK();
}

Status LsmTree::ReplaceComponents(
    const std::vector<DiskComponentPtr>& old_components,
    DiskComponentPtr replacement) {
  Status st = [&]() -> Status {
    MutexLock l(components_mu_);
    if (old_components.empty()) {
      if (replacement != nullptr) {
        components_.insert(components_.begin(), std::move(replacement));
      }
      return Status::OK();
    }
    auto it = std::find(components_.begin(), components_.end(),
                        old_components.front());
    if (it == components_.end() ||
        static_cast<size_t>(components_.end() - it) < old_components.size()) {
      return Status::InvalidArgument("components no longer current");
    }
    for (size_t i = 0; i < old_components.size(); i++) {
      if (*(it + i) != old_components[i]) {
        return Status::InvalidArgument("components no longer contiguous");
      }
    }
    for (const auto& c : old_components) c->MarkRetired();
    it = components_.erase(it, it + old_components.size());
    if (replacement != nullptr) {
      components_.insert(it, std::move(replacement));
    }
    return Status::OK();
  }();
  // Fire outside components_mu_ so the hook may take its own locks freely.
  if (st.ok() && install_hook_) install_hook_();
  return st;
}

uint64_t LsmTree::TotalDiskBytes() const {
  uint64_t total = 0;
  for (const auto& c : Components()) total += c->size_bytes();
  return total;
}

size_t LsmTree::NumDiskComponents() const {
  MutexLock l(components_mu_);
  return components_.size();
}

}  // namespace auxlsm
