#include "lsm/merge_cursor.h"

namespace auxlsm {

MergeCursor::MergeCursor(std::vector<DiskComponentPtr> newest_first,
                         Options options)
    : components_(std::move(newest_first)), options_(std::move(options)) {}

bool MergeCursor::EntryVisible(size_t i) const {
  if (!options_.respect_bitmaps) return true;
  const Bitmap* bm = nullptr;
  if (i < options_.bitmap_overrides.size() &&
      options_.bitmap_overrides[i] != nullptr) {
    bm = options_.bitmap_overrides[i].get();
  } else {
    bm = components_[i]->bitmap().get();
  }
  if (bm == nullptr) return true;
  return !bm->Test(iters_[i].ordinal());
}

Status MergeCursor::Init() {
  iters_.clear();
  iters_.reserve(components_.size());
  for (const auto& c : components_) {
    iters_.push_back(c->tree().NewIterator(options_.readahead_pages));
    if (options_.lower_bound.empty()) {
      AUXLSM_RETURN_NOT_OK(iters_.back().SeekToFirst());
    } else {
      AUXLSM_RETURN_NOT_OK(iters_.back().Seek(options_.lower_bound));
    }
  }
  return FindNext();
}

Status MergeCursor::Next() { return FindNext(); }

Status MergeCursor::FindNext() {
  while (true) {
    // Pick the smallest key; ties go to the newest component (lowest index).
    int winner = -1;
    for (size_t i = 0; i < iters_.size(); i++) {
      if (!iters_[i].Valid()) continue;
      if (winner < 0 || iters_[i].key().compare(iters_[winner].key()) < 0) {
        winner = static_cast<int>(i);
      }
    }
    if (winner < 0) {
      valid_ = false;
      return Status::OK();
    }
    if (!options_.upper_bound.empty()) {
      const int cmp = iters_[winner].key().compare(Slice(options_.upper_bound));
      if (cmp > 0 || (cmp == 0 && options_.upper_bound_exclusive)) {
        valid_ = false;
        return Status::OK();
      }
    }
    const Slice win_key = iters_[winner].key();
    const bool visible = EntryVisible(winner);
    cur_key_ = win_key.ToString();
    cur_value_ = iters_[winner].value().ToString();
    cur_ts_ = iters_[winner].ts();
    cur_antimatter_ = iters_[winner].antimatter();
    cur_source_ = static_cast<size_t>(winner);
    cur_ordinal_ = iters_[winner].ordinal();
    // Consume the winning key from every component (older duplicates are
    // overridden and dropped).
    for (size_t i = 0; i < iters_.size(); i++) {
      while (iters_[i].Valid() && iters_[i].key() == Slice(cur_key_)) {
        AUXLSM_RETURN_NOT_OK(iters_[i].Next());
      }
    }
    if (!visible) continue;
    if (cur_antimatter_ && options_.drop_antimatter) continue;
    valid_ = true;
    return Status::OK();
  }
}

}  // namespace auxlsm
