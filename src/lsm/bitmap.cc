#include "lsm/bitmap.h"

#include <bit>

namespace auxlsm {

Bitmap::Bitmap(uint64_t n_bits)
    : n_bits_(n_bits), words_((n_bits + 63) / 64) {
  for (auto& w : words_) w.store(0, std::memory_order_relaxed);
}

Bitmap Bitmap::SnapshotOf(const Bitmap& other) {
  Bitmap copy(other.n_bits_);
  for (size_t i = 0; i < other.words_.size(); i++) {
    copy.words_[i].store(other.words_[i].load(std::memory_order_acquire),
                         std::memory_order_relaxed);
  }
  return copy;
}

bool Bitmap::Set(uint64_t i) {
  const uint64_t mask = uint64_t{1} << (i & 63);
  const uint64_t prev =
      words_[i >> 6].fetch_or(mask, std::memory_order_acq_rel);
  return (prev & mask) != 0;
}

bool Bitmap::Unset(uint64_t i) {
  const uint64_t mask = uint64_t{1} << (i & 63);
  const uint64_t prev =
      words_[i >> 6].fetch_and(~mask, std::memory_order_acq_rel);
  return (prev & mask) != 0;
}

bool Bitmap::Test(uint64_t i) const {
  const uint64_t mask = uint64_t{1} << (i & 63);
  return (words_[i >> 6].load(std::memory_order_acquire) & mask) != 0;
}

std::vector<uint64_t> Bitmap::Words() const {
  std::vector<uint64_t> out(words_.size());
  for (size_t i = 0; i < words_.size(); i++) {
    out[i] = words_[i].load(std::memory_order_acquire);
  }
  return out;
}

Bitmap Bitmap::FromWords(uint64_t n_bits, const std::vector<uint64_t>& words) {
  Bitmap b(n_bits);
  for (size_t i = 0; i < b.words_.size() && i < words.size(); i++) {
    b.words_[i].store(words[i], std::memory_order_relaxed);
  }
  return b;
}

void Bitmap::UnionWith(const Bitmap& other) {
  for (size_t i = 0; i < words_.size() && i < other.words_.size(); i++) {
    words_[i].fetch_or(other.words_[i].load(std::memory_order_acquire),
                       std::memory_order_acq_rel);
  }
}

uint64_t Bitmap::CountSet() const {
  uint64_t n = 0;
  for (const auto& w : words_) {
    n += std::popcount(w.load(std::memory_order_relaxed));
  }
  return n;
}

}  // namespace auxlsm
