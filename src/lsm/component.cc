#include "lsm/component.h"

namespace auxlsm {

DiskComponent::~DiskComponent() {
  if (retired_.load(std::memory_order_relaxed)) {
    tree_.env()->DeleteFile(tree_.meta().file_id);
  }
}

std::string ComponentId::ToString() const {
  return std::to_string(min_ts) + "-" + std::to_string(max_ts);
}

bool DiskComponent::MayContain(uint64_t key_hash, bool use_blocked) const {
  if (use_blocked && blocked_bloom_ != nullptr) {
    return blocked_bloom_->MayContain(key_hash);
  }
  if (bloom_ != nullptr) return bloom_->MayContain(key_hash);
  if (blocked_bloom_ != nullptr) return blocked_bloom_->MayContain(key_hash);
  return true;
}

void DiskComponent::EnsureBitmap() {
  if (bitmap_ == nullptr) {
    bitmap_ = std::make_shared<Bitmap>(num_entries());
  }
}

void DiskComponent::set_build_link(std::shared_ptr<BuildLink> link) {
  MutexLock l(link_mu_);
  build_link_ = std::move(link);
}

std::shared_ptr<BuildLink> DiskComponent::build_link() const {
  MutexLock l(link_mu_);
  return build_link_;
}

}  // namespace auxlsm
