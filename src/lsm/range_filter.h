// Component-level range filter (§3): per-component [min, max] of a filter
// key (the tweet creation_time in the evaluation). A scan can prune a
// component whose filter is disjoint from the query's range predicate —
// unless the maintenance strategy requires newer components to be read for
// overriding updates (Validation, §4.2).
//
// Concurrency: Expand() may race with readers (Overlaps / has_value) — the
// memory component's filter is widened by ingestion while scans consult it —
// so the fields are atomics. Expand publishes min/max before has_value_
// (release), readers take has_value_ with acquire, so a reader never sees an
// "existing" filter with unwritten bounds. Reset() and copies are only
// performed while writers are quiesced (the dataset's flush path holds the
// ingest latch exclusively).
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>

namespace auxlsm {

class RangeFilter {
 public:
  RangeFilter() = default;

  RangeFilter(const RangeFilter& o) { CopyFrom(o); }
  RangeFilter& operator=(const RangeFilter& o) {
    if (this != &o) CopyFrom(o);
    return *this;
  }

  /// Widens the filter to cover v. Safe against concurrent Expand/readers.
  void Expand(uint64_t v) {
    uint64_t cur = min_.load(std::memory_order_relaxed);
    while (v < cur &&
           !min_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
    cur = max_.load(std::memory_order_relaxed);
    while (v > cur &&
           !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
    has_value_.store(true, std::memory_order_release);
  }

  void Merge(const RangeFilter& other) {
    if (!other.has_value()) return;
    Expand(other.min());
    Expand(other.max());
  }

  bool has_value() const {
    return has_value_.load(std::memory_order_acquire);
  }
  uint64_t min() const { return min_.load(std::memory_order_relaxed); }
  uint64_t max() const { return max_.load(std::memory_order_relaxed); }

  /// True if [lo, hi] intersects the filter range. An empty filter (no
  /// entries) never overlaps.
  bool Overlaps(uint64_t lo, uint64_t hi) const {
    return has_value() && lo <= max() && hi >= min();
  }

  void Reset() {
    min_.store(std::numeric_limits<uint64_t>::max(),
               std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
    has_value_.store(false, std::memory_order_release);
  }

 private:
  void CopyFrom(const RangeFilter& o) {
    min_.store(o.min(), std::memory_order_relaxed);
    max_.store(o.max(), std::memory_order_relaxed);
    has_value_.store(o.has_value(), std::memory_order_release);
  }

  std::atomic<uint64_t> min_{std::numeric_limits<uint64_t>::max()};
  std::atomic<uint64_t> max_{0};
  std::atomic<bool> has_value_{false};
};

}  // namespace auxlsm
