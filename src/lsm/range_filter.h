// Component-level range filter (§3): per-component [min, max] of a filter
// key (the tweet creation_time in the evaluation). A scan can prune a
// component whose filter is disjoint from the query's range predicate —
// unless the maintenance strategy requires newer components to be read for
// overriding updates (Validation, §4.2).
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>

namespace auxlsm {

class RangeFilter {
 public:
  RangeFilter() = default;

  /// Widens the filter to cover v.
  void Expand(uint64_t v) {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
    has_value_ = true;
  }

  void Merge(const RangeFilter& other) {
    if (!other.has_value_) return;
    Expand(other.min_);
    Expand(other.max_);
  }

  bool has_value() const { return has_value_; }
  uint64_t min() const { return min_; }
  uint64_t max() const { return max_; }

  /// True if [lo, hi] intersects the filter range. An empty filter (no
  /// entries) never overlaps.
  bool Overlaps(uint64_t lo, uint64_t hi) const {
    return has_value_ && lo <= max_ && hi >= min_;
  }

  void Reset() {
    min_ = std::numeric_limits<uint64_t>::max();
    max_ = 0;
    has_value_ = false;
  }

 private:
  uint64_t min_ = std::numeric_limits<uint64_t>::max();
  uint64_t max_ = 0;
  bool has_value_ = false;
};

}  // namespace auxlsm
