// Merge policies (§2.1). The evaluation uses a tiering policy with size
// ratio 1.2 and a maximum mergeable component size (§6.1); a leveling policy
// is provided for completeness. The correlated merge policy (§4.4/§5.1) is a
// dataset-level scheduling mode implemented in core/dataset.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

namespace auxlsm {

/// Size summary of one disk component, newest first in the vector handed to
/// PickMerge.
struct ComponentSizeInfo {
  uint64_t size_bytes = 0;
};

/// A merge decision: merge components [begin, end) of the newest-first list.
struct MergeRange {
  size_t begin = 0;
  size_t end = 0;  // exclusive
  bool empty() const { return begin >= end; }
  size_t count() const { return end - begin; }
};

class MergePolicy {
 public:
  virtual ~MergePolicy() = default;

  /// Returns the range of the newest-first component list to merge, or an
  /// empty range if no merge is warranted.
  virtual MergeRange PickMerge(
      const std::vector<ComponentSizeInfo>& newest_first) const = 0;
};

/// Tiering policy: merges a sequence of components when the total size of the
/// younger components exceeds `size_ratio` times the oldest component of the
/// sequence. Components larger than `max_mergeable_bytes` are frozen and
/// never merged again, modelling the paper's 1 GB cap that lets components
/// accumulate over the experiment.
class TieringMergePolicy : public MergePolicy {
 public:
  TieringMergePolicy(double size_ratio, uint64_t max_mergeable_bytes,
                     size_t min_merge_components = 2)
      : size_ratio_(size_ratio),
        max_mergeable_bytes_(max_mergeable_bytes),
        min_merge_components_(min_merge_components) {}

  MergeRange PickMerge(
      const std::vector<ComponentSizeInfo>& newest_first) const override;

 private:
  const double size_ratio_;
  const uint64_t max_mergeable_bytes_;
  const size_t min_merge_components_;
};

/// Leveling policy: one component per level, level i sized size_ratio^i *
/// base. A flush that makes the newest component overflow its level target
/// triggers a merge with the next component.
class LevelingMergePolicy : public MergePolicy {
 public:
  LevelingMergePolicy(double size_ratio, uint64_t base_level_bytes)
      : size_ratio_(size_ratio), base_level_bytes_(base_level_bytes) {}

  MergeRange PickMerge(
      const std::vector<ComponentSizeInfo>& newest_first) const override;

 private:
  const double size_ratio_;
  const uint64_t base_level_bytes_;
};

/// Never merges (used by tests and as a building block for externally
/// scheduled merges such as the correlated policy).
class NoMergePolicy : public MergePolicy {
 public:
  MergeRange PickMerge(
      const std::vector<ComponentSizeInfo>&) const override {
    return MergeRange{};
  }
};

}  // namespace auxlsm
