// K-way reconciling merge over disk components (flush output is handled
// separately since memtable snapshots are already owned vectors).
//
// Yields entries in ascending key order; for identical keys the entry from
// the newest component wins (out-of-place update semantics, §2.1). Entries
// marked invalid by a component's validity bitmap are skipped, which is how
// merges physically drop entries that repair or the Mutable-bitmap strategy
// marked obsolete (Fig 7/§5).
#pragma once

#include <memory>
#include <vector>

#include "lsm/component.h"

namespace auxlsm {

class MergeCursor {
 public:
  struct Options {
    uint32_t readahead_pages = 32;
    /// Skip entries whose component bitmap bit is set.
    bool respect_bitmaps = true;
    /// Drop anti-matter entries (legal only when the merge includes the
    /// oldest component of the tree).
    bool drop_antimatter = false;
    /// Per-component bitmap overrides (e.g. Side-file snapshots); parallel
    /// to the components vector; null entries fall back to live bitmaps.
    std::vector<std::shared_ptr<Bitmap>> bitmap_overrides;
    /// Key bounds; empty = unbounded. lower_bound is inclusive;
    /// upper_bound is inclusive unless upper_bound_exclusive is set
    /// (key-range merge partitions use [split[i-1], split[i]) ranges).
    std::string lower_bound;
    std::string upper_bound;
    bool upper_bound_exclusive = false;
  };

  /// components must be ordered newest first.
  MergeCursor(std::vector<DiskComponentPtr> newest_first, Options options);

  Status Init();
  bool Valid() const { return valid_; }
  Status Next();

  Slice key() const { return cur_key_; }
  Slice value() const { return cur_value_; }
  Timestamp ts() const { return cur_ts_; }
  bool antimatter() const { return cur_antimatter_; }
  /// Which input component (index into the newest-first vector) produced the
  /// current entry.
  size_t source() const { return cur_source_; }
  /// Ordinal of the current entry within its source component.
  uint64_t source_ordinal() const { return cur_ordinal_; }

 private:
  // Advances the winner selection; skips bitmap-invalid and (optionally)
  // anti-matter entries.
  Status FindNext();
  bool EntryVisible(size_t i) const;

  std::vector<DiskComponentPtr> components_;
  Options options_;
  std::vector<Btree::Iterator> iters_;
  bool valid_ = false;
  std::string cur_key_, cur_value_;
  Timestamp cur_ts_ = 0;
  bool cur_antimatter_ = false;
  size_t cur_source_ = 0;
  uint64_t cur_ordinal_ = 0;
};

}  // namespace auxlsm
