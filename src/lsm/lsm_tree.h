// A single LSM-tree index: one *active* memory component, zero or more
// *sealed* memory components awaiting background flush, plus a newest-first
// list of immutable disk components (§2.1, Figure 1). A Dataset
// (core/dataset.h) composes several LsmTrees — primary index, primary key
// index, secondary indexes — that flush together.
//
// Sealed memtables are the ingestion pipeline's handoff unit: sealing swaps
// the active memtable for a fresh one under the dataset's exclusive ingest
// latch (brief), and the background maintenance cycle builds the sealed
// contents into a disk component without blocking writers. Readers reach
// sealed entries through the Mem* helpers below, which search active-then-
// sealed (newest first); a sealed memtable stays readable via shared_ptr
// until its disk component is installed and the last reader drops it. In
// the serial path (writer_threads == 1) a memtable is sealed and flushed in
// one step under the latch, so there is never more than the active one.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/result.h"
#include "common/thread_annotations.h"
#include "lsm/component.h"
#include "lsm/merge_cursor.h"
#include "lsm/merge_policy.h"
#include "mem/memtable.h"

namespace auxlsm {

struct LsmTreeOptions {
  std::string name = "lsm";
  double bloom_fpr = 0.01;
  /// Build a standard Bloom filter on each disk component's keys.
  bool build_bloom = true;
  /// Additionally build a cache-line blocked Bloom filter (§3.2).
  bool build_blocked_bloom = false;
  /// Attach an all-valid mutable bitmap to each new disk component
  /// (Mutable-bitmap strategy, §5).
  bool attach_bitmap = false;
  /// Maintain a component-level range filter; the extractor maps an entry to
  /// its filter-key value (e.g. the record's creation_time).
  bool maintain_range_filter = false;
  std::function<uint64_t(const Slice& key, const Slice& value)>
      filter_key_extractor;
  std::shared_ptr<MergePolicy> merge_policy;
  uint32_t scan_readahead_pages = 32;
};

/// Where a point lookup found its entry.
struct LookupResult {
  bool found = false;
  OwnedEntry entry;
  bool from_memtable = false;  ///< active or sealed memory component
  /// The hit came from a *sealed* memory component (implies from_memtable).
  /// The Mutable-bitmap strategy records such superseding writes in a
  /// side-list so the install-time bitmap fixup is O(recorded deletes).
  bool from_sealed = false;
  DiskComponentPtr component;  ///< null if from_memtable
  uint64_t ordinal = 0;        ///< position within the disk component
};

struct GetOptions {
  bool use_blocked_bloom = false;
  /// Treat bitmap-invalid entries as absent.
  bool respect_bitmaps = true;
  /// Skip disk components whose max_ts < min_component_ts (component-ID
  /// propagation, "pID" in §6.2).
  Timestamp min_component_ts = 0;
  bool search_memtable = true;
};

class LsmTree {
 public:
  LsmTree(Env* env, LsmTreeOptions options);

  Env* env() const { return env_; }
  const LsmTreeOptions& options() const { return options_; }
  const std::string& name() const { return options_.name; }

  // --- Write path -----------------------------------------------------------
  /// Adds (or blindly overwrites) an entry in the active memory component.
  void Put(const Slice& key, const Slice& value, Timestamp ts);
  /// Adds an anti-matter entry for key (§2.1).
  void PutAntimatter(const Slice& key, Timestamp ts);

  /// The active memory component. The raw pointer is stable only while
  /// sealing is excluded (callers hold the dataset's ingest latch); code
  /// that outlives its latch hold (e.g. transaction undo closures) must keep
  /// the shared_ptr from active_memtable() instead.
  Memtable* memtable() { return ActiveMem().get(); }
  std::shared_ptr<Memtable> active_memtable() const { return ActiveMem(); }

  /// The active memory component's range filter; maintained by the Dataset's
  /// strategy code (its widening rules differ per strategy, §3.1/§4.2/§5.2).
  RangeFilter* mem_range_filter() { return ActiveMem()->range_filter(); }

  // --- Memory-component reads (active + sealed, newest first) ---------------
  /// All memory components, newest first (active, then sealed newest-first).
  std::vector<std::shared_ptr<Memtable>> MemtableSet() const;

  /// Searches every memory component, newest first; first hit wins. If
  /// `from_sealed` is non-null it reports whether the hit came from a
  /// sealed (vs. the active) memtable.
  Status GetFromMem(const Slice& key, OwnedEntry* out,
                    bool* from_sealed = nullptr) const;

  /// Ordered reconciled snapshot across all memory components (newest entry
  /// wins per key, by timestamp).
  std::vector<OwnedEntry> MemSnapshot() const;
  std::vector<OwnedEntry> MemSnapshotRange(const Slice& lo,
                                           const Slice& hi) const;

  /// Total bytes across all memory components (flush-trigger input).
  size_t MemBytes() const;
  bool MemEmpty() const;
  /// Minimum entry timestamp over non-empty memory components (0 if none).
  Timestamp MemMinTs() const;
  /// True if any non-empty memory component's range filter overlaps [lo, hi]
  /// (a component without filter maintenance always overlaps).
  bool MemOverlaps(uint64_t lo, uint64_t hi) const;

  // --- Point lookup ----------------------------------------------------------
  /// Reconciling lookup: the newest entry for key wins; anti-matter maps to
  /// NotFound.
  Status Get(const Slice& key, OwnedEntry* out,
             const GetOptions& opts = GetOptions()) const;

  /// Raw lookup: returns the newest entry including anti-matter, with its
  /// location (used by maintenance code and the Mutable-bitmap strategy).
  Status GetRaw(const Slice& key, LookupResult* out,
                const GetOptions& opts = GetOptions()) const;

  // --- Flush & merge ----------------------------------------------------------
  /// True if any memory component has entries to flush.
  bool NeedsFlush() const { return !MemEmpty(); }

  /// Flushes every memory component (sealed then active) into disk
  /// components, inline. The serial path; callers quiesce writers.
  Status Flush();

  /// Seals the active memtable: swaps in a fresh one and queues the old one
  /// for flush. Returns the sealed memtable, or null if it was empty. The
  /// caller must hold the dataset's exclusive ingest latch.
  std::shared_ptr<Memtable> SealMemtable();

  /// Snapshot of the sealed-but-not-yet-installed memtables, oldest first.
  /// Normally at most one entry (the memtable SealMemtable just returned);
  /// a flush cycle whose build failed leaves its memtable here, and the next
  /// cycle re-collects the stragglers so abandoned data is never stranded.
  std::vector<std::shared_ptr<Memtable>> PendingSealed() const {
    MutexLock l(mem_mu_);
    return sealed_;
  }

  /// Builds (but does not install) a disk component from a sealed memtable.
  /// Runs without any latch — writers proceed into the fresh active memtable.
  Result<DiskComponentPtr> BuildFromSealed(
      const std::shared_ptr<Memtable>& sealed);

  /// Installs a component built from `sealed`: prepends it to the component
  /// list, then retires the sealed memtable. The publish order (component
  /// first) keeps every entry reachable by readers throughout.
  Status InstallFlushed(const std::shared_ptr<Memtable>& sealed,
                        DiskComponentPtr component);

  /// Consults the merge policy; runs at most one merge. Sets *merged.
  Status TryMerge(bool* merged);

  /// Consults the merge policy against the current component list; fills
  /// *picked with the chosen components (newest first) and returns true if a
  /// merge is warranted. Callers (e.g. the maintenance engine) may then run
  /// the merge themselves via MergeComponents / MergeFromStream.
  bool PickMergeCandidates(std::vector<DiskComponentPtr>* picked) const;

  /// Merges the given components (which must be a contiguous, current run of
  /// the newest-first list) into one replacement component.
  Status MergeComponents(const std::vector<DiskComponentPtr>& picked);

  /// Merges components [range.begin, range.end) of the newest-first list.
  Status MergeComponentRange(const MergeRange& range);

  /// Merges all disk components into one.
  Status MergeAll();

  /// Installs the result of a merge of `picked` whose reconciled entry
  /// stream is supplied by `next` (ascending key order, exhausted -> false).
  /// Applies the same repaired-ts / range-filter inheritance rules as
  /// MergeComponents; used by the maintenance engine to stitch key-range
  /// partitioned merges back into one component. If `stream_status` is given
  /// it is checked after the stream ends, so a stream that stopped on an
  /// error does not install truncated output.
  Status MergeFromStream(const std::vector<DiskComponentPtr>& picked,
                         const std::function<bool(OwnedEntry*)>& next,
                         const Status* stream_status = nullptr);

  /// True if `c` is currently the oldest disk component (merges reaching it
  /// may drop anti-matter).
  bool IsOldestComponent(const DiskComponentPtr& c) const;

  // --- Component management (used by repair / concurrent builds) -------------
  /// Snapshot of disk components, newest first.
  std::vector<DiskComponentPtr> Components() const;

  /// Atomically replaces components [begin, end) (which must still be the
  /// current ones, identity-compared) with `replacement` (may be null to just
  /// drop). Retired components' files are deleted when the last reference
  /// drops.
  Status ReplaceComponents(const std::vector<DiskComponentPtr>& old_components,
                           DiskComponentPtr replacement);

  /// Builds a disk component from an entry stream (shared by flush, merge,
  /// and repair). Entries must arrive in ascending key order via `next`,
  /// which returns false when exhausted.
  Result<DiskComponentPtr> BuildComponent(
      ComponentId id,
      const std::function<bool(OwnedEntry*)>& next);

  uint64_t TotalDiskBytes() const;
  size_t NumDiskComponents() const;

  // --- Decoupled merge scheduling (exec/maintenance.h) -----------------------
  /// Merge-pending accounting: jobs enqueued on this tree's merge queue and
  /// not yet finished. Maintained by the Dataset's decoupled merge
  /// scheduling (the queue itself serializes per-tree merges; this counter
  /// is the observable backlog for backpressure diagnostics and tests).
  void BeginQueuedMerge() {
    merge_pending_jobs_.fetch_add(1, std::memory_order_relaxed);
  }
  void EndQueuedMerge() {
    merge_pending_jobs_.fetch_sub(1, std::memory_order_release);
  }
  size_t merge_pending_jobs() const {
    return merge_pending_jobs_.load(std::memory_order_acquire);
  }

  /// Registers a hook invoked after every merge installs its new component;
  /// used by the Dataset to trigger merge repair (§4.4).
  using MergeHook = std::function<void(const std::vector<DiskComponentPtr>&,
                                       const DiskComponentPtr&)>;
  void set_merge_hook(MergeHook hook) { merge_hook_ = std::move(hook); }

  /// Registers a hook invoked (outside the tree's locks) after any change
  /// to the disk-component list — flush installs and merge/repair
  /// replacements alike. The Dataset uses it to fence the tuple cache's
  /// in-flight inserts across component turnover (PR 7). Set before
  /// concurrent use begins; not otherwise synchronized.
  using InstallHook = std::function<void()>;
  void set_install_hook(InstallHook hook) { install_hook_ = std::move(hook); }

 private:
  std::shared_ptr<Memtable> ActiveMem() const;

  Env* const env_;
  LsmTreeOptions options_;

  // Guards mem_ / sealed_ membership only (contents are internally
  // synchronized). Sealing swaps mem_ under the dataset's exclusive ingest
  // latch; queries that hold no latch snapshot shared_ptrs under this mutex.
  // Rank kTreeMem: InstallFlushed nests components_mu_ inside it, so the two
  // tree locks have a fixed order (mem before components).
  mutable Mutex mem_mu_{lockrank::kTreeMem, "lsm.mem"};
  std::shared_ptr<Memtable> mem_ GUARDED_BY(mem_mu_);
  std::vector<std::shared_ptr<Memtable>> sealed_ GUARDED_BY(mem_mu_);  // oldest first

  // Guards components_ only. Readers snapshot the vector under the lock and
  // work on shared_ptr copies; Flush / ReplaceComponents mutate the vector
  // under the lock, so concurrent merges of *different* trees and lookups
  // during maintenance never race. Per-tree merges must be serialized by the
  // caller (ReplaceComponents identity-compares and rejects a stale pick,
  // so a lost race fails safe, but the maintenance engine never issues two
  // merges for one tree concurrently).
  mutable Mutex components_mu_{lockrank::kTreeComponents, "lsm.components"};
  std::vector<DiskComponentPtr> components_ GUARDED_BY(components_mu_);  // newest first

  std::atomic<size_t> merge_pending_jobs_{0};

  MergeHook merge_hook_;
  InstallHook install_hook_;
};

}  // namespace auxlsm
