#include "lsm/merge_policy.h"

namespace auxlsm {

MergeRange TieringMergePolicy::PickMerge(
    const std::vector<ComponentSizeInfo>& newest_first) const {
  // Consider only the run of components that are still mergeable (newest
  // side of the list up to the first frozen component).
  size_t mergeable_end = 0;
  while (mergeable_end < newest_first.size() &&
         newest_first[mergeable_end].size_bytes <= max_mergeable_bytes_) {
    mergeable_end++;
  }
  if (mergeable_end < min_merge_components_) return MergeRange{};

  // Walk candidate sequences from the longest (oldest anchor) to the
  // shortest; merge when the younger components together outweigh the
  // sequence's oldest component by the size ratio.
  for (size_t anchor = mergeable_end; anchor >= min_merge_components_;
       anchor--) {
    const uint64_t oldest = newest_first[anchor - 1].size_bytes;
    uint64_t younger_total = 0;
    for (size_t i = 0; i + 1 < anchor; i++) {
      younger_total += newest_first[i].size_bytes;
    }
    if (double(younger_total) >= size_ratio_ * double(oldest)) {
      return MergeRange{0, anchor};
    }
  }
  return MergeRange{};
}

MergeRange LevelingMergePolicy::PickMerge(
    const std::vector<ComponentSizeInfo>& newest_first) const {
  if (newest_first.size() < 2) return MergeRange{};
  // Target size of level i (newest = level 0).
  double target = double(base_level_bytes_);
  for (size_t i = 0; i + 1 < newest_first.size(); i++) {
    if (double(newest_first[i].size_bytes) > target) {
      return MergeRange{i, i + 2};
    }
    target *= size_ratio_;
  }
  return MergeRange{};
}

}  // namespace auxlsm
