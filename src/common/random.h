// Deterministic RNG and skewed distributions for workload generation.
#pragma once

#include <cstdint>
#include <vector>

namespace auxlsm {

/// xorshift128+ generator; deterministic across platforms given a seed.
class Random {
 public:
  explicit Random(uint64_t seed = 0xdeadbeefcafef00dULL);

  uint64_t Next();

  /// Uniform in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n) { return Next() % n; }

  /// Uniform double in [0, 1).
  double NextDouble();

  /// True with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Uniform in [lo, hi] inclusive.
  uint64_t Range(uint64_t lo, uint64_t hi) {
    return lo + Uniform(hi - lo + 1);
  }

 private:
  uint64_t s0_, s1_;
};

/// Zipfian generator over [0, n) with YCSB's theta parameterization
/// (theta = 0.99 by default). Supports growing n incrementally, which the
/// upsert workloads use to skew updates toward recently ingested keys.
class ZipfGenerator {
 public:
  ZipfGenerator(uint64_t n, double theta = 0.99, uint64_t seed = 42);

  /// Draws a rank in [0, n); rank 0 is the most popular item.
  uint64_t Next();

  /// Expands the domain to n items (n must not shrink).
  void Grow(uint64_t n);

  uint64_t n() const { return n_; }

 private:
  void Recompute();

  Random rng_;
  uint64_t n_;
  double theta_;
  double alpha_, zetan_, eta_, zeta2theta_;
};

}  // namespace auxlsm
